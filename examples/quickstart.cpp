// Quickstart: the core relevance + dissemination API in ~60 lines, no
// simulator required.
//
//   1. Build the HD map (a signalized 4-way intersection).
//   2. Predict trajectories for two converging road users.
//   3. Estimate the relevance of one to the other (collision-area math).
//   4. Solve the bandwidth-constrained dissemination problem (Algorithm 1).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/dissemination.hpp"
#include "core/relevance.hpp"
#include "sim/road_network.hpp"
#include "track/prediction.hpp"

int main() {
  using namespace erpd;

  // 1) The HD map the edge server holds.
  const sim::RoadNetwork map{sim::RoadConfig{}};
  const track::TrajectoryPredictor predictor{map};

  // 2) Two road users on a collision course: a car heading north through
  //    the intersection and a car running the red light from the west.
  const sim::Route& northbound =
      map.route(*map.find_route(sim::Arm::kSouth, 1, sim::Maneuver::kStraight));
  const sim::Route& eastbound =
      map.route(*map.find_route(sim::Arm::kWest, 0, sim::Maneuver::kStraight));

  const double speed = sim::kmh_to_ms(30.0);
  const double s0 = northbound.stop_line_s - 22.0;
  const auto ego_traj = predictor.predict(
      northbound.path.point_at(s0), northbound.path.tangent_at(s0) * speed,
      sim::AgentKind::kCar);
  const double s1 = eastbound.stop_line_s - 18.0;
  const auto threat_traj = predictor.predict(
      eastbound.path.point_at(s1), eastbound.path.tangent_at(s1) * speed,
      sim::AgentKind::kCar);

  // 3) Relevance of the threat's perception data to the ego.
  const auto est = core::estimate_collision(threat_traj, ego_traj,
                                            /*length_a=*/4.5, /*length_b=*/4.5);
  if (!est) {
    std::printf("trajectories never cross within the horizon\n");
    return 0;
  }
  std::printf("collision area: center=(%.1f, %.1f) radius=%.1f m\n",
              est->collision_point.x, est->collision_point.y, est->radius);
  std::printf("collision interval=%.2f s, ttc=%.2f s\n",
              est->collision_interval, est->ttc);
  std::printf("R_ci=%.3f  R_ttc=%.3f  =>  relevance R=%.3f\n", est->r_ci,
              est->r_ttc, est->relevance);

  // 4) Dissemination under a 20 KB downlink budget: the threat's cloud to
  //    the ego competes with three less relevant objects.
  std::vector<core::Candidate> candidates = {
      {/*track*/ 0, /*to*/ 100, est->relevance, /*bytes*/ 4200, 0},
      {1, 100, 0.21, 9000, 1},  // mildly relevant, heavy payload
      {2, 101, 0.08, 2500, 2},  // barely relevant
      {3, 101, 0.00, 1500, 3},  // irrelevant: never sent
  };
  const core::Selection sel = core::greedy_dissemination(candidates, 20000);
  std::printf("\nAlgorithm 1 selected %zu of %zu candidates (%zu bytes):\n",
              sel.chosen.size(), candidates.size(), sel.total_bytes);
  for (const core::Candidate& c : sel.chosen) {
    std::printf("  send object %d to vehicle %d (R=%.3f, %zu B)\n", c.track_id,
                c.to, c.relevance, c.bytes);
  }
  std::printf("total delivered relevance: %.3f\n", sel.total_relevance);
  return 0;
}
