// Pedestrian crowd clustering demo (paper Fig. 4(a)/(b)): generates a crowd
// at the intersection corners, clusters it with the paper's location+
// orientation algorithm and with plain DBSCAN, and renders both as ASCII
// maps so the difference is visible: DBSCAN lumps opposite walking
// directions, the crowd clusterer separates them.
//
// Build & run:  ./build/examples/crowd_clustering [count]

#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "sim/scenario.hpp"
#include "track/crowd_cluster.hpp"

namespace {

using namespace erpd;

void render(const char* title, const std::vector<track::CrowdEntity>& ents,
            const track::CrowdClusterResult& res) {
  // 41x21 character map of the +-16 m intersection area.
  const int w = 41;
  const int h = 21;
  std::vector<std::string> grid(h, std::string(w, '.'));
  for (std::size_t i = 0; i < ents.size(); ++i) {
    const auto& e = ents[i];
    const int cx = static_cast<int>((e.position.x + 16.0) / 32.0 * (w - 1));
    const int cy = static_cast<int>((16.0 - e.position.y) / 32.0 * (h - 1));
    if (cx < 0 || cx >= w || cy < 0 || cy >= h) continue;
    const char label =
        static_cast<char>('A' + (res.labels[i] % 26));
    grid[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] = label;
  }
  std::printf("\n%s  (%zu clusters; letters = cluster id)\n", title,
              res.clusters.size());
  for (const std::string& row : grid) std::printf("  %s\n", row.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const int count = argc > 1 ? std::atoi(argv[1]) : 28;
  const sim::RoadNetwork net{sim::RoadConfig{}};
  std::mt19937_64 rng(7);

  std::vector<track::CrowdEntity> ents;
  for (const auto& p : sim::generate_crosswalk_crowd(net, count, rng)) {
    ents.push_back({p.position, p.heading, p.speed});
  }

  const auto ours = track::cluster_crowd(ents);
  const auto dbscan = track::cluster_crowd_dbscan(ents);

  render("paper's crowd clusterer (location + orientation)", ents, ours);
  render("DBSCAN baseline (location only)", ents, dbscan);

  const double t = 5.0;
  std::printf("\nfinal-location deviation after %.0f s of walking:\n", t);
  std::printf("  ours:   %.2f m  (%zu representatives tracked)\n",
              track::final_location_deviation(ents, ours, t),
              ours.clusters.size());
  std::printf("  dbscan: %.2f m  (%zu representatives tracked)\n",
              track::final_location_deviation(ents, dbscan, t),
              dbscan.clusters.size());
  std::printf("\nRule 3: the edge server predicts only one trajectory per\n"
              "cluster representative instead of %d individual pedestrians.\n",
              count);
  return 0;
}
