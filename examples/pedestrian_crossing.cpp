// The pedestrian demo (paper Fig. 8(a)): a pedestrian steps out from behind
// a parked truck into the path of vehicle B. Another connected vehicle (E)
// captures the pedestrian and uploads it; the edge server detects the
// conflict and disseminates the pedestrian's perception data to B. This
// example runs the pipeline manually to print the full event timeline.
//
// Build & run:  ./build/examples/pedestrian_crossing

#include <cstdio>
#include <map>

#include "edge/edge_server.hpp"
#include "edge/vehicle_client.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace erpd;

  sim::ScenarioConfig cfg;
  cfg.speed_kmh = 30.0;
  cfg.total_vehicles = 12;
  cfg.pedestrians = 3;
  cfg.connected_fraction = 0.4;
  cfg.seed = 5;
  cfg.world.lidar.channels = 32;      // pedestrians are small targets
  cfg.world.lidar.azimuth_step_deg = 0.5;
  sim::Scenario sc = sim::make_occluded_pedestrian(cfg);
  sim::World& world = sc.world;

  std::printf("Scenario: occluded pedestrian, ego id=%d, pedestrian id=%d\n\n",
              sc.ego, sc.threat);

  edge::EdgeConfig ecfg;
  edge::EdgeServer server(world.network(), ecfg);
  std::map<sim::AgentId, edge::VehicleClient> clients;
  for (const sim::Vehicle& v : world.vehicles()) {
    if (v.params().connected && !v.params().parked) {
      clients.emplace(v.id(), edge::VehicleClient(v.id(), {}));
    }
  }

  bool seen = false;
  bool tracked = false;
  bool warned = false;
  bool braked = false;
  for (int frame = 0; frame < 160; ++frame) {
    // Vehicle-side pipeline for every connected vehicle.
    std::vector<net::UploadFrame> uploads;
    for (auto& [vid, client] : clients) {
      const sim::Vehicle* v = world.find_vehicle(vid);
      if (v == nullptr || v->finished(world.network()) || v->crashed()) continue;
      uploads.push_back(client.make_upload(world, nullptr, 0));
    }
    if (!seen) {
      for (const net::UploadFrame& f : uploads) {
        for (const net::ObjectUpload& o : f.objects) {
          if (o.truth_id == sc.threat) {
            std::printf("t=%5.1f s  pedestrian captured by vehicle %d's "
                        "LiDAR and uploaded\n", world.time(), f.vehicle);
            seen = true;
          }
        }
      }
    }

    // Edge-server pipeline.
    const auto truth = world.snapshot();
    const edge::FrameOutput out =
        server.process_frame(uploads, world.time(), &truth);
    if (!tracked) {
      for (const auto& tr : server.tracker().tracks()) {
        if (tr.truth_id == sc.threat && tr.hits >= 2) {
          std::printf("t=%5.1f s  pedestrian confirmed as track #%d\n",
                      world.time(), tr.id);
          tracked = true;
        }
      }
    }
    for (const net::Dissemination& d : out.selected) {
      if (d.about != sim::kInvalidAgent) world.notify_vehicle(d.to, d.about);
      if (!warned && d.to == sc.ego && d.about == sc.threat) {
        std::printf("t=%5.1f s  edge server disseminates pedestrian data to "
                    "ego (R=%.3f, %zu bytes)\n", world.time(), d.relevance,
                    d.bytes);
        warned = true;
      }
    }

    world.step();
    const sim::Vehicle* ego = world.find_vehicle(sc.ego);
    if (!braked && ego->accel() < -1.5) {
      std::printf("t=%5.1f s  ego driver reacts and brakes (a=%.1f m/s^2)\n",
                  world.time(), ego->accel());
      braked = true;
    }
  }

  const bool safe = !world.agent_crashed(sc.ego);
  std::printf("\noutcome: %s (ego-pedestrian min distance %.2f m)\n",
              safe ? "pedestrian SAFE, no collision" : "COLLISION",
              world.min_pair_distance(sc.ego, sc.threat));
  return safe ? 0 : 1;
}
