// The headline experiment (paper Fig. 8(b) / Fig. 9(a)): an unprotected left
// turn where a waiting truck hides the oncoming car. Runs the identical
// scenario under all four methods and prints what happened to the ego.
//
// Build & run:  ./build/examples/intersection_safety [speed_kmh]

#include <cstdio>
#include <cstdlib>

#include "edge/system_runner.hpp"

int main(int argc, char** argv) {
  using namespace erpd;
  const double kmh = argc > 1 ? std::atof(argv[1]) : 30.0;

  std::printf("Unprotected left turn at %.0f km/h, 20 vehicles, 30%% "
              "connected\n\n", kmh);
  std::printf("%-10s | %-8s %-14s %-12s %-12s %-10s\n", "method", "ego",
              "min dist (m)", "up (Mbit/s)", "down (Mbit/s)", "#diss");

  for (edge::Method method :
       {edge::Method::kSingle, edge::Method::kEmp, edge::Method::kOurs,
        edge::Method::kUnlimited}) {
    sim::ScenarioConfig cfg;
    cfg.speed_kmh = kmh;
    cfg.total_vehicles = 20;
    cfg.pedestrians = 4;
    cfg.connected_fraction = 0.3;
    cfg.seed = 1;
    cfg.world.lidar.channels = 16;
    cfg.world.lidar.azimuth_step_deg = 1.0;
    sim::Scenario sc = sim::make_unprotected_left_turn(cfg);

    net::WirelessConfig wireless;
    wireless.uplink_mbps = 16.0;
    wireless.downlink_mbps = 32.0;
    edge::RunnerConfig rc = edge::make_runner_config(method, wireless);
    rc.duration = 18.0;
    edge::SystemRunner runner(rc);
    const edge::MethodMetrics m = runner.run(sc);

    std::printf("%-10s | %-8s %-14.2f %-12.2f %-12.2f %-10d\n",
                edge::to_string(method), m.ego_safe ? "SAFE" : "CRASHED",
                m.min_key_distance, m.uplink_mbps, m.downlink_mbps,
                m.disseminations);
  }

  std::printf(
      "\nWithout sharing (Single) the occluded conflict always ends in a\n"
      "collision; the relevance-aware system (Ours) warns the turning car\n"
      "about the hidden oncoming vehicle in time, using a fraction of the\n"
      "bandwidth of the baselines.\n");
  return 0;
}
