# Sanitizer build modes for the whole tree (src/, tests/, bench/, examples/).
#
# Usage:
#   cmake -B build-asan -S . -DERPD_SANITIZE="address;undefined"
#   cmake -B build-tsan -S . -DERPD_SANITIZE=thread
#
# ERPD_SANITIZE is a ;- or ,-separated list drawn from:
#   address | undefined | thread | leak
# ThreadSanitizer cannot be combined with AddressSanitizer or
# LeakSanitizer; the combination is rejected at configure time.
#
# Sanitized builds additionally get -fno-omit-frame-pointer (usable stack
# traces), -fno-sanitize-recover (failures abort so ctest reports them), and
# -DERPD_ENABLE_DCHECKS so the ERPD_DCHECK contract layer is exercised even
# in optimized builds.

set(ERPD_SANITIZE "" CACHE STRING
    "Semicolon/comma-separated sanitizers: address;undefined | thread | leak")

function(erpd_enable_sanitizers)
  if(NOT ERPD_SANITIZE)
    return()
  endif()

  # Accept both "address,undefined" and "address;undefined".
  string(REPLACE "," ";" _erpd_san_list "${ERPD_SANITIZE}")

  set(_known address undefined thread leak)
  foreach(_san IN LISTS _erpd_san_list)
    if(NOT _san IN_LIST _known)
      message(FATAL_ERROR
        "ERPD_SANITIZE: unknown sanitizer '${_san}' "
        "(expected one of: ${_known})")
    endif()
  endforeach()

  if("thread" IN_LIST _erpd_san_list)
    if("address" IN_LIST _erpd_san_list OR "leak" IN_LIST _erpd_san_list)
      message(FATAL_ERROR
        "ERPD_SANITIZE: 'thread' cannot be combined with 'address'/'leak'")
    endif()
  endif()

  list(JOIN _erpd_san_list "," _erpd_san_flags)
  message(STATUS "ERPD: sanitizers enabled: ${_erpd_san_flags}")

  add_compile_options(-fsanitize=${_erpd_san_flags} -fno-omit-frame-pointer)
  add_link_options(-fsanitize=${_erpd_san_flags})
  if("undefined" IN_LIST _erpd_san_list)
    # Abort on UB instead of printing and continuing, so ctest fails.
    add_compile_options(-fno-sanitize-recover=undefined)
    add_link_options(-fno-sanitize-recover=undefined)
  endif()
  # Sanitizer runs double as the contract-checking tier.
  add_compile_definitions(ERPD_ENABLE_DCHECKS=1)
endfunction()
