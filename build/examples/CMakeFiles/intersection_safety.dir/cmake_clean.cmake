file(REMOVE_RECURSE
  "CMakeFiles/intersection_safety.dir/intersection_safety.cpp.o"
  "CMakeFiles/intersection_safety.dir/intersection_safety.cpp.o.d"
  "intersection_safety"
  "intersection_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intersection_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
