# Empty dependencies file for intersection_safety.
# This may be replaced when dependencies are built.
