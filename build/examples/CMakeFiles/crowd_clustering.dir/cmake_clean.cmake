file(REMOVE_RECURSE
  "CMakeFiles/crowd_clustering.dir/crowd_clustering.cpp.o"
  "CMakeFiles/crowd_clustering.dir/crowd_clustering.cpp.o.d"
  "crowd_clustering"
  "crowd_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
