# Empty compiler generated dependencies file for crowd_clustering.
# This may be replaced when dependencies are built.
