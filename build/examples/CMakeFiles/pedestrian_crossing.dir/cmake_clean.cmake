file(REMOVE_RECURSE
  "CMakeFiles/pedestrian_crossing.dir/pedestrian_crossing.cpp.o"
  "CMakeFiles/pedestrian_crossing.dir/pedestrian_crossing.cpp.o.d"
  "pedestrian_crossing"
  "pedestrian_crossing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pedestrian_crossing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
