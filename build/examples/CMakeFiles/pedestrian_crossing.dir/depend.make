# Empty dependencies file for pedestrian_crossing.
# This may be replaced when dependencies are built.
