file(REMOVE_RECURSE
  "CMakeFiles/erpd_track.dir/crowd_cluster.cpp.o"
  "CMakeFiles/erpd_track.dir/crowd_cluster.cpp.o.d"
  "CMakeFiles/erpd_track.dir/kalman.cpp.o"
  "CMakeFiles/erpd_track.dir/kalman.cpp.o.d"
  "CMakeFiles/erpd_track.dir/prediction.cpp.o"
  "CMakeFiles/erpd_track.dir/prediction.cpp.o.d"
  "CMakeFiles/erpd_track.dir/rules.cpp.o"
  "CMakeFiles/erpd_track.dir/rules.cpp.o.d"
  "CMakeFiles/erpd_track.dir/tracker.cpp.o"
  "CMakeFiles/erpd_track.dir/tracker.cpp.o.d"
  "liberpd_track.a"
  "liberpd_track.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erpd_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
