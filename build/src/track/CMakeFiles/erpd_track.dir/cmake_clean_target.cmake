file(REMOVE_RECURSE
  "liberpd_track.a"
)
