# Empty dependencies file for erpd_track.
# This may be replaced when dependencies are built.
