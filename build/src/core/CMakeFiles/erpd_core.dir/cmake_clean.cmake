file(REMOVE_RECURSE
  "CMakeFiles/erpd_core.dir/dissemination.cpp.o"
  "CMakeFiles/erpd_core.dir/dissemination.cpp.o.d"
  "CMakeFiles/erpd_core.dir/relevance.cpp.o"
  "CMakeFiles/erpd_core.dir/relevance.cpp.o.d"
  "liberpd_core.a"
  "liberpd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erpd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
