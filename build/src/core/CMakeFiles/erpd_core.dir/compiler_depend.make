# Empty compiler generated dependencies file for erpd_core.
# This may be replaced when dependencies are built.
