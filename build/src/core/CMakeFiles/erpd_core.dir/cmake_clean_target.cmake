file(REMOVE_RECURSE
  "liberpd_core.a"
)
