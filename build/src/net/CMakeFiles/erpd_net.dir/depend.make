# Empty dependencies file for erpd_net.
# This may be replaced when dependencies are built.
