file(REMOVE_RECURSE
  "CMakeFiles/erpd_net.dir/channel.cpp.o"
  "CMakeFiles/erpd_net.dir/channel.cpp.o.d"
  "liberpd_net.a"
  "liberpd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erpd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
