file(REMOVE_RECURSE
  "liberpd_net.a"
)
