# Empty compiler generated dependencies file for erpd_edge.
# This may be replaced when dependencies are built.
