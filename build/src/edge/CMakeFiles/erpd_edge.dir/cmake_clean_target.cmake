file(REMOVE_RECURSE
  "liberpd_edge.a"
)
