file(REMOVE_RECURSE
  "CMakeFiles/erpd_edge.dir/edge_server.cpp.o"
  "CMakeFiles/erpd_edge.dir/edge_server.cpp.o.d"
  "CMakeFiles/erpd_edge.dir/system_runner.cpp.o"
  "CMakeFiles/erpd_edge.dir/system_runner.cpp.o.d"
  "CMakeFiles/erpd_edge.dir/vehicle_client.cpp.o"
  "CMakeFiles/erpd_edge.dir/vehicle_client.cpp.o.d"
  "liberpd_edge.a"
  "liberpd_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erpd_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
