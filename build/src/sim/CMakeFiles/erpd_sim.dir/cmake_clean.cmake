file(REMOVE_RECURSE
  "CMakeFiles/erpd_sim.dir/agent.cpp.o"
  "CMakeFiles/erpd_sim.dir/agent.cpp.o.d"
  "CMakeFiles/erpd_sim.dir/car_following.cpp.o"
  "CMakeFiles/erpd_sim.dir/car_following.cpp.o.d"
  "CMakeFiles/erpd_sim.dir/lidar.cpp.o"
  "CMakeFiles/erpd_sim.dir/lidar.cpp.o.d"
  "CMakeFiles/erpd_sim.dir/road_network.cpp.o"
  "CMakeFiles/erpd_sim.dir/road_network.cpp.o.d"
  "CMakeFiles/erpd_sim.dir/scenario.cpp.o"
  "CMakeFiles/erpd_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/erpd_sim.dir/world.cpp.o"
  "CMakeFiles/erpd_sim.dir/world.cpp.o.d"
  "liberpd_sim.a"
  "liberpd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erpd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
