
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/agent.cpp" "src/sim/CMakeFiles/erpd_sim.dir/agent.cpp.o" "gcc" "src/sim/CMakeFiles/erpd_sim.dir/agent.cpp.o.d"
  "/root/repo/src/sim/car_following.cpp" "src/sim/CMakeFiles/erpd_sim.dir/car_following.cpp.o" "gcc" "src/sim/CMakeFiles/erpd_sim.dir/car_following.cpp.o.d"
  "/root/repo/src/sim/lidar.cpp" "src/sim/CMakeFiles/erpd_sim.dir/lidar.cpp.o" "gcc" "src/sim/CMakeFiles/erpd_sim.dir/lidar.cpp.o.d"
  "/root/repo/src/sim/road_network.cpp" "src/sim/CMakeFiles/erpd_sim.dir/road_network.cpp.o" "gcc" "src/sim/CMakeFiles/erpd_sim.dir/road_network.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/erpd_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/erpd_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/erpd_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/erpd_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/erpd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/pointcloud/CMakeFiles/erpd_pointcloud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
