# Empty dependencies file for erpd_sim.
# This may be replaced when dependencies are built.
