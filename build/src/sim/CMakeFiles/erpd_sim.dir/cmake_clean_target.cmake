file(REMOVE_RECURSE
  "liberpd_sim.a"
)
