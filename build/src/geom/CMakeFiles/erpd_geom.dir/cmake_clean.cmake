file(REMOVE_RECURSE
  "CMakeFiles/erpd_geom.dir/gaussian2d.cpp.o"
  "CMakeFiles/erpd_geom.dir/gaussian2d.cpp.o.d"
  "CMakeFiles/erpd_geom.dir/mat4.cpp.o"
  "CMakeFiles/erpd_geom.dir/mat4.cpp.o.d"
  "CMakeFiles/erpd_geom.dir/obb.cpp.o"
  "CMakeFiles/erpd_geom.dir/obb.cpp.o.d"
  "CMakeFiles/erpd_geom.dir/polyline.cpp.o"
  "CMakeFiles/erpd_geom.dir/polyline.cpp.o.d"
  "CMakeFiles/erpd_geom.dir/segment.cpp.o"
  "CMakeFiles/erpd_geom.dir/segment.cpp.o.d"
  "CMakeFiles/erpd_geom.dir/voronoi.cpp.o"
  "CMakeFiles/erpd_geom.dir/voronoi.cpp.o.d"
  "liberpd_geom.a"
  "liberpd_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erpd_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
