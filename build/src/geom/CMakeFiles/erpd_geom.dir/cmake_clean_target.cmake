file(REMOVE_RECURSE
  "liberpd_geom.a"
)
