# Empty dependencies file for erpd_geom.
# This may be replaced when dependencies are built.
