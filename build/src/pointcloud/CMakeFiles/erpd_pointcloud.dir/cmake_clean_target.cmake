file(REMOVE_RECURSE
  "liberpd_pointcloud.a"
)
