file(REMOVE_RECURSE
  "CMakeFiles/erpd_pointcloud.dir/dbscan.cpp.o"
  "CMakeFiles/erpd_pointcloud.dir/dbscan.cpp.o.d"
  "CMakeFiles/erpd_pointcloud.dir/encoding.cpp.o"
  "CMakeFiles/erpd_pointcloud.dir/encoding.cpp.o.d"
  "CMakeFiles/erpd_pointcloud.dir/ground_filter.cpp.o"
  "CMakeFiles/erpd_pointcloud.dir/ground_filter.cpp.o.d"
  "CMakeFiles/erpd_pointcloud.dir/moving_extractor.cpp.o"
  "CMakeFiles/erpd_pointcloud.dir/moving_extractor.cpp.o.d"
  "CMakeFiles/erpd_pointcloud.dir/pointcloud.cpp.o"
  "CMakeFiles/erpd_pointcloud.dir/pointcloud.cpp.o.d"
  "CMakeFiles/erpd_pointcloud.dir/voxel_grid.cpp.o"
  "CMakeFiles/erpd_pointcloud.dir/voxel_grid.cpp.o.d"
  "liberpd_pointcloud.a"
  "liberpd_pointcloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erpd_pointcloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
