# Empty dependencies file for erpd_pointcloud.
# This may be replaced when dependencies are built.
