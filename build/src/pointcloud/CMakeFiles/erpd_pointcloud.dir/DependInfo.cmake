
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pointcloud/dbscan.cpp" "src/pointcloud/CMakeFiles/erpd_pointcloud.dir/dbscan.cpp.o" "gcc" "src/pointcloud/CMakeFiles/erpd_pointcloud.dir/dbscan.cpp.o.d"
  "/root/repo/src/pointcloud/encoding.cpp" "src/pointcloud/CMakeFiles/erpd_pointcloud.dir/encoding.cpp.o" "gcc" "src/pointcloud/CMakeFiles/erpd_pointcloud.dir/encoding.cpp.o.d"
  "/root/repo/src/pointcloud/ground_filter.cpp" "src/pointcloud/CMakeFiles/erpd_pointcloud.dir/ground_filter.cpp.o" "gcc" "src/pointcloud/CMakeFiles/erpd_pointcloud.dir/ground_filter.cpp.o.d"
  "/root/repo/src/pointcloud/moving_extractor.cpp" "src/pointcloud/CMakeFiles/erpd_pointcloud.dir/moving_extractor.cpp.o" "gcc" "src/pointcloud/CMakeFiles/erpd_pointcloud.dir/moving_extractor.cpp.o.d"
  "/root/repo/src/pointcloud/pointcloud.cpp" "src/pointcloud/CMakeFiles/erpd_pointcloud.dir/pointcloud.cpp.o" "gcc" "src/pointcloud/CMakeFiles/erpd_pointcloud.dir/pointcloud.cpp.o.d"
  "/root/repo/src/pointcloud/voxel_grid.cpp" "src/pointcloud/CMakeFiles/erpd_pointcloud.dir/voxel_grid.cpp.o" "gcc" "src/pointcloud/CMakeFiles/erpd_pointcloud.dir/voxel_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/erpd_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
