# Empty compiler generated dependencies file for fig12_upload.
# This may be replaced when dependencies are built.
