file(REMOVE_RECURSE
  "CMakeFiles/fig12_upload.dir/fig12_upload.cpp.o"
  "CMakeFiles/fig12_upload.dir/fig12_upload.cpp.o.d"
  "fig12_upload"
  "fig12_upload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_upload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
