# Empty compiler generated dependencies file for fig11_min_distance.
# This may be replaced when dependencies are built.
