file(REMOVE_RECURSE
  "CMakeFiles/fig13_dissemination.dir/fig13_dissemination.cpp.o"
  "CMakeFiles/fig13_dissemination.dir/fig13_dissemination.cpp.o.d"
  "fig13_dissemination"
  "fig13_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
