# Empty dependencies file for fig13_dissemination.
# This may be replaced when dependencies are built.
