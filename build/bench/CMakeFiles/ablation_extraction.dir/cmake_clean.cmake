file(REMOVE_RECURSE
  "CMakeFiles/ablation_extraction.dir/ablation_extraction.cpp.o"
  "CMakeFiles/ablation_extraction.dir/ablation_extraction.cpp.o.d"
  "ablation_extraction"
  "ablation_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
