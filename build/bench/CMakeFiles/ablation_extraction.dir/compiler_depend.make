# Empty compiler generated dependencies file for ablation_extraction.
# This may be replaced when dependencies are built.
