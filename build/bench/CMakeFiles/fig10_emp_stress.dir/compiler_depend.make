# Empty compiler generated dependencies file for fig10_emp_stress.
# This may be replaced when dependencies are built.
