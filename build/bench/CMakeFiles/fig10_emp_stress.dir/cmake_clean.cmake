file(REMOVE_RECURSE
  "CMakeFiles/fig10_emp_stress.dir/fig10_emp_stress.cpp.o"
  "CMakeFiles/fig10_emp_stress.dir/fig10_emp_stress.cpp.o.d"
  "fig10_emp_stress"
  "fig10_emp_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_emp_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
