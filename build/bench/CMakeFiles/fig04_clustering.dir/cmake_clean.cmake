file(REMOVE_RECURSE
  "CMakeFiles/fig04_clustering.dir/fig04_clustering.cpp.o"
  "CMakeFiles/fig04_clustering.dir/fig04_clustering.cpp.o.d"
  "fig04_clustering"
  "fig04_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
