# Empty dependencies file for fig04_clustering.
# This may be replaced when dependencies are built.
