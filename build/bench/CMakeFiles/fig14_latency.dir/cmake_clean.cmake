file(REMOVE_RECURSE
  "CMakeFiles/fig14_latency.dir/fig14_latency.cpp.o"
  "CMakeFiles/fig14_latency.dir/fig14_latency.cpp.o.d"
  "fig14_latency"
  "fig14_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
