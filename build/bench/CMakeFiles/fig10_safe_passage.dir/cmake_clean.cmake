file(REMOVE_RECURSE
  "CMakeFiles/fig10_safe_passage.dir/fig10_safe_passage.cpp.o"
  "CMakeFiles/fig10_safe_passage.dir/fig10_safe_passage.cpp.o.d"
  "fig10_safe_passage"
  "fig10_safe_passage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_safe_passage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
