# Empty compiler generated dependencies file for fig10_safe_passage.
# This may be replaced when dependencies are built.
