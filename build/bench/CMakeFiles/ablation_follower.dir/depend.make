# Empty dependencies file for ablation_follower.
# This may be replaced when dependencies are built.
