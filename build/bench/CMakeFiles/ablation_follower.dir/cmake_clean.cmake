file(REMOVE_RECURSE
  "CMakeFiles/ablation_follower.dir/ablation_follower.cpp.o"
  "CMakeFiles/ablation_follower.dir/ablation_follower.cpp.o.d"
  "ablation_follower"
  "ablation_follower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_follower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
