file(REMOVE_RECURSE
  "CMakeFiles/fig05_tracking_reduction.dir/fig05_tracking_reduction.cpp.o"
  "CMakeFiles/fig05_tracking_reduction.dir/fig05_tracking_reduction.cpp.o.d"
  "fig05_tracking_reduction"
  "fig05_tracking_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_tracking_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
