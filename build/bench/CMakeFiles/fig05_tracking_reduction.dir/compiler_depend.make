# Empty compiler generated dependencies file for fig05_tracking_reduction.
# This may be replaced when dependencies are built.
