file(REMOVE_RECURSE
  "CMakeFiles/test_moving_extractor.dir/test_moving_extractor.cpp.o"
  "CMakeFiles/test_moving_extractor.dir/test_moving_extractor.cpp.o.d"
  "test_moving_extractor"
  "test_moving_extractor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_moving_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
