# Empty compiler generated dependencies file for test_moving_extractor.
# This may be replaced when dependencies are built.
