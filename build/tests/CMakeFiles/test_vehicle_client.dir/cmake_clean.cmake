file(REMOVE_RECURSE
  "CMakeFiles/test_vehicle_client.dir/test_vehicle_client.cpp.o"
  "CMakeFiles/test_vehicle_client.dir/test_vehicle_client.cpp.o.d"
  "test_vehicle_client"
  "test_vehicle_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vehicle_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
