# Empty dependencies file for test_mat4.
# This may be replaced when dependencies are built.
