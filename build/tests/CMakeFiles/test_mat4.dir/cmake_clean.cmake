file(REMOVE_RECURSE
  "CMakeFiles/test_mat4.dir/test_mat4.cpp.o"
  "CMakeFiles/test_mat4.dir/test_mat4.cpp.o.d"
  "test_mat4"
  "test_mat4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mat4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
