file(REMOVE_RECURSE
  "CMakeFiles/test_obb.dir/test_obb.cpp.o"
  "CMakeFiles/test_obb.dir/test_obb.cpp.o.d"
  "test_obb"
  "test_obb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
