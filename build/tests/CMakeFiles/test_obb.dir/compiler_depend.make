# Empty compiler generated dependencies file for test_obb.
# This may be replaced when dependencies are built.
