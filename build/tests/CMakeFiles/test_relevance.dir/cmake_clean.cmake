file(REMOVE_RECURSE
  "CMakeFiles/test_relevance.dir/test_relevance.cpp.o"
  "CMakeFiles/test_relevance.dir/test_relevance.cpp.o.d"
  "test_relevance"
  "test_relevance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relevance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
