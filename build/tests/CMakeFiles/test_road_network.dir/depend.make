# Empty dependencies file for test_road_network.
# This may be replaced when dependencies are built.
