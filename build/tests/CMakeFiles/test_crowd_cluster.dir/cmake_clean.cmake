file(REMOVE_RECURSE
  "CMakeFiles/test_crowd_cluster.dir/test_crowd_cluster.cpp.o"
  "CMakeFiles/test_crowd_cluster.dir/test_crowd_cluster.cpp.o.d"
  "test_crowd_cluster"
  "test_crowd_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crowd_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
