# Empty dependencies file for test_crowd_cluster.
# This may be replaced when dependencies are built.
