file(REMOVE_RECURSE
  "CMakeFiles/test_angle.dir/test_angle.cpp.o"
  "CMakeFiles/test_angle.dir/test_angle.cpp.o.d"
  "test_angle"
  "test_angle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_angle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
