# Empty dependencies file for test_car_following.
# This may be replaced when dependencies are built.
