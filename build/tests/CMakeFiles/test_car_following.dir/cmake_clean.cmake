file(REMOVE_RECURSE
  "CMakeFiles/test_car_following.dir/test_car_following.cpp.o"
  "CMakeFiles/test_car_following.dir/test_car_following.cpp.o.d"
  "test_car_following"
  "test_car_following.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_car_following.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
