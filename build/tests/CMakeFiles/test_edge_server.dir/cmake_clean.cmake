file(REMOVE_RECURSE
  "CMakeFiles/test_edge_server.dir/test_edge_server.cpp.o"
  "CMakeFiles/test_edge_server.dir/test_edge_server.cpp.o.d"
  "test_edge_server"
  "test_edge_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
