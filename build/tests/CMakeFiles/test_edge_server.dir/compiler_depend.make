# Empty compiler generated dependencies file for test_edge_server.
# This may be replaced when dependencies are built.
