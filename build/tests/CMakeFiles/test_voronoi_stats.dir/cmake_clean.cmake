file(REMOVE_RECURSE
  "CMakeFiles/test_voronoi_stats.dir/test_voronoi_stats.cpp.o"
  "CMakeFiles/test_voronoi_stats.dir/test_voronoi_stats.cpp.o.d"
  "test_voronoi_stats"
  "test_voronoi_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_voronoi_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
