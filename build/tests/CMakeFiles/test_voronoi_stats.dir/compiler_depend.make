# Empty compiler generated dependencies file for test_voronoi_stats.
# This may be replaced when dependencies are built.
