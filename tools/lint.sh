#!/usr/bin/env bash
# Repo lint gate: clang-tidy (when available) plus custom grep rules.
#
# Usage:
#   tools/lint.sh [--build-dir DIR] [--no-tidy] [paths...]
#
# Paths default to src/. Exits non-zero on any finding so CI can gate on it.
#
# Custom rules (enforced on library code under src/):
#   R1  no naked `new` / `new[]` — use containers or std::make_unique
#   R2  no std::cout/std::cerr/printf in libraries — libraries return data,
#       binaries (bench/, examples/) do the printing
#   R3  every header starts with `#pragma once`
#   R4  no `using namespace std;`
#   R5  no `#include <iostream>` in src/ headers — it drags in static init
#       (std::ios_base::Init) for every TU and invites R2 violations
#   R6  no float == / != against a float literal — exact comparison of
#       computed floats is almost always a latent nondeterminism bug; the
#       rare sanctioned site carries `// lint-ok: R6 <reason>` on the line
#
# clang-tidy runs against the compile database (build/compile_commands.json,
# generated automatically by CMake via CMAKE_EXPORT_COMPILE_COMMANDS). When
# clang-tidy is not installed the step is skipped with a notice — the custom
# rules still run and still gate.

set -u

BUILD_DIR="build"
RUN_TIDY=1
PATHS=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir)
      BUILD_DIR="$2"
      shift 2
      ;;
    --no-tidy)
      RUN_TIDY=0
      shift
      ;;
    *)
      PATHS+=("$1")
      shift
      ;;
  esac
done

cd "$(dirname "$0")/.."
[[ ${#PATHS[@]} -eq 0 ]] && PATHS=(src)

FAILURES=0

note() { printf '%s\n' "$*"; }
fail() {
  printf 'lint: %s\n' "$*" >&2
  FAILURES=$((FAILURES + 1))
}

# ---------------------------------------------------------------- custom rules
# Comments are stripped before matching so prose like "start new tracks"
# does not trip rule R1.
strip_comments() {
  sed -e 's,//.*$,,' "$1"
}

mapfile -t SOURCES < <(find "${PATHS[@]}" -type f \( -name '*.cpp' -o -name '*.hpp' \) | sort)
mapfile -t HEADERS < <(find "${PATHS[@]}" -type f -name '*.hpp' | sort)

for f in "${SOURCES[@]}"; do
  # R1: naked new expressions (skip bench/examples if passed explicitly).
  if strip_comments "$f" | grep -nE '(^|[^[:alnum:]_])new[[:space:]]+[A-Za-z_:(]' \
      | grep -vE 'placement' > /tmp/lint_hits.$$ 2>/dev/null; then
    while IFS= read -r hit; do
      fail "R1 naked new in $f:${hit%%:*}: ${hit#*:}"
    done < /tmp/lint_hits.$$
  fi
  rm -f /tmp/lint_hits.$$

  # R2: stdout/stderr printing inside library code.
  case "$f" in
    src/*)
      if strip_comments "$f" | grep -nE 'std::cout|std::cerr|[^[:alnum:]_.]printf[[:space:]]*\(' \
          > /tmp/lint_hits.$$ 2>/dev/null; then
        while IFS= read -r hit; do
          fail "R2 console I/O in library $f:${hit%%:*}: ${hit#*:}"
        done < /tmp/lint_hits.$$
      fi
      rm -f /tmp/lint_hits.$$
      ;;
  esac

  # R4: namespace pollution.
  if strip_comments "$f" | grep -nE 'using[[:space:]]+namespace[[:space:]]+std[[:space:]]*;' \
      > /tmp/lint_hits.$$ 2>/dev/null; then
    while IFS= read -r hit; do
      fail "R4 'using namespace std' in $f:${hit%%:*}"
    done < /tmp/lint_hits.$$
  fi
  rm -f /tmp/lint_hits.$$

  # R6: exact float comparison against a float literal. Matched on the raw
  # line (not comment-stripped) so the `// lint-ok: R6 <reason>` suppression
  # can be seen; the grep itself only fires on code because a literal-vs-
  # operator pattern does not occur in our comment prose.
  case "$f" in
    src/*)
      if grep -nE '(==|!=)[[:space:]]*-?[0-9]+\.[0-9]|[0-9]\.[0-9]*f?[[:space:]]*(==|!=)' "$f" \
          > /tmp/lint_hits.$$ 2>/dev/null; then
        while IFS= read -r hit; do
          line_text="${hit#*:}"
          [[ "$line_text" == *"lint-ok: R6"* ]] && continue  # sanctioned site
          # Drop hits where the match sits inside a trailing comment.
          stripped="${line_text%%//*}"
          if printf '%s' "$stripped" | grep -qE '(==|!=)[[:space:]]*-?[0-9]+\.[0-9]|[0-9]\.[0-9]*f?[[:space:]]*(==|!=)'; then
            fail "R6 exact float comparison in $f:${hit%%:*}: ${stripped}"
          fi
        done < /tmp/lint_hits.$$
      fi
      rm -f /tmp/lint_hits.$$
      ;;
  esac
done

# R3: headers must open with #pragma once (first non-empty, non-comment line).
for f in "${HEADERS[@]}"; do
  first=$(grep -vE '^[[:space:]]*(//.*)?$' "$f" | head -1)
  if [[ "$first" != "#pragma once" ]]; then
    fail "R3 header $f does not start with '#pragma once'"
  fi

  # R5: <iostream> in library headers.
  case "$f" in
    src/*)
      if strip_comments "$f" | grep -nE '#[[:space:]]*include[[:space:]]*<iostream>' \
          > /tmp/lint_hits.$$ 2>/dev/null; then
        while IFS= read -r hit; do
          fail "R5 '#include <iostream>' in header $f:${hit%%:*}"
        done < /tmp/lint_hits.$$
      fi
      rm -f /tmp/lint_hits.$$
      ;;
  esac
done

# ------------------------------------------------------------------ clang-tidy
if [[ $RUN_TIDY -eq 1 ]]; then
  if ! command -v clang-tidy > /dev/null 2>&1; then
    note "lint: clang-tidy not installed; skipping tidy step (custom rules still enforced)"
  elif [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    note "lint: $BUILD_DIR/compile_commands.json missing; configure with cmake first — skipping tidy step"
  else
    mapfile -t TIDY_SOURCES < <(find "${PATHS[@]}" -type f -name '*.cpp' | sort)
    if command -v run-clang-tidy > /dev/null 2>&1; then
      if ! run-clang-tidy -quiet -p "$BUILD_DIR" "${TIDY_SOURCES[@]}"; then
        fail "clang-tidy reported findings"
      fi
    else
      for f in "${TIDY_SOURCES[@]}"; do
        if ! clang-tidy -quiet -p "$BUILD_DIR" "$f"; then
          fail "clang-tidy findings in $f"
        fi
      done
    fi
  fi
fi

if [[ $FAILURES -gt 0 ]]; then
  printf 'lint: %d finding(s)\n' "$FAILURES" >&2
  exit 1
fi
note "lint: clean"
