#!/usr/bin/env python3
"""Bench regression tripwire for perf_pipeline artifacts.

Compares a freshly produced BENCH_pipeline.json against the committed
baseline: for every method, the fresh sensing throughput must be at least
half the committed value (2x headroom absorbs runner-hardware variance while
still catching order-of-magnitude pipeline regressions), and the run must
have been deterministic.

The committed baseline itself is also held to absolute ratchet floors
(RATCHET_FLOORS): once a perf milestone lands — the azimuth-index LiDAR
rewrite took Ours sensing from 3.4M to 34M+ points/sec — nobody can quietly
re-commit a slower baseline and have the relative check hide the loss. Fresh
runs are only measured against the relative floor, since CI hardware varies.

When both artifacts carry a per-method "behavior_fingerprint" and were run
in the same mode, the fingerprints must match *bit-for-bit*: the bench runs
fault-free (corruption off), so any drift means simulated behavior changed —
a tripwire for silent codec/pipeline changes, independent of hardware speed.
Baselines predating the fingerprint are skipped for back-compat.

Usage: check_bench.py <fresh.json> <baseline.json>
       check_bench.py --soak <soak_report.json>

The --soak mode validates a SOAK report from bench/soak (DESIGN.md §17):
zero contract violations, worker-sweep bit-identity, flat pool gauges and
resident memory across the run, and a stage.e2e p99 that stays under an
absolute ceiling and within a front-vs-back-half stability ratio. The gate
thresholds are re-derived here from the raw per-episode series, so the
binary's own verdict cannot silently diverge from what CI enforces.
"""

import json
import sys

# --soak gate thresholds. stage.e2e folds host-measured module times, so
# the bands are generous against machine noise while still catching
# monotone degradation (a real leak or quadratic blowup compounds across
# dozens-to-hundreds of episodes).
SOAK_P99_CEILING_MS = 2000.0  # absolute: 2 s p99 means the edge is drowning
SOAK_P99_STABILITY_RATIO = 3.0  # back-half mean vs front-half mean
SOAK_RSS_GROWTH_RATIO = 1.15  # flat-memory band
SOAK_POOL_GROWTH_RATIO = 1.5  # pool job-count flatness band


def check_soak(path):
    with open(path) as f:
        doc = json.load(f)

    failures = []
    if doc.get("bench") != "soak":
        return [f"{path}: not a soak report (bench={doc.get('bench')!r})"]

    violations = doc.get("violations", -1)
    print(f"violations {violations} " + ("ok" if violations == 0 else "FAIL"))
    if violations != 0:
        failures.append(f"{violations} contract violations during the soak")

    if not doc.get("worker_sweep_ok", False):
        failures.append(
            "worker sweep diverged - behavior is not bit-identical across"
            " 1/2/8 workers + det-hash shuffle"
        )
    sweep = doc.get("worker_sweep", {})
    print(f"worker sweep {sweep} "
          + ("ok" if doc.get("worker_sweep_ok") else "FAIL"))

    episodes = doc.get("episodes_detail", [])
    if not episodes:
        return failures + ["no per-episode series in the report"]

    def series(key):
        return [float(e[key]) for e in episodes]

    def halves(values):
        half = len(values) // 2
        front = values[:half] or [0.0]
        back = values[half:] or [0.0]
        return sum(front) / len(front), sum(back) / len(back)

    p99 = series("e2e_p99_ms")
    p99_front, p99_back = halves(p99)
    p99_max = max(p99)
    if p99_max > SOAK_P99_CEILING_MS:
        failures.append(
            f"stage.e2e p99 peaked at {p99_max:.1f} ms >"
            f" {SOAK_P99_CEILING_MS:.0f} ms ceiling"
        )
    if p99_front > 0.0 and p99_back > p99_front * SOAK_P99_STABILITY_RATIO:
        failures.append(
            f"stage.e2e p99 degraded {p99_front:.1f} -> {p99_back:.1f} ms"
            f" (> {SOAK_P99_STABILITY_RATIO:.1f}x)"
        )
    print(
        f"e2e p99 front {p99_front:.1f} ms back {p99_back:.1f} ms"
        f" max {p99_max:.1f} ms "
        + ("ok" if p99_max <= SOAK_P99_CEILING_MS else "FAIL")
    )

    rss = series("rss_kb")
    rss_front, rss_back = halves(rss)
    # rss_kb is 0 where /proc is unavailable; skip the gate there.
    if rss_front > 0.0 and rss_back > rss_front * SOAK_RSS_GROWTH_RATIO:
        failures.append(
            f"resident memory grew {rss_front:.0f} -> {rss_back:.0f} kB"
            f" (> {SOAK_RSS_GROWTH_RATIO:.2f}x) - pool gauges say leak"
        )
    print(f"rss front {rss_front:.0f} kB back {rss_back:.0f} kB "
          + ("ok" if rss_front <= 0.0
             or rss_back <= rss_front * SOAK_RSS_GROWTH_RATIO else "FAIL"))

    jobs = series("pool_jobs")
    jobs_front, jobs_back = halves(jobs)
    if jobs_front > 0.0 and jobs_back > jobs_front * SOAK_POOL_GROWTH_RATIO:
        failures.append(
            f"pool jobs per episode grew {jobs_front:.0f} ->"
            f" {jobs_back:.0f} (> {SOAK_POOL_GROWTH_RATIO:.1f}x)"
        )
    print(f"pool jobs front {jobs_front:.0f} back {jobs_back:.0f} "
          + ("ok" if jobs_front <= 0.0
             or jobs_back <= jobs_front * SOAK_POOL_GROWTH_RATIO else "FAIL"))

    if any(e.get("violated", False) for e in episodes):
        failures.append("an episode carries violated=true")

    return failures

# Absolute sensing_points_per_sec floors the *committed baseline* must meet
# (quick-mode artifacts from the 1-CPU bench container). Ratcheted by the
# LiDAR acceleration index work: >= 10x the 3.43M pre-index Ours figure.
RATCHET_FLOORS = {"Ours": 34.0e6}

# Minimum uplink offered-bytes reduction of the redundancy-aware uplink
# (coverage-feedback suppression + delta encoding): Ours offered bytes must
# be at least this multiple of Ours-redundancy offered bytes. The sim is
# deterministic, so the ratio is bit-stable across hardware; any dip means a
# behavior change weakened the suppression loop.
REDUNDANCY_REDUCTION_FLOOR = 3.0


def methods_by_name(doc):
    return {m["method"]: m for m in doc["methods"]}


def main(argv):
    if len(argv) == 3 and argv[1] == "--soak":
        failures = check_soak(argv[2])
        for msg in failures:
            print(f"check_bench: FAIL - {msg}", file=sys.stderr)
        return 1 if failures else 0
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        fresh = json.load(f)
    with open(argv[2]) as f:
        base = json.load(f)

    failures = []
    if not fresh.get("deterministic", False):
        failures.append("fresh run was not deterministic vs serial")

    fresh_methods = methods_by_name(fresh)
    for name, b in methods_by_name(base).items():
        ratchet = RATCHET_FLOORS.get(name)
        if ratchet is not None and b["sensing_points_per_sec"] < ratchet:
            failures.append(
                f"{name}: committed baseline sensing_points_per_sec"
                f" {b['sensing_points_per_sec']:.1f} < ratchet floor"
                f" {ratchet:.1f} - a slower baseline must not be re-committed"
            )
        m = fresh_methods.get(name)
        if m is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        floor = b["sensing_points_per_sec"] / 2.0
        got = m["sensing_points_per_sec"]
        status = "ok" if got >= floor else "REGRESSION"
        print(
            f"{name:10s} sensing_points_per_sec {got:14.1f}"
            f" (baseline {b['sensing_points_per_sec']:14.1f},"
            f" floor {floor:14.1f}) {status}"
        )
        if got < floor:
            failures.append(
                f"{name}: sensing_points_per_sec {got:.1f} < floor {floor:.1f}"
            )

        base_fp = b.get("behavior_fingerprint")
        fresh_fp = m.get("behavior_fingerprint")
        same_mode = fresh.get("quick") == base.get("quick")
        if base_fp and fresh_fp and same_mode:
            fp_status = "ok" if fresh_fp == base_fp else "DRIFT"
            print(
                f"{name:10s} behavior_fingerprint {fresh_fp}"
                f" (baseline {base_fp}) {fp_status}"
            )
            if fresh_fp != base_fp:
                failures.append(
                    f"{name}: behavior fingerprint {fresh_fp} != baseline"
                    f" {base_fp} - simulated behavior drifted"
                )

    # Redundancy ratchet: skipped only for baselines predating the
    # "Ours-redundancy" row (back-compat); once the row exists in the fresh
    # artifact the reduction must stay above the floor.
    red = fresh_methods.get("Ours-redundancy")
    plain = fresh_methods.get("Ours")
    if red is not None and plain is not None:
        offered_red = red["uplink_offered_bytes_per_frame"]
        offered_plain = plain["uplink_offered_bytes_per_frame"]
        ratio = offered_plain / offered_red if offered_red > 0.0 else 0.0
        status = "ok" if ratio >= REDUNDANCY_REDUCTION_FLOOR else "REGRESSION"
        print(
            f"redundancy offered-bytes reduction {ratio:.2f}x"
            f" (floor {REDUNDANCY_REDUCTION_FLOOR:.1f}x) {status}"
        )
        if ratio < REDUNDANCY_REDUCTION_FLOOR:
            failures.append(
                f"redundancy reduction {ratio:.2f}x <"
                f" {REDUNDANCY_REDUCTION_FLOOR:.1f}x floor - the"
                " coverage-feedback/delta uplink stopped earning its bytes"
            )
    elif "Ours-redundancy" in methods_by_name(base):
        failures.append("Ours-redundancy: missing from fresh run")

    for msg in failures:
        print(f"check_bench: FAIL - {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
