// Runs one closed-loop scenario with the observability registry attached and
// exports RunManifest + MethodMetrics + registry contents through the single
// obs exporter (DESIGN.md §11). This is the quickest way to inspect what the
// metrics layer records without wiring up a bench or a test.
//
// Usage: metrics_dump [--method=ours|emp|single|unlimited] [--seed=N]
//        [--duration=SECONDS] [--connected=FRACTION] [--csv] [--out=FILE]
//
// Defaults: ours, seed 42, 10 s, 50% connected, JSON to stdout. --csv emits
// the flat manifest/counter/gauge/histogram rows instead (method metrics are
// JSON-only).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "edge/metrics_io.hpp"
#include "edge/system_runner.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/scenario.hpp"

using namespace erpd;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--method=ours|emp|single|unlimited] [--seed=N]\n"
               "          [--duration=SECONDS] [--connected=FRACTION]"
               " [--csv] [--out=FILE]\n",
               argv0);
  return 2;
}

bool parse_method(const char* name, edge::Method* out) {
  if (std::strcmp(name, "ours") == 0) {
    *out = edge::Method::kOurs;
  } else if (std::strcmp(name, "emp") == 0) {
    *out = edge::Method::kEmp;
  } else if (std::strcmp(name, "single") == 0) {
    *out = edge::Method::kSingle;
  } else if (std::strcmp(name, "unlimited") == 0) {
    *out = edge::Method::kUnlimited;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  edge::Method method = edge::Method::kOurs;
  std::uint64_t seed = 42;
  double duration = 10.0;
  double connected = 0.5;
  bool csv = false;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--method=", 9) == 0) {
      if (!parse_method(arg + 9, &method)) return usage(argv[0]);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--duration=", 11) == 0) {
      duration = std::strtod(arg + 11, nullptr);
    } else if (std::strncmp(arg, "--connected=", 12) == 0) {
      connected = std::strtod(arg + 12, nullptr);
    } else if (std::strcmp(arg, "--csv") == 0) {
      csv = true;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else {
      return usage(argv[0]);
    }
  }

  // The standard intersection workload at a CI-friendly sensor resolution;
  // geometry matches the scenario harness and the safety benches.
  sim::ScenarioConfig cfg;
  cfg.speed_kmh = 28.0;
  cfg.total_vehicles = 12;
  cfg.pedestrians = 3;
  cfg.connected_fraction = connected;
  cfg.seed = seed;
  cfg.world.lidar.channels = 16;
  cfg.world.lidar.azimuth_step_deg = 1.0;
  sim::Scenario sc = sim::make_unprotected_left_turn(cfg);

  net::WirelessConfig wireless;
  wireless.uplink_mbps = 16.0;
  wireless.downlink_mbps = 32.0;
  edge::RunnerConfig rc = edge::make_runner_config(method, wireless);
  rc.duration = duration;

  obs::MetricsRegistry registry;
  rc.metrics = &registry;

  edge::SystemRunner runner(rc);
  const edge::MethodMetrics metrics = runner.run(sc);
  const obs::RunManifest manifest =
      edge::make_manifest(rc, "unprotected-left-turn", seed);

  std::string doc;
  if (csv) {
    doc = obs::to_csv(registry, manifest);
  } else {
    obs::JsonWriter w;
    w.begin_object();
    obs::append_manifest(w, manifest);
    w.key("metrics").begin_object();
    edge::append_method_metrics(w, metrics);
    w.end_object();
    obs::append_registry(w, registry);
    w.end_object();
    doc = w.str() + "\n";
  }

  if (out_path.empty()) {
    std::fputs(doc.c_str(), stdout);
    return 0;
  }
  if (!obs::write_file(out_path, doc)) {
    std::fprintf(stderr, "metrics_dump: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
