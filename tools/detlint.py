#!/usr/bin/env python3
"""detlint — repo-specific determinism linter for the erpd tree.

The regression story of this reproduction (bit-exact seed-42 golden decision
stream, per-method behavior fingerprints, 1/2/8-worker determinism suite)
rests on conventions that no compiler checks. detlint enforces them
statically, at the token level, with zero dependencies beyond the Python
standard library — so it always runs and always gates, with or without a
compile database. The clang-tidy profile (tools/detlint wrapper) adds
type-aware checks when a toolchain is available; this analyzer is the floor.

Rules (DESIGN.md §13 is the normative spec):

  D1  No iteration over std::unordered_map / std::unordered_set in src/
      unless the site carries an ERPD_ORDER_INSENSITIVE annotation (macro or
      `// ERPD_ORDER_INSENSITIVE: <why>` comment, on the loop line or within
      the five lines above) stating why the fold commutes.
  D2  No std::rand/srand, std::random_device, and no direct construction of
      std::mt19937-family generators outside src/core/rng.hpp. Sequential
      generators are built via core::seeded_rng from config-derived seeds;
      concurrent units derive SplitMix64 streams via core::seed_mix.
  D3  No wall clocks (std::chrono::{system,steady,high_resolution}_clock,
      time(), clock_gettime, gettimeofday) outside src/obs/ and bench/.
      Simulated outputs must be pure functions of seed + config.
  D4  No mutable static / thread_local state outside the thread pool
      (src/core/thread_pool.*). `static const` / `static constexpr` are
      fine; hidden mutable globals make runs order-dependent.
  D5  No float/double compound accumulation (+=, -=, *=, /=) into variables
      captured by parallel_for / parallel_chunks lambdas. FP addition does
      not associate; accumulate per chunk and reduce in chunk-index order.
  D6  No pointer-keyed ordering: std::map/std::set (or unordered variants)
      keyed on a pointer type. Addresses vary run to run, so any order or
      hash derived from them is non-deterministic.

Suppression: `// detlint: D<n> <justification>` on the offending line, or on
a comment line directly above it (blank and comment lines in between are
skipped). An empty justification is itself an error — the point is a
reviewable reduction argument, not a mute button.

Usage:
  tools/detlint.py [paths...]          lint (default: src)
  tools/detlint.py --self-test DIR     run the fixture corpus in DIR
  tools/detlint.py --report FILE ...   also write findings to FILE
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

RULES = {
    "D1": "unordered-container iteration without ERPD_ORDER_INSENSITIVE",
    "D2": "raw RNG construction outside core/rng.hpp",
    "D3": "wall clock outside src/obs/ and bench/",
    "D4": "mutable static/thread_local state outside the thread pool",
    "D5": "float accumulation inside a parallel lambda",
    "D6": "pointer-keyed ordering",
}

CPP_EXTS = (".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


# --------------------------------------------------------------------------
# Lexing: blank out comments and string/char literals, preserving line
# structure, so token rules never fire on prose or log text.
# --------------------------------------------------------------------------

def blank_comments_and_strings(text: str) -> str:
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                out.append("  ")
                i += 2
                state = "line_comment"
            elif c == "/" and nxt == "*":
                out.append("  ")
                i += 2
                state = "block_comment"
            elif c == '"':
                out.append('"')
                i += 1
                state = "string"
            elif c == "'":
                out.append("'")
                i += 1
                state = "char"
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                out.append("\n")
                state = "code"
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                out.append("  ")
                i += 2
                state = "code"
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
            elif c == quote:
                out.append(quote)
                i += 1
                state = "code"
            elif c == "\n":  # unterminated (macro line continuation etc.)
                out.append("\n")
                i += 1
                state = "code"
            else:
                out.append(" ")
                i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Suppressions and annotations.
# --------------------------------------------------------------------------

SUPPRESS_RE = re.compile(r"//\s*detlint:\s*(D[1-6])\b[ \t]*(.*)")
ANNOTATION_TOKEN = "ERPD_ORDER_INSENSITIVE"
ANNOTATION_WINDOW = 5  # lines above the loop where the annotation may sit


class FileContext:
    def __init__(self, path: str, raw: str):
        self.path = path
        self.raw_lines = raw.splitlines()
        self.code = blank_comments_and_strings(raw)
        self.code_lines = self.code.splitlines()
        # rule -> set of suppressed line numbers (1-based)
        self.suppressed: dict[str, set[int]] = {r: set() for r in RULES}
        self.bad_suppressions: list[Finding] = []
        self._collect_suppressions()

    def _collect_suppressions(self) -> None:
        for idx, raw in enumerate(self.raw_lines):
            m = SUPPRESS_RE.search(raw)
            if not m:
                continue
            rule, why = m.group(1), m.group(2).strip()
            if not why:
                self.bad_suppressions.append(
                    Finding(self.path, idx + 1, rule,
                            "suppression without a justification — state the "
                            "reduction/safety argument"))
                continue
            target = idx + 1  # the suppression's own line
            # A comment-only line suppresses the next code line (skipping
            # blanks and further comment lines).
            code_here = (self.code_lines[idx].strip()
                         if idx < len(self.code_lines) else "")
            if not code_here:
                j = idx + 1
                while j < len(self.code_lines) and not self.code_lines[j].strip():
                    j += 1
                target = j + 1
            self.suppressed[rule].add(target)
            # Multi-line statements: let the suppression cover the following
            # line as well, so wrapped declarations stay suppressible.
            self.suppressed[rule].add(target + 1)

    def is_suppressed(self, rule: str, line: int) -> bool:
        return line in self.suppressed[rule]

    def has_order_annotation(self, line: int) -> bool:
        lo = max(0, line - 1 - ANNOTATION_WINDOW)
        for idx in range(lo, line):
            if idx < len(self.raw_lines) and ANNOTATION_TOKEN in self.raw_lines[idx]:
                return True
        return False


# --------------------------------------------------------------------------
# D1: unordered-container iteration.
# --------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set)\s*<")


def _match_angle_brackets(text: str, start: int) -> int:
    """Index just past the matching '>' for the '<' at text[start]."""
    depth = 0
    i = start
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{":  # never part of a template-arg list we care about
            return -1
        i += 1
    return -1


NAME_AFTER_TYPE_RE = re.compile(r"\s*(?:&|\*)?\s*([A-Za-z_]\w*)")


def collect_unordered_names(code: str) -> set[str]:
    """Names of variables/members declared with an unordered container type.

    Also resolves one level of `using Alias = std::unordered_map<...>;`.
    """
    names: set[str] = set()
    aliases: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        open_idx = m.end() - 1
        end = _match_angle_brackets(code, open_idx)
        if end < 0:
            continue
        # `using Alias = std::unordered_map<...>` declares a type, not a var.
        prefix = code[max(0, m.start() - 120):m.start()]
        alias_m = re.search(r"\busing\s+([A-Za-z_]\w*)\s*=\s*$", prefix)
        if alias_m:
            aliases.add(alias_m.group(1))
            continue
        nm = NAME_AFTER_TYPE_RE.match(code, end)
        if nm:
            names.add(nm.group(1))
    for alias in aliases:
        for m in re.finditer(rf"\b{alias}\b", code):
            nm = NAME_AFTER_TYPE_RE.match(code, m.end())
            if nm and nm.group(1) != alias:
                names.add(nm.group(1))
    return names


RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
TRAILING_IDENT_RE = re.compile(r"([A-Za-z_]\w*)\s*$")


def _range_for_expr(code: str, for_open: int) -> tuple[str, int] | None:
    """For a `for (` at for_open, return (range expression, line) if it is a
    range-for. Handles nested parens/angle brackets in the declaration part.
    """
    depth = 0
    colon = -1
    i = for_open
    while i < len(code):
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                break
        elif c == ":" and depth == 1:
            # skip `::` scope operators
            if i + 1 < len(code) and code[i + 1] == ":":
                i += 2
                continue
            if i > 0 and code[i - 1] == ":":
                i += 1
                continue
            colon = i
        i += 1
    if colon < 0 or i >= len(code):
        return None
    expr = code[colon + 1:i].strip()
    line = code.count("\n", 0, colon) + 1
    return expr, line


def check_d1(ctx: FileContext, unordered_names: set[str]) -> list[Finding]:
    findings = []
    for m in RANGE_FOR_RE.finditer(ctx.code):
        rf = _range_for_expr(ctx.code, m.end() - 1)
        if rf is None:
            continue
        expr, line = rf
        # The iterated entity is the trailing identifier chain: `fleet_`,
        # `scan.points_per_agent`, `co.points_per_agent`...
        expr = re.sub(r"\(\s*\)\s*$", "", expr)  # accessor() call
        tid = TRAILING_IDENT_RE.search(expr)
        if not tid or tid.group(1) not in unordered_names:
            continue
        if ctx.has_order_annotation(line) or ctx.is_suppressed("D1", line):
            continue
        findings.append(Finding(
            ctx.path, line, "D1",
            f"range-for over unordered container '{tid.group(1)}' — iterate "
            "a sorted snapshot (core::sorted_keys), use an ordered "
            "container, or annotate ERPD_ORDER_INSENSITIVE with the "
            "reduction argument"))
    # Explicit iterator walks over unordered containers.
    for m in re.finditer(r"([A-Za-z_]\w*)\s*\.\s*begin\s*\(\s*\)", ctx.code):
        if m.group(1) not in unordered_names:
            continue
        line = ctx.code.count("\n", 0, m.start()) + 1
        if ctx.has_order_annotation(line) or ctx.is_suppressed("D1", line):
            continue
        findings.append(Finding(
            ctx.path, line, "D1",
            f"iterator walk over unordered container '{m.group(1)}' — same "
            "remedies as range-for"))
    return findings


# --------------------------------------------------------------------------
# D2: raw randomness.
# --------------------------------------------------------------------------

D2_ALWAYS_RE = re.compile(
    r"std::random_device|std::rand\b|(?<![\w:.])s?rand\s*\(")
D2_GENERATORS = r"(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|ranlux(?:24|48)(?:_base)?|knuth_b)"
# Construction: generator type followed by an identifier and a NON-EMPTY
# ctor argument list, or seeded as a temporary. Empty parens are a function
# declaration (or a default construction, whose fixed default_seed is
# deterministic); references/parameters (`&`) never match.
D2_CONSTRUCT_RE = re.compile(
    rf"std::{D2_GENERATORS}\s+[A-Za-z_]\w*\s*(?:\([^)\s]|\{{[^}}\s])"
    rf"|std::{D2_GENERATORS}\s*(?:\([^)\s]|\{{[^}}\s])")


def check_d2(ctx: FileContext) -> list[Finding]:
    if ctx.path.replace(os.sep, "/").endswith("core/rng.hpp"):
        return []
    findings = []
    for idx, line in enumerate(ctx.code_lines):
        hit = D2_ALWAYS_RE.search(line)
        if hit is None:
            if "core::seeded_rng" in line:
                continue  # sanctioned factory; naming the type is fine
            hit = D2_CONSTRUCT_RE.search(line)
        if hit is None:
            continue
        ln = idx + 1
        if ctx.is_suppressed("D2", ln):
            continue
        findings.append(Finding(
            ctx.path, ln, "D2",
            f"raw randomness '{hit.group(0).strip()}' — derive streams via "
            "core::seed_mix/SplitMix64, or build sequential generators with "
            "core::seeded_rng from a config seed"))
    return findings


# --------------------------------------------------------------------------
# D3: wall clocks.
# --------------------------------------------------------------------------

D3_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|\bclock_gettime\b|\bgettimeofday\b|std::clock\b|std::time\s*\("
    # Bare C time(): only the classic call forms, so accessors *named* time()
    # (sim::World::time) don't trip the rule.
    r"|(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0|&\w+)\s*\)")
D3_EXEMPT = ("/obs/",)


def check_d3(ctx: FileContext) -> list[Finding]:
    p = ctx.path.replace(os.sep, "/")
    if any(e in p for e in D3_EXEMPT) or p.startswith(("bench/", "./bench/")):
        return []
    findings = []
    for idx, line in enumerate(ctx.code_lines):
        m = D3_RE.search(line)
        if m is None:
            continue
        ln = idx + 1
        if ctx.is_suppressed("D3", ln):
            continue
        findings.append(Finding(
            ctx.path, ln, "D3",
            f"wall clock '{m.group(0).strip()}' — simulated outputs must be "
            "pure functions of seed + config; wall timing belongs in "
            "src/obs/ spans or bench/"))
    return findings


# --------------------------------------------------------------------------
# D4: mutable static / thread_local state.
# --------------------------------------------------------------------------

D4_DECL_RE = re.compile(r"^\s*(?:inline\s+)?(static|thread_local)\b")
D4_EXEMPT_SUFFIXES = ("core/thread_pool.cpp", "core/thread_pool.hpp")
IMMUTABLE_RE = re.compile(r"^\s*(?:inline\s+)?(?:const\b|constexpr\b)")
FUNC_DECL_RE = re.compile(r"[A-Za-z_]\w*\s*\(")
VAR_DECL_RE = re.compile(r"([A-Za-z_]\w*(?:\s*\[[^\]]*\])?)\s*(?:=|;|\{)")


def check_d4(ctx: FileContext) -> list[Finding]:
    p = ctx.path.replace(os.sep, "/")
    if p.endswith(D4_EXEMPT_SUFFIXES):
        return []
    findings = []
    for idx, line in enumerate(ctx.code_lines):
        m = D4_DECL_RE.match(line)
        if m is None:
            continue
        rest = line[m.end():]
        # Join up to two continuation lines so wrapped declarations classify.
        j = idx
        while ";" not in rest and "{" not in rest and j + 1 < len(ctx.code_lines) and j < idx + 2:
            j += 1
            rest += " " + ctx.code_lines[j].strip()
        rest = rest.strip()
        if rest.startswith(("_assert", "_cast")):
            continue  # static_assert / static_cast against the \b boundary
        if IMMUTABLE_RE.match(rest):
            continue  # static const / static constexpr: immutable after init
        # Distinguish `static T f(...)` (function: fine) from
        # `static T v = ...` / `static T v;` / `static T v{...}` (state).
        func = FUNC_DECL_RE.search(rest)
        var = VAR_DECL_RE.search(rest)
        if var is None:
            continue
        if func is not None and func.start() <= var.start():
            continue
        ln = idx + 1
        if ctx.is_suppressed("D4", ln):
            continue
        findings.append(Finding(
            ctx.path, ln, "D4",
            f"mutable {m.group(1)} state '{var.group(1)}' — hidden global "
            "state makes results depend on call order/thread identity; pass "
            "state explicitly or justify with a suppression"))
    return findings


# --------------------------------------------------------------------------
# D5: float accumulation inside parallel lambdas.
# --------------------------------------------------------------------------

PARALLEL_CALL_RE = re.compile(r"\bparallel_(?:for|chunks)\s*\(")
FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+([A-Za-z_]\w*)\s*[=;{(,]")


def _lambda_body_span(code: str, call_start: int) -> tuple[int, int] | None:
    """Span (open_brace, close_brace) of the first lambda body in the call."""
    intro = code.find("[", call_start)
    if intro < 0:
        return None
    open_brace = code.find("{", intro)
    if open_brace < 0:
        return None
    depth = 0
    for i in range(open_brace, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return open_brace, i
    return None


def check_d5(ctx: FileContext) -> list[Finding]:
    findings = []
    for call in PARALLEL_CALL_RE.finditer(ctx.code):
        span = _lambda_body_span(ctx.code, call.end())
        if span is None:
            continue
        body = ctx.code[span[0]:span[1]]
        # Captured floats: declared before the lambda opens.
        captured = {m.group(1)
                    for m in FLOAT_DECL_RE.finditer(ctx.code, 0, span[0])}
        local = {m.group(1) for m in FLOAT_DECL_RE.finditer(body)}
        for name in sorted(captured - local):
            acc = re.search(rf"(?<![\w\].>]){name}\s*[+\-*/]=", body)
            if acc is None:
                continue
            line = ctx.code.count("\n", 0, span[0] + acc.start()) + 1
            if (ctx.is_suppressed("D5", line)
                    or ctx.has_order_annotation(line)):
                continue
            findings.append(Finding(
                ctx.path, line, "D5",
                f"float accumulation into captured '{name}' inside a "
                "parallel lambda — FP addition does not associate; "
                "accumulate per chunk and reduce in chunk-index order"))
    return findings


# --------------------------------------------------------------------------
# D6: pointer-keyed ordering.
# --------------------------------------------------------------------------

D6_MAPSET_RE = re.compile(r"\b(?:unordered_)?(?:map|set)\s*<")


def check_d6(ctx: FileContext) -> list[Finding]:
    findings = []
    for m in D6_MAPSET_RE.finditer(ctx.code):
        open_idx = m.end() - 1
        end = _match_angle_brackets(ctx.code, open_idx)
        if end < 0:
            continue
        args = ctx.code[open_idx + 1:end - 1]
        # First template argument = the key type.
        depth = 0
        key = args
        for i, c in enumerate(args):
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
            elif c == "," and depth == 0:
                key = args[:i]
                break
        if "*" not in key:
            continue
        line = ctx.code.count("\n", 0, m.start()) + 1
        if ctx.is_suppressed("D6", line):
            continue
        findings.append(Finding(
            ctx.path, line, "D6",
            f"container keyed on pointer type '{key.strip()}' — addresses "
            "vary run to run; key on a stable id instead"))
    return findings


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

def lint_files(paths: list[str]) -> list[Finding]:
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for n in sorted(names):
                    if n.endswith(CPP_EXTS):
                        files.append(os.path.join(root, n))
        elif p.endswith(CPP_EXTS):
            files.append(p)
    files.sort()

    contexts = []
    unordered_names: set[str] = set()
    for f in files:
        with open(f, encoding="utf-8", errors="replace") as fh:
            raw = fh.read()
        ctx = FileContext(f, raw)
        contexts.append(ctx)
        # D1 names are collected project-wide: a member declared unordered in
        # a header is recognized when iterated from another translation unit.
        unordered_names |= collect_unordered_names(ctx.code)

    findings: list[Finding] = []
    for ctx in contexts:
        findings.extend(ctx.bad_suppressions)
        findings.extend(check_d1(ctx, unordered_names))
        findings.extend(check_d2(ctx))
        findings.extend(check_d3(ctx))
        findings.extend(check_d4(ctx))
        findings.extend(check_d5(ctx))
        findings.extend(check_d6(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def run_self_test(fixture_dir: str) -> int:
    """Fixture contract: fail_dN_*.cpp must trip rule DN (and only DN);
    pass_*.cpp must be clean. Anything else in the directory is ignored."""
    failures = []
    ran = 0
    for name in sorted(os.listdir(fixture_dir)):
        path = os.path.join(fixture_dir, name)
        if not name.endswith(CPP_EXTS):
            continue
        ran += 1
        findings = lint_files([path])
        rules_hit = {f.rule for f in findings}
        if name.startswith("fail_d"):
            want = "D" + name[len("fail_d")]
            if want not in rules_hit:
                failures.append(f"{name}: expected a {want} finding, got "
                                f"{sorted(rules_hit) or 'none'}")
            elif rules_hit != {want}:
                failures.append(f"{name}: expected only {want}, got "
                                f"{sorted(rules_hit)}")
        elif name.startswith("pass_"):
            if findings:
                listing = "; ".join(f.render() for f in findings)
                failures.append(f"{name}: expected clean, got {listing}")
        else:
            failures.append(f"{name}: fixture must be named fail_dN_* or "
                            "pass_*")
    if ran == 0:
        print(f"detlint self-test: no fixtures found in {fixture_dir}",
              file=sys.stderr)
        return 1
    for f in failures:
        print(f"detlint self-test FAIL: {f}", file=sys.stderr)
    if failures:
        return 1
    print(f"detlint self-test: {ran} fixtures ok")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", default=None)
    ap.add_argument("--report", help="also write findings to this file")
    ap.add_argument("--self-test", metavar="DIR",
                    help="run the fixture corpus in DIR and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        return run_self_test(args.self_test)

    paths = args.paths or ["src"]
    findings = lint_files(paths)
    lines = [f.render() for f in findings]
    for ln in lines:
        print(ln, file=sys.stderr)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
    if findings:
        print(f"detlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("detlint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
