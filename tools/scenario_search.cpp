// Search-mode crash hunting over the seeded scenario generator (DESIGN.md
// §15). Sweeps a seed range, runs each generated scenario closed-loop with
// dissemination ON (Method::kOurs), and classifies the outcome:
//
//   violation  — a contract (ERPD_REQUIRE/ENSURE) fired anywhere in the run;
//   collision  — at least one vehicle/vehicle or vehicle/pedestrian impact;
//   near-miss  — minimum OBB gap dipped below the configured thresholds.
//
// Interesting seeds are delta-minimized (ddmin over the spec's spawn /
// pedestrian / occluder lists) toward the smallest spec that still fails the
// same way, and emitted as replayable .scn anchors with pinned expectations.
//
// Usage:
//   scenario_search --seeds 0:256 [--minimize] [--out-dir tests/scenarios]
//                   [--report report.json] [--near-miss 0.75]
//                   [--ped-near-miss 1.0] [--time-box 300]
//
// This is a tool, not simulation source: wall-clock use (the --time-box
// budget) is deliberate and outside detlint's D3 scope.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/check.hpp"
#include "edge/system_runner.hpp"
#include "obs/json.hpp"
#include "sim/scenario_gen.hpp"

namespace {

using erpd::sim::GenConfig;
using erpd::sim::ScenarioSpec;

enum class Category { kNone, kNearMiss, kCollision, kViolation };

const char* to_string(Category c) {
  switch (c) {
    case Category::kNone: return "none";
    case Category::kNearMiss: return "near-miss";
    case Category::kCollision: return "collision";
    case Category::kViolation: return "violation";
  }
  return "?";
}

struct Outcome {
  int collisions{0};
  double min_vehicle_gap{std::numeric_limits<double>::infinity()};
  double min_ped_gap{std::numeric_limits<double>::infinity()};
  /// Completed lane changes summed over the fleet (maneuver layer).
  int lane_changes{0};
  bool violation{false};
  std::string violation_what;
};

struct Options {
  std::uint64_t seed_begin{0};
  std::uint64_t seed_end{64};
  bool minimize{false};
  std::string out_dir;
  std::string report_path;
  double near_miss{0.75};
  double ped_near_miss{1.0};
  double time_box_seconds{0.0};  // 0 = unlimited
  /// Only report (and minimize toward) cases where at least one lane change
  /// actually completed — for hunting maneuver-layer interactions.
  bool require_lane_change{false};
};

/// One closed-loop run of a spec under the canonical search profile.
/// Contract violations anywhere in construction or simulation are an
/// outcome, not a crash of the search itself.
Outcome run_spec(const ScenarioSpec& spec) {
  Outcome out;
  try {
    erpd::sim::Scenario sc =
        erpd::sim::build_scenario(spec, erpd::sim::search_world_config());
    erpd::edge::RunnerConfig rc =
        erpd::edge::make_runner_config(erpd::edge::Method::kOurs);
    rc.duration = spec.duration;
    erpd::edge::SystemRunner runner(rc);
    runner.run(sc);
    out.collisions = static_cast<int>(sc.world.collisions().size());
    out.min_vehicle_gap = sc.world.min_vehicle_distance();
    out.min_ped_gap = sc.world.min_vehicle_pedestrian_distance();
    for (const erpd::sim::Vehicle& v : sc.world.vehicles()) {
      out.lane_changes += v.maneuver().completed_changes;
    }
  } catch (const erpd::ContractViolation& e) {
    out.violation = true;
    out.violation_what = e.what();
  }
  return out;
}

Category classify(const Outcome& o, const Options& opt) {
  if (o.violation) return Category::kViolation;
  if (o.collisions > 0) return Category::kCollision;
  if (o.min_vehicle_gap < opt.near_miss || o.min_ped_gap < opt.ped_near_miss) {
    return Category::kNearMiss;
  }
  return Category::kNone;
}

/// The minimization predicate: the candidate must fail at least as badly as
/// the target, and (when hunting maneuver interactions) still execute a lane
/// change — otherwise ddmin would happily reduce the crash to a variant that
/// no longer exercises the layer under test.
bool reproduces(const Outcome& o, Category target, const Options& opt) {
  if (classify(o, opt) < target) return false;
  return !opt.require_lane_change || o.lane_changes >= 1;
}

/// ddmin over the spec's removable elements: spawns, pedestrians, occluders
/// flattened into one list. Removing a chunk keeps the reduction if the
/// shrunk spec still reproduces (at least) the original category.
ScenarioSpec minimize_spec(const ScenarioSpec& seed_spec, Category target,
                           const Options& opt, int* runs) {
  struct ElementRef {
    int list;  // 0 = spawn, 1 = ped, 2 = occluder
    std::size_t index;
  };
  auto rebuild = [&](const ScenarioSpec& base,
                     const std::vector<bool>& keep,
                     const std::vector<ElementRef>& refs) {
    ScenarioSpec s = base;
    s.spawns.clear();
    s.pedestrians.clear();
    s.occluders.clear();
    for (std::size_t i = 0; i < refs.size(); ++i) {
      if (!keep[i]) continue;
      const ElementRef& r = refs[i];
      switch (r.list) {
        case 0: s.spawns.push_back(base.spawns[r.index]); break;
        case 1: s.pedestrians.push_back(base.pedestrians[r.index]); break;
        default: s.occluders.push_back(base.occluders[r.index]); break;
      }
    }
    return s;
  };

  ScenarioSpec current = seed_spec;
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    std::vector<ElementRef> refs;
    for (std::size_t i = 0; i < current.spawns.size(); ++i) refs.push_back({0, i});
    for (std::size_t i = 0; i < current.pedestrians.size(); ++i) {
      refs.push_back({1, i});
    }
    for (std::size_t i = 0; i < current.occluders.size(); ++i) {
      refs.push_back({2, i});
    }
    if (refs.empty()) break;

    for (std::size_t chunk = refs.size(); chunk >= 1 && !shrunk; chunk /= 2) {
      for (std::size_t start = 0; start < refs.size(); start += chunk) {
        std::vector<bool> keep(refs.size(), true);
        const std::size_t end = std::min(start + chunk, refs.size());
        for (std::size_t i = start; i < end; ++i) keep[i] = false;
        const ScenarioSpec candidate = rebuild(current, keep, refs);
        ++*runs;
        if (reproduces(run_spec(candidate), target, opt)) {
          current = candidate;
          shrunk = true;
          break;
        }
      }
      if (chunk == 1) break;  // size_t underflow guard
    }
  }
  return current;
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "scenario_search: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      const char* v = next_value("--seeds");
      if (v == nullptr) return std::nullopt;
      char* colon = nullptr;
      opt.seed_begin = std::strtoull(v, &colon, 10);
      if (colon == nullptr || *colon != ':') {
        std::fprintf(stderr, "scenario_search: --seeds expects A:B, got %s\n",
                     v);
        return std::nullopt;
      }
      opt.seed_end = std::strtoull(colon + 1, nullptr, 10);
    } else if (arg == "--minimize") {
      opt.minimize = true;
    } else if (arg == "--out-dir") {
      const char* v = next_value("--out-dir");
      if (v == nullptr) return std::nullopt;
      opt.out_dir = v;
    } else if (arg == "--report") {
      const char* v = next_value("--report");
      if (v == nullptr) return std::nullopt;
      opt.report_path = v;
    } else if (arg == "--near-miss") {
      const char* v = next_value("--near-miss");
      if (v == nullptr) return std::nullopt;
      opt.near_miss = std::strtod(v, nullptr);
    } else if (arg == "--ped-near-miss") {
      const char* v = next_value("--ped-near-miss");
      if (v == nullptr) return std::nullopt;
      opt.ped_near_miss = std::strtod(v, nullptr);
    } else if (arg == "--time-box") {
      const char* v = next_value("--time-box");
      if (v == nullptr) return std::nullopt;
      opt.time_box_seconds = std::strtod(v, nullptr);
    } else if (arg == "--require-lane-change") {
      opt.require_lane_change = true;
    } else {
      std::fprintf(stderr, "scenario_search: unknown argument %s\n",
                   arg.c_str());
      return std::nullopt;
    }
  }
  if (opt.seed_end <= opt.seed_begin) {
    std::fprintf(stderr, "scenario_search: empty seed range\n");
    return std::nullopt;
  }
  return opt;
}

struct Finding {
  std::uint64_t seed{0};
  Category category{Category::kNone};
  Outcome outcome;
  std::size_t original_elements{0};
  std::size_t minimized_elements{0};
  int minimization_runs{0};
  std::string file;
};

std::size_t element_count(const ScenarioSpec& s) {
  return s.spawns.size() + s.pedestrians.size() + s.occluders.size();
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Options> parsed = parse_args(argc, argv);
  if (!parsed.has_value()) return 2;
  const Options& opt = *parsed;

  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  const GenConfig gen{};
  std::vector<Finding> findings;
  std::uint64_t scanned = 0;
  bool time_boxed = false;

  for (std::uint64_t seed = opt.seed_begin; seed < opt.seed_end; ++seed) {
    if (opt.time_box_seconds > 0.0 && elapsed() > opt.time_box_seconds) {
      time_boxed = true;
      std::fprintf(stderr,
                   "scenario_search: time box (%.0fs) hit after %llu seeds\n",
                   opt.time_box_seconds,
                   static_cast<unsigned long long>(scanned));
      break;
    }
    ScenarioSpec spec = erpd::sim::generate_scenario(gen, seed);
    const Outcome out = run_spec(spec);
    ++scanned;
    const Category cat = classify(out, opt);
    if (cat == Category::kNone) continue;
    if (opt.require_lane_change && out.lane_changes < 1) continue;

    Finding f;
    f.seed = seed;
    f.category = cat;
    f.outcome = out;
    f.original_elements = element_count(spec);

    ScenarioSpec final_spec = spec;
    if (opt.minimize) {
      final_spec = minimize_spec(spec, cat, opt, &f.minimization_runs);
    }
    f.minimized_elements = element_count(final_spec);

    // Pin the minimized spec's own outcome (it can differ from the original
    // seed's numbers once elements are gone).
    const Outcome pinned = run_spec(final_spec);
    final_spec.expect.present = !pinned.violation;
    final_spec.expect.collisions = pinned.collisions;
    final_spec.expect.min_vehicle_gap = pinned.min_vehicle_gap;
    final_spec.expect.min_ped_gap = pinned.min_ped_gap;
    f.outcome = pinned;

    if (!opt.out_dir.empty()) {
      char name[128];
      std::snprintf(name, sizeof name, "%s/seed%llu_%s.scn",
                    opt.out_dir.c_str(),
                    static_cast<unsigned long long>(seed), to_string(cat));
      std::string body = "# scenario_search anchor: seed ";
      body += std::to_string(seed);
      body += " classified ";
      body += to_string(cat);
      if (pinned.lane_changes > 0) {
        body += " (lane_changes=";
        body += std::to_string(pinned.lane_changes);
        body += ")";
      }
      body += "\n";
      body += erpd::sim::emit_spec(final_spec);
      if (!erpd::obs::write_file(name, body)) {
        std::fprintf(stderr, "scenario_search: cannot write %s\n", name);
        return 3;
      }
      f.file = name;
    }

    std::printf(
        "seed %llu: %s (collisions=%d min_gap=%.3f min_ped_gap=%.3f "
        "lane_changes=%d elements %zu -> %zu)\n",
        static_cast<unsigned long long>(seed), to_string(cat),
        f.outcome.collisions, f.outcome.min_vehicle_gap,
        f.outcome.min_ped_gap, f.outcome.lane_changes, f.original_elements,
        f.minimized_elements);
    findings.push_back(std::move(f));
  }

  if (!opt.report_path.empty()) {
    erpd::obs::JsonWriter w;
    w.begin_object();
    w.kv("tool", "scenario_search");
    w.key("seed_range").begin_array();
    w.value(opt.seed_begin).value(opt.seed_end);
    w.end_array();
    w.kv("scanned", static_cast<std::uint64_t>(scanned));
    w.kv("time_boxed", time_boxed);
    w.kv("minimize", opt.minimize);
    w.kv("near_miss_threshold", opt.near_miss);
    w.kv("ped_near_miss_threshold", opt.ped_near_miss);
    w.key("findings").begin_array();
    for (const Finding& f : findings) {
      w.begin_object();
      w.kv("seed", static_cast<std::uint64_t>(f.seed));
      w.kv("category", to_string(f.category));
      w.kv("collisions", f.outcome.collisions);
      w.kv("min_vehicle_gap", f.outcome.min_vehicle_gap);
      w.kv("min_ped_gap", f.outcome.min_ped_gap);
      w.kv("lane_changes", f.outcome.lane_changes);
      w.kv("violation", f.outcome.violation);
      if (f.outcome.violation) {
        w.kv("violation_what", f.outcome.violation_what);
      }
      w.kv("original_elements",
           static_cast<std::uint64_t>(f.original_elements));
      w.kv("minimized_elements",
           static_cast<std::uint64_t>(f.minimized_elements));
      w.kv("minimization_runs", f.minimization_runs);
      if (!f.file.empty()) w.kv("file", f.file);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!erpd::obs::write_file(opt.report_path, w.str())) {
      std::fprintf(stderr, "scenario_search: cannot write report %s\n",
                   opt.report_path.c_str());
      return 3;
    }
  }

  std::printf("scanned %llu seeds, %zu interesting\n",
              static_cast<unsigned long long>(scanned), findings.size());
  return 0;
}
