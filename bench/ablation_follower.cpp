// Ablation (§III-A.2): follower relevance via car-following models.
//
// The scenario plants a tailgating follower behind the ego. When the edge
// server warns only the ego, the ego's sudden braking causes a rear-end
// collision (the follower perceives the leader's speed one reaction time
// late). Follower relevance (R_follower = alpha * R_leader for followers
// violating Pipes'/Gipps criteria) warns the follower too. We sweep alpha
// and the violation criterion.

#include <cstdio>

#include "bench_util.hpp"

using namespace erpd;

namespace {

const std::vector<std::uint64_t> kSeeds = {1, 2, 3};

struct Row {
  double ego_safe{0.0};
  double follower_safe{0.0};
  double follower_min_gap{0.0};
  double disseminations{0.0};
};

Row run_config(bool follower_relevance, double alpha,
               core::FollowerCriterion crit) {
  Row row;
  for (std::uint64_t seed : kSeeds) {
    sim::ScenarioConfig cfg;
    cfg.speed_kmh = 40.0;
    cfg.total_vehicles = 18;
    cfg.pedestrians = 4;
    cfg.connected_fraction = 0.4;
    // Late conflict + a true tailgater: the warned ego has to brake hard,
    // and an unwarned follower at this gap cannot absorb it.
    cfg.time_to_conflict = 5.5;
    cfg.follower_gap = 6.5;
    cfg.seed = seed;
    bench::coarse_lidar(cfg);
    sim::Scenario sc = sim::make_unprotected_left_turn(cfg);

    edge::RunnerConfig rc =
        edge::make_runner_config(edge::Method::kOurs, bench::bench_wireless());
    rc.duration = 18.0;
    rc.edge.follower_relevance = follower_relevance;
    rc.edge.follower.alpha = alpha;
    rc.edge.follower.criterion = crit;
    edge::SystemRunner runner(rc);
    const edge::MethodMetrics m = runner.run(sc);
    row.ego_safe += m.ego_safe ? 1.0 : 0.0;
    row.follower_safe += m.follower_safe ? 1.0 : 0.0;
    row.follower_min_gap +=
        std::isfinite(m.follower_min_gap) ? m.follower_min_gap : 0.0;
    row.disseminations += m.disseminations;
  }
  const double n = static_cast<double>(kSeeds.size());
  row.ego_safe *= 100.0 / n;
  row.follower_safe *= 100.0 / n;
  row.follower_min_gap /= n;
  row.disseminations /= n;
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation - follower relevance (paper SSIII-A.2)",
      "left turn @40 km/h, 6.5 m tailgater, late warning; mean of 3 seeds");

  std::printf("%-26s %10s %14s %12s %8s\n", "configuration", "ego-safe%",
              "follower-safe%", "min-gap(m)", "#diss");

  const Row off = run_config(false, 0.8, core::FollowerCriterion::kViolatesAny);
  std::printf("%-26s %10.0f %14.0f %12.2f %8.0f\n", "follower relevance OFF",
              off.ego_safe, off.follower_safe, off.follower_min_gap,
              off.disseminations);

  for (double alpha : {0.2, 0.5, 0.8, 1.0}) {
    const Row r = run_config(true, alpha, core::FollowerCriterion::kViolatesAny);
    std::printf("alpha=%.1f (violates-any)%*s %10.0f %14.0f %12.2f %8.0f\n",
                alpha, 3, "", r.ego_safe, r.follower_safe, r.follower_min_gap,
                r.disseminations);
  }
  const Row both =
      run_config(true, 0.8, core::FollowerCriterion::kViolatesBoth);
  std::printf("%-26s %10.0f %14.0f %12.2f %8.0f\n", "alpha=0.8 (violates-both)",
              both.ego_safe, both.follower_safe, both.follower_min_gap,
              both.disseminations);

  std::printf(
      "\nExpected shape: an unwarned tailgater eats its safety margin when\n"
      "the warned ego brakes (small min-gap, rear-end at higher speeds /\n"
      "shorter gaps); with follower relevance the follower is warned too and\n"
      "keeps a comfortable gap, at the cost of a few extra disseminations.\n");
  return 0;
}
