// Perf harness for the parallel frame pipeline.
//
// Runs the closed-loop system (kOurs: per-vehicle extraction + object
// uploads; kEmp: blob uploads exercising the server-side segmentation path)
// with the global pool at its auto size and again pinned to one worker, and
// emits machine-readable BENCH_pipeline.json with per-stage p50/p95/mean,
// aggregate points/sec, and the parallel-vs-serial speedup. It also
// cross-checks the determinism contract: behavioral metrics must be exactly
// equal at every thread count.
//
// Usage: perf_pipeline [--quick] [--out=FILE]
//   --quick     fewer frames + one seed (CI smoke; seconds, not minutes)
//   --out=FILE  output path (default BENCH_pipeline.json in the CWD)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/thread_pool.hpp"

using namespace erpd;

namespace {

struct StageStats {
  double p50{0.0};
  double p95{0.0};
  double mean{0.0};
  std::size_t samples{0};
};

StageStats stats_of(std::vector<double> v) {
  StageStats s;
  s.samples = v.size();
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  const auto pct = [&](double p) {
    const double idx = p * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
  };
  s.p50 = pct(0.50);
  s.p95 = pct(0.95);
  s.mean = bench::mean_of(v);
  return s;
}

/// One method run at the current global thread count.
struct RunResult {
  double wall_seconds{0.0};
  std::size_t frames{0};
  std::size_t raw_points{0};
  double sensing_seconds{0.0};  // summed sensing wall time
  StageStats sensing;
  StageStats extract;
  StageStats merge;
  StageStats track_relevance;
  StageStats dissemination;
  edge::MethodMetrics metrics;
};

RunResult run_once(edge::Method method, std::uint64_t seed, double duration) {
  sim::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.speed_kmh = 30.0;
  cfg.total_vehicles = 16;
  cfg.pedestrians = 4;
  cfg.connected_fraction = 0.5;
  bench::dense_lidar(cfg);
  cfg.world.lidar.noise_sigma = 0.02;  // exercise the per-azimuth RNG path

  sim::Scenario sc = sim::make_unprotected_left_turn(cfg);
  edge::RunnerConfig rc = edge::make_runner_config(method, bench::bench_wireless());
  rc.duration = duration;

  std::vector<double> sensing, extract, merge, track, diss;
  RunResult r;
  rc.on_frame = [&](const edge::FrameTrace& tr) {
    ++r.frames;
    r.raw_points += tr.raw_points;
    sensing.push_back(tr.sensing_wall_seconds);
    extract.push_back(tr.extract_max_seconds);
    merge.push_back(tr.merge_seconds);
    track.push_back(tr.track_relevance_seconds);
    diss.push_back(tr.dissemination_seconds);
  };

  edge::SystemRunner runner(rc);
  const auto t0 = std::chrono::steady_clock::now();
  r.metrics = runner.run(sc);
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.sensing_seconds = std::accumulate(sensing.begin(), sensing.end(), 0.0);
  r.sensing = stats_of(std::move(sensing));
  r.extract = stats_of(std::move(extract));
  r.merge = stats_of(std::move(merge));
  r.track_relevance = stats_of(std::move(track));
  r.dissemination = stats_of(std::move(diss));
  return r;
}

/// Behavioral fingerprint: every simulated (non-wall-clock) quantity the run
/// produces. Two runs are "identical" iff these match bit-for-bit.
struct Fingerprint {
  double up_bytes, down_bytes, offered, relevance, min_dist, gap;
  int collisions, disseminations, entered;
  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(const edge::MethodMetrics& m) {
  return {m.uplink_bytes_per_frame,  m.downlink_bytes_per_frame,
          m.uplink_offered_bytes_per_frame, m.delivered_relevance,
          m.min_key_distance,        m.follower_min_gap,
          m.collisions,              m.disseminations,
          m.vehicles_entered};
}

void json_stage(std::FILE* f, const char* name, const StageStats& s,
                bool last = false) {
  std::fprintf(f,
               "      \"%s\": {\"p50_ms\": %.6f, \"p95_ms\": %.6f, "
               "\"mean_ms\": %.6f, \"samples\": %zu}%s\n",
               name, s.p50 * 1e3, s.p95 * 1e3, s.mean * 1e3, s.samples,
               last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }

  const double duration = quick ? 2.0 : 8.0;
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{1} : std::vector<std::uint64_t>{1, 2};
  const std::vector<edge::Method> methods = {edge::Method::kOurs,
                                             edge::Method::kEmp};

  core::set_thread_count(0);  // auto: ERPD_THREADS env or hardware
  const std::size_t auto_threads = core::thread_count();

  bench::print_header("perf_pipeline - parallel frame pipeline",
                      quick ? "quick mode (CI smoke)" : nullptr);
  std::printf("threads: auto=%zu vs serial=1, %zu seed(s), %.0f s each\n\n",
              auto_threads, seeds.size(), duration);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_pipeline: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"perf_pipeline\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"threads_auto\": %zu,\n", auto_threads);
  std::fprintf(f, "  \"methods\": [\n");

  bool all_deterministic = true;
  for (std::size_t mi = 0; mi < methods.size(); ++mi) {
    const edge::Method method = methods[mi];

    // Parallel (auto) pass, then the pinned serial pass over the same seeds.
    double par_wall = 0.0, ser_wall = 0.0, par_sense = 0.0, ser_sense = 0.0;
    std::size_t frames = 0, raw_points = 0;
    std::vector<RunResult> par_runs;
    bool deterministic = true;

    core::set_thread_count(0);
    for (const std::uint64_t seed : seeds) {
      RunResult r = run_once(method, seed, duration);
      par_wall += r.wall_seconds;
      par_sense += r.sensing_seconds;
      frames += r.frames;
      raw_points += r.raw_points;
      par_runs.push_back(std::move(r));
    }
    core::set_thread_count(1);
    for (std::size_t si = 0; si < seeds.size(); ++si) {
      RunResult r = run_once(method, seeds[si], duration);
      ser_wall += r.wall_seconds;
      ser_sense += r.sensing_seconds;
      if (!(fingerprint(r.metrics) == fingerprint(par_runs[si].metrics))) {
        deterministic = false;
      }
    }
    core::set_thread_count(0);

    all_deterministic = all_deterministic && deterministic;
    const double speedup = par_wall > 0.0 ? ser_wall / par_wall : 0.0;
    const double pts_per_sec =
        par_sense > 0.0 ? static_cast<double>(raw_points) / par_sense : 0.0;

    // Stage percentiles are reported from the first seed's parallel run
    // (seeds share the scenario shape; pooling adds noise, not signal).
    const RunResult& head = par_runs.front();

    std::printf("%-10s wall %6.2fs (1 thr: %6.2fs)  speedup %.2fx  "
                "%.2fM pts/s  deterministic=%s\n",
                edge::to_string(method), par_wall, ser_wall, speedup,
                pts_per_sec / 1e6, deterministic ? "yes" : "NO");
    std::printf("           sensing p50 %.2f ms p95 %.2f ms | merge p50 %.3f "
                "ms | track+rel p50 %.3f ms | diss p50 %.3f ms\n",
                head.sensing.p50 * 1e3, head.sensing.p95 * 1e3,
                head.merge.p50 * 1e3, head.track_relevance.p50 * 1e3,
                head.dissemination.p50 * 1e3);

    std::fprintf(f, "    {\n      \"method\": \"%s\",\n",
                 edge::to_string(method));
    std::fprintf(f, "      \"frames\": %zu,\n", frames);
    std::fprintf(f, "      \"raw_points\": %zu,\n", raw_points);
    std::fprintf(f, "      \"wall_seconds\": %.6f,\n", par_wall);
    std::fprintf(f, "      \"wall_seconds_serial\": %.6f,\n", ser_wall);
    std::fprintf(f, "      \"speedup_vs_1_thread\": %.4f,\n", speedup);
    std::fprintf(f, "      \"sensing_points_per_sec\": %.1f,\n", pts_per_sec);
    std::fprintf(f, "      \"deterministic_vs_serial\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(f, "      \"uplink_offered_bytes_per_frame\": %.1f,\n",
                 head.metrics.uplink_offered_bytes_per_frame);
    std::fprintf(f, "      \"uplink_drop_ratio\": %.4f,\n",
                 head.metrics.uplink_drop_ratio);
    json_stage(f, "sensing_wall", head.sensing);
    json_stage(f, "extract_max", head.extract);
    json_stage(f, "merge", head.merge);
    json_stage(f, "track_relevance", head.track_relevance);
    json_stage(f, "dissemination", head.dissemination, /*last=*/true);
    std::fprintf(f, "    }%s\n", mi + 1 < methods.size() ? "," : "");
  }

  std::fprintf(f, "  ],\n  \"deterministic\": %s\n}\n",
               all_deterministic ? "true" : "false");
  std::fclose(f);

  std::printf("\nwrote %s\n", out_path.c_str());
  if (!all_deterministic) {
    std::fprintf(stderr,
                 "perf_pipeline: FAIL - parallel and serial runs diverged\n");
    return 1;
  }
  return 0;
}
