// Perf harness for the parallel frame pipeline.
//
// Runs the closed-loop system (kOurs: per-vehicle extraction + object
// uploads; kEmp: blob uploads exercising the server-side segmentation path)
// with the global pool at its auto size and again pinned to one worker, and
// emits machine-readable BENCH_pipeline.json with per-stage p50/p95/mean,
// aggregate points/sec, and the parallel-vs-serial speedup. It also
// cross-checks the determinism contract: behavioral metrics must be exactly
// equal at every thread count.
//
// Usage: perf_pipeline [--quick] [--out=FILE]
//   --quick     fewer frames + one seed (CI smoke; seconds, not minutes)
//   --out=FILE  output path (default BENCH_pipeline.json in the CWD)

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"

using namespace erpd;

namespace {

struct StageStats {
  double p50{0.0};
  double p95{0.0};
  double mean{0.0};
  std::size_t samples{0};
};

StageStats stats_of(std::vector<double> v) {
  StageStats s;
  s.samples = v.size();
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  const auto pct = [&](double p) {
    const double idx = p * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
  };
  s.p50 = pct(0.50);
  s.p95 = pct(0.95);
  s.mean = bench::mean_of(v);
  return s;
}

/// One method run at the current global thread count.
struct RunResult {
  double wall_seconds{0.0};
  std::size_t frames{0};
  std::size_t raw_points{0};
  double sensing_seconds{0.0};  // summed sensing wall time
  StageStats sensing;
  StageStats extract;
  StageStats merge;
  StageStats track_relevance;
  StageStats dissemination;
  edge::MethodMetrics metrics;
  obs::RunManifest manifest;
};

RunResult run_once(edge::Method method, bool redundancy, std::uint64_t seed,
                   double duration, obs::MetricsRegistry* registry = nullptr) {
  sim::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.speed_kmh = 30.0;
  cfg.total_vehicles = 16;
  cfg.pedestrians = 4;
  cfg.connected_fraction = 0.5;
  bench::dense_lidar(cfg);
  cfg.world.lidar.noise_sigma = 0.02;  // exercise the per-azimuth RNG path

  sim::Scenario sc = sim::make_unprotected_left_turn(cfg);
  edge::RunnerConfig rc = edge::make_runner_config(method, bench::bench_wireless());
  rc.duration = duration;
  rc.metrics = registry;
  rc.redundancy.enabled = redundancy;

  std::vector<double> sensing, extract, merge, track, diss;
  RunResult r;
  rc.on_frame = [&](const edge::FrameTrace& tr) {
    ++r.frames;
    r.raw_points += tr.raw_points;
    sensing.push_back(tr.sensing_wall_seconds);
    extract.push_back(tr.extract_max_seconds);
    merge.push_back(tr.merge_seconds);
    track.push_back(tr.track_relevance_seconds);
    diss.push_back(tr.dissemination_seconds);
  };

  r.manifest = edge::make_manifest(rc, "perf_pipeline", seed);
  edge::SystemRunner runner(rc);
  const auto t0 = std::chrono::steady_clock::now();
  r.metrics = runner.run(sc);
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.sensing_seconds = std::accumulate(sensing.begin(), sensing.end(), 0.0);
  r.sensing = stats_of(std::move(sensing));
  r.extract = stats_of(std::move(extract));
  r.merge = stats_of(std::move(merge));
  r.track_relevance = stats_of(std::move(track));
  r.dissemination = stats_of(std::move(diss));
  return r;
}

/// Behavioral fingerprint: every simulated (non-wall-clock) quantity the run
/// produces. Two runs are "identical" iff these match bit-for-bit.
struct Fingerprint {
  double up_bytes, down_bytes, offered, relevance, min_dist, gap;
  int collisions, disseminations, entered;
  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(const edge::MethodMetrics& m) {
  return {m.uplink_bytes_per_frame,  m.downlink_bytes_per_frame,
          m.uplink_offered_bytes_per_frame, m.delivered_relevance,
          m.min_key_distance,        m.follower_min_gap,
          m.collisions,              m.disseminations,
          m.vehicles_entered};
}

/// 64-bit hash of the behavioral fingerprint, exported into the artifact so
/// check_bench.py can require fault-free bench runs to stay *bit-identical*
/// to the committed baseline — a tripwire for silent behavior drift (e.g. a
/// wire-codec change altering billed bytes), not just perf regressions.
std::string behavior_fingerprint_hex(const edge::MethodMetrics& m) {
  const Fingerprint f = fingerprint(m);
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  const auto fold_d = [&h](double v) {
    h = core::seed_mix(h, std::bit_cast<std::uint64_t>(v));
  };
  fold_d(f.up_bytes);
  fold_d(f.down_bytes);
  fold_d(f.offered);
  fold_d(f.relevance);
  fold_d(f.min_dist);
  fold_d(f.gap);
  h = core::seed_mix(h, static_cast<std::uint64_t>(f.collisions));
  h = core::seed_mix(h, static_cast<std::uint64_t>(f.disseminations));
  h = core::seed_mix(h, static_cast<std::uint64_t>(f.entered));
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

void json_stage(obs::JsonWriter& w, const char* name, const StageStats& s) {
  w.key(name).begin_object();
  w.kv("p50_ms", s.p50 * 1e3);
  w.kv("p95_ms", s.p95 * 1e3);
  w.kv("mean_ms", s.mean * 1e3);
  w.kv("samples", static_cast<std::uint64_t>(s.samples));
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }

  const double duration = quick ? 2.0 : 8.0;
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{1} : std::vector<std::uint64_t>{1, 2};
  // One row per (method, redundancy) combination. "Ours-redundancy" is kOurs
  // with the coverage-feedback + delta-encoding uplink (DESIGN.md §16) turned
  // on; the plain Ours/EMP rows are unchanged, so their committed behavior
  // fingerprints must stay bit-identical.
  struct BenchRow {
    edge::Method method;
    bool redundancy;
    const char* label;
  };
  const std::vector<BenchRow> methods = {
      {edge::Method::kOurs, false, nullptr},
      {edge::Method::kEmp, false, nullptr},
      {edge::Method::kOurs, true, "Ours-redundancy"},
  };

  core::set_thread_count(0);  // auto: ERPD_THREADS env or hardware
  const std::size_t auto_threads = core::thread_count();

  bench::print_header("perf_pipeline - parallel frame pipeline",
                      quick ? "quick mode (CI smoke)" : nullptr);
  std::printf("threads: auto=%zu vs serial=1, %zu seed(s), %.0f s each\n\n",
              auto_threads, seeds.size(), duration);

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "perf_pipeline");
  w.kv("quick", quick);
  w.kv("threads_auto", static_cast<std::uint64_t>(auto_threads));
  w.key("methods").begin_array();

  bool all_deterministic = true;
  double offered_plain = 0.0, offered_redundant = 0.0;
  for (std::size_t mi = 0; mi < methods.size(); ++mi) {
    const edge::Method method = methods[mi].method;
    const bool redundancy = methods[mi].redundancy;
    const char* label = methods[mi].label != nullptr ? methods[mi].label
                                                     : edge::to_string(method);

    // Parallel (auto) pass, then the pinned serial pass over the same seeds.
    // The first parallel run also carries the obs registry, whose stage
    // histograms and counters go into the artifact alongside the FrameTrace
    // percentiles.
    obs::MetricsRegistry registry;
    double par_wall = 0.0, ser_wall = 0.0, par_sense = 0.0, ser_sense = 0.0;
    std::size_t frames = 0, raw_points = 0;
    std::vector<RunResult> par_runs;
    bool deterministic = true;

    core::set_thread_count(0);
    for (std::size_t si = 0; si < seeds.size(); ++si) {
      RunResult r = run_once(method, redundancy, seeds[si], duration,
                             si == 0 ? &registry : nullptr);
      par_wall += r.wall_seconds;
      par_sense += r.sensing_seconds;
      frames += r.frames;
      raw_points += r.raw_points;
      par_runs.push_back(std::move(r));
    }
    core::set_thread_count(1);
    for (std::size_t si = 0; si < seeds.size(); ++si) {
      RunResult r = run_once(method, redundancy, seeds[si], duration);
      ser_wall += r.wall_seconds;
      ser_sense += r.sensing_seconds;
      if (!(fingerprint(r.metrics) == fingerprint(par_runs[si].metrics))) {
        deterministic = false;
      }
    }
    core::set_thread_count(0);

    all_deterministic = all_deterministic && deterministic;
    const double speedup = par_wall > 0.0 ? ser_wall / par_wall : 0.0;
    const double pts_per_sec =
        par_sense > 0.0 ? static_cast<double>(raw_points) / par_sense : 0.0;

    // Stage percentiles are reported from the first seed's parallel run
    // (seeds share the scenario shape; pooling adds noise, not signal).
    const RunResult& head = par_runs.front();

    if (method == edge::Method::kOurs) {
      (redundancy ? offered_redundant : offered_plain) =
          head.metrics.uplink_offered_bytes_per_frame;
    }

    std::printf("%-16s wall %6.2fs (1 thr: %6.2fs)  speedup %.2fx  "
                "%.2fM pts/s  deterministic=%s\n",
                label, par_wall, ser_wall, speedup, pts_per_sec / 1e6,
                deterministic ? "yes" : "NO");
    std::printf("           sensing p50 %.2f ms p95 %.2f ms | merge p50 %.3f "
                "ms | track+rel p50 %.3f ms | diss p50 %.3f ms\n",
                head.sensing.p50 * 1e3, head.sensing.p95 * 1e3,
                head.merge.p50 * 1e3, head.track_relevance.p50 * 1e3,
                head.dissemination.p50 * 1e3);

    w.begin_object();
    w.kv("method", label);
    obs::append_manifest(w, head.manifest);
    w.kv("frames", static_cast<std::uint64_t>(frames));
    w.kv("raw_points", static_cast<std::uint64_t>(raw_points));
    w.kv("wall_seconds", par_wall);
    w.kv("wall_seconds_serial", ser_wall);
    w.kv("speedup_vs_1_thread", speedup);
    w.kv("sensing_points_per_sec", pts_per_sec);
    w.kv("deterministic_vs_serial", deterministic);
    w.kv("behavior_fingerprint", behavior_fingerprint_hex(head.metrics));
    w.kv("uplink_offered_bytes_per_frame",
         head.metrics.uplink_offered_bytes_per_frame);
    w.kv("uplink_drop_ratio", head.metrics.uplink_drop_ratio);
    w.kv("uplink_suppressed_bytes_per_frame",
         head.metrics.uplink_suppressed_bytes_per_frame);
    json_stage(w, "sensing_wall", head.sensing);
    json_stage(w, "extract_max", head.extract);
    json_stage(w, "merge", head.merge);
    json_stage(w, "track_relevance", head.track_relevance);
    json_stage(w, "dissemination", head.dissemination);
    obs::append_registry(w, registry);
    w.end_object();
  }

  w.end_array();
  w.kv("deterministic", all_deterministic);
  const double reduction =
      offered_redundant > 0.0 ? offered_plain / offered_redundant : 0.0;
  w.kv("redundancy_offered_reduction", reduction);
  w.end_object();
  std::printf("\nredundancy offered-bytes reduction: %.2fx "
              "(%.1f -> %.1f kB/frame)\n",
              reduction, offered_plain / 1024.0, offered_redundant / 1024.0);
  if (!obs::write_file(out_path, w.str() + "\n")) {
    std::fprintf(stderr, "perf_pipeline: cannot write %s\n", out_path.c_str());
    return 1;
  }

  std::printf("\nwrote %s\n", out_path.c_str());
  if (!all_deterministic) {
    std::fprintf(stderr,
                 "perf_pipeline: FAIL - parallel and serial runs diverged\n");
    return 1;
  }
  return 0;
}
