// Supplement to Fig. 10: EMP's Round-Robin failure mode under downlink
// pressure.
//
// In the paper's testbed the traffic map is far larger than one downlink
// frame, so EMP needs several rounds to reach every (object, vehicle) pair
// and the *relevant* pair can arrive seconds late — too late at speed. Our
// scaled scene fits EMP's map into a couple of frames at the default caps
// (the scripted conflicts give ~7 s of warning, forgiving a 1 s delay), so
// this bench recreates the paper's map/budget ratio by tightening the
// downlink until a full RR round takes multiple seconds. Ours keeps
// prioritizing by relevance/size and still delivers the critical warning
// first.

#include <cstdio>

#include "bench_util.hpp"

using namespace erpd;

namespace {

const std::vector<std::uint64_t> kSeeds = {1, 2, 3};

double conflict_rate(const std::vector<edge::MethodMetrics>& ms) {
  double acc = 0.0;
  for (const auto& m : ms) acc += m.conflict_safe_rate;
  return 100.0 * acc / static_cast<double>(ms.size());
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 10 supplement - EMP under downlink pressure",
      "downlink sweep at 40 km/h; conflict-pair safe passage rate (%)");

  std::printf("%14s | %8s %8s\n", "downlink Mbps", "EMP", "Ours");
  for (double down : {0.2, 0.4, 0.8, 2.5}) {
    net::WirelessConfig w;
    w.uplink_mbps = 8.0;
    w.downlink_mbps = down;

    sim::ScenarioConfig cfg;
    cfg.speed_kmh = 40.0;
    cfg.total_vehicles = 20;
    cfg.pedestrians = 4;
    cfg.connected_fraction = 0.4;
    bench::coarse_lidar(cfg);

    const auto e = bench::run_seeds(sim::make_unprotected_left_turn, cfg,
                                    edge::Method::kEmp, kSeeds, 15.0, w);
    const auto o = bench::run_seeds(sim::make_unprotected_left_turn, cfg,
                                    edge::Method::kOurs, kSeeds, 15.0, w);
    std::printf("%14.1f | %8.1f %8.1f\n", down, conflict_rate(e),
                conflict_rate(o));
  }

  std::printf(
      "\nExpected shape (paper Fig. 10's EMP explanation): as the downlink\n"
      "shrinks relative to the traffic map, EMP's Round-Robin delays the\n"
      "relevant dissemination past the driver's reaction window and its\n"
      "safe-passage rate collapses, while Ours degrades gracefully because\n"
      "the greedy always ships the highest relevance/size items first.\n");
  return 0;
}
