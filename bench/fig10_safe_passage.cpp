// Reproduces paper Fig. 10: safe passage rate
//   (a) vs driving speed (20-40 km/h), both scenarios;
//   (b) vs percentage of connected vehicles (20-50%).
// Methods: Single (no sharing), EMP (Voronoi upload + Round-Robin,
// bandwidth-capped), Ours (relevance-aware), Unlimited.

#include <cstdio>

#include "bench_util.hpp"

using namespace erpd;
using bench::ScenarioFactory;

namespace {

const std::vector<std::uint64_t> kSeeds = {1, 2, 3};

double safe_rate(const std::vector<edge::MethodMetrics>& ms) {
  // Paper Fig. 10 metric: rate over the scripted conflict participants
  // (Single is 0% by construction — the occluded conflict always crashes).
  double acc = 0.0;
  for (const auto& m : ms) acc += m.conflict_safe_rate;
  return 100.0 * acc / static_cast<double>(ms.size());
}

double fleet_rate(const std::vector<edge::MethodMetrics>& ms) {
  double acc = 0.0;
  for (const auto& m : ms) acc += m.safe_passage_rate;
  return 100.0 * acc / static_cast<double>(ms.size());
}

void speed_sweep(const char* name, const ScenarioFactory& factory) {
  std::printf("\n--- %s: safe passage rate (%%) vs speed ---\n", name);
  std::printf("%8s | %8s %8s %8s %10s | %s\n", "km/h", "Single", "EMP",
              "Ours", "Unlimited", "(fleet-wide%% S/E/O/U)");
  for (double kmh : {20.0, 25.0, 30.0, 35.0, 40.0}) {
    sim::ScenarioConfig cfg;
    cfg.speed_kmh = kmh;
    cfg.total_vehicles = 20;
    cfg.pedestrians = 4;
    cfg.connected_fraction = 0.3;
    bench::coarse_lidar(cfg);
    const auto w = bench::safety_wireless();
    const auto s = bench::run_seeds(factory, cfg, edge::Method::kSingle,
                                    kSeeds, 15.0, w);
    const auto e =
        bench::run_seeds(factory, cfg, edge::Method::kEmp, kSeeds, 15.0, w);
    const auto o =
        bench::run_seeds(factory, cfg, edge::Method::kOurs, kSeeds, 15.0, w);
    const auto u = bench::run_seeds(factory, cfg, edge::Method::kUnlimited,
                                    kSeeds, 15.0, w);
    std::printf("%8.0f | %8.1f %8.1f %8.1f %10.1f | %.0f/%.0f/%.0f/%.0f\n",
                kmh, safe_rate(s), safe_rate(e), safe_rate(o), safe_rate(u),
                fleet_rate(s), fleet_rate(e), fleet_rate(o), fleet_rate(u));
  }
}

void connectivity_sweep(const char* name, const ScenarioFactory& factory) {
  std::printf("\n--- %s: safe passage rate (%%) vs %% connected ---\n", name);
  std::printf("%8s | %8s %8s %10s\n", "conn%", "EMP", "Ours", "Unlimited");
  for (double conn : {0.2, 0.3, 0.4, 0.5}) {
    sim::ScenarioConfig cfg;
    cfg.speed_kmh = 30.0;
    cfg.total_vehicles = 20;
    cfg.pedestrians = 4;
    cfg.connected_fraction = conn;
    bench::coarse_lidar(cfg);
    const auto w = bench::safety_wireless();
    const auto e =
        bench::run_seeds(factory, cfg, edge::Method::kEmp, kSeeds, 15.0, w);
    const auto o =
        bench::run_seeds(factory, cfg, edge::Method::kOurs, kSeeds, 15.0, w);
    const auto u = bench::run_seeds(factory, cfg, edge::Method::kUnlimited,
                                    kSeeds, 15.0, w);
    std::printf("%8.0f | %8.1f %8.1f %10.1f\n", conn * 100.0, safe_rate(e),
                safe_rate(o), safe_rate(u));
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 10 - safe passage rate",
      "mean over 3 seeds, 20 vehicles; Single has no sharing at all");

  speed_sweep("unprotected left turn", sim::make_unprotected_left_turn);
  speed_sweep("red-light violation", sim::make_red_light_violation);

  connectivity_sweep("unprotected left turn", sim::make_unprotected_left_turn);
  connectivity_sweep("red-light violation", sim::make_red_light_violation);

  std::printf(
      "\nExpected shape (paper Fig. 10): Single is 0%% everywhere (the\n"
      "scripted occluded conflict always ends in a crash); Ours is at or\n"
      "near 100%% below 40 km/h and stays highest at 40; EMP degrades with\n"
      "speed (round-robin delay) and with more connected vehicles\n"
      "(uplink contention loses objects).\n");
  return 0;
}
