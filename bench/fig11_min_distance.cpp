// Reproduces paper Fig. 11: minimum distance between the conflicting
// vehicles across driving speeds, per scenario and method. Single's minimum
// distance is 0 (they collide); Ours keeps a safe margin that shrinks as
// speed grows.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

using namespace erpd;

namespace {

const std::vector<std::uint64_t> kSeeds = {1, 2, 3};

double avg_key_distance(const std::vector<edge::MethodMetrics>& ms) {
  double acc = 0.0;
  for (const auto& m : ms) {
    acc += std::isfinite(m.min_key_distance) ? m.min_key_distance : 0.0;
  }
  return acc / static_cast<double>(ms.size());
}

void sweep(const char* name, const bench::ScenarioFactory& factory) {
  std::printf("\n--- %s: min ego-threat distance (m) vs speed ---\n", name);
  std::printf("%8s | %8s %8s %8s %10s\n", "km/h", "Single", "EMP", "Ours",
              "Unlimited");
  for (double kmh : {20.0, 30.0, 40.0}) {
    sim::ScenarioConfig cfg;
    cfg.speed_kmh = kmh;
    cfg.total_vehicles = 20;
    cfg.pedestrians = 4;
    cfg.connected_fraction = 0.3;
    bench::coarse_lidar(cfg);
    const auto w = bench::safety_wireless();
    const auto s = bench::run_seeds(factory, cfg, edge::Method::kSingle,
                                    kSeeds, 15.0, w);
    const auto e =
        bench::run_seeds(factory, cfg, edge::Method::kEmp, kSeeds, 15.0, w);
    const auto o =
        bench::run_seeds(factory, cfg, edge::Method::kOurs, kSeeds, 15.0, w);
    const auto u = bench::run_seeds(factory, cfg, edge::Method::kUnlimited,
                                    kSeeds, 15.0, w);
    std::printf("%8.0f | %8.2f %8.2f %8.2f %10.2f\n", kmh,
                avg_key_distance(s), avg_key_distance(e), avg_key_distance(o),
                avg_key_distance(u));
  }
}

}  // namespace

int main() {
  bench::print_header("Fig. 11 - minimum distance between the vehicles",
                      "mean over 3 seeds; 0 means they collided");
  sweep("unprotected left turn", sim::make_unprotected_left_turn);
  sweep("red-light violation", sim::make_red_light_violation);
  std::printf(
      "\nExpected shape (paper Fig. 11): Single is 0 m always; Ours keeps\n"
      "the largest margin, which shrinks with speed but stays several\n"
      "meters even at 40 km/h; EMP sits between Single and Ours.\n");
  return 0;
}
