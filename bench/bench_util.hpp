#pragma once
// Shared helpers for the figure-reproduction benches: scenario execution
// over seeds, aggregation, and paper-style table printing.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "edge/metrics_io.hpp"
#include "edge/system_runner.hpp"
#include "obs/json.hpp"
#include "sim/scenario.hpp"

namespace erpd::bench {

/// Collects one row per (sweep point, seed) run and serializes them through
/// the obs exporter: every row carries the RunManifest for the exact
/// RunnerConfig it was produced with plus the full MethodMetrics field set.
/// Figure benches use this for their --out=FILE mode.
class BenchExport {
 public:
  explicit BenchExport(std::string bench) : bench_(std::move(bench)) {}

  void add(const std::string& sweep, const edge::RunnerConfig& rc,
           std::uint64_t seed, const edge::MethodMetrics& m) {
    rows_.push_back(Row{sweep, edge::make_manifest(rc, sweep, seed), m});
  }

  std::string json() const {
    obs::JsonWriter w;
    w.begin_object();
    w.kv("bench", bench_);
    w.key("runs").begin_array();
    for (const Row& r : rows_) {
      w.begin_object();
      w.kv("sweep", r.sweep);
      obs::append_manifest(w, r.manifest);
      w.key("metrics").begin_object();
      edge::append_method_metrics(w, r.metrics);
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str() + "\n";
  }

  /// Write the document when `path` is non-empty; empty path is a no-op.
  bool write(const std::string& path) const {
    if (path.empty()) return true;
    return obs::write_file(path, json());
  }

 private:
  struct Row {
    std::string sweep;
    obs::RunManifest manifest;
    edge::MethodMetrics metrics;
  };
  std::string bench_;
  std::vector<Row> rows_;
};

/// Parse the shared bench CLI: `--out=FILE` selects the JSON export path
/// (empty = stdout tables only). Unknown flags abort with a usage line.
inline std::string parse_out(int argc, char** argv) {
  std::string out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--out=FILE]\n", argv[0]);
      std::exit(2);
    }
  }
  return out;
}

using ScenarioFactory =
    std::function<sim::Scenario(const sim::ScenarioConfig&)>;

/// Scaled-sensor evaluation setup. Relative to the paper's testbed
/// (64-channel, ~1M pts/frame, EMP-measured cellular caps) everything is
/// scaled by the same factor, preserving the shape of every bandwidth and
/// safety result; see DESIGN.md "Substitutions".
inline net::WirelessConfig bench_wireless() {
  net::WirelessConfig w;
  w.uplink_mbps = 16.0;
  w.downlink_mbps = 32.0;
  return w;
}

/// Safety sweeps (Figs. 10/11) use tighter caps so that EMP's Round-Robin
/// has to spread the traffic map over multiple rounds — the dissemination
/// delay the paper identifies as EMP's failure mode. (With our scaled-down
/// sensor the default caps would let RR ship the whole map every frame.)
inline net::WirelessConfig safety_wireless() {
  net::WirelessConfig w;
  w.uplink_mbps = 8.0;
  w.downlink_mbps = 2.5;
  return w;
}

/// Coarse sensor for safety sweeps (object-level visibility only).
inline void coarse_lidar(sim::ScenarioConfig& cfg) {
  cfg.world.lidar.channels = 16;
  cfg.world.lidar.azimuth_step_deg = 1.0;
}

/// Dense sensor for bandwidth/latency sweeps.
inline void dense_lidar(sim::ScenarioConfig& cfg) {
  cfg.world.lidar.channels = 32;
  cfg.world.lidar.azimuth_step_deg = 0.5;
}

inline double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

/// Run one (factory, method) combination for each seed and return the
/// per-seed metrics. When `ex` is set, each run is recorded as an export row
/// labeled `sweep`.
inline std::vector<edge::MethodMetrics> run_seeds(
    const ScenarioFactory& factory, sim::ScenarioConfig cfg,
    edge::Method method, const std::vector<std::uint64_t>& seeds,
    double duration = 18.0,
    const net::WirelessConfig& wireless = bench_wireless(),
    BenchExport* ex = nullptr, const std::string& sweep = {}) {
  std::vector<edge::MethodMetrics> out;
  for (std::uint64_t seed : seeds) {
    cfg.seed = seed;
    sim::Scenario sc = factory(cfg);
    edge::RunnerConfig rc = edge::make_runner_config(method, wireless);
    rc.duration = duration;
    edge::SystemRunner runner(rc);
    out.push_back(runner.run(sc));
    if (ex != nullptr) ex->add(sweep, rc, seed, out.back());
  }
  return out;
}

/// run_seeds with the redundancy-aware uplink (coverage-feedback suppression
/// + delta encoding, DESIGN.md §16) enabled at its default knobs.
inline std::vector<edge::MethodMetrics> run_seeds_redundant(
    const ScenarioFactory& factory, sim::ScenarioConfig cfg,
    edge::Method method, const std::vector<std::uint64_t>& seeds,
    double duration = 18.0,
    const net::WirelessConfig& wireless = bench_wireless(),
    BenchExport* ex = nullptr, const std::string& sweep = {}) {
  std::vector<edge::MethodMetrics> out;
  for (std::uint64_t seed : seeds) {
    cfg.seed = seed;
    sim::Scenario sc = factory(cfg);
    edge::RunnerConfig rc = edge::make_runner_config(method, wireless);
    rc.duration = duration;
    rc.redundancy.enabled = true;
    edge::SystemRunner runner(rc);
    out.push_back(runner.run(sc));
    if (ex != nullptr) ex->add(sweep, rc, seed, out.back());
  }
  return out;
}

/// Degraded-cellular profile for the fault sections of Figs. 12/14: ~30%
/// uplink Bernoulli loss, 10% downlink loss, exponential jitter against a
/// 50 ms delivery deadline, with the edge's staleness decay and track
/// coasting enabled so the pipeline rides through the gaps.
inline void degrade_network(edge::RunnerConfig& rc, std::uint64_t seed) {
  rc.fault.seed = seed;
  rc.fault.uplink_loss = 0.30;
  rc.fault.downlink_loss = 0.10;
  rc.fault.jitter_mean = 0.004;
  rc.fault.downlink_deadline = 0.050;
  rc.edge.staleness_decay = 0.15;
  rc.edge.tracker.max_coast_frames = 6;
}

/// run_seeds with the degraded-network profile applied (fault schedule is
/// derived from each scenario seed, so reruns are reproducible).
inline std::vector<edge::MethodMetrics> run_seeds_degraded(
    const ScenarioFactory& factory, sim::ScenarioConfig cfg,
    edge::Method method, const std::vector<std::uint64_t>& seeds,
    double duration = 18.0,
    const net::WirelessConfig& wireless = bench_wireless(),
    BenchExport* ex = nullptr, const std::string& sweep = {}) {
  std::vector<edge::MethodMetrics> out;
  for (std::uint64_t seed : seeds) {
    cfg.seed = seed;
    sim::Scenario sc = factory(cfg);
    edge::RunnerConfig rc = edge::make_runner_config(method, wireless);
    rc.duration = duration;
    degrade_network(rc, seed);
    edge::SystemRunner runner(rc);
    out.push_back(runner.run(sc));
    if (ex != nullptr) ex->add(sweep, rc, seed, out.back());
  }
  return out;
}

inline double avg(const std::vector<edge::MethodMetrics>& ms,
                  double (*get)(const edge::MethodMetrics&)) {
  std::vector<double> v;
  v.reserve(ms.size());
  for (const auto& m : ms) v.push_back(get(m));
  return mean_of(v);
}

inline void print_header(const char* title, const char* note = nullptr) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  if (note != nullptr) std::printf("%s\n", note);
  std::printf("================================================================\n");
}

}  // namespace erpd::bench
