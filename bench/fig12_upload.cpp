// Reproduces paper Fig. 12:
//   (a) uplink bandwidth consumption vs % connected vehicles
//       (Ours << EMP <= cap << Unlimited);
//   (b) number of (moving) objects detected from the uploaded data
//       (Ours ~ Unlimited > EMP; EMP degrades as contention grows).

#include <cstdio>

#include "bench_util.hpp"

using namespace erpd;

namespace {

const std::vector<std::uint64_t> kSeeds = {1, 2};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = bench::parse_out(argc, argv);
  bench::BenchExport ex("fig12_upload");
  bench::print_header(
      "Fig. 12 - data uploading",
      "dense sensor (32 ch x 0.5 deg); uplink cap 16 Mbit/s (scaled, see "
      "DESIGN.md); mean over 2 seeds, 10 s");

  std::printf("%8s | %28s | %22s | %25s\n", "", "(a) uplink Mbit/s",
              "(b) objects", "(c) offered kB/fr (drop%)");
  std::printf("%8s | %8s %8s %10s | %6s %6s %8s | %12s %12s\n", "conn%",
              "Ours", "EMP", "Unlimited", "Ours", "EMP", "Unlmtd", "Ours",
              "EMP");

  for (double conn : {0.2, 0.3, 0.4, 0.5}) {
    sim::ScenarioConfig cfg;
    cfg.speed_kmh = 30.0;
    cfg.total_vehicles = 20;
    cfg.pedestrians = 6;
    cfg.connected_fraction = conn;
    bench::dense_lidar(cfg);

    char sweep[32];
    std::snprintf(sweep, sizeof(sweep), "conn-%02.0f", conn * 100.0);
    const auto o =
        bench::run_seeds(sim::make_unprotected_left_turn, cfg,
                         edge::Method::kOurs, kSeeds, 10.0,
                         bench::bench_wireless(), &ex, sweep);
    const auto e =
        bench::run_seeds(sim::make_unprotected_left_turn, cfg,
                         edge::Method::kEmp, kSeeds, 10.0,
                         bench::bench_wireless(), &ex, sweep);
    const auto u =
        bench::run_seeds(sim::make_unprotected_left_turn, cfg,
                         edge::Method::kUnlimited, kSeeds, 10.0,
                         bench::bench_wireless(), &ex, sweep);

    const auto up = [](const edge::MethodMetrics& m) { return m.uplink_mbps; };
    const auto obj = [](const edge::MethodMetrics& m) {
      return m.avg_objects_detected;
    };
    const auto off = [](const edge::MethodMetrics& m) {
      return m.uplink_offered_bytes_per_frame / 1024.0;
    };
    const auto drop = [](const edge::MethodMetrics& m) {
      return 100.0 * m.uplink_drop_ratio;
    };
    std::printf(
        "%8.0f | %8.2f %8.2f %10.2f | %6.1f %6.1f %8.1f | %6.1f (%3.0f) "
        "%6.1f (%3.0f)\n",
        conn * 100.0, bench::avg(o, up), bench::avg(e, up), bench::avg(u, up),
        bench::avg(o, obj), bench::avg(e, obj), bench::avg(u, obj),
        bench::avg(o, off), bench::avg(o, drop), bench::avg(e, off),
        bench::avg(e, drop));
  }

  // Redundancy addendum: the coverage-feedback + delta-encoding uplink
  // (DESIGN.md §16) on top of Ours. Offered bytes shrink several-fold while
  // the uploaded data still feeds the same detection pipeline.
  std::printf("\n(e) redundancy-aware uplink (coverage feedback + delta "
              "encoding), Ours\n");
  std::printf("%8s | %10s %10s %9s | %10s %8s %8s\n", "conn%", "off kB/fr",
              "red kB/fr", "reduct", "suppr kB", "objects", "fb msgs");
  for (double conn : {0.2, 0.3, 0.4, 0.5}) {
    sim::ScenarioConfig cfg;
    cfg.speed_kmh = 30.0;
    cfg.total_vehicles = 20;
    cfg.pedestrians = 6;
    cfg.connected_fraction = conn;
    bench::dense_lidar(cfg);
    char sweep[40];
    std::snprintf(sweep, sizeof(sweep), "redundancy-conn-%02.0f",
                  conn * 100.0);
    const auto plain =
        bench::run_seeds(sim::make_unprotected_left_turn, cfg,
                         edge::Method::kOurs, kSeeds, 10.0,
                         bench::bench_wireless(), nullptr, {});
    const auto red = bench::run_seeds_redundant(
        sim::make_unprotected_left_turn, cfg, edge::Method::kOurs, kSeeds,
        10.0, bench::bench_wireless(), &ex, sweep);
    const auto off = [](const edge::MethodMetrics& m) {
      return m.uplink_offered_bytes_per_frame / 1024.0;
    };
    const auto sup = [](const edge::MethodMetrics& m) {
      return m.uplink_suppressed_bytes_per_frame / 1024.0;
    };
    const auto obj = [](const edge::MethodMetrics& m) {
      return m.avg_objects_detected;
    };
    const auto fb = [](const edge::MethodMetrics& m) {
      return static_cast<double>(m.coverage_feedback_msgs);
    };
    const double off_plain = bench::avg(plain, off);
    const double off_red = bench::avg(red, off);
    std::printf("%8.0f | %10.1f %10.1f %8.2fx | %10.1f %8.1f %8.0f\n",
                conn * 100.0, off_plain, off_red,
                off_red > 0.0 ? off_plain / off_red : 0.0,
                bench::avg(red, sup), bench::avg(red, obj),
                bench::avg(red, fb));
  }

  // Degraded-network addendum: the same upload pipeline under ~30% uplink
  // loss. Detection dips but the edge coasts confirmed tracks through the
  // gaps instead of dropping them.
  std::printf("\n(d) degraded network (30%% uplink loss, 10%% downlink "
              "loss, 50 ms deadline), Ours\n");
  std::printf("%8s | %10s %8s %10s %10s %10s\n", "conn%", "loss meas",
              "objects", "coast fr", "stale fr", "miss%");
  for (double conn : {0.2, 0.5}) {
    sim::ScenarioConfig cfg;
    cfg.speed_kmh = 30.0;
    cfg.total_vehicles = 20;
    cfg.pedestrians = 6;
    cfg.connected_fraction = conn;
    bench::dense_lidar(cfg);
    char sweep[40];
    std::snprintf(sweep, sizeof(sweep), "degraded-conn-%02.0f", conn * 100.0);
    const auto d = bench::run_seeds_degraded(
        sim::make_unprotected_left_turn, cfg, edge::Method::kOurs, kSeeds,
        10.0, bench::bench_wireless(), &ex, sweep);
    const auto loss = [](const edge::MethodMetrics& m) {
      return m.uplink_loss_ratio;
    };
    const auto obj = [](const edge::MethodMetrics& m) {
      return m.avg_objects_detected;
    };
    const auto coast = [](const edge::MethodMetrics& m) {
      return static_cast<double>(m.coasted_track_frames);
    };
    const auto stale = [](const edge::MethodMetrics& m) {
      return static_cast<double>(m.stale_relevance_frames);
    };
    const auto miss = [](const edge::MethodMetrics& m) {
      return 100.0 * m.downlink_deadline_miss_ratio;
    };
    std::printf("%8.0f | %10.3f %8.1f %10.0f %10.0f %10.1f\n", conn * 100.0,
                bench::avg(d, loss), bench::avg(d, obj), bench::avg(d, coast),
                bench::avg(d, stale), bench::avg(d, miss));
  }

  std::printf(
      "\nExpected shape (paper Fig. 12): Ours consumes far less uplink than\n"
      "EMP (static structure removed) and both are dwarfed by Unlimited's\n"
      "raw frames; EMP rides at/near the cap, so it detects fewer objects,\n"
      "and the gap widens as more vehicles share the uplink, while Ours\n"
      "matches Unlimited's object count. Column (c) separates demand from\n"
      "goodput: EMP offers more than the cap admits (high drop%%), while\n"
      "Ours' moving-object uploads fit with room to spare.\n");
  if (!ex.write(out_path)) {
    std::fprintf(stderr, "fig12_upload: cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!out_path.empty()) std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
