// Reproduces paper Fig. 14:
//   (a) end-to-end latency (sensor frame -> dissemination delivered) vs %
//       connected vehicles — must fit the 100 ms inter-frame budget;
//   (b) per-module runtime breakdown at 20% connected: Moving Object
//       Extraction dominates, the dissemination decision takes ~1 ms.

#include <cstdio>

#include "bench_util.hpp"

using namespace erpd;

namespace {
const std::vector<std::uint64_t> kSeeds = {1, 2};
}

int main(int argc, char** argv) {
  const std::string out_path = bench::parse_out(argc, argv);
  bench::BenchExport ex("fig14_latency");
  bench::print_header(
      "Fig. 14 - end-to-end latency",
      "dense sensor; wall-clock runtimes on this host (see DESIGN.md for\n"
      "the Jetson-TX2/RTX-3080 substitution note); mean over 2 seeds, 8 s");

  std::printf("(a) end-to-end latency vs %% connected\n");
  std::printf("%8s | %10s\n", "conn%", "e2e (ms)");
  edge::MethodMetrics at20{};
  for (double conn : {0.2, 0.3, 0.4, 0.5}) {
    sim::ScenarioConfig cfg;
    cfg.speed_kmh = 30.0;
    cfg.total_vehicles = 20;
    cfg.pedestrians = 6;
    cfg.connected_fraction = conn;
    bench::dense_lidar(cfg);
    char sweep[32];
    std::snprintf(sweep, sizeof(sweep), "conn-%02.0f", conn * 100.0);
    const auto o =
        bench::run_seeds(sim::make_unprotected_left_turn, cfg,
                         edge::Method::kOurs, kSeeds, 8.0,
                         bench::bench_wireless(), &ex, sweep);
    const auto e2e = [](const edge::MethodMetrics& m) { return m.e2e_latency; };
    std::printf("%8.0f | %10.2f\n", conn * 100.0, 1e3 * bench::avg(o, e2e));
    if (conn == 0.2) at20 = o.front();
  }

  std::printf("\n(b) per-module runtime at 20%% connected (ms)\n");
  std::printf("%-28s %10.3f\n", "Moving Object Extraction",
              1e3 * at20.extraction_seconds);
  std::printf("%-28s %10.3f\n", "Upload (wireless transfer)",
              1e3 * at20.upload_seconds);
  std::printf("%-28s %10.3f\n", "Traffic-map merge/detect",
              1e3 * at20.merge_seconds);
  std::printf("%-28s %10.3f\n", "Track+predict+relevance",
              1e3 * at20.track_predict_seconds);
  std::printf("%-28s %10.3f\n", "Dissemination decision",
              1e3 * at20.dissemination_decision_seconds);
  std::printf("%-28s %10.3f\n", "Downlink transfer",
              1e3 * at20.downlink_transfer_seconds);
  std::printf("%-28s %10.3f\n", "END-TO-END", 1e3 * at20.e2e_latency);

  // Degraded-network addendum: jitter pushes some deliveries past the 50 ms
  // deadline; the e2e figure tracks the slowest *delivered* message.
  std::printf("\n(c) degraded network (30%% uplink loss + jitter, 50 ms "
              "deadline), Ours\n");
  std::printf("%8s | %10s %10s %10s\n", "conn%", "e2e (ms)", "loss meas",
              "miss%");
  for (double conn : {0.2, 0.5}) {
    sim::ScenarioConfig cfg;
    cfg.speed_kmh = 30.0;
    cfg.total_vehicles = 20;
    cfg.pedestrians = 6;
    cfg.connected_fraction = conn;
    bench::dense_lidar(cfg);
    char sweep[40];
    std::snprintf(sweep, sizeof(sweep), "degraded-conn-%02.0f", conn * 100.0);
    const auto d = bench::run_seeds_degraded(
        sim::make_unprotected_left_turn, cfg, edge::Method::kOurs, kSeeds,
        8.0, bench::bench_wireless(), &ex, sweep);
    const auto e2e = [](const edge::MethodMetrics& m) { return m.e2e_latency; };
    const auto loss = [](const edge::MethodMetrics& m) {
      return m.uplink_loss_ratio;
    };
    const auto miss = [](const edge::MethodMetrics& m) {
      return 100.0 * m.downlink_deadline_miss_ratio;
    };
    std::printf("%8.0f | %10.2f %10.3f %10.1f\n", conn * 100.0,
                1e3 * bench::avg(d, e2e), bench::avg(d, loss),
                bench::avg(d, miss));
  }

  std::printf(
      "\nExpected shape (paper Fig. 14): latency grows with the number of\n"
      "connected vehicles but stays within the 100 ms frame interval;\n"
      "extraction is the dominant term, map construction a few ms, and the\n"
      "greedy dissemination decision ~1 ms.\n");
  if (!ex.write(out_path)) {
    std::fprintf(stderr, "fig14_latency: cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!out_path.empty()) std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
