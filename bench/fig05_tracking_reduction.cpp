// Reproduces the paper's Fig. 5 / SS II-D scalability claim: with Rules 1-3
// the edge server predicts trajectories for only a handful of representative
// objects (paper: 30 vehicles + 20 pedestrians -> 7 vehicles + 4
// pedestrians).

#include <cstdio>
#include <random>

#include "sim/scenario.hpp"
#include "track/rules.hpp"

#include "bench_util.hpp"

int main() {
  using namespace erpd;
  const sim::RoadNetwork net{sim::RoadConfig{}};
  track::RuleEngine rules(net);

  bench::print_header(
      "Fig. 5 - tracked-object reduction from Rules 1-3",
      "objects on the map vs trajectories actually predicted");
  std::printf("%10s %12s | %9s %9s %9s %9s | %10s\n", "vehicles",
              "pedestrians", "predict", "rule1", "rule2", "rule3",
              "reduction");

  std::mt19937_64 rng(17);
  for (int scale = 1; scale <= 5; ++scale) {
    // Build a synthetic confirmed-track population: queues on every approach
    // lane, a couple of vehicles inside the box, pedestrian crowds at the
    // corners.
    track::MultiObjectTracker tracker;
    std::vector<track::Detection> dets;
    auto add = [&](geom::Vec2 pos, geom::Vec2 vel, sim::AgentKind kind) {
      track::Detection d;
      d.position = pos;
      d.velocity = vel;
      d.kind = kind;
      d.extent = kind == sim::AgentKind::kPedestrian ? 0.5 : 4.5;
      d.payload_bytes = 900;
      dets.push_back(d);
    };

    int vehicles = 0;
    for (int a = 0; a < sim::kArmCount; ++a) {
      for (int lane = 0; lane < net.config().lanes_per_direction; ++lane) {
        const auto rid = net.find_route(static_cast<sim::Arm>(a), lane,
                                        sim::Maneuver::kStraight);
        const sim::Route& r = net.route(*rid);
        for (int k = 0; k < scale; ++k) {
          const double s = r.stop_line_s - 14.0 - 13.0 * k;
          if (s < 5.0) continue;
          add(r.path.point_at(s), r.path.tangent_at(s) * 7.0,
              sim::AgentKind::kCar);
          ++vehicles;
        }
      }
    }
    // Two movers inside the box.
    {
      const auto rid = net.find_route(sim::Arm::kSouth, 0, sim::Maneuver::kLeft);
      const sim::Route& r = net.route(*rid);
      const double mid = 0.5 * (r.box_entry_s + r.box_exit_s);
      add(r.path.point_at(mid), r.path.tangent_at(mid) * 5.0,
          sim::AgentKind::kCar);
      ++vehicles;
    }

    int pedestrians = 0;
    for (const auto& p :
         sim::generate_crosswalk_crowd(net, 4 + 4 * scale, rng)) {
      add(p.position, geom::Vec2::from_heading(p.heading) * p.speed,
          sim::AgentKind::kPedestrian);
      ++pedestrians;
    }

    // Feed twice so everything confirms, with a small forward step.
    tracker.step(dets, 0.0);
    for (auto& d : dets) d.position += d.velocity.value_or(geom::Vec2{}) * 0.1;
    tracker.step(dets, 0.1);

    const auto reps = rules.select(tracker.confirmed());
    const double total = vehicles + pedestrians;
    std::printf("%10d %12d | %9zu %9zu %9zu %9zu | %9.1fx\n", vehicles,
                pedestrians, reps.predicted_tracks.size(),
                reps.lane_leaders.size(), reps.boundary_vehicles.size(),
                reps.pedestrian_representatives.size(),
                total / static_cast<double>(
                            std::max<std::size_t>(reps.predicted_tracks.size(), 1)));
  }
  std::printf(
      "\nExpected shape (paper): predictions stay ~constant (one leader per\n"
      "approach lane + boundary vehicles + one representative per crowd)\n"
      "while the object count grows - e.g. 30 veh + 20 ped -> 7 + 4.\n");
  return 0;
}
