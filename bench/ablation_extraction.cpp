// Ablation (§II-B): Moving Objects Extraction — per-stage data reduction
// (paper: 2-3 MB raw -> <20 KB) and per-stage runtime on realistic frames
// synthesized by the simulator's LiDAR over an intersection scene.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "pointcloud/encoding.hpp"
#include "pointcloud/moving_extractor.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace erpd;

/// A scenario world + a connected viewer to scan from.
struct Scene {
  sim::Scenario sc;
  sim::AgentId viewer;

  static Scene make(int channels, double az_step) {
    sim::ScenarioConfig cfg;
    cfg.speed_kmh = 30.0;
    cfg.total_vehicles = 20;
    cfg.pedestrians = 6;
    cfg.connected_fraction = 0.4;
    cfg.seed = 3;
    cfg.world.lidar.channels = channels;
    cfg.world.lidar.azimuth_step_deg = az_step;
    Scene s{sim::make_unprotected_left_turn(cfg), sim::kInvalidAgent};
    s.viewer = s.sc.ego;
    return s;
  }
};

void reduction_table() {
  std::printf("\nData reduction per stage (one LiDAR frame, 64 ch x 0.2 deg)\n");
  Scene scene = Scene::make(64, 0.2);
  sim::World& w = scene.sc.world;

  pc::MovingExtractorConfig mcfg;
  mcfg.ground.sensor_height = w.config().sensor_height;
  pc::MovingObjectExtractor ex(mcfg);

  // Warm up motion history, then measure the steady-state frame.
  pc::ExtractionResult res;
  sim::LidarScan scan;
  for (int f = 0; f < 8; ++f) {
    scan = w.scan_from(scene.viewer);
    const sim::Vehicle* v = w.find_vehicle(scene.viewer);
    res = ex.process(scan.cloud,
                     v->sensor_pose(w.network(), w.config().sensor_height),
                     w.time());
    w.step();
  }

  const std::size_t raw_b = res.stats.raw_points * pc::kRawBytesPerPoint;
  const std::size_t ground_b = res.stats.after_ground * pc::kRawBytesPerPoint;
  std::size_t moving_b = 0;
  for (const auto& o : res.objects) moving_b += pc::encoded_size_bytes(o.point_count);

  std::printf("%-34s %10zu pts %10.1f KB\n", "raw frame", res.stats.raw_points,
              raw_b / 1024.0);
  std::printf("%-34s %10zu pts %10.1f KB\n", "after ground removal",
              res.stats.after_ground, ground_b / 1024.0);
  std::printf("%-34s %10zu pts %10.1f KB  (%zu objects)\n",
              "moving objects only (encoded)", res.stats.moving_points,
              moving_b / 1024.0, res.objects.size());
  std::printf("reduction: %.0fx\n\n",
              static_cast<double>(raw_b) / std::max<std::size_t>(moving_b, 1));
}

void BM_LidarScan(benchmark::State& state) {
  Scene scene = Scene::make(static_cast<int>(state.range(0)), 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scene.sc.world.scan_from(scene.viewer));
  }
}
BENCHMARK(BM_LidarScan)->Arg(16)->Arg(32)->Arg(64);

void BM_Extraction(benchmark::State& state) {
  Scene scene = Scene::make(32, 0.4);
  sim::World& w = scene.sc.world;
  pc::MovingExtractorConfig mcfg;
  mcfg.ground.sensor_height = w.config().sensor_height;
  pc::MovingObjectExtractor ex(mcfg);
  const sim::LidarScan scan = w.scan_from(scene.viewer);
  const sim::Vehicle* v = w.find_vehicle(scene.viewer);
  const geom::Pose pose =
      v->sensor_pose(w.network(), w.config().sensor_height);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.process(scan.cloud, pose, t));
    t += 0.1;
  }
}
BENCHMARK(BM_Extraction);

void BM_EncodeDecode(benchmark::State& state) {
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> u(-25.0, 25.0);
  pc::PointCloud cloud;
  for (int i = 0; i < 5000; ++i) cloud.push_back({u(rng), u(rng), u(rng) * 0.1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(pc::decode(pc::encode(cloud)));
  }
}
BENCHMARK(BM_EncodeDecode);

}  // namespace

int main(int argc, char** argv) {
  reduction_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
