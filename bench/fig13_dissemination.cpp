// Reproduces paper Fig. 13: downlink (dissemination) bandwidth vs %
// connected vehicles. Ours sends only relevant objects to the vehicles that
// need them; EMP round-robins the whole map within the cap; Unlimited
// broadcasts everything to everyone and grows superlinearly.

#include <cstdio>

#include "bench_util.hpp"

using namespace erpd;

namespace {
const std::vector<std::uint64_t> kSeeds = {1, 2};
}

int main() {
  bench::print_header(
      "Fig. 13 - dissemination bandwidth (Mbit/s)",
      "downlink cap 32 Mbit/s (scaled); mean over 2 seeds, 10 s");

  std::printf("%8s | %8s %8s %10s | %16s\n", "conn%", "Ours", "EMP",
              "Unlimited", "Ours disseminations");
  for (double conn : {0.2, 0.3, 0.4, 0.5}) {
    sim::ScenarioConfig cfg;
    cfg.speed_kmh = 30.0;
    cfg.total_vehicles = 20;
    cfg.pedestrians = 6;
    cfg.connected_fraction = conn;
    bench::dense_lidar(cfg);

    const auto o = bench::run_seeds(sim::make_unprotected_left_turn, cfg,
                                    edge::Method::kOurs, kSeeds, 10.0);
    const auto e = bench::run_seeds(sim::make_unprotected_left_turn, cfg,
                                    edge::Method::kEmp, kSeeds, 10.0);
    const auto u = bench::run_seeds(sim::make_unprotected_left_turn, cfg,
                                    edge::Method::kUnlimited, kSeeds, 10.0);

    const auto down = [](const edge::MethodMetrics& m) {
      return m.downlink_mbps;
    };
    const auto n = [](const edge::MethodMetrics& m) {
      return static_cast<double>(m.disseminations);
    };
    std::printf("%8.0f | %8.2f %8.2f %10.2f | %16.0f\n", conn * 100.0,
                bench::avg(o, down), bench::avg(e, down), bench::avg(u, down),
                bench::avg(o, n));
  }

  std::printf(
      "\nExpected shape (paper Fig. 13): Ours grows slowly with the fleet\n"
      "(only relevant objects are sent); EMP is pinned at the downlink cap;\n"
      "Unlimited grows superlinearly (objects x receivers) far beyond any\n"
      "wireless budget.\n");
  return 0;
}
