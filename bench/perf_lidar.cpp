// Microbench isolating LidarSensor::scan from the rest of the pipeline.
//
// Sweeps target count (10 / 100 / 1000 prisms scattered around the sensor)
// and azimuth resolution, timing repeated scans of a frozen scene on both
// the accelerated path and the brute-force reference path. Reports points
// per second (total emitted returns / scan wall time) so sensing throughput
// is tracked independently of the full perf_pipeline closed loop, and
// cross-checks that both paths emit byte-identical clouds before timing
// anything (a cheap standing instance of test_lidar_equivalence).
//
// Usage: perf_lidar [--quick] [--out=FILE]
//   --quick     fewer repetitions and no 1000-target row (CI smoke)
//   --out=FILE  output path (default BENCH_lidar.json in the CWD)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/rng.hpp"
#include "geom/angle.hpp"
#include "geom/obb.hpp"
#include "obs/json.hpp"
#include "sim/lidar.hpp"

using namespace erpd;

namespace {

double canon(core::SplitMix64& g) { return double(g() >> 11) * 0x1p-53; }

/// Deterministic ring-of-prisms scene: `n` car-sized boxes at seeded
/// uniform positions within sensor range, a handful marked static.
std::vector<sim::LidarTarget> make_scene(std::size_t n, double max_range,
                                         std::uint64_t seed) {
  std::vector<sim::LidarTarget> targets;
  targets.reserve(n);
  core::SplitMix64 g(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = canon(g) * geom::kTwoPi;
    // sqrt for area-uniform placement; keep a 3 m clear bubble at the eye.
    const double r = 3.0 + (max_range - 6.0) * std::sqrt(canon(g));
    const geom::Vec2 c = geom::Vec2::from_heading(ang) * r;
    const double heading = canon(g) * geom::kTwoPi;
    targets.push_back(sim::LidarTarget{
        geom::Obb{c, heading, 4.5, 1.9}, 0.0, 1.6,
        i % 8 == 7 ? sim::AgentId{-1} : static_cast<sim::AgentId>(i)});
  }
  return targets;
}

struct SweepResult {
  std::size_t points_per_scan{0};
  double accel_pts_per_sec{0.0};
  double brute_pts_per_sec{0.0};
  double speedup{0.0};
};

double time_scans(const sim::LidarSensor& sensor, const geom::Pose& pose,
                  const std::vector<sim::LidarTarget>& targets, int reps,
                  std::size_t* points_out) {
  // Fresh RNG per rep with a rep-dependent seed: real frames never reuse a
  // generator state, and varying the noise stream keeps the branch profile
  // honest without changing the workload size.
  double best = 1e300;  // min-of-reps rejects scheduler noise
  for (int rep = 0; rep < reps; ++rep) {
    std::mt19937_64 rng(42 + static_cast<std::uint64_t>(rep));
    const auto t0 = std::chrono::steady_clock::now();
    const sim::LidarScan scan = sensor.scan(pose, targets, rng);
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::min(best, dt);
    *points_out = scan.cloud.size();
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_lidar.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }

  const int reps = quick ? 5 : 20;
  const std::vector<std::size_t> target_counts =
      quick ? std::vector<std::size_t>{10, 100}
            : std::vector<std::size_t>{10, 100, 1000};
  // Azimuth resolutions: coarse safety sensor, the bench default, and the
  // densest config the scenario suite uses.
  const std::vector<double> az_steps = {1.0, 0.5, 0.2};

  const geom::Pose pose{geom::Vec3{3.0, -2.0, 1.9}, 0.35, 0.0, 0.0};

  bench::print_header("perf_lidar - LidarSensor::scan microbench",
                      quick ? "quick mode (CI smoke)" : nullptr);
  std::printf("%7s %8s %10s %12s %12s %9s\n", "targets", "az_step", "pts/scan",
              "accel pts/s", "brute pts/s", "speedup");

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "perf_lidar");
  w.kv("quick", quick);
  w.kv("reps", reps);
  w.key("sweeps").begin_array();

  bool all_equivalent = true;
  for (const std::size_t n_targets : target_counts) {
    for (const double az_step : az_steps) {
      sim::LidarConfig cfg;
      cfg.channels = 32;
      cfg.azimuth_step_deg = az_step;
      cfg.noise_sigma = 0.02;

      sim::LidarSensor sensor(cfg);
      const std::vector<sim::LidarTarget> targets =
          make_scene(n_targets, cfg.max_range, 7u * n_targets + 1u);

      // Equivalence gate: identical RNG seed -> the two paths must agree
      // byte for byte before their timings mean anything.
      {
        std::mt19937_64 ra(42), rb(42);
        sim::LidarSensor ref = sensor;
        ref.set_brute_force(true);
        const sim::LidarScan sa = sensor.scan(pose, targets, ra);
        const sim::LidarScan sb = ref.scan(pose, targets, rb);
        const bool same = sa.cloud.points() == sb.cloud.points() &&
                          sa.points_per_agent == sb.points_per_agent &&
                          sa.ground_points == sb.ground_points &&
                          sa.static_points == sb.static_points;
        if (!same) {
          std::fprintf(stderr,
                       "perf_lidar: FAIL - accel/brute divergence at "
                       "%zu targets, az_step %.2f\n",
                       n_targets, az_step);
          all_equivalent = false;
          continue;
        }
      }

      SweepResult res;
      const double accel_s =
          time_scans(sensor, pose, targets, reps, &res.points_per_scan);
      sim::LidarSensor brute = sensor;
      brute.set_brute_force(true);
      std::size_t brute_points = 0;
      const double brute_s =
          time_scans(brute, pose, targets, quick ? 2 : 5, &brute_points);

      const double pts = static_cast<double>(res.points_per_scan);
      res.accel_pts_per_sec = accel_s > 0.0 ? pts / accel_s : 0.0;
      res.brute_pts_per_sec = brute_s > 0.0 ? pts / brute_s : 0.0;
      res.speedup = accel_s > 0.0 ? brute_s / accel_s : 0.0;

      std::printf("%7zu %8.2f %10zu %11.2fM %11.2fM %8.2fx\n", n_targets,
                  az_step, res.points_per_scan, res.accel_pts_per_sec / 1e6,
                  res.brute_pts_per_sec / 1e6, res.speedup);

      w.begin_object();
      w.kv("targets", static_cast<std::uint64_t>(n_targets));
      w.kv("azimuth_step_deg", az_step);
      w.kv("channels", cfg.channels);
      w.kv("points_per_scan", static_cast<std::uint64_t>(res.points_per_scan));
      w.kv("accel_points_per_sec", res.accel_pts_per_sec);
      w.kv("brute_points_per_sec", res.brute_pts_per_sec);
      w.kv("speedup_vs_brute", res.speedup);
      w.end_object();
    }
  }

  w.end_array();
  w.kv("equivalent", all_equivalent);
  w.end_object();
  if (!obs::write_file(out_path, w.str() + "\n")) {
    std::fprintf(stderr, "perf_lidar: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return all_equivalent ? 0 : 1;
}
