// Fault + overload soak harness for the service-mode edge pipeline
// (DESIGN.md §17).
//
// Runs the closed loop as a long-lived service: back-to-back scenario
// episodes (successive traffic waves through the same intersection shape,
// each with a fresh per-episode seed) under the combined stress the fault
// matrix applies one axis at a time — 10% uplink loss, latency jitter, a
// mid-episode burst outage, 5% payload corruption plus one Byzantine
// background vehicle, the hardened-ingest point budget, the redundancy
// uplink, and the deadline-budget admission controller, all at once.
//
// Gates (all must hold for exit code 0; the JSON report carries the raw
// series so tools/check_bench.py --soak re-checks them in CI):
//   - zero contract violations across every episode;
//   - behavior fingerprints bit-identical at 1/2/8 workers and under a
//     det-hash shuffle (episode 0 is re-run as the sweep probe);
//   - flat memory: mean resident set of the back half of the run within
//     15% of the front half (leaks grow without bound; caches plateau);
//   - stable stage.e2e p99: back-half mean within 3x of the front half
//     (the span folds host-measured module times, so the band is generous
//     against machine noise while still catching monotone degradation).
//
// Usage: soak [--quick] [--sim-seconds=N] [--seed=N] [--out=FILE]
//   --quick          target 600 simulated seconds (CI smoke; ~1 min wall)
//   --sim-seconds=N  explicit target (default 7200 — two simulated hours)
//   --seed=N         base seed for the episode sequence (default 42)
//   --out=FILE       JSON report path (default SOAK_report.json in the CWD)

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#ifdef __linux__
#include <unistd.h>
#endif

#include "core/check.hpp"
#include "core/det_hash.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "edge/system_runner.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/scenario.hpp"

using namespace erpd;

namespace {

constexpr double kEpisodeSeconds = 14.0;

/// Resident set size in kilobytes (0 where /proc is unavailable).
long resident_kb() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total = 0;
  long resident = 0;
  const int n = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return resident * (sysconf(_SC_PAGESIZE) / 1024);
#else
  return 0;
#endif
}

std::uint64_t fold(std::uint64_t h, double v) {
  return core::seed_mix(h, std::bit_cast<std::uint64_t>(v));
}
std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return core::seed_mix(h, v);
}

/// Behavioral fingerprint over the simulated MethodMetrics fields — the
/// same subset the scenario harness locks goldens with (wall-clock stage
/// timings excluded), including the service-layer fate counters. Bit-equal
/// across worker counts and det-hash shuffles by the determinism contract.
std::uint64_t fingerprint_of(const edge::MethodMetrics& m) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  h = fold(h, static_cast<std::uint64_t>(m.vehicles_entered));
  h = fold(h, static_cast<std::uint64_t>(m.vehicles_safe));
  h = fold(h, static_cast<std::uint64_t>(m.collisions));
  h = fold(h, static_cast<std::uint64_t>(m.ego_safe ? 1 : 0));
  h = fold(h, m.safe_passage_rate);
  h = fold(h, m.min_key_distance);
  h = fold(h, m.uplink_bytes_per_frame);
  h = fold(h, m.downlink_bytes_per_frame);
  h = fold(h, m.uplink_offered_bytes_per_frame);
  h = fold(h, m.uplink_drop_ratio);
  h = fold(h, m.avg_objects_detected);
  h = fold(h, m.delivered_relevance);
  h = fold(h, static_cast<std::uint64_t>(m.disseminations));
  h = fold(h, m.uplink_loss_ratio);
  h = fold(h, m.downlink_deadline_miss_ratio);
  h = fold(h, static_cast<std::uint64_t>(m.coasted_track_frames));
  h = fold(h, static_cast<std::uint64_t>(m.ingest_rejected_crc));
  h = fold(h, static_cast<std::uint64_t>(m.ingest_rejected_semantic));
  h = fold(h, static_cast<std::uint64_t>(m.ingest_quarantined_vehicles));
  h = fold(h, static_cast<std::uint64_t>(m.ingest_shed_uploads));
  h = fold(h, m.uplink_suppressed_bytes_per_frame);
  h = fold(h, m.uplink_capped_bytes_per_frame);
  h = fold(h, m.uplink_lost_bytes_per_frame);
  h = fold(h, m.uplink_backpressure_bytes_per_frame);
  h = fold(h, static_cast<std::uint64_t>(m.coverage_feedback_msgs));
  h = fold(h, static_cast<std::uint64_t>(m.service_arrived_objects));
  h = fold(h, static_cast<std::uint64_t>(m.service_admitted_objects));
  h = fold(h, static_cast<std::uint64_t>(m.service_deferred_objects));
  h = fold(h, static_cast<std::uint64_t>(m.service_shed_objects));
  h = fold(h, static_cast<std::uint64_t>(m.service_parked_residual));
  h = fold(h, static_cast<std::uint64_t>(m.service_backpressure_uploads));
  return h;
}

/// Same intersection shape the fault matrix soaks (coarse LiDAR keeps the
/// per-episode wall cost around a second).
sim::ScenarioConfig soak_intersection(std::uint64_t seed) {
  sim::ScenarioConfig cfg;
  cfg.speed_kmh = 28.0;
  cfg.total_vehicles = 12;
  cfg.pedestrians = 3;
  cfg.connected_fraction = 0.5;
  cfg.seed = seed;
  cfg.world.lidar.channels = 16;
  cfg.world.lidar.azimuth_step_deg = 1.0;
  return cfg;
}

/// Every stress axis the fault matrix exercises singly, combined.
edge::RunnerConfig soak_runner(std::uint64_t fault_seed) {
  net::WirelessConfig wireless;
  wireless.uplink_mbps = 16.0;
  wireless.downlink_mbps = 32.0;
  edge::RunnerConfig rc = edge::make_runner_config(edge::Method::kOurs,
                                                   wireless);
  rc.duration = kEpisodeSeconds;
  rc.fault.seed = fault_seed;
  rc.fault.uplink_loss = 0.10;
  rc.fault.jitter_mean = 0.010;
  rc.fault.downlink_deadline = 0.060;
  rc.fault.outages.push_back({4.0, 1.5});
  rc.fault.uplink_corruption = 0.05;
  rc.edge.staleness_decay = 0.10;
  rc.edge.tracker.max_coast_frames = 8;
  rc.edge.ingest.enabled = true;
  rc.edge.ingest.point_budget_per_frame = 600;
  rc.redundancy.enabled = true;
  rc.service.enabled = true;
  rc.service.decode_merge_budget_us = 100;
  return rc;
}

struct EpisodeResult {
  std::uint64_t fingerprint{0};
  double e2e_p50_ms{0.0};
  double e2e_p99_ms{0.0};
  double pool_jobs{0.0};
  long rss_kb{0};
  edge::MethodMetrics metrics{};
  bool violated{false};
  std::string what;
};

EpisodeResult run_episode(std::uint64_t base_seed, std::uint64_t episode) {
  const std::uint64_t seed = core::seed_mix(base_seed, episode);
  sim::Scenario sc = sim::make_unprotected_left_turn(soak_intersection(seed));
  edge::RunnerConfig rc = soak_runner(core::seed_mix(seed, 0xfaull));

  // One Byzantine connected background car per episode (scripted vehicles
  // are created first, so the reverse walk lands on background traffic).
  const auto& vehicles = sc.world.vehicles();
  for (auto it = vehicles.rbegin(); it != vehicles.rend(); ++it) {
    if (!it->params().connected || it->params().parked) continue;
    if (it->id() == sc.ego || it->id() == sc.threat ||
        it->id() == sc.ego_follower) {
      continue;
    }
    rc.fault.byzantine.push_back({it->id(), 2.0});
    break;
  }

  obs::MetricsRegistry registry;
  rc.metrics = &registry;

  EpisodeResult r;
  try {
    edge::SystemRunner runner(rc);
    r.metrics = runner.run(sc);
    r.fingerprint = fingerprint_of(r.metrics);
  } catch (const erpd::ContractViolation& e) {
    r.violated = true;
    r.what = e.what();
  } catch (const std::exception& e) {
    r.violated = true;
    r.what = e.what();
  }
  // Histogram samples are integer nanoseconds (record_seconds).
  const obs::Histogram& e2e = registry.histogram("stage.e2e");
  r.e2e_p50_ms = e2e.quantile(0.50) / 1e6;
  r.e2e_p99_ms = e2e.quantile(0.99) / 1e6;
  // Sum both job gauges so the flatness gate is meaningful on single-core
  // hosts too, where every parallel_for degenerates to a serial job.
  r.pool_jobs = registry.gauge("pool.jobs").value() +
                registry.gauge("pool.serial_jobs").value();
  r.rss_kb = resident_kb();
  return r;
}

double mean_of_range(const std::vector<double>& v, std::size_t lo,
                     std::size_t hi) {
  if (hi <= lo) return 0.0;
  double s = 0.0;
  for (std::size_t i = lo; i < hi; ++i) s += v[i];
  return s / static_cast<double>(hi - lo);
}

std::string hex64(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, h);
  return std::string(buf);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  double sim_seconds = 7200.0;
  bool sim_seconds_set = false;
  std::uint64_t base_seed = 42;
  std::string out_path = "SOAK_report.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--sim-seconds=", 14) == 0) {
      sim_seconds = std::atof(argv[i] + 14);
      sim_seconds_set = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      base_seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--sim-seconds=N] [--seed=N] "
                   "[--out=FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (quick && !sim_seconds_set) sim_seconds = 600.0;

  const std::size_t episodes = static_cast<std::size_t>(
      std::ceil(sim_seconds / kEpisodeSeconds));

  core::set_thread_count(0);
  const std::size_t auto_threads = core::thread_count();
  std::printf("soak - always-on service harness (DESIGN.md §17)\n");
  std::printf("%zu episodes x %.0f s = %.0f simulated seconds, seed %" PRIu64
              ", %zu workers\n\n",
              episodes, kEpisodeSeconds, episodes * kEpisodeSeconds, base_seed,
              auto_threads);

  // ---- Worker sweep: episode 0 must be bit-identical at 1/2/8 workers and
  // under a det-hash container shuffle.
  bool sweep_ok = true;
  std::uint64_t sweep_ref = 0;
  std::vector<std::pair<std::string, std::uint64_t>> sweep_rows;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    core::set_thread_count(threads);
    const EpisodeResult r = run_episode(base_seed, 0);
    if (r.violated) {
      std::fprintf(stderr, "soak: contract violation in sweep: %s\n",
                   r.what.c_str());
      sweep_ok = false;
    }
    char label[32];
    std::snprintf(label, sizeof label, "threads_%zu", threads);
    sweep_rows.emplace_back(label, r.fingerprint);
    if (sweep_ref == 0) {
      sweep_ref = r.fingerprint;
    } else if (r.fingerprint != sweep_ref) {
      sweep_ok = false;
    }
  }
  core::set_thread_count(2);
  core::set_det_hash_seed(core::mix64(0x9e3779b97f4a7c15ull));
  {
    const EpisodeResult r = run_episode(base_seed, 0);
    sweep_rows.emplace_back("hash_shuffle", r.fingerprint);
    if (r.violated || r.fingerprint != sweep_ref) sweep_ok = false;
  }
  core::set_det_hash_seed(0);
  core::set_thread_count(0);
  std::printf("worker sweep (1/2/8 + det-hash shuffle): %s\n",
              sweep_ok ? "bit-identical" : "DIVERGED");

  // ---- The soak proper.
  std::size_t violations = 0;
  std::vector<double> p99_ms, p50_ms, rss_kb, pool_jobs;
  std::vector<EpisodeResult> results;
  results.reserve(episodes);
  for (std::size_t ep = 0; ep < episodes; ++ep) {
    EpisodeResult r = run_episode(base_seed, ep);
    if (r.violated) {
      ++violations;
      std::fprintf(stderr, "soak: episode %zu violated a contract: %s\n", ep,
                   r.what.c_str());
    }
    p99_ms.push_back(r.e2e_p99_ms);
    p50_ms.push_back(r.e2e_p50_ms);
    rss_kb.push_back(static_cast<double>(r.rss_kb));
    pool_jobs.push_back(r.pool_jobs);
    if ((ep + 1) % 10 == 0 || ep + 1 == episodes) {
      std::printf("  episode %3zu/%zu  e2e p99 %6.1f ms  rss %6.0f MB  "
                  "fates a/d/s %d/%d/%d\n",
                  ep + 1, episodes, r.e2e_p99_ms, rss_kb.back() / 1024.0,
                  r.metrics.service_admitted_objects,
                  r.metrics.service_deferred_objects,
                  r.metrics.service_shed_objects);
    }
    results.push_back(std::move(r));
  }

  // ---- Gates. Front/back halves skip nothing: the first episodes warm the
  // allocator, which is exactly the plateau-vs-growth question the 15% band
  // answers (a real leak compounds across hundreds of episodes).
  const std::size_t half = episodes / 2;
  const double rss_front = mean_of_range(rss_kb, 0, half);
  const double rss_back = mean_of_range(rss_kb, half, episodes);
  const bool rss_flat = rss_front <= 0.0 || rss_back <= rss_front * 1.15;

  const double p99_front = mean_of_range(p99_ms, 0, half);
  const double p99_back = mean_of_range(p99_ms, half, episodes);
  const bool p99_stable = p99_front <= 0.0 || p99_back <= p99_front * 3.0;

  const double jobs_front = mean_of_range(pool_jobs, 0, half);
  const double jobs_back = mean_of_range(pool_jobs, half, episodes);
  const bool pool_flat = jobs_front <= 0.0 || jobs_back <= jobs_front * 1.5;

  const bool ok = violations == 0 && sweep_ok && rss_flat && p99_stable &&
                  pool_flat;

  std::printf("\nviolations %zu | rss %6.0f -> %6.0f MB (%s) | "
              "e2e p99 %5.1f -> %5.1f ms (%s) | pool.jobs %.0f -> %.0f (%s)\n",
              violations, rss_front / 1024.0, rss_back / 1024.0,
              rss_flat ? "flat" : "GROWING", p99_front, p99_back,
              p99_stable ? "stable" : "DEGRADING", jobs_front, jobs_back,
              pool_flat ? "flat" : "GROWING");

  // ---- Report.
  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "soak");
  w.kv("quick", quick);
  w.kv("seed", base_seed);
  w.kv("episode_seconds", kEpisodeSeconds);
  w.kv("episodes", static_cast<std::uint64_t>(episodes));
  w.kv("sim_seconds", episodes * kEpisodeSeconds);
  w.kv("threads", static_cast<std::uint64_t>(auto_threads));
  w.kv("violations", static_cast<std::uint64_t>(violations));
  w.kv("worker_sweep_ok", sweep_ok);
  w.key("worker_sweep").begin_object();
  for (const auto& [label, fp] : sweep_rows) w.kv(label, hex64(fp));
  w.end_object();
  w.key("gates").begin_object();
  w.kv("rss_flat", rss_flat);
  w.kv("p99_stable", p99_stable);
  w.kv("pool_flat", pool_flat);
  w.kv("rss_front_kb", rss_front);
  w.kv("rss_back_kb", rss_back);
  w.kv("e2e_p99_front_ms", p99_front);
  w.kv("e2e_p99_back_ms", p99_back);
  w.kv("pool_jobs_front", jobs_front);
  w.kv("pool_jobs_back", jobs_back);
  w.end_object();
  w.key("episodes_detail").begin_array();
  for (std::size_t ep = 0; ep < results.size(); ++ep) {
    const EpisodeResult& r = results[ep];
    w.begin_object();
    w.kv("episode", static_cast<std::uint64_t>(ep));
    w.kv("behavior_fingerprint", hex64(r.fingerprint));
    w.kv("e2e_p50_ms", r.e2e_p50_ms);
    w.kv("e2e_p99_ms", r.e2e_p99_ms);
    w.kv("rss_kb", static_cast<std::uint64_t>(
                       r.rss_kb > 0 ? static_cast<std::uint64_t>(r.rss_kb)
                                    : 0));
    w.kv("pool_jobs", r.pool_jobs);
    w.kv("service_arrived", static_cast<std::uint64_t>(
                                r.metrics.service_arrived_objects));
    w.kv("service_admitted", static_cast<std::uint64_t>(
                                 r.metrics.service_admitted_objects));
    w.kv("service_deferred", static_cast<std::uint64_t>(
                                 r.metrics.service_deferred_objects));
    w.kv("service_shed", static_cast<std::uint64_t>(
                             r.metrics.service_shed_objects));
    w.kv("service_parked_residual", static_cast<std::uint64_t>(
                                        r.metrics.service_parked_residual));
    w.kv("ingest_quarantined", static_cast<std::uint64_t>(
                                   r.metrics.ingest_quarantined_vehicles));
    w.kv("violated", r.violated);
    w.end_object();
  }
  w.end_array();
  w.kv("ok", ok);
  w.end_object();
  if (!obs::write_file(out_path, w.str() + "\n")) {
    std::fprintf(stderr, "soak: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!ok) {
    std::fprintf(stderr, "soak: FAIL\n");
    return 1;
  }
  std::printf("soak: OK\n");
  return 0;
}
