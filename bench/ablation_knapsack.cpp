// Ablation (§III-B): greedy Algorithm 1 vs exact DP knapsack — solution
// quality and decision latency. The paper's claim is that the greedy makes
// dissemination decisions in ~1 ms; the DP shows how much relevance the
// greedy leaves on the table (typically <2%).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "core/dissemination.hpp"

namespace {

using namespace erpd;

std::vector<core::Candidate> random_candidates(int n, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> rel(0.01, 1.0);
  std::uniform_int_distribution<std::size_t> bytes(300, 4000);
  std::vector<core::Candidate> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back({i, i % 16, rel(rng), bytes(rng), sim::kInvalidAgent});
  }
  return out;
}

void quality_table() {
  std::printf("\nGreedy vs exact DP: delivered relevance (budget 40 KB)\n");
  std::printf("%12s %10s %10s %10s\n", "candidates", "greedy", "optimal",
              "ratio");
  std::mt19937_64 rng(9);
  for (int n : {20, 50, 100, 200, 400}) {
    const auto c = random_candidates(n, rng);
    const auto g = core::greedy_dissemination(c, 40000);
    const auto o = core::optimal_dissemination(c, 40000, 1);
    std::printf("%12d %10.3f %10.3f %9.1f%%\n", n, g.total_relevance,
                o.total_relevance,
                100.0 * g.total_relevance / std::max(o.total_relevance, 1e-9));
  }
  std::printf("\n");
}

void BM_Greedy(benchmark::State& state) {
  std::mt19937_64 rng(42);
  const auto c = random_candidates(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::greedy_dissemination(c, 40000));
  }
}
BENCHMARK(BM_Greedy)->Arg(50)->Arg(200)->Arg(800);

void BM_OptimalDp(benchmark::State& state) {
  std::mt19937_64 rng(42);
  const auto c = random_candidates(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimal_dissemination(c, 40000, 64));
  }
}
BENCHMARK(BM_OptimalDp)->Arg(50)->Arg(200)->Arg(800);

void BM_RoundRobin(benchmark::State& state) {
  std::mt19937_64 rng(42);
  const auto c = random_candidates(static_cast<int>(state.range(0)), rng);
  std::size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::round_robin_dissemination(c, 40000, cursor));
  }
}
BENCHMARK(BM_RoundRobin)->Arg(200);

}  // namespace

int main(int argc, char** argv) {
  quality_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
