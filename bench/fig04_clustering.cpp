// Reproduces paper Fig. 4(c): final-location deviation of pedestrians in the
// same cluster after walking for a period, Ours vs DBSCAN, as the number of
// pedestrians grows. Also sweeps the beta/gamma thresholds (design-choice
// ablation from DESIGN.md).

#include <cstdio>
#include <random>

#include "sim/scenario.hpp"
#include "track/crowd_cluster.hpp"

#include "bench_util.hpp"

namespace {

using namespace erpd;

std::vector<track::CrowdEntity> make_crowd(const sim::RoadNetwork& net, int n,
                                           std::mt19937_64& rng) {
  std::vector<track::CrowdEntity> entities;
  for (const sim::CrowdPedestrian& p :
       sim::generate_crosswalk_crowd(net, n, rng)) {
    entities.push_back({p.position, p.heading, p.speed});
  }
  return entities;
}

}  // namespace

int main() {
  using namespace erpd;
  const sim::RoadNetwork net{sim::RoadConfig{}};
  const double move_time = 5.0;
  const int trials = 25;

  bench::print_header(
      "Fig. 4(c) - pedestrian cluster final-location deviation (m)",
      "crosswalk crowds; beta=2 m, gamma=5 deg; walk 5 s; mean of 25 trials");
  std::printf("%12s %14s %14s %12s %12s\n", "pedestrians", "Ours(dev m)",
              "DBSCAN(dev m)", "Ours(#cl)", "DBSCAN(#cl)");

  track::CrowdClusterConfig cfg;  // beta=2, gamma=5deg (paper values)
  for (int n = 10; n <= 60; n += 10) {
    double ours_dev = 0.0;
    double db_dev = 0.0;
    double ours_cl = 0.0;
    double db_cl = 0.0;
    for (int t = 0; t < trials; ++t) {
      std::mt19937_64 rng(1000u * n + t);
      const auto entities = make_crowd(net, n, rng);
      const auto ours = track::cluster_crowd(entities, cfg);
      const auto db = track::cluster_crowd_dbscan(entities, cfg.location_eps);
      ours_dev += track::final_location_deviation(entities, ours, move_time);
      db_dev += track::final_location_deviation(entities, db, move_time);
      ours_cl += static_cast<double>(ours.clusters.size());
      db_cl += static_cast<double>(db.clusters.size());
    }
    std::printf("%12d %14.2f %14.2f %12.1f %12.1f\n", n, ours_dev / trials,
                db_dev / trials, ours_cl / trials, db_cl / trials);
  }

  bench::print_header("Ablation - threshold sweep at 40 pedestrians",
                      "deviation after 5 s (m) / clusters produced");
  std::printf("%8s %10s %14s %12s\n", "beta(m)", "gamma(deg)", "dev(m)",
              "#clusters");
  for (double beta : {1.0, 2.0, 4.0}) {
    for (double gamma : {2.5, 5.0, 15.0, 45.0}) {
      track::CrowdClusterConfig c;
      c.beta = beta;
      c.gamma_deg = gamma;
      double dev = 0.0;
      double cl = 0.0;
      for (int t = 0; t < trials; ++t) {
        std::mt19937_64 rng(777u + t);
        const auto entities = make_crowd(net, 40, rng);
        const auto res = track::cluster_crowd(entities, c);
        dev += track::final_location_deviation(entities, res, move_time);
        cl += static_cast<double>(res.clusters.size());
      }
      std::printf("%8.1f %10.1f %14.2f %12.1f\n", beta, gamma, dev / trials,
                  cl / trials);
    }
  }
  std::printf(
      "\nExpected shape (paper): Ours' deviation stays low and grows slowly\n"
      "with crowd size; DBSCAN's deviation grows quickly because location-\n"
      "only clusters mix walking directions.\n");
  return 0;
}
