#include <gtest/gtest.h>

#include "core/check.hpp"

#include <random>

#include "geom/angle.hpp"
#include "geom/gaussian2d.hpp"

namespace erpd::geom {
namespace {

TEST(Gaussian2D, PdfPeaksAtMean) {
  const Gaussian2D g{{2.0, -1.0}, 1.0, 2.0, 0.3};
  const double at_mean = g.pdf({2.0, -1.0});
  EXPECT_GT(at_mean, g.pdf({3.0, -1.0}));
  EXPECT_GT(at_mean, g.pdf({2.0, 1.0}));
}

TEST(Gaussian2D, StandardNormalPdfValue) {
  const Gaussian2D g;  // standard normal
  EXPECT_NEAR(g.pdf({0.0, 0.0}), 1.0 / kTwoPi, 1e-12);
}

TEST(Gaussian2D, MahalanobisIsotropic) {
  const Gaussian2D g{{0.0, 0.0}, 2.0, 2.0, 0.0};
  EXPECT_NEAR(g.mahalanobis_sq({2.0, 0.0}), 1.0, 1e-12);
  EXPECT_NEAR(g.mahalanobis_sq({0.0, 4.0}), 4.0, 1e-12);
}

TEST(Gaussian2D, InvalidParamsThrow) {
  EXPECT_THROW((Gaussian2D{{0, 0}, -1.0, 1.0, 0.0}), erpd::ContractViolation);
  EXPECT_THROW((Gaussian2D{{0, 0}, 1.0, 0.0, 0.0}), erpd::ContractViolation);
  EXPECT_THROW((Gaussian2D{{0, 0}, 1.0, 1.0, 1.0}), erpd::ContractViolation);
}

TEST(Gaussian2D, MassInCircleApproachesOne) {
  const Gaussian2D g{{0.0, 0.0}, 1.0, 1.0, 0.0};
  EXPECT_NEAR(g.mass_in_circle({0.0, 0.0}, 6.0), 1.0, 2e-3);
}

TEST(Gaussian2D, MassInOneSigmaDisk) {
  // For an isotropic Gaussian, the disk of radius sigma holds 1 - e^{-1/2}.
  const Gaussian2D g{{0.0, 0.0}, 1.0, 1.0, 0.0};
  EXPECT_NEAR(g.mass_in_circle({0.0, 0.0}, 1.0), 1.0 - std::exp(-0.5), 5e-3);
}

TEST(Gaussian2D, MassMonotoneInRadius) {
  const Gaussian2D g{{1.0, 1.0}, 1.5, 0.8, -0.4};
  double prev = 0.0;
  for (double r = 0.5; r <= 4.0; r += 0.5) {
    const double m = g.mass_in_circle({1.0, 1.0}, r);
    EXPECT_GE(m, prev);
    prev = m;
  }
}

TEST(Gaussian2D, MassDecaysWithDistance) {
  const Gaussian2D g{{0.0, 0.0}, 1.0, 1.0, 0.0};
  EXPECT_GT(g.mass_in_circle({0.0, 0.0}, 1.0),
            g.mass_in_circle({3.0, 0.0}, 1.0));
}

TEST(Gaussian2D, ZeroRadiusMassIsZero) {
  const Gaussian2D g;
  EXPECT_DOUBLE_EQ(g.mass_in_circle({0.0, 0.0}, 0.0), 0.0);
}

TEST(Gaussian2D, SampleMomentsMatch) {
  const Gaussian2D g{{3.0, -2.0}, 1.5, 0.5, 0.6};
  std::mt19937_64 rng(42);
  const int n = 20000;
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  for (int i = 0; i < n; ++i) {
    const Vec2 p = g.sample(rng);
    sx += p.x;
    sy += p.y;
    sxx += p.x * p.x;
    syy += p.y * p.y;
    sxy += p.x * p.y;
  }
  const double mx = sx / n;
  const double my = sy / n;
  EXPECT_NEAR(mx, 3.0, 0.05);
  EXPECT_NEAR(my, -2.0, 0.03);
  EXPECT_NEAR(sxx / n - mx * mx, 1.5 * 1.5, 0.1);
  EXPECT_NEAR(syy / n - my * my, 0.25, 0.02);
  EXPECT_NEAR((sxy / n - mx * my) / (1.5 * 0.5), 0.6, 0.05);
}

TEST(Gaussian2D, ConvolutionAddsVariances) {
  const Gaussian2D a{{1.0, 0.0}, 1.0, 2.0, 0.0};
  const Gaussian2D b{{2.0, 3.0}, 2.0, 1.0, 0.0};
  const Gaussian2D c = a.convolved(b);
  EXPECT_EQ(c.mean(), Vec2(3.0, 3.0));
  EXPECT_NEAR(c.sigma_x(), std::sqrt(5.0), 1e-12);
  EXPECT_NEAR(c.sigma_y(), std::sqrt(5.0), 1e-12);
}

}  // namespace
}  // namespace erpd::geom
