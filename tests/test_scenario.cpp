#include <gtest/gtest.h>

#include "geom/angle.hpp"
#include "sim/scenario.hpp"

namespace erpd::sim {
namespace {

ScenarioConfig small_cfg(double speed_kmh = 30.0) {
  ScenarioConfig cfg;
  cfg.speed_kmh = speed_kmh;
  cfg.total_vehicles = 14;  // keep tests fast
  cfg.pedestrians = 4;
  cfg.seed = 3;
  return cfg;
}

void run_single(World& w, double seconds) {
  const int steps = static_cast<int>(seconds / w.config().dt);
  for (int i = 0; i < steps; ++i) w.step();
}

TEST(ScenarioLeftTurn, BuildsRequestedPopulation) {
  const ScenarioConfig cfg = small_cfg();
  Scenario sc = make_unprotected_left_turn(cfg);
  EXPECT_EQ(static_cast<int>(sc.world.vehicles().size()), cfg.total_vehicles);
  EXPECT_NE(sc.ego, kInvalidAgent);
  EXPECT_NE(sc.threat, kInvalidAgent);
  EXPECT_FALSE(sc.occluders.empty());
  EXPECT_TRUE(sc.world.find_vehicle(sc.ego)->params().connected);
}

TEST(ScenarioLeftTurn, ThreatInitiallyOccludedFromEgo) {
  Scenario sc = make_unprotected_left_turn(small_cfg());
  EXPECT_FALSE(sc.world.agent_visible_from(sc.ego, sc.threat))
      << "the waiting truck must hide the oncoming vehicle";
}

TEST(ScenarioLeftTurn, SomeConnectedVehicleSeesThreat) {
  Scenario sc = make_unprotected_left_turn(small_cfg());
  bool seen = false;
  for (const Vehicle& v : sc.world.vehicles()) {
    if (!v.params().connected || v.id() == sc.ego) continue;
    if (sc.world.agent_visible_from(v.id(), sc.threat)) {
      seen = true;
      break;
    }
  }
  EXPECT_TRUE(seen) << "no connected vehicle can observe the threat; the "
                       "edge server could never learn about it";
}

TEST(ScenarioLeftTurn, SingleMethodCollides) {
  // Without any data sharing the scripted conflict must end in a collision
  // (paper Fig. 10: Single is 0% at every speed).
  for (double kmh : {20.0, 30.0, 40.0}) {
    Scenario sc = make_unprotected_left_turn(small_cfg(kmh));
    run_single(sc.world, 20.0);
    EXPECT_TRUE(sc.world.agent_crashed(sc.ego) ||
                sc.world.agent_crashed(sc.threat))
        << "expected an accident at " << kmh << " km/h";
  }
}

TEST(ScenarioLeftTurn, NotifiedEgoAvoidsCollision) {
  // Simulate a perfect dissemination: ego (and its tailgating follower, as
  // the follower-relevance rule would) warned about the threat early.
  Scenario sc = make_unprotected_left_turn(small_cfg());
  sc.world.notify_vehicle(sc.ego, sc.threat);
  if (sc.ego_follower != kInvalidAgent) {
    sc.world.notify_vehicle(sc.ego_follower, sc.threat);
  }
  run_single(sc.world, 20.0);
  EXPECT_FALSE(sc.world.agent_crashed(sc.ego));
  EXPECT_GT(sc.world.min_pair_distance(sc.ego, sc.threat), 0.3);
}

TEST(ScenarioRedLight, BuildsAndOccludes) {
  Scenario sc = make_red_light_violation(small_cfg());
  EXPECT_TRUE(sc.world.find_vehicle(sc.threat)->params().runs_red_light);
  EXPECT_EQ(sc.occluders.size(), 2u);
  EXPECT_FALSE(sc.world.agent_visible_from(sc.ego, sc.threat))
      << "queued trucks must hide the violator from the ego";
}

TEST(ScenarioRedLight, SingleMethodCollides) {
  for (double kmh : {20.0, 30.0, 40.0}) {
    Scenario sc = make_red_light_violation(small_cfg(kmh));
    run_single(sc.world, 20.0);
    EXPECT_TRUE(sc.world.agent_crashed(sc.ego) ||
                sc.world.agent_crashed(sc.threat))
        << "expected an accident at " << kmh << " km/h";
  }
}

TEST(ScenarioRedLight, NotifiedEgoAvoidsCollision) {
  Scenario sc = make_red_light_violation(small_cfg());
  sc.world.notify_vehicle(sc.ego, sc.threat);
  if (sc.ego_follower != kInvalidAgent) {
    sc.world.notify_vehicle(sc.ego_follower, sc.threat);
  }
  run_single(sc.world, 20.0);
  EXPECT_FALSE(sc.world.agent_crashed(sc.ego));
}

TEST(ScenarioPedestrian, OccludedUntilLate) {
  Scenario sc = make_occluded_pedestrian(small_cfg());
  EXPECT_FALSE(sc.world.agent_visible_from(sc.ego, sc.threat))
      << "parked truck must hide the pedestrian initially";
}

TEST(ScenarioPedestrian, ObserverSeesThePedestrian) {
  Scenario sc = make_occluded_pedestrian(small_cfg());
  bool seen = false;
  for (const Vehicle& v : sc.world.vehicles()) {
    if (!v.params().connected || v.id() == sc.ego) continue;
    if (sc.world.agent_visible_from(v.id(), sc.threat)) seen = true;
  }
  EXPECT_TRUE(seen);
}

TEST(ScenarioPedestrian, NotifiedEgoYields) {
  Scenario sc = make_occluded_pedestrian(small_cfg());
  sc.world.notify_vehicle(sc.ego, sc.threat);
  if (sc.ego_follower != kInvalidAgent) {
    sc.world.notify_vehicle(sc.ego_follower, sc.threat);
  }
  run_single(sc.world, 15.0);
  EXPECT_FALSE(sc.world.agent_crashed(sc.ego));
}

TEST(ScenarioDeterminism, SameSeedSameOutcome) {
  auto run = [] {
    Scenario sc = make_unprotected_left_turn(small_cfg());
    run_single(sc.world, 10.0);
    return std::make_tuple(sc.world.collisions().size(),
                           sc.world.find_vehicle(sc.ego)->s(),
                           sc.world.min_pair_distance(sc.ego, sc.threat));
  };
  EXPECT_EQ(run(), run());
}

TEST(Crowd, GeneratesRequestedCount) {
  const RoadNetwork net{RoadConfig{}};
  std::mt19937_64 rng(1);
  const auto crowd = generate_crosswalk_crowd(net, 25, rng);
  EXPECT_EQ(crowd.size(), 25u);
}

TEST(Crowd, PedestriansNearCorners) {
  const RoadNetwork net{RoadConfig{}};
  std::mt19937_64 rng(2);
  const double corner_d = net.box_half() + net.config().crosswalk_offset;
  for (const auto& p : generate_crosswalk_crowd(net, 40, rng)) {
    // Within a few meters of one of the four corners.
    const double dx = std::abs(std::abs(p.position.x) - corner_d);
    const double dy = std::abs(std::abs(p.position.y) - corner_d);
    EXPECT_LT(std::min(dx, dy), 8.0);
    EXPECT_GT(p.speed, 0.5);
  }
}

TEST(Crowd, HeadingsAlongCrosswalkAxes) {
  const RoadNetwork net{RoadConfig{}};
  std::mt19937_64 rng(3);
  for (const auto& p : generate_crosswalk_crowd(net, 40, rng)) {
    // Headings hug one of the four cardinal directions.
    const double h = std::abs(geom::wrap_angle(p.heading));
    const double to_axis =
        std::min({h, std::abs(h - geom::kPi / 2.0), std::abs(h - geom::kPi)});
    EXPECT_LT(to_axis, geom::deg_to_rad(15.0));
  }
}

}  // namespace
}  // namespace erpd::sim
