#include <gtest/gtest.h>

#include "geom/angle.hpp"
#include "geom/mat4.hpp"

namespace erpd::geom {
namespace {

TEST(Mat4, IdentityLeavesPointsAlone) {
  const Vec3 p{1.0, -2.0, 3.0};
  EXPECT_EQ(Mat4::identity().transform_point(p), p);
}

TEST(Mat4, TranslationMovesPoints) {
  const Mat4 t = Mat4::translation({1.0, 2.0, 3.0});
  EXPECT_EQ(t.transform_point({0.0, 0.0, 0.0}), Vec3(1.0, 2.0, 3.0));
  // Directions ignore translation.
  EXPECT_EQ(t.transform_direction({1.0, 0.0, 0.0}), Vec3(1.0, 0.0, 0.0));
}

TEST(Mat4, RotationZQuarterTurn) {
  const Mat4 r = Mat4::rotation_z(kPi / 2.0);
  const Vec3 p = r.transform_point({1.0, 0.0, 5.0});
  EXPECT_NEAR(p.x, 0.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
  EXPECT_NEAR(p.z, 5.0, 1e-12);
}

TEST(Mat4, ComposeTranslationAfterRotation) {
  const Mat4 m = Mat4::translation({10.0, 0.0, 0.0}) * Mat4::rotation_z(kPi);
  const Vec3 p = m.transform_point({1.0, 0.0, 0.0});
  EXPECT_NEAR(p.x, 9.0, 1e-12);
  EXPECT_NEAR(p.y, 0.0, 1e-12);
}

TEST(Mat4, FromPoseMatchesPaperProjection) {
  // A sensor at (5, -3, 1.8) yawed 90deg: the sensor's +x axis points along
  // world +y. [Wx,Wy,Wz,1]^T = T_lw [x,y,z,1]^T.
  Pose pose;
  pose.position = {5.0, -3.0, 1.8};
  pose.yaw = kPi / 2.0;
  const Mat4 t_lw = Mat4::from_pose(pose);
  const Vec3 w = t_lw.transform_point({2.0, 0.0, 0.0});
  EXPECT_NEAR(w.x, 5.0, 1e-12);
  EXPECT_NEAR(w.y, -1.0, 1e-12);
  EXPECT_NEAR(w.z, 1.8, 1e-12);
}

TEST(Mat4, SensorOriginMapsToPosition) {
  Pose pose;
  pose.position = {-7.0, 11.0, 2.0};
  pose.yaw = 0.77;
  pose.pitch = 0.1;
  pose.roll = -0.2;
  const Vec3 w = Mat4::from_pose(pose).transform_point({0.0, 0.0, 0.0});
  EXPECT_NEAR(w.x, pose.position.x, 1e-12);
  EXPECT_NEAR(w.y, pose.position.y, 1e-12);
  EXPECT_NEAR(w.z, pose.position.z, 1e-12);
}

class Mat4PoseRoundTrip : public ::testing::TestWithParam<Pose> {};

TEST_P(Mat4PoseRoundTrip, RigidInverseUndoesTransform) {
  const Mat4 t = Mat4::from_pose(GetParam());
  const Mat4 inv = t.rigid_inverse();
  EXPECT_TRUE((t * inv).almost_equal(Mat4::identity(), 1e-9));
  EXPECT_TRUE((inv * t).almost_equal(Mat4::identity(), 1e-9));
  for (const Vec3& p :
       {Vec3{0, 0, 0}, Vec3{10, -5, 2}, Vec3{-3.3, 7.7, -1.1}}) {
    const Vec3 rt = inv.transform_point(t.transform_point(p));
    EXPECT_NEAR(rt.x, p.x, 1e-9);
    EXPECT_NEAR(rt.y, p.y, 1e-9);
    EXPECT_NEAR(rt.z, p.z, 1e-9);
  }
}

TEST_P(Mat4PoseRoundTrip, PreservesDistances) {
  const Mat4 t = Mat4::from_pose(GetParam());
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-4.0, 0.5, 9.0};
  EXPECT_NEAR(distance(t.transform_point(a), t.transform_point(b)),
              distance(a, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Poses, Mat4PoseRoundTrip,
    ::testing::Values(Pose{{0, 0, 0}, 0, 0, 0}, Pose{{5, -3, 1.8}, 1.2, 0, 0},
                      Pose{{100, 200, 2}, -2.5, 0.05, -0.02},
                      Pose{{-7, 3, 1.5}, 3.1, -0.1, 0.1},
                      Pose{{0.1, 0.2, 0.3}, 0.5, 0.6, 0.7}));

}  // namespace
}  // namespace erpd::geom
