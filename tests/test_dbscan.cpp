#include <gtest/gtest.h>

#include "core/check.hpp"

#include <random>

#include "core/rng.hpp"
#include "pointcloud/dbscan.hpp"
#include "pointcloud/voxel_grid.hpp"

namespace erpd::pc {
namespace {

using geom::Vec3;

PointCloud blob(geom::Vec2 center, int n, double spread, std::mt19937_64& rng) {
  std::normal_distribution<double> g(0.0, spread);
  PointCloud out;
  for (int i = 0; i < n; ++i) {
    out.push_back({center.x + g(rng), center.y + g(rng), 0.5 + 0.1 * g(rng)});
  }
  return out;
}

TEST(Dbscan, TwoWellSeparatedBlobs) {
  std::mt19937_64 rng(1);
  PointCloud c = blob({0, 0}, 40, 0.2, rng);
  c.append(blob({10, 10}, 40, 0.2, rng));
  const DbscanResult r = dbscan(c, {0.8, 5});
  EXPECT_EQ(r.cluster_count, 2);
  // All points clustered, none noise.
  for (auto l : r.labels) EXPECT_NE(l, kNoise);
  // Points of the same blob share a label.
  for (int i = 1; i < 40; ++i) EXPECT_EQ(r.labels[i], r.labels[0]);
  for (int i = 41; i < 80; ++i) EXPECT_EQ(r.labels[i], r.labels[40]);
  EXPECT_NE(r.labels[0], r.labels[40]);
}

TEST(Dbscan, IsolatedPointIsNoise) {
  std::mt19937_64 rng(2);
  PointCloud c = blob({0, 0}, 30, 0.2, rng);
  c.push_back({50.0, 50.0, 0.5});
  const DbscanResult r = dbscan(c, {0.8, 5});
  EXPECT_EQ(r.cluster_count, 1);
  EXPECT_EQ(r.labels.back(), kNoise);
}

TEST(Dbscan, SparseRingBelowMinPtsAllNoise) {
  PointCloud c;
  for (int i = 0; i < 10; ++i) {
    c.push_back({i * 10.0, 0.0, 0.0});
  }
  const DbscanResult r = dbscan(c, {0.5, 3});
  EXPECT_EQ(r.cluster_count, 0);
  for (auto l : r.labels) EXPECT_EQ(l, kNoise);
}

TEST(Dbscan, ChainConnectivity) {
  // A line of points spaced within eps forms a single cluster even though
  // the ends are far apart (density reachability).
  PointCloud c;
  for (int i = 0; i < 50; ++i) c.push_back({i * 0.4, 0.0, 0.0});
  const DbscanResult r = dbscan(c, {0.5, 3});
  EXPECT_EQ(r.cluster_count, 1);
  for (auto l : r.labels) EXPECT_EQ(l, 0);
}

TEST(Dbscan, EmptyCloud) {
  const DbscanResult r = dbscan(PointCloud{}, {0.5, 3});
  EXPECT_EQ(r.cluster_count, 0);
  EXPECT_TRUE(r.labels.empty());
}

TEST(Dbscan, InvalidConfigThrows) {
  EXPECT_THROW(dbscan(PointCloud{}, {0.0, 3}), erpd::ContractViolation);
  EXPECT_THROW(dbscan(PointCloud{}, {0.5, 0}), erpd::ContractViolation);
}

TEST(Dbscan, ClusterIndicesMatchLabels) {
  std::mt19937_64 rng(3);
  PointCloud c = blob({0, 0}, 20, 0.2, rng);
  c.append(blob({8, 0}, 25, 0.2, rng));
  const DbscanResult r = dbscan(c, {0.8, 4});
  ASSERT_EQ(r.cluster_count, 2);
  const auto c0 = r.cluster_indices(0);
  const auto c1 = r.cluster_indices(1);
  EXPECT_EQ(c0.size() + c1.size(), c.size());
  for (std::size_t i : c0) EXPECT_EQ(r.labels[i], 0);
  for (std::size_t i : c1) EXPECT_EQ(r.labels[i], 1);
}

TEST(Dbscan, ExtractClustersSummaries) {
  std::mt19937_64 rng(4);
  PointCloud c = blob({5, 5}, 30, 0.15, rng);
  const DbscanResult r = dbscan(c, {0.8, 4});
  ASSERT_EQ(r.cluster_count, 1);
  const auto clusters = extract_clusters(c, r);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].point_count(), 30u);
  EXPECT_NEAR(clusters[0].centroid.x, 5.0, 0.2);
  EXPECT_NEAR(clusters[0].centroid.y, 5.0, 0.2);
  EXPECT_TRUE(clusters[0].footprint.contains({5.0, 5.0}));
}

class DbscanDensityInvariant : public ::testing::TestWithParam<int> {};

TEST_P(DbscanDensityInvariant, EveryClusterMemberNearAnotherMember) {
  // Invariant: every clustered point has at least one cluster-mate within
  // eps (border points attach to a core point).
  std::mt19937_64 rng(GetParam());
  PointCloud c = blob({0, 0}, 50, 0.4, rng);
  c.append(blob({6, 2}, 35, 0.3, rng));
  c.append(blob({-5, 7}, 20, 0.5, rng));
  const DbscanConfig cfg{0.9, 4};
  const DbscanResult r = dbscan(c, cfg);
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (r.labels[i] == kNoise) continue;
    bool has_mate = false;
    for (std::size_t j = 0; j < c.size(); ++j) {
      if (j == i || r.labels[j] != r.labels[i]) continue;
      if (distance(c[i], c[j]) <= cfg.eps) {
        has_mate = true;
        break;
      }
    }
    EXPECT_TRUE(has_mate) << "point " << i << " stranded in cluster";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbscanDensityInvariant,
                         ::testing::Values(11, 22, 33, 44, 55));

// The dense CSR layout must return byte-identical neighbor lists (same
// indices, same order) as the spatial-hash fallback it replaced on the hot
// path — DBSCAN's expansion order, and with it cluster labels, depend on it.
TEST(PointGrid, DenseAndSparseLayoutsReturnIdenticalNeighborLists) {
  std::mt19937_64 rng = core::seeded_rng(321);
  std::uniform_real_distribution<double> u(-30.0, 30.0);
  PointCloud c;
  for (int i = 0; i < 800; ++i) {
    c.push_back({u(rng), u(rng), 0.5 + 0.01 * u(rng)});
  }
  const double cell = 0.8;
  const PointGrid dense(c, cell);
  const PointGrid sparse(c, cell, /*allow_dense=*/false);
  ASSERT_TRUE(dense.dense());
  ASSERT_FALSE(sparse.dense());
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_EQ(dense.radius_neighbors(i, cell), sparse.radius_neighbors(i, cell))
        << "query point " << i;
  }
  for (int k = 0; k < 200; ++k) {
    const Vec3 q{u(rng), u(rng), u(rng) * 0.1};
    ASSERT_EQ(dense.radius_neighbors(q, cell), sparse.radius_neighbors(q, cell))
        << "free query " << k;
  }
}

// Clouds whose occupied extent exceeds the dense-cell budget must fall back
// to the spatial hash and still answer queries correctly.
TEST(PointGrid, HugeExtentFallsBackToSparse) {
  PointCloud c;
  c.push_back({0.0, 0.0, 0.0});
  c.push_back({0.1, 0.0, 0.0});
  c.push_back({1e7, 1e7, 1e7});  // blows out the cell budget at cell = 0.5
  const PointGrid grid(c, 0.5);
  EXPECT_FALSE(grid.dense());
  EXPECT_EQ(grid.radius_neighbors(std::size_t{0}, 0.5),
            (std::vector<std::size_t>{1}));
  EXPECT_TRUE(grid.radius_neighbors(std::size_t{2}, 0.5).empty());
}

}  // namespace
}  // namespace erpd::pc
