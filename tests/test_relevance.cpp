#include <gtest/gtest.h>

#include "core/relevance.hpp"

namespace erpd::core {
namespace {

using geom::Polyline;
using geom::Vec2;

track::PredictedTrajectory traj(Vec2 start, Vec2 dir, double speed,
                                double horizon = 5.0) {
  track::PredictedTrajectory t;
  t.speed = speed;
  t.horizon = horizon;
  const double reach = std::max(speed * horizon, 0.5);
  t.path = Polyline{{start, start + dir.normalized() * (reach + 5.0)}};
  return t;
}

TEST(Relevance, HeadOnCrossingIsHighlyRelevant) {
  // Both objects reach the crossing simultaneously at t = 2.5 s.
  const auto a = traj({-25.0, 0.0}, {1.0, 0.0}, 10.0);
  const auto b = traj({0.0, -25.0}, {0.0, 1.0}, 10.0);
  const auto est = estimate_collision(a, b, 4.5, 4.5);
  ASSERT_TRUE(est.has_value());
  EXPECT_TRUE(est->collides);
  EXPECT_GT(est->relevance, 0.5);
  EXPECT_NEAR(est->collision_point.x, 0.0, 1e-9);
  EXPECT_NEAR(est->collision_point.y, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(est->radius, 4.5);
  // ttc ~ (25 - 4.5) / 10.
  EXPECT_NEAR(est->ttc, 2.05, 0.1);
}

TEST(Relevance, NoCrossingNoEstimate) {
  const auto a = traj({-25.0, 0.0}, {1.0, 0.0}, 10.0);
  const auto b = traj({-25.0, 10.0}, {1.0, 0.0}, 10.0);  // parallel
  EXPECT_FALSE(estimate_collision(a, b, 4.5, 4.5).has_value());
}

TEST(Relevance, DisjointPassingTimesZeroRelevance) {
  // Paper's G vs p example: trajectories cross but at different times.
  const auto a = traj({-8.0, 0.0}, {1.0, 0.0}, 10.0);   // crosses at t=0.8
  const auto b = traj({0.0, -40.0}, {0.0, 1.0}, 10.0);  // crosses at t=4.0
  const auto est = estimate_collision(a, b, 2.0, 2.0);
  ASSERT_TRUE(est.has_value());
  EXPECT_FALSE(est->collides);
  EXPECT_DOUBLE_EQ(est->relevance, 0.0);
  EXPECT_DOUBLE_EQ(est->r_ci, 0.0);
  EXPECT_DOUBLE_EQ(est->r_ttc, 0.0);
}

TEST(Relevance, RelevanceInUnitInterval) {
  for (double offset : {0.0, 5.0, 10.0, 15.0, 20.0}) {
    const auto a = traj({-20.0 - offset, 0.0}, {1.0, 0.0}, 10.0);
    const auto b = traj({0.0, -20.0}, {0.0, 1.0}, 10.0);
    const auto est = estimate_collision(a, b, 4.5, 4.5);
    if (!est) continue;
    EXPECT_GE(est->relevance, 0.0);
    EXPECT_LE(est->relevance, 1.0);
    EXPECT_GE(est->r_ci, 0.0);
    EXPECT_LE(est->r_ci, 1.0);
    EXPECT_GE(est->r_ttc, 0.0);
    EXPECT_LE(est->r_ttc, 1.0);
  }
}

TEST(Relevance, EarlierCollisionMoreRelevant) {
  // Same geometry, but one pair meets sooner -> higher R_ttc.
  const auto near_a = traj({-10.0, 0.0}, {1.0, 0.0}, 10.0);
  const auto near_b = traj({0.0, -10.0}, {0.0, 1.0}, 10.0);
  const auto far_a = traj({-35.0, 0.0}, {1.0, 0.0}, 10.0);
  const auto far_b = traj({0.0, -35.0}, {0.0, 1.0}, 10.0);
  const auto e_near = estimate_collision(near_a, near_b, 4.5, 4.5);
  const auto e_far = estimate_collision(far_a, far_b, 4.5, 4.5);
  ASSERT_TRUE(e_near && e_far);
  EXPECT_GT(e_near->r_ttc, e_far->r_ttc);
  EXPECT_GT(e_near->relevance, e_far->relevance);
}

TEST(Relevance, RadiusIsMaxObjectLength) {
  const auto a = traj({-20.0, 0.0}, {1.0, 0.0}, 10.0);
  const auto b = traj({0.0, -20.0}, {0.0, 1.0}, 10.0);
  const auto est = estimate_collision(a, b, 8.5, 0.5);  // truck vs pedestrian
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->radius, 8.5);
}

TEST(Relevance, BeyondHorizonIgnored) {
  // Crossing exists but is 10 s away with a 5 s horizon.
  const auto a = traj({-100.0, 0.0}, {1.0, 0.0}, 10.0);
  const auto b = traj({0.0, -100.0}, {0.0, 1.0}, 10.0);
  const auto est = estimate_collision(a, b, 4.5, 4.5);
  // The sliced paths (50 m) never reach the crossing at 100 m.
  EXPECT_FALSE(est.has_value());
}

TEST(Relevance, StationaryObjectInsideAreaCollides) {
  // A stopped vehicle sitting at the crossing is relevant to an approaching
  // one: passing intervals overlap for the whole horizon.
  auto stopped = traj({0.0, 0.0}, {0.0, 1.0}, 0.0);
  const auto mover = traj({-20.0, 0.0}, {1.0, 0.0}, 10.0);
  // Force a crossing: stopped trajectory is a short stub across the mover's
  // path at the origin.
  stopped.path = Polyline{{{0.0, -0.3}, {0.0, 0.3}}};
  const auto est = estimate_collision(mover, stopped, 4.5, 4.5);
  ASSERT_TRUE(est.has_value());
  EXPECT_TRUE(est->collides);
  EXPECT_GT(est->relevance, 0.3);
}

TEST(Relevance, CollisionIntervalIoU) {
  // Identical objects arriving together: intervals coincide -> R_ci = 1.
  const auto a = traj({-20.0, 0.0}, {1.0, 0.0}, 10.0);
  const auto b = traj({0.0, -20.0}, {0.0, 1.0}, 10.0);
  const auto est = estimate_collision(a, b, 4.0, 4.0);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->r_ci, 1.0, 0.05);
}

TEST(FollowerRelevance, UnsafeFollowerInheritsDecayedRelevance) {
  FollowerRelevanceConfig cfg;
  cfg.alpha = 0.8;
  // 3 m gap at 10 m/s violates everything.
  EXPECT_TRUE(follower_unsafe(3.0, 10.0, cfg));
  EXPECT_DOUBLE_EQ(follower_relevance(0.9, 3.0, 10.0, cfg), 0.72);
}

TEST(FollowerRelevance, SafeFollowerGetsZero) {
  FollowerRelevanceConfig cfg;
  // 40 m gap at 10 m/s satisfies Pipes (10 m/s ~ 22 mph -> ~10 m) and
  // Gipps (15 m).
  EXPECT_FALSE(follower_unsafe(40.0, 10.0, cfg));
  EXPECT_DOUBLE_EQ(follower_relevance(0.9, 40.0, 10.0, cfg), 0.0);
}

TEST(FollowerRelevance, CriterionModes) {
  FollowerRelevanceConfig cfg;
  // Pick a gap violating Gipps (needs 15 m) but satisfying Pipes (~10 m):
  const double gap = 12.0;
  const double v = 10.0;
  cfg.criterion = FollowerCriterion::kViolatesAny;
  EXPECT_TRUE(follower_unsafe(gap, v, cfg));
  cfg.criterion = FollowerCriterion::kViolatesBoth;
  EXPECT_FALSE(follower_unsafe(gap, v, cfg));
}

TEST(FollowerRelevance, AlphaScalesLinearly) {
  FollowerRelevanceConfig cfg;
  cfg.alpha = 0.5;
  EXPECT_DOUBLE_EQ(follower_relevance(0.6, 1.0, 10.0, cfg), 0.3);
  cfg.alpha = 1.0;
  EXPECT_DOUBLE_EQ(follower_relevance(0.6, 1.0, 10.0, cfg), 0.6);
}

TEST(ProbabilisticRelevance, NeverExceedsIntervalRelevance) {
  // Multiplying by probabilities <= 1 can only lower the estimate.
  const auto a = traj({-20.0, 0.0}, {1.0, 0.0}, 10.0);
  const auto b = traj({0.0, -20.0}, {0.0, 1.0}, 10.0);
  const auto base = estimate_collision(a, b, 4.5, 4.5);
  const auto prob = estimate_collision_probabilistic(a, b, 4.5, 4.5);
  ASSERT_TRUE(base && prob);
  EXPECT_LE(prob->relevance, base->relevance + 1e-12);
  EXPECT_GT(prob->relevance, 0.0);
}

TEST(ProbabilisticRelevance, HigherUncertaintyLowersRelevance) {
  auto a1 = traj({-20.0, 0.0}, {1.0, 0.0}, 10.0);
  auto b1 = traj({0.0, -20.0}, {0.0, 1.0}, 10.0);
  auto a2 = a1;
  auto b2 = b1;
  a2.sigma_growth = 3.0;  // wildly uncertain prediction
  b2.sigma_growth = 3.0;
  const auto tight = estimate_collision_probabilistic(a1, b1, 4.5, 4.5);
  const auto loose = estimate_collision_probabilistic(a2, b2, 4.5, 4.5);
  ASSERT_TRUE(tight && loose);
  EXPECT_GT(tight->relevance, loose->relevance);
}

TEST(ProbabilisticRelevance, NoCrossingStillNull) {
  const auto a = traj({-25.0, 0.0}, {1.0, 0.0}, 10.0);
  const auto b = traj({-25.0, 10.0}, {1.0, 0.0}, 10.0);
  EXPECT_FALSE(estimate_collision_probabilistic(a, b, 4.5, 4.5).has_value());
}

TEST(ProbabilisticRelevance, DisjointTimesKeepZero) {
  const auto a = traj({-8.0, 0.0}, {1.0, 0.0}, 10.0);
  const auto b = traj({0.0, -40.0}, {0.0, 1.0}, 10.0);
  const auto est = estimate_collision_probabilistic(a, b, 2.0, 2.0);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->relevance, 0.0);
}

TEST(PassingInterval, EntryBeforeStartClipsToZero) {
  // Object starts inside the collision area: entry time clips to 0, exit is
  // distance-to-boundary / speed.
  const auto t = passing_interval(traj({0.0, 0.0}, {1.0, 0.0}, 10.0),
                                  {1.0, 0.0}, 5.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->lo, 0.0);
  EXPECT_DOUBLE_EQ(t->hi, 0.6);
}

TEST(PassingInterval, ExitClipsToHorizon) {
  // Entry inside the horizon, exit beyond it: [0.7, 1.7] clips to [0.7, 1.0].
  track::PredictedTrajectory tr;
  tr.speed = 10.0;
  tr.horizon = 1.0;
  tr.path = Polyline{{{0.0, 0.0}, {100.0, 0.0}}};
  const auto t = passing_interval(tr, {12.0, 0.0}, 5.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->lo, 0.7);
  EXPECT_DOUBLE_EQ(t->hi, 1.0);
}

TEST(PassingInterval, EntirelyBeyondHorizonIsNull) {
  track::PredictedTrajectory tr;
  tr.speed = 10.0;
  tr.horizon = 1.0;
  tr.path = Polyline{{{0.0, 0.0}, {100.0, 0.0}}};
  EXPECT_FALSE(passing_interval(tr, {25.0, 0.0}, 5.0).has_value());
}

TEST(PassingInterval, EntryExactlyAtHorizonIsNull) {
  // Boundary: the passing interval is half-open against the horizon; an
  // entry at exactly t == horizon is already outside it.
  track::PredictedTrajectory tr;
  tr.speed = 10.0;
  tr.horizon = 1.0;
  tr.path = Polyline{{{0.0, 0.0}, {100.0, 0.0}}};
  EXPECT_FALSE(passing_interval(tr, {15.0, 0.0}, 5.0).has_value());
}

TEST(PassingInterval, StationaryInsideCoversWholeHorizon) {
  const auto t =
      passing_interval(traj({1.0, 0.0}, {1.0, 0.0}, 0.0), {0.0, 0.0}, 5.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->lo, 0.0);
  EXPECT_DOUBLE_EQ(t->hi, 5.0);
}

TEST(PassingInterval, StationaryOutsideIsNull) {
  EXPECT_FALSE(
      passing_interval(traj({10.0, 0.0}, {1.0, 0.0}, 0.0), {0.0, 0.0}, 5.0)
          .has_value());
}

TEST(Relevance, GrazingTouchCollidesWithZeroInterval) {
  // Passing intervals [0.5, 1.5] and [1.5, 2.5] touch at exactly one
  // instant. Decision (documented in relevance.cpp): a grazing contact is
  // still a contact — collides=true with a zero-length collision interval,
  // so relevance comes entirely from the TTC term.
  const auto a = traj({-10.0, 0.0}, {1.0, 0.0}, 10.0);
  const auto b = traj({0.0, -20.0}, {0.0, 1.0}, 10.0);
  const auto est = estimate_collision(a, b, 5.0, 5.0);
  ASSERT_TRUE(est.has_value());
  EXPECT_TRUE(est->collides);
  EXPECT_DOUBLE_EQ(est->collision_interval, 0.0);
  EXPECT_DOUBLE_EQ(est->r_ci, 0.0);
  EXPECT_DOUBLE_EQ(est->ttc, 1.5);
  EXPECT_DOUBLE_EQ(est->relevance, 0.5 * (1.0 - 1.5 / 5.0));
}

class SpeedSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpeedSweep, SimultaneousArrivalAlwaysCollides) {
  const double v = GetParam();
  const auto a = traj({-3.0 * v, 0.0}, {1.0, 0.0}, v);
  const auto b = traj({0.0, -3.0 * v}, {0.0, 1.0}, v);
  const auto est = estimate_collision(a, b, 4.5, 4.5);
  ASSERT_TRUE(est.has_value()) << "v=" << v;
  EXPECT_TRUE(est->collides) << "v=" << v;
  EXPECT_GT(est->relevance, 0.3) << "v=" << v;
}

INSTANTIATE_TEST_SUITE_P(Speeds, SpeedSweep,
                         ::testing::Values(5.56, 6.94, 8.33, 9.72, 11.11));

}  // namespace
}  // namespace erpd::core
