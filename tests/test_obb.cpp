#include <gtest/gtest.h>

#include "geom/angle.hpp"
#include "geom/obb.hpp"

namespace erpd::geom {
namespace {

TEST(Obb, CornersOfAxisAlignedBox) {
  const Obb box{{0.0, 0.0}, 0.0, 4.0, 2.0};
  const auto c = box.corners();
  // front-left, rear-left, rear-right, front-right
  EXPECT_NEAR(c[0].x, 2.0, 1e-12);
  EXPECT_NEAR(c[0].y, 1.0, 1e-12);
  EXPECT_NEAR(c[2].x, -2.0, 1e-12);
  EXPECT_NEAR(c[2].y, -1.0, 1e-12);
}

TEST(Obb, ContainsInsideOutside) {
  const Obb box{{5.0, 5.0}, kPi / 4.0, 4.0, 2.0};
  EXPECT_TRUE(box.contains({5.0, 5.0}));
  EXPECT_TRUE(box.contains(box.corners()[0]));
  EXPECT_FALSE(box.contains({9.0, 5.0}));
}

TEST(Obb, OverlapsSeparatedBoxes) {
  const Obb a{{0.0, 0.0}, 0.0, 4.0, 2.0};
  const Obb b{{10.0, 0.0}, 0.0, 4.0, 2.0};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_FALSE(b.overlaps(a));
}

TEST(Obb, OverlapsIntersectingBoxes) {
  const Obb a{{0.0, 0.0}, 0.0, 4.0, 2.0};
  const Obb b{{3.0, 0.0}, 0.0, 4.0, 2.0};
  EXPECT_TRUE(a.overlaps(b));
}

TEST(Obb, OverlapsRotatedNearMiss) {
  // Diamond (45 deg) next to a box: corners interleave without overlap.
  const Obb a{{0.0, 0.0}, 0.0, 2.0, 2.0};
  const Obb b{{2.5, 0.0}, kPi / 4.0, 2.0, 2.0};
  EXPECT_FALSE(a.overlaps(b));
  const Obb c{{1.8, 0.0}, kPi / 4.0, 2.0, 2.0};
  EXPECT_TRUE(a.overlaps(c));
}

TEST(Obb, DistanceZeroWhenOverlapping) {
  const Obb a{{0.0, 0.0}, 0.0, 4.0, 2.0};
  const Obb b{{1.0, 0.0}, 0.3, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(a.distance_to(b), 0.0);
}

TEST(Obb, DistanceBetweenParallelBoxes) {
  const Obb a{{0.0, 0.0}, 0.0, 4.0, 2.0};
  const Obb b{{10.0, 0.0}, 0.0, 4.0, 2.0};
  // Facing edges at x=2 and x=8.
  EXPECT_NEAR(a.distance_to(b), 6.0, 1e-9);
  EXPECT_NEAR(b.distance_to(a), 6.0, 1e-9);
}

TEST(Obb, DistanceToPoint) {
  const Obb a{{0.0, 0.0}, 0.0, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(a.distance_to(Vec2{0.0, 0.0}), 0.0);
  EXPECT_NEAR(a.distance_to(Vec2{5.0, 0.0}), 3.0, 1e-12);
  EXPECT_NEAR(a.distance_to(Vec2{2.0 + 3.0, 1.0 + 4.0}), 5.0, 1e-12);
}

TEST(Obb, RayHitFrontFace) {
  const Obb a{{10.0, 0.0}, 0.0, 4.0, 2.0};
  const Segment ray{{0.0, 0.0}, {20.0, 0.0}};
  const double t = a.ray_hit(ray);
  ASSERT_GE(t, 0.0);
  EXPECT_NEAR(t * 20.0, 8.0, 1e-9);  // hits the near face at x=8
}

TEST(Obb, RayMiss) {
  const Obb a{{10.0, 5.0}, 0.0, 4.0, 2.0};
  const Segment ray{{0.0, 0.0}, {20.0, 0.0}};
  EXPECT_LT(a.ray_hit(ray), 0.0);
}

TEST(Obb, RayFromInsideHitsAtZero) {
  const Obb a{{0.0, 0.0}, 0.0, 4.0, 2.0};
  const Segment ray{{0.0, 0.0}, {20.0, 0.0}};
  EXPECT_DOUBLE_EQ(a.ray_hit(ray), 0.0);
}

TEST(Obb, AabbBoundsRotatedBox) {
  const Obb a{{0.0, 0.0}, kPi / 4.0, 2.0, 2.0};
  const Aabb box = a.aabb();
  const double half_diag = std::sqrt(2.0);
  EXPECT_NEAR(box.max.x, half_diag, 1e-9);
  EXPECT_NEAR(box.min.y, -half_diag, 1e-9);
}

TEST(Obb, MaxExtent) {
  EXPECT_DOUBLE_EQ((Obb{{0, 0}, 0.0, 4.5, 1.9}).max_extent(), 4.5);
  EXPECT_DOUBLE_EQ((Obb{{0, 0}, 0.0, 0.5, 0.6}).max_extent(), 0.6);
}

class ObbOverlapSymmetry
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ObbOverlapSymmetry, OverlapIsSymmetric) {
  const auto [dx, heading] = GetParam();
  const Obb a{{0.0, 0.0}, 0.0, 4.0, 2.0};
  const Obb b{{dx, 1.0}, heading, 4.0, 2.0};
  EXPECT_EQ(a.overlaps(b), b.overlaps(a));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ObbOverlapSymmetry,
    ::testing::Combine(::testing::Values(0.0, 1.0, 2.5, 4.0, 6.0),
                       ::testing::Values(0.0, 0.5, 1.0, kPi / 2.0)));

}  // namespace
}  // namespace erpd::geom
