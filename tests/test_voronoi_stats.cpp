#include <gtest/gtest.h>

#include <random>

#include "geom/stats.hpp"
#include "geom/voronoi.hpp"

namespace erpd::geom {
namespace {

TEST(Voronoi, EmptyPartitionHasNoOwner) {
  const VoronoiPartition v;
  EXPECT_FALSE(v.cell_of({1.0, 2.0}).has_value());
  EXPECT_TRUE(std::isinf(v.distance_to_owner({0.0, 0.0})));
}

TEST(Voronoi, NearestSiteWins) {
  const VoronoiPartition v{{{0.0, 0.0}, {10.0, 0.0}}};
  EXPECT_EQ(v.cell_of({1.0, 0.0}).value(), 0u);
  EXPECT_EQ(v.cell_of({9.0, 0.0}).value(), 1u);
  EXPECT_TRUE(v.in_cell({1.0, 0.0}, 0));
  EXPECT_FALSE(v.in_cell({1.0, 0.0}, 1));
}

TEST(Voronoi, TieBreaksToLowestIndex) {
  const VoronoiPartition v{{{0.0, 0.0}, {10.0, 0.0}}};
  EXPECT_EQ(v.cell_of({5.0, 3.0}).value(), 0u);
}

TEST(Voronoi, PartitionCoversPlaneExactlyOnce) {
  const VoronoiPartition v{{{0.0, 0.0}, {7.0, 3.0}, {-4.0, 9.0}, {2.0, -6.0}}};
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(-20.0, 20.0);
  for (int i = 0; i < 500; ++i) {
    const Vec2 p{u(rng), u(rng)};
    int owners = 0;
    for (std::size_t s = 0; s < v.site_count(); ++s) {
      if (v.in_cell(p, s)) ++owners;
    }
    EXPECT_EQ(owners, 1) << "point " << p;
  }
}

TEST(Voronoi, DistanceToOwnerIsMinimal) {
  const VoronoiPartition v{{{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}}};
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(-5.0, 15.0);
  for (int i = 0; i < 200; ++i) {
    const Vec2 p{u(rng), u(rng)};
    const double d = v.distance_to_owner(p);
    for (const Vec2& s : v.sites()) {
      EXPECT_LE(d, distance(p, s) + 1e-12);
    }
  }
}

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({5.0, 5.0, 5.0}), 0.0);
  EXPECT_NEAR(stddev({1.0, -1.0}), 1.0, 1e-12);
}

TEST(Stats, Centroid) {
  EXPECT_EQ(centroid({{0.0, 0.0}, {2.0, 4.0}}), Vec2(1.0, 2.0));
  EXPECT_EQ(centroid({}), Vec2());
}

TEST(Stats, LocationStddev) {
  // Two points 2r apart: each is r from the centroid.
  EXPECT_NEAR(location_stddev({{0.0, 0.0}, {6.0, 0.0}}), 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(location_stddev({{1.0, 1.0}}), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

}  // namespace
}  // namespace erpd::geom
