// Unit tests for the observability layer (DESIGN.md §11): histogram bucket
// semantics, registry merge determinism, thread-count invariance of counter
// totals, the golden export schema, and the recording-never-perturbs-the-
// simulation contract.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/thread_pool.hpp"
#include "edge/metrics_io.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "scenario_harness.hpp"

namespace erpd {
namespace {

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds exact zeros; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(obs::Histogram::bucket_index(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_index(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_index(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_index(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_index(7), 3u);
  EXPECT_EQ(obs::Histogram::bucket_index(8), 4u);
  EXPECT_EQ(obs::Histogram::bucket_index(~std::uint64_t{0}),
            obs::Histogram::kBuckets - 1);
  EXPECT_EQ(obs::Histogram::bucket_lower(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_lower(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_lower(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_lower(3), 4u);
}

TEST(Histogram, RecordAndStats) {
  obs::Histogram h;
  h.record(0);
  h.record(0);
  h.record(6);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 6u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  // Two thirds of the samples are exact zeros; quantile is exact there.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

void fill_shard(obs::MetricsRegistry& r, std::uint64_t a, std::uint64_t b) {
  r.counter("c.x").add(a);
  r.counter("c.y").add(b);
  r.histogram("h").record(a);
  r.histogram("h").record(b);
}

void expect_same_registry(const obs::MetricsRegistry& lhs,
                          const obs::MetricsRegistry& rhs) {
  EXPECT_EQ(lhs.counters(), rhs.counters());
  const auto lh = lhs.histograms();
  const auto rh = rhs.histograms();
  ASSERT_EQ(lh.size(), rh.size());
  for (std::size_t i = 0; i < lh.size(); ++i) {
    EXPECT_EQ(lh[i].first, rh[i].first);
    EXPECT_EQ(lh[i].second->count(), rh[i].second->count());
    EXPECT_EQ(lh[i].second->sum(), rh[i].second->sum());
    for (std::size_t b = 0; b < obs::Histogram::kBuckets; ++b) {
      EXPECT_EQ(lh[i].second->bucket_count(b), rh[i].second->bucket_count(b));
    }
  }
}

TEST(Registry, MergeIsOrderInvariant) {
  obs::MetricsRegistry s1, s2, s3;
  fill_shard(s1, 1, 10);
  fill_shard(s2, 2, 20);
  fill_shard(s3, 3, 30);

  obs::MetricsRegistry fwd, rev;
  fwd.merge(s1);
  fwd.merge(s2);
  fwd.merge(s3);
  rev.merge(s3);
  rev.merge(s2);
  rev.merge(s1);
  expect_same_registry(fwd, rev);
  EXPECT_EQ(fwd.counter("c.x").value(), 6u);
  EXPECT_EQ(fwd.counter("c.y").value(), 60u);
  EXPECT_EQ(fwd.histogram("h").count(), 6u);
}

TEST(Registry, MergedGaugeKeepsOperandValueWhenSet) {
  obs::MetricsRegistry base, shard;
  base.gauge("g").set(1.0);
  shard.gauge("g");  // registered but never set: must not clobber
  base.merge(shard);
  EXPECT_DOUBLE_EQ(base.gauge("g").value(), 1.0);
  shard.gauge("g").set(2.0);
  base.merge(shard);
  EXPECT_DOUBLE_EQ(base.gauge("g").value(), 2.0);
}

TEST(Registry, CounterTotalsIdenticalAcrossThreadCounts) {
  const auto totals = [](std::size_t threads) {
    core::set_thread_count(threads);
    obs::MetricsRegistry reg;
    obs::Counter& c = reg.counter("work.items");
    obs::Histogram& h = reg.histogram("work.weight");
    core::parallel_for(1000, 16, [&](std::size_t i) {
      c.add(i);
      h.record(i % 17);
    });
    return std::pair{c.value(), h.sum()};
  };
  const auto t1 = totals(1);
  const auto t2 = totals(2);
  const auto t8 = totals(8);
  core::set_thread_count(0);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
  EXPECT_EQ(t1.first, 1000u * 999u / 2u);
}

TEST(StageSpan, FillsSlotAndHistogram) {
  obs::MetricsRegistry reg;
  double wall = -1.0;
  { obs::StageSpan span(&reg, "stage.test", &wall); }
  EXPECT_GE(wall, 0.0);
  EXPECT_EQ(reg.histogram("stage.test").count(), 1u);
}

TEST(StageSpan, NullRegistryStillFillsSlot) {
  double wall = -1.0;
  { obs::StageSpan span(nullptr, "stage.test", &wall); }
  EXPECT_GE(wall, 0.0);
}

TEST(StageSpan, StopIsIdempotent) {
  obs::MetricsRegistry reg;
  obs::StageSpan span(&reg, "stage.test");
  const double first = span.stop();
  EXPECT_EQ(span.stop(), first);
  EXPECT_EQ(reg.histogram("stage.test").count(), 1u);
}

// The golden schema: a silent rename or reorder of an exported key is a
// breaking change for every downstream consumer of the JSON artifacts, so
// the expected key lists are committed here verbatim.
TEST(Schema, MethodMetricsKeysMatchGolden) {
  const std::vector<std::string_view> golden = {
      "vehicles_entered",
      "vehicles_safe",
      "safe_passage_rate",
      "conflict_safe_rate",
      "ego_safe",
      "follower_safe",
      "follower_min_gap",
      "collisions",
      "min_key_distance",
      "uplink_mbps",
      "downlink_mbps",
      "uplink_bytes_per_frame",
      "downlink_bytes_per_frame",
      "uplink_offered_bytes_per_frame",
      "uplink_drop_ratio",
      "avg_objects_detected",
      "e2e_latency",
      "extraction_seconds",
      "upload_seconds",
      "merge_seconds",
      "track_predict_seconds",
      "dissemination_decision_seconds",
      "downlink_transfer_seconds",
      "delivered_relevance",
      "disseminations",
      "uplink_loss_ratio",
      "downlink_deadline_miss_ratio",
      "coasted_track_frames",
      "stale_relevance_frames",
      "ingest_rejected_crc",
      "ingest_rejected_semantic",
      "ingest_quarantined_vehicles",
      "ingest_shed_uploads",
      "uplink_suppressed_bytes_per_frame",
      "uplink_capped_bytes_per_frame",
      "uplink_lost_bytes_per_frame",
      "coverage_feedback_msgs",
      "coverage_feedback_lost_msgs",
      "uplink_backpressure_bytes_per_frame",
      "service_backpressure_uploads",
      "service_arrived_objects",
      "service_admitted_objects",
      "service_deferred_objects",
      "service_shed_objects",
      "service_parked_residual",
  };
  EXPECT_EQ(edge::method_metrics_keys(), golden);
}

TEST(Schema, FrameTraceKeysMatchGolden) {
  const std::vector<std::string_view> golden = {
      "frame",
      "vehicles",
      "raw_points",
      "offered_bytes",
      "delivered_bytes",
      "sensing_wall_seconds",
      "extract_max_seconds",
      "merge_seconds",
      "track_relevance_seconds",
      "dissemination_seconds",
  };
  EXPECT_EQ(edge::frame_trace_keys(), golden);
}

TEST(Schema, ExportedJsonCarriesEveryKey) {
  obs::JsonWriter w;
  w.begin_object();
  edge::append_method_metrics(w, edge::MethodMetrics{});
  w.end_object();
  for (const std::string_view k : edge::method_metrics_keys()) {
    EXPECT_NE(w.str().find("\"" + std::string(k) + "\":"), std::string::npos)
        << k;
  }
}

TEST(Manifest, FingerprintIsStableAndSensitive) {
  const edge::RunnerConfig a = edge::make_runner_config(edge::Method::kOurs);
  edge::RunnerConfig b = a;
  b.duration += 1.0;
  const obs::RunManifest ma = edge::make_manifest(a, "s", 42);
  EXPECT_EQ(ma.config_fingerprint,
            edge::make_manifest(a, "s", 42).config_fingerprint);
  EXPECT_NE(ma.config_fingerprint,
            edge::make_manifest(b, "s", 42).config_fingerprint);
  EXPECT_EQ(ma.method, std::string("Ours"));
  EXPECT_EQ(ma.seed, 42u);
  EXPECT_FALSE(ma.git_sha.empty());
}

TEST(Export, CsvCarriesManifestAndCounters) {
  obs::MetricsRegistry reg;
  reg.counter("c.x").add(7);
  obs::RunManifest mf;
  mf.scenario = "test";
  mf.seed = 1;
  mf.method = "Ours";
  const std::string csv = obs::to_csv(reg, mf);
  EXPECT_NE(csv.find("manifest,scenario,test"), std::string::npos);
  EXPECT_NE(csv.find("counter,c.x,7"), std::string::npos);
}

// The determinism contract end to end: attaching a registry to the closed
// loop must not change a single simulated metric.
TEST(ObsContract, RegistryDoesNotPerturbSimulation) {
  const auto fingerprint = [](obs::MetricsRegistry* reg) {
    sim::Scenario sc =
        sim::make_unprotected_left_turn(harness::default_intersection(42));
    edge::RunnerConfig rc =
        harness::make_fault_runner(edge::Method::kOurs, harness::FaultCase{});
    rc.duration = 4.0;
    rc.metrics = reg;
    edge::SystemRunner runner(rc);
    return harness::metrics_fingerprint(runner.run(sc));
  };
  obs::MetricsRegistry reg;
  EXPECT_EQ(fingerprint(nullptr), fingerprint(&reg));
  // And the run did actually record through the registry.
  EXPECT_GT(reg.counters().size(), 0u);
  EXPECT_GT(reg.histograms().size(), 0u);
}

}  // namespace
}  // namespace erpd
