#pragma once
// Table-driven golden-scenario harness.
//
// Runs the closed-loop simulation (sensing -> uplink -> edge -> dissemination
// -> driver reaction) across a matrix of network-fault cases and checks the
// recorded safety metrics against committed tolerance bands, so future PRs
// cannot silently regress behavior under degraded networks. Also provides the
// order-stable fingerprints the golden-scenario and determinism tests lock
// behavior in with.
//
// Used by tests/test_fault_matrix.cpp, tests/test_golden_scenario.cpp and
// tests/test_determinism.cpp; the fault lane in CI (`ctest -L fault`) runs
// the matrix under ASan+UBSan and uploads the metric JSON as an artifact.

#include <cstdint>
#include <string>
#include <vector>

#include "edge/system_runner.hpp"
#include "sim/scenario.hpp"

namespace erpd::harness {

/// Safety tolerances a fault case must stay within. Values are committed
/// alongside the matrix; loosen only with a PR that explains why degradation
/// got worse.
struct ToleranceBand {
  /// Lower bound on the scripted conflict pair surviving (Fig. 10 metric).
  double min_conflict_safe_rate{1.0};
  /// Lower bound on the fleet-wide safe-passage rate.
  double min_safe_passage_rate{0.9};
  /// Lower bound on the ego-threat minimum distance (meters).
  double min_key_distance{1.0};
};

/// One row of the fault matrix: a named FaultConfig plus the degradation
/// policy the edge runs with and the tolerance band the outcome must meet.
struct FaultCase {
  std::string name;
  net::FaultConfig fault{};
  /// Edge degradation policy for this case (EdgeConfig::staleness_decay and
  /// TrackerConfig::max_coast_frames).
  double staleness_decay{0.0};
  int max_coast_frames{0};
  /// When true, the harness blacks out the scenario's ego vehicle for
  /// [blackout_start, blackout_start + blackout_duration) — the concrete
  /// vehicle id only exists once the scenario is built.
  bool blackout_ego{false};
  double blackout_start{0.0};
  double blackout_duration{0.0};
  /// Enable the edge ingest-hardening layer (semantic admission, quarantine,
  /// shedding) for this case, with `ingest_point_budget` as the per-frame
  /// point budget (0 = no shedding).
  bool harden_ingest{false};
  std::size_t ingest_point_budget{0};
  /// When true, run_case marks one connected background vehicle (never the
  /// scripted ego/threat/observer/follower) Byzantine from byzantine_start
  /// on — again the concrete id only exists once the scenario is built.
  bool byzantine_vehicle{false};
  double byzantine_start{0.0};
  /// Enable the redundancy-aware uplink (coverage feedback + delta encoding,
  /// DESIGN.md §16) for this case.
  bool redundancy{false};
  /// Enable the service-mode edge pipeline (MPSC ingest queue + deadline
  /// admission, DESIGN.md §17) with `service_budget_us` as the per-frame
  /// decode+merge budget (0 = no latency shedding).
  bool service{false};
  std::uint64_t service_budget_us{0};
  ToleranceBand band{};
};

struct CaseResult {
  FaultCase fcase;
  edge::MethodMetrics metrics;
};

/// The default intersection workload every harness case runs: unprotected
/// left turn, 12 vehicles / 3 pedestrians at 50% connectivity, coarse
/// 16-channel LiDAR (geometry unchanged, fast enough for CI).
sim::ScenarioConfig default_intersection(std::uint64_t seed);

/// Runner configuration for one fault case (16/32 Mbit/s caps, the case's
/// fault config and degradation policy threaded through).
edge::RunnerConfig make_fault_runner(edge::Method method, const FaultCase& fc);

/// Build the scenario, resolve ego-blackout windows, run the closed loop.
CaseResult run_case(edge::Method method, const FaultCase& fc,
                    double duration = 14.0, std::uint64_t seed = 42);

/// The committed fault matrix: no faults / 10% loss / 30% loss /
/// single-vehicle (ego) blackout / burst outage / latency jitter /
/// corruption + Byzantine sender / ingest overload shedding.
std::vector<FaultCase> default_fault_matrix();

/// JSON document for the CI artifact, built on the obs exporter: a
/// document-level RunManifest plus one object per case carrying that case's
/// manifest (with the case-specific config fingerprint) and the full
/// MethodMetrics field set. `method`/`seed` must match what run_case ran.
std::string metrics_json(const std::vector<CaseResult>& results,
                         edge::Method method, std::uint64_t seed);

/// Write `content` to `path`; returns false on I/O failure.
bool write_file(const std::string& path, const std::string& content);

/// Order-stable 64-bit fingerprint over the *simulated* metric fields
/// (wall-clock timings excluded — they legitimately vary run to run).
std::uint64_t metrics_fingerprint(const edge::MethodMetrics& m);

/// Fold one dissemination decision into a running fingerprint.
std::uint64_t fold_decision(std::uint64_t h, int frame,
                            const net::Dissemination& d);

}  // namespace erpd::harness
