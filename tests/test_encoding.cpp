#include <gtest/gtest.h>

#include "core/check.hpp"

#include <random>

#include "pointcloud/encoding.hpp"

namespace erpd::pc {
namespace {

using geom::Vec3;

PointCloud random_cloud(int n, double extent, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-extent, extent);
  PointCloud c;
  for (int i = 0; i < n; ++i) c.push_back({u(rng), u(rng), u(rng) * 0.1});
  return c;
}

TEST(Encoding, RoundTripWithinResolution) {
  std::mt19937_64 rng(5);
  const PointCloud c = random_cloud(500, 25.0, rng);
  const EncodingConfig cfg{0.02};
  const PointCloud d = decode(encode(c, cfg));
  ASSERT_EQ(d.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(d[i].x, c[i].x, cfg.resolution);
    EXPECT_NEAR(d[i].y, c[i].y, cfg.resolution);
    EXPECT_NEAR(d[i].z, c[i].z, cfg.resolution);
  }
}

TEST(Encoding, EmptyCloudRoundTrip) {
  const EncodedCloud e = encode(PointCloud{});
  EXPECT_EQ(e.point_count, 0u);
  EXPECT_TRUE(decode(e).empty());
}

TEST(Encoding, SizeMatchesModel) {
  std::mt19937_64 rng(6);
  for (int n : {0, 1, 10, 1000}) {
    const PointCloud c = random_cloud(n, 10.0, rng);
    const EncodedCloud e = encode(c);
    EXPECT_EQ(e.size_bytes(), encoded_size_bytes(static_cast<std::size_t>(n)));
  }
}

TEST(Encoding, SixBytesPerPointPlusHeader) {
  const std::size_t h = encoded_size_bytes(0);
  EXPECT_EQ(encoded_size_bytes(100) - h, 600u);
}

TEST(Encoding, ExportedConstantsMatchTheActualWireFormat) {
  // Schedulers bill uploads as kEncodedHeaderBytes + n * kBytesPerPoint via
  // encoded_size_bytes(); if the codec's real output ever drifts from the
  // exported constants, billed bytes and wire bytes diverge silently.
  EXPECT_EQ(encoded_size_bytes(0), kEncodedHeaderBytes);
  std::mt19937_64 rng(9);
  for (int n : {1, 7, 128, 3000}) {
    const PointCloud c = random_cloud(n, 20.0, rng);
    const EncodedCloud e = encode(c);
    const std::size_t billed = encoded_size_bytes(c.size());
    EXPECT_EQ(e.size_bytes(), billed) << n << " points";
    EXPECT_EQ(billed,
              kEncodedHeaderBytes + static_cast<std::size_t>(n) * kBytesPerPoint)
        << n << " points";
    // And the billed buffer still decodes to the same number of points.
    EXPECT_EQ(decode(e).size(), c.size()) << n << " points";
  }
}

TEST(Encoding, CompressionBeatsRawFormat) {
  // The wire format must be meaningfully smaller than the 16 B/point raw
  // sensor format for realistic per-object clouds.
  std::mt19937_64 rng(7);
  const PointCloud c = random_cloud(2000, 5.0, rng);
  const EncodedCloud e = encode(c);
  EXPECT_LT(e.size_bytes() * 2, c.raw_size_bytes());
}

TEST(Encoding, OversizedExtentThrows) {
  PointCloud c{{{0, 0, 0}, {2000.0, 0.0, 0.0}}};
  EXPECT_THROW(encode(c, {0.02}), erpd::ContractViolation);
  // But a coarser resolution can cover it.
  EXPECT_NO_THROW(encode(c, {0.05}));
}

TEST(Encoding, InvalidResolutionThrows) {
  EXPECT_THROW(encode(PointCloud{}, {0.0}), erpd::ContractViolation);
}

TEST(Encoding, TruncatedBufferThrows) {
  std::mt19937_64 rng(8);
  EncodedCloud e = encode(random_cloud(10, 5.0, rng));
  e.bytes.resize(e.bytes.size() - 3);
  EXPECT_THROW(decode(e), erpd::ContractViolation);
  e.bytes.resize(4);
  EXPECT_THROW(decode(e), erpd::ContractViolation);
}

TEST(Encoding, NegativeCoordinatesSurvive) {
  PointCloud c{{{-100.0, -50.0, -2.0}, {-99.5, -49.0, -1.0}}};
  const PointCloud d = decode(encode(c));
  EXPECT_NEAR(d[0].x, -100.0, 0.02);
  EXPECT_NEAR(d[1].z, -1.0, 0.02);
}

}  // namespace
}  // namespace erpd::pc
