#include <gtest/gtest.h>

#include "core/check.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include "pointcloud/encoding.hpp"

namespace erpd::pc {
namespace {

using geom::Vec3;

PointCloud random_cloud(int n, double extent, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-extent, extent);
  PointCloud c;
  for (int i = 0; i < n; ++i) c.push_back({u(rng), u(rng), u(rng) * 0.1});
  return c;
}

TEST(Encoding, RoundTripWithinResolution) {
  std::mt19937_64 rng(5);
  const PointCloud c = random_cloud(500, 25.0, rng);
  const EncodingConfig cfg{0.02};
  const PointCloud d = decode(encode(c, cfg));
  ASSERT_EQ(d.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(d[i].x, c[i].x, cfg.resolution);
    EXPECT_NEAR(d[i].y, c[i].y, cfg.resolution);
    EXPECT_NEAR(d[i].z, c[i].z, cfg.resolution);
  }
}

TEST(Encoding, EmptyCloudRoundTrip) {
  const EncodedCloud e = encode(PointCloud{});
  EXPECT_EQ(e.point_count, 0u);
  EXPECT_TRUE(decode(e).empty());
}

TEST(Encoding, SizeMatchesModel) {
  std::mt19937_64 rng(6);
  for (int n : {0, 1, 10, 1000}) {
    const PointCloud c = random_cloud(n, 10.0, rng);
    const EncodedCloud e = encode(c);
    EXPECT_EQ(e.size_bytes(), encoded_size_bytes(static_cast<std::size_t>(n)));
  }
}

TEST(Encoding, SixBytesPerPointPlusHeader) {
  const std::size_t h = encoded_size_bytes(0);
  EXPECT_EQ(encoded_size_bytes(100) - h, 600u);
}

TEST(Encoding, ExportedConstantsMatchTheActualWireFormat) {
  // Schedulers bill uploads as kEncodedHeaderBytes + n * kBytesPerPoint via
  // encoded_size_bytes(); if the codec's real output ever drifts from the
  // exported constants, billed bytes and wire bytes diverge silently.
  EXPECT_EQ(encoded_size_bytes(0), kEncodedHeaderBytes);
  std::mt19937_64 rng(9);
  for (int n : {1, 7, 128, 3000}) {
    const PointCloud c = random_cloud(n, 20.0, rng);
    const EncodedCloud e = encode(c);
    const std::size_t billed = encoded_size_bytes(c.size());
    EXPECT_EQ(e.size_bytes(), billed) << n << " points";
    EXPECT_EQ(billed,
              kEncodedHeaderBytes + static_cast<std::size_t>(n) * kBytesPerPoint)
        << n << " points";
    // And the billed buffer still decodes to the same number of points.
    EXPECT_EQ(decode(e).size(), c.size()) << n << " points";
  }
}

TEST(Encoding, CompressionBeatsRawFormat) {
  // The wire format must be meaningfully smaller than the 16 B/point raw
  // sensor format for realistic per-object clouds.
  std::mt19937_64 rng(7);
  const PointCloud c = random_cloud(2000, 5.0, rng);
  const EncodedCloud e = encode(c);
  EXPECT_LT(e.size_bytes() * 2, c.raw_size_bytes());
}

TEST(Encoding, OversizedExtentThrows) {
  PointCloud c{{{0, 0, 0}, {2000.0, 0.0, 0.0}}};
  EXPECT_THROW(encode(c, {0.02}), erpd::ContractViolation);
  // But a coarser resolution can cover it.
  EXPECT_NO_THROW(encode(c, {0.05}));
}

TEST(Encoding, InvalidResolutionThrows) {
  EXPECT_THROW(encode(PointCloud{}, {0.0}), erpd::ContractViolation);
}

TEST(Encoding, TruncatedBufferThrows) {
  std::mt19937_64 rng(8);
  EncodedCloud e = encode(random_cloud(10, 5.0, rng));
  e.bytes.resize(e.bytes.size() - 3);
  EXPECT_THROW(decode(e), erpd::ContractViolation);
  e.bytes.resize(4);
  EXPECT_THROW(decode(e), erpd::ContractViolation);
}

TEST(Encoding, NegativeCoordinatesSurvive) {
  PointCloud c{{{-100.0, -50.0, -2.0}, {-99.5, -49.0, -1.0}}};
  const PointCloud d = decode(encode(c));
  EXPECT_NEAR(d[0].x, -100.0, 0.02);
  EXPECT_NEAR(d[1].z, -1.0, 0.02);
}

// ---------------------------------------------------------------------------
// Untrusted-buffer validation (DESIGN.md §12): try_decode must be a total
// function — exactly one DecodeStatus per buffer, never a throw or UB.
// ---------------------------------------------------------------------------

/// Recompute and patch the header CRC after a test mutates other fields, so
/// the mutation under test (and not kBadChecksum) decides the status.
void refresh_crc(EncodedCloud& e) {
  std::vector<std::uint8_t> covered(e.bytes.begin(), e.bytes.begin() + 4);
  covered.insert(covered.end(), e.bytes.begin() + 8, e.bytes.end());
  const std::uint32_t c = crc32(covered.data(), covered.size());
  for (int i = 0; i < 4; ++i) {
    e.bytes[4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(c >> (8 * i));
  }
}

void patch_f64(EncodedCloud& e, std::size_t offset, double d) {
  std::uint64_t v = 0;
  std::memcpy(&v, &d, 8);
  for (int i = 0; i < 8; ++i) {
    e.bytes[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

TEST(TryDecode, ValidBufferRoundTrips) {
  std::mt19937_64 rng(11);
  const PointCloud c = random_cloud(64, 10.0, rng);
  const DecodeResult r = try_decode(encode(c));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.point_count, c.size());
  EXPECT_EQ(r.cloud.size(), c.size());
}

TEST(TryDecode, TruncatedHeaderAtEveryLength) {
  std::mt19937_64 rng(12);
  const EncodedCloud full = encode(random_cloud(8, 5.0, rng));
  for (std::size_t n = 0; n < kEncodedHeaderBytes; ++n) {
    EncodedCloud e;
    e.bytes.assign(full.bytes.begin(), full.bytes.begin() + n);
    EXPECT_EQ(try_decode(e).status, DecodeStatus::kTruncatedHeader) << n;
  }
}

TEST(TryDecode, PayloadSizeMismatch) {
  std::mt19937_64 rng(13);
  const EncodedCloud full = encode(random_cloud(8, 5.0, rng));
  // Truncated payload and trailing garbage both fail the exact-size check.
  for (int delta : {-5, -1, 1, 7}) {
    EncodedCloud e = full;
    e.bytes.resize(static_cast<std::size_t>(
        static_cast<long>(full.bytes.size()) + delta));
    EXPECT_EQ(try_decode(e).status, DecodeStatus::kSizeMismatch) << delta;
  }
  // A lying count field (CRC dutifully recomputed) is still a size mismatch.
  EncodedCloud lying = full;
  lying.bytes[0] ^= 0x01;
  refresh_crc(lying);
  EXPECT_EQ(try_decode(lying).status, DecodeStatus::kSizeMismatch);
  // A huge count cannot overflow the size check into acceptance.
  EncodedCloud huge = full;
  huge.bytes[0] = huge.bytes[1] = huge.bytes[2] = huge.bytes[3] = 0xff;
  refresh_crc(huge);
  EXPECT_EQ(try_decode(huge).status, DecodeStatus::kSizeMismatch);
}

TEST(TryDecode, FlippedBitFailsChecksum) {
  std::mt19937_64 rng(14);
  const EncodedCloud full = encode(random_cloud(32, 5.0, rng));
  // One bit anywhere — count, resolution, origin, payload — breaks the CRC.
  for (const std::size_t byte :
       {std::size_t{9}, std::size_t{20}, kEncodedHeaderBytes + 3,
        full.bytes.size() - 1}) {
    EncodedCloud e = full;
    e.bytes[byte] ^= 0x10;
    EXPECT_EQ(try_decode(e).status, DecodeStatus::kBadChecksum) << byte;
  }
  // And so does tampering with the stored CRC itself.
  EncodedCloud e = full;
  e.bytes[5] ^= 0x01;
  EXPECT_EQ(try_decode(e).status, DecodeStatus::kBadChecksum);
}

TEST(TryDecode, RejectsBadResolution) {
  std::mt19937_64 rng(15);
  for (const double res :
       {0.0, -0.02, std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    EncodedCloud e = encode(random_cloud(4, 2.0, rng));
    patch_f64(e, 8, res);
    refresh_crc(e);
    EXPECT_EQ(try_decode(e).status, DecodeStatus::kBadResolution) << res;
  }
}

TEST(TryDecode, RejectsNonFiniteOrigin) {
  std::mt19937_64 rng(16);
  for (const std::size_t offset : {std::size_t{16}, std::size_t{24},
                                   std::size_t{32}}) {
    EncodedCloud e = encode(random_cloud(4, 2.0, rng));
    patch_f64(e, offset, std::numeric_limits<double>::quiet_NaN());
    refresh_crc(e);
    EXPECT_EQ(try_decode(e).status, DecodeStatus::kBadOrigin) << offset;
  }
}

TEST(TryDecode, DecodeContractChecksTheSameValidation) {
  std::mt19937_64 rng(17);
  EncodedCloud e = encode(random_cloud(8, 5.0, rng));
  e.bytes[10] ^= 0x04;
  EXPECT_THROW(decode(e), erpd::ContractViolation);
}

// Structure-aware fuzz: 10k seeded cases over random bytes and mutated
// valid buffers. The invariant is totality — try_decode classifies every
// input without throwing, and only kOk yields points. Runs under ASan+UBSan
// in the CI fuzz-smoke lane, where out-of-bounds reads would trap.
TEST(TryDecode, FuzzNeverThrowsOnArbitraryBytes) {
  std::mt19937_64 rng(0xf422);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int iter = 0; iter < 10000; ++iter) {
    EncodedCloud e;
    switch (iter % 4) {
      case 0: {  // pure random bytes, random length
        const std::size_t n = rng() % 400;
        e.bytes.resize(n);
        for (auto& b : e.bytes) b = static_cast<std::uint8_t>(byte(rng));
        break;
      }
      case 1: {  // valid buffer with random bit flips
        PointCloud c = random_cloud(static_cast<int>(rng() % 50), 8.0, rng);
        e = encode(c);
        const int flips = 1 + static_cast<int>(rng() % 8);
        for (int k = 0; k < flips && !e.bytes.empty(); ++k) {
          e.bytes[rng() % e.bytes.size()] ^=
              static_cast<std::uint8_t>(1u << (rng() % 8));
        }
        break;
      }
      case 2: {  // valid buffer truncated or extended at a random cut
        PointCloud c = random_cloud(static_cast<int>(rng() % 50), 8.0, rng);
        e = encode(c);
        e.bytes.resize(rng() % (e.bytes.size() + 32));
        break;
      }
      default: {  // two valid buffers spliced at a random offset
        PointCloud a = random_cloud(static_cast<int>(rng() % 30), 8.0, rng);
        PointCloud b = random_cloud(static_cast<int>(rng() % 30), 8.0, rng);
        const EncodedCloud ea = encode(a);
        const EncodedCloud eb = encode(b);
        const std::size_t cut = rng() % (ea.bytes.size() + 1);
        e.bytes.assign(ea.bytes.begin(),
                       ea.bytes.begin() + static_cast<long>(cut));
        e.bytes.insert(e.bytes.end(), eb.bytes.begin(), eb.bytes.end());
        break;
      }
    }
    DecodeResult r;
    ASSERT_NO_THROW(r = try_decode(e)) << "iter " << iter;
    if (r.ok()) {
      EXPECT_EQ(r.cloud.size(), r.point_count) << "iter " << iter;
    } else {
      EXPECT_TRUE(r.cloud.empty()) << "iter " << iter;
    }
  }
}

// ---------------------------------------------------------------------------
// Delta chunks (DESIGN.md §16): encode_delta / try_decode_delta.
// ---------------------------------------------------------------------------

// 0.25 m is exactly representable in binary floating point and the cloud
// below sits on its lattice, so keyframe round-trips are bit-exact and the
// delta matcher's behavior is fully predictable in these tests.
constexpr double kRes = 0.25;
const EncodingConfig kResCfg{kRes};

PointCloud lattice_cloud(int n, int salt = 0) {
  PointCloud c;
  for (int i = 0; i < n; ++i) {
    // Distinct x per index => all points distinct.
    c.push_back({kRes * (i + 40 * salt), kRes * ((i * 7) % 23),
                 kRes * ((i * 3) % 11)});
  }
  return c;
}

std::vector<Vec3> sorted_points(const PointCloud& c) {
  std::vector<Vec3> v(c.points().begin(), c.points().end());
  std::sort(v.begin(), v.end(), [](const Vec3& a, const Vec3& b) {
    if (a.x != b.x) return a.x < b.x;
    if (a.y != b.y) return a.y < b.y;
    return a.z < b.z;
  });
  return v;
}

// Displace the first ten points ±50 m in x with alternating sign, so the
// centroid — and therefore the encoder's global motion estimate — is exactly
// unchanged: the matcher keeps every survivor and the delta carries ten
// removes plus ten adds. (Centroid-*shifting* churn legitimately defeats the
// global-motion matcher and falls back to a keyframe; see FallsBackWhen...)
PointCloud churned(const PointCloud& c) {
  PointCloud next;
  for (std::size_t i = 0; i < c.size(); ++i) {
    Vec3 p = c[i];
    if (i < 10) p.x += (i % 2 == 0) ? 50.0 : -50.0;
    next.push_back(p);
  }
  return next;
}

TEST(EncodeDelta, UnchangedCloudProducesHeaderOnlyDelta) {
  const PointCloud c = lattice_cloud(60);
  const EncodedCloud base = encode(c, kResCfg);
  const std::optional<EncodedCloud> d = encode_delta(c, base, kResCfg);
  ASSERT_TRUE(d.has_value());
  // Nothing moved: no adds, no removes — the delta is just the header.
  EXPECT_EQ(d->size_bytes(), kDeltaHeaderBytes);
  EXPECT_TRUE(is_delta(*d));
  const DecodeResult r = try_decode_delta(*d, &base);
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(sorted_points(r.cloud), sorted_points(c));
}

TEST(EncodeDelta, RigidTranslationRidesTheMotionField) {
  const PointCloud c = lattice_cloud(60);
  const EncodedCloud base = encode(c, kResCfg);
  PointCloud moved;
  const Vec3 shift{1.0, -0.5, 0.25};  // multiples of kRes
  for (const Vec3& p : c.points()) {
    moved.push_back({p.x + shift.x, p.y + shift.y, p.z + shift.z});
  }
  const std::optional<EncodedCloud> d = encode_delta(moved, base, kResCfg);
  ASSERT_TRUE(d.has_value());
  // The whole move is absorbed by the motion header: still no adds/removes.
  EXPECT_EQ(d->size_bytes(), kDeltaHeaderBytes);
  const DecodeResult r = try_decode_delta(*d, &base);
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(sorted_points(r.cloud), sorted_points(moved));
}

TEST(EncodeDelta, ChurnBecomesAddsAndRemoves) {
  const PointCloud old_cloud = lattice_cloud(80);
  const EncodedCloud base = encode(old_cloud, kResCfg);
  const PointCloud next = churned(old_cloud);
  const std::optional<EncodedCloud> d = encode_delta(next, base, kResCfg);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->size_bytes(),
            delta_size_bytes(/*removed=*/10, /*added=*/10));
  EXPECT_LT(d->size_bytes(), encoded_size_bytes(next.size()));
  const DecodeResult r = try_decode_delta(*d, &base);
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.cloud.size(), next.size());
  EXPECT_EQ(sorted_points(r.cloud), sorted_points(next));
}

TEST(EncodeDelta, ReconstructionStaysWithinOneResolutionStep) {
  // Matched points ride the motion field exactly; fresh off-lattice points
  // are re-quantized into the added block. Either way every source point
  // must end up with a reconstructed point within one resolution step per
  // axis, and the count is exact (matched + added == new cloud size).
  std::mt19937_64 rng(21);
  const EncodingConfig cfg{0.02};
  const PointCloud old_cloud = random_cloud(120, 6.0, rng);
  const EncodedCloud base = encode(old_cloud, cfg);
  const PointCloud decoded = decode(base);
  const Vec3 shift{cfg.resolution * 18, cfg.resolution * -9, 0.0};
  PointCloud next;
  for (const Vec3& p : decoded.points()) {
    next.push_back({p.x + shift.x, p.y + shift.y, p.z + shift.z});
  }
  // Six fresh off-lattice points in centroid-neutral pairs, so the global
  // motion estimate stays the pure shift.
  Vec3 c{0.0, 0.0, 0.0};
  for (const Vec3& p : next.points()) {
    c.x += p.x;
    c.y += p.y;
    c.z += p.z;
  }
  const double n = static_cast<double>(next.size());
  c = {c.x / n, c.y / n, c.z / n};
  const Vec3 offs[3] = {
      {1.234, 0.567, 0.089}, {-2.01, 1.73, -0.05}, {0.33, -2.9, 0.11}};
  for (const Vec3& o : offs) {
    next.push_back({c.x + o.x, c.y + o.y, c.z + o.z});
    next.push_back({c.x - o.x, c.y - o.y, c.z - o.z});
  }
  const std::optional<EncodedCloud> d = encode_delta(next, base, cfg);
  ASSERT_TRUE(d.has_value());
  const DecodeResult r = try_decode_delta(*d, &base);
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  ASSERT_EQ(r.cloud.size(), next.size());
  for (const Vec3& p : next.points()) {
    double best = std::numeric_limits<double>::infinity();
    for (const Vec3& q : r.cloud.points()) {
      best = std::min(best, std::max({std::abs(p.x - q.x), std::abs(p.y - q.y),
                                      std::abs(p.z - q.z)}));
    }
    EXPECT_LT(best, cfg.resolution) << "no reconstructed point near source";
  }
}

TEST(EncodeDelta, FallsBackWhenDeltaWouldNotShrink) {
  // One new point vs. a 20-point base: ~20 removal indices cost more than a
  // fresh keyframe, so the encoder must decline.
  const EncodedCloud base = encode(lattice_cloud(20), kResCfg);
  PointCloud next;
  next.push_back({500.0, 500.0, 0.0});
  EXPECT_FALSE(encode_delta(next, base, kResCfg).has_value());
}

TEST(EncodeDelta, RejectsMismatchedResolutionAndBadBase) {
  const PointCloud c = lattice_cloud(30);
  const EncodedCloud base = encode(c, kResCfg);
  // Config resolution differs from the base's: no silent cross-grid deltas.
  EXPECT_FALSE(encode_delta(c, base, {0.02}).has_value());
  // A corrupted base never becomes a delta reference.
  EncodedCloud mangled = base;
  mangled.bytes[10] ^= 0x40;
  EXPECT_FALSE(encode_delta(c, mangled, kResCfg).has_value());
  // An invalid encoder config is a caller bug, not a soft fallback.
  EXPECT_THROW(encode_delta(c, base, {0.0}), erpd::ContractViolation);
}

TEST(TryDecode, DeltaAndKeyframeDecodersRejectEachOthersBuffers) {
  const PointCloud c = lattice_cloud(40);
  const EncodedCloud base = encode(c, kResCfg);
  const std::optional<EncodedCloud> d =
      encode_delta(churned(c), base, kResCfg);
  ASSERT_TRUE(d.has_value());
  // The size equations are mutually unsatisfiable (40 + 6a vs 76 + 4r + 6a),
  // so neither decoder can accept the other's valid output.
  EXPECT_EQ(try_decode(*d).status, DecodeStatus::kSizeMismatch);
  EXPECT_EQ(try_decode_delta(base, &base).status, DecodeStatus::kNotDelta);
  EXPECT_FALSE(is_delta(base));
  // A keyframe too short to even hold a delta header is classified as
  // truncated, never misread as a delta.
  const EncodedCloud tiny = encode(lattice_cloud(3), kResCfg);
  EXPECT_EQ(try_decode_delta(tiny, &base).status,
            DecodeStatus::kTruncatedHeader);
}

TEST(TryDecode, DeltaTruncationAndSizeLies) {
  const PointCloud c = lattice_cloud(40);
  const EncodedCloud base = encode(c, kResCfg);
  const std::optional<EncodedCloud> d0 =
      encode_delta(churned(c), base, kResCfg);
  ASSERT_TRUE(d0.has_value());
  for (std::size_t n = 0; n < kDeltaHeaderBytes; n += 7) {
    EncodedCloud e;
    e.bytes.assign(d0->bytes.begin(),
                   d0->bytes.begin() + static_cast<long>(n));
    EXPECT_EQ(try_decode_delta(e, &base).status,
              DecodeStatus::kTruncatedHeader)
        << n;
  }
  for (const int delta : {-4, -1, 1, 6}) {
    EncodedCloud e = *d0;
    e.bytes.resize(static_cast<std::size_t>(
        static_cast<long>(d0->bytes.size()) + delta));
    EXPECT_EQ(try_decode_delta(e, &base).status, DecodeStatus::kSizeMismatch)
        << delta;
  }
  // A lying removed-count (CRC dutifully recomputed) is a size mismatch.
  EncodedCloud lying = *d0;
  lying.bytes[16] ^= 0x01;
  refresh_crc(lying);
  EXPECT_EQ(try_decode_delta(lying, &base).status, DecodeStatus::kSizeMismatch);
}

TEST(TryDecode, DeltaFlippedBitFailsChecksum) {
  const PointCloud c = lattice_cloud(40);
  const EncodedCloud base = encode(c, kResCfg);
  const std::optional<EncodedCloud> d =
      encode_delta(churned(c), base, kResCfg);
  ASSERT_TRUE(d.has_value());
  // (Counts at [0,4) and [16,20) are size-checked before the CRC, so flip
  // the stored CRC itself, the base binding, the motion field and payload.)
  for (const std::size_t byte :
       {std::size_t{5}, std::size_t{13}, std::size_t{30},
        d->bytes.size() - 1}) {
    EncodedCloud e = *d;
    e.bytes[byte] ^= 0x08;
    EXPECT_EQ(try_decode_delta(e, &base).status, DecodeStatus::kBadChecksum)
        << byte;
  }
}

TEST(TryDecode, DeltaMissingOrMismatchedBase) {
  const PointCloud c = lattice_cloud(40);
  const EncodedCloud base = encode(c, kResCfg);
  const std::optional<EncodedCloud> d =
      encode_delta(churned(c), base, kResCfg);
  ASSERT_TRUE(d.has_value());
  // No base at hand: the edge lost (or never admitted) the keyframe.
  EXPECT_EQ(try_decode_delta(*d, nullptr).status, DecodeStatus::kMissingBase);
  // A corrupted base cannot serve either.
  EncodedCloud mangled = base;
  mangled.bytes[12] ^= 0x20;
  EXPECT_EQ(try_decode_delta(*d, &mangled).status, DecodeStatus::kMissingBase);
  // A *valid but different* base is caught by the base-CRC binding.
  const EncodedCloud other = encode(lattice_cloud(40, /*salt=*/3), kResCfg);
  EXPECT_EQ(try_decode_delta(*d, &other).status, DecodeStatus::kBaseMismatch);
}

TEST(TryDecode, DeltaRejectsBadRemovedIndicesMotionAndResolution) {
  const PointCloud c = lattice_cloud(40);
  const EncodedCloud base = encode(c, kResCfg);
  const std::optional<EncodedCloud> d =
      encode_delta(churned(c), base, kResCfg);
  ASSERT_TRUE(d.has_value());  // 10 removed indices in the payload

  // Removed index beyond the base's point count.
  EncodedCloud big = *d;
  big.bytes[kDeltaHeaderBytes] = 0xff;
  big.bytes[kDeltaHeaderBytes + 1] = 0xff;
  refresh_crc(big);
  EXPECT_EQ(try_decode_delta(big, &base).status,
            DecodeStatus::kBadRemovedIndex);
  // Non-ascending removed indices (swap the first two).
  EncodedCloud swapped = *d;
  for (int i = 0; i < 4; ++i) {
    std::swap(swapped.bytes[kDeltaHeaderBytes + static_cast<std::size_t>(i)],
              swapped.bytes[kDeltaHeaderBytes + 4 + static_cast<std::size_t>(i)]);
  }
  refresh_crc(swapped);
  EXPECT_EQ(try_decode_delta(swapped, &base).status,
            DecodeStatus::kBadRemovedIndex);
  // Non-finite motion / bad resolution / non-finite added origin.
  EncodedCloud bad_motion = *d;
  patch_f64(bad_motion, 28, std::numeric_limits<double>::quiet_NaN());
  refresh_crc(bad_motion);
  EXPECT_EQ(try_decode_delta(bad_motion, &base).status,
            DecodeStatus::kBadMotion);
  EncodedCloud bad_res = *d;
  patch_f64(bad_res, 20, -1.0);
  refresh_crc(bad_res);
  EXPECT_EQ(try_decode_delta(bad_res, &base).status,
            DecodeStatus::kBadResolution);
  EncodedCloud bad_origin = *d;
  patch_f64(bad_origin, 52, std::numeric_limits<double>::infinity());
  refresh_crc(bad_origin);
  EXPECT_EQ(try_decode_delta(bad_origin, &base).status,
            DecodeStatus::kBadOrigin);
}

// Structure-aware fuzz for the delta decoder, mirroring the keyframe fuzz:
// totality under random bytes, mutated valid deltas, truncations, splices
// and hostile base choices. Runs in the CI fuzz-smoke lane (TryDecode.*)
// under ASan+UBSan.
TEST(TryDecode, DeltaFuzzNeverThrowsOnArbitraryBytes) {
  std::mt19937_64 rng(0xde17a);
  std::uniform_int_distribution<int> byte(0, 255);

  // A pool of valid (delta, base) pairs to mutate.
  std::vector<std::pair<EncodedCloud, EncodedCloud>> pool;
  for (int k = 0; k < 4; ++k) {
    const PointCloud old_cloud = lattice_cloud(40 + 20 * k, /*salt=*/k);
    const EncodedCloud base = encode(old_cloud, kResCfg);
    const std::optional<EncodedCloud> d =
        encode_delta(churned(old_cloud), base, kResCfg);
    ASSERT_TRUE(d.has_value());
    pool.emplace_back(*d, base);
  }

  for (int iter = 0; iter < 10000; ++iter) {
    const auto& [valid, base] = pool[iter % pool.size()];
    EncodedCloud e;
    switch (iter % 4) {
      case 0: {  // random bytes, magic planted half the time
        e.bytes.resize(rng() % 300);
        for (auto& b : e.bytes) b = static_cast<std::uint8_t>(byte(rng));
        if (e.bytes.size() >= 12 && (rng() & 1) != 0) {
          for (int i = 0; i < 4; ++i) {
            e.bytes[8 + static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(kDeltaMagic >> (8 * i));
          }
        }
        break;
      }
      case 1: {  // valid delta with random bit flips
        e = valid;
        const int flips = 1 + static_cast<int>(rng() % 8);
        for (int k = 0; k < flips; ++k) {
          e.bytes[rng() % e.bytes.size()] ^=
              static_cast<std::uint8_t>(1u << (rng() % 8));
        }
        break;
      }
      case 2: {  // truncated or extended at a random cut
        e = valid;
        e.bytes.resize(rng() % (e.bytes.size() + 32));
        break;
      }
      default: {  // delta spliced with a keyframe buffer
        const std::size_t cut = rng() % (valid.bytes.size() + 1);
        e.bytes.assign(valid.bytes.begin(),
                       valid.bytes.begin() + static_cast<long>(cut));
        e.bytes.insert(e.bytes.end(), base.bytes.begin(), base.bytes.end());
        break;
      }
    }
    // Base choice is hostile too: the right base, a wrong base, a mangled
    // base, or none at all.
    const EncodedCloud* bp = nullptr;
    EncodedCloud mangled_base;
    switch (rng() % 4) {
      case 0: bp = &base; break;
      case 1: bp = &pool[(iter + 1) % pool.size()].second; break;
      case 2:
        mangled_base = base;
        mangled_base.bytes[rng() % mangled_base.bytes.size()] ^= 0x01;
        bp = &mangled_base;
        break;
      default: bp = nullptr; break;
    }
    DecodeResult r;
    ASSERT_NO_THROW(r = try_decode_delta(e, bp)) << "iter " << iter;
    if (r.status == DecodeStatus::kOk) {
      EXPECT_EQ(r.cloud.size(), r.point_count) << "iter " << iter;
    } else {
      EXPECT_TRUE(r.cloud.empty()) << "iter " << iter;
    }
  }
}

}  // namespace
}  // namespace erpd::pc
