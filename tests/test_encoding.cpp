#include <gtest/gtest.h>

#include "core/check.hpp"

#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "pointcloud/encoding.hpp"

namespace erpd::pc {
namespace {

using geom::Vec3;

PointCloud random_cloud(int n, double extent, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-extent, extent);
  PointCloud c;
  for (int i = 0; i < n; ++i) c.push_back({u(rng), u(rng), u(rng) * 0.1});
  return c;
}

TEST(Encoding, RoundTripWithinResolution) {
  std::mt19937_64 rng(5);
  const PointCloud c = random_cloud(500, 25.0, rng);
  const EncodingConfig cfg{0.02};
  const PointCloud d = decode(encode(c, cfg));
  ASSERT_EQ(d.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(d[i].x, c[i].x, cfg.resolution);
    EXPECT_NEAR(d[i].y, c[i].y, cfg.resolution);
    EXPECT_NEAR(d[i].z, c[i].z, cfg.resolution);
  }
}

TEST(Encoding, EmptyCloudRoundTrip) {
  const EncodedCloud e = encode(PointCloud{});
  EXPECT_EQ(e.point_count, 0u);
  EXPECT_TRUE(decode(e).empty());
}

TEST(Encoding, SizeMatchesModel) {
  std::mt19937_64 rng(6);
  for (int n : {0, 1, 10, 1000}) {
    const PointCloud c = random_cloud(n, 10.0, rng);
    const EncodedCloud e = encode(c);
    EXPECT_EQ(e.size_bytes(), encoded_size_bytes(static_cast<std::size_t>(n)));
  }
}

TEST(Encoding, SixBytesPerPointPlusHeader) {
  const std::size_t h = encoded_size_bytes(0);
  EXPECT_EQ(encoded_size_bytes(100) - h, 600u);
}

TEST(Encoding, ExportedConstantsMatchTheActualWireFormat) {
  // Schedulers bill uploads as kEncodedHeaderBytes + n * kBytesPerPoint via
  // encoded_size_bytes(); if the codec's real output ever drifts from the
  // exported constants, billed bytes and wire bytes diverge silently.
  EXPECT_EQ(encoded_size_bytes(0), kEncodedHeaderBytes);
  std::mt19937_64 rng(9);
  for (int n : {1, 7, 128, 3000}) {
    const PointCloud c = random_cloud(n, 20.0, rng);
    const EncodedCloud e = encode(c);
    const std::size_t billed = encoded_size_bytes(c.size());
    EXPECT_EQ(e.size_bytes(), billed) << n << " points";
    EXPECT_EQ(billed,
              kEncodedHeaderBytes + static_cast<std::size_t>(n) * kBytesPerPoint)
        << n << " points";
    // And the billed buffer still decodes to the same number of points.
    EXPECT_EQ(decode(e).size(), c.size()) << n << " points";
  }
}

TEST(Encoding, CompressionBeatsRawFormat) {
  // The wire format must be meaningfully smaller than the 16 B/point raw
  // sensor format for realistic per-object clouds.
  std::mt19937_64 rng(7);
  const PointCloud c = random_cloud(2000, 5.0, rng);
  const EncodedCloud e = encode(c);
  EXPECT_LT(e.size_bytes() * 2, c.raw_size_bytes());
}

TEST(Encoding, OversizedExtentThrows) {
  PointCloud c{{{0, 0, 0}, {2000.0, 0.0, 0.0}}};
  EXPECT_THROW(encode(c, {0.02}), erpd::ContractViolation);
  // But a coarser resolution can cover it.
  EXPECT_NO_THROW(encode(c, {0.05}));
}

TEST(Encoding, InvalidResolutionThrows) {
  EXPECT_THROW(encode(PointCloud{}, {0.0}), erpd::ContractViolation);
}

TEST(Encoding, TruncatedBufferThrows) {
  std::mt19937_64 rng(8);
  EncodedCloud e = encode(random_cloud(10, 5.0, rng));
  e.bytes.resize(e.bytes.size() - 3);
  EXPECT_THROW(decode(e), erpd::ContractViolation);
  e.bytes.resize(4);
  EXPECT_THROW(decode(e), erpd::ContractViolation);
}

TEST(Encoding, NegativeCoordinatesSurvive) {
  PointCloud c{{{-100.0, -50.0, -2.0}, {-99.5, -49.0, -1.0}}};
  const PointCloud d = decode(encode(c));
  EXPECT_NEAR(d[0].x, -100.0, 0.02);
  EXPECT_NEAR(d[1].z, -1.0, 0.02);
}

// ---------------------------------------------------------------------------
// Untrusted-buffer validation (DESIGN.md §12): try_decode must be a total
// function — exactly one DecodeStatus per buffer, never a throw or UB.
// ---------------------------------------------------------------------------

/// Recompute and patch the header CRC after a test mutates other fields, so
/// the mutation under test (and not kBadChecksum) decides the status.
void refresh_crc(EncodedCloud& e) {
  std::vector<std::uint8_t> covered(e.bytes.begin(), e.bytes.begin() + 4);
  covered.insert(covered.end(), e.bytes.begin() + 8, e.bytes.end());
  const std::uint32_t c = crc32(covered.data(), covered.size());
  for (int i = 0; i < 4; ++i) {
    e.bytes[4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(c >> (8 * i));
  }
}

void patch_f64(EncodedCloud& e, std::size_t offset, double d) {
  std::uint64_t v = 0;
  std::memcpy(&v, &d, 8);
  for (int i = 0; i < 8; ++i) {
    e.bytes[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

TEST(TryDecode, ValidBufferRoundTrips) {
  std::mt19937_64 rng(11);
  const PointCloud c = random_cloud(64, 10.0, rng);
  const DecodeResult r = try_decode(encode(c));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.point_count, c.size());
  EXPECT_EQ(r.cloud.size(), c.size());
}

TEST(TryDecode, TruncatedHeaderAtEveryLength) {
  std::mt19937_64 rng(12);
  const EncodedCloud full = encode(random_cloud(8, 5.0, rng));
  for (std::size_t n = 0; n < kEncodedHeaderBytes; ++n) {
    EncodedCloud e;
    e.bytes.assign(full.bytes.begin(), full.bytes.begin() + n);
    EXPECT_EQ(try_decode(e).status, DecodeStatus::kTruncatedHeader) << n;
  }
}

TEST(TryDecode, PayloadSizeMismatch) {
  std::mt19937_64 rng(13);
  const EncodedCloud full = encode(random_cloud(8, 5.0, rng));
  // Truncated payload and trailing garbage both fail the exact-size check.
  for (int delta : {-5, -1, 1, 7}) {
    EncodedCloud e = full;
    e.bytes.resize(static_cast<std::size_t>(
        static_cast<long>(full.bytes.size()) + delta));
    EXPECT_EQ(try_decode(e).status, DecodeStatus::kSizeMismatch) << delta;
  }
  // A lying count field (CRC dutifully recomputed) is still a size mismatch.
  EncodedCloud lying = full;
  lying.bytes[0] ^= 0x01;
  refresh_crc(lying);
  EXPECT_EQ(try_decode(lying).status, DecodeStatus::kSizeMismatch);
  // A huge count cannot overflow the size check into acceptance.
  EncodedCloud huge = full;
  huge.bytes[0] = huge.bytes[1] = huge.bytes[2] = huge.bytes[3] = 0xff;
  refresh_crc(huge);
  EXPECT_EQ(try_decode(huge).status, DecodeStatus::kSizeMismatch);
}

TEST(TryDecode, FlippedBitFailsChecksum) {
  std::mt19937_64 rng(14);
  const EncodedCloud full = encode(random_cloud(32, 5.0, rng));
  // One bit anywhere — count, resolution, origin, payload — breaks the CRC.
  for (const std::size_t byte :
       {std::size_t{9}, std::size_t{20}, kEncodedHeaderBytes + 3,
        full.bytes.size() - 1}) {
    EncodedCloud e = full;
    e.bytes[byte] ^= 0x10;
    EXPECT_EQ(try_decode(e).status, DecodeStatus::kBadChecksum) << byte;
  }
  // And so does tampering with the stored CRC itself.
  EncodedCloud e = full;
  e.bytes[5] ^= 0x01;
  EXPECT_EQ(try_decode(e).status, DecodeStatus::kBadChecksum);
}

TEST(TryDecode, RejectsBadResolution) {
  std::mt19937_64 rng(15);
  for (const double res :
       {0.0, -0.02, std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    EncodedCloud e = encode(random_cloud(4, 2.0, rng));
    patch_f64(e, 8, res);
    refresh_crc(e);
    EXPECT_EQ(try_decode(e).status, DecodeStatus::kBadResolution) << res;
  }
}

TEST(TryDecode, RejectsNonFiniteOrigin) {
  std::mt19937_64 rng(16);
  for (const std::size_t offset : {std::size_t{16}, std::size_t{24},
                                   std::size_t{32}}) {
    EncodedCloud e = encode(random_cloud(4, 2.0, rng));
    patch_f64(e, offset, std::numeric_limits<double>::quiet_NaN());
    refresh_crc(e);
    EXPECT_EQ(try_decode(e).status, DecodeStatus::kBadOrigin) << offset;
  }
}

TEST(TryDecode, DecodeContractChecksTheSameValidation) {
  std::mt19937_64 rng(17);
  EncodedCloud e = encode(random_cloud(8, 5.0, rng));
  e.bytes[10] ^= 0x04;
  EXPECT_THROW(decode(e), erpd::ContractViolation);
}

// Structure-aware fuzz: 10k seeded cases over random bytes and mutated
// valid buffers. The invariant is totality — try_decode classifies every
// input without throwing, and only kOk yields points. Runs under ASan+UBSan
// in the CI fuzz-smoke lane, where out-of-bounds reads would trap.
TEST(TryDecode, FuzzNeverThrowsOnArbitraryBytes) {
  std::mt19937_64 rng(0xf422);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int iter = 0; iter < 10000; ++iter) {
    EncodedCloud e;
    switch (iter % 4) {
      case 0: {  // pure random bytes, random length
        const std::size_t n = rng() % 400;
        e.bytes.resize(n);
        for (auto& b : e.bytes) b = static_cast<std::uint8_t>(byte(rng));
        break;
      }
      case 1: {  // valid buffer with random bit flips
        PointCloud c = random_cloud(static_cast<int>(rng() % 50), 8.0, rng);
        e = encode(c);
        const int flips = 1 + static_cast<int>(rng() % 8);
        for (int k = 0; k < flips && !e.bytes.empty(); ++k) {
          e.bytes[rng() % e.bytes.size()] ^=
              static_cast<std::uint8_t>(1u << (rng() % 8));
        }
        break;
      }
      case 2: {  // valid buffer truncated or extended at a random cut
        PointCloud c = random_cloud(static_cast<int>(rng() % 50), 8.0, rng);
        e = encode(c);
        e.bytes.resize(rng() % (e.bytes.size() + 32));
        break;
      }
      default: {  // two valid buffers spliced at a random offset
        PointCloud a = random_cloud(static_cast<int>(rng() % 30), 8.0, rng);
        PointCloud b = random_cloud(static_cast<int>(rng() % 30), 8.0, rng);
        const EncodedCloud ea = encode(a);
        const EncodedCloud eb = encode(b);
        const std::size_t cut = rng() % (ea.bytes.size() + 1);
        e.bytes.assign(ea.bytes.begin(),
                       ea.bytes.begin() + static_cast<long>(cut));
        e.bytes.insert(e.bytes.end(), eb.bytes.begin(), eb.bytes.end());
        break;
      }
    }
    DecodeResult r;
    ASSERT_NO_THROW(r = try_decode(e)) << "iter " << iter;
    if (r.ok()) {
      EXPECT_EQ(r.cloud.size(), r.point_count) << "iter " << iter;
    } else {
      EXPECT_TRUE(r.cloud.empty()) << "iter " << iter;
    }
  }
}

}  // namespace
}  // namespace erpd::pc
