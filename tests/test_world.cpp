#include <gtest/gtest.h>

#include "sim/world.hpp"

namespace erpd::sim {
namespace {

World make_world(WorldConfig wc = {}) {
  return World{RoadNetwork{RoadConfig{}}, wc};
}

VehicleParams cruising_car(double speed) {
  VehicleParams p;
  p.idm.desired_speed = speed;
  return p;
}

TEST(WorldAgents, VehicleFollowsItsRoute) {
  World w = make_world();
  const int route = *w.network().find_route(Arm::kSouth, 1, Maneuver::kStraight);
  const AgentId id = w.add_vehicle(cruising_car(10.0), route, 10.0, 10.0);
  const geom::Vec2 p0 = w.find_vehicle(id)->position(w.network());
  for (int i = 0; i < 20; ++i) w.step();
  const Vehicle* v = w.find_vehicle(id);
  const geom::Vec2 p1 = v->position(w.network());
  // Northbound on a straight route: x fixed, y grows.
  EXPECT_NEAR(p1.x, p0.x, 1e-6);
  EXPECT_GT(p1.y, p0.y + 15.0);
  EXPECT_NEAR(v->speed(), 10.0, 0.5);
}

TEST(WorldAgents, ParkedVehicleNeverMoves) {
  World w = make_world();
  const int route = *w.network().find_route(Arm::kNorth, 0, Maneuver::kLeft);
  VehicleParams p = cruising_car(10.0);
  p.parked = true;
  const AgentId id = w.add_vehicle(p, route, 50.0, 0.0);
  for (int i = 0; i < 30; ++i) w.step();
  EXPECT_DOUBLE_EQ(w.find_vehicle(id)->s(), 50.0);
  EXPECT_DOUBLE_EQ(w.find_vehicle(id)->speed(), 0.0);
}

TEST(WorldAgents, FollowerKeepsDistanceBehindLeader) {
  World w = make_world();
  const int route = *w.network().find_route(Arm::kSouth, 1, Maneuver::kStraight);
  const AgentId lead = w.add_vehicle(cruising_car(6.0), route, 40.0, 6.0);
  const AgentId follow = w.add_vehicle(cruising_car(12.0), route, 15.0, 12.0);
  for (int i = 0; i < 150; ++i) w.step();
  const Vehicle* l = w.find_vehicle(lead);
  const Vehicle* f = w.find_vehicle(follow);
  EXPECT_LT(f->s(), l->s());
  // The faster follower settled near the leader's speed without collision.
  EXPECT_NEAR(f->speed(), 6.0, 1.5);
  EXPECT_TRUE(w.collisions().empty());
}

TEST(WorldAgents, RedLightStopsVehicle) {
  WorldConfig wc;
  wc.signal = {20.0, 3.0, 2.0};
  World w = make_world(wc);
  // East arm faces red during the first phase.
  const int route = *w.network().find_route(Arm::kEast, 1, Maneuver::kStraight);
  const Route& r = w.network().route(route);
  const AgentId id = w.add_vehicle(cruising_car(10.0), route,
                                   r.stop_line_s - 40.0, 10.0);
  for (int i = 0; i < 100; ++i) w.step();  // 10 s, still red for EW
  const Vehicle* v = w.find_vehicle(id);
  EXPECT_LT(v->speed(), 0.3);
  EXPECT_LT(v->s(), r.stop_line_s);
  EXPECT_GT(v->s(), r.stop_line_s - 12.0);
}

TEST(WorldAgents, RedLightViolatorDoesNotStop) {
  WorldConfig wc;
  wc.signal = {20.0, 3.0, 2.0};
  World w = make_world(wc);
  const int route = *w.network().find_route(Arm::kEast, 1, Maneuver::kStraight);
  const Route& r = w.network().route(route);
  VehicleParams p = cruising_car(10.0);
  p.runs_red_light = true;
  const AgentId id = w.add_vehicle(p, route, r.stop_line_s - 40.0, 10.0);
  for (int i = 0; i < 100; ++i) w.step();
  EXPECT_GT(w.find_vehicle(id)->s(), r.box_exit_s);
}

TEST(WorldAgents, GreenLightProceeds) {
  WorldConfig wc;
  wc.signal = {20.0, 3.0, 2.0};
  World w = make_world(wc);
  const int route = *w.network().find_route(Arm::kSouth, 1, Maneuver::kStraight);
  const Route& r = w.network().route(route);
  const AgentId id = w.add_vehicle(cruising_car(10.0), route,
                                   r.stop_line_s - 40.0, 10.0);
  for (int i = 0; i < 100; ++i) w.step();
  EXPECT_TRUE(w.passed_intersection(id));
}

TEST(WorldAgents, PedestrianWalksCrosswalk) {
  World w = make_world();
  geom::Polyline cw = w.network().crosswalk(Arm::kSouth).path;
  const double len = cw.length();
  const AgentId id = w.add_pedestrian(PedestrianParams{}, std::move(cw), 0.0);
  for (int i = 0; i < 50; ++i) w.step();  // 5 s at 1.35 m/s
  const Pedestrian* p = w.find_pedestrian(id);
  EXPECT_NEAR(p->s(), std::min(5.0 * 1.35, len), 0.05);
}

TEST(WorldCollision, HeadOnOverlapDetected) {
  World w = make_world();
  // Two vehicles placed overlapping on crossing routes.
  const int r1 = *w.network().find_route(Arm::kSouth, 0, Maneuver::kLeft);
  const int r2 = *w.network().find_route(Arm::kNorth, 1, Maneuver::kStraight);
  const Route& route1 = w.network().route(r1);
  const Route& route2 = w.network().route(r2);
  const auto cross = route1.path.first_crossing(route2.path);
  ASSERT_TRUE(cross.has_value());
  const AgentId a = w.add_vehicle(cruising_car(5.0), r1, cross->s_this, 5.0);
  const AgentId b = w.add_vehicle(cruising_car(5.0), r2, cross->s_other, 5.0);
  w.step();
  ASSERT_FALSE(w.collisions().empty());
  EXPECT_TRUE(w.agent_crashed(a));
  EXPECT_TRUE(w.agent_crashed(b));
  // Crashed vehicles freeze.
  const double s_after = w.find_vehicle(a)->s();
  for (int i = 0; i < 10; ++i) w.step();
  EXPECT_DOUBLE_EQ(w.find_vehicle(a)->s(), s_after);
}

TEST(WorldVisibility, OccluderBlocksAgentVisibility) {
  World w = make_world();
  const int route = *w.network().find_route(Arm::kSouth, 1, Maneuver::kStraight);
  const AgentId viewer = w.add_vehicle(cruising_car(10.0), route, 10.0, 0.0);
  const AgentId target = w.add_vehicle(cruising_car(10.0), route, 60.0, 0.0);
  EXPECT_TRUE(w.agent_visible_from(viewer, target));
  // Drop a big static box between them.
  const geom::Vec2 mid = (w.find_vehicle(viewer)->position(w.network()) +
                          w.find_vehicle(target)->position(w.network())) *
                         0.5;
  w.add_static_obstacle(geom::Obb{mid, 0.0, 10.0, 10.0}, 5.0);
  EXPECT_FALSE(w.agent_visible_from(viewer, target));
}

TEST(WorldVisibility, RangeLimit) {
  World w = make_world();
  const int route = *w.network().find_route(Arm::kSouth, 1, Maneuver::kStraight);
  const AgentId viewer = w.add_vehicle(cruising_car(10.0), route, 10.0, 0.0);
  const AgentId target = w.add_vehicle(cruising_car(10.0), route, 100.0, 0.0);
  // 90 m apart > 50 m sensor range.
  EXPECT_FALSE(w.agent_visible_from(viewer, target));
}

TEST(WorldHazard, VisibleCrossingHazardTriggersBraking) {
  WorldConfig wc;
  wc.react_to_visible_hazards = true;  // opt in to sensor-based reaction
  World w = make_world(wc);
  const int r1 = *w.network().find_route(Arm::kSouth, 1, Maneuver::kStraight);
  const int r2 = *w.network().find_route(Arm::kWest, 0, Maneuver::kStraight);
  const Route& route1 = w.network().route(r1);
  const Route& route2 = w.network().route(r2);
  const auto cross = route1.path.first_crossing(route2.path);
  ASSERT_TRUE(cross.has_value());
  const double speed = 10.0;
  // Both 4 s from the crossing, mutually visible (no occluders), the
  // crossing vehicle ignores its red light.
  const AgentId ego =
      w.add_vehicle(cruising_car(speed), r1, cross->s_this - 4.0 * speed, speed);
  VehicleParams vp = cruising_car(speed);
  vp.runs_red_light = true;
  w.add_vehicle(vp, r2, cross->s_other - 4.0 * speed, speed);
  bool braked = false;
  for (int i = 0; i < 60; ++i) {
    w.step();
    if (w.find_vehicle(ego)->accel() < -4.0) braked = true;
  }
  EXPECT_TRUE(braked) << "ego saw the crossing hazard but never braked";
  EXPECT_TRUE(w.collisions().empty());
}

TEST(WorldHazard, NotificationBeatsOcclusion) {
  // A hazard the ego cannot see: notification via the edge server makes the
  // driver brake after the reaction delay.
  World w = make_world();
  const int r1 = *w.network().find_route(Arm::kSouth, 1, Maneuver::kStraight);
  const Route& route1 = w.network().route(r1);
  const AgentId ego =
      w.add_vehicle(cruising_car(10.0), r1, route1.stop_line_s - 35.0, 10.0);
  // Stationary pedestrian standing on the ego lane ahead, hidden by a wall.
  geom::Polyline ped_path{{route1.path.point_at(route1.stop_line_s - 5.0),
                           route1.path.point_at(route1.stop_line_s)}};
  PedestrianParams pp;
  pp.walk_speed = 0.0;
  const AgentId ped = w.add_pedestrian(pp, std::move(ped_path), 0.0);
  const geom::Vec2 wall_pos =
      route1.path.point_at(route1.stop_line_s - 18.0) + geom::Vec2{3.0, 0.0};
  w.add_static_obstacle(geom::Obb{wall_pos, 1.3, 8.0, 0.5}, 3.0);

  w.notify_vehicle(ego, ped);
  bool braked = false;
  for (int i = 0; i < 40; ++i) {
    w.step();
    if (w.find_vehicle(ego)->accel() < -4.0) braked = true;
  }
  EXPECT_TRUE(braked);
  EXPECT_TRUE(w.collisions().empty());
  EXPECT_FALSE(w.agent_crashed(ped));
}

TEST(WorldMetrics, PairDistanceTracksMinimum) {
  World w = make_world();
  const int route = *w.network().find_route(Arm::kSouth, 1, Maneuver::kStraight);
  const AgentId a = w.add_vehicle(cruising_car(10.0), route, 10.0, 10.0);
  const AgentId b = w.add_vehicle(cruising_car(2.0), route, 40.0, 2.0);
  for (int i = 0; i < 60; ++i) w.step();
  const double d = w.min_pair_distance(a, b);
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 30.0);
  EXPECT_TRUE(std::isinf(w.min_pair_distance(a, 999)));
}

TEST(WorldMetrics, SnapshotListsActiveAgents) {
  World w = make_world();
  const int route = *w.network().find_route(Arm::kSouth, 1, Maneuver::kStraight);
  VehicleParams cp = cruising_car(10.0);
  cp.connected = true;
  w.add_vehicle(cp, route, 10.0, 10.0);
  w.add_pedestrian(PedestrianParams{},
                   w.network().crosswalk(Arm::kNorth).path, 0.0);
  const auto snap = w.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_TRUE(snap[0].connected);
  EXPECT_EQ(snap[1].kind, AgentKind::kPedestrian);
}

TEST(WorldHazard, YieldLatchHoldsUntilHazardClears) {
  // A notified driver must stop short of the conflict point and hold there
  // (no creeping) until the hazard has actually passed, then proceed.
  World w = make_world();
  const int r1 = *w.network().find_route(Arm::kSouth, 1, Maneuver::kStraight);
  const int r2 = *w.network().find_route(Arm::kWest, 0, Maneuver::kStraight);
  const Route& route1 = w.network().route(r1);
  const Route& route2 = w.network().route(r2);
  const auto cross = route1.path.first_crossing(route2.path);
  ASSERT_TRUE(cross.has_value());
  const double speed = 8.33;
  VehicleParams ego_p = cruising_car(speed);
  ego_p.attentive = false;
  const AgentId ego = w.add_vehicle(ego_p, r1,
                                    cross->s_this - 6.0 * speed, speed);
  VehicleParams vp = cruising_car(speed);
  vp.runs_red_light = true;
  vp.attentive = false;
  // The hazard starts farther out so the ego must wait for it.
  const AgentId hazard =
      w.add_vehicle(vp, r2, cross->s_other - 8.0 * speed, speed);
  w.notify_vehicle(ego, hazard);

  double min_speed = 1e9;
  double s_at_min = 0.0;
  for (int i = 0; i < 250; ++i) {
    w.step();
    const Vehicle* e = w.find_vehicle(ego);
    if (e->speed() < min_speed) {
      min_speed = e->speed();
      s_at_min = e->s();
    }
  }
  EXPECT_TRUE(w.collisions().empty());
  // It actually yielded...
  EXPECT_LT(min_speed, 1.0);
  // ...stopped short of the conflict point...
  EXPECT_LT(s_at_min, cross->s_this - 2.0);
  // ...and eventually resumed and passed.
  EXPECT_GT(w.find_vehicle(ego)->s(), cross->s_this + 5.0);
}

TEST(WorldHazard, InattentiveIgnoresVisibleConflict) {
  // Same geometry, no notification: the inattentive driver sails into the
  // crossing hazard (the paper's Single behaviour).
  World w = make_world();
  const int r1 = *w.network().find_route(Arm::kSouth, 1, Maneuver::kStraight);
  const int r2 = *w.network().find_route(Arm::kWest, 0, Maneuver::kStraight);
  const Route& route1 = w.network().route(r1);
  const Route& route2 = w.network().route(r2);
  const auto cross = route1.path.first_crossing(route2.path);
  const double speed = 8.33;
  VehicleParams p = cruising_car(speed);
  p.attentive = false;
  const AgentId a =
      w.add_vehicle(p, r1, cross->s_this - 5.0 * speed, speed);
  VehicleParams vp = p;
  vp.runs_red_light = true;
  const AgentId b =
      w.add_vehicle(vp, r2, cross->s_other - 5.0 * speed, speed);
  for (int i = 0; i < 150; ++i) w.step();
  EXPECT_TRUE(w.agent_crashed(a));
  EXPECT_TRUE(w.agent_crashed(b));
}

TEST(WorldHazard, AttentiveYieldsToVisibleConflict) {
  World w = make_world();
  const int r1 = *w.network().find_route(Arm::kSouth, 1, Maneuver::kStraight);
  const int r2 = *w.network().find_route(Arm::kWest, 0, Maneuver::kStraight);
  const Route& route1 = w.network().route(r1);
  const Route& route2 = w.network().route(r2);
  const auto cross = route1.path.first_crossing(route2.path);
  const double speed = 8.33;
  VehicleParams p = cruising_car(speed);  // attentive by default
  const AgentId a =
      w.add_vehicle(p, r1, cross->s_this - 5.0 * speed, speed);
  VehicleParams vp = p;
  vp.runs_red_light = true;
  w.add_vehicle(vp, r2, cross->s_other - 5.0 * speed, speed);
  for (int i = 0; i < 150; ++i) w.step();
  EXPECT_FALSE(w.agent_crashed(a));
}

TEST(WorldDeterminism, SameSeedSameTrajectory) {
  auto run = [] {
    WorldConfig wc;
    wc.seed = 99;
    World w{RoadNetwork{RoadConfig{}}, wc};
    const int route =
        *w.network().find_route(Arm::kSouth, 1, Maneuver::kStraight);
    VehicleParams p;
    p.idm.desired_speed = 11.0;
    const AgentId id = w.add_vehicle(p, route, 10.0, 8.0);
    for (int i = 0; i < 100; ++i) w.step();
    return w.find_vehicle(id)->s();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace erpd::sim
