#include <gtest/gtest.h>

#include <cmath>

#include "sim/car_following.hpp"
#include "sim/types.hpp"

namespace erpd::sim {
namespace {

TEST(Pipes, SafeDistanceScalesWithSpeed) {
  const PipesModel pipes;
  // One car length (4.5 m) per 10 mph.
  EXPECT_NEAR(pipes.safe_distance(mph_to_ms(10.0)), 4.5, 1e-9);
  EXPECT_NEAR(pipes.safe_distance(mph_to_ms(30.0)), 13.5, 1e-9);
}

TEST(Pipes, MinGapAtStandstill) {
  const PipesModel pipes;
  EXPECT_DOUBLE_EQ(pipes.safe_distance(0.0), pipes.min_gap);
  EXPECT_TRUE(pipes.compliant(pipes.min_gap, 0.0));
  EXPECT_FALSE(pipes.compliant(pipes.min_gap - 0.1, 0.0));
}

TEST(Pipes, ComplianceBoundary) {
  const PipesModel pipes;
  const double v = mph_to_ms(20.0);  // requires 9 m
  EXPECT_TRUE(pipes.compliant(9.0, v));
  EXPECT_FALSE(pipes.compliant(8.9, v));
}

TEST(Gipps, TimeGapCriterion) {
  const GippsModel gipps;
  EXPECT_DOUBLE_EQ(gipps.safe_time_gap(), 1.5);
  // At 10 m/s a 15 m gap is exactly compliant.
  EXPECT_TRUE(gipps.compliant(15.0, 10.0));
  EXPECT_FALSE(gipps.compliant(14.9, 10.0));
}

TEST(Gipps, StandstillUsesDistanceGap) {
  const GippsModel gipps;
  EXPECT_TRUE(gipps.compliant(gipps.standstill_gap, 0.05));
  EXPECT_FALSE(gipps.compliant(gipps.standstill_gap - 0.5, 0.05));
}

TEST(Gipps, FreeRoadAcceleratesTowardDesired) {
  GippsModel gipps;
  gipps.desired_speed = 15.0;
  double v = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double nv = gipps.next_speed(
        v, 0.0, std::numeric_limits<double>::infinity());
    EXPECT_GE(nv, v - 1e-9);  // monotone approach from below
    v = nv;
  }
  EXPECT_NEAR(v, 15.0, 0.5);
  EXPECT_LE(v, 15.0 + 1e-9);
}

TEST(Gipps, BrakesWhenGapShrinks) {
  const GippsModel gipps;
  // Close behind a stopped leader: the braking branch must dominate.
  const double v = gipps.next_speed(10.0, 0.0, 5.0);
  EXPECT_LT(v, 10.0);
}

TEST(Gipps, NeverNegativeSpeed) {
  const GippsModel gipps;
  EXPECT_GE(gipps.next_speed(0.5, 0.0, 0.1), 0.0);
  EXPECT_GE(gipps.next_speed(20.0, 0.0, 0.0), 0.0);
}

TEST(Gipps, SafeBehindStoppedLeader) {
  // Iterating the Gipps law toward a stopped leader must never collide.
  GippsModel gipps;
  gipps.desired_speed = 14.0;
  double x = 0.0;
  double v = 14.0;
  const double leader_x = 80.0;
  const double dt = gipps.reaction_time;
  for (int i = 0; i < 200; ++i) {
    const double gap = leader_x - x;
    ASSERT_GT(gap, 0.0) << "Gipps follower collided at step " << i;
    const double nv = gipps.next_speed(v, 0.0, gap);
    x += 0.5 * (v + nv) * dt;
    v = nv;
  }
  EXPECT_LT(v, 0.2);
}

TEST(Idm, FreeRoadConvergesToDesiredSpeed) {
  IdmModel idm;
  idm.desired_speed = 12.0;
  double v = 0.0;
  for (int i = 0; i < 2000; ++i) {
    v = std::max(0.0, v + idm.acceleration(v, 0.0, IdmModel::free_road()) * 0.05);
  }
  EXPECT_NEAR(v, 12.0, 0.2);
}

TEST(Idm, DeceleratesWhenTooClose) {
  const IdmModel idm;
  EXPECT_LT(idm.acceleration(10.0, 10.0, 2.0), 0.0);   // gap ~ s0
  EXPECT_LT(idm.acceleration(10.0, 0.0, 20.0), -1.0);  // closing fast
}

TEST(Idm, ComfortableAtEquilibriumGap) {
  const IdmModel idm;
  // At the equilibrium gap (s0 + vT) with equal speeds, acceleration ~ only
  // the small free-road deficit term.
  const double v = 10.0;
  const double eq_gap = idm.min_gap + v * idm.time_headway;
  const double a = idm.acceleration(v, v, eq_gap);
  EXPECT_NEAR(a, idm.max_accel * (1.0 - std::pow(v / idm.desired_speed, 4.0)) -
                     idm.max_accel,
              0.15);
}

TEST(Idm, NeverExceedsMaxAccel) {
  const IdmModel idm;
  for (double v = 0.0; v <= 15.0; v += 1.0) {
    EXPECT_LE(idm.acceleration(v, 0.0, IdmModel::free_road()),
              idm.max_accel + 1e-9);
  }
}

TEST(Idm, FollowerNeverCollidesIntoBrakingLeader) {
  // Property: an IDM follower with instantaneous perception starting at the
  // equilibrium gap survives a full leader emergency stop.
  const IdmModel idm;
  double xf = 0.0;
  double vf = 12.0;
  double xl = idm.min_gap + vf * idm.time_headway + 4.5;
  double vl = 12.0;
  const double dt = 0.02;
  for (int i = 0; i < 3000; ++i) {
    vl = std::max(0.0, vl - 6.0 * dt);  // leader brakes hard to a stop
    xl += vl * dt;
    const double gap = xl - xf - 4.5;
    ASSERT_GT(gap, -0.01) << "IDM follower collided at step " << i;
    const double a = idm.acceleration(vf, vl, std::max(gap, 0.01));
    vf = std::max(0.0, vf + a * dt);
    xf += vf * dt;
  }
}

class PipesGippsConsistency : public ::testing::TestWithParam<double> {};

TEST_P(PipesGippsConsistency, BothModelsRequireMoreRoomAtSpeed) {
  const double v = GetParam();
  const PipesModel pipes;
  const GippsModel gipps;
  const double faster = v + 5.0;
  EXPECT_GE(pipes.safe_distance(faster), pipes.safe_distance(v));
  // Gipps: compliant gap at speed v is insufficient at faster speed.
  const double gap = 1.5 * v;  // exactly compliant at v
  if (v > 0.5) {
    EXPECT_TRUE(gipps.compliant(gap, v));
    EXPECT_FALSE(gipps.compliant(gap, faster));
  }
}

INSTANTIATE_TEST_SUITE_P(Speeds, PipesGippsConsistency,
                         ::testing::Values(0.0, 2.0, 5.0, 8.33, 11.1, 13.9));

}  // namespace
}  // namespace erpd::sim
