#include <gtest/gtest.h>

#include "core/check.hpp"

#include "geom/angle.hpp"
#include "pointcloud/ground_filter.hpp"
#include "pointcloud/pointcloud.hpp"
#include "pointcloud/voxel_grid.hpp"

namespace erpd::pc {
namespace {

using geom::Vec3;

TEST(PointCloud, BasicContainerOps) {
  PointCloud c;
  EXPECT_TRUE(c.empty());
  c.push_back({1.0, 2.0, 3.0});
  c.push_back({4.0, 5.0, 6.0});
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c[1], Vec3(4.0, 5.0, 6.0));
  c.clear();
  EXPECT_TRUE(c.empty());
}

TEST(PointCloud, AppendConcatenates) {
  PointCloud a{{{1, 1, 1}}};
  const PointCloud b{{{2, 2, 2}, {3, 3, 3}}};
  a.append(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a[2], Vec3(3, 3, 3));
}

TEST(PointCloud, TransformAppliesRigidMotion) {
  PointCloud c{{{1.0, 0.0, 0.0}}};
  c.transform(geom::Mat4::translation({0.0, 0.0, 5.0}));
  EXPECT_EQ(c[0], Vec3(1.0, 0.0, 5.0));
  const PointCloud r =
      c.transformed(geom::Mat4::rotation_z(geom::kPi / 2.0));
  EXPECT_NEAR(r[0].x, 0.0, 1e-12);
  EXPECT_NEAR(r[0].y, 1.0, 1e-12);
  // Original unchanged by transformed().
  EXPECT_EQ(c[0], Vec3(1.0, 0.0, 5.0));
}

TEST(PointCloud, FilteredKeepsPredicate) {
  const PointCloud c{{{0, 0, -1}, {0, 0, 1}, {0, 0, 2}}};
  const PointCloud pos = c.filtered([](const Vec3& p) { return p.z > 0; });
  EXPECT_EQ(pos.size(), 2u);
}

TEST(PointCloud, SubsetByIndices) {
  const PointCloud c{{{1, 0, 0}, {2, 0, 0}, {3, 0, 0}}};
  const std::vector<std::size_t> idx{2, 0};
  const PointCloud s = c.subset(idx);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], Vec3(3, 0, 0));
  EXPECT_EQ(s[1], Vec3(1, 0, 0));
}

TEST(PointCloud, AabbAndCentroid) {
  const PointCloud c{{{0, 0, 0}, {4, 2, 8}}};
  const geom::Aabb box = c.aabb_xy();
  EXPECT_EQ(box.min, geom::Vec2(0, 0));
  EXPECT_EQ(box.max, geom::Vec2(4, 2));
  EXPECT_EQ(c.centroid(), Vec3(2, 1, 4));
  EXPECT_EQ(PointCloud{}.centroid(), Vec3());
}

TEST(PointCloud, RawSizeBytes) {
  PointCloud c;
  for (int i = 0; i < 100; ++i) c.push_back({0, 0, 0});
  EXPECT_EQ(c.raw_size_bytes(), 100u * kRawBytesPerPoint);
}

TEST(GroundFilter, RemovesOnlyGroundPlane) {
  // Sensor at 1.8 m: ground points have z = -1.8 in the sensor frame.
  PointCloud c;
  for (int i = 0; i < 50; ++i) c.push_back({1.0 * i, 0.0, -1.8});
  for (int i = 0; i < 20; ++i) c.push_back({1.0 * i, 2.0, -0.5});
  const GroundFilterConfig cfg{1.8, 0.15};
  const PointCloud out = remove_ground(c, cfg);
  EXPECT_EQ(out.size(), 20u);
  EXPECT_NEAR(ground_fraction(c, cfg), 50.0 / 70.0, 1e-12);
}

TEST(GroundFilter, EpsilonToleratesNoise) {
  PointCloud c{{{0, 0, -1.75}, {0, 0, -1.6}}};
  const GroundFilterConfig cfg{1.8, 0.15};
  const PointCloud out = remove_ground(c, cfg);
  // -1.75 is within epsilon of the ground -> removed; -1.6 survives.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].z, -1.6);
}

TEST(GroundFilter, EmptyCloud) {
  EXPECT_TRUE(remove_ground(PointCloud{}, {}).empty());
  EXPECT_DOUBLE_EQ(ground_fraction(PointCloud{}, {}), 0.0);
}

TEST(VoxelGrid, DownsampleMergesVoxelmates) {
  PointCloud c{{{0.1, 0.1, 0.1}, {0.2, 0.2, 0.2}, {5.0, 5.0, 5.0}}};
  const PointCloud d = voxel_downsample(c, 1.0);
  EXPECT_EQ(d.size(), 2u);
}

TEST(VoxelGrid, DownsampleCentroidIsMean) {
  PointCloud c{{{0.2, 0.0, 0.0}, {0.4, 0.0, 0.0}}};
  const PointCloud d = voxel_downsample(c, 1.0);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_NEAR(d[0].x, 0.3, 1e-12);
}

TEST(VoxelGrid, InvalidVoxelSizeThrows) {
  EXPECT_THROW(voxel_downsample(PointCloud{}, 0.0), erpd::ContractViolation);
  EXPECT_THROW(voxel_downsample(PointCloud{}, -1.0), erpd::ContractViolation);
}

TEST(VoxelGrid, NegativeCoordinatesBinCorrectly) {
  // Points straddling zero must land in different voxels.
  PointCloud c{{{-0.1, 0.0, 0.0}, {0.1, 0.0, 0.0}}};
  EXPECT_EQ(voxel_downsample(c, 1.0).size(), 2u);
}

TEST(PointGrid, RadiusNeighborsFindsAllWithin) {
  PointCloud c{{{0, 0, 0}, {0.5, 0, 0}, {2.0, 0, 0}, {0, 0.9, 0}}};
  const PointGrid grid(c, 1.0);
  auto n = grid.radius_neighbors(std::size_t{0}, 1.0);
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<std::size_t>{1, 3}));
}

TEST(PointGrid, QueryPointVariant) {
  PointCloud c{{{0, 0, 0}, {3, 0, 0}}};
  const PointGrid grid(c, 1.0);
  const auto n = grid.radius_neighbors(Vec3{2.5, 0.0, 0.0}, 1.0);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0], 1u);
}

TEST(PointGrid, RadiusLargerThanCell) {
  PointCloud c{{{0, 0, 0}, {2.5, 0, 0}}};
  const PointGrid grid(c, 1.0);  // radius 3 spans multiple rings
  const auto n = grid.radius_neighbors(std::size_t{0}, 3.0);
  EXPECT_EQ(n.size(), 1u);
}

}  // namespace
}  // namespace erpd::pc
