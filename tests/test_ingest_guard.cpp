// Unit tests for the edge ingest admission layer (DESIGN.md §12): semantic
// frame validation, strike accumulation into exponential-backoff quarantine,
// wire-payload validation via pc::try_decode, deterministic overload
// shedding — plus the end-to-end exactly-once downlink fate accounting the
// layer's counters rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/check.hpp"
#include "edge/ingest_guard.hpp"
#include "edge/system_runner.hpp"
#include "obs/metrics.hpp"
#include "pointcloud/encoding.hpp"
#include "scenario_harness.hpp"

namespace erpd::edge {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

net::UploadFrame make_frame(sim::AgentId vehicle, double timestamp,
                            geom::Vec2 position, std::size_t objects = 1,
                            std::size_t points_per_object = 10) {
  net::UploadFrame f;
  f.vehicle = vehicle;
  f.timestamp = timestamp;
  f.pose.position = {position, 0.0};
  for (std::size_t i = 0; i < objects; ++i) {
    net::ObjectUpload o;
    o.centroid_world = {position.x + 5.0, position.y, 0.5};
    o.point_count = points_per_object;
    o.bytes = 64;
    f.objects.push_back(o);
  }
  return f;
}

IngestConfig enabled_config() {
  IngestConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(IngestConfig, ValidateRejectsBadValues) {
  IngestConfig cfg;
  cfg.max_pose_speed = 0.0;
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  cfg = {};
  cfg.max_abs_coord = -1.0;
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  cfg = {};
  cfg.strike_threshold = 0;
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  cfg = {};
  cfg.quarantine_base = 2.0;
  cfg.quarantine_max = 1.0;
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  EXPECT_NO_THROW(IngestConfig{}.validate());
}

TEST(IngestGuard, DisabledGuardWithoutWirePayloadsNeverRuns) {
  IngestGuard guard;  // default: disabled
  std::vector<net::UploadFrame> uploads = {make_frame(1, 0.1, {0.0, 0.0})};
  EXPECT_FALSE(guard.should_run(uploads));
  // Even garbage passes through untouched when the guard should not run —
  // that is the disabled-path bit-identity contract enforced by the caller.
  uploads.push_back(make_frame(2, kNan, {kNan, 0.0}));
  EXPECT_FALSE(guard.should_run(uploads));
}

TEST(IngestGuard, WirePayloadForcesValidationEvenWhenDisabled) {
  IngestGuard guard;  // disabled
  pc::PointCloud cloud;
  cloud.push_back({1.0, 2.0, 0.5});
  cloud.push_back({1.5, 2.5, 0.6});

  std::vector<net::UploadFrame> uploads = {make_frame(3, 0.1, {0.0, 0.0}, 2)};
  uploads[0].objects[0].wire = pc::encode(cloud);
  uploads[0].objects[0].wire_present = true;
  uploads[0].objects[1].wire = pc::encode(cloud);
  uploads[0].objects[1].wire.bytes[5] ^= 0x40;  // break the checksum
  uploads[0].objects[1].wire_present = true;
  EXPECT_TRUE(guard.should_run(uploads));

  IngestStats stats;
  const auto admitted = guard.admit(uploads, 0.2, &stats);
  ASSERT_EQ(admitted.size(), 1u);
  // The valid buffer decoded: payload replaced by the decoded cloud, wire
  // cleared. The corrupted one was dropped and billed as a CRC rejection.
  ASSERT_EQ(admitted[0].objects.size(), 1u);
  EXPECT_FALSE(admitted[0].objects[0].wire_present);
  EXPECT_EQ(admitted[0].objects[0].cloud_world.size(), cloud.size());
  EXPECT_EQ(stats.rejected_crc, 1u);
  EXPECT_EQ(stats.rejected_semantic, 0u);
}

TEST(IngestGuard, RejectsNonFinitePoseAndTimestamp) {
  IngestGuard guard(enabled_config());
  IngestStats stats;
  std::vector<net::UploadFrame> uploads = {
      make_frame(1, 0.1, {kNan, 0.0}),            // NaN pose
      make_frame(2, kNan, {0.0, 0.0}),            // NaN timestamp
      make_frame(3, 10.0, {0.0, 0.0}),            // stamped far in the future
      make_frame(4, 0.1, {5000.0, 0.0}),          // outside map bounds
      make_frame(5, 0.1, {0.0, 0.0}),             // clean
  };
  const auto admitted = guard.admit(uploads, 0.2, &stats);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0].vehicle, 5);
  EXPECT_EQ(stats.rejected_semantic, 4u);
}

TEST(IngestGuard, RejectsTimestampRegressionAndDuplicateInBatch) {
  IngestGuard guard(enabled_config());
  IngestStats stats;
  // Frame at t=0.1 accepted, then a replayed older/equal timestamp rejected.
  EXPECT_EQ(guard.admit({make_frame(1, 0.1, {0.0, 0.0})}, 0.1, &stats).size(),
            1u);
  EXPECT_EQ(guard.admit({make_frame(1, 0.1, {0.1, 0.0})}, 0.2, &stats).size(),
            0u);
  EXPECT_EQ(stats.rejected_semantic, 1u);
  // Two frames from the same sender inside one batch: the second is a
  // duplication artifact.
  stats = {};
  const auto admitted = guard.admit(
      {make_frame(1, 0.3, {0.2, 0.0}), make_frame(1, 0.35, {0.2, 0.0})}, 0.4,
      &stats);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(stats.rejected_semantic, 1u);
}

TEST(IngestGuard, RejectsImplausiblePoseJump) {
  IngestGuard guard(enabled_config());
  IngestStats stats;
  EXPECT_EQ(guard.admit({make_frame(1, 0.1, {0.0, 0.0})}, 0.1, &stats).size(),
            1u);
  // 500 m in 0.1 s is 5000 m/s — far beyond max_pose_speed.
  EXPECT_EQ(guard.admit({make_frame(1, 0.2, {500.0, 0.0})}, 0.2, &stats).size(),
            0u);
  EXPECT_EQ(stats.rejected_semantic, 1u);
  // A plausible move from the last *accepted* position is fine.
  EXPECT_EQ(guard.admit({make_frame(1, 0.3, {1.0, 0.0})}, 0.3, &stats).size(),
            1u);
}

TEST(IngestGuard, RejectsStructuralCapViolations) {
  IngestConfig cfg = enabled_config();
  cfg.max_objects_per_frame = 2;
  cfg.max_points_per_frame = 100;
  IngestGuard guard(cfg);
  IngestStats stats;
  const auto admitted = guard.admit(
      {
          make_frame(1, 0.1, {0.0, 0.0}, /*objects=*/3),   // too many objects
          make_frame(2, 0.1, {0.0, 0.0}, 2, /*points=*/60),  // 120 points
          make_frame(3, 0.1, {0.0, 0.0}, 2, 50),             // exactly at cap
      },
      0.2, &stats);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0].vehicle, 3);
  EXPECT_EQ(stats.rejected_semantic, 2u);
}

TEST(IngestGuard, OutOfBoundsObjectIsDroppedButFrameSurvives) {
  IngestGuard guard(enabled_config());
  IngestStats stats;
  net::UploadFrame f = make_frame(1, 0.1, {0.0, 0.0}, 2);
  f.objects[1].centroid_world = {9999.0, 0.0, 0.5};
  const auto admitted = guard.admit({f}, 0.2, &stats);
  // The validated pose is still useful to the fleet registry, so the frame
  // is admitted with the offending object stripped.
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0].objects.size(), 1u);
  EXPECT_EQ(stats.rejected_semantic, 1u);
}

TEST(IngestGuard, StrikesTriggerQuarantineWithExponentialBackoff) {
  IngestConfig cfg = enabled_config();
  cfg.strike_threshold = 3;
  cfg.quarantine_base = 1.0;
  cfg.quarantine_max = 16.0;
  IngestGuard guard(cfg);
  IngestStats stats;

  // Three offending frames: the third strike starts a quarantine.
  double t = 0.0;
  for (int i = 0; i < 3; ++i) {
    t += 0.1;
    guard.admit({make_frame(7, t, {kNan, 0.0})}, t, &stats);
  }
  EXPECT_EQ(stats.quarantine_events, 1u);
  EXPECT_TRUE(guard.quarantined(7, t + 0.5));
  EXPECT_TRUE(guard.quarantined(7, t + 0.99));
  EXPECT_FALSE(guard.quarantined(7, t + 1.0));  // base window over

  // While quarantined, even clean frames are dropped at the gate.
  const auto during =
      guard.admit({make_frame(7, t + 0.5, {0.0, 0.0})}, t + 0.5, &stats);
  EXPECT_TRUE(during.empty());
  EXPECT_EQ(stats.quarantine_dropped, 1u);

  // After readmission, three more strikes double the window (2 s).
  double t2 = t + 1.0;
  for (int i = 0; i < 3; ++i) {
    t2 += 0.1;
    guard.admit({make_frame(7, t2, {kNan, 0.0})}, t2, &stats);
  }
  EXPECT_EQ(stats.quarantine_events, 2u);
  EXPECT_TRUE(guard.quarantined(7, t2 + 1.5));
  EXPECT_FALSE(guard.quarantined(7, t2 + 2.0));

  // Other vehicles are unaffected throughout.
  EXPECT_FALSE(guard.quarantined(8, t2 + 1.0));
}

// Regression: the backoff ladder must double exactly quarantine_base ->
// quarantine_max and then saturate — a perpetual offender sits at the max
// window forever, never beyond it, no matter how many quarantines accumulate.
TEST(IngestGuard, QuarantineBackoffSaturatesAtMax) {
  IngestConfig cfg = enabled_config();
  cfg.strike_threshold = 1;  // quarantine on every offense
  cfg.quarantine_base = 1.0;
  cfg.quarantine_max = 4.0;
  IngestGuard guard(cfg);
  IngestStats stats;

  // Expected windows: 1, 2, 4, then 4 forever (saturated).
  const double expected[] = {1.0, 2.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0};
  double t = 0.1;
  for (const double window : expected) {
    guard.admit({make_frame(7, t, {kNan, 0.0})}, t, &stats);
    EXPECT_TRUE(guard.quarantined(7, t + window - 0.01)) << "window " << window;
    EXPECT_FALSE(guard.quarantined(7, t + window)) << "window " << window;
    t += window + 0.1;  // re-offend just after readmission
  }
  EXPECT_EQ(stats.quarantine_events, std::size(expected));
}

// Regression: a clean frame admitted after the quarantine window expires
// resets the ladder, so the next quarantine starts at quarantine_base again
// (the readmission contract documented in ingest_guard.hpp).
TEST(IngestGuard, CleanReadmissionResetsBackoff) {
  IngestConfig cfg = enabled_config();
  cfg.strike_threshold = 1;
  cfg.quarantine_base = 1.0;
  cfg.quarantine_max = 4.0;
  IngestGuard guard(cfg);
  IngestStats stats;

  // Climb the ladder to a 2 s window.
  guard.admit({make_frame(7, 0.1, {kNan, 0.0})}, 0.1, &stats);  // 1 s
  guard.admit({make_frame(7, 1.2, {kNan, 0.0})}, 1.2, &stats);  // 2 s
  EXPECT_FALSE(guard.quarantined(7, 3.2));

  // One clean frame after readmission wipes the reputation...
  IngestStats clean_stats;
  const auto admitted =
      guard.admit({make_frame(7, 3.3, {0.0, 0.0})}, 3.3, &clean_stats);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(clean_stats.quarantine_dropped, 0u);

  // ...so the next offense starts over at the 1 s base window, not the 4 s
  // the ladder would otherwise have reached.
  guard.admit({make_frame(7, 3.4, {kNan, 0.0})}, 3.4, &stats);
  EXPECT_TRUE(guard.quarantined(7, 4.39));
  EXPECT_FALSE(guard.quarantined(7, 4.4));
}

TEST(IngestGuard, CleanFramesDecayStrikes) {
  IngestConfig cfg = enabled_config();
  cfg.strike_threshold = 3;
  cfg.strike_decay = 1.0;  // one clean frame forgives one strike
  IngestGuard guard(cfg);
  IngestStats stats;
  // Offense, clean, offense, clean, ... never reaches three live strikes.
  double t = 0.0;
  for (int i = 0; i < 6; ++i) {
    t += 0.1;
    const bool offend = (i % 2 == 0);
    guard.admit({make_frame(9, offend ? kNan : t, {0.0, 0.0})}, t, &stats);
  }
  EXPECT_EQ(stats.quarantine_events, 0u);
  EXPECT_FALSE(guard.quarantined(9, t));
}

TEST(IngestGuard, SheddingKeepsBiggestCloudsAndIsDeterministic) {
  IngestConfig cfg = enabled_config();
  cfg.point_budget_per_frame = 105;
  IngestGuard a(cfg);
  IngestGuard b(cfg);
  IngestStats sa;
  IngestStats sb;

  std::vector<net::UploadFrame> uploads = {
      make_frame(1, 0.1, {0.0, 0.0}, 1, 60),
      make_frame(2, 0.1, {10.0, 0.0}, 1, 40),
      make_frame(3, 0.1, {20.0, 0.0}, 1, 30),
      make_frame(4, 0.1, {30.0, 0.0}, 1, 5),
  };
  const auto ra = a.admit(uploads, 0.2, &sa);
  // Greedy by size under a 105-point budget: keep 60 and 40; 30 no longer
  // fits, but the 5-point cloud still does.
  ASSERT_EQ(ra.size(), 4u);
  EXPECT_EQ(ra[0].objects.size(), 1u);
  EXPECT_EQ(ra[1].objects.size(), 1u);
  EXPECT_EQ(ra[2].objects.size(), 0u);  // shed
  EXPECT_EQ(ra[3].objects.size(), 1u);
  EXPECT_EQ(sa.shed_uploads, 1u);

  // Bit-identical on a replay.
  const auto rb = b.admit(uploads, 0.2, &sb);
  ASSERT_EQ(rb.size(), ra.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(rb[i].objects.size(), ra[i].objects.size()) << i;
  }
  EXPECT_EQ(sb.shed_uploads, sa.shed_uploads);
}

TEST(IngestGuard, NoSheddingWithinBudget) {
  IngestConfig cfg = enabled_config();
  cfg.point_budget_per_frame = 1000;
  IngestGuard guard(cfg);
  IngestStats stats;
  const auto admitted = guard.admit(
      {make_frame(1, 0.1, {0.0, 0.0}, 3, 50)}, 0.2, &stats);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0].objects.size(), 3u);
  EXPECT_EQ(stats.shed_uploads, 0u);
}

TEST(IngestGuard, CountersRecordThroughTheRegistry) {
  obs::MetricsRegistry reg;
  IngestConfig cfg = enabled_config();
  cfg.strike_threshold = 1;  // quarantine on the first offense
  IngestGuard guard(cfg);
  guard.attach_metrics(&reg);
  IngestStats stats;
  guard.admit({make_frame(1, 0.1, {kNan, 0.0})}, 0.1, &stats);
  guard.admit({make_frame(1, 0.3, {0.0, 0.0})}, 0.3, &stats);  // quarantined
  EXPECT_EQ(reg.counter("ingest.rejected_semantic").value(), 1u);
  EXPECT_EQ(reg.counter("ingest.quarantined_vehicles").value(), 1u);
  EXPECT_EQ(reg.counter("ingest.quarantine_dropped_frames").value(), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end fate accounting: with loss, corruption, and a deadline all
// active on the downlink, every selected dissemination gets exactly one
// fate — lost, corrupted, late, or delivered — and the four counters sum
// to the number of selected messages. This is the regression test for the
// double-billing bug where lost messages also counted as deadline misses.
// ---------------------------------------------------------------------------

TEST(DownlinkAccounting, EveryMessageBilledExactlyOnce) {
  harness::FaultCase fc;
  fc.fault.seed = 0xacc7;
  fc.fault.downlink_loss = 0.15;
  fc.fault.downlink_corruption = 0.15;
  fc.fault.jitter_mean = 0.02;
  fc.fault.downlink_deadline = 0.050;

  RunnerConfig rc = harness::make_fault_runner(Method::kOurs, fc);
  rc.duration = 6.0;
  obs::MetricsRegistry reg;
  rc.metrics = &reg;
  sim::Scenario sc =
      sim::make_unprotected_left_turn(harness::default_intersection(42));
  SystemRunner runner(rc);
  const MethodMetrics m = runner.run(sc);

  const std::uint64_t lost = reg.counter("net.downlink_lost_msgs").value();
  const std::uint64_t corrupted =
      reg.counter("net.downlink_corrupted_msgs").value();
  const std::uint64_t late = reg.counter("net.downlink_deadline_miss").value();
  const std::uint64_t delivered = reg.counter("diss.delivered_msgs").value();
  const std::uint64_t selected = static_cast<std::uint64_t>(m.disseminations);

  // Each fate actually occurred under this schedule...
  EXPECT_GT(lost, 0u);
  EXPECT_GT(corrupted, 0u);
  EXPECT_GT(late, 0u);
  EXPECT_GT(delivered, 0u);
  // ...and the fates partition the selected set exactly.
  EXPECT_EQ(lost + corrupted + late + delivered, selected);
  EXPECT_DOUBLE_EQ(m.downlink_deadline_miss_ratio,
                   static_cast<double>(lost + corrupted + late) /
                       static_cast<double>(selected));
}

}  // namespace
}  // namespace erpd::edge
