#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/thread_pool.hpp"

namespace erpd::core {
namespace {

/// Restores the auto pool size when a test exits.
struct PoolGuard {
  ~PoolGuard() { set_thread_count(0); }
};

TEST(ThreadPool, ChunkCountBoundaries) {
  EXPECT_EQ(chunk_count(0, 8), 0u);
  EXPECT_EQ(chunk_count(1, 8), 1u);
  EXPECT_EQ(chunk_count(8, 8), 1u);
  EXPECT_EQ(chunk_count(9, 8), 2u);
  EXPECT_EQ(chunk_count(16, 8), 2u);
  EXPECT_EQ(chunk_count(17, 8), 3u);
  EXPECT_EQ(chunk_count(5, 0), 5u);  // grain 0 treated as 1
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  PoolGuard guard;
  for (const std::size_t threads : {1, 2, 8}) {
    set_thread_count(threads);
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(hits.size(), 7, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPool, ChunkedReductionIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  // Float summation order matters; per-chunk sums merged in chunk order must
  // give the same bits for every worker count.
  std::vector<double> data(10'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 1.0 / static_cast<double>(i + 1);
  }
  const auto reduce = [&] {
    const std::size_t n_chunks = chunk_count(data.size(), 64);
    std::vector<double> partial(n_chunks, 0.0);
    parallel_chunks(data.size(), 64,
                    [&](std::size_t b, std::size_t e, std::size_t c) {
                      for (std::size_t i = b; i < e; ++i) partial[c] += data[i];
                    });
    double sum = 0.0;
    for (const double p : partial) sum += p;
    return sum;
  };
  set_thread_count(1);
  const double ref = reduce();
  for (const std::size_t threads : {2, 3, 8}) {
    set_thread_count(threads);
    EXPECT_EQ(reduce(), ref) << threads << " threads";
  }
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  PoolGuard guard;
  set_thread_count(4);
  EXPECT_THROW(
      parallel_for(100, 1,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Pool must still be usable after an exception.
  std::atomic<int> n{0};
  parallel_for(10, 1, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, NestedParallelRegionsRunSerially) {
  PoolGuard guard;
  set_thread_count(4);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(8, 1, [&](std::size_t outer) {
    // Inner loop must not deadlock on the shared pool; it degrades to the
    // serial path inside a worker.
    parallel_for(8, 1, [&](std::size_t inner) { ++hits[outer * 8 + inner]; });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPool, ThreadCountReflectsSetter) {
  PoolGuard guard;
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1u);
}

}  // namespace
}  // namespace erpd::core
