#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/check.hpp"
#include "core/rng.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"

namespace erpd::net {
namespace {

TEST(Wireless, BudgetsFromMbps) {
  WirelessConfig cfg;
  cfg.uplink_mbps = 16.0;
  cfg.downlink_mbps = 32.0;
  cfg.frame_interval = 0.1;
  EXPECT_EQ(cfg.uplink_budget_bytes(), 200000u);
  EXPECT_EQ(cfg.downlink_budget_bytes(), 400000u);
}

TEST(Wireless, NegativeOrZeroRatesAreRejected) {
  WirelessConfig cfg;
  cfg.uplink_mbps = -40.0;
  EXPECT_THROW(cfg.uplink_budget_bytes(), erpd::ContractViolation);
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);

  cfg = WirelessConfig{};
  cfg.downlink_mbps = 0.0;
  EXPECT_THROW(cfg.downlink_budget_bytes(), erpd::ContractViolation);

  cfg = WirelessConfig{};
  cfg.frame_interval = -0.1;
  EXPECT_THROW(cfg.uplink_budget_bytes(), erpd::ContractViolation);

  cfg = WirelessConfig{};
  cfg.base_latency = -0.001;
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);

  EXPECT_NO_THROW(WirelessConfig{}.validate());
}

TEST(FrameBudget, GrantAllOrNothing) {
  FrameBudget b(100);
  EXPECT_TRUE(b.try_grant(60));
  EXPECT_FALSE(b.try_grant(50));
  EXPECT_EQ(b.used(), 60u);
  EXPECT_TRUE(b.try_grant(40));
  EXPECT_EQ(b.remaining(), 0u);
}

TEST(FrameBudget, PartialGrant) {
  FrameBudget b(100);
  EXPECT_EQ(b.grant_partial(60), 60u);
  EXPECT_EQ(b.grant_partial(60), 40u);
  EXPECT_EQ(b.grant_partial(10), 0u);
}

TEST(FrameBudget, Reset) {
  FrameBudget b(100);
  b.grant_partial(100);
  b.reset();
  EXPECT_EQ(b.remaining(), 100u);
}

TEST(FrameBudget, ZeroCapacityNeverUnderflows) {
  FrameBudget b(0);
  EXPECT_EQ(b.remaining(), 0u);
  EXPECT_FALSE(b.try_grant(1));
  EXPECT_TRUE(b.try_grant(0));
  EXPECT_EQ(b.grant_partial(10), 0u);
  // The guarded remaining() must stay pinned at 0, not wrap to SIZE_MAX.
  EXPECT_EQ(b.remaining(), 0u);
}

TEST(FrameBudget, ExhaustedBudgetStaysConsistent) {
  FrameBudget b(64);
  EXPECT_EQ(b.grant_partial(100), 64u);
  EXPECT_EQ(b.used(), 64u);
  EXPECT_EQ(b.remaining(), 0u);
  EXPECT_FALSE(b.try_grant(1));
  EXPECT_EQ(b.used(), 64u);  // failed grant must not mutate state
}

// Property: across randomized grant sequences the budget never over-grants
// and the used/remaining split always reconciles with the capacity.
TEST(FrameBudget, RandomizedGrantsPreserveInvariants) {
  core::SplitMix64 rng(core::seed_mix(0xb4d6e7, 1));
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t cap = rng() % 5000;
    FrameBudget b(cap);
    std::size_t granted = 0;
    for (int op = 0; op < 64; ++op) {
      const std::size_t req = rng() % 2000;
      if (rng() % 2 == 0) {
        if (b.try_grant(req)) granted += req;
      } else {
        granted += b.grant_partial(req);
      }
      ASSERT_LE(b.used(), b.capacity());
      ASSERT_EQ(b.used(), granted);
      ASSERT_EQ(b.remaining() + b.used(), b.capacity());
    }
    b.reset();
    ASSERT_EQ(b.remaining(), cap);
    ASSERT_EQ(b.used(), 0u);
  }
}

// Property: with equal-size requests, FCFS admission is order-independent —
// any permutation grants the same total (floor(cap / size) requests fit).
TEST(FrameBudget, EqualSizedRequestsGrantOrderIndependentTotal) {
  core::SplitMix64 rng(core::seed_mix(0xb4d6e7, 2));
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t size = 1 + rng() % 500;
    const std::size_t n = 1 + rng() % 40;
    const std::size_t cap = rng() % (size * n + 1);
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    const std::size_t expect = std::min(cap / size, n) * size;
    for (int perm = 0; perm < 4; ++perm) {
      // Deterministic Fisher-Yates driven by the counter-based stream.
      for (std::size_t i = n - 1; i > 0; --i) {
        std::swap(order[i], order[rng() % (i + 1)]);
      }
      FrameBudget b(cap);
      std::size_t granted = 0;
      for (std::size_t idx : order) {
        (void)idx;
        if (b.try_grant(size)) granted += size;
      }
      ASSERT_EQ(granted, expect) << "cap=" << cap << " size=" << size;
    }
  }
}

TEST(TransferDelay, LinearInBytes) {
  // 1 MB over 8 Mbps = 1 s plus base latency.
  EXPECT_NEAR(transfer_delay(1000000, 8.0, 0.01), 1.01, 1e-9);
  EXPECT_DOUBLE_EQ(transfer_delay(0, 8.0, 0.01), 0.01);
}

TEST(TransferDelay, NonPositiveBandwidthIsAContractViolation) {
  // A zero/negative rate used to silently model an infinitely fast link
  // (bare base latency). It must trip the contract layer instead.
  EXPECT_THROW(transfer_delay(1000, 0.0, 0.02), erpd::ContractViolation);
  EXPECT_THROW(transfer_delay(1000, -8.0, 0.02), erpd::ContractViolation);
  EXPECT_THROW(transfer_delay(0, 0.0, 0.0), erpd::ContractViolation);
  // The boundary: any strictly positive rate is a real link.
  EXPECT_GT(transfer_delay(1000, 1e-9, 0.0), 0.0);
}

TEST(BandwidthMeter, Accumulates) {
  BandwidthMeter m;
  m.add(1000);
  m.add(3000);
  EXPECT_EQ(m.total_bytes(), 4000u);
  EXPECT_EQ(m.frames(), 2u);
  EXPECT_DOUBLE_EQ(m.bytes_per_frame(), 2000.0);
  // 4000 B over 1 s = 0.032 Mbit/s.
  EXPECT_NEAR(m.mbps(1.0), 0.032, 1e-9);
  m.reset();
  EXPECT_EQ(m.total_bytes(), 0u);
  EXPECT_DOUBLE_EQ(m.bytes_per_frame(), 0.0);
  EXPECT_DOUBLE_EQ(m.mbps(0.0), 0.0);
}

TEST(UploadFrame, TotalBytesIncludesOverhead) {
  UploadFrame f;
  EXPECT_EQ(f.total_bytes(), UploadFrame::kFrameOverhead);
  ObjectUpload o;
  o.bytes = 500;
  f.objects.push_back(o);
  f.objects.push_back(o);
  EXPECT_EQ(f.total_bytes(), UploadFrame::kFrameOverhead + 1000u);
}

TEST(UploadFrame, BilledBytesMatchEncodedPayloadSize) {
  // Clients bill each object as encoded_size_bytes(point_count); the frame
  // total the uplink cap charges must equal the bytes the codec would
  // actually put on the wire, header included.
  UploadFrame f;
  std::size_t wire = UploadFrame::kFrameOverhead;
  for (std::size_t n : {3u, 40u, 250u}) {
    ObjectUpload o;
    for (std::size_t i = 0; i < n; ++i) {
      o.cloud_world.push_back({0.01 * static_cast<double>(i), 1.0, 0.5});
    }
    o.point_count = o.cloud_world.size();
    o.bytes = pc::encoded_size_bytes(o.point_count);
    wire += pc::encode(o.cloud_world).size_bytes();
    f.objects.push_back(std::move(o));
  }
  EXPECT_EQ(f.total_bytes(), wire);
}

}  // namespace
}  // namespace erpd::net
