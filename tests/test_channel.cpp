#include <gtest/gtest.h>

#include "core/check.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"

namespace erpd::net {
namespace {

TEST(Wireless, BudgetsFromMbps) {
  WirelessConfig cfg;
  cfg.uplink_mbps = 16.0;
  cfg.downlink_mbps = 32.0;
  cfg.frame_interval = 0.1;
  EXPECT_EQ(cfg.uplink_budget_bytes(), 200000u);
  EXPECT_EQ(cfg.downlink_budget_bytes(), 400000u);
}

TEST(Wireless, NegativeOrZeroRatesAreRejected) {
  WirelessConfig cfg;
  cfg.uplink_mbps = -40.0;
  EXPECT_THROW(cfg.uplink_budget_bytes(), erpd::ContractViolation);
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);

  cfg = WirelessConfig{};
  cfg.downlink_mbps = 0.0;
  EXPECT_THROW(cfg.downlink_budget_bytes(), erpd::ContractViolation);

  cfg = WirelessConfig{};
  cfg.frame_interval = -0.1;
  EXPECT_THROW(cfg.uplink_budget_bytes(), erpd::ContractViolation);

  cfg = WirelessConfig{};
  cfg.base_latency = -0.001;
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);

  EXPECT_NO_THROW(WirelessConfig{}.validate());
}

TEST(FrameBudget, GrantAllOrNothing) {
  FrameBudget b(100);
  EXPECT_TRUE(b.try_grant(60));
  EXPECT_FALSE(b.try_grant(50));
  EXPECT_EQ(b.used(), 60u);
  EXPECT_TRUE(b.try_grant(40));
  EXPECT_EQ(b.remaining(), 0u);
}

TEST(FrameBudget, PartialGrant) {
  FrameBudget b(100);
  EXPECT_EQ(b.grant_partial(60), 60u);
  EXPECT_EQ(b.grant_partial(60), 40u);
  EXPECT_EQ(b.grant_partial(10), 0u);
}

TEST(FrameBudget, Reset) {
  FrameBudget b(100);
  b.grant_partial(100);
  b.reset();
  EXPECT_EQ(b.remaining(), 100u);
}

TEST(FrameBudget, ZeroCapacityNeverUnderflows) {
  FrameBudget b(0);
  EXPECT_EQ(b.remaining(), 0u);
  EXPECT_FALSE(b.try_grant(1));
  EXPECT_TRUE(b.try_grant(0));
  EXPECT_EQ(b.grant_partial(10), 0u);
  // The guarded remaining() must stay pinned at 0, not wrap to SIZE_MAX.
  EXPECT_EQ(b.remaining(), 0u);
}

TEST(FrameBudget, ExhaustedBudgetStaysConsistent) {
  FrameBudget b(64);
  EXPECT_EQ(b.grant_partial(100), 64u);
  EXPECT_EQ(b.used(), 64u);
  EXPECT_EQ(b.remaining(), 0u);
  EXPECT_FALSE(b.try_grant(1));
  EXPECT_EQ(b.used(), 64u);  // failed grant must not mutate state
}

TEST(TransferDelay, LinearInBytes) {
  // 1 MB over 8 Mbps = 1 s plus base latency.
  EXPECT_NEAR(transfer_delay(1000000, 8.0, 0.01), 1.01, 1e-9);
  EXPECT_DOUBLE_EQ(transfer_delay(0, 8.0, 0.01), 0.01);
  // Degenerate bandwidth returns base latency.
  EXPECT_DOUBLE_EQ(transfer_delay(1000, 0.0, 0.02), 0.02);
}

TEST(BandwidthMeter, Accumulates) {
  BandwidthMeter m;
  m.add(1000);
  m.add(3000);
  EXPECT_EQ(m.total_bytes(), 4000u);
  EXPECT_EQ(m.frames(), 2u);
  EXPECT_DOUBLE_EQ(m.bytes_per_frame(), 2000.0);
  // 4000 B over 1 s = 0.032 Mbit/s.
  EXPECT_NEAR(m.mbps(1.0), 0.032, 1e-9);
  m.reset();
  EXPECT_EQ(m.total_bytes(), 0u);
  EXPECT_DOUBLE_EQ(m.bytes_per_frame(), 0.0);
  EXPECT_DOUBLE_EQ(m.mbps(0.0), 0.0);
}

TEST(UploadFrame, TotalBytesIncludesOverhead) {
  UploadFrame f;
  EXPECT_EQ(f.total_bytes(), UploadFrame::kFrameOverhead);
  ObjectUpload o;
  o.bytes = 500;
  f.objects.push_back(o);
  f.objects.push_back(o);
  EXPECT_EQ(f.total_bytes(), UploadFrame::kFrameOverhead + 1000u);
}

}  // namespace
}  // namespace erpd::net
