#include <gtest/gtest.h>

#include "core/check.hpp"

#include "geom/polyline.hpp"

namespace erpd::geom {
namespace {

Polyline lshape() {
  // 10 m east then 10 m north.
  return Polyline{{{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}}};
}

TEST(Polyline, LengthAccumulates) {
  EXPECT_DOUBLE_EQ(lshape().length(), 20.0);
  EXPECT_DOUBLE_EQ(Polyline{}.length(), 0.0);
}

TEST(Polyline, PointAtWalksSegments) {
  const Polyline p = lshape();
  EXPECT_EQ(p.point_at(0.0), Vec2(0.0, 0.0));
  EXPECT_EQ(p.point_at(5.0), Vec2(5.0, 0.0));
  EXPECT_EQ(p.point_at(10.0), Vec2(10.0, 0.0));
  EXPECT_EQ(p.point_at(15.0), Vec2(10.0, 5.0));
  EXPECT_EQ(p.point_at(20.0), Vec2(10.0, 10.0));
  // Clamped outside.
  EXPECT_EQ(p.point_at(-3.0), Vec2(0.0, 0.0));
  EXPECT_EQ(p.point_at(99.0), Vec2(10.0, 10.0));
}

TEST(Polyline, TangentFollowsSegmentDirection) {
  const Polyline p = lshape();
  EXPECT_NEAR(p.tangent_at(5.0).x, 1.0, 1e-12);
  EXPECT_NEAR(p.tangent_at(15.0).y, 1.0, 1e-12);
  EXPECT_NEAR(p.heading_at(15.0), std::numbers::pi / 2.0, 1e-12);
}

TEST(Polyline, ProjectFindsClosestArcLength) {
  const Polyline p = lshape();
  double d = 0.0;
  EXPECT_NEAR(p.project({5.0, 2.0}, &d), 5.0, 1e-12);
  EXPECT_NEAR(d, 2.0, 1e-12);
  EXPECT_NEAR(p.project({12.0, 5.0}, &d), 15.0, 1e-12);
  EXPECT_NEAR(d, 2.0, 1e-12);
  // Corner region projects to the corner.
  EXPECT_NEAR(p.project({11.0, -1.0}, &d), 10.0, 1e-12);
}

TEST(Polyline, SliceKeepsGeometry) {
  const Polyline p = lshape();
  const Polyline s = p.slice(5.0, 15.0);
  EXPECT_NEAR(s.length(), 10.0, 1e-12);
  EXPECT_EQ(s.point_at(0.0), Vec2(5.0, 0.0));
  EXPECT_EQ(s.point_at(5.0), Vec2(10.0, 0.0));  // corner preserved
  EXPECT_EQ(s.point_at(10.0), Vec2(10.0, 5.0));
}

TEST(Polyline, SliceClampsBeyondEnds) {
  const Polyline p = lshape();
  const Polyline s = p.slice(-5.0, 100.0);
  EXPECT_NEAR(s.length(), 20.0, 1e-12);
}

TEST(Polyline, PushBackExtends) {
  Polyline p;
  p.push_back({0.0, 0.0});
  EXPECT_DOUBLE_EQ(p.length(), 0.0);
  p.push_back({3.0, 4.0});
  EXPECT_DOUBLE_EQ(p.length(), 5.0);
  p.push_back({3.0, 14.0});
  EXPECT_DOUBLE_EQ(p.length(), 15.0);
}

TEST(Polyline, CircleIntervalsStraightThrough) {
  const Polyline p{{{-10.0, 0.0}, {10.0, 0.0}}};
  const auto ivs = p.circle_intervals({0.0, 0.0}, 4.0);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_NEAR(ivs[0].lo, 6.0, 1e-9);
  EXPECT_NEAR(ivs[0].hi, 14.0, 1e-9);
}

TEST(Polyline, CircleIntervalsMergeAcrossVertices) {
  // Vertex inside the circle must not split the interval.
  const Polyline p{{{-10.0, 0.0}, {0.0, 0.0}, {10.0, 0.0}}};
  const auto ivs = p.circle_intervals({0.0, 0.0}, 4.0);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_NEAR(ivs[0].lo, 6.0, 1e-9);
  EXPECT_NEAR(ivs[0].hi, 14.0, 1e-9);
}

TEST(Polyline, CircleIntervalsReentry) {
  // A U-shaped path that enters the disk twice.
  const Polyline p{{{-10.0, 3.0}, {10.0, 3.0}, {10.0, -3.0}, {-10.0, -3.0}}};
  const auto ivs = p.circle_intervals({0.0, 0.0}, 4.0);
  EXPECT_EQ(ivs.size(), 2u);
}

TEST(Polyline, FirstCrossingBasic) {
  const Polyline a{{{0.0, 0.0}, {10.0, 0.0}}};
  const Polyline b{{{5.0, -5.0}, {5.0, 5.0}}};
  const auto c = a.first_crossing(b);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->s_this, 5.0, 1e-12);
  EXPECT_NEAR(c->s_other, 5.0, 1e-12);
  EXPECT_NEAR(c->point.x, 5.0, 1e-12);
}

TEST(Polyline, FirstCrossingPicksEarliest) {
  const Polyline a{{{0.0, 0.0}, {20.0, 0.0}}};
  // b crosses a twice; the earliest crossing along `a` is at x = 5.
  const Polyline b{{{5.0, -5.0}, {5.0, 5.0}, {15.0, 5.0}, {15.0, -5.0}}};
  const auto c = a.first_crossing(b);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->s_this, 5.0, 1e-9);
}

TEST(Polyline, NoCrossing) {
  const Polyline a{{{0.0, 0.0}, {10.0, 0.0}}};
  const Polyline b{{{0.0, 5.0}, {10.0, 5.0}}};
  EXPECT_FALSE(a.first_crossing(b).has_value());
}

TEST(Polyline, ResampledPreservesEndpointsAndLength) {
  const Polyline p = lshape();
  const Polyline r = p.resampled(0.5);
  EXPECT_EQ(r.points().front(), p.points().front());
  EXPECT_EQ(r.points().back(), p.points().back());
  EXPECT_NEAR(r.length(), p.length(), 0.1);
  EXPECT_GT(r.size(), p.size());
}

TEST(Polyline, ProjectOnEmptyThrows) {
  Polyline p;
  EXPECT_THROW(p.project({0.0, 0.0}), erpd::ContractViolation);
}

}  // namespace
}  // namespace erpd::geom
