#include <gtest/gtest.h>

#include "geom/segment.hpp"

namespace erpd::geom {
namespace {

TEST(SegmentIntersect, CrossingSegments) {
  const Segment a{{0.0, 0.0}, {10.0, 0.0}};
  const Segment b{{5.0, -5.0}, {5.0, 5.0}};
  const auto hit = intersect(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->point.x, 5.0, 1e-12);
  EXPECT_NEAR(hit->point.y, 0.0, 1e-12);
  EXPECT_NEAR(hit->t_first, 0.5, 1e-12);
  EXPECT_NEAR(hit->t_second, 0.5, 1e-12);
}

TEST(SegmentIntersect, NonCrossingParallel) {
  const Segment a{{0.0, 0.0}, {10.0, 0.0}};
  const Segment b{{0.0, 1.0}, {10.0, 1.0}};
  EXPECT_FALSE(intersect(a, b).has_value());
}

TEST(SegmentIntersect, DisjointColinear) {
  const Segment a{{0.0, 0.0}, {1.0, 0.0}};
  const Segment b{{2.0, 0.0}, {3.0, 0.0}};
  EXPECT_FALSE(intersect(a, b).has_value());
}

TEST(SegmentIntersect, OverlappingColinearReportsFirstOverlap) {
  const Segment a{{0.0, 0.0}, {10.0, 0.0}};
  const Segment b{{4.0, 0.0}, {20.0, 0.0}};
  const auto hit = intersect(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->point.x, 4.0, 1e-9);
  EXPECT_NEAR(hit->t_first, 0.4, 1e-9);
}

TEST(SegmentIntersect, TouchingAtEndpoint) {
  const Segment a{{0.0, 0.0}, {5.0, 0.0}};
  const Segment b{{5.0, 0.0}, {5.0, 5.0}};
  const auto hit = intersect(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->t_first, 1.0, 1e-9);
  EXPECT_NEAR(hit->t_second, 0.0, 1e-9);
}

TEST(SegmentIntersect, MissOutsideRange) {
  // Lines cross, but beyond the segment extents.
  const Segment a{{0.0, 0.0}, {1.0, 0.0}};
  const Segment b{{5.0, -1.0}, {5.0, 1.0}};
  EXPECT_FALSE(intersect(a, b).has_value());
}

TEST(SegmentDistance, PointProjection) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  double t = -1.0;
  EXPECT_DOUBLE_EQ(point_segment_distance({5.0, 3.0}, s, &t), 3.0);
  EXPECT_DOUBLE_EQ(t, 0.5);
  // Beyond an endpoint: clamped.
  EXPECT_DOUBLE_EQ(point_segment_distance({-3.0, 4.0}, s, &t), 5.0);
  EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(SegmentCircle, ThroughCenterTwoCrossings) {
  const Segment s{{-10.0, 0.0}, {10.0, 0.0}};
  const auto x = segment_circle_crossings(s, {0.0, 0.0}, 5.0);
  ASSERT_EQ(x.count, 2);
  EXPECT_NEAR(x.t[0], 0.25, 1e-12);
  EXPECT_NEAR(x.t[1], 0.75, 1e-12);
}

TEST(SegmentCircle, MissReturnsNothing) {
  const Segment s{{-10.0, 7.0}, {10.0, 7.0}};
  EXPECT_EQ(segment_circle_crossings(s, {0.0, 0.0}, 5.0).count, 0);
}

TEST(SegmentCircle, InCircleIntervalFullyInside) {
  const Segment s{{-1.0, 0.0}, {1.0, 0.0}};
  const auto iv = segment_in_circle_interval(s, {0.0, 0.0}, 5.0);
  ASSERT_TRUE(iv.has_value());
  EXPECT_DOUBLE_EQ(iv->lo, 0.0);
  EXPECT_DOUBLE_EQ(iv->hi, 1.0);
}

TEST(SegmentCircle, InCircleIntervalEnteringOnly) {
  const Segment s{{-10.0, 0.0}, {0.0, 0.0}};
  const auto iv = segment_in_circle_interval(s, {0.0, 0.0}, 5.0);
  ASSERT_TRUE(iv.has_value());
  EXPECT_NEAR(iv->lo, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(iv->hi, 1.0);
}

TEST(SegmentCircle, InCircleIntervalPassingThrough) {
  const Segment s{{-10.0, 3.0}, {10.0, 3.0}};
  const auto iv = segment_in_circle_interval(s, {0.0, 0.0}, 5.0);
  ASSERT_TRUE(iv.has_value());
  // Chord half-length = 4 -> enters at x=-4 (t=0.3), exits at x=+4 (t=0.7).
  EXPECT_NEAR(iv->lo, 0.3, 1e-9);
  EXPECT_NEAR(iv->hi, 0.7, 1e-9);
}

TEST(SegmentCircle, InCircleIntervalMiss) {
  const Segment s{{-10.0, 6.0}, {10.0, 6.0}};
  EXPECT_FALSE(segment_in_circle_interval(s, {0.0, 0.0}, 5.0).has_value());
}

TEST(Intervals, OverlapAndUnion) {
  const IntervalD a{0.0, 2.0};
  const IntervalD b{1.0, 4.0};
  const auto ov = interval_overlap(a, b);
  ASSERT_TRUE(ov.has_value());
  EXPECT_DOUBLE_EQ(ov->lo, 1.0);
  EXPECT_DOUBLE_EQ(ov->hi, 2.0);
  EXPECT_DOUBLE_EQ(interval_union_length(a, b), 4.0);
}

TEST(Intervals, DisjointOverlapIsNull) {
  const IntervalD a{0.0, 1.0};
  const IntervalD b{2.0, 3.0};
  EXPECT_FALSE(interval_overlap(a, b).has_value());
  EXPECT_DOUBLE_EQ(interval_union_length(a, b), 2.0);
}

TEST(Intervals, TouchingCountsAsZeroLengthOverlap) {
  const IntervalD a{0.0, 1.0};
  const IntervalD b{1.0, 2.0};
  const auto ov = interval_overlap(a, b);
  ASSERT_TRUE(ov.has_value());
  EXPECT_DOUBLE_EQ(ov->length(), 0.0);
}

}  // namespace
}  // namespace erpd::geom
