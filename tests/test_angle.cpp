#include <gtest/gtest.h>

#include <vector>

#include "geom/angle.hpp"

namespace erpd::geom {
namespace {

TEST(Angle, DegRadRoundTrip) {
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad_to_deg(kPi / 2.0), 90.0);
  for (double d : {-720.0, -33.0, 0.0, 45.0, 1000.0}) {
    EXPECT_NEAR(rad_to_deg(deg_to_rad(d)), d, 1e-9);
  }
}

TEST(Angle, WrapIntoHalfOpenInterval) {
  EXPECT_NEAR(wrap_angle(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_angle(kTwoPi), 0.0, 1e-12);
  EXPECT_NEAR(wrap_angle(3.0 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_angle(-kPi / 2.0), -kPi / 2.0, 1e-12);
  for (double a = -20.0; a <= 20.0; a += 0.37) {
    const double w = wrap_angle(a);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
    // Same direction.
    EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9);
    EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9);
  }
}

TEST(Angle, DiffIsSigned) {
  EXPECT_NEAR(angle_diff(0.2, 0.1), 0.1, 1e-12);
  EXPECT_NEAR(angle_diff(0.1, 0.2), -0.1, 1e-12);
  // Across the wrap point: from +175deg to -175deg is +10deg.
  const double a = deg_to_rad(-175.0);
  const double b = deg_to_rad(175.0);
  EXPECT_NEAR(angle_diff(a, b), deg_to_rad(10.0), 1e-9);
}

TEST(Angle, DistSymmetricAndBounded) {
  for (double a = -3.0; a <= 3.0; a += 0.5) {
    for (double b = -3.0; b <= 3.0; b += 0.5) {
      EXPECT_NEAR(angle_dist(a, b), angle_dist(b, a), 1e-12);
      EXPECT_LE(angle_dist(a, b), kPi + 1e-12);
      EXPECT_GE(angle_dist(a, b), 0.0);
    }
  }
}

TEST(Angle, CircularMeanSimple) {
  std::vector<double> v{0.1, -0.1};
  EXPECT_NEAR(circular_mean(v.begin(), v.end()), 0.0, 1e-12);
}

TEST(Angle, CircularMeanAcrossWrap) {
  // Mean of +178deg and -178deg must be ~180deg, not 0.
  std::vector<double> v{deg_to_rad(178.0), deg_to_rad(-178.0)};
  const double m = circular_mean(v.begin(), v.end());
  EXPECT_NEAR(angle_dist(m, kPi), 0.0, 1e-9);
}

TEST(Angle, CircularMeanEmptyIsZero) {
  std::vector<double> v;
  EXPECT_DOUBLE_EQ(circular_mean(v.begin(), v.end()), 0.0);
  EXPECT_DOUBLE_EQ(circular_stddev(v.begin(), v.end()), 0.0);
}

TEST(Angle, CircularStddevTightCluster) {
  std::vector<double> v{0.0, 0.02, -0.02, 0.01, -0.01};
  EXPECT_LT(circular_stddev(v.begin(), v.end()), 0.03);
}

TEST(Angle, CircularStddevSpreadIsLarger) {
  std::vector<double> tight{1.0, 1.01, 0.99};
  std::vector<double> wide{1.0, 2.0, 0.0};
  EXPECT_LT(circular_stddev(tight.begin(), tight.end()),
            circular_stddev(wide.begin(), wide.end()));
}

TEST(Angle, CircularStddevAcrossWrapNotInflated) {
  // Cluster straddling the +-pi seam should have a small deviation.
  std::vector<double> v{deg_to_rad(177.0), deg_to_rad(-177.0),
                        deg_to_rad(179.0), deg_to_rad(-179.0)};
  EXPECT_LT(circular_stddev(v.begin(), v.end()), deg_to_rad(5.0));
}

}  // namespace
}  // namespace erpd::geom
