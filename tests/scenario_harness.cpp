#include "scenario_harness.hpp"

#include <bit>

#include "core/rng.hpp"
#include "edge/metrics_io.hpp"
#include "obs/json.hpp"

namespace erpd::harness {

sim::ScenarioConfig default_intersection(std::uint64_t seed) {
  sim::ScenarioConfig cfg;
  // 28 km/h keeps the scripted conflict inevitable for kSingle but gives the
  // secondary ego/observer crossing enough clearance that a one-frame warning
  // delay under packet loss degrades the margin instead of erasing it.
  cfg.speed_kmh = 28.0;
  cfg.total_vehicles = 12;
  cfg.pedestrians = 3;
  cfg.connected_fraction = 0.5;
  cfg.seed = seed;
  // Coarse sensor keeps CI runtimes sane; scenario geometry is unchanged.
  cfg.world.lidar.channels = 16;
  cfg.world.lidar.azimuth_step_deg = 1.0;
  return cfg;
}

edge::RunnerConfig make_fault_runner(edge::Method method,
                                     const FaultCase& fc) {
  net::WirelessConfig wireless;
  wireless.uplink_mbps = 16.0;
  wireless.downlink_mbps = 32.0;
  edge::RunnerConfig rc = edge::make_runner_config(method, wireless);
  rc.fault = fc.fault;
  rc.edge.staleness_decay = fc.staleness_decay;
  rc.edge.tracker.max_coast_frames = fc.max_coast_frames;
  rc.edge.ingest.enabled = fc.harden_ingest;
  rc.edge.ingest.point_budget_per_frame = fc.ingest_point_budget;
  rc.redundancy.enabled = fc.redundancy;
  rc.service.enabled = fc.service;
  rc.service.decode_merge_budget_us = fc.service_budget_us;
  return rc;
}

CaseResult run_case(edge::Method method, const FaultCase& fc, double duration,
                    std::uint64_t seed) {
  sim::Scenario sc = sim::make_unprotected_left_turn(default_intersection(seed));
  FaultCase resolved = fc;
  if (fc.blackout_ego) {
    resolved.fault.disconnects.push_back(
        {sc.ego, fc.blackout_start, fc.blackout_duration});
  }
  if (fc.byzantine_vehicle) {
    // Mark one connected background car Byzantine. Scripted vehicles (ego,
    // threat, the observer trailing the threat, the follower) are created
    // first and background traffic last, so walking the fleet in reverse
    // finds a background car — the compliant scripted chain that carries the
    // conflict warning stays honest.
    const auto& vehicles = sc.world.vehicles();
    for (auto it = vehicles.rbegin(); it != vehicles.rend(); ++it) {
      if (!it->params().connected || it->params().parked) continue;
      if (it->id() == sc.ego || it->id() == sc.threat ||
          it->id() == sc.ego_follower) {
        continue;
      }
      resolved.fault.byzantine.push_back({it->id(), fc.byzantine_start});
      break;
    }
  }
  edge::RunnerConfig rc = make_fault_runner(method, resolved);
  rc.duration = duration;
  edge::SystemRunner runner(rc);
  return {resolved, runner.run(sc)};
}

// The fault seeds and outage windows below are committed regression anchors:
// each case pins one deterministic loss/jitter schedule that the degradation
// machinery demonstrably survives, and the tolerance bands are calibrated to
// that schedule's outcome with margin. The scripted scenario has a knife-edge
// secondary crossing (ego vs. the observer trailing the threat, ~0.4 m
// clearance), so an arbitrary schedule can still tip it over — that fragility
// is a property of the near-certain-collision script, not of the fault layer.
std::vector<FaultCase> default_fault_matrix() {
  std::vector<FaultCase> matrix;

  {
    FaultCase c;
    c.name = "no-faults";
    c.band = {1.0, 0.95, 3.5};
    matrix.push_back(c);
  }
  {
    FaultCase c;
    c.name = "loss-10";
    c.fault.seed = 0xfa11;
    c.fault.uplink_loss = 0.10;
    c.fault.downlink_loss = 0.05;
    c.staleness_decay = 0.10;
    c.max_coast_frames = 4;
    c.band = {1.0, 0.95, 3.5};
    matrix.push_back(c);
  }
  {
    FaultCase c;
    c.name = "loss-30";
    c.fault.seed = 0xfa31;
    c.fault.uplink_loss = 0.30;
    c.fault.downlink_loss = 0.10;
    c.fault.jitter_mean = 0.004;
    c.fault.downlink_deadline = 0.050;
    c.staleness_decay = 0.15;
    c.max_coast_frames = 6;
    c.band = {1.0, 0.90, 3.0};
    matrix.push_back(c);
  }
  {
    FaultCase c;
    c.name = "ego-blackout";
    c.fault.seed = 0xfa04;
    c.blackout_ego = true;
    c.blackout_start = 1.0;
    c.blackout_duration = 3.0;  // radio back well before the 7 s conflict
    c.staleness_decay = 0.10;
    c.max_coast_frames = 6;
    c.band = {1.0, 0.90, 2.0};
    matrix.push_back(c);
  }
  {
    FaultCase c;
    c.name = "burst-outage";
    c.fault.seed = 0xfa05;
    c.fault.outages.push_back({1.5, 1.5});  // everything dark for 1.5 s
    c.staleness_decay = 0.10;
    c.max_coast_frames = 8;
    c.band = {1.0, 0.90, 3.0};
    matrix.push_back(c);
  }
  {
    FaultCase c;
    c.name = "jitter";
    c.fault.seed = 0xfa06;
    c.fault.jitter_mean = 0.020;
    c.fault.downlink_deadline = 0.060;
    c.band = {1.0, 0.90, 3.0};
    matrix.push_back(c);
  }
  // Ingest-hardening cases (DESIGN.md §12). Appended after the PR 3 rows so
  // existing index-based references keep their meaning.
  {
    // 5% payload corruption across the fleet plus one Byzantine background
    // vehicle spewing teleported poses: the acceptance case for quarantine —
    // the offender must be quarantined while the compliant scripted chain
    // keeps the conflict warning flowing within the PR 3 bands.
    FaultCase c;
    c.name = "corrupt-5-byzantine";
    c.fault.seed = 0xfa07;
    c.fault.uplink_corruption = 0.05;
    c.byzantine_vehicle = true;
    c.byzantine_start = 0.5;
    c.harden_ingest = true;
    c.staleness_decay = 0.10;
    c.max_coast_frames = 4;
    c.band = {1.0, 0.90, 3.0};
    matrix.push_back(c);
  }
  {
    // No channel faults: pure ingest overload. The per-frame point budget
    // sits below the fleet's typical demand, so shedding engages every frame
    // and must degrade bandwidth, not safety.
    FaultCase c;
    c.name = "overload-shed";
    c.fault.seed = 0xfa08;
    c.harden_ingest = true;
    c.ingest_point_budget = 600;
    c.band = {1.0, 0.90, 3.0};
    matrix.push_back(c);
  }
  // Redundancy-aware uplink case (DESIGN.md §16). Appended after the PR 6
  // rows so existing index-based references keep their meaning.
  {
    // Coverage feedback under 30% downlink loss: feedback messages share the
    // downlink fate model, so suppression/delta decisions run on stale or
    // missing coverage claims and the delta-ack path must recover from lost
    // keyframes (fallback keyframing), all without degrading safety.
    FaultCase c;
    c.name = "coverage-feedback-loss";
    c.fault.seed = 0xfa09;
    c.fault.downlink_loss = 0.30;
    c.redundancy = true;
    c.staleness_decay = 0.10;
    c.max_coast_frames = 4;
    c.band = {1.0, 0.90, 3.0};
    matrix.push_back(c);
  }
  // Service-mode case (DESIGN.md §17). Appended after the PR 9 row so
  // existing index-based references keep their meaning.
  {
    // Point-budget overload during a burst outage, with the service pipeline
    // on: the ingest guard sheds to its point budget, deadline admission
    // sheds/defers what still blows the decode+merge budget, and the outage
    // stresses coasting at the same time — the acceptance case for the
    // admission fate partition under combined stress.
    FaultCase c;
    c.name = "overload-burst-outage";
    c.fault.seed = 0xfa0a;
    c.fault.outages.push_back({1.5, 1.5});
    c.harden_ingest = true;
    c.ingest_point_budget = 600;
    c.service = true;
    // Post-guard demand peaks near 600 pts * 90 ns + ~10 objs * 4 us
    // = ~94 us/frame; 100 us keeps shedding/deferral engaged without
    // starving the scripted-conflict tracks (60-80 us crashes the ego).
    c.service_budget_us = 100;
    c.staleness_decay = 0.10;
    c.max_coast_frames = 8;
    c.band = {1.0, 0.90, 3.0};
    matrix.push_back(c);
  }
  return matrix;
}

std::string metrics_json(const std::vector<CaseResult>& results,
                         edge::Method method, std::uint64_t seed) {
  obs::JsonWriter w;
  w.begin_object();
  obs::append_manifest(
      w, edge::make_manifest(make_fault_runner(method, FaultCase{}),
                             "fault-matrix", seed));
  w.key("cases").begin_array();
  for (const CaseResult& r : results) {
    w.begin_object();
    w.kv("case", r.fcase.name);
    // Per-case manifest: the fingerprint covers this case's fault schedule
    // and degradation policy (the resolved fcase includes any ego-blackout
    // window run_case appended).
    obs::append_manifest(
        w, edge::make_manifest(make_fault_runner(method, r.fcase),
                               r.fcase.name, seed));
    w.key("metrics").begin_object();
    edge::append_method_metrics(w, r.metrics);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

bool write_file(const std::string& path, const std::string& content) {
  return obs::write_file(path, content);
}

namespace {

std::uint64_t fold(std::uint64_t h, double v) {
  return core::seed_mix(h, std::bit_cast<std::uint64_t>(v));
}
std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return core::seed_mix(h, v);
}

}  // namespace

std::uint64_t metrics_fingerprint(const edge::MethodMetrics& m) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  h = fold(h, static_cast<std::uint64_t>(m.vehicles_entered));
  h = fold(h, static_cast<std::uint64_t>(m.vehicles_safe));
  h = fold(h, static_cast<std::uint64_t>(m.collisions));
  h = fold(h, static_cast<std::uint64_t>(m.ego_safe ? 1 : 0));
  h = fold(h, static_cast<std::uint64_t>(m.follower_safe ? 1 : 0));
  h = fold(h, m.safe_passage_rate);
  h = fold(h, m.conflict_safe_rate);
  h = fold(h, m.min_key_distance);
  h = fold(h, m.uplink_bytes_per_frame);
  h = fold(h, m.downlink_bytes_per_frame);
  h = fold(h, m.uplink_offered_bytes_per_frame);
  h = fold(h, m.uplink_drop_ratio);
  h = fold(h, m.avg_objects_detected);
  h = fold(h, m.delivered_relevance);
  h = fold(h, static_cast<std::uint64_t>(m.disseminations));
  h = fold(h, m.uplink_loss_ratio);
  h = fold(h, m.downlink_deadline_miss_ratio);
  h = fold(h, static_cast<std::uint64_t>(m.coasted_track_frames));
  h = fold(h, static_cast<std::uint64_t>(m.stale_relevance_frames));
  // Ingest counters are folded only when the admission layer engaged, so
  // clean-run fingerprints stay comparable with snapshots committed before
  // the ingest layer existed (the golden seed-42 hash is one of them).
  if (m.ingest_rejected_crc != 0 || m.ingest_rejected_semantic != 0 ||
      m.ingest_quarantined_vehicles != 0 || m.ingest_shed_uploads != 0) {
    h = fold(h, static_cast<std::uint64_t>(m.ingest_rejected_crc));
    h = fold(h, static_cast<std::uint64_t>(m.ingest_rejected_semantic));
    h = fold(h, static_cast<std::uint64_t>(m.ingest_quarantined_vehicles));
    h = fold(h, static_cast<std::uint64_t>(m.ingest_shed_uploads));
  }
  // Same pattern for the redundancy layer: folded only when it engaged, so
  // pre-redundancy fingerprints (golden seed-42 included) stay valid.
  if (m.coverage_feedback_msgs != 0 ||
      m.uplink_suppressed_bytes_per_frame != 0.0) {
    h = fold(h, m.uplink_suppressed_bytes_per_frame);
    h = fold(h, m.uplink_capped_bytes_per_frame);
    h = fold(h, m.uplink_lost_bytes_per_frame);
    h = fold(h, static_cast<std::uint64_t>(m.coverage_feedback_msgs));
    h = fold(h, static_cast<std::uint64_t>(m.coverage_feedback_lost_msgs));
  }
  // Same pattern for the service layer (DESIGN.md §17): folded only when it
  // engaged, so pre-service fingerprints (golden seed-42 included) stay
  // valid.
  if (m.service_arrived_objects != 0 || m.service_backpressure_uploads != 0) {
    h = fold(h, static_cast<std::uint64_t>(m.service_arrived_objects));
    h = fold(h, static_cast<std::uint64_t>(m.service_admitted_objects));
    h = fold(h, static_cast<std::uint64_t>(m.service_deferred_objects));
    h = fold(h, static_cast<std::uint64_t>(m.service_shed_objects));
    h = fold(h, static_cast<std::uint64_t>(m.service_parked_residual));
    h = fold(h, static_cast<std::uint64_t>(m.service_backpressure_uploads));
    h = fold(h, m.uplink_backpressure_bytes_per_frame);
  }
  return h;
}

std::uint64_t fold_decision(std::uint64_t h, int frame,
                            const net::Dissemination& d) {
  h = fold(h, static_cast<std::uint64_t>(frame));
  h = fold(h, static_cast<std::uint64_t>(d.to));
  h = fold(h, static_cast<std::uint64_t>(d.track_id));
  h = fold(h, static_cast<std::uint64_t>(d.about));
  h = fold(h, static_cast<std::uint64_t>(d.bytes));
  h = fold(h, d.relevance);
  return h;
}

}  // namespace erpd::harness
