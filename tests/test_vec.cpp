#include <gtest/gtest.h>

#include "geom/vec2.hpp"
#include "geom/vec3.hpp"

namespace erpd::geom {
namespace {

TEST(Vec2, ArithmeticBasics) {
  const Vec2 a{3.0, 4.0};
  const Vec2 b{-1.0, 2.0};
  EXPECT_EQ(a + b, Vec2(2.0, 6.0));
  EXPECT_EQ(a - b, Vec2(4.0, 2.0));
  EXPECT_EQ(a * 2.0, Vec2(6.0, 8.0));
  EXPECT_EQ(2.0 * a, Vec2(6.0, 8.0));
  EXPECT_EQ(a / 2.0, Vec2(1.5, 2.0));
  EXPECT_EQ(-a, Vec2(-3.0, -4.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4.0, 6.0));
}

TEST(Vec2, NormAndDistance) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(distance(a, Vec2{0.0, 0.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq(a, Vec2{3.0, 0.0}), 16.0);
}

TEST(Vec2, DotAndCross) {
  const Vec2 x{1.0, 0.0};
  const Vec2 y{0.0, 1.0};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_DOUBLE_EQ(x.cross(y), 1.0);   // y is CCW from x
  EXPECT_DOUBLE_EQ(y.cross(x), -1.0);  // x is CW from y
}

TEST(Vec2, NormalizedUnitLength) {
  const Vec2 v{3.0, -7.0};
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
}

TEST(Vec2, NormalizedZeroVectorIsZero) {
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2, RotationQuarters) {
  const Vec2 x{1.0, 0.0};
  const Vec2 r = x.rotated(std::numbers::pi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_EQ(x.perp(), Vec2(0.0, 1.0));
}

TEST(Vec2, HeadingRoundTrip) {
  for (double h : {-3.0, -1.5, 0.0, 0.7, 2.9}) {
    const Vec2 v = Vec2::from_heading(h);
    EXPECT_NEAR(v.heading(), h, 1e-12) << "heading " << h;
    EXPECT_NEAR(v.norm(), 1.0, 1e-12);
  }
}

TEST(Vec2, Lerp) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, -2.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), Vec2(5.0, -1.0));
}

TEST(Vec3, ArithmeticAndNorm) {
  const Vec3 a{1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(a.norm(), 3.0);
  EXPECT_EQ(a + a, Vec3(2.0, 4.0, 4.0));
  EXPECT_EQ(a - a, Vec3());
  EXPECT_EQ(a * 2.0, Vec3(2.0, 4.0, 4.0));
}

TEST(Vec3, CrossIsOrthogonal) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-2.0, 0.5, 4.0};
  const Vec3 c = a.cross(b);
  EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

TEST(Vec3, XyProjection) {
  const Vec3 p{4.0, -5.0, 9.0};
  EXPECT_EQ(p.xy(), Vec2(4.0, -5.0));
  EXPECT_EQ(Vec3(Vec2{1.0, 2.0}, 3.0), Vec3(1.0, 2.0, 3.0));
}

}  // namespace
}  // namespace erpd::geom
