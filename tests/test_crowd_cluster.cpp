#include <gtest/gtest.h>

#include <random>

#include "geom/angle.hpp"
#include "geom/stats.hpp"
#include "track/crowd_cluster.hpp"

namespace erpd::track {
namespace {

using geom::Vec2;

std::vector<CrowdEntity> group(Vec2 center, double heading, int n,
                               std::mt19937_64& rng, double spread = 0.8,
                               double heading_jitter = 0.03) {
  std::normal_distribution<double> pos(0.0, spread);
  std::normal_distribution<double> ang(0.0, heading_jitter);
  std::vector<CrowdEntity> out;
  for (int i = 0; i < n; ++i) {
    out.push_back({center + Vec2{pos(rng), pos(rng)},
                   geom::wrap_angle(heading + ang(rng)), 1.4});
  }
  return out;
}

void append(std::vector<CrowdEntity>& to, const std::vector<CrowdEntity>& v) {
  to.insert(to.end(), v.begin(), v.end());
}

TEST(CrowdCluster, SingleCoherentGroupStaysTogether) {
  std::mt19937_64 rng(1);
  const auto entities = group({0.0, 0.0}, 0.0, 12, rng);
  const auto res = cluster_crowd(entities);
  EXPECT_EQ(res.clusters.size(), 1u);
  EXPECT_EQ(res.clusters[0].members.size(), 12u);
}

TEST(CrowdCluster, OppositeHeadingsSplit) {
  // Same location, two walking directions: location-only clustering keeps
  // them together; the paper's algorithm must split them (Fig. 4a vs 4b).
  std::mt19937_64 rng(2);
  std::vector<CrowdEntity> entities = group({0.0, 0.0}, 0.0, 10, rng);
  append(entities, group({0.5, 0.5}, geom::kPi / 2.0, 10, rng));
  const auto ours = cluster_crowd(entities);
  EXPECT_GE(ours.clusters.size(), 2u);
  // Every final cluster satisfies the orientation constraint.
  const double gamma = geom::deg_to_rad(5.0);
  for (const auto& c : ours.clusters) {
    std::vector<double> hs;
    for (auto i : c.members) hs.push_back(entities[i].heading);
    EXPECT_LE(geom::circular_stddev(hs.begin(), hs.end()), gamma + 1e-9);
  }
  // DBSCAN baseline lumps them (location only).
  const auto base = cluster_crowd_dbscan(entities);
  EXPECT_EQ(base.clusters.size(), 1u);
}

TEST(CrowdCluster, DistantGroupsSeparate) {
  std::mt19937_64 rng(3);
  std::vector<CrowdEntity> entities = group({0.0, 0.0}, 0.0, 8, rng);
  append(entities, group({20.0, 0.0}, 0.0, 8, rng));
  const auto res = cluster_crowd(entities);
  EXPECT_EQ(res.clusters.size(), 2u);
}

TEST(CrowdCluster, WideGroupSplitsOnBeta) {
  std::mt19937_64 rng(4);
  // One heading but a very elongated blob: location stddev > beta forces a
  // split even though orientations agree.
  std::vector<CrowdEntity> entities;
  for (int i = 0; i < 16; ++i) {
    entities.push_back({{i * 1.2, 0.0}, 0.0, 1.4});
  }
  CrowdClusterConfig cfg;
  cfg.location_eps = 2.0;  // chain-connected
  cfg.beta = 2.0;
  const auto res = cluster_crowd(entities, cfg);
  EXPECT_GE(res.clusters.size(), 2u);
  for (const auto& c : res.clusters) {
    std::vector<Vec2> pts;
    for (auto i : c.members) pts.push_back(entities[i].position);
    EXPECT_LE(geom::location_stddev(pts), cfg.beta + 1e-9);
  }
}

TEST(CrowdCluster, EveryEntityLabeledExactlyOnce) {
  std::mt19937_64 rng(5);
  std::vector<CrowdEntity> entities = group({0.0, 0.0}, 0.3, 9, rng);
  append(entities, group({6.0, 2.0}, -1.2, 7, rng));
  append(entities, group({-4.0, 8.0}, 2.8, 5, rng));
  const auto res = cluster_crowd(entities);
  ASSERT_EQ(res.labels.size(), entities.size());
  std::vector<int> counts(res.clusters.size(), 0);
  for (std::size_t i = 0; i < entities.size(); ++i) {
    ASSERT_GE(res.labels[i], 0);
    ASSERT_LT(static_cast<std::size_t>(res.labels[i]), res.clusters.size());
    ++counts[static_cast<std::size_t>(res.labels[i])];
  }
  std::size_t total = 0;
  for (std::size_t c = 0; c < res.clusters.size(); ++c) {
    EXPECT_EQ(static_cast<int>(res.clusters[c].members.size()), counts[c]);
    total += res.clusters[c].members.size();
  }
  EXPECT_EQ(total, entities.size());
}

TEST(CrowdCluster, RepresentativeIsAMemberNearCentroid) {
  std::mt19937_64 rng(6);
  const auto entities = group({3.0, 3.0}, 0.0, 11, rng);
  const auto res = cluster_crowd(entities);
  ASSERT_EQ(res.clusters.size(), 1u);
  const auto& c = res.clusters[0];
  // Representative is a member...
  EXPECT_NE(std::find(c.members.begin(), c.members.end(), c.representative),
            c.members.end());
  // ...and no member is closer to the centroid.
  const double rep_d = distance(entities[c.representative].position, c.centroid);
  for (auto i : c.members) {
    EXPECT_GE(distance(entities[i].position, c.centroid) + 1e-12, rep_d);
  }
}

TEST(CrowdCluster, EmptyAndSingleton) {
  EXPECT_TRUE(cluster_crowd({}).clusters.empty());
  const std::vector<CrowdEntity> one = {{{1.0, 2.0}, 0.5, 1.4}};
  const auto res = cluster_crowd(one);
  ASSERT_EQ(res.clusters.size(), 1u);
  EXPECT_EQ(res.clusters[0].representative, 0u);
}

TEST(CrowdCluster, TerminatesOnAdversarialSpread) {
  // Entities spread uniformly with random headings: worst case for the
  // split loop; must terminate and satisfy constraints.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(-6.0, 6.0);
  std::uniform_real_distribution<double> h(-geom::kPi, geom::kPi);
  std::vector<CrowdEntity> entities;
  for (int i = 0; i < 60; ++i) {
    entities.push_back({{u(rng), u(rng)}, h(rng), 1.4});
  }
  const auto res = cluster_crowd(entities);
  std::size_t total = 0;
  for (const auto& c : res.clusters) total += c.members.size();
  EXPECT_EQ(total, entities.size());
}

TEST(CrowdCluster, FinalLocationDeviationBeatsDbscan) {
  // The paper's Fig. 4(c) claim, as a property: for mixed-direction crowds,
  // orientation-aware clustering yields smaller final-location deviation.
  std::mt19937_64 rng(8);
  std::vector<CrowdEntity> entities = group({0.0, 0.0}, 0.0, 12, rng);
  append(entities, group({1.0, 0.5}, geom::kPi / 2.0, 12, rng));
  append(entities, group({14.0, 0.0}, geom::kPi, 10, rng));
  const double t = 5.0;
  const double ours =
      final_location_deviation(entities, cluster_crowd(entities), t);
  const double dbscan =
      final_location_deviation(entities, cluster_crowd_dbscan(entities), t);
  EXPECT_LT(ours, dbscan);
}

TEST(CrowdCluster, DeviationGrowsWithTime) {
  std::mt19937_64 rng(9);
  std::vector<CrowdEntity> entities = group({0.0, 0.0}, 0.0, 10, rng, 0.8, 0.2);
  const auto res = cluster_crowd_dbscan(entities);
  EXPECT_LE(final_location_deviation(entities, res, 1.0),
            final_location_deviation(entities, res, 6.0));
}

}  // namespace
}  // namespace erpd::track
