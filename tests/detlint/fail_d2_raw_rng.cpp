// detlint fixture: rule D2 must fire.
//
// Ad-hoc generator construction is how nondeterministic entropy enters the
// pipeline. Sequential generators come from core::seeded_rng; concurrent
// units derive SplitMix64 streams from (seed, entity, frame). Not compiled.
#include <random>

double sample_noise() {
  std::random_device rd;         // D2: hardware entropy
  std::mt19937_64 rng(rd());     // D2: direct construction outside rng.hpp
  std::normal_distribution<double> n(0.0, 1.0);
  return n(rng);
}
