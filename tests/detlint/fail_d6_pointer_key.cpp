// detlint fixture: rule D6 must fire.
//
// A pointer-keyed ordered container iterates in address order, and
// allocation addresses differ run to run — ASLR alone breaks replay. Key on
// a stable id instead. Not compiled.
#include <map>

struct Track {
  int id;
};

double best_score(const std::map<const Track*, double>& scores);  // D6
