// detlint fixture: rule D5 must fire.
//
// Accumulating a float across parallel iterations is doubly wrong: a data
// race, and — even if atomic — a schedule-dependent summation order, and FP
// addition does not associate. Accumulate per chunk and reduce in
// chunk-index order instead. Not compiled.
#include <cstddef>
#include <vector>

namespace core {
template <typename F>
void parallel_for(std::size_t n, std::size_t grain, F&& f);
}

double total_range(const std::vector<double>& ranges) {
  double sum = 0.0;
  core::parallel_for(ranges.size(), 64, [&](std::size_t i) {
    sum += ranges[i];  // D5: schedule-dependent FP accumulation
  });
  return sum;
}
