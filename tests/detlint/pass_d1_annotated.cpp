// detlint fixture: must be clean.
//
// The sanctioned way to keep a hash container in an output path: the fold
// over it provably commutes, and the site says so. This mirrors the
// LidarScan::points_per_agent chunk merge in src/sim/lidar.cpp. Not
// compiled.
#include <cstddef>
#include <unordered_map>
#include <vector>

struct ChunkTally {
  std::unordered_map<int, std::size_t> counts;
};

std::unordered_map<int, std::size_t> merge(
    const std::vector<ChunkTally>& chunks) {
  std::unordered_map<int, std::size_t> out;
  for (const ChunkTally& c : chunks) {  // chunk-index order: deterministic
    // ERPD_ORDER_INSENSITIVE: per-key += of unsigned counts into distinct
    // slots commutes; every visitation order yields the same final map.
    for (const auto& [id, n] : c.counts) {
      out[id] += n;
    }
  }
  return out;
}
