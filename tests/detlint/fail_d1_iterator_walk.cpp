// detlint fixture: rule D1 must fire on explicit iterator walks too, not
// just range-fors. Not compiled.
#include <unordered_set>

int first_key(const std::unordered_set<int>& live) {
  std::unordered_set<int> snapshot = live;
  auto it = snapshot.begin();  // D1: "first" element is hash-layout chance
  return it == snapshot.end() ? -1 : *it;
}
