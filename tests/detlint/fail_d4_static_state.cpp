// detlint fixture: rule D4 must fire.
//
// Hidden mutable statics make results depend on call order across frames
// and on which thread got there first — both invisible to replay. Not
// compiled.

int next_track_id() {
  static int counter = 0;  // D4: call-order-dependent state
  return ++counter;
}

thread_local int tl_scratch = 0;  // D4: thread-identity-dependent state

int bump_scratch() { return ++tl_scratch; }
