// detlint fixture: must be clean.
//
// Line-level suppressions with a stated justification are the escape hatch
// for sites a reviewer has argued through. An empty justification is itself
// a finding (see fail fixtures' sibling rule in tools/detlint.py). Not
// compiled.
#include <random>

std::mt19937_64 make_legacy_stream() {
  // detlint: D2 fixture exemplar — seed is a compile-time constant, stream
  // is bit-identical on every run and platform.
  std::mt19937_64 rng(0x5eed);
  return rng;
}

int frame_counter() {
  // detlint: D4 fixture exemplar — written once before any worker starts,
  // read-only afterwards.
  static int warmup_frames = 3;
  return warmup_frames;
}
