// detlint fixture: rule D3 must fire.
//
// A wall clock read outside src/obs/ and bench/ means wall time can leak
// into simulated outputs — replay of the same seed then diverges. Not
// compiled.
#include <chrono>

double staleness_penalty(double last_update_s) {
  const auto now = std::chrono::steady_clock::now();  // D3
  const double t =
      std::chrono::duration<double>(now.time_since_epoch()).count();
  return t - last_update_s;
}
