// detlint fixture: rule D1 must fire.
//
// Iterating a hash container in an output-influencing path is exactly the
// libc++-vs-libstdc++ golden break detlint exists to prevent: bucket layout
// (and with it visitation order) is an implementation detail that shifts on
// rehash. Not compiled — consumed by tools/detlint.py --self-test.
#include <cstddef>
#include <unordered_map>

struct Registry {
  std::unordered_map<int, double> scores_;

  double ranked_sum() const {
    double acc = 0.0;
    int rank = 1;
    for (const auto& [id, score] : scores_) {  // D1: order-bearing fold
      acc += score / rank;  // rank depends on visitation order
      ++rank;
    }
    return acc;
  }
};
