// detlint fixture: must be clean.
//
// Idiomatic deterministic code: ordered containers for anything iterated,
// keyed lookups against hash containers (lookups are order-free), and
// sorted-snapshot iteration where a hash container must be walked. Not
// compiled.
#include <algorithm>
#include <cstddef>
#include <map>
#include <unordered_map>
#include <vector>

struct Fleet {
  std::map<int, double> relevance_by_vehicle;          // ordered: safe to walk
  std::unordered_map<int, std::size_t> points_by_id;   // lookups only

  double total_relevance() const {
    double sum = 0.0;
    for (const auto& [vid, rel] : relevance_by_vehicle) sum += rel;
    return sum;
  }

  bool sees(int id) const {
    const auto it = points_by_id.find(id);
    return it != points_by_id.end() && it->second >= 3;
  }

  std::vector<int> visible_ids() const {
    std::vector<int> ids;
    ids.reserve(points_by_id.size());
    // ERPD_ORDER_INSENSITIVE: keys are collected then fully sorted; the
    // visitation order cannot survive into the result.
    for (const auto& [id, n] : points_by_id) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
  }
};
