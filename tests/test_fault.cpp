// Unit tests for the deterministic fault-injection layer (net/fault.hpp).

#include <gtest/gtest.h>

#include "core/check.hpp"
#include "net/fault.hpp"

namespace erpd::net {
namespace {

TEST(FaultConfig, DefaultIsInactive) {
  const FaultConfig cfg;
  EXPECT_FALSE(cfg.active());
  EXPECT_NO_THROW(cfg.validate());
  // An inactive channel never drops, jitters, or disconnects anything.
  const LossyChannel ch(cfg);
  for (int frame = 0; frame < 50; ++frame) {
    EXPECT_FALSE(ch.uplink_lost(3, frame, 0.1 * frame));
    EXPECT_FALSE(ch.downlink_lost(3, 7, frame, 0.1 * frame));
    EXPECT_FALSE(ch.vehicle_offline(3, 0.1 * frame));
    EXPECT_EQ(ch.uplink_jitter(frame), 0.0);
    EXPECT_EQ(ch.downlink_jitter(3, 7, frame), 0.0);
  }
}

TEST(FaultConfig, ActiveDetectsEveryMechanism) {
  FaultConfig cfg;
  cfg.uplink_loss = 0.1;
  EXPECT_TRUE(cfg.active());
  cfg = {};
  cfg.downlink_loss = 0.1;
  EXPECT_TRUE(cfg.active());
  cfg = {};
  cfg.jitter_mean = 0.01;
  EXPECT_TRUE(cfg.active());
  cfg = {};
  cfg.downlink_deadline = 0.1;
  EXPECT_TRUE(cfg.active());
  cfg = {};
  cfg.outages.push_back({1.0, 1.0});
  EXPECT_TRUE(cfg.active());
  cfg = {};
  cfg.disconnects.push_back({2, 1.0, 1.0});
  EXPECT_TRUE(cfg.active());
  cfg = {};
  cfg.random_disconnect_rate = 0.2;
  EXPECT_TRUE(cfg.active());
}

TEST(FaultConfig, ValidateRejectsBadValues) {
  FaultConfig cfg;
  cfg.uplink_loss = 1.5;
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  cfg = {};
  cfg.downlink_loss = -0.1;
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  cfg = {};
  cfg.jitter_mean = -1.0;
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  cfg = {};
  cfg.disconnect_epoch = 0.0;
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  cfg = {};
  cfg.outages.push_back({1.0, -0.5});
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  cfg = {};
  cfg.outages.push_back({-1.0, 0.5});
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  cfg = {};
  cfg.disconnects.push_back({sim::kInvalidAgent, 0.0, 1.0});
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  cfg = {};
  cfg.disconnects.push_back({3, -2.0, 1.0});
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
}

TEST(LossyChannel, DropScheduleIsAPureFunctionOfTheSeed) {
  FaultConfig cfg;
  cfg.seed = 99;
  cfg.uplink_loss = 0.3;
  cfg.downlink_loss = 0.2;
  cfg.jitter_mean = 0.01;
  const LossyChannel a(cfg);
  const LossyChannel b(cfg);
  // Querying in different orders must not matter: every decision depends
  // only on (seed, stream, entity, frame).
  for (int frame = 99; frame >= 0; --frame) {
    for (sim::AgentId v : {1, 5, 17}) {
      EXPECT_EQ(a.uplink_lost(v, frame, 0.0), b.uplink_lost(v, frame, 0.0));
      EXPECT_EQ(a.downlink_lost(v, 3, frame, 0.0),
                b.downlink_lost(v, 3, frame, 0.0));
      EXPECT_EQ(a.downlink_jitter(v, 3, frame), b.downlink_jitter(v, 3, frame));
    }
    EXPECT_EQ(a.uplink_jitter(frame), b.uplink_jitter(frame));
  }
}

TEST(LossyChannel, DifferentSeedsGiveDifferentSchedules) {
  FaultConfig cfg;
  cfg.uplink_loss = 0.5;
  cfg.seed = 1;
  const LossyChannel a(cfg);
  cfg.seed = 2;
  const LossyChannel b(cfg);
  int differing = 0;
  for (int frame = 0; frame < 200; ++frame) {
    if (a.uplink_lost(4, frame, 0.0) != b.uplink_lost(4, frame, 0.0)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(LossyChannel, BernoulliRateMatchesNominal) {
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.uplink_loss = 0.3;
  const LossyChannel ch(cfg);
  int lost = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (ch.uplink_lost(i % 16, i / 16, 0.0)) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.30, 0.02);
}

TEST(LossyChannel, OutageDropsEverythingInsideTheWindow) {
  FaultConfig cfg;
  cfg.outages.push_back({2.0, 1.0});
  const LossyChannel ch(cfg);
  EXPECT_FALSE(ch.in_outage(1.99));
  EXPECT_TRUE(ch.in_outage(2.0));
  EXPECT_TRUE(ch.in_outage(2.99));
  EXPECT_FALSE(ch.in_outage(3.0));
  // Inside the window every message is lost regardless of loss rates.
  EXPECT_TRUE(ch.uplink_lost(1, 25, 2.5));
  EXPECT_TRUE(ch.downlink_lost(1, 9, 25, 2.5));
  EXPECT_FALSE(ch.uplink_lost(1, 40, 4.0));
}

TEST(LossyChannel, ScheduledDisconnectIsPerVehicle) {
  FaultConfig cfg;
  cfg.disconnects.push_back({5, 1.0, 2.0});
  const LossyChannel ch(cfg);
  EXPECT_FALSE(ch.vehicle_offline(5, 0.9));
  EXPECT_TRUE(ch.vehicle_offline(5, 1.0));
  EXPECT_TRUE(ch.vehicle_offline(5, 2.9));
  EXPECT_FALSE(ch.vehicle_offline(5, 3.0));
  EXPECT_FALSE(ch.vehicle_offline(6, 2.0));  // other vehicles unaffected
  // An offline recipient cannot receive disseminations.
  EXPECT_TRUE(ch.downlink_lost(5, 2, 15, 1.5));
  EXPECT_FALSE(ch.downlink_lost(6, 2, 15, 1.5));
}

TEST(LossyChannel, RandomDisconnectIsStablePerEpoch) {
  FaultConfig cfg;
  cfg.seed = 13;
  cfg.random_disconnect_rate = 0.4;
  cfg.disconnect_epoch = 2.0;
  const LossyChannel ch(cfg);
  int off_epochs = 0;
  for (int e = 0; e < 50; ++e) {
    const double t0 = 2.0 * e + 0.01;
    const bool off = ch.vehicle_offline(3, t0);
    // Constant within the epoch.
    EXPECT_EQ(off, ch.vehicle_offline(3, t0 + 1.0));
    EXPECT_EQ(off, ch.vehicle_offline(3, t0 + 1.98));
    if (off) ++off_epochs;
  }
  EXPECT_GT(off_epochs, 5);
  EXPECT_LT(off_epochs, 40);
}

TEST(FaultConfig, CorruptionAndByzantineCountAsActive) {
  FaultConfig cfg;
  cfg.uplink_corruption = 0.05;
  EXPECT_TRUE(cfg.active());
  cfg = {};
  cfg.downlink_corruption = 0.05;
  EXPECT_TRUE(cfg.active());
  cfg = {};
  cfg.byzantine.push_back({4, 1.0});
  EXPECT_TRUE(cfg.active());
}

TEST(FaultConfig, ValidateRejectsBadCorruptionValues) {
  FaultConfig cfg;
  cfg.uplink_corruption = 1.5;
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  cfg = {};
  cfg.downlink_corruption = -0.1;
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  cfg = {};
  cfg.byzantine.push_back({sim::kInvalidAgent, 0.0});
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  cfg = {};
  cfg.byzantine.push_back({3, -1.0});
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
}

TEST(LossyChannel, InactiveChannelNeverCorrupts) {
  const LossyChannel ch{FaultConfig{}};
  EXPECT_FALSE(ch.corruption_active());
  EXPECT_FALSE(ch.has_byzantine());
  for (int frame = 0; frame < 50; ++frame) {
    EXPECT_EQ(ch.uplink_corruption(3, frame), CorruptionKind::kNone);
    EXPECT_FALSE(ch.downlink_corrupted(3, 7, frame));
    EXPECT_FALSE(ch.is_byzantine(3, 0.1 * frame));
  }
}

TEST(LossyChannel, CorruptionScheduleIsAPureFunctionOfTheSeed) {
  FaultConfig cfg;
  cfg.seed = 77;
  cfg.uplink_corruption = 0.3;
  cfg.downlink_corruption = 0.2;
  const LossyChannel a(cfg);
  const LossyChannel b(cfg);
  // Query order must not matter: each decision depends only on
  // (seed, stream, entity, frame).
  for (int frame = 99; frame >= 0; --frame) {
    for (sim::AgentId v : {1, 5, 17}) {
      EXPECT_EQ(a.uplink_corruption(v, frame), b.uplink_corruption(v, frame));
      EXPECT_EQ(a.downlink_corrupted(v, 3, frame),
                b.downlink_corrupted(v, 3, frame));
      EXPECT_EQ(a.corruption_word(v, frame, 2), b.corruption_word(v, frame, 2));
    }
  }
}

TEST(LossyChannel, CorruptionRateMatchesNominalAndCoversEveryKind) {
  FaultConfig cfg;
  cfg.seed = 31;
  cfg.uplink_corruption = 0.25;
  const LossyChannel ch(cfg);
  int corrupted = 0;
  int kind_seen[5] = {};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const CorruptionKind k = ch.uplink_corruption(i % 16, i / 16);
    ++kind_seen[static_cast<int>(k)];
    if (k != CorruptionKind::kNone) ++corrupted;
  }
  EXPECT_NEAR(static_cast<double>(corrupted) / n, 0.25, 0.02);
  // All four corruption kinds appear; kNone only for uncorrupted draws.
  for (int k = 1; k < 5; ++k) {
    EXPECT_GT(kind_seen[k], 0) << to_string(static_cast<CorruptionKind>(k));
  }
}

TEST(LossyChannel, CorruptionStreamIsIndependentOfTheLossStream) {
  // Same seed, loss-only vs. loss+corruption: the drop schedule must be
  // byte-identical, so enabling corruption cannot perturb which messages
  // are lost (separate stream tags).
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.uplink_loss = 0.3;
  const LossyChannel plain(cfg);
  cfg.uplink_corruption = 0.3;
  const LossyChannel mixed(cfg);
  for (int frame = 0; frame < 200; ++frame) {
    EXPECT_EQ(plain.uplink_lost(4, frame, 0.0),
              mixed.uplink_lost(4, frame, 0.0));
  }
}

TEST(LossyChannel, ByzantineWindowStartsAtConfiguredTime) {
  FaultConfig cfg;
  cfg.byzantine.push_back({9, 2.0});
  const LossyChannel ch(cfg);
  EXPECT_TRUE(ch.has_byzantine());
  EXPECT_FALSE(ch.is_byzantine(9, 1.99));
  EXPECT_TRUE(ch.is_byzantine(9, 2.0));
  EXPECT_TRUE(ch.is_byzantine(9, 100.0));  // Byzantine forever once turned
  EXPECT_FALSE(ch.is_byzantine(8, 5.0));   // other vehicles unaffected
}

TEST(LossyChannel, JitterIsNonNegativeWithRoughlyTheConfiguredMean) {
  FaultConfig cfg;
  cfg.seed = 21;
  cfg.jitter_mean = 0.02;
  const LossyChannel ch(cfg);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double j = ch.downlink_jitter(i % 8, i % 5, i);
    ASSERT_GE(j, 0.0);
    sum += j;
  }
  EXPECT_NEAR(sum / n, 0.02, 0.002);
}

}  // namespace
}  // namespace erpd::net
