#include <gtest/gtest.h>

#include <limits>

#include "core/check.hpp"
#include "edge/vehicle_client.hpp"

namespace erpd::edge {
namespace {

using sim::AgentId;
using sim::Arm;
using sim::Maneuver;

struct Rig {
  sim::World world;
  AgentId ego;
  AgentId mover;

  explicit Rig(UploadPolicy policy_unused = UploadPolicy::kOursMovingObjects)
      : world(sim::RoadNetwork{sim::RoadConfig{}}, make_world_config()) {
    (void)policy_unused;
    const int ego_route =
        *world.network().find_route(Arm::kSouth, 1, Maneuver::kStraight);
    sim::VehicleParams ep;
    ep.connected = true;
    ep.idm.desired_speed = 0.0;  // ego parked observer
    ego = world.add_vehicle(ep, ego_route, 30.0, 0.0);

    // A mover crossing ahead of the ego, well within sensor range.
    const int mover_route =
        *world.network().find_route(Arm::kSouth, 0, Maneuver::kStraight);
    sim::VehicleParams mp;
    mp.idm.desired_speed = 8.0;
    mover = world.add_vehicle(mp, mover_route, 45.0, 8.0);
  }

  static sim::WorldConfig make_world_config() {
    sim::WorldConfig wc;
    wc.lidar.channels = 16;
    wc.lidar.azimuth_step_deg = 1.0;
    wc.lidar.noise_sigma = 0.0;
    return wc;
  }
};

TEST(VehicleClient, OursUploadsOnlyMovingObjects) {
  Rig rig;
  ClientConfig cfg;
  VehicleClient client(rig.ego, cfg);
  ClientFrameStats stats{};
  net::UploadFrame last;
  for (int f = 0; f < 8; ++f) {
    last = client.make_upload(rig.world, nullptr, 0, &stats);
    rig.world.step();
  }
  ASSERT_FALSE(last.objects.empty()) << "moving vehicle never uploaded";
  EXPECT_TRUE(last.objects[0].object_granular);
  EXPECT_EQ(last.objects[0].truth_id, rig.mover);
  EXPECT_GT(last.objects[0].velocity_world.norm(), 4.0);
  // Upload is dramatically smaller than the raw frame.
  EXPECT_LT(last.total_bytes() * 10, stats.raw_points * pc::kRawBytesPerPoint);
  EXPECT_GT(stats.processing_seconds, 0.0);
}

TEST(VehicleClient, UploadCarriesEgoPose) {
  Rig rig;
  VehicleClient client(rig.ego, {});
  const net::UploadFrame f = client.make_upload(rig.world, nullptr, 0);
  const sim::Vehicle* ego = rig.world.find_vehicle(rig.ego);
  EXPECT_NEAR(f.pose.position.x, ego->position(rig.world.network()).x, 1e-9);
  EXPECT_NEAR(f.pose.yaw, ego->heading(rig.world.network()), 1e-9);
  EXPECT_EQ(f.vehicle, rig.ego);
}

TEST(VehicleClient, EmpUploadsVoronoiCellBlob) {
  Rig rig;
  ClientConfig cfg;
  cfg.policy = UploadPolicy::kEmpVoronoi;
  VehicleClient client(rig.ego, cfg);

  // Two sites: the ego and a phantom far north. Points outside the ego's
  // cell must be cropped out.
  const geom::Vec2 ego_pos =
      rig.world.find_vehicle(rig.ego)->position(rig.world.network());
  const geom::VoronoiPartition voronoi({ego_pos, ego_pos + geom::Vec2{0, 60}});
  const net::UploadFrame f = client.make_upload(rig.world, &voronoi, 0);
  ASSERT_EQ(f.objects.size(), 1u);
  EXPECT_FALSE(f.objects[0].object_granular);
  EXPECT_GT(f.objects[0].point_count, 0u);
  for (const geom::Vec3& p : f.objects[0].cloud_world.points()) {
    EXPECT_TRUE(voronoi.in_cell(p.xy(), 0));
  }
}

TEST(VehicleClient, EmpKeepsStaticStructure) {
  // EMP does not remove static objects, so its blob is much bigger than the
  // moving-objects upload.
  Rig rig;
  ClientConfig ours_cfg;
  ClientConfig emp_cfg;
  emp_cfg.policy = UploadPolicy::kEmpVoronoi;
  VehicleClient ours(rig.ego, ours_cfg);
  VehicleClient emp(rig.ego, emp_cfg);
  const geom::Vec2 ego_pos =
      rig.world.find_vehicle(rig.ego)->position(rig.world.network());
  const geom::VoronoiPartition voronoi({ego_pos});
  net::UploadFrame f_ours;
  net::UploadFrame f_emp;
  for (int i = 0; i < 5; ++i) {
    f_ours = ours.make_upload(rig.world, nullptr, 0);
    f_emp = emp.make_upload(rig.world, &voronoi, 0);
    rig.world.step();
  }
  EXPECT_GT(f_emp.total_bytes(), f_ours.total_bytes());
}

TEST(VehicleClient, UnlimitedUploadsRawFrame) {
  Rig rig;
  ClientConfig cfg;
  cfg.policy = UploadPolicy::kUnlimitedRaw;
  VehicleClient client(rig.ego, cfg);
  ClientFrameStats stats{};
  const net::UploadFrame f = client.make_upload(rig.world, nullptr, 0, &stats);
  ASSERT_EQ(f.objects.size(), 1u);
  EXPECT_EQ(f.objects[0].point_count, stats.raw_points);
  EXPECT_EQ(f.objects[0].bytes, stats.raw_points * pc::kRawBytesPerPoint);
  // Raw uploads include the ground returns.
  EXPECT_GT(stats.raw_points, 1000u);
}

TEST(VehicleClient, MissingVehicleYieldsEmptyFrame) {
  Rig rig;
  VehicleClient client(9999, {});
  const net::UploadFrame f = client.make_upload(rig.world, nullptr, 0);
  EXPECT_TRUE(f.objects.empty());
}

TEST(VehicleClient, RefusesNonFinitePose) {
  // A NaN SLAM pose must die at the sender (contract check), not get shipped
  // to the edge — edge-side admission is the defense against *other* senders.
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  geom::Pose pose;
  EXPECT_NO_THROW(VehicleClient::require_finite_pose(pose));
  pose.position.x = kNan;
  EXPECT_THROW(VehicleClient::require_finite_pose(pose),
               erpd::ContractViolation);
  pose = {};
  pose.yaw = std::numeric_limits<double>::infinity();
  EXPECT_THROW(VehicleClient::require_finite_pose(pose),
               erpd::ContractViolation);
  pose = {};
  pose.roll = kNan;
  EXPECT_THROW(VehicleClient::require_finite_pose(pose),
               erpd::ContractViolation);
}

}  // namespace
}  // namespace erpd::edge
