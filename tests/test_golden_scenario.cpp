// Golden end-to-end regression test (ctest label: fault).
//
// Runs the default intersection scenario for 100 ticks (10 s at 10 Hz) at
// seed 42 with the Ours method and no faults, and asserts that the exact
// per-frame dissemination decision list and the simulated-metrics
// fingerprint match the committed snapshot in
// tests/golden/intersection_seed42.golden.
//
// When behavior changes intentionally, regenerate the snapshot with
//   ./test_golden_scenario --update-golden
// (or ERPD_UPDATE_GOLDEN=1) and commit the diff — the point is that such a
// change is visible in review, never silent.
//
// Relevance values are serialized as hexfloats, so the comparison is
// bit-exact, not round-tripped through decimal.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario_harness.hpp"

namespace erpd {
namespace {

bool g_update_golden = false;

std::string golden_path() {
  return std::string(ERPD_TESTS_DIR) + "/golden/intersection_seed42.golden";
}

/// Run the pinned scenario and serialize decisions + fingerprint.
std::string render_snapshot() {
  sim::Scenario sc =
      sim::make_unprotected_left_turn(harness::default_intersection(42));
  harness::FaultCase clean;  // all-zero FaultConfig, no degradation policy
  edge::RunnerConfig rc = harness::make_fault_runner(edge::Method::kOurs, clean);
  rc.duration = 10.0;  // 100 ticks at the default 0.1 s frame interval

  std::ostringstream out;
  std::uint64_t decision_hash = 0x6f1d;
  rc.on_decisions = [&](int frame, const std::vector<net::Dissemination>& ds) {
    for (const net::Dissemination& d : ds) {
      char line[160];
      std::snprintf(line, sizeof line, "decision %d to=%d track=%d about=%d "
                    "bytes=%zu rel=%a\n",
                    frame, d.to, d.track_id, d.about, d.bytes, d.relevance);
      out << line;
      decision_hash = harness::fold_decision(decision_hash, frame, d);
    }
  };

  edge::SystemRunner runner(rc);
  const edge::MethodMetrics m = runner.run(sc);

  char tail[192];
  std::snprintf(tail, sizeof tail,
                "decisions_fingerprint 0x%016llx\n"
                "metrics_fingerprint 0x%016llx\n",
                static_cast<unsigned long long>(decision_hash),
                static_cast<unsigned long long>(
                    harness::metrics_fingerprint(m)));
  out << tail;
  return out.str();
}

TEST(GoldenScenario, MatchesCommittedSnapshot) {
  const std::string got = render_snapshot();

  if (g_update_golden || std::getenv("ERPD_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(harness::write_file(golden_path(), got))
        << "cannot write " << golden_path();
    GTEST_SKIP() << "golden updated: " << golden_path();
  }

  std::ifstream f(golden_path());
  ASSERT_TRUE(f) << "missing golden snapshot " << golden_path()
                 << " — run with --update-golden to create it";
  std::stringstream want;
  want << f.rdbuf();

  // Equality over the whole snapshot; on mismatch print the first divergent
  // line so the diff is actionable without digging through hexfloats.
  if (got != want.str()) {
    std::istringstream a(want.str());
    std::istringstream b(got);
    std::string la;
    std::string lb;
    int line = 0;
    while (true) {
      ++line;
      const bool ha = static_cast<bool>(std::getline(a, la));
      const bool hb = static_cast<bool>(std::getline(b, lb));
      if (!ha && !hb) break;
      if (la != lb || ha != hb) {
        FAIL() << "golden mismatch at line " << line << "\n  committed: "
               << (ha ? la : "<eof>") << "\n  got:       "
               << (hb ? lb : "<eof>")
               << "\nIf intentional, regenerate with --update-golden.";
      }
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace erpd

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      erpd::g_update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}
