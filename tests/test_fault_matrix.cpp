// Scenario regression suite over the fault matrix (ctest label: fault).
//
// Each committed fault case (no faults / 10% / 30% loss / ego blackout /
// burst outage / jitter) runs the closed loop end to end and must
//   (a) complete without ContractViolation,
//   (b) keep the recorded safety metrics inside its committed tolerance
//       band, and
//   (c) actually exercise the degradation machinery (the new MethodMetrics
//       fields are live, not decorative).
// When ERPD_SCENARIO_JSON is set, the per-case metrics are written there as
// a JSON artifact for CI.

#include <gtest/gtest.h>

#include <cstdlib>

#include "scenario_harness.hpp"

namespace erpd {
namespace {

class FaultMatrix : public ::testing::Test {
 protected:
  // The matrix is expensive; run it once and share across assertions.
  static void SetUpTestSuite() {
    results_ = new std::vector<harness::CaseResult>();
    for (const harness::FaultCase& fc : harness::default_fault_matrix()) {
      results_->push_back(harness::run_case(edge::Method::kOurs, fc));
    }
  }
  static void TearDownTestSuite() {
    if (const char* path = std::getenv("ERPD_SCENARIO_JSON")) {
      harness::write_file(
          path, harness::metrics_json(*results_, edge::Method::kOurs, 42));
    }
    delete results_;
    results_ = nullptr;
  }

  static const harness::CaseResult& find(const std::string& name) {
    for (const harness::CaseResult& r : *results_) {
      if (r.fcase.name == name) return r;
    }
    ADD_FAILURE() << "no fault case named " << name;
    static harness::CaseResult dummy;
    return dummy;
  }

  static std::vector<harness::CaseResult>* results_;
};

std::vector<harness::CaseResult>* FaultMatrix::results_ = nullptr;

TEST_F(FaultMatrix, AllCasesStayInsideToleranceBands) {
  for (const harness::CaseResult& r : *results_) {
    const edge::MethodMetrics& m = r.metrics;
    const harness::ToleranceBand& band = r.fcase.band;
    EXPECT_GE(m.conflict_safe_rate, band.min_conflict_safe_rate)
        << r.fcase.name;
    EXPECT_GE(m.safe_passage_rate, band.min_safe_passage_rate)
        << r.fcase.name;
    EXPECT_GE(m.min_key_distance, band.min_key_distance) << r.fcase.name;
    EXPECT_TRUE(m.ego_safe) << r.fcase.name;
  }
}

TEST_F(FaultMatrix, NoFaultCaseReportsZeroFaultMetrics) {
  const edge::MethodMetrics& m = find("no-faults").metrics;
  EXPECT_EQ(m.uplink_loss_ratio, 0.0);
  EXPECT_EQ(m.downlink_deadline_miss_ratio, 0.0);
  EXPECT_GT(m.disseminations, 0);
}

TEST_F(FaultMatrix, LossCasesExerciseDegradation) {
  for (const char* name : {"loss-10", "loss-30"}) {
    const edge::MethodMetrics& m = find(name).metrics;
    EXPECT_GT(m.uplink_loss_ratio, 0.0) << name;
    EXPECT_GT(m.coasted_track_frames, 0) << name;
    EXPECT_GT(m.stale_relevance_frames, 0) << name;
  }
  // 30% nominal Bernoulli loss must land near 30% measured.
  const edge::MethodMetrics& m30 = find("loss-30").metrics;
  EXPECT_NEAR(m30.uplink_loss_ratio, 0.30, 0.10);
  EXPECT_GT(m30.downlink_deadline_miss_ratio, 0.0);
}

TEST_F(FaultMatrix, LossStillBeatsNoSharing) {
  // Even at 30% uplink loss the closed loop must warn the ego; without
  // sharing the scripted conflict always ends in a collision.
  harness::FaultCase single = harness::default_fault_matrix()[2];
  const harness::CaseResult single_run =
      harness::run_case(edge::Method::kSingle, single);
  const edge::MethodMetrics& ours30 = find("loss-30").metrics;
  EXPECT_FALSE(single_run.metrics.ego_safe);
  EXPECT_TRUE(ours30.ego_safe);
  EXPECT_GT(ours30.min_key_distance, single_run.metrics.min_key_distance);
}

TEST_F(FaultMatrix, BlackoutDropsUploadsDuringWindow) {
  const harness::CaseResult& r = find("ego-blackout");
  // The ego stops uploading for 3 s out of 14 s, so offered upload frames
  // shrink relative to the no-fault case.
  const edge::MethodMetrics& clean = find("no-faults").metrics;
  EXPECT_LT(r.metrics.uplink_offered_bytes_per_frame,
            clean.uplink_offered_bytes_per_frame);
  EXPECT_TRUE(r.metrics.ego_safe);
}

TEST_F(FaultMatrix, JitterProducesDeadlineMisses) {
  const edge::MethodMetrics& m = find("jitter").metrics;
  EXPECT_GT(m.downlink_deadline_miss_ratio, 0.0);
  EXPECT_LT(m.downlink_deadline_miss_ratio, 1.0);
}

TEST_F(FaultMatrix, CorruptionCaseQuarantinesTheByzantineVehicle) {
  const harness::CaseResult& r = find("corrupt-5-byzantine");
  // The case resolved exactly one Byzantine background vehicle.
  ASSERT_EQ(r.fcase.fault.byzantine.size(), 1u);
  const edge::MethodMetrics& m = r.metrics;
  // Corrupted wire payloads are caught by the CRC/structure check, the
  // Byzantine teleports by the semantic check, and the repeat offender ends
  // up quarantined — the PR acceptance criterion.
  EXPECT_GT(m.ingest_rejected_crc, 0);
  EXPECT_GT(m.ingest_rejected_semantic, 0);
  EXPECT_GT(m.ingest_quarantined_vehicles, 0);
  // Meanwhile the compliant scripted chain keeps the warning flowing: the
  // band check above already enforces ego_safe and the key-distance floor.
  EXPECT_TRUE(m.ego_safe);
}

TEST_F(FaultMatrix, CoverageFeedbackLossCaseExercisesRedundancy) {
  const edge::MethodMetrics& m = find("coverage-feedback-loss").metrics;
  // The redundancy layer actually engaged: the edge emitted feedback, the
  // 30% lossy downlink dropped some of it, and suppression/delta encoding
  // saved uplink bytes despite the stale coverage claims.
  EXPECT_GT(m.coverage_feedback_msgs, 0);
  EXPECT_GT(m.coverage_feedback_lost_msgs, 0);
  EXPECT_LT(m.coverage_feedback_lost_msgs, m.coverage_feedback_msgs);
  EXPECT_GT(m.uplink_suppressed_bytes_per_frame, 0.0);
  // Redundancy reduces demand relative to the clean run — and must never
  // increase it (suppression and deltas only remove bytes).
  EXPECT_LT(m.uplink_offered_bytes_per_frame,
            find("no-faults").metrics.uplink_offered_bytes_per_frame);
  // The byte fate partition holds in aggregate: per-frame averages of lost +
  // capped never exceed offered.
  EXPECT_LE(m.uplink_lost_bytes_per_frame + m.uplink_capped_bytes_per_frame,
            m.uplink_offered_bytes_per_frame + 1e-9);
  // Safety floor enforced by the band check above; the delta path must not
  // starve detection either.
  EXPECT_GT(m.avg_objects_detected, 0.0);
  EXPECT_TRUE(m.ego_safe);
}

TEST_F(FaultMatrix, OverloadCaseShedsWithoutLosingSafety) {
  const edge::MethodMetrics& m = find("overload-shed").metrics;
  // The 600-point budget sits far below fleet demand, so shedding engages
  // heavily — but it sheds the smallest clouds first, so tracking of the
  // scripted conflict survives (band check enforces the safety floor).
  EXPECT_GT(m.ingest_shed_uploads, 0);
  // Pure overload: nobody misbehaves, so no quarantines or rejections.
  EXPECT_EQ(m.ingest_rejected_crc, 0);
  EXPECT_EQ(m.ingest_rejected_semantic, 0);
  EXPECT_EQ(m.ingest_quarantined_vehicles, 0);
  // Shedding reduces admitted objects relative to the clean run.
  EXPECT_LT(m.avg_objects_detected,
            find("no-faults").metrics.avg_objects_detected);
}

TEST_F(FaultMatrix, OverloadBurstOutageHoldsTheServiceFatePartition) {
  const edge::MethodMetrics& m = find("overload-burst-outage").metrics;
  // Combined stress actually engaged on all three axes: the outage lost
  // upload frames, the point budget shed objects at the guard, and the
  // decode+merge deadline shed or deferred work at admission.
  EXPECT_GT(m.uplink_loss_ratio, 0.0);
  EXPECT_GT(m.ingest_shed_uploads, 0);
  EXPECT_GT(m.service_arrived_objects, 0);
  EXPECT_GT(m.service_deferred_objects + m.service_shed_objects, 0);
  // Exactly-once object fates: everything that entered deadline admission
  // was admitted, shed, or is still parked at run end. (The per-frame
  // partition is ENSURE'd inside the controller; this pins the run-level
  // collapse of the same identity.)
  EXPECT_EQ(m.service_arrived_objects,
            m.service_admitted_objects + m.service_shed_objects +
                m.service_parked_residual);
  // Byte fates stay a partition too, with the backpressure term included.
  EXPECT_LE(m.uplink_lost_bytes_per_frame + m.uplink_capped_bytes_per_frame +
                m.uplink_backpressure_bytes_per_frame,
            m.uplink_offered_bytes_per_frame + 1e-9);
  // Degradation stays graceful: detection thinner than the clean run but
  // alive, and the band check above enforces the PR 3 safety floors.
  EXPECT_GT(m.avg_objects_detected, 0.0);
  EXPECT_LT(m.avg_objects_detected,
            find("no-faults").metrics.avg_objects_detected);
  EXPECT_TRUE(m.ego_safe);
}

}  // namespace
}  // namespace erpd
