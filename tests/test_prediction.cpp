#include <gtest/gtest.h>

#include "geom/angle.hpp"
#include "track/prediction.hpp"

namespace erpd::track {
namespace {

using geom::Vec2;
using sim::Arm;
using sim::Maneuver;

class PredictionTest : public ::testing::Test {
 protected:
  sim::RoadNetwork net_{sim::RoadConfig{}};
  TrajectoryPredictor predictor_{net_};
};

TEST_F(PredictionTest, MatchRouteOnApproachLane) {
  const sim::Route& r =
      net_.route(*net_.find_route(Arm::kSouth, 1, Maneuver::kStraight));
  const Vec2 pos = r.path.point_at(30.0);
  const double heading = r.path.heading_at(30.0);
  const auto m = match_route(net_, pos, heading);
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(m->s, 30.0, 0.5);
  EXPECT_LT(m->lateral, 0.2);
}

TEST_F(PredictionTest, NoMatchWhenHeadingOpposes) {
  const sim::Route& r =
      net_.route(*net_.find_route(Arm::kSouth, 1, Maneuver::kStraight));
  const Vec2 pos = r.path.point_at(30.0);
  const double heading = r.path.heading_at(30.0) + geom::kPi;  // wrong way
  // The opposing lane is a different route; the matched route (if any) must
  // head the same way as the query.
  const auto m = match_route(net_, pos, heading);
  if (m) {
    const double h = net_.route(m->route_id).path.heading_at(m->s);
    EXPECT_LT(geom::angle_dist(h, heading), geom::deg_to_rad(40.0));
  }
}

TEST_F(PredictionTest, NoMatchOffRoad) {
  EXPECT_FALSE(match_route(net_, {300.0, 300.0}, 0.0).has_value());
}

TEST_F(PredictionTest, CommittedTurnPredictedThroughTheTurn) {
  // A vehicle already inside the curve is unambiguous: the single-best
  // prediction follows the turn.
  const sim::Route& r =
      net_.route(*net_.find_route(Arm::kSouth, 0, Maneuver::kLeft));
  const double s0 = r.box_entry_s + 4.0;
  const Vec2 pos = r.path.point_at(s0);
  const Vec2 vel = r.path.tangent_at(s0) * 8.0;
  const PredictedTrajectory traj =
      predictor_.predict(pos, vel, sim::AgentKind::kCar);
  EXPECT_NEAR(traj.speed, 8.0, 1e-9);
  const Vec2 end = traj.path.point_at(traj.reach() - 0.5);
  EXPECT_LT(end.x, -5.0) << "prediction failed to follow the left turn";
}

TEST_F(PredictionTest, ApproachAmbiguityPrefersStraight) {
  // On the shared approach the lane intent is unknowable; the single-best
  // prediction deterministically resolves to the straight route.
  const sim::Route& r =
      net_.route(*net_.find_route(Arm::kSouth, 0, Maneuver::kLeft));
  const double s0 = r.stop_line_s - 5.0;
  const PredictedTrajectory traj = predictor_.predict(
      r.path.point_at(s0), r.path.tangent_at(s0) * 8.0, sim::AgentKind::kCar);
  const Vec2 end = traj.path.points().back();
  EXPECT_NEAR(end.x, r.path.point_at(s0).x, 0.6);
  EXPECT_GT(end.y, 0.0);
}

TEST_F(PredictionTest, HypothesesCoverAllManeuvers) {
  // At the same ambiguous spot, the hypothesis set contains both the
  // straight and the left-turn trajectory (lane 0 permits both).
  const sim::Route& r =
      net_.route(*net_.find_route(Arm::kSouth, 0, Maneuver::kLeft));
  const double s0 = r.stop_line_s - 5.0;
  const auto hyps = predictor_.predict_hypotheses(
      r.path.point_at(s0), r.path.tangent_at(s0) * 8.0, sim::AgentKind::kCar);
  ASSERT_GE(hyps.size(), 2u);
  bool has_straight = false;
  bool has_left = false;
  for (const auto& h : hyps) {
    const Vec2 end = h.path.points().back();
    if (end.x < -3.0) has_left = true;
    if (std::abs(end.x - r.path.point_at(s0).x) < 0.6 && end.y > 0.0) {
      has_straight = true;
    }
  }
  EXPECT_TRUE(has_straight);
  EXPECT_TRUE(has_left);
}

TEST_F(PredictionTest, HypothesesFallBackToSinglePrediction) {
  const auto hyps = predictor_.predict_hypotheses(
      {300.0, 300.0}, {5.0, 0.0}, sim::AgentKind::kCar);
  ASSERT_EQ(hyps.size(), 1u);
  EXPECT_NEAR(hyps[0].path.points().back().y, 300.0, 1e-9);
}

TEST_F(PredictionTest, CtrvArcWhenOffMapAndTurning) {
  // Off every route, with a positive yaw rate: a left-curving arc.
  const Vec2 pos{300.0, 300.0};
  const Vec2 vel{10.0, 0.0};
  const double yaw_rate = geom::deg_to_rad(20.0);  // ~20 deg/s left
  const PredictedTrajectory traj =
      predictor_.predict(pos, vel, sim::AgentKind::kCar, yaw_rate);
  const Vec2 end = traj.path.points().back();
  // After 5 s at 20 deg/s the heading rotated ~100 degrees: the endpoint is
  // displaced up and to the left of the straight-line endpoint.
  EXPECT_GT(end.y, pos.y + 10.0);
  EXPECT_LT(end.x, pos.x + traj.reach());
  // Arc length still matches the horizon reach.
  EXPECT_NEAR(traj.path.length(), traj.reach(), 2.0);
}

TEST_F(PredictionTest, CtrvIgnoredWhenRouteMatches) {
  // On a route, the lane geometry wins over the yaw-rate arc.
  const sim::Route& r =
      net_.route(*net_.find_route(Arm::kSouth, 1, Maneuver::kStraight));
  const double s0 = 30.0;
  const PredictedTrajectory traj = predictor_.predict(
      r.path.point_at(s0), r.path.tangent_at(s0) * 10.0, sim::AgentKind::kCar,
      geom::deg_to_rad(30.0));
  // Straight northbound: x constant.
  EXPECT_NEAR(traj.path.points().back().x, r.path.point_at(s0).x, 0.3);
}

TEST_F(PredictionTest, SmallYawRateStaysStraight) {
  const PredictedTrajectory traj = predictor_.predict(
      {300.0, 300.0}, {10.0, 0.0}, sim::AgentKind::kCar,
      geom::deg_to_rad(1.0));
  EXPECT_NEAR(traj.path.points().back().y, 300.0, 1e-9);
}

TEST_F(PredictionTest, PredictionStartsAtActualPosition) {
  const sim::Route& r =
      net_.route(*net_.find_route(Arm::kSouth, 1, Maneuver::kStraight));
  // Vehicle slightly off the lane centerline.
  const Vec2 pos = r.path.point_at(20.0) + Vec2{0.5, 0.0};
  const Vec2 vel = r.path.tangent_at(20.0) * 10.0;
  const PredictedTrajectory traj =
      predictor_.predict(pos, vel, sim::AgentKind::kCar);
  EXPECT_LT(distance(traj.path.point_at(0.0), pos), 0.1);
}

TEST_F(PredictionTest, PedestrianIsStraightLine) {
  const PredictedTrajectory traj =
      predictor_.predict({0.0, -10.0}, {1.4, 0.0}, sim::AgentKind::kPedestrian);
  EXPECT_NEAR(traj.path.length(), 1.4 * traj.horizon, 0.6);
  const Vec2 end = traj.path.points().back();
  EXPECT_NEAR(end.y, -10.0, 1e-9);
  EXPECT_GT(end.x, 5.0);
}

TEST_F(PredictionTest, StationaryObjectShortPath) {
  const PredictedTrajectory traj =
      predictor_.predict({5.0, 5.0}, {0.0, 0.0}, sim::AgentKind::kCar);
  EXPECT_LT(traj.path.length(), 1.0);
  EXPECT_DOUBLE_EQ(traj.speed, 0.0);
}

TEST_F(PredictionTest, UncertaintyGrowsAlongHorizon) {
  const PredictedTrajectory traj =
      predictor_.predict({0.0, 0.0}, {10.0, 0.0}, sim::AgentKind::kCar);
  const auto u1 = traj.uncertainty_at(1.0);
  const auto u4 = traj.uncertainty_at(4.0);
  EXPECT_GT(u4.sigma_x(), u1.sigma_x());
  EXPECT_NEAR(u1.mean().x, traj.position_at(1.0).x, 1e-9);
}

TEST_F(PredictionTest, ReachBoundsPath) {
  const PredictedTrajectory traj =
      predictor_.predict({0.0, -40.0}, {0.0, 12.0}, sim::AgentKind::kCar);
  EXPECT_LE(traj.path.length(), traj.reach() + 2.0);
}

class HorizonSweep : public ::testing::TestWithParam<double> {};

TEST_P(HorizonSweep, PositionAtHorizonMatchesSpeedTimesTime) {
  sim::RoadNetwork net{sim::RoadConfig{}};
  PredictorConfig cfg;
  cfg.horizon = GetParam();
  TrajectoryPredictor pred(net, cfg);
  const auto traj = pred.predict({0.0, -200.0}, {0.0, 10.0},
                                 sim::AgentKind::kCar);
  EXPECT_DOUBLE_EQ(traj.horizon, GetParam());
  // Off-road (south of the arm): straight-line prediction.
  const Vec2 end = traj.position_at(GetParam());
  EXPECT_NEAR(end.y, -200.0 + 10.0 * GetParam(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Horizons, HorizonSweep,
                         ::testing::Values(2.0, 4.0, 5.0, 8.0));

}  // namespace
}  // namespace erpd::track
