#include <gtest/gtest.h>

#include <cmath>

#include "track/tracker.hpp"

namespace erpd::track {
namespace {

using geom::Vec2;

Detection det(Vec2 pos, sim::AgentKind kind = sim::AgentKind::kCar,
              std::optional<Vec2> vel = std::nullopt) {
  Detection d;
  d.position = pos;
  d.velocity = vel;
  d.kind = kind;
  d.payload_bytes = 1000;
  d.point_count = 100;
  return d;
}

TEST(Tracker, NewDetectionStartsTrack) {
  MultiObjectTracker mot;
  mot.step({det({5.0, 5.0})}, 0.0);
  ASSERT_EQ(mot.tracks().size(), 1u);
  EXPECT_EQ(mot.tracks()[0].hits, 1);
  EXPECT_TRUE(mot.confirmed().empty());  // needs confirm_hits updates
}

TEST(Tracker, TrackConfirmsAfterHits) {
  MultiObjectTracker mot;
  mot.step({det({5.0, 5.0})}, 0.0);
  mot.step({det({5.5, 5.0})}, 0.1);
  EXPECT_EQ(mot.confirmed().size(), 1u);
}

TEST(Tracker, AssociationWithinGate) {
  MultiObjectTracker mot;
  mot.step({det({5.0, 5.0})}, 0.0);
  mot.step({det({6.0, 5.0})}, 0.1);  // 1 m jump, inside the 3.5 m gate
  EXPECT_EQ(mot.tracks().size(), 1u);
  EXPECT_EQ(mot.tracks()[0].hits, 2);
}

TEST(Tracker, FarDetectionStartsNewTrack) {
  MultiObjectTracker mot;
  mot.step({det({5.0, 5.0})}, 0.0);
  mot.step({det({25.0, 5.0})}, 0.1);  // far outside the gate
  EXPECT_EQ(mot.tracks().size(), 2u);
}

TEST(Tracker, UnambiguousKindMismatchBlocksAssociation) {
  // A track confirmed as car-sized never absorbs a clearly pedestrian-sized
  // detection (and vice versa) — but kind is advisory for partial views.
  MultiObjectTracker mot;
  Detection car = det({5.0, 5.0}, sim::AgentKind::kCar);
  car.extent = 4.2;
  mot.step({car}, 0.0);
  Detection ped = det({5.2, 5.0}, sim::AgentKind::kPedestrian);
  ped.extent = 0.5;
  mot.step({ped}, 0.1);
  EXPECT_EQ(mot.tracks().size(), 2u);
}

TEST(Tracker, PartialViewStillAssociates) {
  // A far, partially occluded car looks pedestrian-sized; it must still
  // associate with its track rather than spawning a duplicate.
  MultiObjectTracker mot;
  Detection full = det({5.0, 5.0}, sim::AgentKind::kCar);
  full.extent = 4.2;
  mot.step({full}, 0.0);
  Detection partial = det({5.4, 5.0}, sim::AgentKind::kPedestrian);
  partial.extent = 0.0;  // unknown extent
  mot.step({partial}, 0.1);
  EXPECT_EQ(mot.tracks().size(), 1u);
}

TEST(Tracker, KindUpgradesWithExtent) {
  MultiObjectTracker mot;
  Detection d = det({5.0, 5.0}, sim::AgentKind::kPedestrian);
  d.extent = 0.9;
  mot.step({d}, 0.0);
  EXPECT_EQ(mot.tracks()[0].kind, sim::AgentKind::kPedestrian);
  d.position = {5.3, 5.0};
  d.extent = 3.8;  // clearly a car after all
  mot.step({d}, 0.1);
  EXPECT_EQ(mot.tracks()[0].kind, sim::AgentKind::kCar);
}

TEST(Tracker, MissedTracksEventuallyDropped) {
  TrackerConfig cfg;
  cfg.max_misses = 2;
  MultiObjectTracker mot(cfg);
  mot.step({det({5.0, 5.0})}, 0.0);
  mot.step({}, 0.1);
  mot.step({}, 0.2);
  EXPECT_EQ(mot.tracks().size(), 1u);
  mot.step({}, 0.3);  // third miss > max
  EXPECT_TRUE(mot.tracks().empty());
}

TEST(Tracker, ReacquireResetsMisses) {
  TrackerConfig cfg;
  cfg.max_misses = 2;
  MultiObjectTracker mot(cfg);
  mot.step({det({5.0, 5.0})}, 0.0);
  mot.step({}, 0.1);
  mot.step({det({5.1, 5.0})}, 0.2);
  EXPECT_EQ(mot.tracks()[0].misses, 0);
}

TEST(Tracker, GreedyPicksGloballyNearestPairs) {
  MultiObjectTracker mot;
  mot.step({det({0.0, 0.0}), det({3.0, 0.0})}, 0.0);
  // Next frame both moved right; naive row-order matching would cross them.
  mot.step({det({1.0, 0.0}), det({4.0, 0.0})}, 0.1);
  ASSERT_EQ(mot.tracks().size(), 2u);
  EXPECT_LT(distance(mot.tracks()[0].position(), Vec2(1.0, 0.0)), 1.0);
  EXPECT_LT(distance(mot.tracks()[1].position(), Vec2(4.0, 0.0)), 1.0);
}

TEST(Tracker, CoastingPredictsForward) {
  MultiObjectTracker mot;
  mot.step({det({0.0, 0.0}, sim::AgentKind::kCar, Vec2{10.0, 0.0})}, 0.0);
  mot.step({det({1.0, 0.0}, sim::AgentKind::kCar, Vec2{10.0, 0.0})}, 0.1);
  // Missed frame: the track should coast along its velocity.
  mot.step({}, 0.2);
  ASSERT_EQ(mot.tracks().size(), 1u);
  EXPECT_GT(mot.tracks()[0].position().x, 1.5);
}

TEST(Tracker, PayloadMetadataFollowsLatestDetection) {
  MultiObjectTracker mot;
  Detection d = det({5.0, 5.0});
  d.payload_bytes = 777;
  d.truth_id = 42;
  mot.step({d}, 0.0);
  EXPECT_EQ(mot.tracks()[0].payload_bytes, 777u);
  EXPECT_EQ(mot.tracks()[0].truth_id, 42);
  d.position = {5.3, 5.0};
  d.payload_bytes = 999;
  mot.step({d}, 0.1);
  EXPECT_EQ(mot.tracks()[0].payload_bytes, 999u);
}

TEST(Tracker, FindById) {
  MultiObjectTracker mot;
  mot.step({det({5.0, 5.0}), det({50.0, 5.0})}, 0.0);
  const int id = mot.tracks()[1].id;
  ASSERT_NE(mot.find(id), nullptr);
  EXPECT_EQ(mot.find(id)->id, id);
  EXPECT_EQ(mot.find(12345), nullptr);
}

TEST(Tracker, YawRateEstimatedForTurningObject) {
  // An object moving on a circle at ~0.3 rad/s: the smoothed yaw-rate
  // estimate should converge to roughly that value.
  MultiObjectTracker mot;
  const double omega = 0.3;
  const double speed = 8.0;
  const double radius = speed / omega;
  for (int k = 0; k < 40; ++k) {
    const double t = 0.1 * k;
    const double ang = omega * t;
    Detection d;
    d.position = {radius * std::cos(ang), radius * std::sin(ang)};
    d.velocity = Vec2{-std::sin(ang), std::cos(ang)} * speed;
    d.kind = sim::AgentKind::kCar;
    d.extent = 4.5;
    mot.step({d}, t);
  }
  ASSERT_EQ(mot.tracks().size(), 1u);
  EXPECT_NEAR(mot.tracks()[0].yaw_rate, omega, 0.12);
}

TEST(Tracker, YawRateNearZeroForStraightMotion) {
  MultiObjectTracker mot;
  for (int k = 0; k < 20; ++k) {
    const double t = 0.1 * k;
    Detection d;
    d.position = {8.0 * t, 0.0};
    d.velocity = Vec2{8.0, 0.0};
    d.extent = 4.5;
    mot.step({d}, t);
  }
  EXPECT_NEAR(mot.tracks()[0].yaw_rate, 0.0, 0.05);
}

TEST(Tracker, ManyObjectsStableIdentity) {
  MultiObjectTracker mot;
  std::vector<Detection> frame;
  for (int i = 0; i < 10; ++i) frame.push_back(det({i * 10.0, 0.0}));
  mot.step(frame, 0.0);
  const auto ids_before = [&] {
    std::vector<int> v;
    for (const auto& t : mot.tracks()) v.push_back(t.id);
    return v;
  }();
  // All objects drift slightly; identities must persist.
  for (auto& d : frame) d.position += Vec2{0.4, 0.1};
  mot.step(frame, 0.1);
  const auto ids_after = [&] {
    std::vector<int> v;
    for (const auto& t : mot.tracks()) v.push_back(t.id);
    return v;
  }();
  EXPECT_EQ(ids_before, ids_after);
}

}  // namespace
}  // namespace erpd::track
