// End-to-end tests: scenario -> sensing -> uplink -> edge pipeline ->
// dissemination -> driver reaction, for each evaluated method.

#include <gtest/gtest.h>

#include "edge/system_runner.hpp"

namespace erpd::edge {
namespace {

sim::ScenarioConfig fast_scenario(double kmh = 30.0, std::uint64_t seed = 5) {
  sim::ScenarioConfig cfg;
  cfg.speed_kmh = kmh;
  cfg.total_vehicles = 12;
  cfg.pedestrians = 3;
  cfg.connected_fraction = 0.5;
  cfg.seed = seed;
  // Coarse LiDAR keeps the test quick; geometry is unchanged.
  cfg.world.lidar.channels = 16;
  cfg.world.lidar.azimuth_step_deg = 1.0;
  return cfg;
}

net::WirelessConfig test_wireless() {
  net::WirelessConfig w;
  w.uplink_mbps = 16.0;
  w.downlink_mbps = 32.0;
  return w;
}

MethodMetrics run(Method method, sim::Scenario& sc, double duration = 18.0) {
  RunnerConfig rc = make_runner_config(method, test_wireless());
  rc.duration = duration;
  SystemRunner runner(rc);
  return runner.run(sc);
}

TEST(Integration, SingleAlwaysCrashesOursSurvives) {
  sim::Scenario single_sc = sim::make_unprotected_left_turn(fast_scenario());
  const MethodMetrics single = run(Method::kSingle, single_sc);
  EXPECT_FALSE(single.ego_safe) << "Single must collide in the scripted "
                                   "left-turn conflict";

  sim::Scenario ours_sc = sim::make_unprotected_left_turn(fast_scenario());
  const MethodMetrics ours = run(Method::kOurs, ours_sc);
  EXPECT_TRUE(ours.ego_safe) << "Ours failed to prevent the collision";
  EXPECT_GT(ours.disseminations, 0);
  EXPECT_GT(ours.min_key_distance, single.min_key_distance);
}

TEST(Integration, RedLightScenarioOursSurvives) {
  sim::Scenario single_sc = sim::make_red_light_violation(fast_scenario());
  const MethodMetrics single = run(Method::kSingle, single_sc);
  EXPECT_FALSE(single.ego_safe);

  sim::Scenario ours_sc = sim::make_red_light_violation(fast_scenario());
  const MethodMetrics ours = run(Method::kOurs, ours_sc);
  EXPECT_TRUE(ours.ego_safe);
}

TEST(Integration, PedestrianScenarioOursYields) {
  // Pedestrians are small; resolving one at 30+ m needs a denser sensor
  // than the coarse grid the vehicle tests use.
  sim::ScenarioConfig cfg = fast_scenario();
  cfg.world.lidar.channels = 32;
  cfg.world.lidar.azimuth_step_deg = 0.5;
  sim::Scenario sc = sim::make_occluded_pedestrian(cfg);
  const MethodMetrics ours = run(Method::kOurs, sc);
  EXPECT_TRUE(ours.ego_safe);
  EXPECT_EQ(ours.collisions, 0);
}

TEST(Integration, UplinkBandwidthOrdering) {
  // Ours < EMP < Unlimited (paper Fig. 12a).
  sim::Scenario a = sim::make_unprotected_left_turn(fast_scenario());
  sim::Scenario b = sim::make_unprotected_left_turn(fast_scenario());
  sim::Scenario c = sim::make_unprotected_left_turn(fast_scenario());
  const MethodMetrics ours = run(Method::kOurs, a, 8.0);
  const MethodMetrics emp = run(Method::kEmp, b, 8.0);
  const MethodMetrics unlimited = run(Method::kUnlimited, c, 8.0);
  EXPECT_LT(ours.uplink_mbps, emp.uplink_mbps);
  EXPECT_LT(emp.uplink_mbps, unlimited.uplink_mbps);
  // EMP keeps static structure, so it needs several times Ours' bandwidth,
  // but never exceeds the cap. (Cap saturation shows up at full sensor
  // density in bench/fig12_upload.)
  EXPECT_GT(emp.uplink_mbps, ours.uplink_mbps);
  EXPECT_LE(emp.uplink_mbps, 16.0 + 0.5);
}

TEST(Integration, DisseminationBandwidthOrdering) {
  // Ours << EMP (capped) << Unlimited (paper Fig. 13).
  sim::Scenario a = sim::make_unprotected_left_turn(fast_scenario());
  sim::Scenario b = sim::make_unprotected_left_turn(fast_scenario());
  sim::Scenario c = sim::make_unprotected_left_turn(fast_scenario());
  const MethodMetrics ours = run(Method::kOurs, a, 8.0);
  const MethodMetrics emp = run(Method::kEmp, b, 8.0);
  const MethodMetrics unlimited = run(Method::kUnlimited, c, 8.0);
  EXPECT_LT(ours.downlink_mbps, emp.downlink_mbps + 1e-9);
  EXPECT_LT(ours.downlink_mbps, unlimited.downlink_mbps);
}

TEST(Integration, EmpDetectsFewerObjectsUnderTightUplink) {
  net::WirelessConfig tight;
  tight.uplink_mbps = 3.0;  // starves the EMP blob uploads
  tight.downlink_mbps = 32.0;
  sim::Scenario a = sim::make_unprotected_left_turn(fast_scenario());
  sim::Scenario b = sim::make_unprotected_left_turn(fast_scenario());

  RunnerConfig rc_emp = make_runner_config(Method::kEmp, tight);
  rc_emp.duration = 8.0;
  const MethodMetrics emp = SystemRunner(rc_emp).run(a);

  RunnerConfig rc_ours = make_runner_config(Method::kOurs, tight);
  rc_ours.duration = 8.0;
  const MethodMetrics ours = SystemRunner(rc_ours).run(b);

  EXPECT_LT(emp.avg_objects_detected, ours.avg_objects_detected);
}

TEST(Integration, LatencyBreakdownPopulated) {
  sim::Scenario sc = sim::make_unprotected_left_turn(fast_scenario());
  const MethodMetrics m = run(Method::kOurs, sc, 5.0);
  EXPECT_GT(m.e2e_latency, 0.0);
  EXPECT_GT(m.extraction_seconds, 0.0);
  EXPECT_GT(m.upload_seconds, 0.0);
  EXPECT_GE(m.merge_seconds, 0.0);
  EXPECT_GE(m.track_predict_seconds, 0.0);
  EXPECT_GE(m.dissemination_decision_seconds, 0.0);
  // The decision itself is the cheap part (paper: ~1 ms).
  EXPECT_LT(m.dissemination_decision_seconds, 0.01);
  // Sum of parts equals the whole (within fp tolerance).
  const double parts = m.extraction_seconds + m.upload_seconds +
                       m.merge_seconds + m.track_predict_seconds +
                       m.dissemination_decision_seconds +
                       m.downlink_transfer_seconds;
  EXPECT_NEAR(m.e2e_latency, parts, 1e-9);
}

TEST(Integration, SafePassageRateComputed) {
  sim::Scenario sc = sim::make_unprotected_left_turn(fast_scenario());
  const MethodMetrics m = run(Method::kOurs, sc);
  EXPECT_GT(m.vehicles_entered, 0);
  EXPECT_GE(m.safe_passage_rate, 0.0);
  EXPECT_LE(m.safe_passage_rate, 1.0);
  EXPECT_EQ(m.vehicles_safe <= m.vehicles_entered, true);
}

TEST(Integration, MethodNames) {
  EXPECT_STREQ(to_string(Method::kSingle), "Single");
  EXPECT_STREQ(to_string(Method::kEmp), "EMP");
  EXPECT_STREQ(to_string(Method::kOurs), "Ours");
  EXPECT_STREQ(to_string(Method::kUnlimited), "Unlimited");
}

TEST(Integration, UnlimitedIsUncapped) {
  const RunnerConfig rc = make_runner_config(Method::kUnlimited);
  EXPECT_GT(rc.wireless.uplink_mbps, 1e5);
  EXPECT_EQ(rc.edge.strategy, DisseminationStrategy::kBroadcast);
  EXPECT_EQ(rc.client.policy, UploadPolicy::kUnlimitedRaw);
}

}  // namespace
}  // namespace erpd::edge
