#include <gtest/gtest.h>

#include "edge/edge_server.hpp"

#include "geom/angle.hpp"

namespace erpd::edge {
namespace {

using geom::Vec2;
using geom::Vec3;
using sim::AgentId;
using sim::Arm;
using sim::Maneuver;

constexpr AgentId kV1 = 1;       // connected ego-like recipient
constexpr AgentId kV2 = 2;       // connected observer that sees the threat
constexpr AgentId kThreat = 77;  // ground-truth id of the threatening object

/// Test fixture that synthesizes upload frames directly (no simulator):
/// V1 drives north on the south arm; the threat drives east on the west arm
/// (their routes cross); V2 observes and uploads the threat's cloud.
class EdgeServerTest : public ::testing::Test {
 protected:
  sim::RoadNetwork net_{sim::RoadConfig{}};

  static net::ObjectUpload object_for(Vec2 pos, Vec2 vel, AgentId truth) {
    net::ObjectUpload o;
    o.object_granular = true;
    o.truth_id = truth;
    o.centroid_world = {pos, 0.8};
    o.velocity_world = vel;
    o.point_count = 120;
    o.bytes = pc::encoded_size_bytes(120);
    // A small blob of points around the centroid (footprint ~car sized).
    for (int i = 0; i < 12; ++i) {
      o.cloud_world.push_back(
          {pos.x - 2.0 + 0.4 * i, pos.y + 0.3 * (i % 3), 0.5 + 0.1 * (i % 4)});
    }
    return o;
  }

  static net::UploadFrame frame_for(AgentId vehicle, Vec2 pos, double yaw,
                                    double t) {
    net::UploadFrame f;
    f.vehicle = vehicle;
    f.pose.position = {pos, 1.9};
    f.pose.yaw = yaw;
    f.timestamp = t;
    return f;
  }

  /// Positions at time t for the converging geometry.
  Vec2 v1_pos(double t) const {
    const auto r = net_.find_route(Arm::kSouth, 1, Maneuver::kStraight);
    const sim::Route& route = net_.route(*r);
    return route.path.point_at(route.stop_line_s - 35.0 + 10.0 * t);
  }
  Vec2 threat_pos(double t) const {
    const auto r = net_.find_route(Arm::kWest, 0, Maneuver::kStraight);
    const sim::Route& route = net_.route(*r);
    return route.path.point_at(route.stop_line_s - 28.0 + 10.0 * t);
  }
  double v1_yaw() const { return geom::kPi / 2.0; }

  std::vector<net::UploadFrame> frames_at(double t) const {
    std::vector<net::UploadFrame> out;
    // V1 uploads nothing (threat occluded from it).
    out.push_back(frame_for(kV1, v1_pos(t), v1_yaw(), t));
    // V2 sits off to the side and uploads the threat.
    net::UploadFrame f2 = frame_for(kV2, {30.0, 30.0}, 0.0, t);
    f2.objects.push_back(object_for(threat_pos(t), {10.0, 0.0}, kThreat));
    out.push_back(f2);
    return out;
  }
};

TEST_F(EdgeServerTest, DisseminatesRelevantObjectToEndangeredVehicle) {
  EdgeServer server(net_, EdgeConfig{});
  FrameOutput out;
  for (int k = 0; k < 6; ++k) {
    out = server.process_frame(frames_at(0.1 * k), 0.1 * k, nullptr);
  }
  ASSERT_FALSE(out.selected.empty())
      << "no dissemination despite a converging threat";
  bool to_v1 = false;
  for (const net::Dissemination& d : out.selected) {
    if (d.to == kV1 && d.about == kThreat) to_v1 = true;
    EXPECT_GT(d.relevance, 0.0);
    EXPECT_GT(d.bytes, 0u);
  }
  EXPECT_TRUE(to_v1);
  EXPECT_GT(out.delivered_relevance, 0.0);
}

TEST_F(EdgeServerTest, UploaderNeverReceivesWhatItSees) {
  EdgeServer server(net_, EdgeConfig{});
  FrameOutput out;
  for (int k = 0; k < 6; ++k) {
    out = server.process_frame(frames_at(0.1 * k), 0.1 * k, nullptr);
  }
  for (const net::Dissemination& d : out.selected) {
    EXPECT_FALSE(d.to == kV2 && d.about == kThreat)
        << "V2 uploaded the threat; it already sees it (relevance 0)";
  }
}

TEST_F(EdgeServerTest, TracksConfirmAndCount) {
  EdgeServer server(net_, EdgeConfig{});
  FrameOutput out;
  for (int k = 0; k < 4; ++k) {
    out = server.process_frame(frames_at(0.1 * k), 0.1 * k, nullptr);
  }
  EXPECT_EQ(out.detections, 1u);
  EXPECT_EQ(out.confirmed_tracks, 1u);
  EXPECT_GE(out.predicted_tracks, 1u);
}

TEST_F(EdgeServerTest, TimingsPopulated) {
  EdgeServer server(net_, EdgeConfig{});
  const FrameOutput out = server.process_frame(frames_at(0.0), 0.0, nullptr);
  EXPECT_GE(out.timings.merge_seconds, 0.0);
  EXPECT_GE(out.timings.track_predict_seconds, 0.0);
  EXPECT_GE(out.timings.relevance_seconds, 0.0);
  EXPECT_GE(out.timings.dissemination_seconds, 0.0);
}

TEST_F(EdgeServerTest, RoundRobinSendsIrrespectiveOfRelevance) {
  EdgeConfig cfg;
  cfg.strategy = DisseminationStrategy::kRoundRobin;
  EdgeServer server(net_, cfg);
  FrameOutput out;
  for (int k = 0; k < 6; ++k) {
    out = server.process_frame(frames_at(0.1 * k), 0.1 * k, nullptr);
  }
  // RR sends the track to every other vehicle, including V2 (which sees it).
  bool to_v2 = false;
  for (const net::Dissemination& d : out.selected) {
    if (d.to == kV2) to_v2 = true;
  }
  EXPECT_TRUE(to_v2);
}

TEST_F(EdgeServerTest, BroadcastSendsToAllVehicles) {
  EdgeConfig cfg;
  cfg.strategy = DisseminationStrategy::kBroadcast;
  EdgeServer server(net_, cfg);
  FrameOutput out;
  for (int k = 0; k < 4; ++k) {
    out = server.process_frame(frames_at(0.1 * k), 0.1 * k, nullptr);
  }
  // One confirmed track x two connected vehicles.
  EXPECT_EQ(out.selected.size(), 2u);
}

TEST_F(EdgeServerTest, MinRelevanceFiltersWeakCandidates) {
  EdgeConfig cfg;
  cfg.min_relevance = 0.99;  // nothing should clear this bar
  EdgeServer server(net_, cfg);
  FrameOutput out;
  for (int k = 0; k < 6; ++k) {
    out = server.process_frame(frames_at(0.1 * k), 0.1 * k, nullptr);
  }
  EXPECT_TRUE(out.selected.empty());
}

TEST_F(EdgeServerTest, BlobUploadsAreDetectedServerSide) {
  EdgeServer server(net_, EdgeConfig{});
  // Same scene, but V2 uploads an unsegmented blob of the threat's points.
  auto frames = [&](double t) {
    std::vector<net::UploadFrame> out;
    out.push_back(frame_for(kV1, v1_pos(t), v1_yaw(), t));
    net::UploadFrame f2 = frame_for(kV2, {30.0, 30.0}, 0.0, t);
    net::ObjectUpload blob;
    blob.object_granular = false;
    const Vec2 tp = threat_pos(t);
    for (int i = 0; i < 80; ++i) {
      blob.cloud_world.push_back({tp.x - 2.0 + 0.05 * i,
                                  tp.y - 0.8 + 0.02 * i,
                                  0.5 + 0.01 * (i % 30)});
    }
    blob.point_count = blob.cloud_world.size();
    blob.bytes = pc::encoded_size_bytes(blob.point_count);
    blob.centroid_world = blob.cloud_world.centroid();
    f2.objects.push_back(std::move(blob));
    out.push_back(f2);
    return out;
  };
  std::vector<sim::AgentSnapshot> truth(1);
  truth[0].id = kThreat;
  FrameOutput out;
  for (int k = 0; k < 6; ++k) {
    truth[0].position = threat_pos(0.1 * k);
    out = server.process_frame(frames(0.1 * k), 0.1 * k, &truth);
  }
  EXPECT_EQ(out.detections, 1u);
  EXPECT_EQ(out.confirmed_tracks, 1u);
  // Truth tagging flowed through to the track.
  bool tagged = false;
  for (const auto& tr : server.tracker().tracks()) {
    if (tr.truth_id == kThreat) tagged = true;
  }
  EXPECT_TRUE(tagged);
}

TEST_F(EdgeServerTest, DuplicateUploadsFuseIntoOneTrack) {
  // Two vehicles report the same object from different viewpoints with a
  // ~1.5 m centroid disagreement; the server must fuse them (Point Cloud
  // Merging) instead of breeding duplicate tracks.
  EdgeServer server(net_, EdgeConfig{});
  FrameOutput out;
  for (int k = 0; k < 4; ++k) {
    const double t = 0.1 * k;
    std::vector<net::UploadFrame> frames;
    net::UploadFrame f2 = frame_for(kV2, {30.0, 30.0}, 0.0, t);
    f2.objects.push_back(object_for(threat_pos(t), {10.0, 0.0}, kThreat));
    frames.push_back(f2);
    net::UploadFrame f1 = frame_for(kV1, v1_pos(t), v1_yaw(), t);
    f1.objects.push_back(object_for(threat_pos(t) + Vec2{1.2, 0.6},
                                    {10.0, 0.0}, kThreat));
    frames.push_back(f1);
    out = server.process_frame(frames, t, nullptr);
  }
  EXPECT_EQ(out.detections, 1u) << "duplicate views must fuse";
  EXPECT_EQ(out.confirmed_tracks, 1u);
}

TEST_F(EdgeServerTest, MovingTracksExcludeStationary) {
  EdgeServer server(net_, EdgeConfig{});
  FrameOutput out;
  for (int k = 0; k < 4; ++k) {
    const double t = 0.1 * k;
    std::vector<net::UploadFrame> frames;
    net::UploadFrame f2 = frame_for(kV2, {30.0, 30.0}, 0.0, t);
    f2.objects.push_back(object_for(threat_pos(t), {10.0, 0.0}, kThreat));
    // A parked object (zero velocity, fixed position).
    f2.objects.push_back(object_for({40.0, 40.0}, {0.0, 0.0}, 99));
    frames.push_back(f2);
    out = server.process_frame(frames, t, nullptr);
  }
  EXPECT_EQ(out.confirmed_tracks, 2u);
  EXPECT_EQ(out.moving_tracks, 1u);
}

TEST_F(EdgeServerTest, StaleVehiclesForgotten) {
  EdgeServer server(net_, EdgeConfig{});
  for (int k = 0; k < 3; ++k) {
    server.process_frame(frames_at(0.1 * k), 0.1 * k, nullptr);
  }
  // V1 stops uploading; after >1 s only V2 remains in the fleet, so no
  // dissemination to V1 can be selected.
  FrameOutput out;
  for (int k = 3; k < 20; ++k) {
    std::vector<net::UploadFrame> only_v2;
    net::UploadFrame f2 = frame_for(kV2, {30.0, 30.0}, 0.0, 0.1 * k);
    f2.objects.push_back(
        object_for(threat_pos(0.1 * k), {10.0, 0.0}, kThreat));
    only_v2.push_back(f2);
    out = server.process_frame(only_v2, 0.1 * k, nullptr);
  }
  for (const net::Dissemination& d : out.selected) {
    EXPECT_NE(d.to, kV1);
  }
}

}  // namespace
}  // namespace erpd::edge
