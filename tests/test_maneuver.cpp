// Maneuver-layer unit tests (DESIGN.md §15).
//
// Covers the planner's transition table directly (follow -> stop -> follow,
// directive arming, gap-rejection aborts, the commit + lateral blend back to
// exactly 0.0), the Gipps-style gap acceptance boundaries, config contract
// checks, and — critically — that the layer is exactly inert while disabled:
// a world with a lane-change directive but maneuver.enabled == false is
// bit-identical to one that never heard of the directive.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/check.hpp"
#include "sim/agent.hpp"
#include "sim/maneuver.hpp"
#include "sim/road_network.hpp"
#include "sim/world.hpp"

namespace erpd::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ManeuverConfig enabled_config() {
  ManeuverConfig cfg;
  cfg.enabled = true;
  return cfg;
}

/// A vehicle on the given (arm, lane, maneuver) route of `net`.
Vehicle make_vehicle(const RoadNetwork& net, AgentId id, Arm arm, int lane,
                     Maneuver m, double s, double speed) {
  const auto route = net.find_route(arm, lane, m);
  EXPECT_TRUE(route.has_value());
  return Vehicle(id, VehicleParams{}, *route, s, speed);
}

TEST(ManeuverConfig, ValidateRejectsOutOfRange) {
  const auto bad = [](auto&& mutate) {
    ManeuverConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  };
  bad([](ManeuverConfig& c) { c.lane_change_duration = 0.0; });
  bad([](ManeuverConfig& c) { c.min_lead_gap = -1.0; });
  bad([](ManeuverConfig& c) { c.min_lag_gap = -0.5; });
  bad([](ManeuverConfig& c) { c.gap_time_headway = -0.1; });
  bad([](ManeuverConfig& c) { c.abort_after = 0.0; });
  bad([](ManeuverConfig& c) { c.stop_line_clearance = -2.0; });
  EXPECT_NO_THROW(ManeuverConfig{}.validate());
}

TEST(GapAcceptance, LeadGapScalesWithOwnSpeed) {
  ManeuverConfig cfg;  // min_lead 6, min_lag 8, headway 0.8
  GapObservation gap;
  gap.lag_gap = kInf;
  const double my_speed = 10.0;
  const double need = cfg.min_lead_gap + cfg.gap_time_headway * my_speed;
  gap.lead_gap = need;
  EXPECT_TRUE(gap_acceptable(cfg, my_speed, gap));
  gap.lead_gap = need - 0.01;
  EXPECT_FALSE(gap_acceptable(cfg, my_speed, gap));
}

TEST(GapAcceptance, LagGapScalesWithTrailingSpeed) {
  ManeuverConfig cfg;
  GapObservation gap;
  gap.lead_gap = kInf;
  gap.lag_speed = 5.0;
  const double need = cfg.min_lag_gap + cfg.gap_time_headway * gap.lag_speed;
  gap.lag_gap = need;
  EXPECT_TRUE(gap_acceptable(cfg, 0.0, gap));
  gap.lag_gap = need - 0.01;
  EXPECT_FALSE(gap_acceptable(cfg, 0.0, gap));
}

TEST(GapAcceptance, EmptyLaneAlwaysAccepts) {
  GapObservation gap;
  gap.lead_gap = kInf;
  gap.lag_gap = kInf;
  EXPECT_TRUE(gap_acceptable(ManeuverConfig{}, 30.0, gap));
}

// --- Transition table ------------------------------------------------------

TEST(ManeuverPlanner, FollowToStopToFollowWithSignal) {
  RoadNetwork net{RoadConfig{}};
  SignalController::Timing timing;  // green 20, yellow 3, all_red 2
  SignalController signals(timing);
  ManeuverPlanner planner(enabled_config());

  // East serves phase B: red at t=0, green in the second half-cycle.
  std::vector<Vehicle> fleet;
  fleet.push_back(make_vehicle(net, 1, Arm::kEast, 0, Maneuver::kStraight,
                               /*s=*/40.0, /*speed=*/8.0));
  Vehicle& v = fleet.front();
  ASSERT_EQ(signals.state(Arm::kEast, 0.0), SignalController::Light::kRed);
  ASSERT_EQ(v.maneuver().state, ManeuverState::kFollowLane);

  planner.update(v, net, fleet, signals, 0.0);
  EXPECT_EQ(v.maneuver().state, ManeuverState::kStopAtLine);

  // Still red a tick later: stays put.
  planner.update(v, net, fleet, signals, 0.1);
  EXPECT_EQ(v.maneuver().state, ManeuverState::kStopAtLine);

  const double t_green = timing.green + timing.yellow + timing.all_red + 0.5;
  ASSERT_EQ(signals.state(Arm::kEast, t_green),
            SignalController::Light::kGreen);
  planner.update(v, net, fleet, signals, t_green);
  EXPECT_EQ(v.maneuver().state, ManeuverState::kFollowLane);
}

TEST(ManeuverPlanner, PastStopLineIgnoresRed) {
  RoadNetwork net{RoadConfig{}};
  SignalController signals(SignalController::Timing{});
  ManeuverPlanner planner(enabled_config());

  std::vector<Vehicle> fleet;
  const auto route_id = net.find_route(Arm::kEast, 0, Maneuver::kStraight);
  ASSERT_TRUE(route_id.has_value());
  const Route& route = net.route(*route_id);
  fleet.push_back(Vehicle(1, VehicleParams{}, *route_id,
                          route.stop_line_s + 1.0, 8.0));
  planner.update(fleet.front(), net, fleet, signals, 0.0);
  EXPECT_EQ(fleet.front().maneuver().state, ManeuverState::kFollowLane);
}

TEST(ManeuverPlanner, RedLightRunnerNeverStops) {
  RoadNetwork net{RoadConfig{}};
  SignalController signals(SignalController::Timing{});
  ManeuverPlanner planner(enabled_config());

  VehicleParams params;
  params.runs_red_light = true;
  const auto route_id = net.find_route(Arm::kEast, 0, Maneuver::kStraight);
  ASSERT_TRUE(route_id.has_value());
  std::vector<Vehicle> fleet;
  fleet.push_back(Vehicle(1, params, *route_id, 40.0, 8.0));
  planner.update(fleet.front(), net, fleet, signals, 0.0);
  EXPECT_EQ(fleet.front().maneuver().state, ManeuverState::kFollowLane);
}

TEST(ManeuverPlanner, DirectiveArmsThenCommitsInEmptyLane) {
  RoadNetwork net{RoadConfig{}};  // 2 lanes per direction
  SignalController signals(SignalController::Timing{});
  const ManeuverConfig cfg = enabled_config();
  ManeuverPlanner planner(cfg);

  // North is green at t=0, so the follow-lane branch runs.
  std::vector<Vehicle> fleet;
  fleet.push_back(make_vehicle(net, 7, Arm::kNorth, 1, Maneuver::kStraight,
                               /*s=*/20.0, /*speed=*/8.0));
  Vehicle& v = fleet.front();
  const int original_route = v.route_id();
  v.set_lane_change_directive(-1, /*trigger_s=*/10.0);

  // Tick 1: the directive arms (trigger passed, room before the stop line).
  planner.update(v, net, fleet, signals, 0.0);
  EXPECT_EQ(v.maneuver().state, ManeuverState::kChangeLaneLeft);
  EXPECT_EQ(v.maneuver().completed_changes, 0);

  // Tick 2: the lane is empty, so the gap is accepted and the change
  // commits — route switches to lane 0, the blend starts.
  planner.update(v, net, fleet, signals, 0.1);
  EXPECT_EQ(v.maneuver().completed_changes, 1);
  EXPECT_EQ(v.maneuver().desired_direction, 0);
  EXPECT_NE(v.route_id(), original_route);
  EXPECT_EQ(net.route(v.route_id()).entry_lane, 0);
  EXPECT_NE(v.lateral_offset(), 0.0);  // lint-ok: R6 blend must be engaged
  EXPECT_EQ(v.maneuver().state, ManeuverState::kChangeLaneLeft);

  // Ride the blend: the offset decays to exactly 0.0 within the configured
  // duration, at which point the machine returns to lane keeping.
  double now = 0.1;
  const int max_ticks =
      static_cast<int>(cfg.lane_change_duration / 0.1) + 10;
  for (int i = 0; i < max_ticks; ++i) {
    now += 0.1;
    v.advance(/*accel_cmd=*/0.0, /*dt=*/0.1);
    planner.update(v, net, fleet, signals, now);
  }
  EXPECT_EQ(v.lateral_offset(), 0.0);  // lint-ok: R6 exact-inert contract
  EXPECT_EQ(v.maneuver().state, ManeuverState::kFollowLane);
}

TEST(ManeuverPlanner, UnsatisfiableDirectiveIsDropped) {
  RoadNetwork net{RoadConfig{}};
  SignalController signals(SignalController::Timing{});
  ManeuverPlanner planner(enabled_config());

  // Lane 0 is the innermost: a left change has no target lane.
  std::vector<Vehicle> fleet;
  fleet.push_back(make_vehicle(net, 3, Arm::kNorth, 0, Maneuver::kStraight,
                               20.0, 8.0));
  Vehicle& v = fleet.front();
  v.set_lane_change_directive(-1, 0.0);
  planner.update(v, net, fleet, signals, 0.0);
  EXPECT_EQ(v.maneuver().state, ManeuverState::kFollowLane);
  EXPECT_EQ(v.maneuver().desired_direction, 0);
  EXPECT_EQ(v.maneuver().aborted_changes, 1);
}

TEST(ManeuverPlanner, PersistentGapRejectionAborts) {
  RoadNetwork net{RoadConfig{}};
  SignalController signals(SignalController::Timing{});
  const ManeuverConfig cfg = enabled_config();
  ManeuverPlanner planner(cfg);

  std::vector<Vehicle> fleet;
  fleet.push_back(make_vehicle(net, 1, Arm::kNorth, 1, Maneuver::kStraight,
                               20.0, 8.0));
  // A blocker alongside in the target lane: both gaps stay tiny.
  fleet.push_back(make_vehicle(net, 2, Arm::kNorth, 0, Maneuver::kStraight,
                               20.0, 8.0));
  Vehicle& v = fleet.front();
  v.set_lane_change_directive(-1, 0.0);

  planner.update(v, net, fleet, signals, 0.0);
  ASSERT_EQ(v.maneuver().state, ManeuverState::kChangeLaneLeft);
  ASSERT_EQ(v.maneuver().waiting_since, 0.0);  // lint-ok: R6 set-once stamp

  double now = 0.0;
  while (now <= cfg.abort_after + 0.2) {
    now += 0.1;
    planner.update(v, net, fleet, signals, now);
  }
  EXPECT_EQ(v.maneuver().state, ManeuverState::kFollowLane);
  EXPECT_EQ(v.maneuver().completed_changes, 0);
  EXPECT_EQ(v.maneuver().aborted_changes, 1);
  EXPECT_EQ(v.maneuver().desired_direction, 0);
}

TEST(ManeuverPlanner, RunsOutOfRoomBeforeStopLine) {
  RoadNetwork net{RoadConfig{}};
  SignalController signals(SignalController::Timing{});
  const ManeuverConfig cfg = enabled_config();
  ManeuverPlanner planner(cfg);

  const auto route_id = net.find_route(Arm::kNorth, 1, Maneuver::kStraight);
  ASSERT_TRUE(route_id.has_value());
  const Route& route = net.route(*route_id);
  std::vector<Vehicle> fleet;
  // Arm just barely inside the clearance window, then drive past it.
  fleet.push_back(Vehicle(1, VehicleParams{}, *route_id,
                          route.stop_line_s - cfg.stop_line_clearance - 0.5,
                          10.0));
  Vehicle& v = fleet.front();
  v.set_lane_change_directive(-1, 0.0);
  planner.update(v, net, fleet, signals, 0.0);
  ASSERT_EQ(v.maneuver().state, ManeuverState::kChangeLaneLeft);

  v.advance(0.0, 0.1);  // ~1 m forward: now inside the prohibition zone
  planner.update(v, net, fleet, signals, 0.1);
  EXPECT_EQ(v.maneuver().state, ManeuverState::kFollowLane);
  EXPECT_EQ(v.maneuver().aborted_changes, 1);
}

TEST(ManeuverPlanner, ObserveGapsSeesLeadAndLag) {
  RoadNetwork net{RoadConfig{}};
  ManeuverPlanner planner(enabled_config());

  std::vector<Vehicle> fleet;
  fleet.push_back(make_vehicle(net, 1, Arm::kNorth, 1, Maneuver::kStraight,
                               40.0, 8.0));
  fleet.push_back(make_vehicle(net, 2, Arm::kNorth, 0, Maneuver::kStraight,
                               60.0, 8.0));  // ahead in the target lane
  fleet.push_back(make_vehicle(net, 3, Arm::kNorth, 0, Maneuver::kStraight,
                               20.0, 5.0));  // behind in the target lane
  const auto target_id = planner.target_route(fleet[0], net, -1);
  ASSERT_TRUE(target_id.has_value());
  const GapObservation gap =
      planner.observe_gaps(fleet[0], net, fleet, net.route(*target_id));

  // Center gaps are 20 m; bumper gaps subtract both half-lengths (4.5 m
  // cars): 20 - 4.5 = 15.5.
  EXPECT_NEAR(gap.lead_gap, 15.5, 1e-9);
  EXPECT_NEAR(gap.lag_gap, 15.5, 1e-9);
  EXPECT_NEAR(gap.lag_speed, 5.0, 1e-12);
}

// --- World wiring ----------------------------------------------------------

TEST(ManeuverWorld, EnabledLayerExecutesDirectiveDuringStep) {
  WorldConfig wc;
  wc.maneuver.enabled = true;
  World world(RoadNetwork{RoadConfig{}}, wc);
  const auto route = world.network().find_route(Arm::kNorth, 1,
                                                Maneuver::kStraight);
  ASSERT_TRUE(route.has_value());
  const AgentId id = world.add_vehicle(VehicleParams{}, *route, 20.0, 8.0);
  world.find_vehicle(id)->set_lane_change_directive(-1, 10.0);

  for (int i = 0; i < 60; ++i) world.step();
  const Vehicle* v = world.find_vehicle(id);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->maneuver().completed_changes, 1);
  EXPECT_EQ(world.network().route(v->route_id()).entry_lane, 0);
}

TEST(ManeuverWorld, DisabledLayerIsExactlyInert) {
  // Twin worlds, identical except that one vehicle carries a lane-change
  // directive. With maneuver.enabled == false the planner never runs, so
  // the directive must change nothing — positions bit-identical.
  const auto build = [](bool with_directive) {
    WorldConfig wc;  // maneuver.enabled defaults to false
    World world(RoadNetwork{RoadConfig{}}, wc);
    const auto route = world.network().find_route(Arm::kNorth, 1,
                                                  Maneuver::kStraight);
    const AgentId id = world.add_vehicle(VehicleParams{}, *route, 20.0, 8.0);
    if (with_directive) {
      world.find_vehicle(id)->set_lane_change_directive(-1, 10.0);
    }
    return world;
  };
  World a = build(false);
  World b = build(true);
  for (int i = 0; i < 80; ++i) {
    a.step();
    b.step();
  }
  const Vehicle& va = a.vehicles().front();
  const Vehicle& vb = b.vehicles().front();
  EXPECT_EQ(va.s(), vb.s());          // lint-ok: R6 bit-identical contract
  EXPECT_EQ(va.speed(), vb.speed());  // lint-ok: R6 bit-identical contract
  EXPECT_EQ(vb.lateral_offset(), 0.0);  // lint-ok: R6 exact-inert contract
  EXPECT_EQ(vb.route_id(), va.route_id());
  EXPECT_EQ(vb.maneuver().state, ManeuverState::kFollowLane);
  EXPECT_EQ(vb.maneuver().completed_changes, 0);
}

}  // namespace
}  // namespace erpd::sim
