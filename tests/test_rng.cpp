#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/rng.hpp"

namespace erpd::core {
namespace {

// NormalSampler's whole reason to exist is bit-for-bit agreement with
// std::normal_distribution<double>: LidarSensor swapped the latter for the
// former on its hot path, and the committed behavior fingerprints assume the
// draw streams are indistinguishable. These tests pin exact equality (==, not
// EXPECT_NEAR) across generators, seeds, sigmas, and the saved-deviate cache.

TEST(NormalSampler, MatchesStdNormalDistributionSplitMix64) {
  const std::uint64_t seeds[] = {0,          1,
                                 42,         0xdeadbeef,
                                 ~0ull,      seed_mix(7, 123)};
  for (const std::uint64_t seed : seeds) {
    SplitMix64 ga(seed);
    SplitMix64 gb(seed);
    std::normal_distribution<double> ref(0.0, 1.0);
    NormalSampler ours(0.0, 1.0);
    for (int i = 0; i < 100000; ++i) {
      ASSERT_EQ(ref(ga), ours(gb)) << "seed=" << seed << " draw=" << i;
    }
  }
}

TEST(NormalSampler, MatchesStdNormalDistributionMt19937_64) {
  for (std::uint64_t seed : {3ull, 999ull, 0x123456789abcdefull}) {
    std::mt19937_64 ga = seeded_rng(seed);
    std::mt19937_64 gb = seeded_rng(seed);
    std::normal_distribution<double> ref(0.0, 1.0);
    NormalSampler ours(0.0, 1.0);
    for (int i = 0; i < 100000; ++i) {
      ASSERT_EQ(ref(ga), ours(gb)) << "seed=" << seed << " draw=" << i;
    }
  }
}

TEST(NormalSampler, MatchesAcrossMeanAndSigma) {
  const double means[] = {0.0, -3.5, 1e-9, 1234.5};
  const double sigmas[] = {0.01, 0.02, 1.0, 17.25, 1e-12};
  for (const double mean : means) {
    for (const double sigma : sigmas) {
      SplitMix64 ga(seed_mix(99, 1));
      SplitMix64 gb(seed_mix(99, 1));
      std::normal_distribution<double> ref(mean, sigma);
      NormalSampler ours(mean, sigma);
      for (int i = 0; i < 20000; ++i) {
        ASSERT_EQ(ref(ga), ours(gb)) << "mean=" << mean << " sigma=" << sigma;
      }
    }
  }
}

// The lidar constructs a fresh distribution per azimuth and takes at most a
// few dozen draws from each — exercise exactly that pattern, odd and even
// draw counts alike, so the saved-deviate cache is covered in both parities.
TEST(NormalSampler, FreshPerUnitStreamsMatch) {
  for (std::uint64_t base : {11ull, 77ull}) {
    for (int unit = 0; unit < 2000; ++unit) {
      SplitMix64 ga(seed_mix(base, unit));
      SplitMix64 gb(seed_mix(base, unit));
      std::normal_distribution<double> ref(0.0, 0.02);
      NormalSampler ours(0.0, 0.02);
      const int draws = 1 + unit % 33;
      for (int i = 0; i < draws; ++i) {
        ASSERT_EQ(ref(ga), ours(gb)) << "unit=" << unit << " draw=" << i;
      }
    }
  }
}

// Both sides must consume the same number of generator values, otherwise a
// shared generator would desynchronize downstream consumers.
TEST(NormalSampler, ConsumesSameGeneratorOutputCount) {
  SplitMix64 ga(5);
  SplitMix64 gb(5);
  std::normal_distribution<double> ref(0.0, 1.0);
  NormalSampler ours(0.0, 1.0);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(ref(ga), ours(gb));
    // Drawing a raw value from each generator keeps them aligned only if the
    // distributions consumed identical counts so far.
    ASSERT_EQ(ga(), gb()) << "draw count diverged by draw " << i;
  }
}

// fill() must write the exact sequence of sequential operator() calls and
// leave the sampler + generator in the same state — for every batch length
// (odd and even, below and above the internal pair-batch size) and from
// every saved-deviate entry parity.
TEST(NormalSampler, BatchFillMatchesSequentialDraws) {
  for (std::uint64_t seed : {3ull, 991ull}) {
    for (std::size_t lead = 0; lead < 3; ++lead) {    // entry-state parity
      for (std::size_t n = 0; n <= 150; n += 7) {     // crosses kBatchPairs
        SplitMix64 ga(seed_mix(seed, lead, n));
        SplitMix64 gb(seed_mix(seed, lead, n));
        NormalSampler seq(1.5, 0.25);
        NormalSampler bat(1.5, 0.25);
        for (std::size_t i = 0; i < lead; ++i) {
          ASSERT_EQ(seq(ga), bat(gb));
        }
        std::vector<double> got(n, 0.0);
        bat.fill(gb, got.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(seq(ga), got[i]) << "n=" << n << " i=" << i;
        }
        // Post-batch state: the next draws and generator consumption agree.
        for (int i = 0; i < 4; ++i) {
          ASSERT_EQ(seq(ga), bat(gb));
        }
        ASSERT_EQ(ga(), gb());
      }
    }
  }
}

}  // namespace
}  // namespace erpd::core
