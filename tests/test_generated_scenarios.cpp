// Replays the committed scenario-search anchors (ctest label: generated).
//
// Each file under tests/scenarios/ is a minimized ScenarioSpec the search
// harness (tools/scenario_search) found and ddmin-reduced, with the observed
// outcome pinned in its `expect` line. Replaying an anchor must reproduce
// that outcome EXACTLY — collision count and minimum gaps bit-for-bit
// (hexfloats in, hexfloats compared) — so any behavioral drift in the
// simulator, the maneuver layer or the dissemination loop shows up as a
// regression here, not as a silently different crash.
//
// When behavior changes intentionally, re-pin with
//   tools/scenario_search --replay <file>   (or regenerate the anchor)
// and commit the diff.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "edge/system_runner.hpp"
#include "sim/scenario_gen.hpp"

namespace erpd {
namespace {

struct Anchor {
  const char* file;
  /// At least one vehicle must complete a lane change during the replay.
  bool requires_lane_change;
};

// The committed anchor set. Listed explicitly (not globbed) so a missing
// file is a loud failure, not a silently shrunk suite.
const Anchor kAnchors[] = {
    {"seed2_near-miss.scn", false},
    {"seed9_collision.scn", true},  // minimized with --require-lane-change
    {"seed11_near-miss.scn", false},
    {"seed12_collision.scn", false},
    {"seed19_collision.scn", false},
};

std::string read_anchor(const std::string& name) {
  const std::string path =
      std::string(ERPD_TESTS_DIR) + "/scenarios/" + name;
  std::ifstream f(path);
  EXPECT_TRUE(f) << "missing committed anchor " << path;
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(GeneratedScenarios, AnchorsReplayToPinnedOutcomes) {
  for (const Anchor& anchor : kAnchors) {
    SCOPED_TRACE(anchor.file);
    const std::string text = read_anchor(anchor.file);
    ASSERT_FALSE(text.empty());

    const sim::SpecParseResult parsed = sim::try_parse_spec(text);
    ASSERT_TRUE(parsed.ok())
        << sim::to_string(parsed.status) << " at line " << parsed.line
        << ": " << parsed.message;
    const sim::ScenarioSpec& spec = parsed.spec;
    ASSERT_TRUE(spec.expect.present)
        << "anchor has no pinned expectations — re-pin it";

    // The exact profile the search harness ran under.
    sim::Scenario sc = sim::build_scenario(spec, sim::search_world_config());
    edge::RunnerConfig rc = edge::make_runner_config(edge::Method::kOurs);
    rc.duration = spec.duration;
    edge::SystemRunner runner(rc);
    runner.run(sc);

    const sim::World& world = sc.world;
    EXPECT_EQ(static_cast<int>(world.collisions().size()),
              spec.expect.collisions);
    // Bit-exact: the anchor pins hexfloats, the replay must land on the
    // identical doubles (this is the determinism contract, not a tolerance
    // question).
    EXPECT_EQ(world.min_vehicle_distance(),  // lint-ok: R6 bit-exact pin
              spec.expect.min_vehicle_gap);
    EXPECT_EQ(world.min_vehicle_pedestrian_distance(),  // lint-ok: R6 as above
              spec.expect.min_ped_gap);

    if (anchor.requires_lane_change) {
      int completed = 0;
      for (const sim::Vehicle& v : world.vehicles()) {
        completed += v.maneuver().completed_changes;
      }
      EXPECT_GE(completed, 1)
          << "anchor was selected to exercise a lane change, but none ran";
    }
  }
}

TEST(GeneratedScenarios, AnchorsRoundTripThroughTheirOwnText) {
  // Committed files may carry comments; emit(parse(file)) is the canonical
  // form and must itself re-parse to the same spec.
  for (const Anchor& anchor : kAnchors) {
    SCOPED_TRACE(anchor.file);
    const sim::SpecParseResult first = sim::try_parse_spec(
        read_anchor(anchor.file));
    ASSERT_TRUE(first.ok());
    const std::string canonical = sim::emit_spec(first.spec);
    const sim::SpecParseResult second = sim::try_parse_spec(canonical);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(sim::emit_spec(second.spec), canonical);
  }
}

}  // namespace
}  // namespace erpd
