#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "geom/angle.hpp"
#include "sim/lidar.hpp"

// Randomized brute-force-equivalence suite for the accelerated LiDAR scan
// (DESIGN.md §14). The azimuth-interval index, SoA ray casting, hoisted tan
// table, and NormalSampler noise path promise BIT-identical output to the
// retained reference path (set_brute_force / ERPD_LIDAR_BRUTE_FORCE) — not
// merely numerically-close output: the pipeline's behavior fingerprints and
// golden snapshots hash the cloud bytes. So every comparison below is on
// exact bit patterns, never EXPECT_NEAR.

namespace erpd::sim {
namespace {

using geom::Obb;
using geom::Pose;
using geom::Vec2;

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_identical(const LidarScan& ref, const LidarScan& got,
                      std::uint64_t case_seed) {
  ASSERT_EQ(ref.cloud.size(), got.cloud.size()) << "case " << case_seed;
  for (std::size_t i = 0; i < ref.cloud.size(); ++i) {
    const geom::Vec3& a = ref.cloud[i];
    const geom::Vec3& b = got.cloud[i];
    ASSERT_TRUE(same_bits(a.x, b.x) && same_bits(a.y, b.y) &&
                same_bits(a.z, b.z))
        << "case " << case_seed << " point " << i << ": (" << a.x << ", "
        << a.y << ", " << a.z << ") vs (" << b.x << ", " << b.y << ", " << b.z
        << ")";
  }
  ASSERT_EQ(ref.ground_points, got.ground_points) << "case " << case_seed;
  ASSERT_EQ(ref.static_points, got.static_points) << "case " << case_seed;
  ASSERT_EQ(ref.points_per_agent.size(), got.points_per_agent.size())
      << "case " << case_seed;
  for (const auto& [id, n] : ref.points_per_agent) {
    const auto it = got.points_per_agent.find(id);
    ASSERT_NE(it, got.points_per_agent.end())
        << "case " << case_seed << " agent " << id;
    ASSERT_EQ(it->second, n) << "case " << case_seed << " agent " << id;
  }
}

LidarScan run_scan(LidarSensor& lidar, bool brute, const Pose& pose,
                   const std::vector<LidarTarget>& targets,
                   std::uint64_t seed) {
  lidar.set_brute_force(brute);
  std::mt19937_64 rng = core::seeded_rng(seed);
  return lidar.scan(pose, targets, rng);
}

/// Seeded random scene: eye pose plus a target soup that deliberately covers
/// the index's hard cases — spans wrapping across +-pi, long walls whose
/// circumcircle swallows the eye (full-pi subtended span), boxes containing
/// the eye, boxes straddling or beyond max_range, degenerate thin boxes.
struct RandomCase {
  Pose pose;
  std::vector<LidarTarget> targets;
  LidarConfig cfg;
};

class LidarEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

RandomCase random_case(std::uint64_t case_seed) {
  std::mt19937_64 rng = core::seeded_rng(case_seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const auto uniform = [&](double lo, double hi) {
    return lo + (hi - lo) * u01(rng);
  };

  RandomCase out;
  out.cfg.channels = 8;
  out.cfg.azimuth_step_deg = 2.0;
  out.cfg.max_range = 50.0;
  // Mix noisy and noiseless sensors; noise exercises the NormalSampler
  // stream, noiseless the untouched-RNG contract.
  out.cfg.noise_sigma = u01(rng) < 0.8 ? 0.02 : 0.0;
  if (u01(rng) < 0.2) out.cfg.azimuth_step_deg = 0.9;  // finer bins
  if (u01(rng) < 0.2) out.cfg.channels = 17;

  out.pose.position = {{uniform(-40.0, 40.0), uniform(-40.0, 40.0)},
                       uniform(0.3, 3.0)};
  out.pose.yaw = uniform(-geom::kPi, geom::kPi);

  const int n_targets = 1 + static_cast<int>(uniform(0.0, 24.0));
  for (int i = 0; i < n_targets; ++i) {
    LidarTarget t;
    Vec2 center{uniform(-70.0, 70.0), uniform(-70.0, 70.0)};
    double length = uniform(0.3, 6.0);
    double width = uniform(0.3, 3.0);
    const double kind = u01(rng);
    if (kind < 0.2) {
      // Long wall: circumcircle frequently swallows the eye (full-pi span
      // in the brute path, corner-tight interval in the index).
      length = uniform(30.0, 70.0);
      width = uniform(0.5, 2.5);
    } else if (kind < 0.3) {
      // Box sitting on (or containing) the eye: t = 0 hits at every azimuth.
      center = out.pose.position.xy() + Vec2{uniform(-2.0, 2.0),
                                             uniform(-2.0, 2.0)};
      length = uniform(1.0, 8.0);
      width = uniform(1.0, 8.0);
    }
    t.footprint = Obb{center, uniform(-geom::kPi, geom::kPi), length, width};
    t.base_z = u01(rng) < 0.7 ? 0.0 : uniform(0.0, 2.0);
    t.height = uniform(0.4, 9.0);
    t.id = u01(rng) < 0.25 ? static_cast<AgentId>(-1 - i)
                           : static_cast<AgentId>(i);
    out.targets.push_back(t);
  }
  return out;
}

TEST_P(LidarEquivalence, AcceleratedMatchesBruteForceBitExact) {
  const std::uint64_t block = GetParam();
  constexpr std::uint64_t kCasesPerBlock = 150;
  for (std::uint64_t k = 0; k < kCasesPerBlock; ++k) {
    const std::uint64_t case_seed = core::seed_mix(block, k);
    const RandomCase rc = random_case(case_seed);
    LidarSensor lidar(rc.cfg);
    const LidarScan ref =
        run_scan(lidar, /*brute=*/true, rc.pose, rc.targets, case_seed);
    const LidarScan got =
        run_scan(lidar, /*brute=*/false, rc.pose, rc.targets, case_seed);
    expect_identical(ref, got, case_seed);
  }
}

// 8 blocks x 150 cases = 1200 randomized scenes.
INSTANTIATE_TEST_SUITE_P(Blocks, LidarEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// The accelerated path must stay worker-count independent as well as
// brute-equivalent: same bits at 1, 2, and 8 workers.
TEST(LidarEquivalenceWorkers, AcceleratedMatchesBruteAcrossWorkerCounts) {
  for (std::uint64_t k = 0; k < 40; ++k) {
    const std::uint64_t case_seed = core::seed_mix(0xa11, k);
    const RandomCase rc = random_case(case_seed);
    LidarSensor lidar(rc.cfg);
    core::set_thread_count(1);
    const LidarScan ref =
        run_scan(lidar, /*brute=*/true, rc.pose, rc.targets, case_seed);
    for (const int workers : {1, 2, 8}) {
      core::set_thread_count(workers);
      const LidarScan got =
          run_scan(lidar, /*brute=*/false, rc.pose, rc.targets, case_seed);
      expect_identical(ref, got, case_seed);
    }
  }
  core::set_thread_count(0);
}

// Directed wrap-around case: a wall dead astern straddles the +-pi azimuth
// seam, so its bin range wraps modulo n_az.
TEST(LidarEquivalenceDirected, WrapAroundSpan) {
  LidarConfig cfg;
  cfg.channels = 16;
  cfg.azimuth_step_deg = 1.0;
  cfg.noise_sigma = 0.02;
  LidarSensor lidar(cfg);
  Pose pose;
  pose.position = {{0.0, 0.0}, 1.8};
  const std::vector<LidarTarget> targets = {
      {Obb{{-20.0, 0.0}, 0.0, 8.0, 6.0}, 0.0, 2.5, 1},   // dead astern
      {Obb{{-30.0, 0.5}, 0.3, 40.0, 2.0}, 0.0, 4.0, -2},  // wall across seam
  };
  const LidarScan ref = run_scan(lidar, true, pose, targets, 77);
  const LidarScan got = run_scan(lidar, false, pose, targets, 77);
  expect_identical(ref, got, 77);
  EXPECT_TRUE(got.sees(1));
}

// Directed full-span case: eye inside a wall's circumcircle (brute path
// probes it at every azimuth) and inside another box outright (t = 0 hits
// all around).
TEST(LidarEquivalenceDirected, EyeInsideCircumcircleAndBox) {
  LidarConfig cfg;
  cfg.channels = 16;
  cfg.azimuth_step_deg = 1.0;
  cfg.noise_sigma = 0.02;
  LidarSensor lidar(cfg);
  Pose pose;
  pose.position = {{1.0, 1.5}, 1.8};
  const std::vector<LidarTarget> targets = {
      // 55 m wall: circumradius ~27.5 m, eye well inside the circumcircle.
      {Obb{{10.0, 5.0}, 0.1, 55.0, 2.0}, 0.0, 4.0, -1},
      // Box containing the eye.
      {Obb{{0.0, 0.0}, 0.7, 6.0, 6.0}, 0.0, 2.0, 2},
      {Obb{{15.0, -3.0}, 0.0, 4.5, 1.9}, 0.0, 1.6, 3},
  };
  const LidarScan ref = run_scan(lidar, true, pose, targets, 78);
  const LidarScan got = run_scan(lidar, false, pose, targets, 78);
  expect_identical(ref, got, 78);
}

// ERPD_LIDAR_BRUTE_FORCE must reach the sensor through the environment too
// (the env path is how whole-pipeline cross-checks run without a rebuild);
// exercised via the constructor-read flag.
TEST(LidarEquivalenceDirected, EnvFlagSelectsReferencePath) {
  LidarConfig cfg;
  cfg.channels = 4;
  cfg.azimuth_step_deg = 4.0;
  ASSERT_EQ(setenv("ERPD_LIDAR_BRUTE_FORCE", "1", 1), 0);
  const LidarSensor brute(cfg);
  ASSERT_EQ(unsetenv("ERPD_LIDAR_BRUTE_FORCE"), 0);
  const LidarSensor accel(cfg);
  EXPECT_TRUE(brute.brute_force());
  EXPECT_FALSE(accel.brute_force());
}

}  // namespace
}  // namespace erpd::sim
