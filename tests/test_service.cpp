// Unit tests for the service-mode edge pipeline (DESIGN.md §17): the
// deterministic MPSC ingest queue (capacity, backpressure fates, drain
// order under 1/2/8 parallel producers — the TSan-run stress for the
// determinism suite), the LatencyBudget grant discipline, the SLO-aware
// admission controller's admit/defer/shed fate partition, and the
// off-by-default bit-identity contract of ServiceConfig.

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "core/check.hpp"
#include "core/mpsc_queue.hpp"
#include "core/thread_pool.hpp"
#include "edge/service.hpp"
#include "edge/system_runner.hpp"
#include "net/channel.hpp"
#include "obs/metrics.hpp"
#include "scenario_harness.hpp"

namespace erpd {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 8};

/// Restores the auto pool size when a test exits.
struct PoolGuard {
  ~PoolGuard() { core::set_thread_count(0); }
};

// ---------------------------------------------------------------------------
// MpscLaneQueue
// ---------------------------------------------------------------------------

TEST(MpscLaneQueue, RejectsZeroLaneDepth) {
  EXPECT_THROW((core::MpscLaneQueue<int>(4, 0)), erpd::ContractViolation);
}

TEST(MpscLaneQueue, LaneCapacityBoundsPushes) {
  core::MpscLaneQueue<int> q(2, 2);
  EXPECT_TRUE(q.try_push(0, 10));
  EXPECT_TRUE(q.try_push(0, 11));
  EXPECT_FALSE(q.try_push(0, 12));  // lane 0 full
  EXPECT_TRUE(q.try_push(1, 20));   // other lanes unaffected
  EXPECT_EQ(q.size(), 3u);
}

TEST(MpscLaneQueue, DrainDeliversInLaneThenPushOrder) {
  core::MpscLaneQueue<int> q(3, 4);
  // Push out of lane order on purpose: drain order must depend only on the
  // lane indices, never on arrival order.
  EXPECT_TRUE(q.try_push(2, 30));
  EXPECT_TRUE(q.try_push(0, 10));
  EXPECT_TRUE(q.try_push(1, 20));
  EXPECT_TRUE(q.try_push(0, 11));

  std::vector<int> got;
  const auto stats = q.drain(
      0, [&](int v) { got.push_back(v); }, [](int) { FAIL(); });
  EXPECT_EQ(got, (std::vector<int>{10, 11, 20, 30}));
  EXPECT_EQ(stats.delivered, 4u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(q.size(), 0u);  // drain leaves the queue empty
}

TEST(MpscLaneQueue, DrainCapDropsHighestLanesExactlyOnce) {
  core::MpscLaneQueue<int> q(4, 1);
  for (std::size_t lane = 0; lane < 4; ++lane) {
    ASSERT_TRUE(q.try_push(lane, static_cast<int>(lane)));
  }
  std::vector<int> delivered;
  std::vector<int> dropped;
  const auto stats = q.drain(
      3, [&](int v) { delivered.push_back(v); },
      [&](int v) { dropped.push_back(v); });
  // Lanes drain in ascending order, so the cap always drops the tail.
  EXPECT_EQ(delivered, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(dropped, (std::vector<int>{3}));
  EXPECT_EQ(stats.delivered, 3u);
  EXPECT_EQ(stats.dropped, 1u);
}

TEST(MpscLaneQueue, ClearEmptiesAndLanesAreReusable) {
  core::MpscLaneQueue<int> q(2, 1);
  EXPECT_TRUE(q.try_push(0, 1));
  q.clear();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.try_push(0, 2));  // capacity restored after clear
  int got = 0;
  q.drain(0, [&](int v) { got = v; }, [](int) { FAIL(); });
  EXPECT_EQ(got, 2);
}

// The determinism/TSan stress: parallel producers (one lane each, the
// pipeline's fan-out discipline) must yield a drain sequence that is
// bit-identical across worker counts — and data-race-free under TSan.
TEST(MpscLaneQueue, DrainOrderIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  constexpr std::size_t kLanes = 64;
  constexpr std::size_t kPerLane = 8;

  const auto produce_and_drain = [](std::size_t threads) {
    core::set_thread_count(threads);
    core::MpscLaneQueue<std::uint64_t> q(kLanes, kPerLane);
    core::parallel_for(kLanes, 1, [&](std::size_t lane) {
      for (std::size_t k = 0; k < kPerLane; ++k) {
        ASSERT_TRUE(q.try_push(lane, lane * 1000 + k));
      }
    });
    // Pool join above is the happens-before edge; drain single-threaded.
    std::vector<std::uint64_t> out;
    out.reserve(kLanes * kPerLane);
    q.drain(
        0, [&](std::uint64_t v) { out.push_back(v); },
        [](std::uint64_t) { FAIL(); });
    return out;
  };

  const std::vector<std::uint64_t> ref = produce_and_drain(1);
  ASSERT_EQ(ref.size(), kLanes * kPerLane);
  for (const std::size_t t : kThreadCounts) {
    EXPECT_EQ(produce_and_drain(t), ref) << t << " threads";
  }
}

// ---------------------------------------------------------------------------
// LatencyBudget
// ---------------------------------------------------------------------------

TEST(LatencyBudget, GrantDisciplineMatchesFrameBudget) {
  net::LatencyBudget b(1000);
  EXPECT_EQ(b.remaining(), 1000u);
  EXPECT_TRUE(b.try_grant(600));
  EXPECT_FALSE(b.try_grant(500));  // denied grant leaves the budget intact
  EXPECT_EQ(b.remaining(), 400u);
  EXPECT_TRUE(b.try_grant(400));  // freed headroom re-granted to smaller work
  EXPECT_EQ(b.remaining(), 0u);
  b.reset();
  EXPECT_EQ(b.remaining(), 1000u);
}

TEST(LatencyBudget, AttachedCountersRecordEveryDecision) {
  obs::MetricsRegistry reg;
  net::LatencyBudget b(100);
  b.attach(&reg.counter("granted"), &reg.counter("denied"));
  EXPECT_TRUE(b.try_grant(60));
  EXPECT_FALSE(b.try_grant(50));
  EXPECT_EQ(reg.counter("granted").value(), 60u);
  EXPECT_EQ(reg.counter("denied").value(), 50u);
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

net::UploadFrame service_frame(sim::AgentId vehicle, double timestamp,
                               std::vector<std::size_t> object_points) {
  net::UploadFrame f;
  f.vehicle = vehicle;
  f.timestamp = timestamp;
  f.upload_seq = static_cast<std::uint64_t>(timestamp * 10.0);
  for (const std::size_t pts : object_points) {
    net::ObjectUpload o;
    o.object_granular = true;
    o.centroid_world = {5.0, 0.0, 0.5};
    o.point_count = pts;
    o.bytes = 64;
    f.objects.push_back(o);
  }
  return f;
}

std::size_t total_objects(const std::vector<net::UploadFrame>& frames) {
  std::size_t n = 0;
  for (const net::UploadFrame& f : frames) n += f.objects.size();
  return n;
}

TEST(ServiceConfig, ValidateRejectsBadValues) {
  edge::ServiceConfig cfg;
  cfg.queue_lane_depth = 0;
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  cfg = {};
  cfg.max_defer_frames = -1;
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  cfg = {};
  cfg.cost_per_point_ns = 0;
  cfg.cost_per_object_ns = 0;
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  EXPECT_NO_THROW(edge::ServiceConfig{}.validate());
}

TEST(AdmissionController, ZeroBudgetPassesEverythingThrough) {
  edge::ServiceConfig cfg;
  cfg.enabled = true;  // budget stays 0: no latency shedding
  edge::AdmissionController ac(cfg);
  edge::ServiceStats stats;
  const auto out =
      ac.run({service_frame(1, 0.1, {50, 20}), service_frame(2, 0.1, {30})},
             0.1, &stats);
  EXPECT_EQ(total_objects(out), 3u);
  EXPECT_EQ(stats.arrived_objects, 3u);
  EXPECT_EQ(stats.admitted_objects, 3u);
  EXPECT_EQ(stats.deferred_objects, 0u);
  EXPECT_EQ(stats.shed_objects, 0u);
  EXPECT_EQ(ac.parked_count(), 0u);
}

TEST(AdmissionController, BudgetShedsSmallestCloudsFirst) {
  edge::ServiceConfig cfg;
  cfg.enabled = true;
  cfg.cost_per_object_ns = 1000;
  cfg.cost_per_point_ns = 100;
  cfg.max_defer_frames = 0;  // shed immediately, no parking
  cfg.decode_merge_budget_us = 13;  // 13000 ns
  edge::AdmissionController ac(cfg);
  edge::ServiceStats stats;
  // Costs: 100 pts -> 11000 ns, 50 pts -> 6000 ns, 10 pts -> 2000 ns.
  // Value order admits the 100-point cloud (11000), then denies the
  // 50-point one (6000 > 2000 left) but still re-grants the freed headroom
  // to the 10-point cloud (2000 ns) — FrameBudget's discipline.
  const auto out = ac.run(
      {service_frame(1, 0.1, {10}), service_frame(2, 0.1, {100, 50})}, 0.1,
      &stats);
  EXPECT_EQ(stats.arrived_objects, 3u);
  EXPECT_EQ(stats.admitted_objects, 2u);
  EXPECT_EQ(stats.shed_objects, 1u);
  EXPECT_EQ(stats.admitted_cost_ns, 13000u);
  ASSERT_EQ(total_objects(out), 2u);
  // Both fresh frame skeletons survive (validated poses) even where an
  // object was shed.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].objects.size(), 1u);
  EXPECT_EQ(out[0].objects[0].point_count, 10u);
  EXPECT_EQ(out[1].objects.size(), 1u);
  EXPECT_EQ(out[1].objects[0].point_count, 100u);
}

TEST(AdmissionController, DeniedWorkIsParkedThenReadmittedWithPriority) {
  edge::ServiceConfig cfg;
  cfg.enabled = true;
  cfg.cost_per_object_ns = 1000;
  cfg.cost_per_point_ns = 100;
  cfg.decode_merge_budget_us = 12;  // fits one 100-point object per frame
  cfg.max_defer_frames = 3;
  edge::AdmissionController ac(cfg);

  // Frame 1: two equally expensive objects from two vehicles; vehicle 1 wins
  // the tie-break, vehicle 2's object is deferred.
  edge::ServiceStats s1;
  ac.run({service_frame(1, 0.1, {100}), service_frame(2, 0.1, {100})}, 0.1,
         &s1);
  EXPECT_EQ(s1.admitted_objects, 1u);
  EXPECT_EQ(s1.deferred_objects, 1u);
  EXPECT_EQ(ac.parked_count(), 1u);

  // Frame 2: the parked object (age 1) outranks an equally big fresh one and
  // is re-admitted first; the fresh one parks in turn.
  edge::ServiceStats s2;
  const auto out2 = ac.run({service_frame(1, 0.2, {100})}, 0.2, &s2);
  EXPECT_EQ(s2.carried_objects, 1u);
  EXPECT_EQ(s2.admitted_objects, 1u);
  EXPECT_EQ(s2.deferred_objects, 1u);
  EXPECT_EQ(ac.parked_count(), 1u);
  // The re-admitted parked frame is emitted before the fresh skeleton so
  // fresh poses win in the edge's fleet registry.
  ASSERT_EQ(out2.size(), 2u);
  EXPECT_EQ(out2[0].vehicle, 2);
  EXPECT_EQ(out2[0].objects.size(), 1u);
  EXPECT_EQ(out2[1].vehicle, 1);
  EXPECT_TRUE(out2[1].objects.empty());
}

TEST(AdmissionController, DeferralExpiresIntoShedAtMaxDeferFrames) {
  edge::ServiceConfig cfg;
  cfg.enabled = true;
  cfg.cost_per_object_ns = 1000;
  cfg.cost_per_point_ns = 100;
  cfg.decode_merge_budget_us = 12;
  cfg.max_defer_frames = 2;
  edge::AdmissionController ac(cfg);

  // Each frame two fresh 100-point objects arrive but the budget fits only
  // one, so the backlog grows. Deferrals re-enter one frame older; once the
  // oldest loser reaches max_defer_frames it can no longer be parked and is
  // shed.
  std::size_t shed = 0;
  std::size_t arrived = 0;
  std::size_t admitted = 0;
  for (int frame = 0; frame < 6; ++frame) {
    edge::ServiceStats s;
    const double t = 0.1 * (frame + 1);
    ac.run({service_frame(1, t, {100, 100})}, t, &s);
    ASSERT_EQ(s.arrived_objects + s.carried_objects,
              s.admitted_objects + s.deferred_objects + s.shed_objects)
        << "frame " << frame;
    shed += s.shed_objects;
    arrived += s.arrived_objects;
    admitted += s.admitted_objects;
  }
  EXPECT_GT(shed, 0u);  // expiry engaged
  // Run-level identity: arrived == admitted + shed + still parked.
  EXPECT_EQ(arrived, admitted + shed + ac.parked_count());
}

TEST(AdmissionController, ParkingLotCapacityOverflowsIntoShed) {
  edge::ServiceConfig cfg;
  cfg.enabled = true;
  cfg.cost_per_object_ns = 1000;
  cfg.cost_per_point_ns = 100;
  cfg.decode_merge_budget_us = 1;  // 1000 ns: nothing with points fits
  cfg.defer_capacity = 2;
  edge::AdmissionController ac(cfg);
  edge::ServiceStats stats;
  ac.run({service_frame(1, 0.1, {10, 10, 10, 10})}, 0.1, &stats);
  EXPECT_EQ(stats.arrived_objects, 4u);
  EXPECT_EQ(stats.admitted_objects, 0u);
  EXPECT_EQ(stats.deferred_objects, 2u);  // defer_capacity
  EXPECT_EQ(stats.shed_objects, 2u);      // overflow sheds
  EXPECT_EQ(ac.parked_count(), 2u);
}

TEST(AdmissionController, CountersRecordThroughTheRegistry) {
  obs::MetricsRegistry reg;
  edge::ServiceConfig cfg;
  cfg.enabled = true;
  cfg.cost_per_object_ns = 1000;
  cfg.cost_per_point_ns = 100;
  cfg.decode_merge_budget_us = 12;
  cfg.max_defer_frames = 0;
  edge::AdmissionController ac(cfg);
  ac.attach_metrics(&reg);
  edge::ServiceStats stats;
  ac.run({service_frame(1, 0.1, {100, 100})}, 0.1, &stats);
  EXPECT_EQ(reg.counter("service.arrived_objects").value(), 2u);
  EXPECT_EQ(reg.counter("service.admitted_objects").value(), 1u);
  EXPECT_EQ(reg.counter("service.shed_objects").value(), 1u);
  EXPECT_EQ(reg.counter("service.budget_granted_ns").value(), 11000u);
  EXPECT_GT(reg.counter("service.budget_denied_ns").value(), 0u);
}

// ---------------------------------------------------------------------------
// Closed loop: the off-by-default contract and the service-on smoke.
// ---------------------------------------------------------------------------

std::uint64_t closed_loop_fingerprint(const edge::ServiceConfig& service) {
  sim::Scenario sc =
      sim::make_unprotected_left_turn(harness::default_intersection(42));
  edge::RunnerConfig rc = edge::make_runner_config(edge::Method::kOurs);
  rc.duration = 3.0;
  rc.service = service;
  edge::SystemRunner runner(rc);
  return harness::metrics_fingerprint(runner.run(sc));
}

TEST(ServiceMode, DisabledConfigIsBitIdenticalWhateverTheKnobsSay) {
  PoolGuard guard;
  core::set_thread_count(1);
  const std::uint64_t ref = closed_loop_fingerprint(edge::ServiceConfig{});
  // enabled=false must gate every other knob: junk values change nothing.
  edge::ServiceConfig junk;
  junk.enabled = false;
  junk.queue_lane_depth = 1;
  junk.queue_drain_max = 1;
  junk.decode_merge_budget_us = 1;
  junk.cost_per_point_ns = 1;
  junk.cost_per_object_ns = 1;
  junk.defer_capacity = 1;
  junk.max_defer_frames = 0;
  EXPECT_EQ(closed_loop_fingerprint(junk), ref);
}

TEST(ServiceMode, EnabledClosedLoopHoldsTheRunLevelFateIdentity) {
  PoolGuard guard;
  core::set_thread_count(2);
  sim::Scenario sc =
      sim::make_unprotected_left_turn(harness::default_intersection(42));
  edge::RunnerConfig rc = edge::make_runner_config(edge::Method::kOurs);
  rc.duration = 3.0;
  rc.service.enabled = true;
  rc.service.decode_merge_budget_us = 60;
  edge::SystemRunner runner(rc);
  const edge::MethodMetrics m = runner.run(sc);
  EXPECT_GT(m.service_arrived_objects, 0);
  EXPECT_GT(m.service_admitted_objects, 0);
  EXPECT_EQ(m.service_arrived_objects,
            m.service_admitted_objects + m.service_shed_objects +
                m.service_parked_residual);
}

// Drain-cap backpressure in the closed loop: a drain cap below the fleet
// size must drop whole upload frames as the backpressure fate, and those
// bytes must stay inside the offered-byte partition (the runner ENSUREs the
// partition every frame; uplink_drop_ratio <= 1 would catch a leak too).
TEST(ServiceMode, DrainCapProducesBackpressureFates) {
  PoolGuard guard;
  core::set_thread_count(2);
  sim::Scenario sc =
      sim::make_unprotected_left_turn(harness::default_intersection(42));
  edge::RunnerConfig rc = edge::make_runner_config(edge::Method::kOurs);
  rc.duration = 3.0;
  rc.service.enabled = true;
  rc.service.queue_drain_max = 2;  // fleet is ~6 connected vehicles
  edge::SystemRunner runner(rc);
  const edge::MethodMetrics m = runner.run(sc);
  EXPECT_GT(m.service_backpressure_uploads, 0);
  EXPECT_GT(m.uplink_backpressure_bytes_per_frame, 0.0);
  EXPECT_LE(m.uplink_backpressure_bytes_per_frame,
            m.uplink_offered_bytes_per_frame);
}

}  // namespace
}  // namespace erpd
