// Determinism contract of the parallel pipeline: every parallel loop must
// produce bit-identical output for any ERPD_THREADS setting. These tests run
// the RNG-bearing LiDAR scan, DBSCAN's scratch/collect paths, and a short
// closed-loop scenario at 1, 2, and 8 workers and require exact equality.
// They run under TSan in CI, so they also double as a race detector for the
// pool itself.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "core/det_hash.hpp"
#include "core/thread_pool.hpp"
#include "edge/system_runner.hpp"
#include "pointcloud/dbscan.hpp"
#include "pointcloud/encoding.hpp"
#include "pointcloud/voxel_grid.hpp"
#include "scenario_harness.hpp"
#include "sim/lidar.hpp"
#include "sim/scenario_gen.hpp"

namespace erpd {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 8};

/// Restores the auto pool size when a test exits.
struct PoolGuard {
  ~PoolGuard() { core::set_thread_count(0); }
};

// ---------------------------------------------------------------------------
// LidarSensor::scan with range noise enabled.
// ---------------------------------------------------------------------------

sim::LidarScan scan_noisy(std::size_t threads) {
  core::set_thread_count(threads);
  sim::LidarConfig cfg;
  cfg.channels = 16;
  cfg.azimuth_step_deg = 1.0;
  cfg.max_range = 50.0;
  cfg.noise_sigma = 0.05;  // exercises the per-azimuth RNG derivation
  sim::LidarSensor lidar(cfg);
  std::mt19937_64 rng(42);
  geom::Pose pose;
  pose.position = {{0.0, 0.0}, 1.8};
  const std::vector<sim::LidarTarget> targets = {
      {geom::Obb{{10.0, 0.0}, 0.3, 4.5, 1.9}, 0.0, 1.6, 1},
      {geom::Obb{{18.0, 6.0}, 0.0, 0.5, 0.5}, 0.0, 1.75, 2},
      {geom::Obb{{15.0, -8.0}, 0.0, 20.0, 4.0}, 0.0, 8.0, -5},
  };
  return lidar.scan(pose, targets, rng);
}

TEST(Determinism, LidarScanIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const sim::LidarScan ref = scan_noisy(1);
  ASSERT_GT(ref.cloud.size(), 0u);
  const pc::EncodedCloud ref_bytes = pc::encode(ref.cloud);

  for (const std::size_t t : kThreadCounts) {
    const sim::LidarScan got = scan_noisy(t);
    EXPECT_EQ(got.cloud.size(), ref.cloud.size()) << t << " threads";
    EXPECT_EQ(got.ground_points, ref.ground_points) << t << " threads";
    EXPECT_EQ(got.static_points, ref.static_points) << t << " threads";
    EXPECT_EQ(got.points_per_agent, ref.points_per_agent) << t << " threads";
    // Byte-exact cloud: same points in the same order, down to the noise.
    EXPECT_EQ(pc::encode(got.cloud).bytes, ref_bytes.bytes) << t << " threads";
  }
}

// ---------------------------------------------------------------------------
// DBSCAN: scratch-buffer queries and one-pass cluster collection must agree
// with the baseline path exactly.
// ---------------------------------------------------------------------------

pc::PointCloud clustered_cloud() {
  pc::PointCloud cloud;
  std::mt19937_64 rng(7);
  std::normal_distribution<double> jitter(0.0, 0.2);
  for (const auto [cx, cy] : {std::pair{0.0, 0.0}, {8.0, 1.0}, {3.0, 9.0}}) {
    for (int i = 0; i < 60; ++i) {
      cloud.push_back({cx + jitter(rng), cy + jitter(rng), jitter(rng)});
    }
  }
  for (int i = 0; i < 10; ++i) {  // sparse noise
    cloud.push_back({20.0 + 3.0 * i, -10.0, 0.0});
  }
  return cloud;
}

TEST(Determinism, DbscanCollectClustersMatchesLabelScan) {
  const pc::PointCloud cloud = clustered_cloud();
  pc::DbscanConfig cfg;
  cfg.eps = 0.8;
  cfg.min_pts = 4;

  const pc::DbscanResult plain = pc::dbscan(cloud, cfg);
  cfg.collect_clusters = true;
  const pc::DbscanResult collected = pc::dbscan(cloud, cfg);

  ASSERT_EQ(plain.cluster_count, collected.cluster_count);
  EXPECT_EQ(plain.labels, collected.labels);
  ASSERT_EQ(collected.clusters.size(),
            static_cast<std::size_t>(collected.cluster_count));
  for (std::int32_t c = 0; c < plain.cluster_count; ++c) {
    EXPECT_EQ(plain.cluster_indices(c), collected.cluster_indices(c))
        << "cluster " << c;
  }
}

TEST(Determinism, PointGridScratchOverloadMatchesReturningOverload) {
  const pc::PointCloud cloud = clustered_cloud();
  const pc::PointGrid grid(cloud, 0.8);
  std::vector<std::size_t> scratch;
  for (std::size_t i = 0; i < cloud.size(); i += 7) {
    const std::vector<std::size_t> ret = grid.radius_neighbors(i, 0.8);
    grid.radius_neighbors(i, 0.8, scratch);
    EXPECT_EQ(ret, scratch) << "query point " << i;
  }
}

// ---------------------------------------------------------------------------
// Closed-loop scenario: the whole frame pipeline (parallel sensing fan-out,
// blob segmentation, dissemination) must yield identical behavioral metrics.
// ---------------------------------------------------------------------------

edge::MethodMetrics run_scenario(edge::Method method, std::size_t threads) {
  core::set_thread_count(threads);
  sim::ScenarioConfig cfg;
  cfg.speed_kmh = 30.0;
  cfg.total_vehicles = 10;
  cfg.pedestrians = 2;
  cfg.connected_fraction = 0.5;
  cfg.seed = 11;
  cfg.world.lidar.channels = 16;
  cfg.world.lidar.azimuth_step_deg = 1.0;
  cfg.world.lidar.noise_sigma = 0.03;  // noisy path must stay deterministic
  sim::Scenario sc = sim::make_unprotected_left_turn(cfg);

  edge::RunnerConfig rc = edge::make_runner_config(method);
  rc.duration = 2.0;
  edge::SystemRunner runner(rc);
  return runner.run(sc);
}

void expect_identical(const edge::MethodMetrics& a,
                      const edge::MethodMetrics& b, std::size_t threads) {
  // Simulated quantities only — wall-clock timing fields legitimately vary.
  EXPECT_EQ(a.uplink_bytes_per_frame, b.uplink_bytes_per_frame) << threads;
  EXPECT_EQ(a.uplink_offered_bytes_per_frame, b.uplink_offered_bytes_per_frame)
      << threads;
  EXPECT_EQ(a.uplink_drop_ratio, b.uplink_drop_ratio) << threads;
  EXPECT_EQ(a.downlink_bytes_per_frame, b.downlink_bytes_per_frame) << threads;
  EXPECT_EQ(a.avg_objects_detected, b.avg_objects_detected) << threads;
  EXPECT_EQ(a.delivered_relevance, b.delivered_relevance) << threads;
  EXPECT_EQ(a.disseminations, b.disseminations) << threads;
  EXPECT_EQ(a.collisions, b.collisions) << threads;
  EXPECT_EQ(a.min_key_distance, b.min_key_distance) << threads;
  EXPECT_EQ(a.vehicles_entered, b.vehicles_entered) << threads;
  EXPECT_EQ(a.uplink_loss_ratio, b.uplink_loss_ratio) << threads;
  EXPECT_EQ(a.downlink_deadline_miss_ratio, b.downlink_deadline_miss_ratio)
      << threads;
  EXPECT_EQ(a.coasted_track_frames, b.coasted_track_frames) << threads;
  EXPECT_EQ(a.stale_relevance_frames, b.stale_relevance_frames) << threads;
  EXPECT_EQ(a.ingest_rejected_crc, b.ingest_rejected_crc) << threads;
  EXPECT_EQ(a.ingest_rejected_semantic, b.ingest_rejected_semantic) << threads;
  EXPECT_EQ(a.ingest_quarantined_vehicles, b.ingest_quarantined_vehicles)
      << threads;
  EXPECT_EQ(a.ingest_shed_uploads, b.ingest_shed_uploads) << threads;
  EXPECT_EQ(a.uplink_suppressed_bytes_per_frame,
            b.uplink_suppressed_bytes_per_frame)
      << threads;
  EXPECT_EQ(a.uplink_capped_bytes_per_frame, b.uplink_capped_bytes_per_frame)
      << threads;
  EXPECT_EQ(a.uplink_lost_bytes_per_frame, b.uplink_lost_bytes_per_frame)
      << threads;
  EXPECT_EQ(a.coverage_feedback_msgs, b.coverage_feedback_msgs) << threads;
  EXPECT_EQ(a.coverage_feedback_lost_msgs, b.coverage_feedback_lost_msgs)
      << threads;
  EXPECT_EQ(a.uplink_backpressure_bytes_per_frame,
            b.uplink_backpressure_bytes_per_frame)
      << threads;
  EXPECT_EQ(a.service_backpressure_uploads, b.service_backpressure_uploads)
      << threads;
  EXPECT_EQ(a.service_arrived_objects, b.service_arrived_objects) << threads;
  EXPECT_EQ(a.service_admitted_objects, b.service_admitted_objects) << threads;
  EXPECT_EQ(a.service_deferred_objects, b.service_deferred_objects) << threads;
  EXPECT_EQ(a.service_shed_objects, b.service_shed_objects) << threads;
  EXPECT_EQ(a.service_parked_residual, b.service_parked_residual) << threads;
}

TEST(Determinism, SystemRunnerOursIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const edge::MethodMetrics ref = run_scenario(edge::Method::kOurs, 1);
  for (const std::size_t t : kThreadCounts) {
    expect_identical(run_scenario(edge::Method::kOurs, t), ref, t);
  }
}

TEST(Determinism, SystemRunnerEmpIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  // EMP uploads blobs, exercising the server-side parallel ground strip and
  // the collected-cluster segmentation.
  const edge::MethodMetrics ref = run_scenario(edge::Method::kEmp, 1);
  for (const std::size_t t : kThreadCounts) {
    expect_identical(run_scenario(edge::Method::kEmp, t), ref, t);
  }
}

// ---------------------------------------------------------------------------
// Fault injection: an all-zero FaultConfig must be a provable no-op, and an
// active fault schedule must replay bit-identically for any worker count
// (every drop/jitter decision is a pure function of seed + entity + frame,
// never of scheduling).
// ---------------------------------------------------------------------------

edge::MethodMetrics run_fault_case(const harness::FaultCase& fc,
                                   std::size_t threads) {
  core::set_thread_count(threads);
  // Short run keeps the 3-thread-count sweep affordable under TSan.
  return harness::run_case(edge::Method::kOurs, fc, /*duration=*/4.0).metrics;
}

TEST(Determinism, ZeroFaultConfigIsANoOp) {
  PoolGuard guard;
  core::set_thread_count(1);
  // Bypassing the fault layer entirely and routing through an inactive
  // LossyChannel must fingerprint identically: the zero config may not
  // perturb a single simulated quantity.
  sim::Scenario a = sim::make_unprotected_left_turn(
      harness::default_intersection(42));
  edge::RunnerConfig rc =
      edge::make_runner_config(edge::Method::kOurs, net::WirelessConfig{});
  rc.duration = 4.0;
  edge::SystemRunner plain(rc);
  const std::uint64_t ref = harness::metrics_fingerprint(plain.run(a));

  sim::Scenario b = sim::make_unprotected_left_turn(
      harness::default_intersection(42));
  edge::RunnerConfig rf = rc;
  rf.fault = net::FaultConfig{};  // explicit all-zero config
  ASSERT_FALSE(rf.fault.active());
  edge::SystemRunner gated(rf);
  EXPECT_EQ(harness::metrics_fingerprint(gated.run(b)), ref);
}

TEST(Determinism, FaultMatrixIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  for (const harness::FaultCase& fc : harness::default_fault_matrix()) {
    const edge::MethodMetrics ref = run_fault_case(fc, 1);
    const std::uint64_t ref_fp = harness::metrics_fingerprint(ref);
    for (const std::size_t t : kThreadCounts) {
      const edge::MethodMetrics got = run_fault_case(fc, t);
      expect_identical(got, ref, t);
      EXPECT_EQ(harness::metrics_fingerprint(got), ref_fp)
          << fc.name << " @ " << t << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-hasher torture (detlint D1 companion): every unordered container
// that survives in the pipeline does so under an ERPD_ORDER_INSENSITIVE
// annotation claiming its iteration order cannot reach simulated output.
// This test *attacks* that claim: core::set_det_hash_seed scrambles the
// bucket layout of every DetHash-keyed container constructed afterwards
// (ERPD_DETLINT_SHUFFLE=<n> is the env-var route to the same switch), so if
// any annotated fold secretly depended on visitation order, the seed-42
// fingerprint would drift here.
// ---------------------------------------------------------------------------

/// Restores production hashing when a test exits.
struct HashSeedGuard {
  ~HashSeedGuard() { core::set_det_hash_seed(0); }
};

std::uint64_t seed42_fingerprint() {
  sim::Scenario sc = sim::make_unprotected_left_turn(
      harness::default_intersection(42));
  edge::RunnerConfig rc = edge::make_runner_config(edge::Method::kOurs);
  rc.duration = 4.0;
  edge::SystemRunner runner(rc);
  return harness::metrics_fingerprint(runner.run(sc));
}

TEST(Determinism, FingerprintImmuneToHashSeedShuffle) {
  PoolGuard pool_guard;
  HashSeedGuard hash_guard;
  core::set_thread_count(2);  // chunk merge path must be active

  core::set_det_hash_seed(0);
  const std::uint64_t ref = seed42_fingerprint();

  for (const std::uint64_t shuffle :
       {std::uint64_t{0x9e3779b97f4a7c15}, std::uint64_t{1},
        std::uint64_t{0xdeadbeefcafef00d}}) {
    core::set_det_hash_seed(core::mix64(shuffle));
    EXPECT_EQ(seed42_fingerprint(), ref)
        << "hash-order dependence leaked into simulated output (shuffle seed "
        << shuffle << ")";
  }
}

// Service mode runs the MPSC queue + deadline admission path, whose
// defer/shed decisions must also be pure functions of the upload stream —
// never of hash-bucket layout or worker schedule. Same attack, service on.
TEST(Determinism, ServiceModeFingerprintImmuneToHashSeedShuffle) {
  PoolGuard pool_guard;
  HashSeedGuard hash_guard;
  core::set_thread_count(2);

  const harness::FaultCase fc = [] {
    for (const harness::FaultCase& c : harness::default_fault_matrix()) {
      if (c.name == "overload-burst-outage") return c;
    }
    ADD_FAILURE() << "overload-burst-outage missing from the fault matrix";
    return harness::FaultCase{};
  }();

  core::set_det_hash_seed(0);
  const edge::MethodMetrics ref = run_fault_case(fc, 2);
  ASSERT_GT(ref.service_arrived_objects, 0);  // the service path engaged
  const std::uint64_t ref_fp = harness::metrics_fingerprint(ref);

  for (const std::uint64_t shuffle :
       {std::uint64_t{0x9e3779b97f4a7c15}, std::uint64_t{1},
        std::uint64_t{0xdeadbeefcafef00d}}) {
    core::set_det_hash_seed(core::mix64(shuffle));
    EXPECT_EQ(harness::metrics_fingerprint(run_fault_case(fc, 2)), ref_fp)
        << "service-mode hash-order dependence (shuffle seed " << shuffle
        << ")";
  }
}

// ---------------------------------------------------------------------------
// Generated scenarios (DESIGN.md §15): both stages of the generator pipeline
// must be deterministic — generate_scenario's serialized output is a pure
// function of the seed (no thread-count dependence), and the full closed
// loop over a generated world (deferred spawns, maneuver layer, crowds,
// dissemination) replays bit-identically at 1/2/8 workers and under the
// det-hash shuffle.
// ---------------------------------------------------------------------------

const std::uint64_t kGeneratedSeeds[] = {2, 9, 19};

std::uint64_t run_generated(std::uint64_t seed, std::size_t threads,
                            std::string* spec_text = nullptr) {
  core::set_thread_count(threads);
  const sim::ScenarioSpec spec = sim::generate_scenario(sim::GenConfig{}, seed);
  if (spec_text != nullptr) *spec_text = sim::emit_spec(spec);
  sim::Scenario sc = sim::build_scenario(spec, sim::search_world_config());
  edge::RunnerConfig rc = edge::make_runner_config(edge::Method::kOurs);
  // Short horizon keeps the 3-seed x 3-thread-count sweep affordable under
  // TSan; the committed anchors cover full-duration replays.
  rc.duration = 4.0;
  edge::SystemRunner runner(rc);
  return harness::metrics_fingerprint(runner.run(sc));
}

TEST(Determinism, GeneratedScenariosIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  for (const std::uint64_t seed : kGeneratedSeeds) {
    std::string ref_text;
    const std::uint64_t ref = run_generated(seed, 1, &ref_text);
    ASSERT_FALSE(ref_text.empty());
    for (const std::size_t t : kThreadCounts) {
      std::string text;
      const std::uint64_t got = run_generated(seed, t, &text);
      EXPECT_EQ(text, ref_text) << "seed " << seed << " @ " << t << " threads";
      EXPECT_EQ(got, ref) << "seed " << seed << " @ " << t << " threads";
    }
  }
}

TEST(Determinism, GeneratedScenarioImmuneToHashSeedShuffle) {
  PoolGuard pool_guard;
  HashSeedGuard hash_guard;
  core::set_thread_count(2);

  core::set_det_hash_seed(0);
  const std::uint64_t ref = run_generated(19, 2);

  for (const std::uint64_t shuffle :
       {std::uint64_t{0x9e3779b97f4a7c15}, std::uint64_t{1}}) {
    core::set_det_hash_seed(core::mix64(shuffle));
    EXPECT_EQ(run_generated(19, 2), ref)
        << "generated-scenario replay drifted under hash shuffle (seed "
        << shuffle << ")";
  }
}

}  // namespace
}  // namespace erpd
