#include <gtest/gtest.h>

#include "core/check.hpp"

#include <random>

#include "core/dissemination.hpp"

namespace erpd::core {
namespace {

Candidate cand(int track, sim::AgentId to, double rel, std::size_t bytes) {
  return {track, to, rel, bytes, sim::kInvalidAgent};
}

TEST(Greedy, PicksBestAwardFirst) {
  // Item B has a better relevance/size award despite lower relevance.
  std::vector<Candidate> c = {
      cand(1, 10, 0.9, 9000),  // award 1e-4
      cand(2, 11, 0.5, 1000),  // award 5e-4
  };
  const Selection s = greedy_dissemination(c, 1500);
  ASSERT_EQ(s.chosen.size(), 1u);
  EXPECT_EQ(s.chosen[0].track_id, 2);
}

TEST(Greedy, FillsBudget) {
  std::vector<Candidate> c = {
      cand(1, 10, 0.5, 400),
      cand(2, 10, 0.5, 400),
      cand(3, 10, 0.5, 400),
  };
  const Selection s = greedy_dissemination(c, 900);
  EXPECT_EQ(s.chosen.size(), 2u);
  EXPECT_EQ(s.total_bytes, 800u);
  EXPECT_DOUBLE_EQ(s.total_relevance, 1.0);
}

TEST(Greedy, SkipsUnfittableButContinues) {
  std::vector<Candidate> c = {
      cand(1, 10, 0.9, 1000),  // best award, taken
      cand(2, 10, 0.8, 5000),  // does not fit, skipped
      cand(3, 10, 0.1, 500),   // still fits
  };
  const Selection s = greedy_dissemination(c, 1600);
  ASSERT_EQ(s.chosen.size(), 2u);
  EXPECT_EQ(s.chosen[0].track_id, 1);
  EXPECT_EQ(s.chosen[1].track_id, 3);
}

TEST(Greedy, NeverSendsZeroRelevance) {
  std::vector<Candidate> c = {
      cand(1, 10, 0.0, 100),
      cand(2, 11, 0.0, 100),
  };
  const Selection s = greedy_dissemination(c, 10000);
  EXPECT_TRUE(s.chosen.empty());
}

TEST(Greedy, EmptyInput) {
  const Selection s = greedy_dissemination({}, 1000);
  EXPECT_TRUE(s.chosen.empty());
  EXPECT_EQ(s.total_bytes, 0u);
}

TEST(Greedy, RespectsBudgetExactly) {
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> rel(0.01, 1.0);
  std::uniform_int_distribution<std::size_t> bytes(100, 5000);
  std::vector<Candidate> c;
  for (int i = 0; i < 200; ++i) {
    c.push_back(cand(i, i % 10, rel(rng), bytes(rng)));
  }
  for (std::size_t budget : {0u, 1000u, 50000u, 200000u}) {
    const Selection s = greedy_dissemination(c, budget);
    EXPECT_LE(s.total_bytes, budget);
  }
}

TEST(Optimal, MatchesBruteForceSmall) {
  // 6 items vs exhaustive search.
  const std::vector<Candidate> c = {
      cand(0, 1, 0.6, 300), cand(1, 1, 0.5, 250), cand(2, 1, 0.9, 600),
      cand(3, 1, 0.2, 100), cand(4, 1, 0.8, 450), cand(5, 1, 0.4, 200),
  };
  const std::size_t budget = 1000;
  double best = 0.0;
  for (int mask = 0; mask < 64; ++mask) {
    std::size_t w = 0;
    double v = 0.0;
    for (int i = 0; i < 6; ++i) {
      if (mask & (1 << i)) {
        w += c[static_cast<std::size_t>(i)].bytes;
        v += c[static_cast<std::size_t>(i)].relevance;
      }
    }
    if (w <= budget) best = std::max(best, v);
  }
  const Selection s = optimal_dissemination(c, budget, 1);
  EXPECT_NEAR(s.total_relevance, best, 1e-9);
  EXPECT_LE(s.total_bytes, budget);
}

TEST(Optimal, GreedyNeverBeatsOptimal) {
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> rel(0.01, 1.0);
  std::uniform_int_distribution<std::size_t> bytes(200, 4000);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Candidate> c;
    for (int i = 0; i < 40; ++i) {
      c.push_back(cand(i, 1, rel(rng), bytes(rng)));
    }
    const std::size_t budget = 20000;
    const Selection g = greedy_dissemination(c, budget);
    const Selection o = optimal_dissemination(c, budget, 1);
    EXPECT_LE(g.total_relevance, o.total_relevance + 1e-9)
        << "trial " << trial;
    EXPECT_LE(o.total_bytes, budget);
  }
}

TEST(Optimal, GreedyIsNearOptimal) {
  // The R/s greedy should typically land within a few percent of optimal
  // for realistic candidate mixes (paper justification for Algorithm 1).
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> rel(0.01, 1.0);
  std::uniform_int_distribution<std::size_t> bytes(500, 3000);
  double worst_ratio = 1.0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Candidate> c;
    for (int i = 0; i < 60; ++i) {
      c.push_back(cand(i, 1, rel(rng), bytes(rng)));
    }
    const Selection g = greedy_dissemination(c, 30000);
    const Selection o = optimal_dissemination(c, 30000, 1);
    if (o.total_relevance > 0.0) {
      worst_ratio = std::min(worst_ratio, g.total_relevance / o.total_relevance);
    }
  }
  EXPECT_GT(worst_ratio, 0.9);
}

TEST(Optimal, ZeroResolutionThrows) {
  EXPECT_THROW(optimal_dissemination({}, 100, 0), erpd::ContractViolation);
}

TEST(RoundRobin, RotationContinuesAcrossFrames) {
  const std::vector<Candidate> c = {
      cand(0, 1, 0.0, 400), cand(1, 1, 0.0, 400), cand(2, 1, 0.0, 400),
      cand(3, 1, 0.0, 400),
  };
  std::size_t cursor = 0;
  // Budget fits 2 items per frame.
  const Selection f1 = round_robin_dissemination(c, 900, cursor);
  ASSERT_EQ(f1.chosen.size(), 2u);
  EXPECT_EQ(f1.chosen[0].track_id, 0);
  EXPECT_EQ(f1.chosen[1].track_id, 1);
  const Selection f2 = round_robin_dissemination(c, 900, cursor);
  ASSERT_EQ(f2.chosen.size(), 2u);
  EXPECT_EQ(f2.chosen[0].track_id, 2);
  EXPECT_EQ(f2.chosen[1].track_id, 3);
  const Selection f3 = round_robin_dissemination(c, 900, cursor);
  EXPECT_EQ(f3.chosen[0].track_id, 0);  // wrapped around
}

TEST(RoundRobin, IgnoresRelevance) {
  // RR sends low-relevance items that greedy would never pick.
  const std::vector<Candidate> c = {
      cand(0, 1, 0.0, 400),
      cand(1, 1, 0.99, 400),
  };
  std::size_t cursor = 0;
  const Selection s = round_robin_dissemination(c, 450, cursor);
  ASSERT_EQ(s.chosen.size(), 1u);
  EXPECT_EQ(s.chosen[0].track_id, 0);
}

TEST(RoundRobin, WholeListFitsResetsCursor) {
  const std::vector<Candidate> c = {cand(0, 1, 0.0, 100), cand(1, 1, 0.0, 100)};
  std::size_t cursor = 0;
  const Selection s = round_robin_dissemination(c, 10000, cursor);
  EXPECT_EQ(s.chosen.size(), 2u);
  EXPECT_EQ(cursor, 0u);
}

TEST(RoundRobin, EmptyInput) {
  std::size_t cursor = 5;
  const Selection s = round_robin_dissemination({}, 1000, cursor);
  EXPECT_TRUE(s.chosen.empty());
}

TEST(Greedy, ZeroByteCandidatesAlwaysAdmittedFirst) {
  // Zero-byte positive-relevance candidates are free relevance: they sort
  // strictly ahead of every sized candidate (the old finite pseudo-award
  // R*1e12 could be outranked) and are admitted even with no budget at all.
  std::vector<Candidate> c = {
      cand(1, 10, 0.9, 1000),
      cand(2, 11, 1e-9, 0),
      cand(3, 12, 0.5, 0),
  };
  const Selection s = greedy_dissemination(c, 0);
  ASSERT_EQ(s.chosen.size(), 2u);
  // Free candidates rank among themselves by relevance.
  EXPECT_EQ(s.chosen[0].track_id, 3);
  EXPECT_EQ(s.chosen[1].track_id, 2);
  EXPECT_EQ(s.total_bytes, 0u);
}

TEST(Greedy, ZeroByteZeroRelevanceStillExcluded) {
  std::vector<Candidate> c = {cand(1, 10, 0.0, 0)};
  EXPECT_TRUE(greedy_dissemination(c, 100).chosen.empty());
}

TEST(RoundRobin, OversizedItemDoesNotStarveRotation) {
  // Regression: an item larger than the whole per-frame budget used to park
  // the cursor forever — every later frame returned an empty selection and
  // no vehicle received anything again. It must be skipped instead.
  const std::vector<Candidate> c = {
      cand(0, 1, 0.0, 400),
      cand(1, 1, 0.0, 5000),  // can never fit any frame's budget
      cand(2, 1, 0.0, 400),
  };
  std::size_t cursor = 1;  // parked exactly on the oversized item
  Selection s = round_robin_dissemination(c, 900, cursor);
  ASSERT_EQ(s.chosen.size(), 2u);
  EXPECT_EQ(s.chosen[0].track_id, 2);
  EXPECT_EQ(s.chosen[1].track_id, 0);
  // Recovery is permanent: every subsequent frame keeps delivering.
  for (int frame = 0; frame < 3; ++frame) {
    s = round_robin_dissemination(c, 900, cursor);
    EXPECT_EQ(s.chosen.size(), 2u) << "frame " << frame;
  }
}

TEST(RoundRobin, ItemExactlyAtBudgetStillDelivered) {
  // bytes == budget is deliverable, not oversized; the next item stalls the
  // rotation as before (it could fit a later, emptier frame).
  const std::vector<Candidate> c = {cand(0, 1, 0.0, 900),
                                    cand(1, 1, 0.0, 400)};
  std::size_t cursor = 0;
  const Selection s = round_robin_dissemination(c, 900, cursor);
  ASSERT_EQ(s.chosen.size(), 1u);
  EXPECT_EQ(s.chosen[0].track_id, 0);
  EXPECT_EQ(cursor, 1u);
}

TEST(RoundRobin, AllOversizedReturnsEmptyButRotates) {
  const std::vector<Candidate> c = {cand(0, 1, 0.0, 5000),
                                    cand(1, 1, 0.0, 6000)};
  std::size_t cursor = 0;
  const Selection s = round_robin_dissemination(c, 900, cursor);
  EXPECT_TRUE(s.chosen.empty());
  EXPECT_EQ(cursor, 0u);  // full rotation completed, nothing deliverable
}

TEST(Broadcast, SendsEverything) {
  const std::vector<Candidate> c = {
      cand(0, 1, 0.1, 1000), cand(1, 2, 0.0, 2000), cand(2, 3, 0.9, 3000)};
  const Selection s = broadcast_dissemination(c);
  EXPECT_EQ(s.chosen.size(), 3u);
  EXPECT_EQ(s.total_bytes, 6000u);
  EXPECT_NEAR(s.total_relevance, 1.0, 1e-12);
}

}  // namespace
}  // namespace erpd::core
