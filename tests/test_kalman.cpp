#include <gtest/gtest.h>

#include <random>

#include "track/kalman.hpp"

namespace erpd::track {
namespace {

using geom::Vec2;

TEST(Kalman, InitialState) {
  const KalmanCV kf({3.0, 4.0});
  EXPECT_EQ(kf.position(), Vec2(3.0, 4.0));
  EXPECT_EQ(kf.velocity(), Vec2());
  // Position-only init leaves velocity very uncertain.
  EXPECT_GT(kf.var_vx(), 10.0);
}

TEST(Kalman, InitialStateWithVelocity) {
  const KalmanCV kf(Vec2{0.0, 0.0}, Vec2{5.0, -1.0});
  EXPECT_EQ(kf.velocity(), Vec2(5.0, -1.0));
  EXPECT_LT(kf.var_vx(), 2.0);
}

TEST(Kalman, PredictMovesWithVelocity) {
  KalmanCV kf(Vec2{0.0, 0.0}, Vec2{10.0, 0.0});
  kf.predict(0.5);
  EXPECT_NEAR(kf.position().x, 5.0, 1e-12);
  EXPECT_NEAR(kf.position().y, 0.0, 1e-12);
}

TEST(Kalman, PredictGrowsUncertainty) {
  KalmanCV kf(Vec2{0.0, 0.0}, Vec2{10.0, 0.0});
  const double v0 = kf.var_px();
  kf.predict(1.0);
  EXPECT_GT(kf.var_px(), v0);
  const double v1 = kf.var_px();
  kf.predict(1.0);
  EXPECT_GT(kf.var_px(), v1);
}

TEST(Kalman, UpdateShrinksUncertainty) {
  KalmanCV kf({0.0, 0.0});
  kf.predict(1.0);
  const double before = kf.var_px();
  kf.update({0.5, 0.0});
  EXPECT_LT(kf.var_px(), before);
}

TEST(Kalman, UpdatePullsTowardMeasurement) {
  KalmanCV kf({0.0, 0.0});
  kf.predict(0.1);
  kf.update({1.0, 2.0});
  EXPECT_GT(kf.position().x, 0.3);
  EXPECT_GT(kf.position().y, 0.6);
  EXPECT_LT(kf.position().x, 1.0 + 1e-9);
}

TEST(Kalman, VelocityEstimatedFromPositionsOnly) {
  // Feed positions of an object moving at 8 m/s; the filter must infer the
  // velocity without ever observing it.
  KalmanCV kf({0.0, 0.0});
  for (int i = 1; i <= 30; ++i) {
    kf.predict(0.1);
    kf.update({0.8 * i, 0.0});
  }
  EXPECT_NEAR(kf.velocity().x, 8.0, 0.5);
  EXPECT_NEAR(kf.velocity().y, 0.0, 0.3);
}

TEST(Kalman, VelocityMeasurementSpeedsConvergence) {
  KalmanCV with(Vec2{0.0, 0.0});
  KalmanCV without(Vec2{0.0, 0.0});
  with.predict(0.1);
  with.update({0.8, 0.0}, {8.0, 0.0}, 1.0);
  without.predict(0.1);
  without.update({0.8, 0.0});
  EXPECT_LT(std::abs(with.velocity().x - 8.0),
            std::abs(without.velocity().x - 8.0));
}

TEST(Kalman, TracksNoisyTrajectory) {
  std::mt19937_64 rng(9);
  std::normal_distribution<double> noise(0.0, 0.3);
  KalmanCV kf({0.0, 0.0});
  double true_x = 0.0;
  for (int i = 0; i < 100; ++i) {
    true_x += 0.1 * 6.0;
    kf.predict(0.1);
    kf.update({true_x + noise(rng), noise(rng)});
  }
  EXPECT_NEAR(kf.position().x, true_x, 0.5);
  EXPECT_NEAR(kf.velocity().x, 6.0, 0.8);
  // Smoothing: the estimate should be closer to truth than the raw
  // measurement noise level on average.
  EXPECT_LT(std::abs(kf.position().y), 0.3);
}

TEST(Kalman, PositionGaussianReflectsCovariance) {
  KalmanCV kf({2.0, 3.0});
  const geom::Gaussian2D g = kf.position_gaussian();
  EXPECT_EQ(g.mean(), Vec2(2.0, 3.0));
  EXPECT_GT(g.sigma_x(), 0.0);
  kf.predict(2.0);
  const geom::Gaussian2D g2 = kf.position_gaussian();
  EXPECT_GT(g2.sigma_x(), g.sigma_x());
}

}  // namespace
}  // namespace erpd::track
