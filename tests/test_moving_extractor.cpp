#include <gtest/gtest.h>

#include <random>

#include "pointcloud/moving_extractor.hpp"

namespace erpd::pc {
namespace {

using geom::Pose;
using geom::Vec2;
using geom::Vec3;

constexpr double kSensorH = 1.8;

/// Synthesize a sensor-frame cloud containing ground, one static box and one
/// object at `obj_xy` (world), viewed from a stationary sensor at origin.
PointCloud synth_frame(Vec2 obj_xy, bool include_static, std::mt19937_64& rng) {
  std::normal_distribution<double> n(0.0, 0.01);
  PointCloud c;
  // Ground disk.
  for (int i = 0; i < 400; ++i) {
    std::uniform_real_distribution<double> u(-20.0, 20.0);
    c.push_back({u(rng), u(rng), -kSensorH + n(rng)});
  }
  // Static box at (10, 10).
  if (include_static) {
    for (int i = 0; i < 120; ++i) {
      std::uniform_real_distribution<double> u(-1.0, 1.0);
      c.push_back({10.0 + u(rng), 10.0 + u(rng), -kSensorH + 0.5 + u(rng)});
    }
  }
  // Moving object: a 2x1 m blob.
  for (int i = 0; i < 150; ++i) {
    std::uniform_real_distribution<double> ux(-1.0, 1.0);
    std::uniform_real_distribution<double> uy(-0.5, 0.5);
    c.push_back(
        {obj_xy.x + ux(rng), obj_xy.y + uy(rng), -kSensorH + 0.6 + 0.3 * ux(rng)});
  }
  return c;
}

MovingExtractorConfig test_config() {
  MovingExtractorConfig cfg;
  cfg.ground.sensor_height = kSensorH;
  cfg.voxel_size = 0.0;  // keep every point for deterministic counts
  cfg.dbscan = {0.9, 4};
  cfg.min_speed = 0.5;
  return cfg;
}

TEST(MovingExtractor, FirstFrameUploadsNothing) {
  std::mt19937_64 rng(1);
  MovingObjectExtractor ex(test_config());
  Pose pose;
  pose.position = {0.0, 0.0, kSensorH};
  const auto res = ex.process(synth_frame({5.0, 0.0}, true, rng), pose, 0.0);
  EXPECT_TRUE(res.objects.empty());  // no motion evidence yet
  EXPECT_GT(res.stats.clusters, 0u);
}

TEST(MovingExtractor, MovingObjectDetectedWithinWindow) {
  std::mt19937_64 rng(2);
  MovingObjectExtractor ex(test_config());
  Pose pose;
  pose.position = {0.0, 0.0, kSensorH};
  // Object moving at 2.5 m/s; static box stays put. Detection must happen
  // once the window displacement clears the jitter floor (<= 0.4 s here).
  ExtractionResult res;
  double detected_at = -1.0;
  for (int f = 0; f <= 6; ++f) {
    const double t = 0.1 * f;
    res = ex.process(synth_frame({5.0 + 2.5 * t, 0.0}, true, rng), pose, t);
    if (!res.objects.empty() && detected_at < 0.0) detected_at = t;
  }
  ASSERT_EQ(res.objects.size(), 1u) << "static box must not be uploaded";
  EXPECT_GE(detected_at, 0.0);
  EXPECT_LE(detected_at, 0.4);
  EXPECT_NEAR(res.objects[0].centroid_world.x, 5.0 + 2.5 * 0.6, 0.4);
  EXPECT_NEAR(res.objects[0].velocity_world.x, 2.5, 1.0);
  EXPECT_GT(res.objects[0].point_count, 50u);
}

TEST(MovingExtractor, StaticObjectNeverUploaded) {
  std::mt19937_64 rng(3);
  MovingObjectExtractor ex(test_config());
  Pose pose;
  pose.position = {0.0, 0.0, kSensorH};
  for (int f = 0; f < 5; ++f) {
    const auto res =
        ex.process(synth_frame({5.0, 0.0}, true, rng), pose, 0.1 * f);
    for (const auto& obj : res.objects) {
      // Nothing moved, so nothing should ever be uploaded.
      ADD_FAILURE() << "unexpected upload at " << obj.centroid_world;
    }
  }
}

TEST(MovingExtractor, GroundRemovedFromStats) {
  std::mt19937_64 rng(4);
  MovingObjectExtractor ex(test_config());
  Pose pose;
  pose.position = {0.0, 0.0, kSensorH};
  const auto res = ex.process(synth_frame({5.0, 0.0}, false, rng), pose, 0.0);
  EXPECT_GT(res.stats.raw_points, res.stats.after_ground);
  EXPECT_LT(res.stats.after_ground, 200u);  // only the object blob remains
}

TEST(MovingExtractor, EgoMotionCompensation) {
  // The sensor moves forward while a static box stays put in the world;
  // without ego compensation the box would appear to move in sensor frame.
  std::mt19937_64 rng(5);
  MovingExtractorConfig cfg = test_config();
  MovingObjectExtractor ex(cfg);

  auto make_frame = [&](Vec2 sensor_pos) {
    // World-frame static box at (12, 2) with points expressed in the frame
    // of a sensor at sensor_pos looking along +x.
    PointCloud c;
    std::uniform_real_distribution<double> u(-0.8, 0.8);
    for (int i = 0; i < 150; ++i) {
      const Vec3 world{12.0 + u(rng), 2.0 + u(rng), 0.6 + 0.3 * u(rng)};
      c.push_back({world.x - sensor_pos.x, world.y - sensor_pos.y,
                   world.z - kSensorH});
    }
    return c;
  };

  Pose p0;
  p0.position = {0.0, 0.0, kSensorH};
  ex.process(make_frame({0.0, 0.0}), p0, 0.0);
  Pose p1;
  p1.position = {1.0, 0.0, kSensorH};  // ego advanced 1 m
  const auto res = ex.process(make_frame({1.0, 0.0}), p1, 0.1);
  EXPECT_TRUE(res.objects.empty())
      << "static object misclassified as moving under ego motion";
}

TEST(MovingExtractor, BandwidthReductionIsLarge) {
  std::mt19937_64 rng(6);
  MovingObjectExtractor ex(test_config());
  Pose pose;
  pose.position = {0.0, 0.0, kSensorH};
  ExtractionResult res;
  for (int f = 0; f <= 5; ++f) {
    const double t = 0.1 * f;
    res = ex.process(synth_frame({5.0 + 3.0 * t, 0.0}, true, rng), pose, t);
  }
  ASSERT_FALSE(res.objects.empty());
  // Paper: MBs -> tens of KB. Here: raw ~670 pts * 16 B vs ~150 pts * 6 B.
  const std::size_t raw = res.stats.raw_points * kRawBytesPerPoint;
  const std::size_t reduced = res.stats.moving_points * 6;
  EXPECT_LT(reduced * 5, raw);
}

TEST(MovingExtractor, ResetForgetsHistory) {
  std::mt19937_64 rng(7);
  MovingObjectExtractor ex(test_config());
  Pose pose;
  pose.position = {0.0, 0.0, kSensorH};
  ex.process(synth_frame({5.0, 0.0}, true, rng), pose, 0.0);
  ex.reset();
  // A 1 m jump would register as motion if history had been kept.
  const auto res = ex.process(synth_frame({6.0, 0.0}, true, rng), pose, 0.1);
  EXPECT_TRUE(res.objects.empty());  // history gone -> first-frame behaviour
}

TEST(MovingExtractor, TotalPointsAndMerge) {
  std::mt19937_64 rng(8);
  MovingObjectExtractor ex(test_config());
  Pose pose;
  pose.position = {0.0, 0.0, kSensorH};
  ExtractionResult res;
  for (int f = 0; f <= 5; ++f) {
    const double t = 0.1 * f;
    res = ex.process(synth_frame({5.0 + 3.0 * t, 0.0}, false, rng), pose, t);
  }
  ASSERT_FALSE(res.objects.empty());
  EXPECT_EQ(res.total_points(), res.merged_world().size());
}

}  // namespace
}  // namespace erpd::pc
