#include <gtest/gtest.h>

#include "core/check.hpp"

#include "geom/angle.hpp"
#include "sim/road_network.hpp"

namespace erpd::sim {
namespace {

using geom::Vec2;

TEST(RoadNetwork, ArmDirections) {
  EXPECT_EQ(RoadNetwork::arm_direction(Arm::kNorth), Vec2(0.0, 1.0));
  EXPECT_EQ(RoadNetwork::arm_direction(Arm::kEast), Vec2(1.0, 0.0));
  EXPECT_EQ(RoadNetwork::arm_direction(Arm::kSouth), Vec2(0.0, -1.0));
  EXPECT_EQ(RoadNetwork::arm_direction(Arm::kWest), Vec2(-1.0, 0.0));
}

TEST(RoadNetwork, OppositeArms) {
  EXPECT_EQ(RoadNetwork::opposite(Arm::kNorth), Arm::kSouth);
  EXPECT_EQ(RoadNetwork::opposite(Arm::kEast), Arm::kWest);
}

TEST(RoadNetwork, ExitArms) {
  // Northbound (entering from the south arm): left exits west, right east.
  EXPECT_EQ(RoadNetwork::exit_arm(Arm::kSouth, Maneuver::kStraight),
            Arm::kNorth);
  EXPECT_EQ(RoadNetwork::exit_arm(Arm::kSouth, Maneuver::kLeft), Arm::kWest);
  EXPECT_EQ(RoadNetwork::exit_arm(Arm::kSouth, Maneuver::kRight), Arm::kEast);
  // Westbound (entering from the east arm): left exits south.
  EXPECT_EQ(RoadNetwork::exit_arm(Arm::kEast, Maneuver::kLeft), Arm::kSouth);
}

TEST(RoadNetwork, RouteCountTwoLanes) {
  const RoadNetwork net{RoadConfig{}};
  // Per arm: lane0 {left, straight} + lane1 {straight, right} = 4 routes.
  EXPECT_EQ(net.routes().size(), 16u);
}

TEST(RoadNetwork, RouteCountOneLane) {
  RoadConfig cfg;
  cfg.lanes_per_direction = 1;
  const RoadNetwork net{cfg};
  EXPECT_EQ(net.routes().size(), 12u);  // 3 maneuvers x 4 arms
}

TEST(RoadNetwork, InvalidConfigThrows) {
  RoadConfig bad;
  bad.lanes_per_direction = 0;
  EXPECT_THROW(RoadNetwork{bad}, erpd::ContractViolation);
  RoadConfig short_arm;
  short_arm.arm_length = 5.0;
  EXPECT_THROW(RoadNetwork{short_arm}, erpd::ContractViolation);
}

TEST(RoadNetwork, RightHandTrafficLaneSides) {
  const RoadNetwork net{RoadConfig{}};
  // Northbound approach (south arm): incoming lanes on the east side (x>0).
  const Route& r =
      net.route(*net.find_route(Arm::kSouth, 0, Maneuver::kStraight));
  const Vec2 start = r.path.points().front();
  EXPECT_GT(start.x, 0.0);
  EXPECT_LT(start.y, 0.0);
  // Lane 1 is farther right (larger x).
  const Route& r1 =
      net.route(*net.find_route(Arm::kSouth, 1, Maneuver::kStraight));
  EXPECT_GT(r1.path.points().front().x, start.x);
}

TEST(RoadNetwork, StraightRouteIsStraight) {
  const RoadNetwork net{RoadConfig{}};
  const Route& r =
      net.route(*net.find_route(Arm::kSouth, 1, Maneuver::kStraight));
  // x stays constant along a straight northbound route.
  const double x0 = r.path.points().front().x;
  for (const Vec2& p : r.path.points()) {
    EXPECT_NEAR(p.x, x0, 1e-9);
  }
  // Full length = two arm lengths.
  EXPECT_NEAR(r.path.length(), 2.0 * net.config().arm_length, 1e-6);
}

TEST(RoadNetwork, LeftTurnEndsHeadingWest) {
  const RoadNetwork net{RoadConfig{}};
  const Route& r = net.route(*net.find_route(Arm::kSouth, 0, Maneuver::kLeft));
  EXPECT_EQ(r.exit_arm, Arm::kWest);
  const double end_heading = r.path.heading_at(r.path.length() - 0.5);
  EXPECT_NEAR(geom::angle_dist(end_heading, geom::kPi), 0.0, 0.05);
}

TEST(RoadNetwork, RightTurnIsTighterThanLeft) {
  const RoadNetwork net{RoadConfig{}};
  const Route& left =
      net.route(*net.find_route(Arm::kSouth, 0, Maneuver::kLeft));
  const Route& right =
      net.route(*net.find_route(Arm::kSouth, 1, Maneuver::kRight));
  // Arc inside the box: right turns hug the corner, left turns sweep wide.
  const double left_arc = left.box_exit_s - left.box_entry_s;
  const double right_arc = right.box_exit_s - right.box_entry_s;
  EXPECT_GT(left_arc, right_arc);
}

TEST(RoadNetwork, StopLineBeforeBox) {
  const RoadNetwork net{RoadConfig{}};
  for (const Route& r : net.routes()) {
    EXPECT_LT(r.stop_line_s, r.box_entry_s + 1e-9);
    EXPECT_LT(r.box_entry_s, r.box_exit_s);
    EXPECT_FALSE(net.in_intersection(r.path.point_at(r.stop_line_s - 1.0)));
    EXPECT_TRUE(net.in_intersection(
        r.path.point_at((r.box_entry_s + r.box_exit_s) / 2)));
  }
}

TEST(RoadNetwork, CrossingRoutesIntersectInsideBox) {
  const RoadNetwork net{RoadConfig{}};
  const Route& left =
      net.route(*net.find_route(Arm::kSouth, 0, Maneuver::kLeft));
  const Route& oncoming =
      net.route(*net.find_route(Arm::kNorth, 1, Maneuver::kStraight));
  const auto c = left.path.first_crossing(oncoming.path);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(net.in_intersection(c->point));
}

TEST(RoadNetwork, ParallelRoutesDoNotCross) {
  const RoadNetwork net{RoadConfig{}};
  const Route& a =
      net.route(*net.find_route(Arm::kSouth, 0, Maneuver::kStraight));
  const Route& b =
      net.route(*net.find_route(Arm::kSouth, 1, Maneuver::kStraight));
  EXPECT_FALSE(a.path.first_crossing(b.path).has_value());
}

TEST(RoadNetwork, CrosswalksSpanTheRoad) {
  const RoadNetwork net{RoadConfig{}};
  EXPECT_EQ(net.crosswalks().size(), 4u);
  const Crosswalk& cw = net.crosswalk(Arm::kSouth);
  const double road_width =
      2.0 * net.config().lanes_per_direction * net.config().lane_width;
  EXPECT_GT(cw.path.length(), road_width);
  // South crosswalk sits south of the box.
  EXPECT_LT(cw.path.point_at(0.0).y, -net.box_half());
}

TEST(RoadNetwork, RoutesFromLaneListsAllManeuvers) {
  const RoadNetwork net{RoadConfig{}};
  const auto lane0 = net.routes_from({Arm::kEast, 0});
  EXPECT_EQ(lane0.size(), 2u);  // left + straight
  EXPECT_FALSE(net.find_route(Arm::kEast, 0, Maneuver::kRight).has_value());
  EXPECT_TRUE(net.find_route(Arm::kEast, 1, Maneuver::kRight).has_value());
}

TEST(Signal, PhasesAreExclusive) {
  const SignalController sig{SignalController::Timing{20.0, 3.0, 2.0}};
  for (double t = 0.0; t < sig.cycle_length(); t += 0.5) {
    const bool ns_green =
        sig.state(Arm::kNorth, t) == SignalController::Light::kGreen;
    const bool ew_green =
        sig.state(Arm::kEast, t) == SignalController::Light::kGreen;
    EXPECT_FALSE(ns_green && ew_green) << "conflicting greens at t=" << t;
  }
}

TEST(Signal, CycleStructure) {
  const SignalController sig{SignalController::Timing{20.0, 3.0, 2.0}};
  EXPECT_DOUBLE_EQ(sig.cycle_length(), 50.0);
  EXPECT_EQ(sig.state(Arm::kNorth, 0.0), SignalController::Light::kGreen);
  EXPECT_EQ(sig.state(Arm::kSouth, 10.0), SignalController::Light::kGreen);
  EXPECT_EQ(sig.state(Arm::kNorth, 21.0), SignalController::Light::kYellow);
  EXPECT_EQ(sig.state(Arm::kNorth, 24.0), SignalController::Light::kRed);
  EXPECT_EQ(sig.state(Arm::kEast, 10.0), SignalController::Light::kRed);
  EXPECT_EQ(sig.state(Arm::kEast, 26.0), SignalController::Light::kGreen);
}

TEST(Signal, TimeToGreen) {
  const SignalController sig{SignalController::Timing{20.0, 3.0, 2.0}};
  EXPECT_DOUBLE_EQ(sig.time_to_green(Arm::kNorth, 5.0), 0.0);
  const double wait = sig.time_to_green(Arm::kEast, 0.0);
  EXPECT_NEAR(wait, 25.0, 0.2);
}

TEST(Signal, WrapsAcrossCycles) {
  const SignalController sig{SignalController::Timing{20.0, 3.0, 2.0}};
  EXPECT_EQ(sig.state(Arm::kNorth, 50.0), SignalController::Light::kGreen);
  EXPECT_EQ(sig.state(Arm::kNorth, 100.0 + 21.0),
            SignalController::Light::kYellow);
}

}  // namespace
}  // namespace erpd::sim
