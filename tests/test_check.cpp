// Contract layer: every macro, the structured diagnostic fields, and the
// exception hierarchy.
//
// ERPD_ENABLE_DCHECKS is defined before the include so ERPD_DCHECK is active
// regardless of the build type this test is compiled under.
#define ERPD_ENABLE_DCHECKS 1
#include "core/check.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace {

using erpd::ContractViolation;

TEST(Check, RequirePassesSilently) {
  EXPECT_NO_THROW(ERPD_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Check, RequireThrowsContractViolation) {
  const int x = -3;
  try {
    ERPD_REQUIRE(x >= 0, "x must be non-negative, got ", x);
    FAIL() << "ERPD_REQUIRE did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), ContractViolation::Kind::kRequire);
    EXPECT_STREQ(e.expression(), "x >= 0");
    EXPECT_NE(std::string(e.file()).find("test_check.cpp"), std::string::npos);
    EXPECT_GT(e.line(), 0);
    EXPECT_EQ(e.message(), "x must be non-negative, got -3");
    // what() carries the full structured diagnostic.
    const std::string what = e.what();
    EXPECT_NE(what.find("REQUIRE"), std::string::npos);
    EXPECT_NE(what.find("x >= 0"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
    EXPECT_NE(what.find("got -3"), std::string::npos);
  }
}

TEST(Check, RequireWithoutMessage) {
  try {
    ERPD_REQUIRE(false);
    FAIL() << "ERPD_REQUIRE did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_TRUE(e.message().empty());
    EXPECT_STREQ(e.expression(), "false");
  }
}

TEST(Check, EnsureThrowsWithEnsureKind) {
  try {
    ERPD_ENSURE(2 < 1, "impossible ordering");
    FAIL() << "ERPD_ENSURE did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), ContractViolation::Kind::kEnsure);
    EXPECT_NE(std::string(e.what()).find("ENSURE"), std::string::npos);
  }
}

TEST(Check, DcheckActiveWhenEnabled) {
  EXPECT_NO_THROW(ERPD_DCHECK(true, "fine"));
  try {
    ERPD_DCHECK(0 > 1, "broken invariant");
    FAIL() << "ERPD_DCHECK did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), ContractViolation::Kind::kDcheck);
  }
}

TEST(Check, UnreachableAlwaysThrows) {
  try {
    ERPD_UNREACHABLE("took the impossible branch, code=", 42);
    FAIL() << "ERPD_UNREACHABLE did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), ContractViolation::Kind::kUnreachable);
    EXPECT_EQ(e.message(), "took the impossible branch, code=42");
  }
}

TEST(Check, ViolationIsALogicError) {
  // Callers that predate the contract layer still catch std::logic_error
  // (and std::exception).
  EXPECT_THROW(ERPD_REQUIRE(false, "legacy catch"), std::logic_error);
  EXPECT_THROW(ERPD_ENSURE(false, "legacy catch"), std::exception);
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  const auto count_and_pass = [&calls]() {
    ++calls;
    return true;
  };
  ERPD_REQUIRE(count_and_pass(), "side effects must not repeat");
  EXPECT_EQ(calls, 1);
}

TEST(Check, MessageFormatsMixedTypes) {
  try {
    ERPD_REQUIRE(false, "int=", 7, " double=", 2.5, " str=", "abc");
    FAIL() << "ERPD_REQUIRE did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.message(), "int=7 double=2.5 str=abc");
  }
}

TEST(Check, KindNamesAreStable) {
  EXPECT_STREQ(ContractViolation::kind_name(ContractViolation::Kind::kRequire),
               "REQUIRE");
  EXPECT_STREQ(ContractViolation::kind_name(ContractViolation::Kind::kEnsure),
               "ENSURE");
  EXPECT_STREQ(ContractViolation::kind_name(ContractViolation::Kind::kDcheck),
               "DCHECK");
  EXPECT_STREQ(
      ContractViolation::kind_name(ContractViolation::Kind::kUnreachable),
      "UNREACHABLE");
}

}  // namespace
