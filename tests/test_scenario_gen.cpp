// Scenario-generator tests (DESIGN.md §15).
//
// The property test drives 200 seeds through generate_scenario and checks
// the structural contract: every spawn references a resolvable route, every
// scalar is finite and in range (ScenarioSpec::validate / ERPD_REQUIRE),
// demand stays within the configured bounds. Serialization is checked as a
// round-trip law — parse(emit(s)) reproduces every field bit-exactly and
// emit is a fixed point — plus a malformed-input corpus hitting every
// SpecParseStatus without ever throwing.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/check.hpp"
#include "sim/road_network.hpp"
#include "sim/scenario.hpp"
#include "sim/scenario_gen.hpp"

namespace erpd::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void expect_spec_eq(const ScenarioSpec& a, const ScenarioSpec& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.duration, b.duration);  // lint-ok: R6 hexfloat round-trip
  EXPECT_EQ(a.signal.green, b.signal.green);      // lint-ok: R6 as above
  EXPECT_EQ(a.signal.yellow, b.signal.yellow);    // lint-ok: R6 as above
  EXPECT_EQ(a.signal.all_red, b.signal.all_red);  // lint-ok: R6 as above
  EXPECT_EQ(a.maneuver.enabled, b.maneuver.enabled);
  ASSERT_EQ(a.spawns.size(), b.spawns.size());
  for (std::size_t i = 0; i < a.spawns.size(); ++i) {
    const SpawnSpec& x = a.spawns[i];
    const SpawnSpec& y = b.spawns[i];
    EXPECT_EQ(x.time, y.time);  // lint-ok: R6 hexfloat round-trip
    EXPECT_EQ(x.arm, y.arm);
    EXPECT_EQ(x.lane, y.lane);
    EXPECT_EQ(x.maneuver, y.maneuver);
    EXPECT_EQ(x.start_s, y.start_s);              // lint-ok: R6 as above
    EXPECT_EQ(x.desired_speed, y.desired_speed);  // lint-ok: R6 as above
    EXPECT_EQ(x.start_speed, y.start_speed);      // lint-ok: R6 as above
    EXPECT_EQ(x.connected, y.connected);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.lane_change, y.lane_change);
    EXPECT_EQ(x.lane_change_trigger_s,  // lint-ok: R6 as above
              y.lane_change_trigger_s);
  }
  ASSERT_EQ(a.occluders.size(), b.occluders.size());
  for (std::size_t i = 0; i < a.occluders.size(); ++i) {
    EXPECT_EQ(a.occluders[i].arm, b.occluders[i].arm);
    EXPECT_EQ(a.occluders[i].s, b.occluders[i].s);  // lint-ok: R6 as above
    EXPECT_EQ(a.occluders[i].length,  // lint-ok: R6 as above
              b.occluders[i].length);
  }
  ASSERT_EQ(a.pedestrians.size(), b.pedestrians.size());
  for (std::size_t i = 0; i < a.pedestrians.size(); ++i) {
    EXPECT_EQ(a.pedestrians[i].arm, b.pedestrians[i].arm);
    EXPECT_EQ(a.pedestrians[i].crossing, b.pedestrians[i].crossing);
    EXPECT_EQ(a.pedestrians[i].walk_speed,  // lint-ok: R6 as above
              b.pedestrians[i].walk_speed);
  }
  EXPECT_EQ(a.expect.present, b.expect.present);
  EXPECT_EQ(a.expect.collisions, b.expect.collisions);
  EXPECT_EQ(a.expect.min_vehicle_gap,  // lint-ok: R6 as above
            b.expect.min_vehicle_gap);
  EXPECT_EQ(a.expect.min_ped_gap, b.expect.min_ped_gap);  // lint-ok: R6
}

// --- Property test over 200 seeds -----------------------------------------

TEST(ScenarioGen, TwoHundredSeedsSatisfyTheSpecContract) {
  const RoadNetwork net{RoadConfig{}};
  const GenConfig gen;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const ScenarioSpec spec = generate_scenario(gen, seed);
    SCOPED_TRACE("seed " + std::to_string(seed));

    // The generator's own output must pass the spec contract wholesale.
    EXPECT_NO_THROW(spec.validate(net));

    EXPECT_EQ(spec.seed, seed);
    EXPECT_EQ(spec.duration, gen.duration);  // lint-ok: R6 copied verbatim
    EXPECT_TRUE(spec.maneuver.enabled);
    EXPECT_GE(spec.signal.green, gen.min_green);
    EXPECT_LE(spec.signal.green, gen.max_green);
    EXPECT_LE(static_cast<int>(spec.spawns.size()), gen.max_vehicles);
    EXPECT_LE(static_cast<int>(spec.pedestrians.size()),
              gen.max_pedestrians);
    EXPECT_LE(static_cast<int>(spec.occluders.size()), gen.max_occluders);

    for (const SpawnSpec& sp : spec.spawns) {
      EXPECT_TRUE(net.find_route(sp.arm, sp.lane, sp.maneuver).has_value());
      EXPECT_TRUE(std::isfinite(sp.time));
      EXPECT_TRUE(std::isfinite(sp.start_s));
      EXPECT_TRUE(std::isfinite(sp.desired_speed));
      EXPECT_TRUE(std::isfinite(sp.start_speed));
      EXPECT_GE(sp.time, 0.0);
      EXPECT_LE(sp.time, gen.max_spawn_time);
      EXPECT_GE(sp.desired_speed, kmh_to_ms(gen.min_speed_kmh) * 0.85 - 1e-9);
      EXPECT_LE(sp.desired_speed, kmh_to_ms(gen.max_speed_kmh) * 1.15 + 1e-9);
      EXPECT_GE(sp.lane_change, -1);
      EXPECT_LE(sp.lane_change, 1);
    }
    for (const PedSpec& pd : spec.pedestrians) {
      EXPECT_TRUE(std::isfinite(pd.walk_speed));
      EXPECT_GT(pd.walk_speed, 0.0);
    }
  }
}

TEST(ScenarioGen, PureFunctionOfSeed) {
  const GenConfig gen;
  EXPECT_EQ(emit_spec(generate_scenario(gen, 7)),
            emit_spec(generate_scenario(gen, 7)));
  EXPECT_NE(emit_spec(generate_scenario(gen, 7)),
            emit_spec(generate_scenario(gen, 8)));
}

// --- Config / spec contract rejection --------------------------------------

TEST(ScenarioGen, GenConfigValidateRejectsOutOfRange) {
  const auto bad = [](auto&& mutate) {
    GenConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  };
  bad([](GenConfig& c) { c.max_vehicles = c.min_vehicles - 1; });
  bad([](GenConfig& c) { c.min_speed_kmh = 0.0; });
  bad([](GenConfig& c) { c.max_speed_kmh = 500.0; });
  bad([](GenConfig& c) { c.min_connected = -0.1; });
  bad([](GenConfig& c) { c.max_connected = 1.5; });
  bad([](GenConfig& c) { c.max_pedestrians = -1; });
  bad([](GenConfig& c) { c.max_spawn_time = 0.0; });
  bad([](GenConfig& c) { c.lane_change_fraction = 2.0; });
  bad([](GenConfig& c) { c.duration = std::nan(""); });
  bad([](GenConfig& c) { c.min_green = 1.0; });
  EXPECT_NO_THROW(GenConfig{}.validate());
}

TEST(ScenarioGen, SpecValidateRejectsBrokenSpawns) {
  const RoadNetwork net{RoadConfig{}};
  const auto bad = [&net](auto&& mutate) {
    ScenarioSpec spec = generate_scenario(GenConfig{}, 1);
    mutate(spec);
    EXPECT_THROW(spec.validate(net), erpd::ContractViolation);
  };
  bad([](ScenarioSpec& s) { s.spawns.front().lane = 9; });
  bad([](ScenarioSpec& s) { s.spawns.front().start_s = 1.0e6; });
  bad([](ScenarioSpec& s) { s.spawns.front().desired_speed = -3.0; });
  bad([](ScenarioSpec& s) { s.spawns.front().lane_change = 2; });
  bad([](ScenarioSpec& s) { s.duration = kInf; });
  bad([](ScenarioSpec& s) {
    s.expect.present = true;
    s.expect.min_vehicle_gap = std::nan("");
  });
}

TEST(ScenarioGen, ScenarioConfigInvariantsStillHold) {
  // The scripted-scenario config shares the fail-loudly convention the
  // generator follows; pin that its contract also rejects garbage.
  ScenarioConfig cfg;
  cfg.speed_kmh = -5.0;
  EXPECT_THROW(cfg.validate(), erpd::ContractViolation);
  EXPECT_NO_THROW(ScenarioConfig{}.validate());
}

// --- Serialization round-trip ----------------------------------------------

TEST(ScenarioGen, EmitParseRoundTripIsIdentity) {
  const GenConfig gen;
  for (const std::uint64_t seed : {0ull, 5ull, 19ull, 101ull}) {
    ScenarioSpec spec = generate_scenario(gen, seed);
    SCOPED_TRACE("seed " + std::to_string(seed));

    const std::string text = emit_spec(spec);
    const SpecParseResult parsed = try_parse_spec(text);
    ASSERT_TRUE(parsed.ok()) << parsed.message << " at line " << parsed.line;
    expect_spec_eq(spec, parsed.spec);
    // emit is a fixed point over parse.
    EXPECT_EQ(emit_spec(parsed.spec), text);
  }
}

TEST(ScenarioGen, RoundTripPreservesExpectationsIncludingInf) {
  ScenarioSpec spec = generate_scenario(GenConfig{}, 3);
  spec.expect.present = true;
  spec.expect.collisions = 2;
  spec.expect.min_vehicle_gap = 0.0;
  spec.expect.min_ped_gap = kInf;

  const SpecParseResult parsed = try_parse_spec(emit_spec(spec));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.spec.expect.present);
  EXPECT_EQ(parsed.spec.expect.collisions, 2);
  EXPECT_EQ(parsed.spec.expect.min_vehicle_gap, 0.0);  // lint-ok: R6 exact
  EXPECT_EQ(parsed.spec.expect.min_ped_gap, kInf);     // lint-ok: R6 exact
}

// --- Malformed-input corpus -------------------------------------------------

struct MalformedCase {
  const char* name;
  const char* text;
  SpecParseStatus want;
};

TEST(ScenarioGen, TotalParserClassifiesMalformedInput) {
  const MalformedCase cases[] = {
      {"empty", "", SpecParseStatus::kBadHeader},
      {"comments-only", "# nothing here\n", SpecParseStatus::kBadHeader},
      {"wrong-magic", "erpd-pointcloud v1\nseed 1\n",
       SpecParseStatus::kBadHeader},
      {"wrong-version", "erpd-scenario v2\nseed 1\n",
       SpecParseStatus::kBadHeader},
      {"seed-missing-value", "erpd-scenario v1\nseed\n",
       SpecParseStatus::kBadSyntax},
      {"seed-not-a-number", "erpd-scenario v1\nseed banana\n",
       SpecParseStatus::kBadValue},
      {"duration-nan", "erpd-scenario v1\nduration nan\n",
       SpecParseStatus::kBadValue},
      {"duration-inf", "erpd-scenario v1\nduration inf\n",
       SpecParseStatus::kBadValue},
      {"signal-short", "erpd-scenario v1\nsignal 20.0 3.0\n",
       SpecParseStatus::kBadSyntax},
      {"spawn-short",
       "erpd-scenario v1\nspawn 0x0p+0 N 0 straight\n",
       SpecParseStatus::kBadSyntax},
      {"spawn-bad-arm",
       "erpd-scenario v1\n"
       "spawn 0x0p+0 Q 0 straight 0x1p+4 0x1p+3 0x0p+0 0 car 0 0x0p+0\n",
       SpecParseStatus::kBadValue},
      {"spawn-bad-kind",
       "erpd-scenario v1\n"
       "spawn 0x0p+0 N 0 straight 0x1p+4 0x1p+3 0x0p+0 0 boat 0 0x0p+0\n",
       SpecParseStatus::kBadValue},
      {"spawn-lane-out-of-range",
       "erpd-scenario v1\n"
       "spawn 0x0p+0 N 12 straight 0x1p+4 0x1p+3 0x0p+0 0 car 0 0x0p+0\n",
       SpecParseStatus::kBadValue},
      {"spawn-bad-lane-change",
       "erpd-scenario v1\n"
       "spawn 0x0p+0 N 0 straight 0x1p+4 0x1p+3 0x0p+0 0 car 5 0x0p+0\n",
       SpecParseStatus::kBadValue},
      {"spawn-inf-speed",
       "erpd-scenario v1\n"
       "spawn 0x0p+0 N 0 straight 0x1p+4 inf 0x0p+0 0 car 0 0x0p+0\n",
       SpecParseStatus::kBadValue},
      {"occluder-bad-bool-free-text",
       "erpd-scenario v1\nocclusion is heavy today\n",
       SpecParseStatus::kUnknownKey},
      {"ped-bad-bool",
       "erpd-scenario v1\nped N maybe 0 0x0p+0 0x1p+0 1\n",
       SpecParseStatus::kBadValue},
      {"expect-negative-collisions",
       "erpd-scenario v1\nexpect -1 0x0p+0 inf\n",
       SpecParseStatus::kBadValue},
      {"unknown-key", "erpd-scenario v1\nweather rain\n",
       SpecParseStatus::kUnknownKey},
      {"trailing-junk-token", "erpd-scenario v1\nseed 1 2\n",
       SpecParseStatus::kBadSyntax},
  };
  for (const MalformedCase& c : cases) {
    SCOPED_TRACE(c.name);
    SpecParseResult res;
    // Total parser: classification, never an exception.
    ASSERT_NO_THROW(res = try_parse_spec(c.text));
    EXPECT_EQ(res.status, c.want)
        << "got " << to_string(res.status) << " (" << res.message << ")";
    EXPECT_FALSE(res.ok());
  }
}

TEST(ScenarioGen, ParserAcceptsCommentsAndBlankLines) {
  const char* text =
      "# anchor comment\n"
      "\n"
      "erpd-scenario v1\n"
      "seed 42   # trailing comment\n"
      "duration 0x1.cp+3\n";
  const SpecParseResult res = try_parse_spec(text);
  ASSERT_TRUE(res.ok()) << res.message;
  EXPECT_EQ(res.spec.seed, 42u);
}

// --- Spec -> world construction ---------------------------------------------

TEST(ScenarioGen, BuildScenarioMatchesSpecCounts) {
  const ScenarioSpec spec = generate_scenario(GenConfig{}, 3);
  Scenario sc = build_scenario(spec, search_world_config());

  std::size_t t0_spawns = 0;
  std::size_t deferred = 0;
  for (const SpawnSpec& sp : spec.spawns) {
    if (sp.time == 0.0) {  // lint-ok: R6 spec distinguishes t=0 exactly
      ++t0_spawns;
    } else {
      ++deferred;
    }
  }
  EXPECT_EQ(sc.world.vehicles().size(), t0_spawns + spec.occluders.size());
  EXPECT_EQ(sc.world.pending_vehicles(), deferred);
  EXPECT_EQ(sc.world.pedestrians().size(), spec.pedestrians.size());
  EXPECT_EQ(sc.world.config().seed, spec.seed);
  EXPECT_TRUE(sc.world.config().maneuver.enabled);

  // Occluders materialize as parked vehicles.
  std::size_t parked = 0;
  for (const Vehicle& v : sc.world.vehicles()) {
    if (v.params().parked) ++parked;
  }
  EXPECT_EQ(parked, spec.occluders.size());
}

}  // namespace
}  // namespace erpd::sim
