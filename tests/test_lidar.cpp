#include <gtest/gtest.h>

#include <cstddef>
#include <random>

#include "core/thread_pool.hpp"
#include "geom/angle.hpp"
#include "sim/lidar.hpp"

namespace erpd::sim {
namespace {

using geom::Obb;
using geom::Pose;
using geom::Vec2;

LidarConfig small_lidar() {
  LidarConfig cfg;
  cfg.channels = 16;
  cfg.azimuth_step_deg = 1.0;
  cfg.max_range = 50.0;
  cfg.noise_sigma = 0.0;
  return cfg;
}

Pose sensor_at(Vec2 xy, double yaw = 0.0) {
  Pose p;
  p.position = {xy, 1.8};
  p.yaw = yaw;
  return p;
}

TEST(Lidar, SeesTargetInRange) {
  LidarSensor lidar(small_lidar());
  std::mt19937_64 rng(1);
  const std::vector<LidarTarget> targets = {
      {Obb{{10.0, 0.0}, 0.0, 4.5, 1.9}, 0.0, 1.6, 7}};
  const LidarScan scan = lidar.scan(sensor_at({0.0, 0.0}), targets, rng);
  EXPECT_TRUE(scan.sees(7));
  EXPECT_GT(scan.points_per_agent.at(7), 5u);
}

TEST(Lidar, DoesNotSeeBeyondRange) {
  LidarSensor lidar(small_lidar());
  std::mt19937_64 rng(2);
  const std::vector<LidarTarget> targets = {
      {Obb{{80.0, 0.0}, 0.0, 4.5, 1.9}, 0.0, 1.6, 7}};
  const LidarScan scan = lidar.scan(sensor_at({0.0, 0.0}), targets, rng);
  EXPECT_FALSE(scan.sees(7));
}

TEST(Lidar, OcclusionBlocksHiddenTarget) {
  LidarSensor lidar(small_lidar());
  std::mt19937_64 rng(3);
  // A tall truck between the sensor and a pedestrian directly behind it.
  const std::vector<LidarTarget> targets = {
      {Obb{{10.0, 0.0}, 0.0, 8.5, 2.5}, 0.0, 3.4, 1},   // truck
      {Obb{{20.0, 0.0}, 0.0, 0.5, 0.5}, 0.0, 1.75, 2},  // pedestrian
  };
  const LidarScan scan = lidar.scan(sensor_at({0.0, 0.0}), targets, rng);
  EXPECT_TRUE(scan.sees(1));
  EXPECT_FALSE(scan.sees(2)) << "pedestrian behind truck must be occluded";
}

TEST(Lidar, TargetVisibleWhenNotAligned) {
  LidarSensor lidar(small_lidar());
  std::mt19937_64 rng(4);
  // Same scene but the pedestrian stands to the side of the truck.
  const std::vector<LidarTarget> targets = {
      {Obb{{10.0, 0.0}, 0.0, 8.5, 2.5}, 0.0, 3.4, 1},
      {Obb{{10.0, 10.0}, 0.0, 0.5, 0.5}, 0.0, 1.75, 2},
  };
  const LidarScan scan = lidar.scan(sensor_at({0.0, 0.0}), targets, rng);
  EXPECT_TRUE(scan.sees(2));
}

TEST(Lidar, GroundReturnsAtSensorHeightBand) {
  LidarSensor lidar(small_lidar());
  std::mt19937_64 rng(5);
  const LidarScan scan = lidar.scan(sensor_at({0.0, 0.0}), {}, rng);
  EXPECT_GT(scan.ground_points, 0u);
  // All returns must be ground (sensor frame z ~= -1.8).
  for (const geom::Vec3& p : scan.cloud.points()) {
    EXPECT_NEAR(p.z, -1.8, 1e-6);
  }
}

TEST(Lidar, PointsAreInSensorFrame) {
  LidarSensor lidar(small_lidar());
  std::mt19937_64 rng(6);
  // Sensor displaced and rotated: a target 10 m in front of the sensor's
  // nose must appear near (10, 0) in the sensor frame.
  const Pose pose = sensor_at({100.0, 50.0}, geom::kPi / 2.0);
  const std::vector<LidarTarget> targets = {
      {Obb{{100.0, 60.0}, geom::kPi / 2.0, 4.5, 1.9}, 0.0, 1.6, 3}};
  const LidarScan scan = lidar.scan(pose, targets, rng);
  ASSERT_TRUE(scan.sees(3));
  int near_nose = 0;
  for (const geom::Vec3& p : scan.cloud.points()) {
    if (p.z > -1.0 && std::abs(p.y) < 3.0 && p.x > 5.0 && p.x < 10.0) {
      ++near_nose;
    }
  }
  EXPECT_GT(near_nose, 0);
}

TEST(Lidar, StaticTargetsCountedSeparately) {
  LidarSensor lidar(small_lidar());
  std::mt19937_64 rng(7);
  const std::vector<LidarTarget> targets = {
      {Obb{{15.0, 5.0}, 0.0, 20.0, 20.0}, 0.0, 10.0, -5}};  // building
  const LidarScan scan = lidar.scan(sensor_at({0.0, 0.0}), targets, rng);
  EXPECT_GT(scan.static_points, 0u);
  EXPECT_TRUE(scan.points_per_agent.empty());
}

TEST(Lidar, MorePointsOnCloserTargets) {
  LidarSensor lidar(small_lidar());
  std::mt19937_64 rng(8);
  const std::vector<LidarTarget> near_t = {
      {Obb{{8.0, 0.0}, 0.0, 4.5, 1.9}, 0.0, 1.6, 1}};
  const std::vector<LidarTarget> far_t = {
      {Obb{{40.0, 0.0}, 0.0, 4.5, 1.9}, 0.0, 1.6, 1}};
  const auto s_near = lidar.scan(sensor_at({0.0, 0.0}), near_t, rng);
  const auto s_far = lidar.scan(sensor_at({0.0, 0.0}), far_t, rng);
  EXPECT_GT(s_near.points_per_agent.at(1), s_far.points_per_agent.at(1));
}

TEST(Lidar, PointBudgetMatchesConfig) {
  LidarConfig cfg = small_lidar();
  EXPECT_EQ(cfg.azimuth_count(), 360);
  EXPECT_EQ(cfg.max_points(), 360u * 16u);
  LidarSensor lidar(cfg);
  std::mt19937_64 rng(9);
  const LidarScan scan = lidar.scan(sensor_at({0.0, 0.0}), {}, rng);
  EXPECT_LE(scan.cloud.size(), cfg.max_points());
}

// The points_per_agent map is merged across parallel scan chunks with an
// ERPD_ORDER_INSENSITIVE per-key += fold (src/sim/lidar.cpp). That fold is
// only sound if the per-agent tallies partition the scan's dynamic returns
// exactly: every dynamic point counted once, no point counted twice, no
// worker-count dependence. Ground and static-scenery returns are tallied
// separately, so the identity under test is
//   sum(points_per_agent) == cloud.size() - ground_points - static_points
// at every worker count the determinism suite exercises.
TEST(Lidar, PerAgentCountsPartitionDynamicReturns) {
  LidarSensor lidar(small_lidar());
  const std::vector<LidarTarget> targets = {
      {Obb{{10.0, 0.0}, 0.0, 4.5, 1.9}, 0.0, 1.6, 1},    // near car
      {Obb{{25.0, 8.0}, 0.5, 4.5, 1.9}, 0.0, 1.6, 2},    // angled car
      {Obb{{18.0, -6.0}, 0.0, 0.5, 0.5}, 0.0, 1.75, 3},  // pedestrian
      {Obb{{30.0, -12.0}, 0.0, 20.0, 8.0}, 0.0, 9.0, -4},  // building
  };

  LidarScan reference;
  bool have_reference = false;
  for (const int workers : {1, 2, 8}) {
    core::set_thread_count(workers);
    std::mt19937_64 rng(42);
    const LidarScan scan = lidar.scan(sensor_at({0.0, 0.0}), targets, rng);

    std::size_t dynamic_total = 0;
    for (const auto& [id, n] : scan.points_per_agent) {
      EXPECT_GE(id, 0) << "static scenery id leaked into points_per_agent";
      dynamic_total += n;
    }
    EXPECT_EQ(dynamic_total,
              scan.cloud.size() - scan.ground_points - scan.static_points)
        << "per-agent tallies must partition dynamic returns at " << workers
        << " workers";
    EXPECT_GT(dynamic_total, 0u);

    if (!have_reference) {
      reference = scan;
      have_reference = true;
    } else {
      EXPECT_EQ(scan.cloud.size(), reference.cloud.size());
      EXPECT_EQ(scan.ground_points, reference.ground_points);
      EXPECT_EQ(scan.static_points, reference.static_points);
      EXPECT_EQ(scan.points_per_agent.size(), reference.points_per_agent.size());
      for (const auto& [id, n] : reference.points_per_agent) {
        const auto it = scan.points_per_agent.find(id);
        ASSERT_NE(it, scan.points_per_agent.end());
        EXPECT_EQ(it->second, n)
            << "agent " << id << " count drifted at " << workers << " workers";
      }
    }
  }
  core::set_thread_count(0);
}

// Regression for the equal-distance sort hazard: two targets with bitwise-
// identical footprints produce hits at exactly the same range on every
// azimuth, and the old distance-only comparator left their order — and thus
// which target the beam "strikes" — unspecified. The comparator now breaks
// ties on candidate index, so the first-listed target deterministically
// claims every tied beam, in both the accelerated and brute-force paths.
TEST(Lidar, EqualRangeHitsBreakTiesOnCandidateOrder) {
  LidarSensor lidar(small_lidar());
  const Obb footprint{{12.0, 0.0}, 0.2, 4.0, 2.0};
  const std::vector<LidarTarget> ab = {
      {footprint, 0.0, 2.0, 1},
      {footprint, 0.0, 2.0, 2},  // same prism, listed second
  };
  const std::vector<LidarTarget> ba = {ab[1], ab[0]};

  for (const bool brute : {false, true}) {
    lidar.set_brute_force(brute);
    std::mt19937_64 rng_ab(10);
    const LidarScan s_ab = lidar.scan(sensor_at({0.0, 0.0}), ab, rng_ab);
    std::mt19937_64 rng_ba(10);
    const LidarScan s_ba = lidar.scan(sensor_at({0.0, 0.0}), ba, rng_ba);

    // Every tied beam goes to the first-listed target; the second gets none.
    ASSERT_TRUE(s_ab.sees(1)) << "brute=" << brute;
    EXPECT_EQ(s_ab.points_per_agent.count(2), 0u) << "brute=" << brute;
    ASSERT_TRUE(s_ba.sees(2)) << "brute=" << brute;
    EXPECT_EQ(s_ba.points_per_agent.count(1), 0u) << "brute=" << brute;
    // The winner's tally is order-independent.
    EXPECT_EQ(s_ab.points_per_agent.at(1), s_ba.points_per_agent.at(2))
        << "brute=" << brute;
  }
}

TEST(LineOfSight, ClearAndBlocked) {
  const std::vector<Obb> occluders = {Obb{{5.0, 0.0}, 0.0, 2.0, 2.0}};
  EXPECT_FALSE(line_of_sight({0.0, 0.0}, {10.0, 0.0}, occluders));
  EXPECT_TRUE(line_of_sight({0.0, 0.0}, {10.0, 10.0}, occluders));
  EXPECT_TRUE(line_of_sight({0.0, 0.0}, {10.0, 0.0}, {}));
}

TEST(LineOfSight, GrazingEdge) {
  const std::vector<Obb> occluders = {Obb{{5.0, 2.0}, 0.0, 2.0, 2.0}};
  // Segment passes just below the box (box spans y in [1, 3]).
  EXPECT_TRUE(line_of_sight({0.0, 0.0}, {10.0, 0.5}, occluders));
  EXPECT_FALSE(line_of_sight({0.0, 0.0}, {10.0, 4.0}, occluders));
}

}  // namespace
}  // namespace erpd::sim
