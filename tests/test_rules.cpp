#include <gtest/gtest.h>

#include "track/rules.hpp"

namespace erpd::track {
namespace {

using geom::Vec2;
using sim::Arm;
using sim::Maneuver;

class RulesTest : public ::testing::Test {
 protected:
  sim::RoadNetwork net_{sim::RoadConfig{}};
  MultiObjectTracker tracker_;
  RuleEngine rules_{net_};

  /// Feed the tracker a detection twice so the track confirms; returns id.
  int add_confirmed(Vec2 pos, Vec2 vel,
                    sim::AgentKind kind = sim::AgentKind::kCar) {
    Detection d;
    d.kind = kind;
    d.payload_bytes = 800;
    d.velocity = vel;
    d.position = pos - vel * 0.1;
    pending_.push_back(d);
    return next_expected_id_++;
  }

  RepresentativeSet select() {
    tracker_.step(pending_, 0.0);
    for (auto& d : pending_) d.position += d.velocity.value_or(Vec2{}) * 0.1;
    tracker_.step(pending_, 0.1);
    return rules_.select(tracker_.confirmed());
  }

  /// Place a vehicle on a route at arc length s moving at `speed`.
  int vehicle_on_route(int route_id, double s, double speed) {
    const sim::Route& r = net_.route(route_id);
    const Vec2 pos = r.path.point_at(s);
    const Vec2 vel = r.path.tangent_at(s) * speed;
    return add_confirmed(pos, vel);
  }

  std::vector<Detection> pending_;
  int next_expected_id_{0};
};

TEST_F(RulesTest, Rule1OnlyLeaderPredicted) {
  const int route = *net_.find_route(Arm::kSouth, 1, Maneuver::kStraight);
  const sim::Route& r = net_.route(route);
  const int back = vehicle_on_route(route, r.stop_line_s - 40.0, 8.0);
  const int front = vehicle_on_route(route, r.stop_line_s - 15.0, 8.0);
  const int middle = vehicle_on_route(route, r.stop_line_s - 27.0, 8.0);
  const auto reps = select();

  ASSERT_EQ(reps.lane_queues.size(), 1u);
  const LaneQueue& q = reps.lane_queues[0];
  ASSERT_EQ(q.track_ids.size(), 3u);
  EXPECT_EQ(q.track_ids[0], front);
  EXPECT_EQ(q.track_ids[1], middle);
  EXPECT_EQ(q.track_ids[2], back);

  EXPECT_TRUE(reps.is_predicted(front));
  EXPECT_FALSE(reps.is_predicted(middle));
  EXPECT_FALSE(reps.is_predicted(back));
  // Follower chain: middle follows front, back follows middle.
  EXPECT_EQ(reps.follower_of.at(middle), front);
  EXPECT_EQ(reps.follower_of.at(back), middle);
}

TEST_F(RulesTest, SeparateLanesSeparateQueues) {
  const int lane0 = *net_.find_route(Arm::kSouth, 0, Maneuver::kStraight);
  const int lane1 = *net_.find_route(Arm::kSouth, 1, Maneuver::kStraight);
  const sim::Route& r0 = net_.route(lane0);
  const int a = vehicle_on_route(lane0, r0.stop_line_s - 20.0, 8.0);
  const int b = vehicle_on_route(lane1, r0.stop_line_s - 20.0, 8.0);
  const auto reps = select();
  EXPECT_EQ(reps.lane_queues.size(), 2u);
  EXPECT_TRUE(reps.is_predicted(a));
  EXPECT_TRUE(reps.is_predicted(b));
}

TEST_F(RulesTest, Rule2BoundaryVehiclePredicted) {
  const int route = *net_.find_route(Arm::kSouth, 0, Maneuver::kLeft);
  const sim::Route& r = net_.route(route);
  const double mid_box = (r.box_entry_s + r.box_exit_s) / 2.0;
  const int inside = vehicle_on_route(route, mid_box, 6.0);
  const auto reps = select();
  EXPECT_TRUE(reps.is_predicted(inside));
  ASSERT_EQ(reps.boundary_vehicles.size(), 1u);
  EXPECT_EQ(reps.boundary_vehicles[0], inside);
}

TEST_F(RulesTest, Rule2IgnoresStoppedVehicleInBoundary) {
  // A stationary vehicle inside the boundary (e.g. waiting to turn) has no
  // trajectory to predict.
  const int route = *net_.find_route(Arm::kNorth, 0, Maneuver::kLeft);
  const sim::Route& r = net_.route(route);
  const double mid_box = (r.box_entry_s + r.box_exit_s) / 2.0;
  add_confirmed(r.path.point_at(mid_box), {0.0, 0.0});
  const auto reps = select();
  EXPECT_TRUE(reps.boundary_vehicles.empty());
}

TEST_F(RulesTest, ExitingVehiclesNotTracked) {
  const int route = *net_.find_route(Arm::kSouth, 1, Maneuver::kStraight);
  const sim::Route& r = net_.route(route);
  const int exiting = vehicle_on_route(route, r.box_exit_s + 20.0, 8.0);
  const auto reps = select();
  EXPECT_FALSE(reps.is_predicted(exiting));
  EXPECT_TRUE(reps.lane_queues.empty());
}

TEST_F(RulesTest, Rule3PedestrianRepresentatives) {
  // Two crowds walking different directions near the south crosswalk.
  for (int i = 0; i < 5; ++i) {
    add_confirmed({-2.0 + 0.4 * i, -10.0}, {1.4, 0.0},
                  sim::AgentKind::kPedestrian);
  }
  for (int i = 0; i < 4; ++i) {
    add_confirmed({6.0 + 0.4 * i, -10.0}, {-1.3, 0.0},
                  sim::AgentKind::kPedestrian);
  }
  const auto reps = select();
  EXPECT_EQ(reps.pedestrian_representatives.size(), 2u);
  // Members map to a representative that is predicted.
  for (const auto& [member, rep] : reps.pedestrian_rep_of) {
    EXPECT_TRUE(reps.is_predicted(rep));
    EXPECT_FALSE(reps.is_predicted(member));
  }
  // 9 pedestrians, 2 representatives -> 7 mapped members.
  EXPECT_EQ(reps.pedestrian_rep_of.size(), 7u);
}

TEST_F(RulesTest, ScalabilityReduction) {
  // Paper Fig. 5: ~30 vehicles + 20 pedestrians -> ~7 vehicles + 4
  // pedestrians predicted. Build a comparable scene and require a large
  // reduction.
  int total = 0;
  for (int arm = 0; arm < 4; ++arm) {
    for (int lane = 0; lane < 2; ++lane) {
      const auto route = net_.find_route(static_cast<Arm>(arm), lane,
                                         Maneuver::kStraight);
      const sim::Route& r = net_.route(*route);
      for (int k = 0; k < 3; ++k) {
        vehicle_on_route(*route, r.stop_line_s - 15.0 - 13.0 * k, 7.0);
        ++total;
      }
    }
  }
  for (int c = 0; c < 4; ++c) {
    const double sx = (c % 2 == 0) ? -9.0 : 9.0;
    const double sy = (c < 2) ? -10.0 : 10.0;
    for (int i = 0; i < 5; ++i) {
      add_confirmed({sx + 0.3 * i, sy}, {c % 2 ? -1.3 : 1.3, 0.0},
                    sim::AgentKind::kPedestrian);
      ++total;
    }
  }
  const auto reps = select();
  // 8 lane leaders + 4 pedestrian representatives = 12 predictions for 44
  // objects: a >3x reduction.
  EXPECT_EQ(reps.lane_leaders.size(), 8u);
  EXPECT_EQ(reps.pedestrian_representatives.size(), 4u);
  EXPECT_LT(reps.predicted_tracks.size() * 3, static_cast<std::size_t>(total));
}

TEST_F(RulesTest, EmptyInput) {
  const auto reps = rules_.select({});
  EXPECT_TRUE(reps.predicted_tracks.empty());
  EXPECT_TRUE(reps.lane_queues.empty());
}

}  // namespace
}  // namespace erpd::track
