#pragma once
// Deterministic fault injection for the vehicle <-> edge wireless links.
//
// The paper evaluates over EMP-style measured cellular bandwidth, which in
// this repo is an ideal lossless pipe (channel.hpp). Real vehicular uplinks
// are intermittent: messages drop, latency jitters, radios black out. This
// layer models those faults *deterministically*: every decision (drop a
// message? how much jitter? is this vehicle offline?) is a pure function of
// (FaultConfig::seed, stream tag, entity id, frame/epoch index) hashed
// through the counter-based splitmix64 streams in core/rng.hpp. Runs are
// therefore bit-identical for a given seed and independent of ERPD_THREADS
// or evaluation order — the property the determinism suite locks in.
//
// A default-constructed FaultConfig is inactive and the whole layer is a
// no-op: the closed loop behaves exactly as the lossless pre-fault pipeline.

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/check.hpp"
#include "core/rng.hpp"
#include "obs/metrics.hpp"
#include "sim/types.hpp"

namespace erpd::net {

/// A channel-wide burst outage: every message (both directions) offered in
/// [start, start + duration) seconds of simulated time is lost.
struct Outage {
  double start{0.0};
  double duration{0.0};
};

/// A scheduled per-vehicle radio blackout: the vehicle neither uploads nor
/// receives in [start, start + duration). On reconnect the harness resets the
/// vehicle's local pipeline (its frame-differencing baseline is stale).
struct Disconnect {
  sim::AgentId vehicle{sim::kInvalidAgent};
  double start{0.0};
  double duration{0.0};
};

/// A Byzantine (faulty, not merely lossy) sender: from `start` on, every
/// upload frame this vehicle offers carries garbage — teleported poses and
/// out-of-bounds object positions — that is structurally valid but
/// semantically wrong. Exercises the edge admission layer (DESIGN.md §12):
/// without quarantine, one such vehicle poisons tracking for everyone.
struct Byzantine {
  sim::AgentId vehicle{sim::kInvalidAgent};
  double start{0.0};
};

/// How an upload payload was mangled on the wire. Drawn per (vehicle, frame)
/// from a dedicated hash stream; kNone means this message was clean.
enum class CorruptionKind : std::uint8_t {
  kNone,
  kBitFlip,      ///< random bits flipped inside the encoded payload
  kTruncate,     ///< payload cut short mid-buffer
  kDuplicate,    ///< the frame arrives twice
  kStaleReplay,  ///< a previously sent frame arrives instead of this one
};

const char* to_string(CorruptionKind k);

struct FaultConfig {
  /// Base seed for every fault stream. Two runs with the same seed and the
  /// same config draw identical schedules.
  std::uint64_t seed{0};
  /// Per-message Bernoulli loss probability for upload frames, in [0, 1].
  double uplink_loss{0.0};
  /// Per-message Bernoulli loss probability for disseminations, in [0, 1].
  double downlink_loss{0.0};
  /// Mean of the exponential latency jitter added to each direction's
  /// transfer delay (seconds). 0 disables jitter.
  double jitter_mean{0.0};
  /// Disseminations whose simulated delivery delay (transfer + jitter)
  /// exceeds this deadline arrive too late to act on and count as misses.
  /// 0 disables deadline accounting.
  double downlink_deadline{0.0};
  /// Channel-wide burst outages.
  std::vector<Outage> outages;
  /// Scheduled per-vehicle blackouts.
  std::vector<Disconnect> disconnects;
  /// Random disconnects: each (vehicle, epoch) pair is independently offline
  /// with this probability, where epochs tile time in `disconnect_epoch`
  /// second slots. Deterministic: the decision is a hash of the pair.
  double random_disconnect_rate{0.0};
  double disconnect_epoch{2.0};
  /// Per-message Bernoulli probability that a *delivered* upload frame is
  /// corrupted in transit (bit flips / truncation / duplication / stale
  /// replay, kind drawn per message), in [0, 1]. Lost messages are never
  /// also corrupted: each message has exactly one fate.
  double uplink_corruption{0.0};
  /// Same, for dissemination messages. A corrupted dissemination fails its
  /// integrity check at the receiver and is discarded (counted once, as
  /// corrupted — never additionally as a deadline miss).
  double downlink_corruption{0.0};
  /// Byzantine senders (see Byzantine above).
  std::vector<Byzantine> byzantine;

  /// True when any fault mechanism can alter the lossless pipeline.
  bool active() const {
    return uplink_loss > 0.0 || downlink_loss > 0.0 || jitter_mean > 0.0 ||
           downlink_deadline > 0.0 || random_disconnect_rate > 0.0 ||
           uplink_corruption > 0.0 || downlink_corruption > 0.0 ||
           !outages.empty() || !disconnects.empty() || !byzantine.empty();
  }

  void validate() const {
    ERPD_REQUIRE(uplink_loss >= 0.0 && uplink_loss <= 1.0,
                 "FaultConfig: uplink_loss must be in [0,1], got ",
                 uplink_loss);
    ERPD_REQUIRE(downlink_loss >= 0.0 && downlink_loss <= 1.0,
                 "FaultConfig: downlink_loss must be in [0,1], got ",
                 downlink_loss);
    ERPD_REQUIRE(jitter_mean >= 0.0,
                 "FaultConfig: jitter_mean must be >= 0, got ", jitter_mean);
    ERPD_REQUIRE(downlink_deadline >= 0.0,
                 "FaultConfig: downlink_deadline must be >= 0, got ",
                 downlink_deadline);
    ERPD_REQUIRE(
        random_disconnect_rate >= 0.0 && random_disconnect_rate <= 1.0,
        "FaultConfig: random_disconnect_rate must be in [0,1], got ",
        random_disconnect_rate);
    ERPD_REQUIRE(disconnect_epoch > 0.0,
                 "FaultConfig: disconnect_epoch must be > 0, got ",
                 disconnect_epoch);
    for (const Outage& o : outages) {
      ERPD_REQUIRE(o.start >= 0.0,
                   "FaultConfig: outage start must be >= 0, got ", o.start);
      ERPD_REQUIRE(o.duration >= 0.0,
                   "FaultConfig: outage duration must be >= 0, got ",
                   o.duration);
    }
    for (const Disconnect& d : disconnects) {
      ERPD_REQUIRE(d.vehicle != sim::kInvalidAgent,
                   "FaultConfig: disconnect window needs a valid vehicle id");
      ERPD_REQUIRE(d.start >= 0.0,
                   "FaultConfig: disconnect start must be >= 0, got ",
                   d.start);
      ERPD_REQUIRE(d.duration >= 0.0,
                   "FaultConfig: disconnect duration must be >= 0, got ",
                   d.duration);
    }
    ERPD_REQUIRE(uplink_corruption >= 0.0 && uplink_corruption <= 1.0,
                 "FaultConfig: uplink_corruption must be in [0,1], got ",
                 uplink_corruption);
    ERPD_REQUIRE(downlink_corruption >= 0.0 && downlink_corruption <= 1.0,
                 "FaultConfig: downlink_corruption must be in [0,1], got ",
                 downlink_corruption);
    for (const Byzantine& b : byzantine) {
      ERPD_REQUIRE(b.vehicle != sim::kInvalidAgent,
                   "FaultConfig: byzantine entry needs a valid vehicle id");
      ERPD_REQUIRE(b.start >= 0.0,
                   "FaultConfig: byzantine start must be >= 0, got ", b.start);
    }
  }
};

/// Stateless view over a FaultConfig that answers per-message fault queries.
/// Every method is const and a pure function of its arguments, so callers may
/// query in any order, from any thread, and replay decisions exactly.
class LossyChannel {
 public:
  explicit LossyChannel(const FaultConfig& cfg) : cfg_(cfg) {
    cfg_.validate();
  }

  const FaultConfig& config() const { return cfg_; }
  bool active() const { return cfg_.active(); }

  /// Cache fault counters from `registry` (null detaches). Each
  /// uplink_lost / downlink_lost query that answers "lost" then bumps
  /// net.uplink_lost_msgs / net.downlink_lost_msgs, and each corruption
  /// query that answers non-kNone bumps net.uplink_corrupted_msgs /
  /// net.downlink_corrupted_msgs. Recording is write-only: the fault
  /// decisions stay pure functions of (seed, stream, ids, frame).
  void attach_metrics(obs::MetricsRegistry* registry) {
    uplink_lost_ctr_ =
        registry != nullptr ? &registry->counter("net.uplink_lost_msgs")
                            : nullptr;
    downlink_lost_ctr_ =
        registry != nullptr ? &registry->counter("net.downlink_lost_msgs")
                            : nullptr;
    uplink_corrupt_ctr_ =
        registry != nullptr ? &registry->counter("net.uplink_corrupted_msgs")
                            : nullptr;
    downlink_corrupt_ctr_ =
        registry != nullptr ? &registry->counter("net.downlink_corrupted_msgs")
                            : nullptr;
  }

  /// True while a channel-wide burst outage covers simulated time `t`.
  bool in_outage(double t) const {
    for (const Outage& o : cfg_.outages) {
      if (t >= o.start && t < o.start + o.duration) return true;
    }
    return false;
  }

  /// True while `vehicle`'s radio is down at time `t` (scheduled window or
  /// counter-hashed random epoch).
  bool vehicle_offline(sim::AgentId vehicle, double t) const;

  /// Should this vehicle's upload frame be lost on the wire?
  bool uplink_lost(sim::AgentId vehicle, int frame, double t) const;

  /// Should this dissemination message be lost on the wire? Includes burst
  /// outages and the recipient being offline.
  bool downlink_lost(sim::AgentId to, int track_id, int frame,
                     double t) const;

  /// Should this coverage-feedback message be lost on the wire? Feedback
  /// rides the downlink, so it shares the downlink fate model (burst
  /// outages, recipient offline, Bernoulli downlink_loss) but draws from its
  /// own hash stream: feedback fates never perturb dissemination fates.
  /// Not counter-billed here — the runner bills coverage.feedback_lost_msgs.
  bool feedback_lost(sim::AgentId to, int frame, double t) const;

  /// Exponential latency jitter added to the shared uplink transfer this
  /// frame (one draw per frame: the uplink is one shared pipe).
  double uplink_jitter(int frame) const;

  /// Exponential latency jitter for one dissemination message.
  double downlink_jitter(sim::AgentId to, int track_id, int frame) const;

  /// How this vehicle's (delivered, non-Byzantine) upload frame is mangled
  /// this frame; kNone means it arrives clean. The caller must only query
  /// messages that survived uplink_lost so each message is billed exactly
  /// one fate.
  CorruptionKind uplink_corruption(sim::AgentId vehicle, int frame) const;

  /// Should this (delivered) dissemination message arrive corrupted and be
  /// discarded by the receiver's integrity check? The caller must only query
  /// messages that survived downlink_lost.
  bool downlink_corrupted(sim::AgentId to, int track_id, int frame) const;

  /// True when `vehicle` is configured Byzantine at time `t`.
  bool is_byzantine(sim::AgentId vehicle, double t) const;
  bool has_byzantine() const { return !cfg_.byzantine.empty(); }
  bool corruption_active() const { return cfg_.uplink_corruption > 0.0; }

  /// Raw 64-bit word from the corruption-payload stream, for callers that
  /// need deterministic mangle parameters (which bits to flip, where to cut)
  /// beyond the Bernoulli decision. Pure function of (seed, vehicle, frame,
  /// salt).
  std::uint64_t corruption_word(sim::AgentId vehicle, int frame,
                                std::uint64_t salt) const;

 private:
  // Stream tags keep the per-purpose hash streams disjoint.
  enum Stream : std::uint64_t {
    kUplinkDrop = 0x1157,
    kDownlinkDrop = 0x2d0c,
    kUplinkJitter = 0x3a17,
    kDownlinkJitter = 0x4b28,
    kRandomDisconnect = 0x5e39,
    kUplinkCorrupt = 0x6f4a,
    kDownlinkCorrupt = 0x7c5b,
    kCorruptPayload = 0x8d6c,
    kFeedbackDrop = 0x9e7d,
  };

  /// Uniform [0, 1) draw, a pure function of (seed, stream, a, b).
  double uniform(std::uint64_t stream, std::uint64_t a, std::uint64_t b) const;

  FaultConfig cfg_;
  obs::Counter* uplink_lost_ctr_{nullptr};
  obs::Counter* downlink_lost_ctr_{nullptr};
  obs::Counter* uplink_corrupt_ctr_{nullptr};
  obs::Counter* downlink_corrupt_ctr_{nullptr};
};

}  // namespace erpd::net
