#pragma once
// Bandwidth-constrained wireless channel model.
//
// The paper inherits EMP's [9] measured cellular bandwidth: a shared uplink
// cap and a downlink cap. We model each direction as a per-frame byte budget
// (capacity x frame interval) plus a latency model for end-to-end timing
// (Fig. 14): transfer delay = base latency + bytes / bandwidth.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/check.hpp"
#include "obs/metrics.hpp"

namespace erpd::net {

struct WirelessConfig {
  /// Shared uplink capacity (all vehicles to the edge), Mbit/s.
  double uplink_mbps{40.0};
  /// Shared downlink capacity (edge to all vehicles), Mbit/s.
  double downlink_mbps{80.0};
  /// LiDAR frame interval (10 Hz sensors).
  double frame_interval{0.1};
  /// Propagation + protocol overhead per message, seconds.
  double base_latency{0.008};

  /// Contract-checks that every rate/interval a byte budget depends on is
  /// positive; a zero or negative rate silently truncates to a 0-byte budget
  /// and stalls the whole pipeline.
  void validate() const {
    ERPD_REQUIRE(uplink_mbps > 0.0,
                 "WirelessConfig: uplink_mbps must be > 0, got ", uplink_mbps);
    ERPD_REQUIRE(downlink_mbps > 0.0,
                 "WirelessConfig: downlink_mbps must be > 0, got ",
                 downlink_mbps);
    ERPD_REQUIRE(frame_interval > 0.0,
                 "WirelessConfig: frame_interval must be > 0, got ",
                 frame_interval);
    ERPD_REQUIRE(base_latency >= 0.0,
                 "WirelessConfig: base_latency must be >= 0, got ",
                 base_latency);
  }

  std::size_t uplink_budget_bytes() const {
    validate();
    return static_cast<std::size_t>(uplink_mbps * 1e6 / 8.0 * frame_interval);
  }
  std::size_t downlink_budget_bytes() const {
    validate();
    return static_cast<std::size_t>(downlink_mbps * 1e6 / 8.0 * frame_interval);
  }
};

/// Per-frame byte budget with first-come-first-served granting.
class FrameBudget {
 public:
  explicit FrameBudget(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }

  /// Attach byte counters fed by every grant decision: `granted` accumulates
  /// admitted bytes, `denied` the bytes refused (the shortfall for partial
  /// grants). Either may be null. Observability only — recording never
  /// changes what is granted.
  void attach(obs::Counter* granted, obs::Counter* denied) {
    granted_ = granted;
    denied_ = denied;
  }

  /// Bytes still grantable this frame. Guarded so a corrupted or
  /// over-granted state reports 0 instead of underflowing std::size_t to a
  /// near-infinite budget; ERPD_DCHECK still flags the broken invariant in
  /// checked builds.
  std::size_t remaining() const {
    ERPD_DCHECK(used_ <= capacity_, "FrameBudget: used ", used_,
                " exceeds capacity ", capacity_);
    return used_ <= capacity_ ? capacity_ - used_ : 0;
  }

  /// True if the whole request fits; grants it atomically.
  bool try_grant(std::size_t bytes) {
    if (bytes > remaining()) {
      if (denied_ != nullptr) denied_->add(bytes);
      return false;
    }
    used_ += bytes;
    ERPD_ENSURE(used_ <= capacity_, "FrameBudget: grant of ", bytes,
                " bytes overflowed capacity ", capacity_);
    if (granted_ != nullptr) granted_->add(bytes);
    return true;
  }

  /// Grant as much of the request as fits; returns granted bytes.
  std::size_t grant_partial(std::size_t bytes) {
    const std::size_t g = bytes <= remaining() ? bytes : remaining();
    used_ += g;
    ERPD_ENSURE(used_ <= capacity_, "FrameBudget: partial grant of ", g,
                " bytes overflowed capacity ", capacity_);
    if (granted_ != nullptr) granted_->add(g);
    if (denied_ != nullptr) denied_->add(bytes - g);
    return g;
  }

  void reset() { used_ = 0; }

 private:
  std::size_t capacity_;
  std::size_t used_{0};
  obs::Counter* granted_{nullptr};
  obs::Counter* denied_{nullptr};
};

/// Per-frame simulated-latency budget with first-come-first-served granting
/// — FrameBudget's grant discipline over integer nanoseconds instead of
/// bytes. The edge's admission controller (DESIGN.md §17) charges each
/// upload's estimated decode+merge cost against one of these; integer
/// nanoseconds keep every grant decision exact and platform-independent.
class LatencyBudget {
 public:
  explicit LatencyBudget(std::uint64_t capacity_ns) : capacity_(capacity_ns) {}

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }

  /// Attach cost counters fed by every grant decision: `granted` accumulates
  /// admitted nanoseconds, `denied` the refused ones. Either may be null.
  /// Observability only — recording never changes what is granted.
  void attach(obs::Counter* granted, obs::Counter* denied) {
    granted_ = granted;
    denied_ = denied;
  }

  /// Nanoseconds still grantable this frame. Same underflow guard as
  /// FrameBudget::remaining.
  std::uint64_t remaining() const {
    ERPD_DCHECK(used_ <= capacity_, "LatencyBudget: used ", used_,
                " exceeds capacity ", capacity_);
    return used_ <= capacity_ ? capacity_ - used_ : 0;
  }

  /// True if the whole cost fits; grants it atomically. A denied grant
  /// leaves the budget untouched, so the freed headroom stays available for
  /// later (cheaper) requests — the re-grant discipline FrameBudget uses.
  bool try_grant(std::uint64_t cost_ns) {
    if (cost_ns > remaining()) {
      if (denied_ != nullptr) denied_->add(cost_ns);
      return false;
    }
    used_ += cost_ns;
    ERPD_ENSURE(used_ <= capacity_, "LatencyBudget: grant of ", cost_ns,
                " ns overflowed capacity ", capacity_);
    if (granted_ != nullptr) granted_->add(cost_ns);
    return true;
  }

  void reset() { used_ = 0; }

 private:
  std::uint64_t capacity_;
  std::uint64_t used_{0};
  obs::Counter* granted_{nullptr};
  obs::Counter* denied_{nullptr};
};

/// Transfer completion delay for a message of `bytes` over a link of
/// `mbps`, including base latency. Contract-checks (ERPD_REQUIRE ->
/// ContractViolation) that the bandwidth is positive: a non-positive rate
/// has no physical delay and must never silently model a free link.
double transfer_delay(std::size_t bytes, double mbps, double base_latency);

/// Running bandwidth accounting for the evaluation plots.
class BandwidthMeter {
 public:
  void add(std::size_t bytes) {
    total_bytes_ += bytes;
    ++frames_;
  }

  std::size_t total_bytes() const { return total_bytes_; }
  std::size_t frames() const { return frames_; }

  /// Average Mbit/s over `elapsed_seconds`.
  double mbps(double elapsed_seconds) const;

  /// Average bytes per recorded frame.
  double bytes_per_frame() const;

  void reset() {
    total_bytes_ = 0;
    frames_ = 0;
  }

 private:
  std::size_t total_bytes_{0};
  std::size_t frames_{0};
};

}  // namespace erpd::net
