#include "net/channel.hpp"

namespace erpd::net {

double transfer_delay(std::size_t bytes, double mbps, double base_latency) {
  if (mbps <= 0.0) return base_latency;
  return base_latency + static_cast<double>(bytes) * 8.0 / (mbps * 1e6);
}

double BandwidthMeter::mbps(double elapsed_seconds) const {
  if (elapsed_seconds <= 0.0) return 0.0;
  return static_cast<double>(total_bytes_) * 8.0 / 1e6 / elapsed_seconds;
}

double BandwidthMeter::bytes_per_frame() const {
  if (frames_ == 0) return 0.0;
  return static_cast<double>(total_bytes_) / static_cast<double>(frames_);
}

}  // namespace erpd::net
