#include "net/channel.hpp"

#include "core/check.hpp"

namespace erpd::net {

double transfer_delay(std::size_t bytes, double mbps, double base_latency) {
  // A non-positive rate used to silently return the bare base latency —
  // i.e. an infinitely fast link — which turned a config typo into
  // optimistic latency numbers. It is a contract violation instead: every
  // real call site feeds a WirelessConfig rate that validate() already
  // requires to be positive.
  ERPD_REQUIRE(mbps > 0.0, "transfer_delay: bandwidth must be > 0 Mbit/s, got ",
               mbps);
  return base_latency + static_cast<double>(bytes) * 8.0 / (mbps * 1e6);
}

double BandwidthMeter::mbps(double elapsed_seconds) const {
  if (elapsed_seconds <= 0.0) return 0.0;
  return static_cast<double>(total_bytes_) * 8.0 / 1e6 / elapsed_seconds;
}

double BandwidthMeter::bytes_per_frame() const {
  if (frames_ == 0) return 0.0;
  return static_cast<double>(total_bytes_) / static_cast<double>(frames_);
}

}  // namespace erpd::net
