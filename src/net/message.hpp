#pragma once
// Wire messages between vehicles and the edge server.
//
// Uplink: each connected vehicle sends, per LiDAR frame, its SLAM pose plus
// the extracted moving-object clouds (already world-frame; the coordinate
// transform is deterministic given the pose, so carrying world coordinates is
// equivalent to carrying sensor coordinates + T_lw as the paper describes).
// Downlink: the edge server sends per-object perception payloads to chosen
// vehicles, as decided by the dissemination algorithm.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/mat4.hpp"
#include "geom/vec2.hpp"
#include "pointcloud/encoding.hpp"
#include "pointcloud/pointcloud.hpp"
#include "sim/types.hpp"

namespace erpd::net {

/// One extracted object inside an upload frame.
struct ObjectUpload {
  /// True when the uploader segmented this cloud into a single object (Ours);
  /// false for unsegmented blobs (EMP Voronoi cells, raw frames) that the
  /// server must detect objects in itself.
  bool object_granular{false};
  /// Ground-truth agent this cloud was measured from (used only by the
  /// simulator harness for scoring; the server never reads it).
  sim::AgentId truth_id{sim::kInvalidAgent};
  geom::Vec3 centroid_world{};
  geom::Vec2 velocity_world{};
  std::size_t point_count{0};
  /// Bytes on the wire for this object's cloud (quantized encoding).
  std::size_t bytes{0};
  /// Decoded payload, world frame.
  pc::PointCloud cloud_world;
  /// Actual on-the-wire buffer, populated when the fault layer mangles
  /// payloads or when the redundancy layer ships delta/keyframe chunks
  /// (wire_present). The edge then validates it with pc::try_decode /
  /// pc::try_decode_delta instead of trusting cloud_world; on the plain
  /// lossless path the buffer is never materialized, so that pipeline
  /// carries zero extra bytes.
  pc::EncodedCloud wire{};
  bool wire_present{false};
  /// Stable per-uploader object identity assigned by the vehicle client's
  /// local matcher; the delta protocol keys keyframe bases by
  /// (vehicle, object_seq). 0 means "no identity" (redundancy off).
  std::uint64_t object_seq{0};
  /// True when `wire` carries a delta chunk against the last keyframe sent
  /// under the same object_seq (DESIGN.md §16).
  bool is_delta{false};
};

struct UploadFrame {
  sim::AgentId vehicle{sim::kInvalidAgent};
  geom::Pose pose{};
  double timestamp{0.0};
  /// Monotone per-vehicle upload counter, echoed back in CoverageFeedback
  /// acks so the client can tell which keyframes the edge has actually
  /// admitted before sending deltas against them. 0 = unsequenced.
  std::uint64_t upload_seq{0};
  std::vector<ObjectUpload> objects;
  /// Pose + framing overhead in bytes.
  static constexpr std::size_t kFrameOverhead = 64;

  std::size_t total_bytes() const {
    std::size_t n = kFrameOverhead;
    for (const ObjectUpload& o : objects) n += o.bytes;
    return n;
  }
};

/// One dissemination decision: send object data to a vehicle.
struct Dissemination {
  sim::AgentId to{sim::kInvalidAgent};
  /// Edge-server track id of the object being disseminated.
  int track_id{-1};
  /// Ground-truth agent behind the track (harness feedback only).
  sim::AgentId about{sim::kInvalidAgent};
  std::size_t bytes{0};
  double relevance{0.0};
};

/// One map region in a coverage-feedback message: the Voronoi cell owned by
/// `owner`'s last reported position, with the edge's confidence that the
/// region is already well observed (confirmed tracks + recent upload
/// density, EMA-smoothed), in [0, 1].
struct CoverageRegion {
  sim::AgentId owner{sim::kInvalidAgent};
  geom::Vec2 site{};
  double confidence{0.0};
};

/// Edge -> vehicle coverage feedback, piggybacked on the downlink
/// (DESIGN.md §16). Carries the full region map (so the receiver can locate
/// any extracted object's region by nearest site) plus an upload-sequence
/// ack used to gate delta encoding. Rides the lossy channel: loss or
/// staleness degrades to more conservative uploading, never to data loss.
struct CoverageFeedback {
  sim::AgentId to{sim::kInvalidAgent};
  double timestamp{0.0};
  /// Highest UploadFrame::upload_seq the edge has admitted from `to`
  /// (0 = nothing admitted yet, has_ack false).
  std::uint64_t last_admitted_upload_seq{0};
  bool has_ack{false};
  std::vector<CoverageRegion> regions;

  /// Modeled wire size: framing + ack overhead, then a packed
  /// (id, site as 2 x f32, confidence as u8) record per region.
  static constexpr std::size_t kOverheadBytes = 16;
  static constexpr std::size_t kBytesPerRegion = 16;
  std::size_t wire_bytes() const {
    return kOverheadBytes + regions.size() * kBytesPerRegion;
  }
};

}  // namespace erpd::net
