#pragma once
// Wire messages between vehicles and the edge server.
//
// Uplink: each connected vehicle sends, per LiDAR frame, its SLAM pose plus
// the extracted moving-object clouds (already world-frame; the coordinate
// transform is deterministic given the pose, so carrying world coordinates is
// equivalent to carrying sensor coordinates + T_lw as the paper describes).
// Downlink: the edge server sends per-object perception payloads to chosen
// vehicles, as decided by the dissemination algorithm.

#include <cstddef>
#include <vector>

#include "geom/mat4.hpp"
#include "geom/vec2.hpp"
#include "pointcloud/encoding.hpp"
#include "pointcloud/pointcloud.hpp"
#include "sim/types.hpp"

namespace erpd::net {

/// One extracted object inside an upload frame.
struct ObjectUpload {
  /// True when the uploader segmented this cloud into a single object (Ours);
  /// false for unsegmented blobs (EMP Voronoi cells, raw frames) that the
  /// server must detect objects in itself.
  bool object_granular{false};
  /// Ground-truth agent this cloud was measured from (used only by the
  /// simulator harness for scoring; the server never reads it).
  sim::AgentId truth_id{sim::kInvalidAgent};
  geom::Vec3 centroid_world{};
  geom::Vec2 velocity_world{};
  std::size_t point_count{0};
  /// Bytes on the wire for this object's cloud (quantized encoding).
  std::size_t bytes{0};
  /// Decoded payload, world frame.
  pc::PointCloud cloud_world;
  /// Actual on-the-wire buffer, populated only when the fault layer mangles
  /// payloads (wire_present). The edge then validates it with pc::try_decode
  /// instead of trusting cloud_world; on the clean path the buffer is never
  /// materialized, so the lossless pipeline carries zero extra bytes.
  pc::EncodedCloud wire{};
  bool wire_present{false};
};

struct UploadFrame {
  sim::AgentId vehicle{sim::kInvalidAgent};
  geom::Pose pose{};
  double timestamp{0.0};
  std::vector<ObjectUpload> objects;
  /// Pose + framing overhead in bytes.
  static constexpr std::size_t kFrameOverhead = 64;

  std::size_t total_bytes() const {
    std::size_t n = kFrameOverhead;
    for (const ObjectUpload& o : objects) n += o.bytes;
    return n;
  }
};

/// One dissemination decision: send object data to a vehicle.
struct Dissemination {
  sim::AgentId to{sim::kInvalidAgent};
  /// Edge-server track id of the object being disseminated.
  int track_id{-1};
  /// Ground-truth agent behind the track (harness feedback only).
  sim::AgentId about{sim::kInvalidAgent};
  std::size_t bytes{0};
  double relevance{0.0};
};

}  // namespace erpd::net
