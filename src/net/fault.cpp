#include "net/fault.hpp"

namespace erpd::net {

const char* to_string(CorruptionKind k) {
  switch (k) {
    case CorruptionKind::kNone: return "none";
    case CorruptionKind::kBitFlip: return "bit-flip";
    case CorruptionKind::kTruncate: return "truncate";
    case CorruptionKind::kDuplicate: return "duplicate";
    case CorruptionKind::kStaleReplay: return "stale-replay";
  }
  return "?";
}

double LossyChannel::uniform(std::uint64_t stream, std::uint64_t a,
                             std::uint64_t b) const {
  core::SplitMix64 gen(core::seed_mix(cfg_.seed, stream, a, b));
  // 53 uniform mantissa bits -> [0, 1).
  return std::ldexp(static_cast<double>(gen() >> 11), -53);
}

bool LossyChannel::vehicle_offline(sim::AgentId vehicle, double t) const {
  for (const Disconnect& d : cfg_.disconnects) {
    if (d.vehicle == vehicle && t >= d.start && t < d.start + d.duration) {
      return true;
    }
  }
  if (cfg_.random_disconnect_rate > 0.0) {
    const auto epoch =
        static_cast<std::uint64_t>(std::floor(t / cfg_.disconnect_epoch));
    return uniform(kRandomDisconnect, static_cast<std::uint64_t>(vehicle),
                   epoch) < cfg_.random_disconnect_rate;
  }
  return false;
}

bool LossyChannel::uplink_lost(sim::AgentId vehicle, int frame,
                               double t) const {
  const bool lost =
      in_outage(t) ||
      (cfg_.uplink_loss > 0.0 &&
       uniform(kUplinkDrop, static_cast<std::uint64_t>(vehicle),
               static_cast<std::uint64_t>(frame)) < cfg_.uplink_loss);
  if (lost && uplink_lost_ctr_ != nullptr) uplink_lost_ctr_->add();
  return lost;
}

bool LossyChannel::downlink_lost(sim::AgentId to, int track_id, int frame,
                                 double t) const {
  // Mix recipient and track into one counter so two disseminations in the
  // same frame draw independent fates.
  const std::uint64_t msg =
      core::seed_mix(static_cast<std::uint64_t>(to),
                     static_cast<std::uint64_t>(track_id));
  const bool lost =
      in_outage(t) || vehicle_offline(to, t) ||
      (cfg_.downlink_loss > 0.0 &&
       uniform(kDownlinkDrop, msg, static_cast<std::uint64_t>(frame)) <
           cfg_.downlink_loss);
  if (lost && downlink_lost_ctr_ != nullptr) downlink_lost_ctr_->add();
  return lost;
}

bool LossyChannel::feedback_lost(sim::AgentId to, int frame, double t) const {
  return in_outage(t) || vehicle_offline(to, t) ||
         (cfg_.downlink_loss > 0.0 &&
          uniform(kFeedbackDrop, static_cast<std::uint64_t>(to),
                  static_cast<std::uint64_t>(frame)) < cfg_.downlink_loss);
}

double LossyChannel::uplink_jitter(int frame) const {
  if (cfg_.jitter_mean <= 0.0) return 0.0;
  const double u = uniform(kUplinkJitter, static_cast<std::uint64_t>(frame), 0);
  // Inverse-CDF exponential; u < 1 so log1p(-u) is finite.
  return -cfg_.jitter_mean * std::log1p(-u);
}

double LossyChannel::downlink_jitter(sim::AgentId to, int track_id,
                                     int frame) const {
  if (cfg_.jitter_mean <= 0.0) return 0.0;
  const std::uint64_t msg =
      core::seed_mix(static_cast<std::uint64_t>(to),
                     static_cast<std::uint64_t>(track_id));
  const double u =
      uniform(kDownlinkJitter, msg, static_cast<std::uint64_t>(frame));
  return -cfg_.jitter_mean * std::log1p(-u);
}

CorruptionKind LossyChannel::uplink_corruption(sim::AgentId vehicle,
                                               int frame) const {
  if (cfg_.uplink_corruption <= 0.0) return CorruptionKind::kNone;
  const std::uint64_t v = static_cast<std::uint64_t>(vehicle);
  const std::uint64_t f = static_cast<std::uint64_t>(frame);
  if (uniform(kUplinkCorrupt, v, f) >= cfg_.uplink_corruption) {
    return CorruptionKind::kNone;
  }
  // The kind comes from an independent word of the same stream so the
  // Bernoulli decision and the mangle shape do not correlate.
  const auto kind = static_cast<CorruptionKind>(
      1 + corruption_word(vehicle, frame, /*salt=*/0) % 4);
  if (uplink_corrupt_ctr_ != nullptr) uplink_corrupt_ctr_->add();
  return kind;
}

bool LossyChannel::downlink_corrupted(sim::AgentId to, int track_id,
                                      int frame) const {
  if (cfg_.downlink_corruption <= 0.0) return false;
  const std::uint64_t msg =
      core::seed_mix(static_cast<std::uint64_t>(to),
                     static_cast<std::uint64_t>(track_id));
  const bool corrupted =
      uniform(kDownlinkCorrupt, msg, static_cast<std::uint64_t>(frame)) <
      cfg_.downlink_corruption;
  if (corrupted && downlink_corrupt_ctr_ != nullptr) {
    downlink_corrupt_ctr_->add();
  }
  return corrupted;
}

bool LossyChannel::is_byzantine(sim::AgentId vehicle, double t) const {
  for (const Byzantine& b : cfg_.byzantine) {
    if (b.vehicle == vehicle && t >= b.start) return true;
  }
  return false;
}

std::uint64_t LossyChannel::corruption_word(sim::AgentId vehicle, int frame,
                                            std::uint64_t salt) const {
  core::SplitMix64 gen(core::seed_mix(
      cfg_.seed, kCorruptPayload,
      core::seed_mix(static_cast<std::uint64_t>(vehicle),
                     static_cast<std::uint64_t>(frame)),
      salt));
  return gen();
}

}  // namespace erpd::net
