#include "pointcloud/moving_extractor.hpp"

#include <algorithm>
#include <limits>

#include "pointcloud/voxel_grid.hpp"

namespace erpd::pc {

std::size_t ExtractionResult::total_points() const {
  std::size_t n = 0;
  for (const ExtractedObject& o : objects) n += o.point_count;
  return n;
}

PointCloud ExtractionResult::merged_world() const {
  PointCloud out;
  out.reserve(total_points());
  for (const ExtractedObject& o : objects) out.append(o.points_world);
  return out;
}

MovingObjectExtractor::MovingObjectExtractor(MovingExtractorConfig cfg)
    : cfg_(cfg) {}

void MovingObjectExtractor::reset() {
  tracked_.clear();
  last_t_.reset();
}

ExtractionResult MovingObjectExtractor::process(const PointCloud& sensor_frame,
                                                const geom::Pose& ego_pose,
                                                double t) {
  ExtractionResult res;
  res.stats.raw_points = sensor_frame.size();

  // Stage 1: ground removal by z-threshold.
  PointCloud no_ground = remove_ground(sensor_frame, cfg_.ground);
  res.stats.after_ground = no_ground.size();

  // Optional voxel thinning keeps DBSCAN tractable on dense frames; object
  // identity is unaffected because clusters span many voxels.
  PointCloud work = cfg_.voxel_size > 0.0
                        ? voxel_downsample(no_ground, cfg_.voxel_size)
                        : std::move(no_ground);
  res.stats.after_voxel = work.size();

  // Stage 2: segment objects.
  const DbscanResult seg = dbscan(work, cfg_.dbscan);
  std::vector<ObjectCluster> clusters = extract_clusters(work, seg);
  std::erase_if(clusters, [&](const ObjectCluster& c) {
    if (c.point_count() < cfg_.min_cluster_points) return true;
    const geom::Vec2 e = c.footprint.extent();
    return std::max(e.x, e.y) > cfg_.max_object_extent;
  });
  res.stats.clusters = clusters.size();

  // Stage 3: ego-motion compensation — bring cluster geometry to world frame.
  const geom::Mat4 t_lw = geom::Mat4::from_pose(ego_pose);
  const double dt = last_t_ ? std::max(t - *last_t_, 1e-6) : 0.0;

  // Only clusters tracked *before* this frame are match candidates; clusters
  // appended below (new objects) must not be matched within the same frame.
  const std::size_t n_prev = tracked_.size();
  std::vector<bool> matched_prev(n_prev, false);
  for (const ObjectCluster& c : clusters) {
    const geom::Vec3 cw = t_lw.transform_point(c.centroid);

    // Nearest unmatched previously-tracked cluster within the gate.
    std::size_t best = n_prev;
    double best_d = cfg_.match_radius;
    for (std::size_t i = 0; i < n_prev; ++i) {
      if (matched_prev[i]) continue;
      const double d = (tracked_[i].centroid_world - cw).norm();
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }

    bool moving = false;
    geom::Vec2 vel{};
    if (best < n_prev && dt > 0.0) {
      TrackedCluster& tc = tracked_[best];
      matched_prev[best] = true;
      tc.history.emplace_back(t, cw);
      // Keep only samples inside the sliding window.
      std::erase_if(tc.history, [&](const auto& e) {
        return e.first < t - cfg_.window;
      });
      // Displacement over the window, with a jitter floor: per-frame centroid
      // noise from LiDAR resampling must not read as motion.
      const auto& [t0, c0] = tc.history.front();
      const double span = t - t0;
      const geom::Vec2 disp = cw.xy() - c0.xy();
      if (span > 0.0) {
        const double threshold =
            std::max(cfg_.min_displacement, cfg_.min_speed * span);
        moving = disp.norm() >= threshold;
        vel = disp / span;
      }
      // Hysteresis: a confirmed-moving object pausing briefly (a pedestrian
      // at the curb) keeps uploading at half the displacement threshold.
      if (!moving && tc.confirmed_moving &&
          disp.norm() >= 0.5 * cfg_.min_displacement) {
        moving = true;
      }
      tc.centroid_world = cw;
      tc.last_seen = t;
      tc.missed = 0;
      tc.confirmed_moving = moving;
    } else {
      // New cluster: no motion evidence yet; conservatively not uploaded
      // until later frames establish displacement.
      TrackedCluster tc;
      tc.centroid_world = cw;
      tc.history.emplace_back(t, cw);
      tc.last_seen = t;
      tracked_.push_back(std::move(tc));
    }

    if (moving) {
      ExtractedObject obj;
      obj.points_world = work.subset(c.indices).transformed(t_lw);
      obj.centroid_world = cw;
      obj.velocity_world = vel;
      obj.point_count = c.indices.size();
      res.objects.push_back(std::move(obj));
    }
  }

  // Age out clusters that disappeared.
  for (std::size_t i = 0; i < n_prev; ++i) {
    if (!matched_prev[i]) ++tracked_[i].missed;
  }
  std::erase_if(tracked_, [&](const TrackedCluster& tc) {
    return tc.missed > cfg_.max_missed_frames;
  });

  res.stats.moving_clusters = res.objects.size();
  res.stats.moving_points = res.total_points();
  last_t_ = t;
  return res;
}

}  // namespace erpd::pc
