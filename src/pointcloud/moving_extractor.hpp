#pragma once
// Moving Objects Extraction (paper §II-B).
//
// Runs on each vehicle: per LiDAR frame, remove ground points, segment the
// rest with DBSCAN, and compare cluster positions across consecutive frames
// (after ego-motion compensation into the world frame). Clusters whose
// centroid moved more than a displacement threshold are *moving* objects
// (vehicles, pedestrians) and their points are kept for upload; static
// clusters (buildings, parked vehicles) are discarded. This shrinks a 2-3 MB
// frame to tens of KB.

#include <optional>
#include <vector>

#include "geom/mat4.hpp"
#include "pointcloud/dbscan.hpp"
#include "pointcloud/ground_filter.hpp"
#include "pointcloud/pointcloud.hpp"

namespace erpd::pc {

struct MovingExtractorConfig {
  GroundFilterConfig ground{};
  DbscanConfig dbscan{0.9, 4};
  /// Voxel size for pre-clustering downsampling; 0 disables.
  double voxel_size{0.25};
  /// Maximum world-frame centroid distance for matching a cluster to one seen
  /// in the previous frame (meters).
  double match_radius{3.0};
  /// Minimum world-frame speed (m/s) for a cluster to count as moving.
  double min_speed{0.4};
  /// Jitter floor: centroid displacement below this (meters, over the
  /// observation window) is indistinguishable from sampling noise.
  double min_displacement{0.6};
  /// Sliding window (seconds) over which displacement is measured.
  double window{1.0};
  /// Clusters smaller than this are sensor noise and dropped.
  std::size_t min_cluster_points{4};
  /// Clusters with a planar extent beyond this are infrastructure (walls,
  /// building faces): their visible portion grows as the sensor moves, which
  /// naive frame differencing would misread as motion. Never uploaded.
  double max_object_extent{12.0};
  /// How many frames a cluster may be unmatched before it is forgotten.
  int max_missed_frames{3};
};

/// One extracted moving object, in world coordinates.
struct ExtractedObject {
  PointCloud points_world;
  geom::Vec3 centroid_world{};
  geom::Vec2 velocity_world{};  // estimated from the centroid displacement
  std::size_t point_count{0};
};

struct ExtractionStats {
  std::size_t raw_points{0};
  std::size_t after_ground{0};
  std::size_t after_voxel{0};
  std::size_t clusters{0};
  std::size_t moving_clusters{0};
  std::size_t moving_points{0};
};

struct ExtractionResult {
  std::vector<ExtractedObject> objects;
  ExtractionStats stats;

  /// Total moving points across objects.
  std::size_t total_points() const;
  /// All moving points merged into one world-frame cloud.
  PointCloud merged_world() const;
};

/// Stateful per-vehicle extractor; feed frames in timestamp order.
class MovingObjectExtractor {
 public:
  explicit MovingObjectExtractor(MovingExtractorConfig cfg = {});

  /// Process one sensor-frame cloud captured at `ego_pose` and time `t` (s).
  ExtractionResult process(const PointCloud& sensor_frame,
                           const geom::Pose& ego_pose, double t);

  void reset();

 private:
  struct TrackedCluster {
    geom::Vec3 centroid_world{};
    /// Recent (time, world centroid) samples within the sliding window.
    std::vector<std::pair<double, geom::Vec3>> history;
    double last_seen{0.0};
    int missed{0};
    bool confirmed_moving{false};
  };

  MovingExtractorConfig cfg_;
  std::vector<TrackedCluster> tracked_;
  std::optional<double> last_t_;
};

}  // namespace erpd::pc
