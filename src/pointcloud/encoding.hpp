#pragma once
// Quantized wire encoding for uploaded/disseminated point clouds.
//
// The paper notes the reduced cloud can be compressed further (Draco-style,
// ref [15]). We implement a simple, exact codec: points are quantized to a
// fixed resolution inside their bounding box and packed as 16-bit offsets.
// This gives a realistic bytes-on-the-wire model for the bandwidth
// experiments (Figs. 12 and 13) while staying fully self-contained.
//
// The wire format is defensible (DESIGN.md §12): the header carries a CRC32
// over the rest of the buffer, and `try_decode` is a *total* function over
// arbitrary bytes — it classifies malformed input through DecodeStatus and
// never throws, crashes, or reads out of bounds. `decode` keeps the trusted
// in-process signature and contract-checks that the buffer validates.

#include <cstdint>
#include <vector>

#include "pointcloud/pointcloud.hpp"

namespace erpd::pc {

struct EncodingConfig {
  /// Quantization resolution in meters. 2 cm keeps object shape intact.
  double resolution{0.02};
};

/// Wire-format constants, exported so schedulers that size or truncate
/// payloads (e.g. the uplink cap) stay in lockstep with the codec instead of
/// hardcoding byte counts.
inline constexpr std::size_t kEncodedHeaderBytes =
    4 /*count*/ + 4 /*crc32*/ + 8 /*resolution*/ + 3 * 8 /*origin*/;
inline constexpr std::size_t kBytesPerPoint = 6;  // 3 x uint16 offsets

/// Serialized cloud: self-describing byte buffer.
struct EncodedCloud {
  std::vector<std::uint8_t> bytes;
  std::size_t point_count{0};

  std::size_t size_bytes() const { return bytes.size(); }
};

/// Why a buffer failed (or passed) validation, from cheapest structural
/// check to the semantic ones. Exactly one status per buffer: checks run in
/// declaration order and the first failure wins.
enum class DecodeStatus : std::uint8_t {
  kOk,
  kTruncatedHeader,  ///< fewer than kEncodedHeaderBytes bytes
  kSizeMismatch,     ///< buffer size != header + count * stride
  kBadChecksum,      ///< CRC32 over (header-sans-crc + payload) disagrees
  kBadResolution,    ///< resolution non-finite or <= 0
  kBadOrigin,        ///< any origin component non-finite
};

const char* to_string(DecodeStatus s);

/// Result of validating + decoding an untrusted buffer.
struct DecodeResult {
  DecodeStatus status{DecodeStatus::kOk};
  /// Decoded points; empty unless status == kOk.
  PointCloud cloud;
  /// Header point count (only meaningful when the header was readable).
  std::size_t point_count{0};

  bool ok() const { return status == DecodeStatus::kOk; }
};

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `n` bytes.
/// Exposed so tests and the ingest layer can recompute or deliberately break
/// the checksum of a buffer.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// Encode a cloud. Contract-checks (ERPD_REQUIRE -> ContractViolation) that
/// the resolution is positive, the point count fits the 32-bit wire counter,
/// and the cloud's extent fits what 16-bit offsets can address at the
/// configured resolution (~1.3 km at 2 cm) — none of which can fail for
/// per-object clouds.
EncodedCloud encode(const PointCloud& cloud, const EncodingConfig& cfg = {});

/// Total validation + decode of an untrusted buffer. Never throws and never
/// invokes UB, for arbitrary bytes: malformed input comes back as a non-kOk
/// status with an empty cloud. Lossy only up to the quantization resolution.
DecodeResult try_decode(const EncodedCloud& enc);

/// Trusted-path decode: contract-checks that the buffer validates (use
/// try_decode for anything that crossed a wire). Lossy only up to the
/// quantization resolution.
PointCloud decode(const EncodedCloud& enc);

/// Size the encoder would produce without building the buffer (fast path for
/// schedulers that only need data sizes). Contract-checks that the size
/// computation cannot overflow for adversarial counts.
std::size_t encoded_size_bytes(std::size_t point_count);

}  // namespace erpd::pc
