#pragma once
// Quantized wire encoding for uploaded/disseminated point clouds.
//
// The paper notes the reduced cloud can be compressed further (Draco-style,
// ref [15]). We implement a simple, exact codec: points are quantized to a
// fixed resolution inside their bounding box and packed as 16-bit offsets.
// This gives a realistic bytes-on-the-wire model for the bandwidth
// experiments (Figs. 12 and 13) while staying fully self-contained.

#include <cstdint>
#include <vector>

#include "pointcloud/pointcloud.hpp"

namespace erpd::pc {

struct EncodingConfig {
  /// Quantization resolution in meters. 2 cm keeps object shape intact.
  double resolution{0.02};
};

/// Wire-format constants, exported so schedulers that size or truncate
/// payloads (e.g. the uplink cap) stay in lockstep with the codec instead of
/// hardcoding byte counts.
inline constexpr std::size_t kEncodedHeaderBytes =
    8 /*count*/ + 8 /*resolution*/ + 3 * 8 /*origin*/;
inline constexpr std::size_t kBytesPerPoint = 6;  // 3 x uint16 offsets

/// Serialized cloud: self-describing byte buffer.
struct EncodedCloud {
  std::vector<std::uint8_t> bytes;
  std::size_t point_count{0};

  std::size_t size_bytes() const { return bytes.size(); }
};

/// Encode a cloud. Throws std::invalid_argument if the cloud's extent exceeds
/// what 16-bit offsets can address at the configured resolution (~1.3 km at
/// 2 cm), which cannot happen for per-object clouds.
EncodedCloud encode(const PointCloud& cloud, const EncodingConfig& cfg = {});

/// Decode back to points. Lossy only up to the quantization resolution.
PointCloud decode(const EncodedCloud& enc);

/// Size the encoder would produce without building the buffer (fast path for
/// schedulers that only need data sizes).
std::size_t encoded_size_bytes(std::size_t point_count);

}  // namespace erpd::pc
