#pragma once
// Quantized wire encoding for uploaded/disseminated point clouds.
//
// The paper notes the reduced cloud can be compressed further (Draco-style,
// ref [15]). We implement a simple, exact codec: points are quantized to a
// fixed resolution inside their bounding box and packed as 16-bit offsets.
// This gives a realistic bytes-on-the-wire model for the bandwidth
// experiments (Figs. 12 and 13) while staying fully self-contained.
//
// The wire format is defensible (DESIGN.md §12): the header carries a CRC32
// over the rest of the buffer, and `try_decode` is a *total* function over
// arbitrary bytes — it classifies malformed input through DecodeStatus and
// never throws, crashes, or reads out of bounds. `decode` keeps the trusted
// in-process signature and contract-checks that the buffer validates.

#include <cstdint>
#include <optional>
#include <vector>

#include "pointcloud/pointcloud.hpp"

namespace erpd::pc {

struct EncodingConfig {
  /// Quantization resolution in meters. 2 cm keeps object shape intact.
  double resolution{0.02};
};

/// Wire-format constants, exported so schedulers that size or truncate
/// payloads (e.g. the uplink cap) stay in lockstep with the codec instead of
/// hardcoding byte counts.
inline constexpr std::size_t kEncodedHeaderBytes =
    4 /*count*/ + 4 /*crc32*/ + 8 /*resolution*/ + 3 * 8 /*origin*/;
inline constexpr std::size_t kBytesPerPoint = 6;  // 3 x uint16 offsets

/// Delta chunk constants (DESIGN.md §16). A delta buffer is distinguished
/// from a keyframe by a magic word where the keyframe stores its resolution;
/// the two exact-size equations are mutually unsatisfiable, so neither codec
/// can misparse the other's valid output.
inline constexpr std::size_t kDeltaHeaderBytes =
    4 /*added count*/ + 4 /*crc32*/ + 4 /*magic*/ + 4 /*base crc*/ +
    4 /*removed count*/ + 8 /*resolution*/ + 3 * 8 /*motion*/ +
    3 * 8 /*added origin*/;
inline constexpr std::size_t kDeltaBytesPerRemoved = 4;  // u32 base index
inline constexpr std::uint32_t kDeltaMagic = 0x544C4544u;  // "DELT"

/// Serialized cloud: self-describing byte buffer.
struct EncodedCloud {
  std::vector<std::uint8_t> bytes;
  std::size_t point_count{0};

  std::size_t size_bytes() const { return bytes.size(); }
};

/// Why a buffer failed (or passed) validation, from cheapest structural
/// check to the semantic ones. Exactly one status per buffer: checks run in
/// declaration order and the first failure wins.
enum class DecodeStatus : std::uint8_t {
  kOk,
  kTruncatedHeader,  ///< fewer than kEncodedHeaderBytes bytes
  kSizeMismatch,     ///< buffer size != header + count * stride
  kBadChecksum,      ///< CRC32 over (header-sans-crc + payload) disagrees
  kBadResolution,    ///< resolution non-finite or <= 0
  kBadOrigin,        ///< any origin component non-finite
  // Delta-chunk statuses (try_decode_delta only).
  kNotDelta,         ///< magic word missing: buffer is not a delta chunk
  kMissingBase,      ///< no base supplied, or the base buffer is invalid
  kBaseMismatch,     ///< base CRC in the header != supplied base's CRC
  kBadRemovedIndex,  ///< removed indices not ascending or out of base range
  kBadMotion,        ///< any motion component non-finite
};

const char* to_string(DecodeStatus s);

/// Result of validating + decoding an untrusted buffer.
struct DecodeResult {
  DecodeStatus status{DecodeStatus::kOk};
  /// Decoded points; empty unless status == kOk.
  PointCloud cloud;
  /// Header point count (only meaningful when the header was readable).
  std::size_t point_count{0};

  bool ok() const { return status == DecodeStatus::kOk; }
};

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `n` bytes.
/// Exposed so tests and the ingest layer can recompute or deliberately break
/// the checksum of a buffer.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// Encode a cloud. Contract-checks (ERPD_REQUIRE -> ContractViolation) that
/// the resolution is positive, the point count fits the 32-bit wire counter,
/// and the cloud's extent fits what 16-bit offsets can address at the
/// configured resolution (~1.3 km at 2 cm) — none of which can fail for
/// per-object clouds.
EncodedCloud encode(const PointCloud& cloud, const EncodingConfig& cfg = {});

/// Total validation + decode of an untrusted buffer. Never throws and never
/// invokes UB, for arbitrary bytes: malformed input comes back as a non-kOk
/// status with an empty cloud. Lossy only up to the quantization resolution.
DecodeResult try_decode(const EncodedCloud& enc);

/// Trusted-path decode: contract-checks that the buffer validates (use
/// try_decode for anything that crossed a wire). Lossy only up to the
/// quantization resolution.
PointCloud decode(const EncodedCloud& enc);

/// Size the encoder would produce without building the buffer (fast path for
/// schedulers that only need data sizes). Contract-checks that the size
/// computation cannot overflow for adversarial counts.
std::size_t encoded_size_bytes(std::size_t point_count);

// ---------------------------------------------------------------------------
// Delta mode (DESIGN.md §16): encode a cloud relative to a previously
// *accepted* keyframe. The chunk carries a rigid per-axis motion (quantized
// to the resolution grid), the ascending indices of base points that
// disappeared, and a keyframe-style packed block of points that appeared.
// Reconstruction = (base + motion) minus removed, then added — in that
// order, so it is deterministic given (delta, base).
// ---------------------------------------------------------------------------

/// True when the buffer is large enough to carry the delta magic word and
/// does. A dispatch hint only: try_decode_delta re-checks and classifies.
bool is_delta(const EncodedCloud& enc);

/// Size of a delta chunk with the given payload counts. Contract-checks
/// against overflow for adversarial counts.
std::size_t delta_size_bytes(std::size_t removed, std::size_t added);

/// Encode `cloud` as a delta against `base` (a keyframe produced by
/// `encode`). Returns nullopt — caller must fall back to a keyframe — when
/// the base is invalid or was encoded at a different resolution, when the
/// added block would exceed the 16-bit offset range, or when the delta would
/// not actually be smaller than a fresh keyframe. Reconstruction error is
/// bounded by the quantization resolution per axis, exactly like `encode`.
std::optional<EncodedCloud> encode_delta(const PointCloud& cloud,
                                         const EncodedCloud& base,
                                         const EncodingConfig& cfg = {});

/// Total validation + reconstruction of an untrusted delta chunk against an
/// optional base keyframe. Never throws and never invokes UB for arbitrary
/// bytes in either buffer; every failure mode is a DecodeStatus. Passing
/// base == nullptr classifies an otherwise-valid delta as kMissingBase so
/// the ingest layer can demand a keyframe re-send.
DecodeResult try_decode_delta(const EncodedCloud& enc,
                              const EncodedCloud* base);

}  // namespace erpd::pc
