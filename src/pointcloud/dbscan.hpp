#pragma once
// DBSCAN (Ester et al., KDD'96) over 3-D points, grid-accelerated.
//
// The vehicle-side Moving Objects Extraction clusters the non-ground cloud
// with DBSCAN to segment individual objects (paper §II-B); the same
// implementation also serves as the pedestrian-clustering baseline that the
// paper's crowd clusterer is compared against (Fig. 4).

#include <cstdint>
#include <vector>

#include "pointcloud/pointcloud.hpp"

namespace erpd::pc {

struct DbscanConfig {
  /// Neighborhood radius (meters).
  double eps{0.8};
  /// Minimum neighborhood size (including the point itself) to be a core
  /// point.
  std::size_t min_pts{5};
  /// When true, DbscanResult::clusters is filled during the scan (one pass,
  /// no extra label walk); each list holds the cluster's point indices in
  /// discovery (BFS) order.
  bool collect_clusters{false};
};

/// Label for points not assigned to any cluster.
inline constexpr std::int32_t kNoise = -1;

struct DbscanResult {
  /// Per-point cluster id in [0, cluster_count) or kNoise.
  std::vector<std::int32_t> labels;
  std::int32_t cluster_count{0};
  /// Per-cluster point indices in discovery order; empty unless the run used
  /// DbscanConfig::collect_clusters.
  std::vector<std::vector<std::size_t>> clusters;

  /// Point indices of a given cluster, ascending. O(k log k) when clusters
  /// were collected, O(n) otherwise.
  std::vector<std::size_t> cluster_indices(std::int32_t cluster) const;
};

DbscanResult dbscan(const PointCloud& cloud, const DbscanConfig& cfg);

/// A segmented object: the cluster's points plus summary geometry.
struct ObjectCluster {
  std::vector<std::size_t> indices;
  geom::Vec3 centroid{};
  geom::Aabb footprint;  // planar bounds
  std::size_t point_count() const { return indices.size(); }
};

/// Materialize per-cluster summaries from a DBSCAN labeling.
std::vector<ObjectCluster> extract_clusters(const PointCloud& cloud,
                                            const DbscanResult& result);

}  // namespace erpd::pc
