#pragma once
// Point cloud container.
//
// A LiDAR frame is a bag of 3-D points in the sensor frame. The on-vehicle
// pipeline filters it (ground removal, static-object removal), the uplink
// encodes it, and the edge server transforms merged clouds into the world
// frame to build the traffic map.

#include <cstdint>
#include <span>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/mat4.hpp"
#include "geom/vec3.hpp"

namespace erpd::pc {

/// Bytes per point of the raw sensor format (float32 x/y/z + intensity),
/// matching the volume model in the paper (~1M points -> 2-3 MB after the
/// sensor's own packing; see encoding.hpp for the wire format).
inline constexpr std::size_t kRawBytesPerPoint = 16;

class PointCloud {
 public:
  PointCloud() = default;
  explicit PointCloud(std::vector<geom::Vec3> points)
      : points_(std::move(points)) {}

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  void reserve(std::size_t n) { points_.reserve(n); }
  void clear() { points_.clear(); }

  const std::vector<geom::Vec3>& points() const { return points_; }
  std::vector<geom::Vec3>& points() { return points_; }
  const geom::Vec3& operator[](std::size_t i) const { return points_[i]; }

  void push_back(geom::Vec3 p) { points_.push_back(p); }
  void append(const PointCloud& other);

  /// In-place rigid transform of every point (e.g. LiDAR -> world via T_lw).
  void transform(const geom::Mat4& t);
  PointCloud transformed(const geom::Mat4& t) const;

  /// Keep only points satisfying the predicate.
  template <typename Pred>
  PointCloud filtered(Pred&& pred) const {
    PointCloud out;
    out.reserve(points_.size());
    for (const geom::Vec3& p : points_) {
      if (pred(p)) out.push_back(p);
    }
    return out;
  }

  /// Subset by index list.
  PointCloud subset(std::span<const std::size_t> indices) const;

  /// Planar bounding box of the cloud.
  geom::Aabb aabb_xy() const;

  geom::Vec3 centroid() const;

  /// Size of this cloud in the raw sensor format.
  std::size_t raw_size_bytes() const { return size() * kRawBytesPerPoint; }

 private:
  std::vector<geom::Vec3> points_;
};

}  // namespace erpd::pc
