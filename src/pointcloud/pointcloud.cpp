#include "pointcloud/pointcloud.hpp"

namespace erpd::pc {

void PointCloud::append(const PointCloud& other) {
  points_.insert(points_.end(), other.points_.begin(), other.points_.end());
}

void PointCloud::transform(const geom::Mat4& t) {
  for (geom::Vec3& p : points_) p = t.transform_point(p);
}

PointCloud PointCloud::transformed(const geom::Mat4& t) const {
  PointCloud out = *this;
  out.transform(t);
  return out;
}

PointCloud PointCloud::subset(std::span<const std::size_t> indices) const {
  PointCloud out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(points_[i]);
  return out;
}

geom::Aabb PointCloud::aabb_xy() const {
  geom::Aabb box;
  for (const geom::Vec3& p : points_) box.expand(p.xy());
  return box;
}

geom::Vec3 PointCloud::centroid() const {
  geom::Vec3 c{};
  if (points_.empty()) return c;
  for (const geom::Vec3& p : points_) c += p;
  return c / static_cast<double>(points_.size());
}

}  // namespace erpd::pc
