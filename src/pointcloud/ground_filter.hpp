#pragma once
// Ground removal (paper §II-B, first stage of Moving Objects Extraction).
//
// LiDAR sensors are mounted at a fixed height h above the ground, so ground
// returns sit near z = -h in the sensor frame. Points with z <= -h + eps are
// dropped; eps absorbs measurement noise and small road unevenness.

#include "pointcloud/pointcloud.hpp"

namespace erpd::pc {

struct GroundFilterConfig {
  /// Sensor mounting height above the ground plane, meters.
  double sensor_height{1.8};
  /// Tolerance above the nominal ground plane, meters.
  double epsilon{0.15};
};

/// Remove ground-plane points from a sensor-frame cloud.
PointCloud remove_ground(const PointCloud& cloud, const GroundFilterConfig& cfg);

/// Fraction of points classified as ground (diagnostic for the bandwidth
/// reduction reported in §II-B).
double ground_fraction(const PointCloud& cloud, const GroundFilterConfig& cfg);

}  // namespace erpd::pc
