#include "pointcloud/dbscan.hpp"

#include <algorithm>

#include "core/check.hpp"
#include "pointcloud/voxel_grid.hpp"

namespace erpd::pc {

std::vector<std::size_t> DbscanResult::cluster_indices(
    std::int32_t cluster) const {
  if (!clusters.empty()) {
    ERPD_REQUIRE(cluster >= 0 &&
                     static_cast<std::size_t>(cluster) < clusters.size(),
                 "DbscanResult::cluster_indices: cluster ", cluster,
                 " out of range [0, ", clusters.size(), ")");
    std::vector<std::size_t> out = clusters[static_cast<std::size_t>(cluster)];
    std::sort(out.begin(), out.end());
    return out;
  }
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == cluster) out.push_back(i);
  }
  return out;
}

DbscanResult dbscan(const PointCloud& cloud, const DbscanConfig& cfg) {
  ERPD_REQUIRE(cfg.eps > 0.0, "dbscan: eps must be > 0, got ", cfg.eps);
  ERPD_REQUIRE(cfg.min_pts > 0, "dbscan: min_pts must be > 0");

  DbscanResult res;
  res.labels.assign(cloud.size(), kNoise);
  if (cloud.empty()) return res;

  const PointGrid grid(cloud, cfg.eps);
  enum : std::int8_t { kUnvisited = 0, kVisited = 1 };
  std::vector<std::int8_t> state(cloud.size(), kUnvisited);

  // Scratch buffers reused across every region query and expansion — the
  // queries dominate DBSCAN's runtime and must not allocate per call.
  std::vector<std::size_t> neighbors;
  std::vector<std::size_t> nn;
  std::vector<std::size_t> frontier;
  neighbors.reserve(64);
  nn.reserve(64);
  frontier.reserve(cloud.size());

  // A point joins a cluster exactly once: it is either labeled with its
  // final cluster in the same frontier pop that marks it visited, or claimed
  // as a border point while noise. Appending at claim time therefore builds
  // the per-cluster lists in one pass.
  const auto claim = [&](std::size_t p, std::int32_t cid) {
    res.labels[p] = cid;
    if (cfg.collect_clusters) {
      res.clusters[static_cast<std::size_t>(cid)].push_back(p);
    }
  };

  for (std::size_t i = 0; i < cloud.size(); ++i) {
    if (state[i] == kVisited) continue;
    state[i] = kVisited;
    grid.radius_neighbors(i, cfg.eps, neighbors);
    if (neighbors.size() + 1 < cfg.min_pts) continue;  // not core -> noise (may
                                                       // be claimed later)
    const std::int32_t cid = res.cluster_count++;
    if (cfg.collect_clusters) res.clusters.emplace_back();
    claim(i, cid);
    frontier.assign(neighbors.begin(), neighbors.end());
    std::size_t head = 0;
    while (head < frontier.size()) {
      const std::size_t j = frontier[head++];
      if (res.labels[j] == kNoise) claim(j, cid);  // border point claim
      if (state[j] == kVisited) continue;
      state[j] = kVisited;
      grid.radius_neighbors(j, cfg.eps, nn);
      if (nn.size() + 1 >= cfg.min_pts) {
        for (const std::size_t k : nn) {
          if (state[k] == kUnvisited || res.labels[k] == kNoise) {
            frontier.push_back(k);
          }
        }
      }
    }
  }
  return res;
}

std::vector<ObjectCluster> extract_clusters(const PointCloud& cloud,
                                            const DbscanResult& result) {
  std::vector<ObjectCluster> clusters(
      static_cast<std::size_t>(result.cluster_count));
  ERPD_REQUIRE(result.labels.size() == cloud.size(),
               "extract_clusters: labels/cloud size mismatch: ",
               result.labels.size(), " vs ", cloud.size());
  for (std::size_t i = 0; i < result.labels.size(); ++i) {
    const std::int32_t l = result.labels[i];
    if (l == kNoise) continue;
    ERPD_DCHECK(l >= 0 && l < result.cluster_count,
                "extract_clusters: label ", l, " out of range [0, ",
                result.cluster_count, ")");
    ObjectCluster& c = clusters[static_cast<std::size_t>(l)];
    c.indices.push_back(i);
    c.centroid += cloud[i];
    c.footprint.expand(cloud[i].xy());
  }
  for (ObjectCluster& c : clusters) {
    if (!c.indices.empty()) {
      c.centroid = c.centroid / static_cast<double>(c.indices.size());
    }
  }
  return clusters;
}

}  // namespace erpd::pc
