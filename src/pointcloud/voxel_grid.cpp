#include "pointcloud/voxel_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.hpp"

namespace erpd::pc {

VoxelKey voxel_of(geom::Vec3 p, double voxel_size) {
  return {static_cast<std::int64_t>(std::floor(p.x / voxel_size)),
          static_cast<std::int64_t>(std::floor(p.y / voxel_size)),
          static_cast<std::int64_t>(std::floor(p.z / voxel_size))};
}

PointCloud voxel_downsample(const PointCloud& cloud, double voxel_size) {
  ERPD_REQUIRE(voxel_size > 0.0,
               "voxel_downsample: voxel_size must be > 0, got ", voxel_size);
  if (cloud.empty()) return {};

  // Flat open-addressing accumulator (linear probing, power-of-two capacity,
  // load factor <= 0.5). Compared to unordered_map this removes per-node
  // allocations on the hot path and makes the output order first-seen —
  // deterministic for a given input instead of hash-layout dependent.
  struct Acc {
    VoxelKey key;
    geom::Vec3 sum{};
    std::uint32_t n{0};
  };
  std::size_t cap = 16;
  while (cap < cloud.size() * 2) cap <<= 1;
  std::vector<Acc> slots(cap);
  std::vector<std::size_t> order;
  order.reserve(cloud.size() / 2);
  const VoxelKeyHash hash;
  const std::size_t mask = cap - 1;
  for (const geom::Vec3& p : cloud.points()) {
    const VoxelKey k = voxel_of(p, voxel_size);
    std::size_t s = hash(k) & mask;
    while (slots[s].n != 0 && !(slots[s].key == k)) s = (s + 1) & mask;
    Acc& a = slots[s];
    if (a.n == 0) {
      a.key = k;
      order.push_back(s);
    }
    a.sum += p;
    ++a.n;
  }
  PointCloud out;
  out.reserve(order.size());
  for (const std::size_t s : order) {
    out.push_back(slots[s].sum / static_cast<double>(slots[s].n));
  }
  return out;
}

PointGrid::PointGrid(const PointCloud& cloud, double cell_size,
                     bool allow_dense)
    : cloud_(cloud), cell_(cell_size) {
  ERPD_REQUIRE(cell_size > 0.0, "PointGrid: cell_size must be > 0, got ",
               cell_size);
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  lo_ = {kMax, kMax, kMax};
  hi_ = {kMin, kMin, kMin};
  if (cloud.empty()) return;

  std::vector<VoxelKey> keys;
  keys.reserve(cloud.size());
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const VoxelKey k = voxel_of(cloud[i], cell_);
    keys.push_back(k);
    lo_ = {std::min(lo_.x, k.x), std::min(lo_.y, k.y), std::min(lo_.z, k.z)};
    hi_ = {std::max(hi_.x, k.x), std::max(hi_.y, k.y), std::max(hi_.z, k.z)};
  }

  // Unsigned per-axis extents; the subtractions cannot overflow in unsigned
  // arithmetic even for keys near the int64 limits.
  const std::uint64_t nx = static_cast<std::uint64_t>(hi_.x) -
                           static_cast<std::uint64_t>(lo_.x) + 1;
  const std::uint64_t ny = static_cast<std::uint64_t>(hi_.y) -
                           static_cast<std::uint64_t>(lo_.y) + 1;
  const std::uint64_t nz = static_cast<std::uint64_t>(hi_.z) -
                           static_cast<std::uint64_t>(lo_.z) + 1;
  // Overflow-safe extent check: with each axis capped at kMaxDenseCells
  // (2^22), nx * ny <= 2^44 and (nx * ny) * nz <= 2^44 once nx * ny is known
  // to be within the cap — no intermediate product can wrap.
  bool fits = allow_dense && cloud.size() < (1ull << 32) &&
              nx <= kMaxDenseCells && ny <= kMaxDenseCells &&
              nz <= kMaxDenseCells;
  std::uint64_t ncells = 0;
  if (fits) {
    const std::uint64_t nxy = nx * ny;
    fits = nxy <= kMaxDenseCells;
    if (fits) {
      ncells = nxy * nz;
      fits = ncells <= kMaxDenseCells;
    }
  }

  if (!fits) {
    // Sparse fallback: original spatial hash, per-cell indices in ascending
    // insertion order.
    cells_.reserve(cloud.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      cells_[keys[i]].push_back(i);
    }
    return;
  }

  // Dense CSR build by counting sort. Filling in ascending point order keeps
  // every cell's index list ascending — the same order the sparse layout's
  // push_back produces, so queries are byte-identical across layouts.
  dense_ = true;
  ny_ = ny;
  nz_ = nz;
  const auto linear = [&](const VoxelKey& k) {
    return (static_cast<std::uint64_t>(k.x - lo_.x) * ny_ +
            static_cast<std::uint64_t>(k.y - lo_.y)) *
               nz_ +
           static_cast<std::uint64_t>(k.z - lo_.z);
  };
  cell_start_.assign(ncells + 1, 0);
  for (const VoxelKey& k : keys) ++cell_start_[linear(k) + 1];
  for (std::uint64_t c = 1; c <= ncells; ++c) {
    cell_start_[c] += cell_start_[c - 1];
  }
  cell_points_.resize(keys.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(),
                                    cell_start_.end() - 1);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    cell_points_[cursor[linear(keys[i])]++] = static_cast<std::uint32_t>(i);
  }
}

void PointGrid::collect_neighbors(geom::Vec3 q, double radius,
                                  std::size_t skip,
                                  std::vector<std::size_t>& out) const {
  out.clear();
  if (cloud_.empty()) return;
  const double r2 = radius * radius;
  // Number of cell rings needed to cover the query radius, clamped per axis
  // to the occupied-cell bounding box so empty space is never probed. When
  // the radius spans the cloud's full z extent this collapses the z loop to
  // the occupied slab (2D fast path).
  const std::int64_t rings =
      static_cast<std::int64_t>(std::ceil(radius / cell_));
  const VoxelKey c = voxel_of(q, cell_);
  const std::int64_t x0 = std::max(c.x - rings, lo_.x);
  const std::int64_t x1 = std::min(c.x + rings, hi_.x);
  const std::int64_t y0 = std::max(c.y - rings, lo_.y);
  const std::int64_t y1 = std::min(c.y + rings, hi_.y);
  const std::int64_t z0 = std::max(c.z - rings, lo_.z);
  const std::int64_t z1 = std::min(c.z + rings, hi_.z);
  if (dense_) {
    for (std::int64_t dx = x0; dx <= x1; ++dx) {
      for (std::int64_t dy = y0; dy <= y1; ++dy) {
        const std::uint64_t row =
            (static_cast<std::uint64_t>(dx - lo_.x) * ny_ +
             static_cast<std::uint64_t>(dy - lo_.y)) *
            nz_;
        for (std::int64_t dz = z0; dz <= z1; ++dz) {
          const std::uint64_t cell =
              row + static_cast<std::uint64_t>(dz - lo_.z);
          const std::uint32_t end = cell_start_[cell + 1];
          for (std::uint32_t j = cell_start_[cell]; j < end; ++j) {
            const std::size_t idx = cell_points_[j];
            if (idx != skip && (cloud_[idx] - q).norm_sq() <= r2) {
              out.push_back(idx);
            }
          }
        }
      }
    }
    return;
  }
  for (std::int64_t dx = x0; dx <= x1; ++dx) {
    for (std::int64_t dy = y0; dy <= y1; ++dy) {
      for (std::int64_t dz = z0; dz <= z1; ++dz) {
        const auto it = cells_.find({dx, dy, dz});
        if (it == cells_.end()) continue;
        for (const std::size_t idx : it->second) {
          if (idx != skip && (cloud_[idx] - q).norm_sq() <= r2) {
            out.push_back(idx);
          }
        }
      }
    }
  }
}

void PointGrid::radius_neighbors(std::size_t i, double radius,
                                 std::vector<std::size_t>& out) const {
  ERPD_REQUIRE(i < cloud_.size(), "PointGrid::radius_neighbors: index ", i,
               " out of range (size ", cloud_.size(), ")");
  collect_neighbors(cloud_[i], radius, i, out);
}

void PointGrid::radius_neighbors(geom::Vec3 q, double radius,
                                 std::vector<std::size_t>& out) const {
  collect_neighbors(q, radius, kNoSkip, out);
}

std::vector<std::size_t> PointGrid::radius_neighbors(std::size_t i,
                                                     double radius) const {
  std::vector<std::size_t> out;
  radius_neighbors(i, radius, out);
  return out;
}

std::vector<std::size_t> PointGrid::radius_neighbors(geom::Vec3 q,
                                                     double radius) const {
  std::vector<std::size_t> out;
  radius_neighbors(q, radius, out);
  return out;
}

}  // namespace erpd::pc
