#include "pointcloud/voxel_grid.hpp"

#include <cmath>

#include "core/check.hpp"

namespace erpd::pc {

VoxelKey voxel_of(geom::Vec3 p, double voxel_size) {
  return {static_cast<std::int64_t>(std::floor(p.x / voxel_size)),
          static_cast<std::int64_t>(std::floor(p.y / voxel_size)),
          static_cast<std::int64_t>(std::floor(p.z / voxel_size))};
}

PointCloud voxel_downsample(const PointCloud& cloud, double voxel_size) {
  ERPD_REQUIRE(voxel_size > 0.0,
               "voxel_downsample: voxel_size must be > 0, got ", voxel_size);
  struct Acc {
    geom::Vec3 sum{};
    std::size_t n{0};
  };
  std::unordered_map<VoxelKey, Acc, VoxelKeyHash> acc;
  acc.reserve(cloud.size());
  for (const geom::Vec3& p : cloud.points()) {
    Acc& a = acc[voxel_of(p, voxel_size)];
    a.sum += p;
    ++a.n;
  }
  PointCloud out;
  out.reserve(acc.size());
  for (const auto& [key, a] : acc) {
    out.push_back(a.sum / static_cast<double>(a.n));
  }
  return out;
}

PointGrid::PointGrid(const PointCloud& cloud, double cell_size)
    : cloud_(cloud), cell_(cell_size) {
  ERPD_REQUIRE(cell_size > 0.0, "PointGrid: cell_size must be > 0, got ",
               cell_size);
  cells_.reserve(cloud.size());
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    cells_[voxel_of(cloud[i], cell_)].push_back(i);
  }
}

std::vector<std::size_t> PointGrid::radius_neighbors(std::size_t i,
                                                     double radius) const {
  ERPD_REQUIRE(i < cloud_.size(), "PointGrid::radius_neighbors: index ", i,
               " out of range (size ", cloud_.size(), ")");
  std::vector<std::size_t> out = radius_neighbors(cloud_[i], radius);
  std::erase(out, i);
  return out;
}

std::vector<std::size_t> PointGrid::radius_neighbors(geom::Vec3 q,
                                                     double radius) const {
  std::vector<std::size_t> out;
  const double r2 = radius * radius;
  // Number of cell rings needed to cover the query radius.
  const std::int64_t rings =
      static_cast<std::int64_t>(std::ceil(radius / cell_));
  const VoxelKey c = voxel_of(q, cell_);
  for (std::int64_t dx = -rings; dx <= rings; ++dx) {
    for (std::int64_t dy = -rings; dy <= rings; ++dy) {
      for (std::int64_t dz = -rings; dz <= rings; ++dz) {
        const auto it = cells_.find({c.x + dx, c.y + dy, c.z + dz});
        if (it == cells_.end()) continue;
        for (std::size_t idx : it->second) {
          if ((cloud_[idx] - q).norm_sq() <= r2) {
            out.push_back(idx);
          }
        }
      }
    }
  }
  return out;
}

}  // namespace erpd::pc
