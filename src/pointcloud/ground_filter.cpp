#include "pointcloud/ground_filter.hpp"

namespace erpd::pc {

PointCloud remove_ground(const PointCloud& cloud,
                         const GroundFilterConfig& cfg) {
  const double cutoff = -cfg.sensor_height + cfg.epsilon;
  return cloud.filtered(
      [cutoff](const geom::Vec3& p) { return p.z > cutoff; });
}

double ground_fraction(const PointCloud& cloud, const GroundFilterConfig& cfg) {
  if (cloud.empty()) return 0.0;
  const double cutoff = -cfg.sensor_height + cfg.epsilon;
  std::size_t ground = 0;
  for (const geom::Vec3& p : cloud.points()) {
    if (p.z <= cutoff) ++ground;
  }
  return static_cast<double>(ground) / static_cast<double>(cloud.size());
}

}  // namespace erpd::pc
