#include "pointcloud/encoding.hpp"

#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>

#include "core/check.hpp"

namespace erpd::pc {

namespace {

constexpr std::size_t kHeaderBytes = kEncodedHeaderBytes;
// Header layout (little-endian):
//   [0, 4)   u32 point count
//   [4, 8)   u32 CRC32 over bytes [0,4) + [8, end)
//   [8, 16)  f64 resolution
//   [16, 40) f64 origin x, y, z
constexpr std::size_t kCrcOffset = 4;

// Largest count for which encoded_size_bytes cannot overflow std::size_t.
constexpr std::size_t kMaxPointCount =
    (std::numeric_limits<std::size_t>::max() - kHeaderBytes) / kBytesPerPoint;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void put_f64(std::vector<std::uint8_t>& out, double d) {
  std::uint64_t v = 0;
  std::memcpy(&v, &d, 8);
  put_u64(out, v);
}

double get_f64(const std::uint8_t* p) {
  const std::uint64_t v = get_u64(p);
  double d = 0.0;
  std::memcpy(&d, &v, 8);
  return d;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t crc32_update(std::uint32_t crc, const std::uint8_t* data,
                           std::size_t n) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

/// CRC over everything except the checksum field itself.
std::uint32_t buffer_crc(const std::vector<std::uint8_t>& bytes) {
  std::uint32_t crc = 0xffffffffu;
  crc = crc32_update(crc, bytes.data(), kCrcOffset);
  crc = crc32_update(crc, bytes.data() + kCrcOffset + 4,
                     bytes.size() - kCrcOffset - 4);
  return crc ^ 0xffffffffu;
}

}  // namespace

const char* to_string(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTruncatedHeader: return "truncated-header";
    case DecodeStatus::kSizeMismatch: return "size-mismatch";
    case DecodeStatus::kBadChecksum: return "bad-checksum";
    case DecodeStatus::kBadResolution: return "bad-resolution";
    case DecodeStatus::kBadOrigin: return "bad-origin";
    case DecodeStatus::kNotDelta: return "not-delta";
    case DecodeStatus::kMissingBase: return "missing-base";
    case DecodeStatus::kBaseMismatch: return "base-mismatch";
    case DecodeStatus::kBadRemovedIndex: return "bad-removed-index";
    case DecodeStatus::kBadMotion: return "bad-motion";
  }
  return "?";
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  return crc32_update(0xffffffffu, data, n) ^ 0xffffffffu;
}

std::size_t encoded_size_bytes(std::size_t point_count) {
  ERPD_REQUIRE(point_count <= kMaxPointCount,
               "encoded_size_bytes: point count ", point_count,
               " would overflow the size computation");
  return kHeaderBytes + point_count * kBytesPerPoint;
}

EncodedCloud encode(const PointCloud& cloud, const EncodingConfig& cfg) {
  ERPD_REQUIRE(cfg.resolution > 0.0, "encode: resolution must be > 0, got ",
               cfg.resolution);
  ERPD_REQUIRE(cloud.size() <= 0xffffffffull,
               "encode: point count ", cloud.size(),
               " exceeds the 32-bit wire counter");
  // Origin = min corner so all offsets are non-negative.
  geom::Vec3 origin{std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity()};
  geom::Vec3 hi = -origin;
  for (const geom::Vec3& p : cloud.points()) {
    origin.x = std::min(origin.x, p.x);
    origin.y = std::min(origin.y, p.y);
    origin.z = std::min(origin.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  if (cloud.empty()) origin = hi = geom::Vec3{};

  const double max_span = cfg.resolution * 65535.0;
  ERPD_REQUIRE(cloud.empty() ||
                   (hi.x - origin.x <= max_span && hi.y - origin.y <= max_span &&
                    hi.z - origin.z <= max_span),
               "encode: cloud extent exceeds 16-bit range at resolution ",
               cfg.resolution);

  EncodedCloud enc;
  enc.point_count = cloud.size();
  enc.bytes.reserve(encoded_size_bytes(cloud.size()));
  put_u32(enc.bytes, static_cast<std::uint32_t>(cloud.size()));
  put_u32(enc.bytes, 0);  // CRC placeholder, patched below
  put_f64(enc.bytes, cfg.resolution);
  put_f64(enc.bytes, origin.x);
  put_f64(enc.bytes, origin.y);
  put_f64(enc.bytes, origin.z);
  for (const geom::Vec3& p : cloud.points()) {
    put_u16(enc.bytes, static_cast<std::uint16_t>(
                           std::llround((p.x - origin.x) / cfg.resolution)));
    put_u16(enc.bytes, static_cast<std::uint16_t>(
                           std::llround((p.y - origin.y) / cfg.resolution)));
    put_u16(enc.bytes, static_cast<std::uint16_t>(
                           std::llround((p.z - origin.z) / cfg.resolution)));
  }
  const std::uint32_t crc = buffer_crc(enc.bytes);
  for (int i = 0; i < 4; ++i) {
    enc.bytes[kCrcOffset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  return enc;
}

DecodeResult try_decode(const EncodedCloud& enc) {
  DecodeResult out;
  if (enc.bytes.size() < kHeaderBytes) {
    out.status = DecodeStatus::kTruncatedHeader;
    return out;
  }
  const std::uint8_t* p = enc.bytes.data();
  const std::uint32_t count = get_u32(p);
  out.point_count = count;
  // A u32 count times the 6-byte stride cannot overflow 64-bit size math, so
  // the exact-size check below is itself total.
  if (enc.bytes.size() !=
      kHeaderBytes + static_cast<std::size_t>(count) * kBytesPerPoint) {
    out.status = DecodeStatus::kSizeMismatch;
    return out;
  }
  if (get_u32(p + kCrcOffset) != buffer_crc(enc.bytes)) {
    out.status = DecodeStatus::kBadChecksum;
    return out;
  }
  const double res = get_f64(p + 8);
  if (!std::isfinite(res) || res <= 0.0) {
    out.status = DecodeStatus::kBadResolution;
    return out;
  }
  const geom::Vec3 origin{get_f64(p + 16), get_f64(p + 24), get_f64(p + 32)};
  if (!std::isfinite(origin.x) || !std::isfinite(origin.y) ||
      !std::isfinite(origin.z)) {
    out.status = DecodeStatus::kBadOrigin;
    return out;
  }
  out.cloud.reserve(count);
  const std::uint8_t* q = p + kHeaderBytes;
  for (std::uint32_t i = 0; i < count; ++i) {
    const double x = origin.x + res * get_u16(q);
    const double y = origin.y + res * get_u16(q + 2);
    const double z = origin.z + res * get_u16(q + 4);
    out.cloud.push_back({x, y, z});
    q += kBytesPerPoint;
  }
  return out;
}

PointCloud decode(const EncodedCloud& enc) {
  DecodeResult r = try_decode(enc);
  ERPD_REQUIRE(r.ok(), "decode: invalid buffer (", to_string(r.status), ", ",
               enc.bytes.size(), " bytes, header count ", r.point_count, ")");
  return std::move(r.cloud);
}

// ---------------------------------------------------------------------------
// Delta chunks.
//
// Header layout (little-endian, kDeltaHeaderBytes = 76):
//   [0, 4)   u32 added-point count
//   [4, 8)   u32 CRC32 over bytes [0,4) + [8, end)  (same scheme as keyframe)
//   [8, 12)  u32 magic "DELT"
//   [12,16)  u32 base CRC (the base keyframe's stored checksum field)
//   [16,20)  u32 removed-index count
//   [20,28)  f64 resolution
//   [28,52)  f64 motion x, y, z (multiple of resolution by construction)
//   [52,76)  f64 added-block origin x, y, z
// Payload: removed base indices (u32, strictly ascending), then added points
// packed exactly like a keyframe body (3 x u16 offsets from the added
// origin).
//
// A keyframe's exact size is 40 + count*6 while a delta's is
// 76 + removed*4 + added*6 with the same leading count field, so
// 40 + a*6 == 76 + r*4 + a*6 would need r*4 == -36: neither decoder's exact
// size check can accept the other's valid buffer.
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kDeltaBaseCrcOffset = 12;
constexpr std::size_t kDeltaRemovedCountOffset = 16;
constexpr std::size_t kDeltaResolutionOffset = 20;
constexpr std::size_t kDeltaMotionOffset = 28;
constexpr std::size_t kDeltaAddedOriginOffset = 52;

// Quantized cell key for the delta matcher. std::map keeps lookup
// deterministic (detlint D1) and collision-free, unlike hashing the coords.
using CellKey = std::array<std::int64_t, 3>;

CellKey cell_of(const geom::Vec3& p, double res) {
  return {std::llround(p.x / res), std::llround(p.y / res),
          std::llround(p.z / res)};
}

}  // namespace

bool is_delta(const EncodedCloud& enc) {
  return enc.bytes.size() >= kDeltaHeaderBytes &&
         get_u32(enc.bytes.data() + 8) == kDeltaMagic;
}

std::size_t delta_size_bytes(std::size_t removed, std::size_t added) {
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  ERPD_REQUIRE(removed <= (kMax - kDeltaHeaderBytes) / kDeltaBytesPerRemoved,
               "delta_size_bytes: removed count ", removed,
               " would overflow the size computation");
  const std::size_t with_removed =
      kDeltaHeaderBytes + removed * kDeltaBytesPerRemoved;
  ERPD_REQUIRE(added <= (kMax - with_removed) / kBytesPerPoint,
               "delta_size_bytes: added count ", added,
               " would overflow the size computation");
  return with_removed + added * kBytesPerPoint;
}

std::optional<EncodedCloud> encode_delta(const PointCloud& cloud,
                                         const EncodedCloud& base,
                                         const EncodingConfig& cfg) {
  ERPD_REQUIRE(cfg.resolution > 0.0,
               "encode_delta: resolution must be > 0, got ", cfg.resolution);
  ERPD_REQUIRE(cloud.size() <= 0xffffffffull, "encode_delta: point count ",
               cloud.size(), " exceeds the 32-bit wire counter");
  DecodeResult b = try_decode(base);
  if (!b.ok()) return std::nullopt;
  if (get_f64(base.bytes.data() + 8) != cfg.resolution) return std::nullopt;

  // Rigid motion estimate: centroid shift snapped to the resolution grid so
  // shifted base points land on the same lattice the matcher quantizes to.
  geom::Vec3 motion{};
  if (!cloud.empty() && !b.cloud.empty()) {
    geom::Vec3 sum_new{};
    geom::Vec3 sum_base{};
    for (const geom::Vec3& p : cloud.points()) {
      sum_new.x += p.x;
      sum_new.y += p.y;
      sum_new.z += p.z;
    }
    for (const geom::Vec3& p : b.cloud.points()) {
      sum_base.x += p.x;
      sum_base.y += p.y;
      sum_base.z += p.z;
    }
    const double n = static_cast<double>(cloud.size());
    const double m = static_cast<double>(b.cloud.size());
    motion.x = cfg.resolution *
               static_cast<double>(std::llround(
                   (sum_new.x / n - sum_base.x / m) / cfg.resolution));
    motion.y = cfg.resolution *
               static_cast<double>(std::llround(
                   (sum_new.y / n - sum_base.y / m) / cfg.resolution));
    motion.z = cfg.resolution *
               static_cast<double>(std::llround(
                   (sum_new.z / n - sum_base.z / m) / cfg.resolution));
  }
  if (!std::isfinite(motion.x) || !std::isfinite(motion.y) ||
      !std::isfinite(motion.z)) {
    return std::nullopt;
  }

  // Match each new point to at most one shifted base point sharing its
  // quantized cell. Lists are built in base order and consumed front-first,
  // so matching is deterministic and reconstruction error stays below one
  // resolution step per axis.
  struct CellSlot {
    std::vector<std::uint32_t> indices;
    std::size_t next{0};
  };
  std::map<CellKey, CellSlot> cells;
  for (std::size_t i = 0; i < b.cloud.size(); ++i) {
    const geom::Vec3& bp = b.cloud.points()[i];
    const geom::Vec3 shifted{bp.x + motion.x, bp.y + motion.y,
                             bp.z + motion.z};
    cells[cell_of(shifted, cfg.resolution)].indices.push_back(
        static_cast<std::uint32_t>(i));
  }
  std::vector<bool> base_used(b.cloud.size(), false);
  PointCloud added;
  for (const geom::Vec3& p : cloud.points()) {
    auto it = cells.find(cell_of(p, cfg.resolution));
    if (it != cells.end() && it->second.next < it->second.indices.size()) {
      base_used[it->second.indices[it->second.next++]] = true;
    } else {
      added.push_back(p);
    }
  }
  std::vector<std::uint32_t> removed;
  for (std::size_t i = 0; i < base_used.size(); ++i) {
    if (!base_used[i]) removed.push_back(static_cast<std::uint32_t>(i));
  }

  if (delta_size_bytes(removed.size(), added.size()) >=
      encoded_size_bytes(cloud.size())) {
    return std::nullopt;  // no byte win: caller should send a keyframe
  }

  // Pack the added block exactly like a keyframe body. Unlike encode(), an
  // out-of-range extent is a soft fallback, not a contract violation: the
  // caller keyframes instead.
  geom::Vec3 origin{std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity()};
  geom::Vec3 hi = -origin;
  for (const geom::Vec3& p : added.points()) {
    origin.x = std::min(origin.x, p.x);
    origin.y = std::min(origin.y, p.y);
    origin.z = std::min(origin.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  if (added.empty()) origin = hi = geom::Vec3{};
  const double max_span = cfg.resolution * 65535.0;
  if (!added.empty() &&
      (hi.x - origin.x > max_span || hi.y - origin.y > max_span ||
       hi.z - origin.z > max_span)) {
    return std::nullopt;
  }

  EncodedCloud enc;
  enc.point_count = cloud.size();
  enc.bytes.reserve(delta_size_bytes(removed.size(), added.size()));
  put_u32(enc.bytes, static_cast<std::uint32_t>(added.size()));
  put_u32(enc.bytes, 0);  // CRC placeholder, patched below
  put_u32(enc.bytes, kDeltaMagic);
  put_u32(enc.bytes, get_u32(base.bytes.data() + kCrcOffset));
  put_u32(enc.bytes, static_cast<std::uint32_t>(removed.size()));
  put_f64(enc.bytes, cfg.resolution);
  put_f64(enc.bytes, motion.x);
  put_f64(enc.bytes, motion.y);
  put_f64(enc.bytes, motion.z);
  put_f64(enc.bytes, origin.x);
  put_f64(enc.bytes, origin.y);
  put_f64(enc.bytes, origin.z);
  for (std::uint32_t idx : removed) put_u32(enc.bytes, idx);
  for (const geom::Vec3& p : added.points()) {
    put_u16(enc.bytes, static_cast<std::uint16_t>(
                           std::llround((p.x - origin.x) / cfg.resolution)));
    put_u16(enc.bytes, static_cast<std::uint16_t>(
                           std::llround((p.y - origin.y) / cfg.resolution)));
    put_u16(enc.bytes, static_cast<std::uint16_t>(
                           std::llround((p.z - origin.z) / cfg.resolution)));
  }
  const std::uint32_t crc = buffer_crc(enc.bytes);
  for (int i = 0; i < 4; ++i) {
    enc.bytes[kCrcOffset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  return enc;
}

DecodeResult try_decode_delta(const EncodedCloud& enc,
                              const EncodedCloud* base) {
  DecodeResult out;
  if (enc.bytes.size() < kDeltaHeaderBytes) {
    out.status = DecodeStatus::kTruncatedHeader;
    return out;
  }
  const std::uint8_t* p = enc.bytes.data();
  if (get_u32(p + 8) != kDeltaMagic) {
    out.status = DecodeStatus::kNotDelta;
    return out;
  }
  const std::uint32_t added = get_u32(p);
  const std::uint32_t removed = get_u32(p + kDeltaRemovedCountOffset);
  out.point_count = added;
  // Two u32 counts times their strides cannot overflow 64-bit size math.
  if (enc.bytes.size() !=
      kDeltaHeaderBytes +
          static_cast<std::size_t>(removed) * kDeltaBytesPerRemoved +
          static_cast<std::size_t>(added) * kBytesPerPoint) {
    out.status = DecodeStatus::kSizeMismatch;
    return out;
  }
  if (get_u32(p + kCrcOffset) != buffer_crc(enc.bytes)) {
    out.status = DecodeStatus::kBadChecksum;
    return out;
  }
  const double res = get_f64(p + kDeltaResolutionOffset);
  if (!std::isfinite(res) || res <= 0.0) {
    out.status = DecodeStatus::kBadResolution;
    return out;
  }
  const geom::Vec3 motion{get_f64(p + kDeltaMotionOffset),
                          get_f64(p + kDeltaMotionOffset + 8),
                          get_f64(p + kDeltaMotionOffset + 16)};
  if (!std::isfinite(motion.x) || !std::isfinite(motion.y) ||
      !std::isfinite(motion.z)) {
    out.status = DecodeStatus::kBadMotion;
    return out;
  }
  const geom::Vec3 origin{get_f64(p + kDeltaAddedOriginOffset),
                          get_f64(p + kDeltaAddedOriginOffset + 8),
                          get_f64(p + kDeltaAddedOriginOffset + 16)};
  if (!std::isfinite(origin.x) || !std::isfinite(origin.y) ||
      !std::isfinite(origin.z)) {
    out.status = DecodeStatus::kBadOrigin;
    return out;
  }
  if (base == nullptr) {
    out.status = DecodeStatus::kMissingBase;
    return out;
  }
  DecodeResult b = try_decode(*base);
  if (!b.ok()) {
    out.status = DecodeStatus::kMissingBase;
    return out;
  }
  if (get_u32(p + kDeltaBaseCrcOffset) !=
          get_u32(base->bytes.data() + kCrcOffset) ||
      get_f64(base->bytes.data() + 8) != res) {
    out.status = DecodeStatus::kBaseMismatch;
    return out;
  }
  const std::uint8_t* removed_p = p + kDeltaHeaderBytes;
  std::int64_t prev = -1;
  for (std::uint32_t i = 0; i < removed; ++i) {
    const std::uint32_t idx = get_u32(removed_p + i * kDeltaBytesPerRemoved);
    if (static_cast<std::int64_t>(idx) <= prev || idx >= b.cloud.size()) {
      out.status = DecodeStatus::kBadRemovedIndex;
      return out;
    }
    prev = idx;
  }

  // Reconstruct: surviving base points (+ motion) in base order, then the
  // added block — the same order encode_delta matched in.
  out.cloud.reserve(b.cloud.size() - removed + added);
  std::uint32_t next_removed = 0;
  for (std::size_t i = 0; i < b.cloud.size(); ++i) {
    if (next_removed < removed &&
        get_u32(removed_p + next_removed * kDeltaBytesPerRemoved) == i) {
      ++next_removed;
      continue;
    }
    const geom::Vec3& bp = b.cloud.points()[i];
    out.cloud.push_back({bp.x + motion.x, bp.y + motion.y, bp.z + motion.z});
  }
  const std::uint8_t* q =
      removed_p + static_cast<std::size_t>(removed) * kDeltaBytesPerRemoved;
  for (std::uint32_t i = 0; i < added; ++i) {
    out.cloud.push_back({origin.x + res * get_u16(q),
                         origin.y + res * get_u16(q + 2),
                         origin.z + res * get_u16(q + 4)});
    q += kBytesPerPoint;
  }
  out.point_count = out.cloud.size();
  return out;
}

}  // namespace erpd::pc
