#include "pointcloud/encoding.hpp"

#include <array>
#include <cmath>
#include <cstring>
#include <limits>

#include "core/check.hpp"

namespace erpd::pc {

namespace {

constexpr std::size_t kHeaderBytes = kEncodedHeaderBytes;
// Header layout (little-endian):
//   [0, 4)   u32 point count
//   [4, 8)   u32 CRC32 over bytes [0,4) + [8, end)
//   [8, 16)  f64 resolution
//   [16, 40) f64 origin x, y, z
constexpr std::size_t kCrcOffset = 4;

// Largest count for which encoded_size_bytes cannot overflow std::size_t.
constexpr std::size_t kMaxPointCount =
    (std::numeric_limits<std::size_t>::max() - kHeaderBytes) / kBytesPerPoint;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void put_f64(std::vector<std::uint8_t>& out, double d) {
  std::uint64_t v = 0;
  std::memcpy(&v, &d, 8);
  put_u64(out, v);
}

double get_f64(const std::uint8_t* p) {
  const std::uint64_t v = get_u64(p);
  double d = 0.0;
  std::memcpy(&d, &v, 8);
  return d;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t crc32_update(std::uint32_t crc, const std::uint8_t* data,
                           std::size_t n) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

/// CRC over everything except the checksum field itself.
std::uint32_t buffer_crc(const std::vector<std::uint8_t>& bytes) {
  std::uint32_t crc = 0xffffffffu;
  crc = crc32_update(crc, bytes.data(), kCrcOffset);
  crc = crc32_update(crc, bytes.data() + kCrcOffset + 4,
                     bytes.size() - kCrcOffset - 4);
  return crc ^ 0xffffffffu;
}

}  // namespace

const char* to_string(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTruncatedHeader: return "truncated-header";
    case DecodeStatus::kSizeMismatch: return "size-mismatch";
    case DecodeStatus::kBadChecksum: return "bad-checksum";
    case DecodeStatus::kBadResolution: return "bad-resolution";
    case DecodeStatus::kBadOrigin: return "bad-origin";
  }
  return "?";
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  return crc32_update(0xffffffffu, data, n) ^ 0xffffffffu;
}

std::size_t encoded_size_bytes(std::size_t point_count) {
  ERPD_REQUIRE(point_count <= kMaxPointCount,
               "encoded_size_bytes: point count ", point_count,
               " would overflow the size computation");
  return kHeaderBytes + point_count * kBytesPerPoint;
}

EncodedCloud encode(const PointCloud& cloud, const EncodingConfig& cfg) {
  ERPD_REQUIRE(cfg.resolution > 0.0, "encode: resolution must be > 0, got ",
               cfg.resolution);
  ERPD_REQUIRE(cloud.size() <= 0xffffffffull,
               "encode: point count ", cloud.size(),
               " exceeds the 32-bit wire counter");
  // Origin = min corner so all offsets are non-negative.
  geom::Vec3 origin{std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity()};
  geom::Vec3 hi = -origin;
  for (const geom::Vec3& p : cloud.points()) {
    origin.x = std::min(origin.x, p.x);
    origin.y = std::min(origin.y, p.y);
    origin.z = std::min(origin.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  if (cloud.empty()) origin = hi = geom::Vec3{};

  const double max_span = cfg.resolution * 65535.0;
  ERPD_REQUIRE(cloud.empty() ||
                   (hi.x - origin.x <= max_span && hi.y - origin.y <= max_span &&
                    hi.z - origin.z <= max_span),
               "encode: cloud extent exceeds 16-bit range at resolution ",
               cfg.resolution);

  EncodedCloud enc;
  enc.point_count = cloud.size();
  enc.bytes.reserve(encoded_size_bytes(cloud.size()));
  put_u32(enc.bytes, static_cast<std::uint32_t>(cloud.size()));
  put_u32(enc.bytes, 0);  // CRC placeholder, patched below
  put_f64(enc.bytes, cfg.resolution);
  put_f64(enc.bytes, origin.x);
  put_f64(enc.bytes, origin.y);
  put_f64(enc.bytes, origin.z);
  for (const geom::Vec3& p : cloud.points()) {
    put_u16(enc.bytes, static_cast<std::uint16_t>(
                           std::llround((p.x - origin.x) / cfg.resolution)));
    put_u16(enc.bytes, static_cast<std::uint16_t>(
                           std::llround((p.y - origin.y) / cfg.resolution)));
    put_u16(enc.bytes, static_cast<std::uint16_t>(
                           std::llround((p.z - origin.z) / cfg.resolution)));
  }
  const std::uint32_t crc = buffer_crc(enc.bytes);
  for (int i = 0; i < 4; ++i) {
    enc.bytes[kCrcOffset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  return enc;
}

DecodeResult try_decode(const EncodedCloud& enc) {
  DecodeResult out;
  if (enc.bytes.size() < kHeaderBytes) {
    out.status = DecodeStatus::kTruncatedHeader;
    return out;
  }
  const std::uint8_t* p = enc.bytes.data();
  const std::uint32_t count = get_u32(p);
  out.point_count = count;
  // A u32 count times the 6-byte stride cannot overflow 64-bit size math, so
  // the exact-size check below is itself total.
  if (enc.bytes.size() !=
      kHeaderBytes + static_cast<std::size_t>(count) * kBytesPerPoint) {
    out.status = DecodeStatus::kSizeMismatch;
    return out;
  }
  if (get_u32(p + kCrcOffset) != buffer_crc(enc.bytes)) {
    out.status = DecodeStatus::kBadChecksum;
    return out;
  }
  const double res = get_f64(p + 8);
  if (!std::isfinite(res) || res <= 0.0) {
    out.status = DecodeStatus::kBadResolution;
    return out;
  }
  const geom::Vec3 origin{get_f64(p + 16), get_f64(p + 24), get_f64(p + 32)};
  if (!std::isfinite(origin.x) || !std::isfinite(origin.y) ||
      !std::isfinite(origin.z)) {
    out.status = DecodeStatus::kBadOrigin;
    return out;
  }
  out.cloud.reserve(count);
  const std::uint8_t* q = p + kHeaderBytes;
  for (std::uint32_t i = 0; i < count; ++i) {
    const double x = origin.x + res * get_u16(q);
    const double y = origin.y + res * get_u16(q + 2);
    const double z = origin.z + res * get_u16(q + 4);
    out.cloud.push_back({x, y, z});
    q += kBytesPerPoint;
  }
  return out;
}

PointCloud decode(const EncodedCloud& enc) {
  DecodeResult r = try_decode(enc);
  ERPD_REQUIRE(r.ok(), "decode: invalid buffer (", to_string(r.status), ", ",
               enc.bytes.size(), " bytes, header count ", r.point_count, ")");
  return std::move(r.cloud);
}

}  // namespace erpd::pc
