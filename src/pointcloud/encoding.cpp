#include "pointcloud/encoding.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "core/check.hpp"

namespace erpd::pc {

namespace {

constexpr std::size_t kHeaderBytes = kEncodedHeaderBytes;

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void put_f64(std::vector<std::uint8_t>& out, double d) {
  std::uint64_t v = 0;
  std::memcpy(&v, &d, 8);
  put_u64(out, v);
}

double get_f64(const std::uint8_t* p) {
  const std::uint64_t v = get_u64(p);
  double d = 0.0;
  std::memcpy(&d, &v, 8);
  return d;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

}  // namespace

std::size_t encoded_size_bytes(std::size_t point_count) {
  return kHeaderBytes + point_count * kBytesPerPoint;
}

EncodedCloud encode(const PointCloud& cloud, const EncodingConfig& cfg) {
  ERPD_REQUIRE(cfg.resolution > 0.0, "encode: resolution must be > 0, got ",
               cfg.resolution);
  // Origin = min corner so all offsets are non-negative.
  geom::Vec3 origin{std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity()};
  geom::Vec3 hi = -origin;
  for (const geom::Vec3& p : cloud.points()) {
    origin.x = std::min(origin.x, p.x);
    origin.y = std::min(origin.y, p.y);
    origin.z = std::min(origin.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  if (cloud.empty()) origin = hi = geom::Vec3{};

  const double max_span = cfg.resolution * 65535.0;
  ERPD_REQUIRE(cloud.empty() ||
                   (hi.x - origin.x <= max_span && hi.y - origin.y <= max_span &&
                    hi.z - origin.z <= max_span),
               "encode: cloud extent exceeds 16-bit range at resolution ",
               cfg.resolution);

  EncodedCloud enc;
  enc.point_count = cloud.size();
  enc.bytes.reserve(encoded_size_bytes(cloud.size()));
  put_u64(enc.bytes, cloud.size());
  put_f64(enc.bytes, cfg.resolution);
  put_f64(enc.bytes, origin.x);
  put_f64(enc.bytes, origin.y);
  put_f64(enc.bytes, origin.z);
  for (const geom::Vec3& p : cloud.points()) {
    put_u16(enc.bytes, static_cast<std::uint16_t>(
                           std::llround((p.x - origin.x) / cfg.resolution)));
    put_u16(enc.bytes, static_cast<std::uint16_t>(
                           std::llround((p.y - origin.y) / cfg.resolution)));
    put_u16(enc.bytes, static_cast<std::uint16_t>(
                           std::llround((p.z - origin.z) / cfg.resolution)));
  }
  return enc;
}

PointCloud decode(const EncodedCloud& enc) {
  ERPD_REQUIRE(enc.bytes.size() >= kHeaderBytes,
               "decode: truncated header (", enc.bytes.size(), " of ",
               kHeaderBytes, " bytes)");
  const std::uint8_t* p = enc.bytes.data();
  const std::uint64_t count = get_u64(p);
  const double res = get_f64(p + 8);
  const geom::Vec3 origin{get_f64(p + 16), get_f64(p + 24), get_f64(p + 32)};
  // Reject counts whose payload size computation would overflow size_t.
  ERPD_REQUIRE(count <= (std::numeric_limits<std::size_t>::max() - kHeaderBytes) /
                            kBytesPerPoint,
               "decode: implausible point count ", count);
  ERPD_REQUIRE(enc.bytes.size() >= kHeaderBytes + count * kBytesPerPoint,
               "decode: truncated payload (", enc.bytes.size(), " bytes for ",
               count, " points)");
  PointCloud out;
  out.reserve(count);
  const std::uint8_t* q = p + kHeaderBytes;
  for (std::uint64_t i = 0; i < count; ++i) {
    const double x = origin.x + res * get_u16(q);
    const double y = origin.y + res * get_u16(q + 2);
    const double z = origin.z + res * get_u16(q + 4);
    out.push_back({x, y, z});
    q += kBytesPerPoint;
  }
  return out;
}

}  // namespace erpd::pc
