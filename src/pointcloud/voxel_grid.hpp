#pragma once
// Voxel-grid downsampling: one representative (centroid) per occupied voxel.
// Used both as a data reduction stage and as the spatial index feeding DBSCAN.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pointcloud/pointcloud.hpp"

namespace erpd::pc {

/// Integer voxel coordinate.
struct VoxelKey {
  std::int64_t x{0};
  std::int64_t y{0};
  std::int64_t z{0};
  bool operator==(const VoxelKey&) const = default;
};

struct VoxelKeyHash {
  std::size_t operator()(const VoxelKey& k) const {
    // FNV-style mix of the three packed coordinates.
    std::size_t h = 1469598103934665603ull;
    for (std::int64_t v : {k.x, k.y, k.z}) {
      h ^= static_cast<std::size_t>(v);
      h *= 1099511628211ull;
    }
    return h;
  }
};

VoxelKey voxel_of(geom::Vec3 p, double voxel_size);

/// Downsample: centroid of the points in each occupied voxel. Output order is
/// first-seen voxel order (deterministic for a given input order).
PointCloud voxel_downsample(const PointCloud& cloud, double voxel_size);

/// Spatial index over points, supporting radius queries. Bucket size should
/// be >= the query radius for single-ring lookups (enforced by
/// radius_neighbors).
///
/// Storage is a dense CSR grid over the occupied-cell bounding box whenever
/// that box is small enough (the overwhelmingly common case for sensor-scale
/// clouds): cell lookup is then a direct offset computation instead of a hash
/// probe, which matters because DBSCAN probes up to 27 cells per region
/// query and most probes land in empty cells. Pathologically spread clouds
/// (extent beyond kMaxDenseCells) fall back to the original spatial hash.
/// Both layouts visit cells in the same ascending (x, y, z) order and keep
/// per-cell point indices in ascending insertion order, so query results are
/// byte-identical between the two paths (pinned by test_dbscan).
class PointGrid {
 public:
  /// `allow_dense = false` forces the spatial-hash fallback regardless of
  /// extent — used by the dense/sparse equivalence tests.
  PointGrid(const PointCloud& cloud, double cell_size, bool allow_dense = true);

  /// Indices of points within `radius` of cloud[i] (excluding i itself).
  std::vector<std::size_t> radius_neighbors(std::size_t i, double radius) const;

  /// Indices of points within `radius` of an arbitrary query point.
  std::vector<std::size_t> radius_neighbors(geom::Vec3 q, double radius) const;

  /// Allocation-free variants for hot loops (DBSCAN region queries): results
  /// replace the contents of `out`, whose capacity is reused across calls.
  void radius_neighbors(std::size_t i, double radius,
                        std::vector<std::size_t>& out) const;
  void radius_neighbors(geom::Vec3 q, double radius,
                        std::vector<std::size_t>& out) const;

  /// True when the dense CSR layout is active (exposed for tests that pin
  /// dense/sparse equivalence).
  bool dense() const { return dense_; }

  /// Occupied-cell extent ceiling for the dense layout; beyond this the
  /// constructor falls back to the spatial hash (the offset table alone
  /// would cost 4 bytes/cell).
  static constexpr std::uint64_t kMaxDenseCells = 1ull << 22;

 private:
  static constexpr std::size_t kNoSkip = static_cast<std::size_t>(-1);

  /// Shared query core; `skip` excludes one index (the query point itself).
  void collect_neighbors(geom::Vec3 q, double radius, std::size_t skip,
                         std::vector<std::size_t>& out) const;

  const PointCloud& cloud_;
  double cell_;
  /// Occupied-cell bounding box: ring scans clamp to it, which in particular
  /// collapses the z loop to the occupied slab whenever the query radius
  /// spans the cloud's z extent (the common case after ground removal) —
  /// a 2D fast path without a separate planar index.
  VoxelKey lo_{};
  VoxelKey hi_{};

  // Dense CSR layout: cell (x, y, z) relative to lo_ maps to linear id
  // ((x * ny_) + y) * nz_ + z; cell_points_[cell_start_[id] ..
  // cell_start_[id + 1]) are its point indices, ascending.
  bool dense_{false};
  std::uint64_t ny_{0};
  std::uint64_t nz_{0};
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> cell_points_;

  /// Sparse fallback (original layout), used only when !dense_.
  std::unordered_map<VoxelKey, std::vector<std::size_t>, VoxelKeyHash> cells_;
};

}  // namespace erpd::pc
