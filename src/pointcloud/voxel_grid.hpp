#pragma once
// Voxel-grid downsampling: one representative (centroid) per occupied voxel.
// Used both as a data reduction stage and as the spatial index feeding DBSCAN.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pointcloud/pointcloud.hpp"

namespace erpd::pc {

/// Integer voxel coordinate.
struct VoxelKey {
  std::int64_t x{0};
  std::int64_t y{0};
  std::int64_t z{0};
  bool operator==(const VoxelKey&) const = default;
};

struct VoxelKeyHash {
  std::size_t operator()(const VoxelKey& k) const {
    // FNV-style mix of the three packed coordinates.
    std::size_t h = 1469598103934665603ull;
    for (std::int64_t v : {k.x, k.y, k.z}) {
      h ^= static_cast<std::size_t>(v);
      h *= 1099511628211ull;
    }
    return h;
  }
};

VoxelKey voxel_of(geom::Vec3 p, double voxel_size);

/// Downsample: centroid of the points in each occupied voxel. Output order is
/// first-seen voxel order (deterministic for a given input order).
PointCloud voxel_downsample(const PointCloud& cloud, double voxel_size);

/// Spatial hash over points, supporting radius queries. Bucket size should be
/// >= the query radius for single-ring lookups (enforced by radius_neighbors).
class PointGrid {
 public:
  PointGrid(const PointCloud& cloud, double cell_size);

  /// Indices of points within `radius` of cloud[i] (excluding i itself).
  std::vector<std::size_t> radius_neighbors(std::size_t i, double radius) const;

  /// Indices of points within `radius` of an arbitrary query point.
  std::vector<std::size_t> radius_neighbors(geom::Vec3 q, double radius) const;

  /// Allocation-free variants for hot loops (DBSCAN region queries): results
  /// replace the contents of `out`, whose capacity is reused across calls.
  void radius_neighbors(std::size_t i, double radius,
                        std::vector<std::size_t>& out) const;
  void radius_neighbors(geom::Vec3 q, double radius,
                        std::vector<std::size_t>& out) const;

 private:
  static constexpr std::size_t kNoSkip = static_cast<std::size_t>(-1);

  /// Shared query core; `skip` excludes one index (the query point itself).
  void collect_neighbors(geom::Vec3 q, double radius, std::size_t skip,
                         std::vector<std::size_t>& out) const;

  const PointCloud& cloud_;
  double cell_;
  /// Occupied-cell bounding box: ring scans clamp to it, which in particular
  /// collapses the z loop to the occupied slab whenever the query radius
  /// spans the cloud's z extent (the common case after ground removal) —
  /// a 2D fast path without a separate planar index.
  VoxelKey lo_{};
  VoxelKey hi_{};
  std::unordered_map<VoxelKey, std::vector<std::size_t>, VoxelKeyHash> cells_;
};

}  // namespace erpd::pc
