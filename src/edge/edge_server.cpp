#include "edge/edge_server.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "core/thread_pool.hpp"
#include "obs/span.hpp"

#include "pointcloud/encoding.hpp"
#include "pointcloud/voxel_grid.hpp"

namespace erpd::edge {

using geom::Vec2;

EdgeServer::EdgeServer(const sim::RoadNetwork& net, EdgeConfig cfg)
    : net_(net),
      cfg_(cfg),
      guard_(cfg.ingest),
      admission_(cfg.service),
      tracker_(cfg.tracker),
      rules_(net, cfg.rules),
      predictor_(net, cfg.predictor) {
  cfg_.wireless.validate();
  ERPD_REQUIRE(cfg_.min_relevance >= 0.0,
               "EdgeServer: min_relevance must be >= 0, got ",
               cfg_.min_relevance);
  ERPD_REQUIRE(cfg_.visibility_radius > 0.0 && cfg_.self_radius > 0.0,
               "EdgeServer: visibility/self radii must be > 0");
  ERPD_REQUIRE(cfg_.staleness_decay >= 0.0 && cfg_.staleness_decay < 1.0,
               "EdgeServer: staleness_decay must be in [0,1), got ",
               cfg_.staleness_decay);
  cfg_.redundancy.validate();
}

sim::AgentKind EdgeServer::classify_extent(const geom::Aabb& box) {
  if (box.empty()) return sim::AgentKind::kPedestrian;
  const Vec2 e = box.extent();
  return std::max(e.x, e.y) < 1.4 ? sim::AgentKind::kPedestrian
                                  : sim::AgentKind::kCar;
}

sim::AgentId EdgeServer::match_truth(
    const std::vector<sim::AgentSnapshot>& truth, Vec2 pos, double radius) {
  sim::AgentId best = sim::kInvalidAgent;
  double best_d = radius;
  for (const sim::AgentSnapshot& a : truth) {
    const double d = distance(a.position, pos);
    if (d < best_d) {
      best_d = d;
      best = a.id;
    }
  }
  return best;
}

std::vector<track::Detection> EdgeServer::build_detections(
    const std::vector<net::UploadFrame>& uploads,
    const std::vector<sim::AgentSnapshot>* truth) const {
  std::vector<track::Detection> out;

  // Object-granular uploads (Ours) become detections directly; blob uploads
  // (EMP cells / raw frames) are merged and segmented server-side.
  std::vector<const pc::PointCloud*> blobs;
  for (const net::UploadFrame& frame : uploads) {
    for (const net::ObjectUpload& obj : frame.objects) {
      if (obj.object_granular) {
        track::Detection d;
        d.position = obj.centroid_world.xy();
        d.velocity = obj.velocity_world;
        const geom::Aabb box = obj.cloud_world.aabb_xy();
        d.kind = classify_extent(box);
        d.extent = box.empty() ? 0.0 : std::max(box.extent().x, box.extent().y);
        d.point_count = obj.point_count;
        d.payload_bytes = pc::encoded_size_bytes(obj.point_count);
        d.truth_id = obj.truth_id;
        out.push_back(std::move(d));
      } else {
        blobs.push_back(&obj.cloud_world);
      }
    }
  }

  // Point Cloud Merging (paper §II-C): several vehicles report the same
  // object from different viewpoints; fuse reports that lie within the
  // footprint of one object into a single detection, or the tracker would
  // breed duplicate tracks of everything.
  if (out.size() > 1) {
    std::vector<track::Detection> fused;
    std::vector<bool> used(out.size(), false);
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (used[i]) continue;
      track::Detection merged = out[i];
      geom::Vec2 pos_sum = out[i].position;
      geom::Vec2 vel_sum = out[i].velocity.value_or(geom::Vec2{});
      int n = 1;
      for (std::size_t j = i + 1; j < out.size(); ++j) {
        if (used[j]) continue;
        if (distance(out[j].position, out[i].position) > 2.4) continue;
        used[j] = true;
        pos_sum += out[j].position;
        vel_sum += out[j].velocity.value_or(geom::Vec2{});
        ++n;
        // Keep the richest view as the dissemination payload.
        if (out[j].point_count > merged.point_count) {
          merged.point_count = out[j].point_count;
          merged.payload_bytes = out[j].payload_bytes;
        }
        merged.extent = std::max(merged.extent, out[j].extent);
        if (merged.extent > 1.4) merged.kind = sim::AgentKind::kCar;
        if (merged.truth_id == sim::kInvalidAgent) {
          merged.truth_id = out[j].truth_id;
        }
      }
      merged.position = pos_sum / static_cast<double>(n);
      if (merged.velocity) {
        merged.velocity = vel_sum / static_cast<double>(n);
      }
      fused.push_back(std::move(merged));
    }
    out = std::move(fused);
  }

  if (!blobs.empty()) {
    // Server-side ground strip (raw uploads still carry ground returns):
    // each blob filters into its own slot and slots concatenate in upload
    // order, so the combined cloud is byte-identical to the serial merge for
    // any thread count. Then voxel thinning and density clustering.
    std::vector<pc::PointCloud> stripped(blobs.size());
    core::parallel_for(blobs.size(), 1, [&](std::size_t b) {
      const pc::PointCloud& src = *blobs[b];
      pc::PointCloud& dst = stripped[b];
      dst.reserve(src.size());
      for (const geom::Vec3& p : src.points()) {
        if (p.z > 0.25) dst.push_back(p);
      }
    });
    pc::PointCloud above;
    std::size_t total = 0;
    for (const pc::PointCloud& s : stripped) total += s.size();
    above.reserve(total);
    for (const pc::PointCloud& s : stripped) above.append(s);

    const pc::PointCloud thin = pc::voxel_downsample(above, cfg_.detect_voxel);
    pc::DbscanConfig seg_cfg = cfg_.detect_dbscan;
    seg_cfg.collect_clusters = true;
    const pc::DbscanResult seg = pc::dbscan(thin, seg_cfg);
    for (std::int32_t cid = 0; cid < seg.cluster_count; ++cid) {
      // cluster_indices is ascending, so the centroid sum runs in the same
      // order extract_clusters would use (bit-identical accumulation).
      const std::vector<std::size_t> idx = seg.cluster_indices(cid);
      if (idx.size() < 4) continue;
      geom::Vec3 centroid{};
      geom::Aabb footprint;
      for (const std::size_t i : idx) {
        centroid += thin[i];
        footprint.expand(thin[i].xy());
      }
      centroid = centroid / static_cast<double>(idx.size());
      track::Detection d;
      d.position = centroid.xy();
      d.kind = classify_extent(footprint);
      d.extent = footprint.empty()
                     ? 0.0
                     : std::max(footprint.extent().x, footprint.extent().y);
      d.point_count = idx.size();
      d.payload_bytes = pc::encoded_size_bytes(idx.size());
      if (truth != nullptr) {
        d.truth_id = match_truth(*truth, d.position, 2.5);
      }
      out.push_back(std::move(d));
    }
  }
  return out;
}

FrameOutput EdgeServer::process_frame(
    const std::vector<net::UploadFrame>& uploads_in, double t,
    const std::vector<sim::AgentSnapshot>* truth) {
  FrameOutput out;

  // ---- Ingest admission (DESIGN.md §12) -----------------------------------
  // With admission control off and no wire payloads attached, the guard is
  // bypassed entirely: `uploads` aliases the input and this frame is
  // bit-identical to the pre-hardening pipeline.
  std::vector<net::UploadFrame> admitted;
  const std::vector<net::UploadFrame>* input = &uploads_in;
  if (guard_.should_run(uploads_in)) {
    admitted = guard_.admit(uploads_in, t, &out.ingest);
    input = &admitted;
  }

  // ---- Deadline admission (DESIGN.md §17) ---------------------------------
  // Service mode only: charge each upload's estimated decode+merge cost
  // against the per-frame latency budget, deferring or shedding what does
  // not fit. Runs after the guard so only validated work competes for
  // budget. Off by default: this frame stays bit-identical.
  if (cfg_.service.enabled) {
    std::vector<net::UploadFrame> batch =
        (input == &admitted) ? std::move(admitted) : *input;
    admitted = admission_.run(std::move(batch), t, &out.service);
    input = &admitted;
  }
  const std::vector<net::UploadFrame>& uploads = *input;

  // Delta-base acknowledgement: remember the highest admitted upload_seq per
  // vehicle so the next feedback can tell clients whether their keyframe
  // made it past loss, capping and the ingest guard.
  if (cfg_.redundancy.enabled) {
    for (const net::UploadFrame& f : uploads) {
      if (f.upload_seq == 0) continue;
      std::uint64_t& acked = acked_seq_[f.vehicle];
      acked = std::max(acked, f.upload_seq);
    }
  }

  // ---- Traffic-map construction (merge + detection) -----------------------
  obs::StageSpan merge_span(metrics_, "stage.merge",
                            &out.timings.merge_seconds);
  const std::vector<track::Detection> detections =
      build_detections(uploads, truth);
  out.detections = detections.size();

  // Update the connected-vehicle registry from upload poses. Velocity is
  // the pose displacement since the previous upload.
  for (const net::UploadFrame& f : uploads) {
    VehicleInfo& info = fleet_[f.vehicle];
    const Vec2 pos = f.pose.position.xy();
    if (info.has_prev && t > info.last_seen) {
      info.velocity = (pos - info.position) / (t - info.last_seen);
    }
    info.position = pos;
    info.heading = f.pose.yaw;
    info.last_seen = t;
    info.has_prev = true;
  }
  // Forget vehicles that stopped uploading.
  std::erase_if(fleet_, [t](const auto& kv) {
    return t - kv.second.last_seen > 1.0;
  });
  merge_span.stop();

  // ---- Tracking + rules + prediction --------------------------------------
  obs::StageSpan track_span(metrics_, "stage.track",
                            &out.timings.track_predict_seconds);
  tracker_.step(detections, t);
  const std::vector<const track::Track*> confirmed = tracker_.confirmed();
  out.confirmed_tracks = confirmed.size();
  for (const track::Track* tr : confirmed) {
    if (tr->misses == 0 && tr->velocity().norm() > 1.0) ++out.moving_tracks;
    if (tr->misses > 0) ++out.coasting_tracks;
  }

  const track::RepresentativeSet reps = rules_.select(confirmed);
  out.predicted_tracks = reps.predicted_tracks.size();

  // Hypothesis sets: on a shared approach the lane intent is ambiguous, so
  // each predicted object/vehicle carries one trajectory per plausible
  // maneuver and relevance maximizes over the combinations.
  std::map<int, std::vector<track::PredictedTrajectory>> traj;
  for (int id : reps.predicted_tracks) {
    if (const track::Track* tr = tracker_.find(id)) {
      traj.emplace(id, predictor_.predict_hypotheses(*tr));
    }
  }
  std::map<sim::AgentId, std::vector<track::PredictedTrajectory>> vehicle_traj;
  for (const auto& [vid, info] : fleet_) {
    vehicle_traj.emplace(vid,
                         predictor_.predict_hypotheses(
                             info.position, info.velocity, sim::AgentKind::kCar));
  }
  track_span.stop();

  // ---- Coverage feedback (DESIGN.md §16) ----------------------------------
  // Region = Voronoi cell over the connected fleet (owner = nearest vehicle,
  // first-lowest-index tie-break, the same rule VehicleClient applies on its
  // copy of the sites). Instant coverage of a region saturates from uploaded
  // points and fresh confirmed tracks inside it; an EMA smooths it so one
  // quiet frame does not flip a region back to "uncovered".
  if (cfg_.redundancy.enabled && !fleet_.empty()) {
    const RedundancyConfig& red = cfg_.redundancy;
    std::vector<Vec2> sites;
    std::vector<sim::AgentId> owners;
    sites.reserve(fleet_.size());
    owners.reserve(fleet_.size());
    for (const auto& [vid, info] : fleet_) {
      sites.push_back(info.position);
      owners.push_back(vid);
    }
    const geom::VoronoiPartition part(sites);

    std::vector<double> instant(owners.size(), 0.0);
    for (const net::UploadFrame& f : uploads) {
      for (const net::ObjectUpload& obj : f.objects) {
        if (const auto cell = part.cell_of(obj.centroid_world.xy())) {
          instant[*cell] +=
              static_cast<double>(obj.point_count) / red.points_norm;
        }
      }
    }
    for (const track::Track* tr : confirmed) {
      if (tr->misses != 0) continue;
      if (const auto cell = part.cell_of(tr->position())) {
        instant[*cell] += red.track_weight;
      }
    }

    // EMA update, keyed by owner so a region's history follows its vehicle.
    for (std::size_t i = 0; i < owners.size(); ++i) {
      double& conf = coverage_[owners[i]];
      conf += red.coverage_alpha * (std::min(instant[i], 1.0) - conf);
    }
    std::erase_if(coverage_, [this](const auto& kv) {
      return fleet_.find(kv.first) == fleet_.end();
    });
    std::erase_if(acked_seq_, [this](const auto& kv) {
      return fleet_.find(kv.first) == fleet_.end();
    });

    // One feedback message per connected vehicle, each carrying the full
    // region map plus that vehicle's delta-base ack.
    out.feedback.reserve(owners.size());
    for (std::size_t i = 0; i < owners.size(); ++i) {
      net::CoverageFeedback fb;
      fb.to = owners[i];
      fb.timestamp = t;
      const auto ack = acked_seq_.find(owners[i]);
      if (ack != acked_seq_.end()) {
        fb.last_admitted_upload_seq = ack->second;
        fb.has_ack = true;
      }
      fb.regions.reserve(owners.size());
      for (std::size_t j = 0; j < owners.size(); ++j) {
        fb.regions.push_back({owners[j], sites[j], coverage_.at(owners[j])});
      }
      out.feedback_bytes += fb.wire_bytes();
      out.feedback.push_back(std::move(fb));
    }
    if (metrics_ != nullptr) {
      metrics_->counter("coverage.feedback_msgs").add(out.feedback.size());
      metrics_->counter("coverage.feedback_bytes").add(out.feedback_bytes);
    }
  }

  // ---- Relevance estimation -----------------------------------------------
  obs::StageSpan relevance_span(metrics_, "stage.relevance",
                                &out.timings.relevance_seconds);

  // Visibility: which tracks does each uploader already see?
  // For object-granular uploads, compare object centroids; for blobs, count
  // points near the track.
  auto visible_to = [&](const net::UploadFrame& frame, Vec2 track_pos) {
    for (const net::ObjectUpload& obj : frame.objects) {
      if (obj.object_granular) {
        if (distance(obj.centroid_world.xy(), track_pos) <
            cfg_.visibility_radius) {
          return true;
        }
      } else {
        int near = 0;
        for (const geom::Vec3& p : obj.cloud_world.points()) {
          if (distance(p.xy(), track_pos) < cfg_.visibility_radius &&
              ++near >= 3) {
            return true;
          }
        }
      }
    }
    return false;
  };

  const auto object_kind_length = [](sim::AgentKind k) {
    return sim::default_dims(k).length;
  };

  // Max-relevance collision estimate over trajectory hypothesis pairs.
  const auto best_estimate =
      [](const std::vector<track::PredictedTrajectory>& a,
         const std::vector<track::PredictedTrajectory>& b, double len_a,
         double len_b) -> std::optional<core::CollisionEstimate> {
    std::optional<core::CollisionEstimate> best;
    for (const auto& ta : a) {
      for (const auto& tb : b) {
        const auto est = core::estimate_collision(ta, tb, len_a, len_b);
        if (est && (!best || est->relevance > best->relevance)) best = est;
      }
    }
    return best;
  };

  std::vector<core::Candidate> candidates;
  // Relevance of each object to each *connected* vehicle.
  // track id -> (vehicle -> relevance), reused for follower propagation.
  std::map<int, std::map<sim::AgentId, double>> relevance_of;

  const bool need_relevance =
      cfg_.strategy == DisseminationStrategy::kRelevanceGreedy ||
      cfg_.strategy == DisseminationStrategy::kRelevanceOptimal;

  if (need_relevance) {
    for (const auto& [vid, info] : fleet_) {
      const auto vt = vehicle_traj.find(vid);
      if (vt == vehicle_traj.end()) continue;
      // The uploader's own frame, for the visibility rule.
      const net::UploadFrame* own = nullptr;
      for (const net::UploadFrame& f : uploads) {
        if (f.vehicle == vid) own = &f;
      }
      for (const auto& [tid, trj] : traj) {
        const track::Track* tr = tracker_.find(tid);
        if (tr == nullptr) continue;
        // Skip the vehicle's own track.
        if (distance(tr->position(), info.position) < cfg_.self_radius) {
          continue;
        }
        // Directly observable objects need no dissemination (relevance 0).
        if (own != nullptr && visible_to(*own, tr->position())) continue;

        const auto est =
            best_estimate(trj, vt->second, object_kind_length(tr->kind),
                          object_kind_length(sim::AgentKind::kCar));
        if (!est) continue;
        // A coasting track's position is a prediction, not a measurement;
        // decay its relevance per missed frame so stale hazards do not
        // outrank freshly observed ones in the knapsack.
        double rel = est->relevance;
        if (tr->misses > 0 && cfg_.staleness_decay > 0.0) {
          rel *= std::pow(1.0 - cfg_.staleness_decay, tr->misses);
        }
        if (rel < cfg_.min_relevance) continue;
        if (tr->misses > 0) ++out.stale_candidates;
        relevance_of[tid][vid] = rel;
        candidates.push_back({tid, vid, rel, tr->payload_bytes,
                              tr->truth_id});
      }
    }

    // Pedestrian cluster members inherit their representative's relevance.
    for (const auto& [member, rep] : reps.pedestrian_rep_of) {
      const auto rep_rel = relevance_of.find(rep);
      if (rep_rel == relevance_of.end()) continue;
      const track::Track* tr = tracker_.find(member);
      if (tr == nullptr) continue;
      for (const auto& [vid, r] : rep_rel->second) {
        const auto& info = fleet_.at(vid);
        if (distance(tr->position(), info.position) < cfg_.self_radius) {
          continue;
        }
        candidates.push_back({member, vid, r, tr->payload_bytes, tr->truth_id});
        relevance_of[member][vid] = r;
      }
    }

    // Follower relevance (§III-A.2): walk each lane queue front-to-back and
    // propagate alpha-decayed relevance to unsafe followers.
    if (cfg_.follower_relevance) {
      for (const track::LaneQueue& q : reps.lane_queues) {
        for (std::size_t i = 1; i < q.track_ids.size(); ++i) {
          const int follower_tid = q.track_ids[i];
          const int leader_tid = q.track_ids[i - 1];
          const track::Track* ftr = tracker_.find(follower_tid);
          const track::Track* ltr = tracker_.find(leader_tid);
          if (ftr == nullptr || ltr == nullptr) break;
          const double gap = q.arc_lengths[i - 1] - q.arc_lengths[i] -
                             object_kind_length(ftr->kind);
          const double fspeed = ftr->velocity().norm();
          if (!core::follower_unsafe(gap, fspeed, cfg_.follower)) continue;

          // The follower *receives* data, so it must be a connected vehicle.
          sim::AgentId follower_vid = sim::kInvalidAgent;
          for (const auto& [vid, info] : fleet_) {
            if (distance(info.position, ftr->position()) < cfg_.self_radius) {
              follower_vid = vid;
              break;
            }
          }
          if (follower_vid == sim::kInvalidAgent) continue;

          // Inherit from every object relevant to the leader. If the leader
          // is itself connected its recipient relevance is already in
          // relevance_of; otherwise estimate the object-leader collision
          // directly from their trajectories.
          for (const auto& [obj_tid, per_vehicle] : relevance_of) {
            if (obj_tid == follower_tid) continue;
            // Leader's relevance for this object, via the leader's vehicle id
            // if connected, else via a fresh trajectory-pair estimate.
            double r_leader = 0.0;
            for (const auto& [vid, info] : fleet_) {
              if (distance(info.position, ltr->position()) < cfg_.self_radius) {
                const auto it = per_vehicle.find(vid);
                if (it != per_vehicle.end()) r_leader = it->second;
                break;
              }
            }
            if (r_leader <= 0.0) {
              const auto obj_traj = traj.find(obj_tid);
              if (obj_traj == traj.end()) continue;
              const auto lead_traj = predictor_.predict_hypotheses(
                  ltr->position(), ltr->velocity(), ltr->kind);
              const auto est = best_estimate(
                  obj_traj->second, lead_traj,
                  object_kind_length(tracker_.find(obj_tid)->kind),
                  object_kind_length(ltr->kind));
              if (est) r_leader = est->relevance;
            }
            if (r_leader < cfg_.min_relevance) continue;
            const double r_f = cfg_.follower.alpha * r_leader;
            if (r_f < cfg_.min_relevance) continue;
            auto& slot = relevance_of[obj_tid][follower_vid];
            if (r_f > slot) {
              slot = r_f;
              const track::Track* obj_tr = tracker_.find(obj_tid);
              candidates.push_back({obj_tid, follower_vid, r_f,
                                    obj_tr->payload_bytes, obj_tr->truth_id});
            }
          }
        }
      }
    }
  } else {
    // EMP / Unlimited: every confirmed track to every connected vehicle.
    for (const track::Track* tr : confirmed) {
      for (const auto& [vid, info] : fleet_) {
        if (distance(tr->position(), info.position) < cfg_.self_radius) {
          continue;
        }
        candidates.push_back({tr->id, vid, 0.0, tr->payload_bytes,
                              tr->truth_id});
      }
    }
  }
  out.candidates = candidates.size();
  relevance_span.stop();

  // ---- Dissemination scheduling -------------------------------------------
  obs::StageSpan diss_span(metrics_, "stage.disseminate",
                           &out.timings.dissemination_seconds);
  const std::size_t budget = cfg_.wireless.downlink_budget_bytes();
  core::Selection sel;
  switch (cfg_.strategy) {
    case DisseminationStrategy::kRelevanceGreedy:
      sel = core::greedy_dissemination(candidates, budget);
      break;
    case DisseminationStrategy::kRelevanceOptimal:
      sel = core::optimal_dissemination(candidates, budget);
      break;
    case DisseminationStrategy::kRoundRobin:
      sel = core::round_robin_dissemination(candidates, budget, rr_cursor_);
      break;
    case DisseminationStrategy::kBroadcast:
      sel = core::broadcast_dissemination(candidates);
      break;
  }
  diss_span.stop();

  out.downlink_bytes = sel.total_bytes;
  out.delivered_relevance = sel.total_relevance;
  out.selected.reserve(sel.chosen.size());
  for (const core::Candidate& c : sel.chosen) {
    out.selected.push_back({c.to, c.track_id, c.about, c.bytes, c.relevance});
  }

  if (metrics_ != nullptr) {
    metrics_->counter("edge.detections").add(out.detections);
    metrics_->counter("edge.confirmed_tracks").add(out.confirmed_tracks);
    metrics_->counter("edge.moving_tracks").add(out.moving_tracks);
    metrics_->counter("edge.coasting_tracks").add(out.coasting_tracks);
    metrics_->counter("edge.candidates").add(out.candidates);
    metrics_->counter("edge.stale_candidates").add(out.stale_candidates);
    metrics_->counter("diss.selected_msgs").add(out.selected.size());
    metrics_->counter("diss.selected_bytes").add(out.downlink_bytes);
  }
  return out;
}

}  // namespace erpd::edge
