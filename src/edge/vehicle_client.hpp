#pragma once
// On-vehicle pipeline (paper Fig. 2, left box).
//
// Per LiDAR frame a connected vehicle produces an UploadFrame according to
// the method under evaluation:
//   - kOursMovingObjects: ground removal + DBSCAN + frame differencing; only
//     moving-object clouds are uploaded (paper §II-B);
//   - kEmpVoronoi:        EMP [9] — ground-removed cloud cropped to the
//     vehicle's Voronoi cell over the connected fleet;
//   - kUnlimitedRaw:      the whole raw frame.
//
// truth_id tagging: the extractor does not know agent identities; the
// harness attaches them afterwards by nearest-centroid matching against the
// simulator ground truth, purely so that disseminations can be applied back
// to driver knowledge and scored. The edge server never reads truth ids.

#include <optional>

#include "geom/voronoi.hpp"
#include "net/message.hpp"
#include "obs/metrics.hpp"
#include "pointcloud/moving_extractor.hpp"
#include "sim/world.hpp"

namespace erpd::edge {

enum class UploadPolicy : std::uint8_t {
  kOursMovingObjects,
  kEmpVoronoi,
  kUnlimitedRaw,
};

struct ClientConfig {
  UploadPolicy policy{UploadPolicy::kOursMovingObjects};
  pc::MovingExtractorConfig extractor{};
  pc::EncodingConfig encoding{};
  /// Distance within which an extracted object is matched to a ground-truth
  /// agent for harness bookkeeping.
  double truth_match_radius{2.5};
  /// Optional observability registry (not owned). make_upload records its
  /// scan time into stage.sense, its extraction time into stage.extract,
  /// and bumps client.raw_points / client.upload_bytes — from whichever
  /// pool worker runs the client, which is why the registry must be
  /// shareable across threads.
  obs::MetricsRegistry* metrics{nullptr};
};

struct ClientFrameStats {
  std::size_t raw_points{0};
  std::size_t uploaded_points{0};
  std::size_t uploaded_bytes{0};
  /// Wall-clock seconds spent in the simulated LiDAR scan alone — the
  /// denominator of the bench's sensing_points_per_sec.
  double sensing_seconds{0.0};
  /// Wall-clock seconds spent in local processing (the paper's Moving
  /// Object Extraction runtime).
  double processing_seconds{0.0};
};

class VehicleClient {
 public:
  VehicleClient(sim::AgentId vehicle, ClientConfig cfg = {});

  sim::AgentId vehicle() const { return vehicle_; }

  /// Run the local pipeline on this frame and build the upload.
  /// `voronoi` must cover the connected fleet when policy is kEmpVoronoi
  /// (cell index = position of this vehicle among the sites).
  /// `truth` optionally supplies a precomputed world snapshot for truth
  /// matching so that N clients sharing one frame do not each re-snapshot the
  /// world; pass nullptr to snapshot internally. The world is only read, so
  /// clients of distinct vehicles may run concurrently.
  net::UploadFrame make_upload(const sim::World& world,
                               const geom::VoronoiPartition* voronoi,
                               std::size_t voronoi_cell,
                               ClientFrameStats* stats = nullptr,
                               const std::vector<sim::AgentSnapshot>* truth =
                                   nullptr);

  /// Drop all temporal pipeline state (frame-differencing baselines). Called
  /// by the harness when the vehicle reconnects after a radio blackout: the
  /// last processed frame may be arbitrarily old, so motion estimates
  /// derived from it would be garbage.
  void reset_pipeline();

  /// Contract-check that a sensor pose is fully finite. make_upload refuses
  /// to build an upload from a non-finite pose: every uploaded cloud is
  /// world-framed through it, so a single NaN would silently poison the
  /// whole frame downstream.
  static void require_finite_pose(const geom::Pose& pose);

 private:
  sim::AgentId vehicle_;
  ClientConfig cfg_;
  pc::MovingObjectExtractor extractor_;

  static sim::AgentId match_truth(
      const std::vector<sim::AgentSnapshot>& truth, geom::Vec2 centroid,
      double radius, sim::AgentId self);
};

}  // namespace erpd::edge
