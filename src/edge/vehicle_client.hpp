#pragma once
// On-vehicle pipeline (paper Fig. 2, left box).
//
// Per LiDAR frame a connected vehicle produces an UploadFrame according to
// the method under evaluation:
//   - kOursMovingObjects: ground removal + DBSCAN + frame differencing; only
//     moving-object clouds are uploaded (paper §II-B);
//   - kEmpVoronoi:        EMP [9] — ground-removed cloud cropped to the
//     vehicle's Voronoi cell over the connected fleet;
//   - kUnlimitedRaw:      the whole raw frame.
//
// truth_id tagging: the extractor does not know agent identities; the
// harness attaches them afterwards by nearest-centroid matching against the
// simulator ground truth, purely so that disseminations can be applied back
// to driver knowledge and scored. The edge server never reads truth ids.

#include <optional>
#include <vector>

#include "edge/redundancy.hpp"
#include "geom/voronoi.hpp"
#include "net/message.hpp"
#include "obs/metrics.hpp"
#include "pointcloud/moving_extractor.hpp"
#include "sim/world.hpp"

namespace erpd::edge {

enum class UploadPolicy : std::uint8_t {
  kOursMovingObjects,
  kEmpVoronoi,
  kUnlimitedRaw,
};

struct ClientConfig {
  UploadPolicy policy{UploadPolicy::kOursMovingObjects};
  pc::MovingExtractorConfig extractor{};
  pc::EncodingConfig encoding{};
  /// Distance within which an extracted object is matched to a ground-truth
  /// agent for harness bookkeeping.
  double truth_match_radius{2.5};
  /// Redundancy-aware uplink knobs (coverage-feedback suppression + delta
  /// encoding). Off by default: make_upload is then byte-identical to the
  /// pre-redundancy pipeline.
  RedundancyConfig redundancy{};
  /// Optional observability registry (not owned). make_upload records its
  /// scan time into stage.sense, its extraction time into stage.extract,
  /// and bumps client.raw_points / client.upload_bytes — from whichever
  /// pool worker runs the client, which is why the registry must be
  /// shareable across threads.
  obs::MetricsRegistry* metrics{nullptr};
};

struct ClientFrameStats {
  std::size_t raw_points{0};
  std::size_t uploaded_points{0};
  std::size_t uploaded_bytes{0};
  /// Uplink bytes avoided this frame by the redundancy layer: coverage
  /// suppression savings plus delta-vs-keyframe savings. Zero when
  /// RedundancyConfig is off.
  std::size_t suppressed_bytes{0};
  /// Wall-clock seconds spent in the simulated LiDAR scan alone — the
  /// denominator of the bench's sensing_points_per_sec.
  double sensing_seconds{0.0};
  /// Wall-clock seconds spent in local processing (the paper's Moving
  /// Object Extraction runtime).
  double processing_seconds{0.0};
};

class VehicleClient {
 public:
  VehicleClient(sim::AgentId vehicle, ClientConfig cfg = {});

  sim::AgentId vehicle() const { return vehicle_; }

  /// Run the local pipeline on this frame and build the upload.
  /// `voronoi` must cover the connected fleet when policy is kEmpVoronoi
  /// (cell index = position of this vehicle among the sites).
  /// `truth` optionally supplies a precomputed world snapshot for truth
  /// matching so that N clients sharing one frame do not each re-snapshot the
  /// world; pass nullptr to snapshot internally. The world is only read, so
  /// clients of distinct vehicles may run concurrently.
  net::UploadFrame make_upload(const sim::World& world,
                               const geom::VoronoiPartition* voronoi,
                               std::size_t voronoi_cell,
                               ClientFrameStats* stats = nullptr,
                               const std::vector<sim::AgentSnapshot>* truth =
                                   nullptr);

  /// Drop all temporal pipeline state (frame-differencing baselines, delta
  /// keyframe bases, cached coverage feedback). Called by the harness when
  /// the vehicle reconnects after a radio blackout: the last processed frame
  /// may be arbitrarily old, so motion estimates derived from it would be
  /// garbage — and the edge may have forgotten our keyframes.
  void reset_pipeline();

  /// Deliver a coverage-feedback message from the edge (DESIGN.md §16).
  /// Applied from the *next* make_upload on: suppression decisions and delta
  /// acks read the latest fresh feedback. Ignored when redundancy is off.
  void receive_feedback(const net::CoverageFeedback& fb);

  /// Contract-check that a sensor pose is fully finite. make_upload refuses
  /// to build an upload from a non-finite pose: every uploaded cloud is
  /// world-framed through it, so a single NaN would silently poison the
  /// whole frame downstream.
  static void require_finite_pose(const geom::Pose& pose);

 private:
  sim::AgentId vehicle_;
  ClientConfig cfg_;
  pc::MovingObjectExtractor extractor_;

  /// Per-object delta state: identity (object_seq) assigned by nearest-
  /// centroid matching across frames, plus the last keyframe sent under that
  /// identity. Vector order = creation order (deterministic).
  struct TrackedObject {
    std::uint64_t object_seq{0};
    geom::Vec3 centroid{};
    pc::EncodedCloud keyframe{};
    std::uint64_t keyframe_upload_seq{0};
    double keyframe_time{0.0};
    int uploads_since_keyframe{0};
    double last_seen{0.0};
    bool matched{false};  // scratch flag within one make_upload
  };
  std::vector<TrackedObject> objects_;
  std::optional<net::CoverageFeedback> feedback_;
  std::uint64_t next_upload_seq_{1};
  std::uint64_t next_object_seq_{1};

  /// Find-or-create the TrackedObject for an extracted centroid (greedy
  /// nearest unmatched entry within 3 m).
  TrackedObject& match_object(const geom::Vec3& centroid, double t);

  /// True when `pos` falls in a well-covered *foreign* feedback region.
  bool region_suppressed(geom::Vec2 pos) const;

  /// Seed-hashed down-sample to keep_fraction, floored at min_points.
  pc::PointCloud suppress_points(const pc::PointCloud& pts,
                                 std::uint64_t frame_tag) const;

  static sim::AgentId match_truth(
      const std::vector<sim::AgentSnapshot>& truth, geom::Vec2 centroid,
      double radius, sim::AgentId self);
};

}  // namespace erpd::edge
