#pragma once
// Closed-loop evaluation harness (paper §IV).
//
// Per LiDAR frame: connected vehicles sense + extract + upload under the
// uplink cap; the edge server builds the map, estimates relevance and picks
// disseminations under the downlink cap; disseminations are delivered back
// to drivers (who react one reaction time later); the world advances.
//
// The four evaluated methods:
//   kSingle    — no sharing at all;
//   kEmp       — EMP [9]: Voronoi-partitioned uploads + Round-Robin
//                dissemination, both bandwidth-capped;
//   kOurs      — moving-object uploads + relevance-greedy dissemination;
//   kUnlimited — raw uploads + full-map broadcast, no caps.

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "edge/edge_server.hpp"
#include "edge/vehicle_client.hpp"
#include "net/channel.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "sim/scenario.hpp"

namespace erpd::edge {

enum class Method : std::uint8_t { kSingle, kEmp, kOurs, kUnlimited };

const char* to_string(Method m);

/// Per-pipeline-frame stage sample, emitted through RunnerConfig::on_frame.
/// Wall-clock fields are host measurements (profiling), byte fields are
/// simulated wire traffic.
struct FrameTrace {
  int frame{0};
  std::size_t vehicles{0};      ///< connected vehicles sensing this frame
  std::size_t raw_points{0};    ///< LiDAR returns across the fleet
  std::size_t offered_bytes{0};   ///< uplink bytes before the shared cap
  std::size_t delivered_bytes{0}; ///< uplink bytes after the cap
  /// Host wall time summed over each vehicle's LiDAR scan — the sensor
  /// alone, excluding extraction (which is stage.extract) and the fan-out's
  /// scheduling overhead (stage.fanout). Denominator of the bench's
  /// sensing_points_per_sec.
  double sensing_wall_seconds{0.0};
  /// Slowest single vehicle's extraction time (the simulated-latency term).
  double extract_max_seconds{0.0};
  double merge_seconds{0.0};
  double track_relevance_seconds{0.0};
  double dissemination_seconds{0.0};
};

struct RunnerConfig {
  Method method{Method::kOurs};
  net::WirelessConfig wireless{};
  EdgeConfig edge{};
  ClientConfig client{};
  /// Simulated duration (seconds).
  double duration{25.0};
  /// How often the perception pipeline runs (defaults to the world dt, i.e.
  /// every LiDAR frame).
  int frames_per_pipeline{1};
  /// Optional per-frame stage observer (used by the perf harness). Called
  /// from run() on the caller's thread, once per pipeline frame.
  std::function<void(const FrameTrace&)> on_frame;
  /// Deterministic channel fault injection. Default-constructed config is
  /// inactive: the run is bit-identical to the lossless pipeline.
  net::FaultConfig fault{};
  /// Redundancy-aware uplink (DESIGN.md §16). The runner copies this single
  /// source of truth into both ClientConfig and EdgeConfig so vehicle and
  /// edge always agree on thresholds. Off by default: bit-identical runs.
  RedundancyConfig redundancy{};
  /// Service-mode edge pipeline (DESIGN.md §17): bounded MPSC ingest queues
  /// between the sensing fan-out and the edge plus deadline-budget admission
  /// inside the edge. The runner copies this single source of truth into
  /// EdgeConfig. Off by default: bit-identical runs.
  ServiceConfig service{};
  /// Optional observer of the edge's per-frame dissemination decisions (as
  /// selected, before channel faults). Used by the golden-scenario harness.
  std::function<void(int frame, const std::vector<net::Dissemination>&)>
      on_decisions;
  /// Optional observability registry (not owned). When set, the runner wires
  /// it through every layer it drives — clients (stage.sense /
  /// stage.extract), the edge server
  /// (stage.merge/track/relevance/disseminate), the lossy channel and
  /// the uplink cap — and records its own stage.fanout/upload/downlink/e2e
  /// spans, byte/loss counters and thread-pool gauges. Recording is
  /// write-only: a run with metrics attached produces bit-identical
  /// simulated outputs to one without.
  obs::MetricsRegistry* metrics{nullptr};
};

struct MethodMetrics {
  // Safety.
  int vehicles_entered{0};
  int vehicles_safe{0};
  /// Fraction of ALL vehicles that traversed the intersection without a
  /// collision (fleet-wide view).
  double safe_passage_rate{0.0};
  /// Fraction of the scripted conflict pair (ego, threat) passing safely —
  /// the paper's Fig. 10 metric ("Single" is 0% by construction: without
  /// sharing, the occluded conflict always ends in an accident).
  double conflict_safe_rate{0.0};
  bool ego_safe{true};
  /// Safety of the scripted tailgating follower (true when none exists).
  bool follower_safe{true};
  /// Minimum bumper gap between the tailgating follower and the ego over the
  /// run (inf when no follower). Shrinks toward 0 when the follower is not
  /// warned about the hazard the ego brakes for.
  double follower_min_gap{0.0};
  int collisions{0};
  double min_key_distance{0.0};  // ego-threat minimum distance
  // Bandwidth.
  double uplink_mbps{0.0};
  double downlink_mbps{0.0};
  double uplink_bytes_per_frame{0.0};
  double downlink_bytes_per_frame{0.0};
  /// Uplink bytes the fleet *offered* per pipeline frame, before the shared
  /// cap. With uplink_bytes_per_frame (delivered) this separates demand from
  /// goodput when the cap binds.
  double uplink_offered_bytes_per_frame{0.0};
  /// Fraction of offered uplink bytes that never reached the edge (lost to
  /// channel faults or shed by the cap), in [0, 1]. Exactly
  /// (lost + capped) / offered — see the per-frame byte partition below.
  double uplink_drop_ratio{0.0};
  // Map quality.
  double avg_objects_detected{0.0};
  // Latency (seconds, averaged over pipeline frames).
  double e2e_latency{0.0};
  double extraction_seconds{0.0};
  double upload_seconds{0.0};
  double merge_seconds{0.0};
  double track_predict_seconds{0.0};
  double dissemination_decision_seconds{0.0};
  double downlink_transfer_seconds{0.0};
  // Dissemination accounting.
  double delivered_relevance{0.0};
  int disseminations{0};
  // Fault injection / graceful degradation (all zero when
  // RunnerConfig::fault is inactive and no track ever coasts).
  /// Fraction of offered upload frames lost to channel faults, in [0, 1].
  double uplink_loss_ratio{0.0};
  /// Fraction of selected disseminations lost on the wire or delivered past
  /// FaultConfig::downlink_deadline, in [0, 1].
  double downlink_deadline_miss_ratio{0.0};
  /// Total confirmed-track frames carried purely on Kalman prediction
  /// (summed over pipeline frames).
  int coasted_track_frames{0};
  /// Total accepted relevance candidates computed from stale tracks.
  int stale_relevance_frames{0};
  // Ingest hardening (DESIGN.md §12; all zero when the edge's admission
  // layer never engages).
  /// Objects whose on-the-wire payload failed CRC/header validation.
  int ingest_rejected_crc{0};
  /// Frames/objects rejected by semantic admission checks.
  int ingest_rejected_semantic{0};
  /// Quarantine events (a repeat offender re-entering counts again).
  int ingest_quarantined_vehicles{0};
  /// Objects shed by the per-frame ingest point budget under overload.
  int ingest_shed_uploads{0};
  // Redundancy-aware uplink (DESIGN.md §16; all zero with the knob off).
  // Every offered uplink byte has exactly one fate per frame:
  //   offered == delivered-to-edge + lost (channel faults) + capped (shared
  //   uplink budget); suppressed bytes were never offered at all and are
  //   accounted separately as savings.
  /// Uplink bytes avoided per pipeline frame by coverage suppression and
  /// delta encoding (client-side savings; never part of `offered`).
  double uplink_suppressed_bytes_per_frame{0.0};
  /// Offered uplink bytes shed by the shared uplink cap, per pipeline frame.
  double uplink_capped_bytes_per_frame{0.0};
  /// Offered uplink bytes lost to channel faults, per pipeline frame.
  double uplink_lost_bytes_per_frame{0.0};
  /// Coverage-feedback messages the edge emitted / that the lossy downlink
  /// dropped before delivery.
  int coverage_feedback_msgs{0};
  int coverage_feedback_lost_msgs{0};
  // Service mode (DESIGN.md §17; all zero with the knob off). The uplink
  // byte partition above gains one fate: offered == delivered-to-edge +
  // lost + backpressure (ingest-queue refusals/drain overflow) + capped.
  // Ingest-object fates obey Σarrived == Σadmitted + Σshed + parked
  // residual over a run (deferrals re-arrive as carried work).
  /// Offered uplink bytes dropped by ingest-queue backpressure, per frame.
  double uplink_backpressure_bytes_per_frame{0.0};
  /// Upload frames refused by a full queue lane or the drain cap.
  int service_backpressure_uploads{0};
  /// Objects entering deadline admission over the run.
  int service_arrived_objects{0};
  /// Objects granted decode+merge budget over the run.
  int service_admitted_objects{0};
  /// Deferral events (an object parked for a later frame; one object can
  /// defer several times).
  int service_deferred_objects{0};
  /// Objects shed by deadline admission (budget denied, no parking room, or
  /// deferral expired).
  int service_shed_objects{0};
  /// Objects still parked when the run ended.
  int service_parked_residual{0};
};

class SystemRunner {
 public:
  explicit SystemRunner(RunnerConfig cfg = {});

  /// Run the scenario to completion and collect metrics. The scenario's
  /// world is advanced in place.
  MethodMetrics run(sim::Scenario& scenario);

 private:
  RunnerConfig cfg_;
};

/// Convenience: build the ClientConfig/EdgeConfig pair implied by a method.
RunnerConfig make_runner_config(Method method,
                                const net::WirelessConfig& wireless = {});

}  // namespace erpd::edge
