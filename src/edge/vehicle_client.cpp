#include "edge/vehicle_client.hpp"

#include <cmath>
#include <limits>

#include "core/check.hpp"
#include "obs/span.hpp"
#include "pointcloud/ground_filter.hpp"

namespace erpd::edge {

VehicleClient::VehicleClient(sim::AgentId vehicle, ClientConfig cfg)
    : vehicle_(vehicle), cfg_(cfg), extractor_(cfg.extractor) {}

void VehicleClient::reset_pipeline() { extractor_.reset(); }

void VehicleClient::require_finite_pose(const geom::Pose& pose) {
  ERPD_REQUIRE(std::isfinite(pose.position.x) &&
                   std::isfinite(pose.position.y) &&
                   std::isfinite(pose.position.z) && std::isfinite(pose.yaw) &&
                   std::isfinite(pose.pitch) && std::isfinite(pose.roll),
               "VehicleClient: non-finite sensor pose at (", pose.position.x,
               ", ", pose.position.y, ", ", pose.position.z, ")");
}

sim::AgentId VehicleClient::match_truth(
    const std::vector<sim::AgentSnapshot>& truth, geom::Vec2 centroid,
    double radius, sim::AgentId self) {
  sim::AgentId best = sim::kInvalidAgent;
  double best_d = radius;
  for (const sim::AgentSnapshot& a : truth) {
    if (a.id == self || a.parked) continue;
    const double d = distance(a.position, centroid);
    if (d < best_d) {
      best_d = d;
      best = a.id;
    }
  }
  return best;
}

net::UploadFrame VehicleClient::make_upload(
    const sim::World& world, const geom::VoronoiPartition* voronoi,
    std::size_t voronoi_cell, ClientFrameStats* stats,
    const std::vector<sim::AgentSnapshot>* truth) {
  net::UploadFrame frame;
  frame.vehicle = vehicle_;
  frame.timestamp = world.time();
  const sim::Vehicle* me = world.find_vehicle(vehicle_);
  if (me == nullptr) return frame;
  frame.pose = me->sensor_pose(world.network(), world.config().sensor_height);
  require_finite_pose(frame.pose);

  // The sensor and the local extraction pipeline are timed separately:
  // stage.sense is the simulated LiDAR alone, stage.extract everything the
  // paper's on-vehicle pipeline does with the scan. sensing_points_per_sec
  // in the bench derives from the former, so extraction cost can never
  // masquerade as sensor cost (or vice versa).
  double sensing_seconds = 0.0;
  obs::StageSpan sense_span(cfg_.metrics, "stage.sense", &sensing_seconds);
  const sim::LidarScan scan = world.scan_from(vehicle_);
  sense_span.stop();

  double processing_seconds = 0.0;
  obs::StageSpan extract_span(cfg_.metrics, "stage.extract",
                              &processing_seconds);

  switch (cfg_.policy) {
    case UploadPolicy::kOursMovingObjects: {
      const pc::ExtractionResult ex =
          extractor_.process(scan.cloud, frame.pose, world.time());
      std::vector<sim::AgentSnapshot> local_truth;
      if (truth == nullptr && !ex.objects.empty()) {
        local_truth = world.snapshot();
        truth = &local_truth;
      }
      for (const pc::ExtractedObject& obj : ex.objects) {
        net::ObjectUpload up;
        up.object_granular = true;
        up.centroid_world = obj.centroid_world;
        up.velocity_world = obj.velocity_world;
        up.point_count = obj.point_count;
        up.bytes = pc::encoded_size_bytes(obj.point_count);
        up.cloud_world = obj.points_world;
        up.truth_id = match_truth(*truth, obj.centroid_world.xy(),
                                  cfg_.truth_match_radius, vehicle_);
        frame.objects.push_back(std::move(up));
      }
      break;
    }
    case UploadPolicy::kEmpVoronoi: {
      // EMP: ground-removed cloud, cropped to this vehicle's Voronoi cell.
      pc::PointCloud no_ground =
          pc::remove_ground(scan.cloud, cfg_.extractor.ground);
      const geom::Mat4 t_lw = geom::Mat4::from_pose(frame.pose);
      pc::PointCloud world_cloud = no_ground.transformed(t_lw);
      pc::PointCloud cell;
      cell.reserve(world_cloud.size());
      for (const geom::Vec3& p : world_cloud.points()) {
        if (voronoi == nullptr || voronoi->in_cell(p.xy(), voronoi_cell)) {
          cell.push_back(p);
        }
      }
      net::ObjectUpload up;
      up.centroid_world = cell.centroid();
      up.point_count = cell.size();
      up.bytes = pc::encoded_size_bytes(cell.size());
      up.cloud_world = std::move(cell);
      frame.objects.push_back(std::move(up));
      break;
    }
    case UploadPolicy::kUnlimitedRaw: {
      const geom::Mat4 t_lw = geom::Mat4::from_pose(frame.pose);
      net::ObjectUpload up;
      up.point_count = scan.cloud.size();
      // Raw sensor format, no quantized encoding.
      up.bytes = scan.cloud.raw_size_bytes();
      up.cloud_world = scan.cloud.transformed(t_lw);
      up.centroid_world = up.cloud_world.centroid();
      frame.objects.push_back(std::move(up));
      break;
    }
  }

  extract_span.stop();
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("client.raw_points").add(scan.cloud.size());
    cfg_.metrics->counter("client.upload_bytes").add(frame.total_bytes());
  }
  if (stats != nullptr) {
    stats->raw_points = scan.cloud.size();
    stats->sensing_seconds = sensing_seconds;
    stats->uploaded_points = 0;
    stats->uploaded_bytes = frame.total_bytes();
    for (const net::ObjectUpload& o : frame.objects) {
      stats->uploaded_points += o.point_count;
    }
    stats->processing_seconds = processing_seconds;
  }
  return frame;
}

}  // namespace erpd::edge
