#include "edge/vehicle_client.hpp"

#include <cmath>
#include <limits>

#include "core/check.hpp"
#include "core/rng.hpp"
#include "obs/span.hpp"
#include "pointcloud/ground_filter.hpp"

namespace erpd::edge {

VehicleClient::VehicleClient(sim::AgentId vehicle, ClientConfig cfg)
    : vehicle_(vehicle), cfg_(cfg), extractor_(cfg.extractor) {
  cfg_.redundancy.validate();
}

void VehicleClient::reset_pipeline() {
  extractor_.reset();
  // The blackout also invalidated our redundancy state: the edge may have
  // pruned our keyframe bases and any cached coverage claim is stale.
  objects_.clear();
  feedback_.reset();
}

void VehicleClient::receive_feedback(const net::CoverageFeedback& fb) {
  if (!cfg_.redundancy.enabled) return;
  feedback_ = fb;
}

VehicleClient::TrackedObject& VehicleClient::match_object(
    const geom::Vec3& centroid, double t) {
  constexpr double kMatchRadius = 3.0;
  TrackedObject* best = nullptr;
  double best_d = kMatchRadius;
  for (TrackedObject& o : objects_) {
    if (o.matched) continue;
    const double d = distance(o.centroid.xy(), centroid.xy());
    if (d < best_d) {
      best_d = d;
      best = &o;
    }
  }
  if (best == nullptr) {
    TrackedObject fresh;
    fresh.object_seq = next_object_seq_++;
    objects_.push_back(fresh);
    best = &objects_.back();
  }
  best->matched = true;
  best->centroid = centroid;
  best->last_seen = t;
  return *best;
}

bool VehicleClient::region_suppressed(geom::Vec2 pos) const {
  if (!feedback_.has_value() || feedback_->regions.empty()) return false;
  // Nearest-site region lookup, first-lowest-index wins ties — the same
  // rule geom::VoronoiPartition uses, so client and edge agree on regions.
  std::size_t owner_idx = 0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < feedback_->regions.size(); ++i) {
    const double d = distance_sq(feedback_->regions[i].site, pos);
    if (d < best) {
      best = d;
      owner_idx = i;
    }
  }
  const net::CoverageRegion& r = feedback_->regions[owner_idx];
  // The designated observer down-samples its own region too: the coverage
  // EMA is self-regulating — once suppressed uploads (plus confirmed-track
  // weight) no longer sustain the confidence, it decays below the threshold
  // and full-rate uploads resume.
  return r.confidence >= cfg_.redundancy.suppress_threshold;
}

pc::PointCloud VehicleClient::suppress_points(const pc::PointCloud& pts,
                                              std::uint64_t frame_tag) const {
  const RedundancyConfig& red = cfg_.redundancy;
  if (pts.size() <= red.min_points) return pts;
  // Per-point Bernoulli keep draw: a pure hash of (suppression seed,
  // vehicle, upload seq, point index) — independent of thread count,
  // evaluation order and the host's hash seed.
  const std::uint64_t stream =
      core::seed_mix(red.seed, static_cast<std::uint64_t>(vehicle_),
                     frame_tag);
  pc::PointCloud kept;
  kept.reserve(static_cast<std::size_t>(
      static_cast<double>(pts.size()) * red.keep_fraction) + red.min_points);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    core::SplitMix64 gen(core::seed_mix(stream, i));
    const double u = std::ldexp(static_cast<double>(gen() >> 11), -53);
    if (u < red.keep_fraction) kept.push_back(pts[i]);
  }
  if (kept.size() >= red.min_points) return kept;
  // Floor: keep the first min_points points by index (deterministic).
  pc::PointCloud floor_kept;
  floor_kept.reserve(red.min_points);
  for (std::size_t i = 0; i < red.min_points; ++i) floor_kept.push_back(pts[i]);
  return floor_kept;
}

void VehicleClient::require_finite_pose(const geom::Pose& pose) {
  ERPD_REQUIRE(std::isfinite(pose.position.x) &&
                   std::isfinite(pose.position.y) &&
                   std::isfinite(pose.position.z) && std::isfinite(pose.yaw) &&
                   std::isfinite(pose.pitch) && std::isfinite(pose.roll),
               "VehicleClient: non-finite sensor pose at (", pose.position.x,
               ", ", pose.position.y, ", ", pose.position.z, ")");
}

sim::AgentId VehicleClient::match_truth(
    const std::vector<sim::AgentSnapshot>& truth, geom::Vec2 centroid,
    double radius, sim::AgentId self) {
  sim::AgentId best = sim::kInvalidAgent;
  double best_d = radius;
  for (const sim::AgentSnapshot& a : truth) {
    if (a.id == self || a.parked) continue;
    const double d = distance(a.position, centroid);
    if (d < best_d) {
      best_d = d;
      best = a.id;
    }
  }
  return best;
}

net::UploadFrame VehicleClient::make_upload(
    const sim::World& world, const geom::VoronoiPartition* voronoi,
    std::size_t voronoi_cell, ClientFrameStats* stats,
    const std::vector<sim::AgentSnapshot>* truth) {
  net::UploadFrame frame;
  frame.vehicle = vehicle_;
  frame.timestamp = world.time();
  const sim::Vehicle* me = world.find_vehicle(vehicle_);
  if (me == nullptr) return frame;
  frame.pose = me->sensor_pose(world.network(), world.config().sensor_height);
  require_finite_pose(frame.pose);

  // The sensor and the local extraction pipeline are timed separately:
  // stage.sense is the simulated LiDAR alone, stage.extract everything the
  // paper's on-vehicle pipeline does with the scan. sensing_points_per_sec
  // in the bench derives from the former, so extraction cost can never
  // masquerade as sensor cost (or vice versa).
  double sensing_seconds = 0.0;
  obs::StageSpan sense_span(cfg_.metrics, "stage.sense", &sensing_seconds);
  const sim::LidarScan scan = world.scan_from(vehicle_);
  sense_span.stop();

  double processing_seconds = 0.0;
  obs::StageSpan extract_span(cfg_.metrics, "stage.extract",
                              &processing_seconds);

  switch (cfg_.policy) {
    case UploadPolicy::kOursMovingObjects: {
      const pc::ExtractionResult ex =
          extractor_.process(scan.cloud, frame.pose, world.time());
      std::vector<sim::AgentSnapshot> local_truth;
      if (truth == nullptr && !ex.objects.empty()) {
        local_truth = world.snapshot();
        truth = &local_truth;
      }
      const RedundancyConfig& red = cfg_.redundancy;
      const bool red_on = red.enabled;
      bool feedback_fresh = false;
      if (red_on) {
        frame.upload_seq = next_upload_seq_++;
        for (TrackedObject& o : objects_) o.matched = false;
        feedback_fresh =
            feedback_.has_value() &&
            world.time() - feedback_->timestamp <= red.max_feedback_age;
      }
      std::size_t suppressed = 0;
      for (const pc::ExtractedObject& obj : ex.objects) {
        net::ObjectUpload up;
        up.object_granular = true;
        up.centroid_world = obj.centroid_world;
        up.velocity_world = obj.velocity_world;
        up.truth_id = match_truth(*truth, obj.centroid_world.xy(),
                                  cfg_.truth_match_radius, vehicle_);
        if (!red_on) {
          up.point_count = obj.point_count;
          up.bytes = pc::encoded_size_bytes(obj.point_count);
          up.cloud_world = obj.points_world;
          frame.objects.push_back(std::move(up));
          continue;
        }
        // --- Redundancy-aware path (DESIGN.md §16) ---
        const std::size_t full_bytes = pc::encoded_size_bytes(obj.point_count);
        pc::PointCloud pts = obj.points_world;
        if (feedback_fresh && region_suppressed(obj.centroid_world.xy())) {
          pts = suppress_points(pts, frame.upload_seq);
        }
        if (!red.delta_enabled) {
          up.point_count = pts.size();
          up.bytes = pc::encoded_size_bytes(pts.size());
          up.cloud_world = std::move(pts);
          suppressed += full_bytes - up.bytes;
          frame.objects.push_back(std::move(up));
          continue;
        }
        TrackedObject& st = match_object(obj.centroid_world, world.time());
        up.object_seq = st.object_seq;
        // The ack tells us whether our current keyframe was admitted by the
        // edge. Only feedback issued *after* the keyframe was sent can
        // legitimately not ack it (otherwise the 1-frame ack lag would force
        // a spurious re-keyframe every frame).
        const bool base_missing =
            feedback_fresh && feedback_->has_ack &&
            feedback_->timestamp >= st.keyframe_time &&
            feedback_->last_admitted_upload_seq < st.keyframe_upload_seq;
        bool sent_delta = false;
        if (st.keyframe_upload_seq != 0 &&
            st.uploads_since_keyframe < red.keyframe_interval &&
            !base_missing) {
          const std::optional<pc::EncodedCloud> d =
              pc::encode_delta(pts, st.keyframe, cfg_.encoding);
          if (d.has_value()) {
            // The edge reconstructs from the quantized base; feed our own
            // reconstruction into cloud_world so both sides see the same
            // points (and the ingest guard's re-decode is a no-op change).
            pc::DecodeResult r = pc::try_decode_delta(*d, &st.keyframe);
            ERPD_ENSURE(r.status == pc::DecodeStatus::kOk,
                       "encode_delta produced an undecodable chunk: ",
                       pc::to_string(r.status));
            up.point_count = r.cloud.size();
            up.bytes = d->size_bytes();
            up.cloud_world = std::move(r.cloud);
            up.wire = *d;
            up.wire_present = true;
            up.is_delta = true;
            ++st.uploads_since_keyframe;
            sent_delta = true;
          }
        }
        if (!sent_delta) {
          pc::EncodedCloud kf = pc::encode(pts, cfg_.encoding);
          up.point_count = pts.size();
          up.bytes = kf.size_bytes();
          up.cloud_world = std::move(pts);
          up.wire = kf;
          up.wire_present = true;
          up.is_delta = false;
          st.keyframe = std::move(kf);
          st.keyframe_upload_seq = frame.upload_seq;
          st.keyframe_time = world.time();
          st.uploads_since_keyframe = 0;
        }
        suppressed += full_bytes > up.bytes ? full_bytes - up.bytes : 0;
        frame.objects.push_back(std::move(up));
      }
      if (red_on) {
        // Forget objects not re-extracted for a second: their keyframes are
        // useless as delta bases by then, and the edge prunes too.
        std::erase_if(objects_, [&](const TrackedObject& o) {
          return world.time() - o.last_seen > 1.0;
        });
        if (stats != nullptr) stats->suppressed_bytes = suppressed;
      }
      break;
    }
    case UploadPolicy::kEmpVoronoi: {
      // EMP: ground-removed cloud, cropped to this vehicle's Voronoi cell.
      pc::PointCloud no_ground =
          pc::remove_ground(scan.cloud, cfg_.extractor.ground);
      const geom::Mat4 t_lw = geom::Mat4::from_pose(frame.pose);
      pc::PointCloud world_cloud = no_ground.transformed(t_lw);
      pc::PointCloud cell;
      cell.reserve(world_cloud.size());
      for (const geom::Vec3& p : world_cloud.points()) {
        if (voronoi == nullptr || voronoi->in_cell(p.xy(), voronoi_cell)) {
          cell.push_back(p);
        }
      }
      net::ObjectUpload up;
      up.centroid_world = cell.centroid();
      up.point_count = cell.size();
      up.bytes = pc::encoded_size_bytes(cell.size());
      up.cloud_world = std::move(cell);
      frame.objects.push_back(std::move(up));
      break;
    }
    case UploadPolicy::kUnlimitedRaw: {
      const geom::Mat4 t_lw = geom::Mat4::from_pose(frame.pose);
      net::ObjectUpload up;
      up.point_count = scan.cloud.size();
      // Raw sensor format, no quantized encoding.
      up.bytes = scan.cloud.raw_size_bytes();
      up.cloud_world = scan.cloud.transformed(t_lw);
      up.centroid_world = up.cloud_world.centroid();
      frame.objects.push_back(std::move(up));
      break;
    }
  }

  extract_span.stop();
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("client.raw_points").add(scan.cloud.size());
    cfg_.metrics->counter("client.upload_bytes").add(frame.total_bytes());
  }
  if (stats != nullptr) {
    stats->raw_points = scan.cloud.size();
    stats->sensing_seconds = sensing_seconds;
    stats->uploaded_points = 0;
    stats->uploaded_bytes = frame.total_bytes();
    for (const net::ObjectUpload& o : frame.objects) {
      stats->uploaded_points += o.point_count;
    }
    stats->processing_seconds = processing_seconds;
  }
  return frame;
}

}  // namespace erpd::edge
