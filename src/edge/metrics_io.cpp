#include "edge/metrics_io.hpp"

#include "core/thread_pool.hpp"

namespace erpd::edge {

void append_method_metrics(obs::JsonWriter& w, const MethodMetrics& m) {
#define X(field) w.kv(#field, m.field);
  ERPD_METHOD_METRICS_FIELDS(X)
#undef X
}

void append_frame_trace(obs::JsonWriter& w, const FrameTrace& t) {
#define X(field) w.kv(#field, t.field);
  ERPD_FRAME_TRACE_FIELDS(X)
#undef X
}

std::vector<std::string_view> method_metrics_keys() {
  return {
#define X(field) #field,
      ERPD_METHOD_METRICS_FIELDS(X)
#undef X
  };
}

std::vector<std::string_view> frame_trace_keys() {
  return {
#define X(field) #field,
      ERPD_FRAME_TRACE_FIELDS(X)
#undef X
  };
}

obs::RunManifest make_manifest(const RunnerConfig& cfg,
                               std::string_view scenario,
                               std::uint64_t seed) {
  obs::Fingerprint fp;
  fp.fold(static_cast<int>(cfg.method));
  fp.fold(cfg.wireless.uplink_mbps)
      .fold(cfg.wireless.downlink_mbps)
      .fold(cfg.wireless.frame_interval)
      .fold(cfg.wireless.base_latency);
  fp.fold(static_cast<int>(cfg.edge.strategy))
      .fold(cfg.edge.follower_relevance)
      .fold(cfg.edge.min_relevance)
      .fold(cfg.edge.staleness_decay)
      .fold(cfg.edge.follower.alpha)
      .fold(static_cast<int>(cfg.edge.follower.criterion))
      .fold(cfg.edge.detect_voxel)
      .fold(cfg.edge.visibility_radius)
      .fold(cfg.edge.self_radius);
  fp.fold(static_cast<int>(cfg.client.policy))
      .fold(cfg.client.truth_match_radius);
  fp.fold(cfg.duration).fold(cfg.frames_per_pipeline);
  fp.fold(cfg.fault.seed)
      .fold(cfg.fault.uplink_loss)
      .fold(cfg.fault.downlink_loss)
      .fold(cfg.fault.jitter_mean)
      .fold(cfg.fault.downlink_deadline)
      .fold(cfg.fault.random_disconnect_rate)
      .fold(cfg.fault.disconnect_epoch);
  for (const net::Outage& o : cfg.fault.outages) {
    fp.fold(o.start).fold(o.duration);
  }
  for (const net::Disconnect& d : cfg.fault.disconnects) {
    fp.fold(static_cast<std::int64_t>(d.vehicle))
        .fold(d.start)
        .fold(d.duration);
  }
  fp.fold(cfg.fault.uplink_corruption).fold(cfg.fault.downlink_corruption);
  for (const net::Byzantine& b : cfg.fault.byzantine) {
    fp.fold(static_cast<std::int64_t>(b.vehicle)).fold(b.start);
  }
  fp.fold(cfg.edge.ingest.enabled ? 1 : 0)
      .fold(cfg.edge.ingest.max_pose_speed)
      .fold(cfg.edge.ingest.max_abs_coord)
      .fold(static_cast<std::int64_t>(cfg.edge.ingest.max_objects_per_frame))
      .fold(static_cast<std::int64_t>(cfg.edge.ingest.max_points_per_frame))
      .fold(cfg.edge.ingest.max_timestamp_ahead)
      .fold(cfg.edge.ingest.strike_threshold)
      .fold(cfg.edge.ingest.strike_decay)
      .fold(cfg.edge.ingest.quarantine_base)
      .fold(cfg.edge.ingest.quarantine_max)
      .fold(static_cast<std::int64_t>(cfg.edge.ingest.point_budget_per_frame));
  fp.fold(cfg.redundancy.enabled ? 1 : 0)
      .fold(cfg.redundancy.coverage_alpha)
      .fold(cfg.redundancy.points_norm)
      .fold(cfg.redundancy.track_weight)
      .fold(cfg.redundancy.suppress_threshold)
      .fold(cfg.redundancy.keep_fraction)
      .fold(static_cast<std::int64_t>(cfg.redundancy.min_points))
      .fold(cfg.redundancy.max_feedback_age)
      .fold(static_cast<std::int64_t>(cfg.redundancy.seed))
      .fold(cfg.redundancy.delta_enabled ? 1 : 0)
      .fold(cfg.redundancy.keyframe_interval);
  fp.fold(cfg.service.enabled ? 1 : 0)
      .fold(static_cast<std::int64_t>(cfg.service.queue_lane_depth))
      .fold(static_cast<std::int64_t>(cfg.service.queue_drain_max))
      .fold(static_cast<std::int64_t>(cfg.service.decode_merge_budget_us))
      .fold(static_cast<std::int64_t>(cfg.service.cost_per_point_ns))
      .fold(static_cast<std::int64_t>(cfg.service.cost_per_object_ns))
      .fold(static_cast<std::int64_t>(cfg.service.defer_capacity))
      .fold(cfg.service.max_defer_frames);

  obs::RunManifest mf;
  mf.scenario = std::string(scenario);
  mf.seed = seed;
  mf.method = to_string(cfg.method);
  mf.config_fingerprint = fp.hex();
  mf.threads = core::thread_count();
  mf.git_sha = std::string(obs::build_git_sha());
  return mf;
}

}  // namespace erpd::edge
