#pragma once
// Redundancy-aware uplink knobs (DESIGN.md §16, ROADMAP item 3).
//
// At city scale overlapping views make most uploaded bytes redundant: the
// edge already tracks what several vehicles keep re-uploading. This config
// gates two mechanisms, both off by default so every golden stays
// byte-identical:
//   1. Coverage-feedback suppression — the edge piggybacks per-region
//      coverage confidence on the downlink; vehicles down-sample extracted
//      points in well-covered foreign regions (deterministic seed-hashed
//      point selection, never a full drop).
//   2. Delta encoding — per-object delta chunks against the last keyframe
//      (pc::encode_delta), keyframing on a fixed cadence and whenever the
//      feedback ack shows the base never arrived.
// One shared struct is embedded in ClientConfig, EdgeConfig and
// RunnerConfig; the runner copies its own into both sides so client and
// edge always agree on thresholds.

#include <cstdint>

#include "core/check.hpp"

namespace erpd::edge {

struct RedundancyConfig {
  /// Master switch. Off = no feedback messages, no suppression, no deltas:
  /// the pipeline is bit-identical to the pre-redundancy system.
  bool enabled{false};

  // --- Coverage feedback (edge side) ---
  /// EMA weight for the per-region coverage confidence update:
  /// conf += alpha * (instant - conf). Higher = faster tracking, noisier.
  double coverage_alpha{0.6};
  /// Uploaded points per frame that saturate a region's instant coverage
  /// score on their own.
  double points_norm{400.0};
  /// Instant-coverage contribution of one fresh confirmed track in the
  /// region (two fresh tracks + some points saturate).
  double track_weight{0.34};

  // --- Suppression (vehicle side) ---
  /// Down-sample extracted objects in regions whose feedback confidence is
  /// at least this — including the vehicle's own region: the coverage EMA is
  /// self-regulating, so once suppressed uploads no longer sustain the
  /// confidence it decays below the threshold and full uploads resume.
  double suppress_threshold{0.5};
  /// Fraction of points kept in a suppressed object (seed-hashed per-point
  /// Bernoulli, deterministic across thread counts and runs).
  double keep_fraction{0.1};
  /// Never down-sample an object below this many points (keeps the edge's
  /// centroid/extent estimates and visibility checks alive).
  std::size_t min_points{6};
  /// Feedback older than this many seconds of simulated time is ignored:
  /// stale coverage claims must decay to "upload everything", not linger.
  double max_feedback_age{1.0};
  /// Hash seed for the per-point suppression draw.
  std::uint64_t seed{0x1ed0};

  // --- Delta encoding (vehicle side) ---
  /// Enable per-object delta chunks (requires `enabled`).
  bool delta_enabled{true};
  /// Send a fresh keyframe at least every this-many uploads of an object,
  /// bounding drift and loss-recovery time.
  int keyframe_interval{10};

  void validate() const {
    ERPD_REQUIRE(coverage_alpha > 0.0 && coverage_alpha <= 1.0,
                 "RedundancyConfig: coverage_alpha must be in (0,1], got ",
                 coverage_alpha);
    ERPD_REQUIRE(points_norm > 0.0,
                 "RedundancyConfig: points_norm must be > 0, got ",
                 points_norm);
    ERPD_REQUIRE(track_weight >= 0.0,
                 "RedundancyConfig: track_weight must be >= 0, got ",
                 track_weight);
    ERPD_REQUIRE(suppress_threshold >= 0.0 && suppress_threshold <= 1.0,
                 "RedundancyConfig: suppress_threshold must be in [0,1], got ",
                 suppress_threshold);
    ERPD_REQUIRE(keep_fraction > 0.0 && keep_fraction <= 1.0,
                 "RedundancyConfig: keep_fraction must be in (0,1], got ",
                 keep_fraction);
    ERPD_REQUIRE(max_feedback_age > 0.0,
                 "RedundancyConfig: max_feedback_age must be > 0, got ",
                 max_feedback_age);
    ERPD_REQUIRE(keyframe_interval >= 1,
                 "RedundancyConfig: keyframe_interval must be >= 1, got ",
                 keyframe_interval);
  }
};

}  // namespace erpd::edge
