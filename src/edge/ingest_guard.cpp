#include "edge/ingest_guard.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "pointcloud/encoding.hpp"

namespace erpd::edge {

namespace {

bool finite_pose(const geom::Pose& pose) {
  return std::isfinite(pose.position.x) && std::isfinite(pose.position.y) &&
         std::isfinite(pose.position.z) && std::isfinite(pose.yaw) &&
         std::isfinite(pose.pitch) && std::isfinite(pose.roll);
}

}  // namespace

void IngestConfig::validate() const {
  ERPD_REQUIRE(max_pose_speed > 0.0,
               "IngestConfig: max_pose_speed must be > 0, got ",
               max_pose_speed);
  ERPD_REQUIRE(max_abs_coord > 0.0,
               "IngestConfig: max_abs_coord must be > 0, got ", max_abs_coord);
  ERPD_REQUIRE(max_timestamp_ahead >= 0.0,
               "IngestConfig: max_timestamp_ahead must be >= 0, got ",
               max_timestamp_ahead);
  ERPD_REQUIRE(strike_threshold >= 1,
               "IngestConfig: strike_threshold must be >= 1, got ",
               strike_threshold);
  ERPD_REQUIRE(strike_decay >= 0.0,
               "IngestConfig: strike_decay must be >= 0, got ", strike_decay);
  ERPD_REQUIRE(quarantine_base > 0.0 && quarantine_max >= quarantine_base,
               "IngestConfig: need 0 < quarantine_base <= quarantine_max");
}

IngestGuard::IngestGuard(IngestConfig cfg) : cfg_(cfg) { cfg_.validate(); }

void IngestGuard::attach_metrics(obs::MetricsRegistry* registry) {
  const bool on = registry != nullptr;
  rejected_crc_ctr_ = on ? &registry->counter("ingest.rejected_crc") : nullptr;
  rejected_semantic_ctr_ =
      on ? &registry->counter("ingest.rejected_semantic") : nullptr;
  quarantined_ctr_ =
      on ? &registry->counter("ingest.quarantined_vehicles") : nullptr;
  shed_ctr_ = on ? &registry->counter("ingest.shed_uploads") : nullptr;
  quarantine_dropped_ctr_ =
      on ? &registry->counter("ingest.quarantine_dropped_frames") : nullptr;
}

bool IngestGuard::should_run(
    const std::vector<net::UploadFrame>& uploads) const {
  if (cfg_.enabled) return true;
  for (const net::UploadFrame& f : uploads) {
    for (const net::ObjectUpload& o : f.objects) {
      if (o.wire_present) return true;
    }
  }
  return false;
}

bool IngestGuard::quarantined(sim::AgentId vehicle, double t) const {
  const auto it = vehicles_.find(vehicle);
  return it != vehicles_.end() && t < it->second.quarantine_until;
}

void IngestGuard::note_offense(VehicleState& vs, double t,
                               IngestStats* stats) {
  vs.strikes += 1.0;
  if (vs.strikes < static_cast<double>(cfg_.strike_threshold)) return;
  vs.strikes = 0.0;
  // Saturating exponential backoff: the window doubles per repeat offense
  // exactly quarantine_base -> quarantine_max and then holds. The exponent
  // stops advancing once the window is clamped, so a vehicle that misbehaves
  // for hours can never overflow exp2 past the max.
  const double backoff =
      std::min(cfg_.quarantine_base * std::exp2(static_cast<double>(
                                          vs.quarantines)),
               cfg_.quarantine_max);
  vs.quarantine_until = t + backoff;
  if (backoff < cfg_.quarantine_max) ++vs.quarantines;
  ++stats->quarantine_events;
  if (quarantined_ctr_ != nullptr) quarantined_ctr_->add();
}

std::vector<net::UploadFrame> IngestGuard::admit(
    const std::vector<net::UploadFrame>& uploads, double t,
    IngestStats* stats) {
  std::vector<net::UploadFrame> admitted;
  admitted.reserve(uploads.size());

  // Vehicles already seen in this batch: a second frame from the same sender
  // within one pipeline frame is a replay/duplication artifact.
  std::vector<sim::AgentId> seen;

  for (const net::UploadFrame& f : uploads) {
    if (cfg_.enabled && quarantined(f.vehicle, t)) {
      ++stats->quarantine_dropped;
      if (quarantine_dropped_ctr_ != nullptr) quarantine_dropped_ctr_->add();
      continue;
    }

    VehicleState& vs = vehicles_[f.vehicle];
    bool reject = false;
    if (cfg_.enabled) {
      std::size_t frame_points = 0;
      for (const net::ObjectUpload& o : f.objects) {
        frame_points += o.point_count;
      }
      const bool duplicate =
          std::find(seen.begin(), seen.end(), f.vehicle) != seen.end();
      seen.push_back(f.vehicle);
      reject =
          duplicate || !finite_pose(f.pose) ||
          std::abs(f.pose.position.x) > cfg_.max_abs_coord ||
          std::abs(f.pose.position.y) > cfg_.max_abs_coord ||
          !std::isfinite(f.timestamp) ||
          f.timestamp > t + cfg_.max_timestamp_ahead ||
          (vs.has_last && f.timestamp <= vs.last_timestamp) ||
          f.objects.size() > cfg_.max_objects_per_frame ||
          frame_points > cfg_.max_points_per_frame;
      if (!reject && vs.has_last) {
        // Pose jump: the implied speed since the last accepted frame must be
        // physically plausible (timestamp monotonicity above guarantees
        // dt > 0).
        const double dt = f.timestamp - vs.last_timestamp;
        const double dist = distance(f.pose.position.xy(), vs.last_position);
        reject = dist > cfg_.max_pose_speed * dt;
      }
    }
    if (reject) {
      ++stats->rejected_semantic;
      if (rejected_semantic_ctr_ != nullptr) rejected_semantic_ctr_->add();
      note_offense(vs, t, stats);
      continue;
    }

    // Per-object validation. Wire payloads (present only when the fault
    // layer mangles buffers) must pass try_decode regardless of `enabled`;
    // semantic bounds checks on object positions need admission control on.
    net::UploadFrame kept;
    kept.vehicle = f.vehicle;
    kept.pose = f.pose;
    kept.timestamp = f.timestamp;
    kept.upload_seq = f.upload_seq;
    kept.objects.reserve(f.objects.size());
    std::size_t dropped_objects = 0;
    for (const net::ObjectUpload& o : f.objects) {
      if (o.wire_present) {
        // Delta chunks decode against the last admitted keyframe for this
        // (vehicle, object). A chunk that *claims* to be a delta (is_delta)
        // or *looks* like one (magic) takes the delta path — either way the
        // strict header checks decide, never the sender's flag alone.
        if (o.is_delta || pc::is_delta(o.wire)) {
          const pc::EncodedCloud* base = nullptr;
          const auto vit = bases_.find(f.vehicle);
          if (vit != bases_.end()) {
            const auto bit = vit->second.find(o.object_seq);
            if (bit != vit->second.end()) base = &bit->second;
          }
          pc::DecodeResult r = pc::try_decode_delta(o.wire, base);
          if (r.status != pc::DecodeStatus::kOk) {
            ++dropped_objects;
            // Transport-shaped damage (truncation, size, CRC) counts as
            // corruption; protocol-shaped damage (wrong magic, missing or
            // mismatched base, bad indices/motion) as a semantic reject.
            const bool transport =
                r.status == pc::DecodeStatus::kTruncatedHeader ||
                r.status == pc::DecodeStatus::kSizeMismatch ||
                r.status == pc::DecodeStatus::kBadChecksum;
            if (transport) {
              ++stats->rejected_crc;
              if (rejected_crc_ctr_ != nullptr) rejected_crc_ctr_->add();
            } else {
              ++stats->rejected_semantic;
              if (rejected_semantic_ctr_ != nullptr) {
                rejected_semantic_ctr_->add();
              }
            }
            continue;
          }
          net::ObjectUpload checked = o;
          checked.cloud_world = std::move(r.cloud);
          checked.wire = pc::EncodedCloud{};
          checked.wire_present = false;
          kept.objects.push_back(std::move(checked));
          continue;
        }
        pc::DecodeResult r = pc::try_decode(o.wire);
        if (!r.ok()) {
          ++dropped_objects;
          ++stats->rejected_crc;
          if (rejected_crc_ctr_ != nullptr) rejected_crc_ctr_->add();
          continue;
        }
        // A validated keyframe with an object identity becomes the delta
        // base for that identity.
        if (o.object_seq != 0) {
          std::map<std::uint64_t, pc::EncodedCloud>& mine = bases_[f.vehicle];
          mine[o.object_seq] = o.wire;
          while (mine.size() > kMaxBasesPerVehicle) mine.erase(mine.begin());
        }
        net::ObjectUpload checked = o;
        // Trust only what validated: the decoded buffer is the payload.
        checked.cloud_world = std::move(r.cloud);
        checked.wire = pc::EncodedCloud{};
        checked.wire_present = false;
        kept.objects.push_back(std::move(checked));
        continue;
      }
      if (cfg_.enabled &&
          (!std::isfinite(o.centroid_world.x) ||
           !std::isfinite(o.centroid_world.y) ||
           std::abs(o.centroid_world.x) > cfg_.max_abs_coord ||
           std::abs(o.centroid_world.y) > cfg_.max_abs_coord)) {
        ++dropped_objects;
        ++stats->rejected_semantic;
        if (rejected_semantic_ctr_ != nullptr) rejected_semantic_ctr_->add();
        continue;
      }
      kept.objects.push_back(o);
    }

    if (cfg_.enabled) {
      if (dropped_objects > 0) {
        note_offense(vs, t, stats);
      } else {
        vs.strikes = std::max(0.0, vs.strikes - cfg_.strike_decay);
        // Clean readmission: a clean frame after the quarantine window has
        // expired resets the backoff ladder, so the vehicle's next
        // quarantine starts at quarantine_base again (the readmission
        // contract documented in ingest_guard.hpp).
        if (vs.quarantines > 0 && t >= vs.quarantine_until) vs.quarantines = 0;
      }
      vs.last_timestamp = f.timestamp;
      vs.last_position = f.pose.position.xy();
      vs.has_last = true;
    }
    // An all-objects-rejected frame still carries a validated pose, which
    // the edge's fleet registry can use.
    admitted.push_back(std::move(kept));
  }

  // ---- Overload shedding ----
  if (cfg_.enabled && cfg_.point_budget_per_frame > 0) {
    struct Slot {
      std::size_t frame;
      std::size_t object;
      std::size_t points;
      sim::AgentId vehicle;
    };
    std::vector<Slot> slots;
    std::size_t total = 0;
    for (std::size_t fi = 0; fi < admitted.size(); ++fi) {
      for (std::size_t oi = 0; oi < admitted[fi].objects.size(); ++oi) {
        const std::size_t pts = admitted[fi].objects[oi].point_count;
        slots.push_back({fi, oi, pts, admitted[fi].vehicle});
        total += pts;
      }
    }
    if (total > cfg_.point_budget_per_frame) {
      // Value order: biggest clouds first (most perception value per
      // header), with a full deterministic tie-break so the shed set is
      // identical across platforms and thread counts.
      std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
        if (a.points != b.points) return a.points > b.points;
        if (a.vehicle != b.vehicle) return a.vehicle < b.vehicle;
        return a.object < b.object;
      });
      std::vector<std::vector<bool>> keep(admitted.size());
      for (std::size_t fi = 0; fi < admitted.size(); ++fi) {
        keep[fi].assign(admitted[fi].objects.size(), false);
      }
      std::size_t used = 0;
      for (const Slot& s : slots) {
        if (used + s.points <= cfg_.point_budget_per_frame) {
          used += s.points;
          keep[s.frame][s.object] = true;
        } else {
          ++stats->shed_uploads;
          if (shed_ctr_ != nullptr) shed_ctr_->add();
        }
      }
      for (std::size_t fi = 0; fi < admitted.size(); ++fi) {
        net::UploadFrame& f = admitted[fi];
        std::vector<net::ObjectUpload> remaining;
        remaining.reserve(f.objects.size());
        for (std::size_t oi = 0; oi < f.objects.size(); ++oi) {
          if (keep[fi][oi]) remaining.push_back(std::move(f.objects[oi]));
        }
        f.objects = std::move(remaining);
      }
    }
  }
  return admitted;
}

}  // namespace erpd::edge
