#pragma once
// JSON serialization of the runner's result structs (DESIGN.md §11).
//
// One X-macro table per struct is the single source of truth for both the
// JSON writer and the exported key list, so the golden-schema test can prove
// the wire format tracks the struct: adding a MethodMetrics field without
// touching the exporter is impossible, and renaming a key silently is caught.

#include <string>
#include <string_view>
#include <vector>

#include "edge/system_runner.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"

// Every exported MethodMetrics field, in struct declaration order.
#define ERPD_METHOD_METRICS_FIELDS(X) \
  X(vehicles_entered)                 \
  X(vehicles_safe)                    \
  X(safe_passage_rate)                \
  X(conflict_safe_rate)               \
  X(ego_safe)                         \
  X(follower_safe)                    \
  X(follower_min_gap)                 \
  X(collisions)                       \
  X(min_key_distance)                 \
  X(uplink_mbps)                      \
  X(downlink_mbps)                    \
  X(uplink_bytes_per_frame)           \
  X(downlink_bytes_per_frame)         \
  X(uplink_offered_bytes_per_frame)   \
  X(uplink_drop_ratio)                \
  X(avg_objects_detected)             \
  X(e2e_latency)                      \
  X(extraction_seconds)               \
  X(upload_seconds)                   \
  X(merge_seconds)                    \
  X(track_predict_seconds)            \
  X(dissemination_decision_seconds)   \
  X(downlink_transfer_seconds)        \
  X(delivered_relevance)              \
  X(disseminations)                   \
  X(uplink_loss_ratio)                \
  X(downlink_deadline_miss_ratio)     \
  X(coasted_track_frames)             \
  X(stale_relevance_frames)           \
  X(ingest_rejected_crc)              \
  X(ingest_rejected_semantic)         \
  X(ingest_quarantined_vehicles)      \
  X(ingest_shed_uploads)              \
  X(uplink_suppressed_bytes_per_frame) \
  X(uplink_capped_bytes_per_frame)    \
  X(uplink_lost_bytes_per_frame)      \
  X(coverage_feedback_msgs)           \
  X(coverage_feedback_lost_msgs)      \
  X(uplink_backpressure_bytes_per_frame) \
  X(service_backpressure_uploads)     \
  X(service_arrived_objects)          \
  X(service_admitted_objects)         \
  X(service_deferred_objects)         \
  X(service_shed_objects)             \
  X(service_parked_residual)

// Every exported FrameTrace field, in struct declaration order.
#define ERPD_FRAME_TRACE_FIELDS(X) \
  X(frame)                         \
  X(vehicles)                      \
  X(raw_points)                    \
  X(offered_bytes)                 \
  X(delivered_bytes)               \
  X(sensing_wall_seconds)          \
  X(extract_max_seconds)           \
  X(merge_seconds)                 \
  X(track_relevance_seconds)       \
  X(dissemination_seconds)

namespace erpd::edge {

/// Write every MethodMetrics field as "name": value pairs. Call with the
/// writer positioned inside an object.
void append_method_metrics(obs::JsonWriter& w, const MethodMetrics& m);

/// Write every FrameTrace field as "name": value pairs. Call with the
/// writer positioned inside an object.
void append_frame_trace(obs::JsonWriter& w, const FrameTrace& t);

/// The JSON key set append_method_metrics emits, in emission order.
std::vector<std::string_view> method_metrics_keys();

/// The JSON key set append_frame_trace emits, in emission order.
std::vector<std::string_view> frame_trace_keys();

/// Build the provenance manifest for a run of `cfg`: fingerprints every
/// configuration value that can change simulated behavior, and stamps the
/// current thread count and configure-time git revision.
obs::RunManifest make_manifest(const RunnerConfig& cfg,
                               std::string_view scenario, std::uint64_t seed);

}  // namespace erpd::edge
