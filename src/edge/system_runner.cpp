#include "edge/system_runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/check.hpp"
#include "core/mpsc_queue.hpp"
#include "core/thread_pool.hpp"
#include "obs/span.hpp"
#include "pointcloud/encoding.hpp"

namespace erpd::edge {

const char* to_string(Method m) {
  switch (m) {
    case Method::kSingle: return "Single";
    case Method::kEmp: return "EMP";
    case Method::kOurs: return "Ours";
    case Method::kUnlimited: return "Unlimited";
  }
  return "?";
}

RunnerConfig make_runner_config(Method method,
                                const net::WirelessConfig& wireless) {
  RunnerConfig rc;
  rc.method = method;
  rc.wireless = wireless;
  rc.edge.wireless = wireless;
  switch (method) {
    case Method::kSingle:
      break;
    case Method::kEmp:
      rc.client.policy = UploadPolicy::kEmpVoronoi;
      rc.edge.strategy = DisseminationStrategy::kRoundRobin;
      break;
    case Method::kOurs:
      rc.client.policy = UploadPolicy::kOursMovingObjects;
      rc.edge.strategy = DisseminationStrategy::kRelevanceGreedy;
      break;
    case Method::kUnlimited:
      rc.client.policy = UploadPolicy::kUnlimitedRaw;
      rc.edge.strategy = DisseminationStrategy::kBroadcast;
      // Effectively uncapped pipes.
      rc.wireless.uplink_mbps = 1e6;
      rc.wireless.downlink_mbps = 1e6;
      rc.edge.wireless = rc.wireless;
      break;
  }
  return rc;
}

namespace {

/// Apply the shared uplink cap to this frame's uploads. Grant order rotates
/// across frames for fairness (EMP's round-robin uploading). Oversized blob
/// uploads are truncated point-wise (angular sectors are lost, as when EMP
/// exceeds its budget); object-granular uploads drop whole objects.
std::vector<net::UploadFrame> apply_uplink_cap(
    std::vector<net::UploadFrame> frames, std::size_t budget_bytes,
    std::size_t rotate, obs::MetricsRegistry* metrics) {
  std::vector<net::UploadFrame> out;
  if (frames.empty()) return out;
  net::FrameBudget budget(budget_bytes);
  if (metrics != nullptr) {
    budget.attach(&metrics->counter("uplink.cap_granted_bytes"),
                  &metrics->counter("uplink.cap_denied_bytes"));
  }
  const std::size_t n = frames.size();
  for (std::size_t k = 0; k < n; ++k) {
    net::UploadFrame& f = frames[(rotate + k) % n];
    if (!budget.try_grant(net::UploadFrame::kFrameOverhead)) break;
    net::UploadFrame kept;
    kept.vehicle = f.vehicle;
    kept.pose = f.pose;
    kept.timestamp = f.timestamp;
    kept.upload_seq = f.upload_seq;
    for (net::ObjectUpload& obj : f.objects) {
      if (budget.try_grant(obj.bytes)) {
        kept.objects.push_back(std::move(obj));
        continue;
      }
      if (!obj.object_granular) {
        // Truncate the blob to whatever still fits.
        const std::size_t avail = budget.remaining();
        const std::size_t header = pc::encoded_size_bytes(0);
        if (avail > header + 64) {
          const std::size_t pts = (avail - header) / pc::kBytesPerPoint;
          net::ObjectUpload part;
          part.object_granular = false;
          std::vector<geom::Vec3> sub(
              obj.cloud_world.points().begin(),
              obj.cloud_world.points().begin() +
                  static_cast<std::ptrdiff_t>(
                      std::min<std::size_t>(pts, obj.cloud_world.size())));
          part.cloud_world = pc::PointCloud{std::move(sub)};
          part.point_count = part.cloud_world.size();
          part.bytes = pc::encoded_size_bytes(part.point_count);
          part.centroid_world = part.cloud_world.centroid();
          budget.grant_partial(part.bytes);
          kept.objects.push_back(std::move(part));
        }
      }
      // Object-granular uploads: this object is simply lost this frame.
    }
    if (!kept.objects.empty()) out.push_back(std::move(kept));
  }
  return out;
}

/// Mangle delivered upload frames per the channel's corruption / Byzantine
/// schedule (DESIGN.md §12). Every decision and every mangle parameter is a
/// pure hash of (seed, vehicle, frame), and the loop runs in delivery order
/// on the caller's thread, so the result is thread-count-independent.
/// `last_clean` caches each vehicle's previous delivered (pre-mangle) frame
/// for stale replay.
void apply_wire_faults(std::vector<net::UploadFrame>& delivered,
                       const net::LossyChannel& channel, int frame, double t,
                       const pc::EncodingConfig& enc_cfg,
                       std::map<sim::AgentId, net::UploadFrame>& last_clean) {
  const auto encode_objects = [&](net::UploadFrame& f) {
    for (net::ObjectUpload& o : f.objects) {
      // Redundancy uploads already carry their real wire bytes (keyframe or
      // delta chunk); mangling must hit those, not a re-encoded keyframe.
      if (o.wire_present) continue;
      o.wire = pc::encode(o.cloud_world, enc_cfg);
      o.wire_present = true;
    }
  };
  const auto truncate_objects = [&](net::UploadFrame& f) {
    encode_objects(f);
    std::uint64_t salt = 0x10;
    for (net::ObjectUpload& o : f.objects) {
      const std::uint64_t w = channel.corruption_word(f.vehicle, frame, salt++);
      o.wire.bytes.resize(w % std::max<std::size_t>(o.wire.bytes.size(), 1));
    }
  };

  std::vector<net::UploadFrame> duplicates;
  for (net::UploadFrame& f : delivered) {
    const bool cache_replay = channel.corruption_active();
    net::UploadFrame clean;
    if (cache_replay) clean = f;

    if (channel.is_byzantine(f.vehicle, t)) {
      // Structurally valid, semantically garbage: teleport the pose and all
      // object positions by a deterministic multi-km offset. Finite values
      // keep the no-guard pipeline running (mis-tracking, not crashing);
      // with admission control on, the out-of-bounds coordinates earn
      // strikes and eventually quarantine.
      const std::uint64_t w = channel.corruption_word(f.vehicle, frame, 1);
      const double dx =
          3000.0 + static_cast<double>(w & 0xffff) / 65535.0 * 3000.0;
      const geom::Vec3 off{dx, ((w >> 16) & 1) != 0 ? dx : -dx, 0.0};
      f.pose.position += off;
      for (net::ObjectUpload& o : f.objects) {
        o.centroid_world += off;
      }
    } else {
      switch (channel.uplink_corruption(f.vehicle, frame)) {
        case net::CorruptionKind::kNone:
          break;
        case net::CorruptionKind::kBitFlip: {
          encode_objects(f);
          for (std::size_t oi = 0; oi < f.objects.size(); ++oi) {
            net::ObjectUpload& o = f.objects[oi];
            if (o.wire.bytes.empty()) continue;
            const std::uint64_t w =
                channel.corruption_word(f.vehicle, frame, 0x20 + oi);
            const int flips = 1 + static_cast<int>(w % 7);
            for (int k = 0; k < flips; ++k) {
              const std::uint64_t bit = channel.corruption_word(
                  f.vehicle, frame,
                  0x10000 + oi * 64 + static_cast<std::uint64_t>(k));
              const std::size_t pos = bit % (o.wire.bytes.size() * 8);
              o.wire.bytes[pos / 8] ^= static_cast<std::uint8_t>(1u << (pos % 8));
            }
          }
          break;
        }
        case net::CorruptionKind::kTruncate:
          truncate_objects(f);
          break;
        case net::CorruptionKind::kDuplicate:
          duplicates.push_back(f);
          break;
        case net::CorruptionKind::kStaleReplay: {
          const auto it = last_clean.find(f.vehicle);
          if (it != last_clean.end()) {
            f = it->second;  // yesterday's news arrives instead
          } else {
            truncate_objects(f);
          }
          break;
        }
      }
    }
    if (cache_replay) last_clean[f.vehicle] = std::move(clean);
  }
  for (net::UploadFrame& d : duplicates) delivered.push_back(std::move(d));
}

}  // namespace

SystemRunner::SystemRunner(RunnerConfig cfg) : cfg_(cfg) {
  cfg_.wireless.validate();
  cfg_.fault.validate();
  cfg_.redundancy.validate();
  cfg_.service.validate();
  // One source of truth: both ends of the link use the runner's knobs.
  cfg_.client.redundancy = cfg_.redundancy;
  cfg_.edge.redundancy = cfg_.redundancy;
  cfg_.edge.service = cfg_.service;
  ERPD_REQUIRE(cfg_.duration > 0.0,
               "SystemRunner: duration must be > 0, got ", cfg_.duration);
  ERPD_REQUIRE(cfg_.frames_per_pipeline >= 1,
               "SystemRunner: frames_per_pipeline must be >= 1, got ",
               cfg_.frames_per_pipeline);
}

MethodMetrics SystemRunner::run(sim::Scenario& sc) {
  sim::World& world = sc.world;
  const sim::RoadNetwork& net = world.network();

  obs::MetricsRegistry* const metrics = cfg_.metrics;
  ClientConfig client_cfg = cfg_.client;
  client_cfg.metrics = metrics;

  std::map<sim::AgentId, VehicleClient> clients;
  if (cfg_.method != Method::kSingle) {
    for (const sim::Vehicle& v : world.vehicles()) {
      if (v.params().connected && !v.params().parked) {
        clients.emplace(v.id(), VehicleClient(v.id(), client_cfg));
      }
    }
  }

  EdgeServer server(net, cfg_.edge);
  server.attach_metrics(metrics);
  // Thread-pool scheduling counters are recorded as a start/end delta so a
  // shared global pool does not leak earlier runs' work into this run.
  const core::PoolStats pool_start = core::global_pool().stats();

  MethodMetrics m;
  net::BandwidthMeter up_meter;
  net::BandwidthMeter down_meter;
  double sum_objects = 0.0;
  double sum_e2e = 0.0;
  double sum_extract = 0.0;
  double sum_upload = 0.0;
  double sum_merge = 0.0;
  double sum_track = 0.0;
  double sum_diss = 0.0;
  double sum_downlink = 0.0;
  double sum_offered = 0.0;
  double sum_lost = 0.0;
  double sum_capped = 0.0;
  double sum_suppressed = 0.0;
  double sum_backpressure = 0.0;
  int pipeline_frames = 0;

  // Fault-injection bookkeeping. With an inactive FaultConfig the channel
  // never drops, jitters or disconnects anything and every counter below
  // stays zero, so the run is bit-identical to the lossless pipeline.
  net::LossyChannel channel(cfg_.fault);
  channel.attach_metrics(metrics);
  const bool faults = channel.active();
  std::size_t upload_frames_offered = 0;
  std::size_t upload_frames_lost = 0;
  std::size_t downlink_selected = 0;
  std::size_t downlink_missed = 0;
  // Tracks which clients were offline last pipeline frame, to reset their
  // local pipeline state on reconnect.
  std::map<sim::AgentId, bool> offline_prev;
  // Per-vehicle cache of the previously delivered (clean) upload frame, fed
  // to stale-replay corruption. Only maintained while corruption is active.
  std::map<sim::AgentId, net::UploadFrame> replay_cache;
  const bool wire_faults =
      faults && (channel.corruption_active() || channel.has_byzantine());

  const int steps =
      static_cast<int>(std::llround(cfg_.duration / world.config().dt));
  const bool capped = cfg_.method == Method::kEmp || cfg_.method == Method::kOurs;
  const bool service_mode = cfg_.service.enabled;

  for (int frame = 0; frame < steps; ++frame) {
    if (cfg_.method != Method::kSingle &&
        frame % cfg_.frames_per_pipeline == 0) {
      // Deferred spawns (World::schedule_vehicle) may have materialized
      // since the last pipeline frame; give each new connected vehicle a
      // client. For scenarios without deferred spawns this inserts nothing,
      // so the pre-existing behavior is unchanged.
      for (const sim::Vehicle& v : world.vehicles()) {
        if (v.params().connected && !v.params().parked &&
            !clients.contains(v.id())) {
          clients.emplace(v.id(), VehicleClient(v.id(), client_cfg));
        }
      }
      // --- Vehicle-side sensing & extraction ---
      std::vector<net::UploadFrame> uploads;
      std::vector<geom::Vec2> sites;
      std::vector<sim::AgentId> site_ids;
      for (auto& [vid, client] : clients) {
        const sim::Vehicle* v = world.find_vehicle(vid);
        if (v == nullptr || v->finished(net) || v->crashed()) continue;
        if (faults) {
          // Disconnected vehicles neither sense-for-upload nor count as
          // Voronoi sites; on reconnect the local pipeline restarts because
          // its frame-differencing baseline is stale.
          const bool off = channel.vehicle_offline(vid, world.time());
          bool& was_off = offline_prev[vid];
          if (was_off && !off) client.reset_pipeline();
          was_off = off;
          if (off) continue;
        }
        sites.push_back(v->position(net));
        site_ids.push_back(vid);
      }
      const geom::VoronoiPartition voronoi(sites);

      // Sensing + extraction fans out across vehicles: each task reads the
      // (const) world and mutates only its own client and its own output
      // slot, so the merge is just reading the slots in site order —
      // identical to the serial loop for any thread count. The snapshot is
      // hoisted out so N clients share one copy (world state does not change
      // within a frame).
      const std::vector<sim::AgentSnapshot> truth = world.snapshot();
      std::vector<ClientFrameStats> stats(site_ids.size());
      // Byte fates resolved during/just after the fan-out. In the classic
      // path only offered/lost are used; service mode adds backpressure.
      std::size_t offered_bytes = 0;
      std::size_t lost_bytes = 0;
      std::size_t backpressure_bytes = 0;
      std::size_t backpressure_uploads = 0;
      if (service_mode) {
        // --- Service-mode ingest queue (DESIGN.md §17) ---
        // The sensing fan-out is the producer side of a bounded MPSC lane
        // queue (lane = fan-out slot, so producers never share a lane).
        // Each worker decides channel loss with the same pure
        // (seed, vehicle, frame) hash the serial path uses and pushes the
        // surviving frame; the consumer drains in lane order under the
        // drain cap after the pool joins. A refused push or drain overflow
        // is the explicit backpressure fate — billed per frame like
        // lost/capped, never silently dropped.
        core::MpscLaneQueue<net::UploadFrame> queue(
            site_ids.size(), cfg_.service.queue_lane_depth);
        std::vector<std::size_t> slot_bytes(site_ids.size(), 0);
        std::vector<std::uint8_t> slot_lost(site_ids.size(), 0);
        std::vector<std::uint8_t> slot_refused(site_ids.size(), 0);
        {
          obs::StageSpan fanout_span(metrics, "stage.fanout");
          core::parallel_for(site_ids.size(), 1, [&](std::size_t i) {
            net::UploadFrame f =
                clients.at(site_ids[i])
                    .make_upload(world, &voronoi, i, &stats[i], &truth);
            slot_bytes[i] = f.total_bytes();
            if (faults && channel.uplink_lost(f.vehicle, frame, world.time())) {
              slot_lost[i] = 1;
              return;
            }
            if (!queue.try_push(i, std::move(f))) slot_refused[i] = 1;
          });
        }
        upload_frames_offered += site_ids.size();
        for (std::size_t i = 0; i < site_ids.size(); ++i) {
          offered_bytes += slot_bytes[i];
          if (slot_lost[i] != 0) {
            ++upload_frames_lost;
            lost_bytes += slot_bytes[i];
          } else if (slot_refused[i] != 0) {
            ++backpressure_uploads;
            backpressure_bytes += slot_bytes[i];
          }
        }
        uploads.reserve(site_ids.size());
        queue.drain(
            cfg_.service.queue_drain_max,
            [&](net::UploadFrame&& f) { uploads.push_back(std::move(f)); },
            [&](net::UploadFrame&& f) {
              ++backpressure_uploads;
              backpressure_bytes += f.total_bytes();
            });
      } else {
        uploads.resize(site_ids.size());
        // stage.fanout: wall time of the whole parallel sensing+extraction
        // region. The per-vehicle scan and extraction costs are recorded
        // inside make_upload (stage.sense / stage.extract).
        obs::StageSpan fanout_span(metrics, "stage.fanout");
        core::parallel_for(site_ids.size(), 1, [&](std::size_t i) {
          uploads[i] = clients.at(site_ids[i])
                           .make_upload(world, &voronoi, i, &stats[i], &truth);
        });
      }
      double max_extract = 0.0;
      double sensing_wall = 0.0;  // summed per-vehicle scan time (CPU cost)
      std::size_t raw_points = 0;
      std::size_t suppressed_bytes = 0;
      for (const ClientFrameStats& s : stats) {
        max_extract = std::max(max_extract, s.processing_seconds);
        sensing_wall += s.sensing_seconds;
        raw_points += s.raw_points;
        suppressed_bytes += s.suppressed_bytes;
      }

      // --- Uplink channel faults ---
      // Byte accounting: every offered byte gets exactly one fate this
      // frame — delivered to the edge, lost to channel faults, dropped by
      // ingest-queue backpressure (service mode only), or shed by the
      // shared cap. (Bytes the redundancy layer avoided sending were never
      // offered; they are tracked separately as suppressed.) Service mode
      // already resolved offered/lost/backpressure inside the fan-out.
      if (!service_mode) {
        for (const net::UploadFrame& f : uploads) {
          offered_bytes += f.total_bytes();
        }
        upload_frames_offered += uploads.size();
        if (faults) {
          // Per-message Bernoulli loss + burst outages: a lost upload frame
          // never reaches the edge (and never consumes cap budget).
          std::vector<net::UploadFrame> kept;
          kept.reserve(uploads.size());
          for (net::UploadFrame& f : uploads) {
            if (channel.uplink_lost(f.vehicle, frame, world.time())) {
              ++upload_frames_lost;
              lost_bytes += f.total_bytes();
            } else {
              kept.push_back(std::move(f));
            }
          }
          uploads = std::move(kept);
        }
      }

      // --- Uplink cap ---
      std::vector<net::UploadFrame> delivered =
          capped ? apply_uplink_cap(std::move(uploads),
                                    cfg_.wireless.uplink_budget_bytes(),
                                    static_cast<std::size_t>(frame), metrics)
                 : std::move(uploads);

      // Cap shedding measured before wire faults: corruption can *add* bytes
      // (duplicated frames), which must never be mistaken for negative
      // shedding. This closes the fate partition exactly.
      std::size_t delivered_pre_faults = 0;
      for (const net::UploadFrame& f : delivered) {
        delivered_pre_faults += f.total_bytes();
      }
      ERPD_ENSURE(
          lost_bytes + backpressure_bytes + delivered_pre_faults <=
              offered_bytes,
          "uplink byte partition: lost ", lost_bytes, " + backpressure ",
          backpressure_bytes, " + delivered ", delivered_pre_faults,
          " exceeds offered ", offered_bytes);
      const std::size_t capped_bytes = offered_bytes - lost_bytes -
                                       backpressure_bytes -
                                       delivered_pre_faults;

      // --- Payload corruption & Byzantine senders ---
      // Applied to what actually crosses the wire (post-cap). Mangled
      // payloads travel as ObjectUpload::wire buffers the edge must validate
      // with pc::try_decode; duplicated/replayed frames consume downstream
      // bytes like any other transmission.
      if (wire_faults) {
        apply_wire_faults(delivered, channel, frame, world.time(),
                          client_cfg.encoding, replay_cache);
      }

      std::size_t delivered_bytes = 0;
      for (const net::UploadFrame& f : delivered) {
        delivered_bytes += f.total_bytes();
      }
      up_meter.add(delivered_bytes);
      sum_offered += static_cast<double>(offered_bytes);
      sum_lost += static_cast<double>(lost_bytes);
      sum_capped += static_cast<double>(capped_bytes);
      sum_suppressed += static_cast<double>(suppressed_bytes);
      sum_backpressure += static_cast<double>(backpressure_bytes);
      m.service_backpressure_uploads += static_cast<int>(backpressure_uploads);
      if (metrics != nullptr) {
        metrics->counter("uplink.offered_bytes").add(offered_bytes);
        metrics->counter("uplink.delivered_bytes").add(delivered_bytes);
        metrics->counter("uplink.lost_bytes").add(lost_bytes);
        metrics->counter("uplink.capped_bytes").add(capped_bytes);
        metrics->counter("uplink.suppressed_bytes").add(suppressed_bytes);
        // Only touched in service mode so a default-config registry dump
        // stays byte-identical to the pre-service pipeline.
        if (service_mode) {
          metrics->counter("uplink.backpressure_bytes").add(backpressure_bytes);
          metrics->counter("service.backpressure_uploads")
              .add(backpressure_uploads);
        }
      }

      // --- Edge server ---
      const FrameOutput fo =
          server.process_frame(delivered, world.time(), &truth);

      if (cfg_.on_decisions) cfg_.on_decisions(frame, fo.selected);

      // --- Deliver disseminations back to drivers ---
      // Each selected message independently survives the lossy downlink and
      // must land within the configured deadline; lost or late messages are
      // never applied to driver knowledge and count as misses.
      downlink_selected += fo.selected.size();
      double max_down_jitter = 0.0;
      for (const net::Dissemination& d : fo.selected) {
        // Exactly one fate per message, billed exactly once: lost (billed
        // net.downlink_lost_msgs inside the channel), else corrupted (billed
        // net.downlink_corrupted_msgs inside the channel), else possibly
        // past deadline (billed net.downlink_deadline_miss here). A lost or
        // corrupted message never also counts as a deadline miss.
        bool miss = false;
        if (faults) {
          if (channel.downlink_lost(d.to, d.track_id, frame, world.time())) {
            miss = true;
          } else if (channel.downlink_corrupted(d.to, d.track_id, frame)) {
            // Fails the receiver's integrity check and is discarded.
            miss = true;
          } else {
            const double jit = channel.downlink_jitter(d.to, d.track_id, frame);
            max_down_jitter = std::max(max_down_jitter, jit);
            if (cfg_.fault.downlink_deadline > 0.0) {
              const double delay =
                  net::transfer_delay(d.bytes, cfg_.wireless.downlink_mbps,
                                      cfg_.wireless.base_latency) +
                  jit;
              if (delay > cfg_.fault.downlink_deadline) {
                miss = true;
                if (metrics != nullptr) {
                  metrics->counter("net.downlink_deadline_miss").add();
                }
              }
            }
          }
        }
        if (miss) {
          ++downlink_missed;
          continue;
        }
        if (d.about != sim::kInvalidAgent) {
          world.notify_vehicle(d.to, d.about);
        }
        m.delivered_relevance += d.relevance;
        if (metrics != nullptr) {
          metrics->counter("diss.delivered_msgs").add();
        }
      }
      m.disseminations += static_cast<int>(fo.selected.size());
      // Coverage feedback rides the same lossy downlink: a dropped message
      // simply leaves the vehicle's last feedback in place until it ages out
      // (max_feedback_age), after which the vehicle uploads everything again.
      for (const net::CoverageFeedback& fb : fo.feedback) {
        ++m.coverage_feedback_msgs;
        if (faults && channel.feedback_lost(fb.to, frame, world.time())) {
          ++m.coverage_feedback_lost_msgs;
          if (metrics != nullptr) {
            metrics->counter("coverage.feedback_lost_msgs").add();
          }
          continue;
        }
        const auto it = clients.find(fb.to);
        if (it != clients.end()) it->second.receive_feedback(fb);
      }
      down_meter.add(fo.downlink_bytes + fo.feedback_bytes);
      m.coasted_track_frames += static_cast<int>(fo.coasting_tracks);
      m.stale_relevance_frames += static_cast<int>(fo.stale_candidates);
      m.ingest_rejected_crc += static_cast<int>(fo.ingest.rejected_crc);
      m.ingest_rejected_semantic +=
          static_cast<int>(fo.ingest.rejected_semantic);
      m.ingest_quarantined_vehicles +=
          static_cast<int>(fo.ingest.quarantine_events);
      m.ingest_shed_uploads += static_cast<int>(fo.ingest.shed_uploads);
      m.service_arrived_objects += static_cast<int>(fo.service.arrived_objects);
      m.service_admitted_objects +=
          static_cast<int>(fo.service.admitted_objects);
      m.service_deferred_objects +=
          static_cast<int>(fo.service.deferred_objects);
      m.service_shed_objects += static_cast<int>(fo.service.shed_objects);

      // --- Latency accounting ---
      const double t_upload =
          net::transfer_delay(delivered_bytes, cfg_.wireless.uplink_mbps,
                              cfg_.wireless.base_latency) +
          (faults ? channel.uplink_jitter(frame) : 0.0);
      // The frame's dissemination completes when its slowest message lands.
      const double t_down = net::transfer_delay(
          fo.downlink_bytes + fo.feedback_bytes, cfg_.wireless.downlink_mbps,
          cfg_.wireless.base_latency) + max_down_jitter;
      sum_extract += max_extract;
      sum_upload += t_upload;
      sum_merge += fo.timings.merge_seconds;
      sum_track +=
          fo.timings.track_predict_seconds + fo.timings.relevance_seconds;
      sum_diss += fo.timings.dissemination_seconds;
      sum_downlink += t_down;
      const double e2e = max_extract + t_upload + fo.timings.merge_seconds +
                         fo.timings.track_predict_seconds +
                         fo.timings.relevance_seconds +
                         fo.timings.dissemination_seconds + t_down;
      sum_e2e += e2e;
      sum_objects += static_cast<double>(fo.moving_tracks);
      ++pipeline_frames;
      if (metrics != nullptr) {
        // stage.upload / stage.downlink are simulated transfer delays
        // (deterministic for a seed); stage.e2e additionally folds in the
        // host-measured module times, so it varies run to run like any
        // wall-clock span.
        metrics->histogram("stage.upload").record_seconds(t_upload);
        metrics->histogram("stage.downlink").record_seconds(t_down);
        metrics->histogram("stage.e2e").record_seconds(e2e);
        metrics->counter("downlink.bytes").add(fo.downlink_bytes);
        metrics->counter("frames.pipeline").add();
      }

      if (cfg_.on_frame) {
        FrameTrace tr;
        tr.frame = frame;
        tr.vehicles = site_ids.size();
        tr.raw_points = raw_points;
        tr.offered_bytes = offered_bytes;
        tr.delivered_bytes = delivered_bytes;
        tr.sensing_wall_seconds = sensing_wall;
        tr.extract_max_seconds = max_extract;
        tr.merge_seconds = fo.timings.merge_seconds;
        tr.track_relevance_seconds =
            fo.timings.track_predict_seconds + fo.timings.relevance_seconds;
        tr.dissemination_seconds = fo.timings.dissemination_seconds;
        cfg_.on_frame(tr);
      }
    }

    world.step();
  }

  // --- Safety metrics ---
  int entered = 0;
  int safe = 0;
  for (const sim::Vehicle& v : world.vehicles()) {
    if (v.params().parked) continue;
    const sim::Route& route = net.route(v.route_id());
    const bool reached_box = v.s() >= route.box_entry_s;
    const bool crashed = world.agent_crashed(v.id());
    if (reached_box || crashed) {
      ++entered;
      if (!crashed) ++safe;
    }
  }
  m.vehicles_entered = entered;
  m.vehicles_safe = safe;
  m.safe_passage_rate =
      entered > 0 ? static_cast<double>(safe) / entered : 1.0;
  m.ego_safe = !world.agent_crashed(sc.ego);
  m.follower_safe = sc.ego_follower == sim::kInvalidAgent ||
                    !world.agent_crashed(sc.ego_follower);
  m.follower_min_gap =
      sc.ego_follower == sim::kInvalidAgent
          ? std::numeric_limits<double>::infinity()
          : world.min_pair_distance(sc.ego_follower, sc.ego);
  {
    int pair = 0;
    int pair_safe = 0;
    for (sim::AgentId id : {sc.ego, sc.threat}) {
      if (id == sim::kInvalidAgent) continue;
      ++pair;
      if (!world.agent_crashed(id)) ++pair_safe;
    }
    m.conflict_safe_rate = pair > 0 ? static_cast<double>(pair_safe) / pair : 1.0;
  }
  m.collisions = static_cast<int>(world.collisions().size());
  m.min_key_distance = world.min_pair_distance(sc.ego, sc.threat);

  const double elapsed = cfg_.duration;
  m.uplink_mbps = up_meter.mbps(elapsed);
  m.downlink_mbps = down_meter.mbps(elapsed);
  m.uplink_bytes_per_frame = up_meter.bytes_per_frame();
  m.downlink_bytes_per_frame = down_meter.bytes_per_frame();
  if (pipeline_frames > 0) {
    const double n = pipeline_frames;
    m.uplink_offered_bytes_per_frame = sum_offered / n;
    m.uplink_drop_ratio =
        sum_offered > 0.0 ? (sum_lost + sum_capped) / sum_offered : 0.0;
    m.uplink_suppressed_bytes_per_frame = sum_suppressed / n;
    m.uplink_capped_bytes_per_frame = sum_capped / n;
    m.uplink_lost_bytes_per_frame = sum_lost / n;
    m.uplink_backpressure_bytes_per_frame = sum_backpressure / n;
    m.avg_objects_detected = sum_objects / n;
    m.e2e_latency = sum_e2e / n;
    m.extraction_seconds = sum_extract / n;
    m.upload_seconds = sum_upload / n;
    m.merge_seconds = sum_merge / n;
    m.track_predict_seconds = sum_track / n;
    m.dissemination_decision_seconds = sum_diss / n;
    m.downlink_transfer_seconds = sum_downlink / n;
  }
  if (upload_frames_offered > 0) {
    m.uplink_loss_ratio = static_cast<double>(upload_frames_lost) /
                          static_cast<double>(upload_frames_offered);
  }
  if (downlink_selected > 0) {
    m.downlink_deadline_miss_ratio = static_cast<double>(downlink_missed) /
                                     static_cast<double>(downlink_selected);
  }
  if (service_mode) {
    m.service_parked_residual = static_cast<int>(server.service_parked());
    // Run-level object-fate identity: every object that ever entered
    // deadline admission was admitted, shed, or is still parked. (Per-frame
    // the controller already ENSUREs arrived + carried == admitted +
    // deferred + shed; summing and cancelling the carried/deferred ledger
    // leaves this.)
    ERPD_ENSURE(m.service_arrived_objects == m.service_admitted_objects +
                                                 m.service_shed_objects +
                                                 m.service_parked_residual,
                "service object-fate identity leaked: arrived ",
                m.service_arrived_objects, " != admitted ",
                m.service_admitted_objects, " + shed ", m.service_shed_objects,
                " + parked ", m.service_parked_residual);
  }

  if (metrics != nullptr) {
    const core::PoolStats ps = core::global_pool().stats();
    metrics->gauge("pool.workers").set(static_cast<double>(ps.workers));
    metrics->gauge("pool.jobs")
        .set(static_cast<double>(ps.jobs - pool_start.jobs));
    metrics->gauge("pool.serial_jobs")
        .set(static_cast<double>(ps.serial_jobs - pool_start.serial_jobs));
    metrics->gauge("pool.chunks")
        .set(static_cast<double>(ps.chunks - pool_start.chunks));
    metrics->gauge("pool.max_job_chunks")
        .set(static_cast<double>(ps.max_job_chunks));
    // Per-lane executed chunks (lane 0 = the caller). Guard against a pool
    // rebuilt mid-run with a different width.
    for (std::size_t i = 0; i < ps.lane_chunks.size(); ++i) {
      const std::uint64_t before = i < pool_start.lane_chunks.size()
                                       ? pool_start.lane_chunks[i]
                                       : 0;
      char name[40];
      std::snprintf(name, sizeof name, "pool.lane_chunks.%02zu", i);
      metrics->gauge(name).set(
          static_cast<double>(ps.lane_chunks[i] - before));
    }
  }
  return m;
}

}  // namespace erpd::edge
