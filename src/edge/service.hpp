#pragma once
// Service-mode edge pipeline: SLO-aware admission control (DESIGN.md §17).
//
// The paper's edge is an always-on service, not a lockstep callee: uploads
// arrive through bounded ingest queues and the decode+merge stage runs under
// a per-frame deadline budget. This header holds the knobs (ServiceConfig,
// default-off so the classic pipeline stays bit-identical) and the admission
// controller that generalizes the ingest guard's point-budget shedding into
// LATENCY-aware shedding: each upload's decode+merge cost is estimated from
// its point/object counts, charged against a net::LatencyBudget, and work
// that does not fit is deferred to the next frame (bounded parking lot) or
// shed — lowest perception value first.
//
// Determinism: the controller runs single-threaded in upload order after the
// ingest guard; every decision is a pure function of the admitted upload
// sequence and the config, so results are bit-identical across worker counts
// and hash seeds. Every object entering admission lands in exactly one fate
// per frame — admitted, deferred, or shed — and a ContractViolation fires if
// the partition ever leaks (ServiceStats identity, checked per frame).

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "obs/metrics.hpp"
#include "sim/types.hpp"

namespace erpd::edge {

struct ServiceConfig {
  /// Master switch for service mode (ingest queues in the runner + deadline
  /// admission at the edge). Off by default: the lockstep pipeline is
  /// untouched and every committed fingerprint stays byte-identical.
  bool enabled{false};
  /// Upload frames one ingest-queue lane buffers before refusing pushes
  /// (per-producer bound; a refused frame is billed as backpressure).
  std::size_t queue_lane_depth{4};
  /// Upload frames drained from the ingest queue per pipeline frame across
  /// all lanes; the overflow is dropped as backpressure. 0 = unbounded.
  std::size_t queue_drain_max{0};
  /// Per-frame decode+merge deadline budget in microseconds of estimated
  /// cost. 0 disables latency shedding (admission passes everything).
  std::uint64_t decode_merge_budget_us{0};
  /// Cost model: estimated decode+merge nanoseconds per uploaded point and
  /// fixed overhead per object (detection, association, bookkeeping).
  std::uint64_t cost_per_point_ns{90};
  std::uint64_t cost_per_object_ns{4000};
  /// Objects the deferral parking lot holds across frames; beyond it a
  /// denied object is shed instead of deferred.
  std::size_t defer_capacity{16};
  /// Frames an object may be deferred before it is shed as expired (its
  /// payload is stale by then; coasting tracks cover the gap).
  int max_defer_frames{3};

  void validate() const;
};

/// Per-process_frame admission outcome, for FrameOutput/MethodMetrics.
/// Event-count identity, checked per frame:
///   arrived + carried == admitted + deferred + shed.
/// Summed over a run this collapses to the fresh-object fate partition
///   Σarrived == Σadmitted + Σshed + parked_residual
/// because every deferral is carried into a later frame unless it is still
/// parked when the run ends.
struct ServiceStats {
  /// Fresh objects entering admission this frame (post ingest guard).
  std::size_t arrived_objects{0};
  /// Parked objects re-considered this frame.
  std::size_t carried_objects{0};
  /// Objects granted decode+merge budget this frame (fresh or carried).
  std::size_t admitted_objects{0};
  /// Objects (newly) parked for a later frame.
  std::size_t deferred_objects{0};
  /// Objects dropped: budget denied with no parking room, or expired.
  std::size_t shed_objects{0};
  /// Estimated decode+merge cost admitted this frame (ns).
  std::uint64_t admitted_cost_ns{0};
};

/// SLO-aware admission controller. Owned by EdgeServer; runs between the
/// ingest guard and the merge stage when ServiceConfig::enabled.
class AdmissionController {
 public:
  explicit AdmissionController(ServiceConfig cfg = {});

  const ServiceConfig& config() const { return cfg_; }

  /// Attach an observability registry (not owned; null detaches). Admission
  /// decisions then bump service.* counters. Write-only, as everywhere.
  void attach_metrics(obs::MetricsRegistry* registry);

  /// Estimated decode+merge cost of one upload object under the config's
  /// cost model.
  std::uint64_t cost_ns(const net::ObjectUpload& o) const {
    return cfg_.cost_per_object_ns + cfg_.cost_per_point_ns * o.point_count;
  }

  /// Run deadline admission over one frame's (guard-admitted) uploads plus
  /// the parking lot. Returns the admitted frames: re-admitted deferred
  /// objects first (grouped by their source frame), then the fresh frames —
  /// so fresh poses overwrite parked ones in the edge's fleet registry.
  /// Fresh frame skeletons (validated pose, no surviving objects) are kept,
  /// mirroring the ingest guard.
  std::vector<net::UploadFrame> run(std::vector<net::UploadFrame> uploads,
                                    double t, ServiceStats* stats);

  /// Objects currently parked for a later frame.
  std::size_t parked_count() const { return parked_.size(); }

 private:
  /// One deferred object, carrying enough of its source frame to be
  /// re-emitted as an UploadFrame later.
  struct Parked {
    net::ObjectUpload obj;
    sim::AgentId vehicle{sim::kInvalidAgent};
    geom::Pose pose{};
    double timestamp{0.0};
    std::uint64_t upload_seq{0};
    /// Completed deferrals when parked (0 on first park); the object ages by
    /// one each frame it is carried, and is shed at max_defer_frames.
    int age{0};
    /// Monotone arrival tick, the final deterministic tie-break.
    std::uint64_t order{0};
  };

  ServiceConfig cfg_;
  std::vector<Parked> parked_;
  std::uint64_t next_order_{0};
  obs::Counter* arrived_ctr_{nullptr};
  obs::Counter* admitted_ctr_{nullptr};
  obs::Counter* deferred_ctr_{nullptr};
  obs::Counter* shed_ctr_{nullptr};
  obs::Counter* granted_ns_ctr_{nullptr};
  obs::Counter* denied_ns_ctr_{nullptr};
};

}  // namespace erpd::edge
