#include "edge/service.hpp"

#include <algorithm>

#include "core/check.hpp"
#include "net/channel.hpp"

namespace erpd::edge {

void ServiceConfig::validate() const {
  ERPD_REQUIRE(queue_lane_depth > 0,
               "ServiceConfig: queue_lane_depth must be > 0, got ",
               queue_lane_depth);
  ERPD_REQUIRE(max_defer_frames >= 0,
               "ServiceConfig: max_defer_frames must be >= 0, got ",
               max_defer_frames);
  ERPD_REQUIRE(cost_per_object_ns > 0 || cost_per_point_ns > 0,
               "ServiceConfig: cost model is all-zero; every upload would be "
               "free and the deadline budget could never shed");
}

AdmissionController::AdmissionController(ServiceConfig cfg)
    : cfg_(cfg) {
  cfg_.validate();
}

void AdmissionController::attach_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    arrived_ctr_ = nullptr;
    admitted_ctr_ = nullptr;
    deferred_ctr_ = nullptr;
    shed_ctr_ = nullptr;
    granted_ns_ctr_ = nullptr;
    denied_ns_ctr_ = nullptr;
    return;
  }
  arrived_ctr_ = &registry->counter("service.arrived_objects");
  admitted_ctr_ = &registry->counter("service.admitted_objects");
  deferred_ctr_ = &registry->counter("service.deferred_objects");
  shed_ctr_ = &registry->counter("service.shed_objects");
  granted_ns_ctr_ = &registry->counter("service.budget_granted_ns");
  denied_ns_ctr_ = &registry->counter("service.budget_denied_ns");
}

namespace {

/// One admission candidate: either a fresh object (age 0, pointing into the
/// incoming frames) or a carried one from the parking lot.
struct Candidate {
  net::ObjectUpload obj;
  sim::AgentId vehicle{sim::kInvalidAgent};
  geom::Pose pose{};
  double timestamp{0.0};
  std::uint64_t upload_seq{0};
  int age{0};
  std::uint64_t order{0};
};

}  // namespace

std::vector<net::UploadFrame> AdmissionController::run(
    std::vector<net::UploadFrame> uploads, double t, ServiceStats* stats) {
  (void)t;
  ERPD_REQUIRE(stats != nullptr, "AdmissionController::run: stats is null");
  *stats = ServiceStats{};

  // Budget 0 = latency shedding off: pass everything through, but still
  // account arrivals so the fate identity holds trivially.
  if (cfg_.decode_merge_budget_us == 0) {
    for (const net::UploadFrame& f : uploads) {
      stats->arrived_objects += f.objects.size();
      stats->admitted_objects += f.objects.size();
      for (const net::ObjectUpload& o : f.objects) {
        stats->admitted_cost_ns += cost_ns(o);
      }
    }
    ERPD_ENSURE(parked_.empty(),
                "AdmissionController: parked objects with a zero budget; the "
                "budget knob must not change mid-run");
    if (arrived_ctr_ != nullptr) arrived_ctr_->add(stats->arrived_objects);
    if (admitted_ctr_ != nullptr) admitted_ctr_->add(stats->admitted_objects);
    stats->carried_objects = 0;
    return uploads;
  }

  // Gather candidates: the parking lot first (ages by one frame), then every
  // fresh object. Order counters are assigned in input order, which is
  // deterministic because the guard/runner already emit uploads in a fixed
  // order.
  std::vector<Candidate> candidates;
  candidates.reserve(parked_.size() + 16);
  for (Parked& p : parked_) {
    candidates.push_back(Candidate{std::move(p.obj), p.vehicle, p.pose,
                                   p.timestamp, p.upload_seq, p.age + 1,
                                   p.order});
  }
  stats->carried_objects = parked_.size();
  parked_.clear();

  // Fresh frames keep their skeletons (pose sync for the fleet registry)
  // even when every object is deferred or shed, mirroring the ingest guard.
  std::vector<net::UploadFrame> fresh = std::move(uploads);
  for (net::UploadFrame& f : fresh) {
    for (net::ObjectUpload& o : f.objects) {
      candidates.push_back(Candidate{std::move(o), f.vehicle, f.pose,
                                     f.timestamp, f.upload_seq, 0,
                                     next_order_++});
      ++stats->arrived_objects;
    }
    f.objects.clear();
  }

  // Admission order: oldest deferrals first (they expire soonest and their
  // payload is already stale), then biggest clouds first — the same
  // keep-the-most-perception-value rule as the guard's point-budget shed —
  // with (vehicle, order) as the deterministic tie-break.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.age != b.age) return a.age > b.age;
              if (a.obj.point_count != b.obj.point_count) {
                return a.obj.point_count > b.obj.point_count;
              }
              if (a.vehicle != b.vehicle) return a.vehicle < b.vehicle;
              return a.order < b.order;
            });

  net::LatencyBudget budget(cfg_.decode_merge_budget_us * 1000ull);
  budget.attach(granted_ns_ctr_, denied_ns_ctr_);

  std::vector<Candidate> admitted;
  admitted.reserve(candidates.size());
  for (Candidate& c : candidates) {
    const std::uint64_t cost = cost_ns(c.obj);
    if (budget.try_grant(cost)) {
      stats->admitted_cost_ns += cost;
      ++stats->admitted_objects;
      admitted.push_back(std::move(c));
      continue;
    }
    // Denied: defer if the object is still fresh enough and the parking lot
    // has room, otherwise shed. Both are final fates for this frame.
    if (c.age < cfg_.max_defer_frames && parked_.size() < cfg_.defer_capacity) {
      ++stats->deferred_objects;
      parked_.push_back(Parked{std::move(c.obj), c.vehicle, c.pose,
                               c.timestamp, c.upload_seq, c.age, c.order});
    } else {
      ++stats->shed_objects;
    }
  }

  // Exactly-once fate partition, checked every frame.
  ERPD_ENSURE(stats->arrived_objects + stats->carried_objects ==
                  stats->admitted_objects + stats->deferred_objects +
                      stats->shed_objects,
              "AdmissionController: fate partition leaked: arrived ",
              stats->arrived_objects, " + carried ", stats->carried_objects,
              " != admitted ", stats->admitted_objects, " + deferred ",
              stats->deferred_objects, " + shed ", stats->shed_objects);

  // Re-emit: carried objects grouped by their source frame first (in parked
  // order), then the fresh skeletons with their admitted objects restored in
  // arrival order. Fresh frames come last so their poses overwrite any
  // stale parked pose in the edge's fleet registry.
  std::sort(admitted.begin(), admitted.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.order < b.order;
            });

  std::vector<net::UploadFrame> out;
  out.reserve(fresh.size() + admitted.size());
  for (Candidate& c : admitted) {
    if (c.age == 0) continue;  // fresh objects rejoin their skeleton below
    if (out.empty() || out.back().vehicle != c.vehicle ||
        out.back().upload_seq != c.upload_seq) {
      net::UploadFrame f;
      f.vehicle = c.vehicle;
      f.pose = c.pose;
      f.timestamp = c.timestamp;
      f.upload_seq = c.upload_seq;
      out.push_back(std::move(f));
    }
    out.back().objects.push_back(std::move(c.obj));
  }
  for (net::UploadFrame& f : fresh) {
    for (Candidate& c : admitted) {
      if (c.age == 0 && c.vehicle == f.vehicle &&
          c.upload_seq == f.upload_seq) {
        f.objects.push_back(std::move(c.obj));
      }
    }
    out.push_back(std::move(f));
  }

  if (arrived_ctr_ != nullptr) arrived_ctr_->add(stats->arrived_objects);
  if (admitted_ctr_ != nullptr) admitted_ctr_->add(stats->admitted_objects);
  if (deferred_ctr_ != nullptr) deferred_ctr_->add(stats->deferred_objects);
  if (shed_ctr_ != nullptr) shed_ctr_->add(stats->shed_objects);
  return out;
}

}  // namespace erpd::edge
