#pragma once
// Edge ingest admission control (DESIGN.md §12).
//
// Everything reaching EdgeServer::process_frame crossed a radio link from a
// vehicle the edge does not control, so the edge treats it as untrusted
// input: wire payloads must validate (pc::try_decode — CRC32 + header
// sanity), and frames must pass per-vehicle semantic checks (finite pose,
// bounded pose jump, objects inside map bounds, per-frame object/point
// caps). Offending vehicles accumulate strikes into a quarantine with
// exponential-backoff readmission, and an optional per-frame point budget
// deterministically sheds the lowest-value uploads under overload instead
// of blowing the frame deadline.
//
// Determinism: the guard runs single-threaded in upload order and all state
// transitions are pure functions of the admitted sequence and simulated
// time, so results are bit-identical across thread counts. With the guard
// disabled and no wire payloads present it is never invoked at all — the
// lossless pipeline is untouched.

#include <cstdint>
#include <map>
#include <vector>

#include "net/message.hpp"
#include "obs/metrics.hpp"
#include "pointcloud/encoding.hpp"
#include "sim/types.hpp"

namespace erpd::edge {

struct IngestConfig {
  /// Master switch for semantic validation + quarantine + shedding. Wire
  /// payload validation (try_decode of ObjectUpload::wire) always runs when
  /// a payload is present, independent of this flag: a corrupted buffer must
  /// never be trusted just because admission control is off.
  bool enabled{false};
  /// Upper bound on plausible vehicle speed implied by the pose displacement
  /// between consecutive accepted frames (m/s). ~250 km/h.
  double max_pose_speed{70.0};
  /// Map bounds: poses and object centroids with |x| or |y| beyond this are
  /// rejected (meters; the intersection scenarios live within a few hundred).
  double max_abs_coord{2000.0};
  /// Per-frame structural caps.
  std::size_t max_objects_per_frame{64};
  std::size_t max_points_per_frame{200000};
  /// Uploads stamped further than this into the future are rejected (s).
  double max_timestamp_ahead{0.25};
  /// Strikes (one per offending frame) that trigger a quarantine.
  int strike_threshold{3};
  /// Strikes forgiven per clean frame (slow decay: a vehicle must behave for
  /// a while to erase a reputation).
  double strike_decay{0.25};
  /// First quarantine lasts quarantine_base seconds; each repeat doubles the
  /// window exactly quarantine_base -> quarantine_max and then saturates (a
  /// perpetual offender sits at quarantine_max, never beyond). A clean frame
  /// admitted after the window expires resets the ladder: the next
  /// quarantine starts at quarantine_base again.
  double quarantine_base{1.0};
  double quarantine_max{16.0};
  /// Total points admitted per frame across the fleet; 0 disables shedding.
  /// Under overload the largest uploads are kept (they carry the most
  /// perception value per header) and the rest shed deterministically.
  std::size_t point_budget_per_frame{0};

  void validate() const;
};

/// Per-process_frame admission outcome, for FrameOutput/MethodMetrics.
struct IngestStats {
  /// Objects whose wire payload failed validation (CRC / header sanity).
  std::size_t rejected_crc{0};
  /// Frames rejected (or objects dropped) by semantic admission checks.
  std::size_t rejected_semantic{0};
  /// Quarantines that started this frame.
  std::size_t quarantine_events{0};
  /// Frames dropped because their sender was quarantined.
  std::size_t quarantine_dropped{0};
  /// Objects shed by the per-frame point budget.
  std::size_t shed_uploads{0};
};

class IngestGuard {
 public:
  explicit IngestGuard(IngestConfig cfg = {});

  const IngestConfig& config() const { return cfg_; }

  /// Attach an observability registry (not owned; null detaches). Admission
  /// decisions then bump the ingest.* counters. Write-only, as everywhere.
  void attach_metrics(obs::MetricsRegistry* registry);

  /// True when admit() could change this batch: admission control is on, or
  /// some upload carries an on-the-wire payload that must be validated.
  bool should_run(const std::vector<net::UploadFrame>& uploads) const;

  /// Run the admission pipeline over one frame's uploads (in order):
  /// quarantine gate -> semantic frame checks -> per-object wire validation
  /// and bounds checks -> reputation update -> overload shedding. Returns
  /// the admitted frames; `t` is the edge's simulated clock.
  std::vector<net::UploadFrame> admit(
      const std::vector<net::UploadFrame>& uploads, double t,
      IngestStats* stats);

  /// True while `vehicle` is serving a quarantine at time `t`.
  bool quarantined(sim::AgentId vehicle, double t) const;

 private:
  struct VehicleState {
    double strikes{0.0};
    int quarantines{0};
    double quarantine_until{-1.0};
    double last_timestamp{0.0};
    geom::Vec2 last_position{};
    bool has_last{false};
  };

  /// One offending frame: bump strikes, maybe start a quarantine.
  void note_offense(VehicleState& vs, double t, IngestStats* stats);

  IngestConfig cfg_;
  /// Ordered by AgentId (detlint D1): today only keyed lookups, but the
  /// multi-edge sharding arc will migrate and enumerate this state, and an
  /// ordered container makes any future iteration deterministic by
  /// construction instead of hash-layout dependent.
  std::map<sim::AgentId, VehicleState> vehicles_;
  /// Delta-decoding bases: the last admitted keyframe wire buffer per
  /// (vehicle, object_seq). Capped per vehicle (lowest seq evicted) so a
  /// misbehaving sender cannot grow edge memory without bound. Ordered maps
  /// for deterministic eviction.
  std::map<sim::AgentId, std::map<std::uint64_t, pc::EncodedCloud>> bases_;
  static constexpr std::size_t kMaxBasesPerVehicle = 64;
  obs::Counter* rejected_crc_ctr_{nullptr};
  obs::Counter* rejected_semantic_ctr_{nullptr};
  obs::Counter* quarantined_ctr_{nullptr};
  obs::Counter* shed_ctr_{nullptr};
  obs::Counter* quarantine_dropped_ctr_{nullptr};
};

}  // namespace erpd::edge
