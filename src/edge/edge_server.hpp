#pragma once
// Edge-server pipeline (paper Fig. 2, right box).
//
// Per frame: merge uploads into the traffic map (Coordinate Transformation +
// Point Cloud Merging), detect/track objects, apply the scalability Rules
// 1-3, predict representative trajectories, estimate relevance, and solve
// the dissemination knapsack under the downlink budget.
//
// The same server runs all evaluated methods by switching the dissemination
// strategy: relevance-greedy (Ours), Round-Robin (EMP) or Broadcast
// (Unlimited).

#include <map>
#include <vector>

#include "core/dissemination.hpp"
#include "core/relevance.hpp"
#include "edge/ingest_guard.hpp"
#include "edge/redundancy.hpp"
#include "edge/service.hpp"
#include "geom/voronoi.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"
#include "obs/metrics.hpp"
#include "pointcloud/dbscan.hpp"
#include "sim/road_network.hpp"
#include "sim/world.hpp"
#include "track/prediction.hpp"
#include "track/rules.hpp"
#include "track/tracker.hpp"

namespace erpd::edge {

enum class DisseminationStrategy : std::uint8_t {
  kRelevanceGreedy,   // Ours (Algorithm 1)
  kRelevanceOptimal,  // exact DP knapsack (ablation)
  kRoundRobin,        // EMP
  kBroadcast,         // Unlimited
};

struct EdgeConfig {
  DisseminationStrategy strategy{DisseminationStrategy::kRelevanceGreedy};
  net::WirelessConfig wireless{};
  track::TrackerConfig tracker{};
  track::RuleConfig rules{};
  track::PredictorConfig predictor{};
  core::FollowerRelevanceConfig follower{};
  /// Toggle §III-A.2 follower relevance (ablation E13).
  bool follower_relevance{true};
  /// Candidates below this relevance are never disseminated.
  double min_relevance{1e-3};
  /// Staleness penalty for relevance computed from coasting tracks: a track
  /// last updated m frames ago scores relevance * (1 - staleness_decay)^m.
  /// Coasted positions drift from the truth, so acting on them as if fresh
  /// would mis-rank the dissemination knapsack under uplink loss. 0 (default)
  /// disables the penalty (exact lossless-pipeline scoring).
  double staleness_decay{0.0};
  /// Server-side object detection for blob uploads (EMP / Unlimited).
  pc::DbscanConfig detect_dbscan{1.2, 4};
  double detect_voxel{0.3};
  /// An object is visible to an uploader if that upload contains >= 3 points
  /// (or an object centroid) within this radius of the track.
  double visibility_radius{2.2};
  /// A track this close to a connected vehicle's reported pose *is* that
  /// vehicle.
  double self_radius{2.5};
  /// Untrusted-ingest admission control (DESIGN.md §12). Disabled by
  /// default; wire-payload validation still runs whenever uploads carry
  /// on-the-wire buffers.
  IngestConfig ingest{};
  /// Redundancy-aware uplink (DESIGN.md §16): when enabled the server
  /// maintains per-vehicle coverage confidence over the fleet's Voronoi
  /// regions and emits one CoverageFeedback per connected vehicle each
  /// frame. Off by default (no feedback, bit-identical frames).
  RedundancyConfig redundancy{};
  /// Service-mode deadline admission (DESIGN.md §17): when enabled the
  /// decode+merge stage runs under a per-frame latency budget and the
  /// SLO-aware admission controller sheds/defers work that would blow it.
  /// Off by default (no admission pass, bit-identical frames).
  ServiceConfig service{};
};

struct ModuleTimings {
  double merge_seconds{0.0};
  double track_predict_seconds{0.0};
  double relevance_seconds{0.0};
  double dissemination_seconds{0.0};
};

struct FrameOutput {
  std::vector<net::Dissemination> selected;
  std::size_t downlink_bytes{0};
  double delivered_relevance{0.0};
  std::size_t detections{0};
  std::size_t confirmed_tracks{0};
  /// Confirmed tracks that are currently moving (> 1 m/s) and fresh —
  /// the paper's Fig. 12(b) "objects detected" counts moving objects.
  std::size_t moving_tracks{0};
  std::size_t predicted_tracks{0};
  std::size_t candidates{0};
  /// Confirmed tracks carried this frame purely on Kalman prediction
  /// (misses > 0) — the coasting path under uplink loss.
  std::size_t coasting_tracks{0};
  /// Accepted relevance candidates whose source track was stale.
  std::size_t stale_candidates{0};
  /// Ingest admission outcome for this frame (all zero when the guard did
  /// not run).
  IngestStats ingest{};
  /// Coverage-feedback messages to piggyback on the downlink, one per
  /// connected vehicle (empty when redundancy is off). The runner routes
  /// them through the LossyChannel like any other downlink message.
  std::vector<net::CoverageFeedback> feedback;
  /// Total modelled wire size of `feedback`.
  std::size_t feedback_bytes{0};
  /// Deadline-admission outcome for this frame (all zero when service mode
  /// is off).
  ServiceStats service{};
  ModuleTimings timings{};
};

class EdgeServer {
 public:
  EdgeServer(const sim::RoadNetwork& net, EdgeConfig cfg = {});

  /// Process one frame of (already bandwidth-capped) uploads.
  /// `truth` is optional harness ground truth used solely to tag detections
  /// with agent ids so the simulator can apply disseminations.
  FrameOutput process_frame(const std::vector<net::UploadFrame>& uploads,
                            double t,
                            const std::vector<sim::AgentSnapshot>* truth);

  const track::MultiObjectTracker& tracker() const { return tracker_; }
  const EdgeConfig& config() const { return cfg_; }

  /// Attach an observability registry (not owned; null detaches). Each
  /// process_frame then times its modules into the stage.merge / stage.track
  /// / stage.relevance / stage.disseminate histograms and accumulates
  /// edge.* / ingest.* counters. Purely write-only: decisions never read
  /// metrics.
  void attach_metrics(obs::MetricsRegistry* registry) {
    metrics_ = registry;
    guard_.attach_metrics(registry);
    admission_.attach_metrics(registry);
  }

  /// Objects still parked in the admission controller's deferral lot (the
  /// run-level fate identity's residual term).
  std::size_t service_parked() const { return admission_.parked_count(); }

 private:
  const sim::RoadNetwork& net_;
  EdgeConfig cfg_;
  obs::MetricsRegistry* metrics_{nullptr};
  IngestGuard guard_;
  AdmissionController admission_;
  track::MultiObjectTracker tracker_;
  track::RuleEngine rules_;
  track::TrajectoryPredictor predictor_;
  std::size_t rr_cursor_{0};

  /// Connected-vehicle registry built from upload poses.
  struct VehicleInfo {
    geom::Vec2 position{};
    geom::Vec2 velocity{};
    double heading{0.0};
    double last_seen{0.0};
    bool has_prev{false};
  };
  /// Ordered by AgentId (detlint D1): process_frame iterates the fleet when
  /// building candidates, so the registry's iteration order feeds straight
  /// into the dissemination decision stream — it must be a pure function of
  /// the key set, never of hash-bucket layout.
  std::map<sim::AgentId, VehicleInfo> fleet_;

  /// EMA coverage confidence per region owner (keyed by owner id, ordered —
  /// feedback emission iterates it). Pruned with fleet_.
  std::map<sim::AgentId, double> coverage_;
  /// Highest admitted upload_seq per vehicle, for the delta-base ack.
  std::map<sim::AgentId, std::uint64_t> acked_seq_;

  std::vector<track::Detection> build_detections(
      const std::vector<net::UploadFrame>& uploads,
      const std::vector<sim::AgentSnapshot>* truth) const;

  static sim::AgentKind classify_extent(const geom::Aabb& box);
  static sim::AgentId match_truth(const std::vector<sim::AgentSnapshot>& truth,
                                  geom::Vec2 pos, double radius);
};

}  // namespace erpd::edge
