#include "track/rules.hpp"

#include <algorithm>

namespace erpd::track {

RuleEngine::RuleEngine(const sim::RoadNetwork& net, RuleConfig cfg)
    : net_(net), cfg_(cfg) {}

RepresentativeSet RuleEngine::select(
    const std::vector<const Track*>& tracks) const {
  RepresentativeSet out;

  // --- Vehicles: lane queues (Rule 1) and boundary vehicles (Rule 2) ------
  const geom::Aabb boundary =
      net_.intersection_box().inflated(cfg_.boundary_margin);

  struct QueueEntry {
    int track_id;
    double s;
  };
  std::map<std::pair<int, int>, std::pair<sim::LaneRef, std::vector<QueueEntry>>>
      queues;  // keyed by (arm, lane)

  std::vector<const Track*> pedestrians;
  for (const Track* tr : tracks) {
    if (tr->kind == sim::AgentKind::kPedestrian) {
      pedestrians.push_back(tr);
      continue;
    }
    const geom::Vec2 pos = tr->position();
    const double speed = tr->velocity().norm();

    // Rule 2: moving vehicles inside the red boundary are always predicted.
    if (boundary.contains(pos)) {
      if (speed >= cfg_.min_moving_speed) {
        out.boundary_vehicles.push_back(tr->id);
        out.predicted_tracks.push_back(tr->id);
      }
      continue;
    }

    // Approach vehicles: snap to a route and join the entry-lane queue if
    // they are still before the stop line (i.e. approaching).
    const auto snap =
        match_route(net_, pos, tr->velocity().heading(), cfg_.matcher);
    if (!snap) continue;
    const sim::Route& route = net_.route(snap->route_id);
    if (snap->s > route.stop_line_s + 1.0) continue;  // already past / exiting
    const sim::LaneRef lane = route.entry_lane_ref();
    auto& q = queues[{static_cast<int>(lane.arm), lane.lane}];
    q.first = lane;
    q.second.push_back({tr->id, snap->s});
  }

  for (auto& [key, lq] : queues) {
    auto& entries = lq.second;
    std::sort(entries.begin(), entries.end(),
              [](const QueueEntry& a, const QueueEntry& b) {
                return a.s > b.s;  // larger arc length = closer to stop line
              });
    LaneQueue queue;
    queue.lane = lq.first;
    // Representative route id of the queue (any route entering this lane).
    const auto rts = net_.routes_from(lq.first);
    queue.route_id = rts.empty() ? -1 : rts.front();
    for (const QueueEntry& e : entries) {
      queue.track_ids.push_back(e.track_id);
      queue.arc_lengths.push_back(e.s);
    }
    // Rule 1: only the lane leader gets a predicted trajectory.
    out.lane_leaders.push_back(queue.track_ids.front());
    out.predicted_tracks.push_back(queue.track_ids.front());
    for (std::size_t i = 1; i < queue.track_ids.size(); ++i) {
      out.follower_of[queue.track_ids[i]] = queue.track_ids[i - 1];
    }
    out.lane_queues.push_back(std::move(queue));
  }

  // --- Pedestrians: crowd clustering (Rule 3) -----------------------------
  if (!pedestrians.empty()) {
    std::vector<CrowdEntity> entities;
    entities.reserve(pedestrians.size());
    for (const Track* tr : pedestrians) {
      CrowdEntity e;
      e.position = tr->position();
      e.heading = tr->velocity().heading();
      e.speed = std::max(tr->velocity().norm(), 0.1);
      entities.push_back(e);
    }
    const CrowdClusterResult cc = cluster_crowd(entities, cfg_.crowd);
    for (const CrowdCluster& cluster : cc.clusters) {
      const int rep_track = pedestrians[cluster.representative]->id;
      out.pedestrian_representatives.push_back(rep_track);
      out.predicted_tracks.push_back(rep_track);
      for (std::size_t m : cluster.members) {
        const int member_track = pedestrians[m]->id;
        if (member_track != rep_track) {
          out.pedestrian_rep_of[member_track] = rep_track;
        }
      }
    }
  }

  return out;
}

}  // namespace erpd::track
