#pragma once
// Trajectory prediction (paper's Trajectory Prediction module).
//
// Tracked objects get a predicted path over horizon T with bivariate-
// Gaussian positional uncertainty that grows along the horizon — the same
// interface deep predictors (refs [24]-[26]) expose, provided here by a
// real-time model: vehicles matched to an HD-map route follow the route
// geometry (capturing turns, the paper's lane-intent idea); everything else
// is constant-velocity.

#include <optional>
#include <vector>

#include "geom/gaussian2d.hpp"
#include "geom/polyline.hpp"
#include "sim/road_network.hpp"
#include "track/tracker.hpp"

namespace erpd::track {

struct PredictedTrajectory {
  /// Path from the object's current position forward.
  geom::Polyline path;
  /// Assumed constant speed along the path (m/s).
  double speed{0.0};
  /// Maximum forecast time T (s).
  double horizon{5.0};
  /// Positional uncertainty: sigma(t) = sigma0 + growth * t.
  double sigma0{0.4};
  double sigma_growth{0.35};

  geom::Vec2 position_at(double t) const {
    return path.point_at(speed * t);
  }
  geom::Gaussian2D uncertainty_at(double t) const {
    const double s = sigma0 + sigma_growth * t;
    return geom::Gaussian2D{position_at(t), s, s, 0.0};
  }
  /// Arc length covered within the horizon.
  double reach() const { return speed * horizon; }
};

/// Result of snapping a tracked vehicle onto an HD-map route.
struct RouteMatch {
  int route_id{-1};
  /// Arc length of the projection on the route path.
  double s{0.0};
  double lateral{0.0};
};

struct PredictorConfig {
  /// Forecast horizon T (the paper's maximum prediction time).
  double horizon{5.0};
  /// Lane-snap gates.
  double max_lateral{1.7};
  double max_heading_diff_deg{40.0};
  /// Uncertainty model.
  double sigma0{0.4};
  double sigma_growth{0.35};
  /// Path sampling step (meters).
  double step{1.0};
};

/// Snap a position/heading to the best-matching route of the network, if any.
std::optional<RouteMatch> match_route(const sim::RoadNetwork& net,
                                      geom::Vec2 position, double heading,
                                      const PredictorConfig& cfg = {});

class TrajectoryPredictor {
 public:
  TrajectoryPredictor(const sim::RoadNetwork& net, PredictorConfig cfg = {});

  const PredictorConfig& config() const { return cfg_; }

  /// Predict from an explicit kinematic state (single best hypothesis).
  /// `yaw_rate` (rad/s) activates a constant-turn-rate (CTRV) arc when the
  /// object matches no map route — e.g. a vehicle swinging through a parking
  /// lot or an unusual mid-intersection maneuver.
  PredictedTrajectory predict(geom::Vec2 position, geom::Vec2 velocity,
                              sim::AgentKind kind, double yaw_rate = 0.0) const;

  /// Predict for a track (uses the track's smoothed yaw-rate estimate).
  PredictedTrajectory predict(const Track& track) const {
    return predict(track.position(), track.velocity(), track.kind,
                   track.yaw_rate);
  }

  /// All plausible trajectory hypotheses. On a shared approach segment the
  /// lane intent (straight vs turn) is unknowable, so one trajectory per
  /// matching maneuver is returned; collision risk should be evaluated as
  /// the maximum over hypotheses (standard practice in probabilistic risk
  /// assessment, refs [32]-[34]). Falls back to the single constant-velocity
  /// prediction when no route matches.
  std::vector<PredictedTrajectory> predict_hypotheses(
      geom::Vec2 position, geom::Vec2 velocity, sim::AgentKind kind) const;

  std::vector<PredictedTrajectory> predict_hypotheses(
      const Track& track) const {
    return predict_hypotheses(track.position(), track.velocity(), track.kind);
  }

 private:
  const sim::RoadNetwork& net_;
  PredictorConfig cfg_;
};

}  // namespace erpd::track
