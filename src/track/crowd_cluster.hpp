#pragma once
// Pedestrian crowd clustering (paper Rule 3 and Fig. 4).
//
// The paper's algorithm: cluster pedestrians by location first, then
// iteratively split any cluster whose location standard deviation exceeds
// beta or whose orientation (walking-direction) deviation exceeds gamma,
// until every cluster satisfies both constraints. Only each cluster's
// representative is tracked/predicted. A plain 2-D DBSCAN serves as the
// baseline the paper compares against (location only, no orientation).

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"

namespace erpd::track {

struct CrowdEntity {
  geom::Vec2 position{};
  /// Walking direction (radians).
  double heading{0.0};
  double speed{1.35};
};

struct CrowdClusterConfig {
  /// Neighborhood radius of the initial location-only clustering (meters).
  double location_eps{2.5};
  /// Location deviation threshold beta (meters). Paper: 2.
  double beta{2.0};
  /// Orientation deviation threshold gamma (degrees). Paper: 5.
  double gamma_deg{5.0};
};

struct CrowdCluster {
  std::vector<std::size_t> members;  // indices into the input
  geom::Vec2 centroid{};
  double mean_heading{0.0};
  /// Member chosen as the representative (closest to centroid).
  std::size_t representative{0};
};

struct CrowdClusterResult {
  std::vector<CrowdCluster> clusters;
  /// Per-entity cluster index.
  std::vector<std::int32_t> labels;
};

/// The paper's location+orientation clusterer.
CrowdClusterResult cluster_crowd(const std::vector<CrowdEntity>& entities,
                                 const CrowdClusterConfig& cfg = {});

/// Baseline: 2-D DBSCAN on locations only (min_pts = 1 so nobody is noise).
CrowdClusterResult cluster_crowd_dbscan(
    const std::vector<CrowdEntity>& entities, double eps = 2.5);

/// Evaluation metric of Fig. 4(c): let every pedestrian walk along its
/// heading for `move_time` seconds, then return the member-weighted mean of
/// the per-cluster standard deviation of final locations.
double final_location_deviation(const std::vector<CrowdEntity>& entities,
                                const CrowdClusterResult& result,
                                double move_time);

}  // namespace erpd::track
