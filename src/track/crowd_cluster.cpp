#include "track/crowd_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "geom/angle.hpp"
#include "geom/stats.hpp"

namespace erpd::track {

using geom::Vec2;

namespace {

/// Location-only density clustering (union of eps-balls), min_pts = 1:
/// every entity ends up in exactly one cluster.
std::vector<std::vector<std::size_t>> location_clusters(
    const std::vector<CrowdEntity>& entities, double eps) {
  const std::size_t n = entities.size();
  std::vector<std::vector<std::size_t>> out;
  std::vector<bool> assigned(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (assigned[i]) continue;
    std::vector<std::size_t> cluster;
    std::deque<std::size_t> frontier{i};
    assigned[i] = true;
    while (!frontier.empty()) {
      const std::size_t j = frontier.front();
      frontier.pop_front();
      cluster.push_back(j);
      for (std::size_t k = 0; k < n; ++k) {
        if (assigned[k]) continue;
        if (distance(entities[j].position, entities[k].position) <= eps) {
          assigned[k] = true;
          frontier.push_back(k);
        }
      }
    }
    out.push_back(std::move(cluster));
  }
  return out;
}

Vec2 members_centroid(const std::vector<CrowdEntity>& entities,
                      const std::vector<std::size_t>& members) {
  Vec2 c{};
  for (std::size_t i : members) c += entities[i].position;
  return c / static_cast<double>(members.size());
}

double members_heading_mean(const std::vector<CrowdEntity>& entities,
                            const std::vector<std::size_t>& members) {
  std::vector<double> hs;
  hs.reserve(members.size());
  for (std::size_t i : members) hs.push_back(entities[i].heading);
  return geom::circular_mean(hs.begin(), hs.end());
}

double members_location_stddev(const std::vector<CrowdEntity>& entities,
                               const std::vector<std::size_t>& members) {
  std::vector<Vec2> pts;
  pts.reserve(members.size());
  for (std::size_t i : members) pts.push_back(entities[i].position);
  return geom::location_stddev(pts);
}

double members_heading_stddev(const std::vector<CrowdEntity>& entities,
                              const std::vector<std::size_t>& members) {
  std::vector<double> hs;
  hs.reserve(members.size());
  for (std::size_t i : members) hs.push_back(entities[i].heading);
  return geom::circular_stddev(hs.begin(), hs.end());
}

CrowdClusterResult finalize(const std::vector<CrowdEntity>& entities,
                            std::vector<std::vector<std::size_t>> groups) {
  CrowdClusterResult res;
  res.labels.assign(entities.size(), -1);
  for (auto& members : groups) {
    if (members.empty()) continue;
    CrowdCluster c;
    c.centroid = members_centroid(entities, members);
    c.mean_heading = members_heading_mean(entities, members);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i : members) {
      const double d = distance(entities[i].position, c.centroid);
      if (d < best) {
        best = d;
        c.representative = i;
      }
    }
    c.members = std::move(members);
    const std::int32_t label = static_cast<std::int32_t>(res.clusters.size());
    for (std::size_t i : c.members) res.labels[i] = label;
    res.clusters.push_back(std::move(c));
  }
  return res;
}

}  // namespace

CrowdClusterResult cluster_crowd(const std::vector<CrowdEntity>& entities,
                                 const CrowdClusterConfig& cfg) {
  const double gamma = geom::deg_to_rad(cfg.gamma_deg);
  std::deque<std::vector<std::size_t>> work;
  for (auto& c : location_clusters(entities, cfg.location_eps)) {
    work.push_back(std::move(c));
  }

  std::vector<std::vector<std::size_t>> accepted;
  while (!work.empty()) {
    std::vector<std::size_t> c = std::move(work.front());
    work.pop_front();
    if (c.size() <= 1) {
      accepted.push_back(std::move(c));
      continue;
    }
    const double loc_dev = members_location_stddev(entities, c);
    const double ori_dev = members_heading_stddev(entities, c);
    if (loc_dev <= cfg.beta && ori_dev <= gamma) {
      accepted.push_back(std::move(c));
      continue;
    }

    // Remove members whose individual deviation from the cluster mean
    // exceeds a threshold; they seed a new cluster (paper's split step).
    const Vec2 centroid = members_centroid(entities, c);
    const double mean_h = members_heading_mean(entities, c);
    std::vector<std::size_t> keep;
    std::vector<std::size_t> moved;
    for (std::size_t i : c) {
      const bool loc_bad = distance(entities[i].position, centroid) > cfg.beta;
      const bool ori_bad =
          geom::angle_dist(entities[i].heading, mean_h) > gamma;
      if (loc_bad || ori_bad) {
        moved.push_back(i);
      } else {
        keep.push_back(i);
      }
    }
    if (keep.empty() || moved.empty()) {
      // Degenerate (every member deviates, or none do yet the aggregate
      // deviation exceeds the threshold): split around the member farthest
      // from the centroid to guarantee progress.
      std::size_t seed = c.front();
      double best = -1.0;
      for (std::size_t i : c) {
        const double d = distance(entities[i].position, centroid);
        // Blend heading disagreement (scaled to meters) into the farthest-
        // member choice so orientation outliers seed the new cluster too.
        const double score =
            d + cfg.beta * geom::angle_dist(entities[i].heading, mean_h) /
                    std::max(gamma, 1e-3);
        if (score > best) {
          best = score;
          seed = i;
        }
      }
      keep.clear();
      moved.clear();
      for (std::size_t i : c) {
        const double to_seed =
            distance(entities[i].position, entities[seed].position) +
            cfg.beta * geom::angle_dist(entities[i].heading,
                                        entities[seed].heading) /
                std::max(gamma, 1e-3);
        const double to_centroid =
            distance(entities[i].position, centroid) +
            cfg.beta * geom::angle_dist(entities[i].heading, mean_h) /
                std::max(gamma, 1e-3);
        if (i == seed || to_seed < to_centroid) {
          moved.push_back(i);
        } else {
          keep.push_back(i);
        }
      }
      if (keep.empty()) {
        // Seed attracted everyone: force the seed alone into a new cluster.
        moved.assign(1, seed);
        keep.clear();
        for (std::size_t i : c) {
          if (i != seed) keep.push_back(i);
        }
      }
    }
    work.push_back(std::move(keep));
    work.push_back(std::move(moved));
  }
  return finalize(entities, std::move(accepted));
}

CrowdClusterResult cluster_crowd_dbscan(
    const std::vector<CrowdEntity>& entities, double eps) {
  return finalize(entities, location_clusters(entities, eps));
}

double final_location_deviation(const std::vector<CrowdEntity>& entities,
                                const CrowdClusterResult& result,
                                double move_time) {
  double weighted = 0.0;
  std::size_t total = 0;
  for (const CrowdCluster& c : result.clusters) {
    std::vector<Vec2> finals;
    finals.reserve(c.members.size());
    for (std::size_t i : c.members) {
      const CrowdEntity& e = entities[i];
      finals.push_back(e.position + Vec2::from_heading(e.heading) *
                                        (e.speed * move_time));
    }
    weighted += geom::location_stddev(finals) *
                static_cast<double>(c.members.size());
    total += c.members.size();
  }
  return total == 0 ? 0.0 : weighted / static_cast<double>(total);
}

}  // namespace erpd::track
