#include "track/prediction.hpp"

#include <cmath>

#include "core/check.hpp"
#include "geom/angle.hpp"

namespace erpd::track {

using geom::Vec2;

std::optional<RouteMatch> match_route(const sim::RoadNetwork& net,
                                      Vec2 position, double heading,
                                      const PredictorConfig& cfg) {
  // On the shared approach segment several routes (straight/left/right from
  // the same lane) project equally well; lane intent is unknowable there, so
  // near-ties resolve toward the straight route (deterministic and the most
  // common maneuver). Once the vehicle is actually turning, the turning
  // route's smaller lateral error wins naturally.
  const auto maneuver_rank = [](sim::Maneuver m) {
    switch (m) {
      case sim::Maneuver::kStraight: return 0;
      case sim::Maneuver::kLeft: return 1;
      case sim::Maneuver::kRight: return 2;
    }
    return 3;
  };
  std::optional<RouteMatch> best;
  int best_rank = 99;
  for (const sim::Route& route : net.routes()) {
    double lateral = 0.0;
    const double s = route.path.project(position, &lateral);
    if (lateral > cfg.max_lateral) continue;
    const double path_heading = route.path.heading_at(s);
    if (geom::angle_dist(path_heading, heading) >
        geom::deg_to_rad(cfg.max_heading_diff_deg)) {
      continue;
    }
    const int rank = maneuver_rank(route.maneuver);
    const bool better =
        !best || lateral < best->lateral - 0.25 ||
        (lateral < best->lateral + 0.25 && rank < best_rank);
    if (better) {
      best = RouteMatch{route.id, s, lateral};
      best_rank = rank;
    }
  }
  return best;
}

TrajectoryPredictor::TrajectoryPredictor(const sim::RoadNetwork& net,
                                         PredictorConfig cfg)
    : net_(net), cfg_(cfg) {}

std::vector<PredictedTrajectory> TrajectoryPredictor::predict_hypotheses(
    Vec2 position, Vec2 velocity, sim::AgentKind kind) const {
  std::vector<PredictedTrajectory> out;
  const double speed = velocity.norm();
  const double heading = velocity.heading();
  const double reach = std::max(speed * cfg_.horizon, 0.5);

  if (kind != sim::AgentKind::kPedestrian && speed > 0.5) {
    // One hypothesis per matching maneuver (best lateral fit each).
    struct Best {
      int route_id{-1};
      double s{0.0};
      double lateral{1e9};
    };
    Best per_maneuver[3];
    for (const sim::Route& route : net_.routes()) {
      double lateral = 0.0;
      const double s = route.path.project(position, &lateral);
      if (lateral > cfg_.max_lateral) continue;
      if (geom::angle_dist(route.path.heading_at(s), heading) >
          geom::deg_to_rad(cfg_.max_heading_diff_deg)) {
        continue;
      }
      const int mi = static_cast<int>(route.maneuver);
      ERPD_DCHECK(mi >= 0 && mi < 3,
                  "prediction: maneuver index ", mi, " out of range for route ",
                  route.id);
      Best& slot = per_maneuver[mi];
      if (lateral < slot.lateral) slot = {route.id, s, lateral};
    }
    for (const Best& b : per_maneuver) {
      if (b.route_id < 0) continue;
      PredictedTrajectory t;
      t.speed = speed;
      t.horizon = cfg_.horizon;
      t.sigma0 = cfg_.sigma0;
      t.sigma_growth = cfg_.sigma_growth;
      geom::Polyline slice =
          net_.route(b.route_id).path.slice(b.s, b.s + reach);
      std::vector<Vec2> pts;
      pts.push_back(position);
      for (const Vec2& p : slice.points()) pts.push_back(p);
      t.path = geom::Polyline{std::move(pts)}.resampled(cfg_.step);
      out.push_back(std::move(t));
    }
  }
  if (out.empty()) {
    out.push_back(predict(position, velocity, kind));
  }
  return out;
}

PredictedTrajectory TrajectoryPredictor::predict(Vec2 position, Vec2 velocity,
                                                 sim::AgentKind kind,
                                                 double yaw_rate) const {
  PredictedTrajectory out;
  out.speed = velocity.norm();
  out.horizon = cfg_.horizon;
  out.sigma0 = cfg_.sigma0;
  out.sigma_growth = cfg_.sigma_growth;

  const double reach = std::max(out.speed * cfg_.horizon, 0.5);
  const double heading = velocity.heading();

  if (kind != sim::AgentKind::kPedestrian && out.speed > 0.5) {
    if (const auto snap = match_route(net_, position, heading, cfg_)) {
      const geom::Polyline& route_path = net_.route(snap->route_id).path;
      geom::Polyline slice = route_path.slice(snap->s, snap->s + reach);
      // Stitch the actual current position to the lane centerline so the
      // trajectory starts where the object really is.
      std::vector<Vec2> pts;
      pts.push_back(position);
      for (const Vec2& p : slice.points()) pts.push_back(p);
      out.path = geom::Polyline{std::move(pts)}.resampled(cfg_.step);
      return out;
    }
    // Off the map and turning: constant turn-rate-and-velocity arc.
    if (std::abs(yaw_rate) > geom::deg_to_rad(4.0)) {
      std::vector<Vec2> pts;
      Vec2 p = position;
      double h = heading;
      const double dt = cfg_.step / std::max(out.speed, 0.5);
      pts.push_back(p);
      for (double s = 0.0; s < reach; s += cfg_.step) {
        h += yaw_rate * dt;
        p += Vec2::from_heading(h) * cfg_.step;
        pts.push_back(p);
      }
      out.path = geom::Polyline{std::move(pts)};
      return out;
    }
  }

  // Constant-velocity fallback (pedestrians, unmatched vehicles).
  const Vec2 dir = out.speed > 1e-3 ? velocity.normalized()
                                    : Vec2::from_heading(heading);
  out.path = geom::Polyline{{position, position + dir * reach}};
  return out;
}

}  // namespace erpd::track
