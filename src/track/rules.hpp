#pragma once
// Scalability rules for selecting which objects to predict (paper §II-D).
//
//   Rule 1 — per approach lane, predict only the *leading* vehicle; the
//            followers behind it are covered by car-following models.
//   Rule 2 — predict every moving vehicle inside the crosswalk (red)
//            boundary around the intersection.
//   Rule 3 — cluster pedestrians into crowds; predict only the cluster
//            representatives.
//
// The output also exposes the follower chains (for the car-following
// relevance of §III-A.2) and the pedestrian member -> representative map.

#include <map>
#include <vector>

#include "sim/road_network.hpp"
#include "track/crowd_cluster.hpp"
#include "track/prediction.hpp"
#include "track/tracker.hpp"

namespace erpd::track {

struct LaneQueue {
  sim::LaneRef lane{};
  int route_id{-1};
  /// Track ids ordered front (closest to the stop line) to back.
  std::vector<int> track_ids;
  /// Arc length of each vehicle along the matched route (same order).
  std::vector<double> arc_lengths;
};

struct RepresentativeSet {
  /// Track ids whose trajectories are predicted (Rules 1+2 vehicles and
  /// Rule 3 pedestrian representatives).
  std::vector<int> predicted_tracks;
  /// Rule-1 leaders only.
  std::vector<int> lane_leaders;
  /// Rule-2 in-boundary vehicles.
  std::vector<int> boundary_vehicles;
  /// Rule-3 pedestrian representatives.
  std::vector<int> pedestrian_representatives;

  /// Follower -> immediate leader (track ids), from the lane queues.
  std::map<int, int> follower_of;
  /// Pedestrian member -> its cluster representative (track ids).
  std::map<int, int> pedestrian_rep_of;

  std::vector<LaneQueue> lane_queues;

  bool is_predicted(int track_id) const {
    for (int id : predicted_tracks) {
      if (id == track_id) return true;
    }
    return false;
  }
};

struct RuleConfig {
  /// Extra margin around the intersection box for the Rule-2 red boundary
  /// (covers the crosswalk strip).
  double boundary_margin{3.0};
  /// Minimum speed for a boundary vehicle to count as moving (m/s).
  double min_moving_speed{0.5};
  CrowdClusterConfig crowd{};
  PredictorConfig matcher{};
};

class RuleEngine {
 public:
  RuleEngine(const sim::RoadNetwork& net, RuleConfig cfg = {});

  RepresentativeSet select(const std::vector<const Track*>& tracks) const;

  const RuleConfig& config() const { return cfg_; }

 private:
  const sim::RoadNetwork& net_;
  RuleConfig cfg_;
};

}  // namespace erpd::track
