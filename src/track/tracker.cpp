#include "track/tracker.hpp"

#include <algorithm>
#include <limits>

#include "core/check.hpp"
#include "geom/angle.hpp"

namespace erpd::track {

MultiObjectTracker::MultiObjectTracker(TrackerConfig cfg) : cfg_(cfg) {}

void MultiObjectTracker::step(const std::vector<Detection>& detections,
                              double t) {
  const double dt = last_t_ ? std::max(t - *last_t_, 1e-6) : 0.0;
  last_t_ = t;
  if (dt > 0.0) {
    for (Track& tr : tracks_) tr.filter.predict(dt);
  }

  // Greedy nearest-neighbour association within the gate: repeatedly match
  // the globally closest (track, detection) pair.
  std::vector<bool> det_used(detections.size(), false);
  std::vector<bool> trk_used(tracks_.size(), false);
  while (true) {
    double best_d = cfg_.gate;
    std::size_t best_tr = tracks_.size();
    std::size_t best_de = detections.size();
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
      if (trk_used[i]) continue;
      for (std::size_t j = 0; j < detections.size(); ++j) {
        if (det_used[j]) continue;
        // Kind is advisory (partial views of vehicles can look small), but a
        // confirmed pedestrian-sized track never merges with a car-sized
        // detection and vice versa when both are unambiguous.
        const bool ped_t = tracks_[i].kind == sim::AgentKind::kPedestrian;
        const bool ped_d = detections[j].kind == sim::AgentKind::kPedestrian;
        if (ped_t != ped_d && tracks_[i].max_extent > 1.6 &&
            detections[j].extent > 0.0) {
          continue;
        }
        const double d =
            distance(tracks_[i].position(), detections[j].position);
        if (d < best_d) {
          best_d = d;
          best_tr = i;
          best_de = j;
        }
      }
    }
    if (best_tr == tracks_.size()) break;
    ERPD_DCHECK(best_de < detections.size(),
                "tracker: association produced detection index ", best_de,
                " out of range ", detections.size());
    trk_used[best_tr] = true;
    det_used[best_de] = true;

    Track& tr = tracks_[best_tr];
    const Detection& de = detections[best_de];
    if (de.velocity) {
      tr.filter.update(de.position, *de.velocity, cfg_.vel_meas_sigma);
    } else {
      tr.filter.update(de.position);
    }
    ++tr.hits;
    tr.misses = 0;
    tr.last_update = t;
    tr.payload_bytes = de.payload_bytes;
    tr.point_count = de.point_count;
    tr.max_extent = std::max(tr.max_extent, de.extent);
    // Yaw-rate estimation from the change of the velocity heading (EWMA).
    if (tr.filter.speed() > 1.0 && dt > 0.0) {
      const double h = tr.filter.velocity().heading();
      if (tr.has_prev_heading) {
        const double rate = geom::angle_diff(h, tr.prev_heading) / dt;
        tr.yaw_rate = 0.7 * tr.yaw_rate + 0.3 * rate;
      }
      tr.prev_heading = h;
      tr.has_prev_heading = true;
    }
    // A pedestrian-sized first view of a car corrects itself once any view
    // shows a car-sized footprint.
    if (tr.max_extent > 1.4) tr.kind = sim::AgentKind::kCar;
    if (de.truth_id != sim::kInvalidAgent) tr.truth_id = de.truth_id;
  }

  // Unmatched tracks age; stale ones die.
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (!trk_used[i]) ++tracks_[i].misses;
  }
  // Confirmed tracks may coast on prediction for max_coast_frames extra
  // frames before aging out (tentative tracks get no such grace).
  std::erase_if(tracks_, [this](const Track& tr) {
    const int limit =
        cfg_.max_misses + (tr.confirmed(cfg_) ? cfg_.max_coast_frames : 0);
    return tr.misses > limit;
  });

  // Unmatched detections start new tracks.
  for (std::size_t j = 0; j < detections.size(); ++j) {
    if (det_used[j]) continue;
    const Detection& de = detections[j];
    Track tr{next_id_++,
             de.kind,
             de.velocity ? KalmanCV(de.position, *de.velocity, cfg_.kalman)
                         : KalmanCV(de.position, cfg_.kalman),
             /*hits=*/1,
             /*misses=*/0,
             /*last_update=*/t,
             /*max_extent=*/de.extent,
             /*yaw_rate=*/0.0,
             /*prev_heading=*/0.0,
             /*has_prev_heading=*/false,
             de.payload_bytes,
             de.point_count,
             de.truth_id};
    tracks_.push_back(std::move(tr));
  }
}

std::vector<const Track*> MultiObjectTracker::confirmed() const {
  std::vector<const Track*> out;
  for (const Track& tr : tracks_) {
    if (tr.confirmed(cfg_)) out.push_back(&tr);
  }
  return out;
}

const Track* MultiObjectTracker::find(int track_id) const {
  for (const Track& tr : tracks_) {
    if (tr.id == track_id) return &tr;
  }
  return nullptr;
}

}  // namespace erpd::track
