#include "track/kalman.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace erpd::track {

KalmanCV::KalmanCV(geom::Vec2 position, Config cfg)
    : KalmanCV(position, geom::Vec2{}, cfg) {
  // Unknown velocity: widen the velocity covariance.
  p_[2][2] = cfg_.init_vel_sigma * cfg_.init_vel_sigma;
  p_[3][3] = cfg_.init_vel_sigma * cfg_.init_vel_sigma;
}

KalmanCV::KalmanCV(geom::Vec2 position, geom::Vec2 velocity, Config cfg)
    : cfg_(cfg) {
  x_ = {position.x, position.y, velocity.x, velocity.y};
  const double pv = cfg_.meas_sigma * cfg_.meas_sigma;
  p_ = {};
  p_[0][0] = pv;
  p_[1][1] = pv;
  p_[2][2] = 1.0;
  p_[3][3] = 1.0;
}

void KalmanCV::predict(double dt) {
  ERPD_REQUIRE(dt >= 0.0, "KalmanCV::predict: dt must be >= 0, got ", dt);
  // x' = F x with F = [[I, dt*I], [0, I]].
  x_[0] += dt * x_[2];
  x_[1] += dt * x_[3];

  // P' = F P F^T + Q (discrete white-noise acceleration model).
  const double q = cfg_.accel_noise;
  const double dt2 = dt * dt;
  const double dt3 = dt2 * dt;

  std::array<std::array<double, 4>, 4> np{};
  // F P:
  std::array<std::array<double, 4>, 4> fp{};
  for (int j = 0; j < 4; ++j) {
    fp[0][j] = p_[0][j] + dt * p_[2][j];
    fp[1][j] = p_[1][j] + dt * p_[3][j];
    fp[2][j] = p_[2][j];
    fp[3][j] = p_[3][j];
  }
  // (F P) F^T:
  for (int i = 0; i < 4; ++i) {
    np[i][0] = fp[i][0] + dt * fp[i][2];
    np[i][1] = fp[i][1] + dt * fp[i][3];
    np[i][2] = fp[i][2];
    np[i][3] = fp[i][3];
  }
  // Q per axis: [[dt^3/3, dt^2/2], [dt^2/2, dt]] * q.
  np[0][0] += q * dt3 / 3.0;
  np[0][2] += q * dt2 / 2.0;
  np[2][0] += q * dt2 / 2.0;
  np[2][2] += q * dt;
  np[1][1] += q * dt3 / 3.0;
  np[1][3] += q * dt2 / 2.0;
  np[3][1] += q * dt2 / 2.0;
  np[3][3] += q * dt;
  p_ = np;
}

void KalmanCV::update(geom::Vec2 z) {
  // H = [I2 0]; R = meas_sigma^2 I2. Sequential scalar updates are exact for
  // diagonal R.
  const double r = cfg_.meas_sigma * cfg_.meas_sigma;
  const double zv[2] = {z.x, z.y};
  for (int m = 0; m < 2; ++m) {
    const double innov = zv[m] - x_[m];
    const double s = p_[m][m] + r;
    std::array<double, 4> k{};
    for (int i = 0; i < 4; ++i) k[i] = p_[i][m] / s;
    for (int i = 0; i < 4; ++i) x_[i] += k[i] * innov;
    std::array<std::array<double, 4>, 4> np = p_;
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) np[i][j] = p_[i][j] - k[i] * p_[m][j];
    }
    p_ = np;
  }
}

void KalmanCV::update(geom::Vec2 z, geom::Vec2 vel, double vel_sigma) {
  ERPD_REQUIRE(vel_sigma > 0.0,
               "KalmanCV::update: vel_sigma must be > 0, got ", vel_sigma);
  update(z);
  const double r = vel_sigma * vel_sigma;
  const double zv[2] = {vel.x, vel.y};
  for (int mi = 0; mi < 2; ++mi) {
    const int m = 2 + mi;  // velocity components of the state
    const double innov = zv[mi] - x_[m];
    const double s = p_[m][m] + r;
    std::array<double, 4> k{};
    for (int i = 0; i < 4; ++i) k[i] = p_[i][m] / s;
    for (int i = 0; i < 4; ++i) x_[i] += k[i] * innov;
    std::array<std::array<double, 4>, 4> np = p_;
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) np[i][j] = p_[i][j] - k[i] * p_[m][j];
    }
    p_ = np;
  }
}

geom::Gaussian2D KalmanCV::position_gaussian() const {
  const double sx = std::sqrt(std::max(p_[0][0], 1e-8));
  const double sy = std::sqrt(std::max(p_[1][1], 1e-8));
  double rho = p_[0][1] / (sx * sy);
  rho = std::clamp(rho, -0.99, 0.99);
  return geom::Gaussian2D{position(), sx, sy, rho};
}

}  // namespace erpd::track
