#pragma once
// Constant-velocity Kalman filter in the plane.
//
// State x = [px, py, vx, vy]; measurements are positions (vehicle uploads
// provide centroids; velocity is observed indirectly). The filter supplies
// both the smoothed state for tracking and the positional covariance that
// seeds the bivariate-Gaussian uncertainty of predicted trajectories.

#include <array>

#include "geom/gaussian2d.hpp"
#include "geom/vec2.hpp"

namespace erpd::track {

struct KalmanConfig {
  /// Process noise: white acceleration spectral density (m^2/s^3).
  double accel_noise{2.0};
  /// Measurement noise std-dev on positions (meters).
  double meas_sigma{0.4};
  /// Initial velocity uncertainty std-dev (m/s).
  double init_vel_sigma{4.0};
};

class KalmanCV {
 public:
  using Config = KalmanConfig;

  explicit KalmanCV(geom::Vec2 position, Config cfg = {});
  KalmanCV(geom::Vec2 position, geom::Vec2 velocity, Config cfg = {});

  geom::Vec2 position() const { return {x_[0], x_[1]}; }
  geom::Vec2 velocity() const { return {x_[2], x_[3]}; }
  double speed() const { return velocity().norm(); }

  /// Advance the state by dt (prediction step).
  void predict(double dt);

  /// Fuse a position measurement.
  void update(geom::Vec2 measured_position);

  /// Fuse a position + velocity measurement (extractors estimate velocity
  /// from frame-to-frame displacement).
  void update(geom::Vec2 measured_position, geom::Vec2 measured_velocity,
              double vel_sigma);

  /// Positional covariance as a bivariate Gaussian around the current
  /// position estimate.
  geom::Gaussian2D position_gaussian() const;

  /// Positional covariance entries (for tests).
  double var_px() const { return p_[0][0]; }
  double var_py() const { return p_[1][1]; }
  double var_vx() const { return p_[2][2]; }
  double var_vy() const { return p_[3][3]; }

 private:
  Config cfg_;
  std::array<double, 4> x_{};
  std::array<std::array<double, 4>, 4> p_{};  // covariance
};

}  // namespace erpd::track
