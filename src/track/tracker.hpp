#pragma once
// Multi-object tracker at the edge server (paper's Object Tracking module).
//
// Consumes per-frame detections (object centroids from merged uploads, plus
// the connected vehicles' own poses, which are exact) and maintains
// confirmed tracks with Kalman-smoothed kinematics. Association is gated
// greedy nearest-neighbour, which is adequate at traffic-map density.

#include <optional>
#include <vector>

#include "geom/vec2.hpp"
#include "sim/types.hpp"
#include "track/kalman.hpp"

namespace erpd::track {

/// One detection handed to the tracker for a frame.
struct Detection {
  geom::Vec2 position{};
  /// Velocity estimate if the reporter had one (frame differencing).
  std::optional<geom::Vec2> velocity;
  /// Apparent kind of this (possibly partial) view. Advisory: a far or
  /// partially occluded car can look pedestrian-sized, so association goes
  /// by distance and a track's kind upgrades once any view is car-sized.
  sim::AgentKind kind{sim::AgentKind::kCar};
  /// Largest planar extent of this view (meters).
  double extent{0.0};
  /// Bytes of the object's perception payload (carried through so the
  /// dissemination stage knows each object's data size s_i).
  std::size_t payload_bytes{0};
  std::size_t point_count{0};
  /// Ground-truth id (harness scoring only; kInvalidAgent if unknown).
  sim::AgentId truth_id{sim::kInvalidAgent};
};

struct TrackerConfig {
  /// Association gate (meters).
  double gate{3.5};
  /// Updates needed to confirm a track.
  int confirm_hits{2};
  /// Missed frames before a track is dropped.
  int max_misses{4};
  /// Extra missed frames a *confirmed* track survives beyond max_misses,
  /// coasting on its Kalman constant-velocity prediction. This is the
  /// graceful-degradation knob for lossy uplinks: when a vehicle's upload is
  /// dropped, the object it was reporting keeps a (staler) track instead of
  /// vanishing from the traffic map. 0 (default) preserves the exact
  /// lossless-pipeline lifetime rule.
  int max_coast_frames{0};
  KalmanCV::Config kalman{};
  /// Measurement sigma assumed for velocity observations (m/s).
  double vel_meas_sigma{1.0};
};

struct Track {
  int id{-1};
  sim::AgentKind kind{sim::AgentKind::kCar};
  KalmanCV filter;
  int hits{0};
  int misses{0};
  double last_update{0.0};
  /// Largest planar extent ever observed for this track.
  double max_extent{0.0};
  /// Smoothed heading rate (rad/s), estimated from velocity direction
  /// changes; feeds constant-turn-rate prediction for off-map objects.
  double yaw_rate{0.0};
  /// Velocity heading at the previous update (internal to the estimator).
  double prev_heading{0.0};
  bool has_prev_heading{false};
  /// Latest payload metadata from the most recent matched detection.
  std::size_t payload_bytes{0};
  std::size_t point_count{0};
  sim::AgentId truth_id{sim::kInvalidAgent};

  bool confirmed(const TrackerConfig& cfg) const {
    return hits >= cfg.confirm_hits;
  }
  /// A confirmed track carried purely on prediction this frame (no matched
  /// detection since at least one frame).
  bool coasting(const TrackerConfig& cfg) const {
    return confirmed(cfg) && misses > 0;
  }
  geom::Vec2 position() const { return filter.position(); }
  geom::Vec2 velocity() const { return filter.velocity(); }
};

class MultiObjectTracker {
 public:
  explicit MultiObjectTracker(TrackerConfig cfg = {});

  /// Advance all tracks to `t` and fuse this frame's detections.
  void step(const std::vector<Detection>& detections, double t);

  const std::vector<Track>& tracks() const { return tracks_; }

  /// Confirmed tracks only.
  std::vector<const Track*> confirmed() const;

  const TrackerConfig& config() const { return cfg_; }

  const Track* find(int track_id) const;

 private:
  TrackerConfig cfg_;
  std::vector<Track> tracks_;
  int next_id_{0};
  std::optional<double> last_t_;
};

}  // namespace erpd::track
