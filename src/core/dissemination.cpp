#include "core/dissemination.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace erpd::core {

Selection greedy_dissemination(std::vector<Candidate> candidates,
                               std::size_t budget_bytes) {
  // Sort by award R/s descending; equal awards break ties by higher
  // relevance so big useful payloads beat tiny ones at the same rate.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              const double ra =
                  a.bytes > 0 ? a.relevance / static_cast<double>(a.bytes)
                              : a.relevance * 1e12;
              const double rb =
                  b.bytes > 0 ? b.relevance / static_cast<double>(b.bytes)
                              : b.relevance * 1e12;
              if (ra != rb) return ra > rb;
              return a.relevance > b.relevance;
            });
  Selection out;
  for (const Candidate& c : candidates) {
    if (c.relevance <= 0.0) break;  // the rest are irrelevant
    if (out.total_bytes + c.bytes > budget_bytes) continue;
    out.chosen.push_back(c);
    out.total_bytes += c.bytes;
    out.total_relevance += c.relevance;
  }
  return out;
}

Selection optimal_dissemination(const std::vector<Candidate>& candidates,
                                std::size_t budget_bytes,
                                std::size_t resolution_bytes) {
  ERPD_REQUIRE(resolution_bytes > 0,
               "optimal_dissemination: resolution must be > 0");
  // Quantize weights *up* so the solution always respects the true budget.
  const std::size_t cap = budget_bytes / resolution_bytes;
  std::vector<std::size_t> w(candidates.size());
  std::vector<const Candidate*> items;
  std::vector<std::size_t> weights;
  for (const Candidate& c : candidates) {
    if (c.relevance <= 0.0) continue;
    const std::size_t wc = (c.bytes + resolution_bytes - 1) / resolution_bytes;
    if (wc > cap) continue;
    items.push_back(&c);
    weights.push_back(wc);
  }

  // value[b] = best relevance with budget b; choice tracking for recovery.
  std::vector<double> value(cap + 1, 0.0);
  std::vector<std::vector<bool>> taken(items.size(),
                                       std::vector<bool>(cap + 1, false));
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::size_t wi = weights[i];
    const double vi = items[i]->relevance;
    for (std::size_t b = cap + 1; b-- > wi;) {
      if (value[b - wi] + vi > value[b]) {
        value[b] = value[b - wi] + vi;
        taken[i][b] = true;
      }
    }
  }

  Selection out;
  std::size_t b = cap;
  for (std::size_t i = items.size(); i-- > 0;) {
    if (taken[i][b]) {
      ERPD_DCHECK(b >= weights[i],
                  "optimal_dissemination: knapsack backtrack underflow at item ",
                  i);
      out.chosen.push_back(*items[i]);
      out.total_bytes += items[i]->bytes;
      out.total_relevance += items[i]->relevance;
      b -= weights[i];
    }
  }
  std::reverse(out.chosen.begin(), out.chosen.end());
  return out;
}

Selection round_robin_dissemination(const std::vector<Candidate>& candidates,
                                    std::size_t budget_bytes,
                                    std::size_t& cursor) {
  Selection out;
  if (candidates.empty()) return out;
  const std::size_t n = candidates.size();
  cursor %= n;
  for (std::size_t k = 0; k < n; ++k) {
    const Candidate& c = candidates[(cursor + k) % n];
    if (out.total_bytes + c.bytes > budget_bytes) {
      // Head-of-line blocking: RR stalls on the first item that no longer
      // fits, resuming there next frame (matches EMP's behaviour of
      // spreading the map over rounds).
      cursor = (cursor + k) % n;
      return out;
    }
    out.chosen.push_back(c);
    out.total_bytes += c.bytes;
    out.total_relevance += c.relevance;
  }
  cursor = (cursor + n) % n;
  return out;
}

Selection broadcast_dissemination(const std::vector<Candidate>& candidates) {
  Selection out;
  out.chosen = candidates;
  for (const Candidate& c : candidates) {
    out.total_bytes += c.bytes;
    out.total_relevance += c.relevance;
  }
  return out;
}

}  // namespace erpd::core
