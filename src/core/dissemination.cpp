#include "core/dissemination.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace erpd::core {

Selection greedy_dissemination(std::vector<Candidate> candidates,
                               std::size_t budget_bytes) {
  // Sort by award R/s descending; equal awards break ties by higher
  // relevance so big useful payloads beat tiny ones at the same rate.
  // Zero-byte candidates with positive relevance are free relevance: they
  // rank strictly first (a finite pseudo-award like R*1e12 can be outranked
  // by a tiny payload and breaks tie-break transitivity).
  const auto rank = [](const Candidate& c) {
    // 0 = free (zero bytes, positive relevance), 1 = sized, 2 = irrelevant.
    if (c.relevance <= 0.0) return 2;
    return c.bytes == 0 ? 0 : 1;
  };
  std::sort(candidates.begin(), candidates.end(),
            [&rank](const Candidate& a, const Candidate& b) {
              const int ca = rank(a);
              const int cb = rank(b);
              if (ca != cb) return ca < cb;
              if (ca == 1) {
                const double ra = a.relevance / static_cast<double>(a.bytes);
                const double rb = b.relevance / static_cast<double>(b.bytes);
                if (ra != rb) return ra > rb;
              }
              return a.relevance > b.relevance;
            });
  Selection out;
  for (const Candidate& c : candidates) {
    if (c.relevance <= 0.0) break;  // the rest are irrelevant
    if (out.total_bytes + c.bytes > budget_bytes) continue;
    out.chosen.push_back(c);
    out.total_bytes += c.bytes;
    out.total_relevance += c.relevance;
  }
  return out;
}

Selection optimal_dissemination(const std::vector<Candidate>& candidates,
                                std::size_t budget_bytes,
                                std::size_t resolution_bytes) {
  ERPD_REQUIRE(resolution_bytes > 0,
               "optimal_dissemination: resolution must be > 0");
  // Quantize weights *up* so the solution always respects the true budget.
  const std::size_t cap = budget_bytes / resolution_bytes;
  std::vector<std::size_t> w(candidates.size());
  std::vector<const Candidate*> items;
  std::vector<std::size_t> weights;
  for (const Candidate& c : candidates) {
    if (c.relevance <= 0.0) continue;
    const std::size_t wc = (c.bytes + resolution_bytes - 1) / resolution_bytes;
    if (wc > cap) continue;
    items.push_back(&c);
    weights.push_back(wc);
  }

  // value[b] = best relevance with budget b; choice tracking for recovery.
  std::vector<double> value(cap + 1, 0.0);
  std::vector<std::vector<bool>> taken(items.size(),
                                       std::vector<bool>(cap + 1, false));
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::size_t wi = weights[i];
    const double vi = items[i]->relevance;
    for (std::size_t b = cap + 1; b-- > wi;) {
      if (value[b - wi] + vi > value[b]) {
        value[b] = value[b - wi] + vi;
        taken[i][b] = true;
      }
    }
  }

  Selection out;
  std::size_t b = cap;
  for (std::size_t i = items.size(); i-- > 0;) {
    if (taken[i][b]) {
      ERPD_DCHECK(b >= weights[i],
                  "optimal_dissemination: knapsack backtrack underflow at item ",
                  i);
      out.chosen.push_back(*items[i]);
      out.total_bytes += items[i]->bytes;
      out.total_relevance += items[i]->relevance;
      b -= weights[i];
    }
  }
  std::reverse(out.chosen.begin(), out.chosen.end());
  return out;
}

Selection round_robin_dissemination(const std::vector<Candidate>& candidates,
                                    std::size_t budget_bytes,
                                    std::size_t& cursor) {
  Selection out;
  if (candidates.empty()) return out;
  const std::size_t n = candidates.size();
  cursor %= n;
  for (std::size_t k = 0; k < n; ++k) {
    const Candidate& c = candidates[(cursor + k) % n];
    if (c.bytes > budget_bytes) {
      // Larger than the whole per-frame budget: no future round can ever
      // deliver it either. Stalling the rotation here (the pre-fix
      // behaviour) starved every vehicle permanently once one oversized
      // object reached the cursor; skip it and keep rotating.
      continue;
    }
    if (out.total_bytes + c.bytes > budget_bytes) {
      // Head-of-line blocking: RR stalls on the first item that no longer
      // fits *this* frame, resuming there next frame (matches EMP's
      // behaviour of spreading the map over rounds).
      cursor = (cursor + k) % n;
      return out;
    }
    out.chosen.push_back(c);
    out.total_bytes += c.bytes;
    out.total_relevance += c.relevance;
  }
  cursor = (cursor + n) % n;
  return out;
}

Selection broadcast_dissemination(const std::vector<Candidate>& candidates) {
  Selection out;
  out.chosen = candidates;
  for (const Candidate& c : candidates) {
    out.total_bytes += c.bytes;
    out.total_relevance += c.relevance;
  }
  return out;
}

}  // namespace erpd::core
