#pragma once
// Determinism annotations for the detlint static-analysis pass
// (tools/detlint.py; rules D1-D6 are specified in DESIGN.md §13).
//
// The repo's regression story — the bit-exact seed-42 golden, the per-method
// behavior fingerprints, the 1/2/8-worker determinism suite — depends on
// invariants no compiler checks: randomness flows only through splitmix64
// streams, no wall clock reaches simulated outputs, and no hash-ordered
// iteration influences results. detlint enforces those statically; this
// header provides the one *annotation* (as opposed to suppression) it
// recognizes.
//
// ERPD_ORDER_INSENSITIVE marks a loop over a hash-ordered container whose
// fold provably commutes — the result is identical for every visitation
// order, so rule D1 (no unordered-container iteration in src/) does not
// apply. The justification is mandatory and should state the reduction
// argument ("per-key += of counts commutes", not "reviewed"). detlint
// accepts the macro on the loop line or within the five lines above it; the
// equivalent comment form `// ERPD_ORDER_INSENSITIVE: <why>` also works
// where a statement cannot appear.
//
// For everything that does NOT commute, do not annotate — refactor: iterate
// a sorted snapshot (core::sorted_keys / core::sorted_items in
// core/ordered.hpp) or use an ordered container outright.

#define ERPD_ORDER_INSENSITIVE(justification)                               \
  static_assert(sizeof(justification) > 1,                                  \
                "ERPD_ORDER_INSENSITIVE requires a non-empty reduction "    \
                "argument")
