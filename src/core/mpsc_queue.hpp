#pragma once
// Deterministic bounded MPSC ingest queue (DESIGN.md §17).
//
// Classic MPSC queues order items by arrival time, which makes the drain
// order a race result — poison for a pipeline whose contract is bit-identical
// output at any worker count. MpscLaneQueue removes the race by construction:
// the queue is an array of bounded LANES, one per producer index, and the
// single consumer drains lanes in INDEX order (items within a lane in push
// order). Concurrency comes from producers writing disjoint lanes in
// parallel; ordering comes from the lane indices, never from the schedule.
//
// Synchronization contract (deliberately lock- and atomic-free):
//   * at most one producer touches a given lane at a time — in the pipeline
//     a lane is a sensing fan-out slot, so parallel_for's "one task per
//     index" discipline enforces this for free;
//   * drain()/clear()/size() run only after all producers have quiesced —
//     the pool join at the end of the parallel region is the happens-before
//     edge, exactly as for the index-addressed result slots the fan-out
//     already writes.
// Violating either is a data race (TSan-visible), not a subtle reorder.
//
// Backpressure fates are explicit and deterministic:
//   * try_push returns false when the lane is at lane_depth — a per-lane
//     bound, so whether a push is refused depends only on (lane, position),
//     never on what other producers are doing;
//   * drain(max_items) delivers at most max_items items and routes the
//     overflow — always the HIGHEST lane indices, since lanes drain in
//     ascending order — through on_drop, so every queued item lands in
//     exactly one of {delivered, dropped} per drain.

#include <cstddef>
#include <utility>
#include <vector>

#include "core/check.hpp"

namespace erpd::core {

template <typename T>
class MpscLaneQueue {
 public:
  /// A queue of `lanes` bounded lanes holding up to `lane_depth` items each.
  MpscLaneQueue(std::size_t lanes, std::size_t lane_depth)
      : lane_depth_(lane_depth), lanes_(lanes) {
    ERPD_REQUIRE(lane_depth > 0,
                 "MpscLaneQueue: lane_depth must be > 0, got ", lane_depth);
    for (std::vector<T>& lane : lanes_) lane.reserve(lane_depth);
  }

  std::size_t lanes() const { return lanes_.size(); }
  std::size_t lane_depth() const { return lane_depth_; }

  /// Items currently queued across all lanes. Consumer-side only.
  std::size_t size() const {
    std::size_t n = 0;
    for (const std::vector<T>& lane : lanes_) n += lane.size();
    return n;
  }

  /// Enqueue into `lane`; false when the lane is full (the caller owns the
  /// rejected item and must bill its backpressure fate). Safe to call from
  /// one producer per lane concurrently with other lanes' producers.
  bool try_push(std::size_t lane, T item) {
    ERPD_DCHECK(lane < lanes_.size(), "MpscLaneQueue: lane ", lane,
                " out of range ", lanes_.size());
    std::vector<T>& q = lanes_[lane];
    if (q.size() >= lane_depth_) return false;
    q.push_back(std::move(item));
    return true;
  }

  struct DrainStats {
    std::size_t delivered{0};
    std::size_t dropped{0};
  };

  /// Deliver queued items to `on_item` in (lane index, push order), at most
  /// `max_items` of them (0 = unbounded); the overflow goes to `on_drop`.
  /// Leaves the queue empty. Consumer-side only.
  template <typename OnItem, typename OnDrop>
  DrainStats drain(std::size_t max_items, OnItem&& on_item, OnDrop&& on_drop) {
    DrainStats stats;
    for (std::vector<T>& lane : lanes_) {
      for (T& item : lane) {
        if (max_items == 0 || stats.delivered < max_items) {
          on_item(std::move(item));
          ++stats.delivered;
        } else {
          on_drop(std::move(item));
          ++stats.dropped;
        }
      }
      lane.clear();
    }
    return stats;
  }

  /// Drop everything (lane capacity is kept for reuse). Consumer-side only.
  void clear() {
    for (std::vector<T>& lane : lanes_) lane.clear();
  }

 private:
  std::size_t lane_depth_;
  std::vector<std::vector<T>> lanes_;
};

}  // namespace erpd::core
