#pragma once
// Relevance estimation (paper §III-A).
//
// Relevance of perception data quantifies the probability of a potential
// collision between the corresponding objects:
//
//   - trajectory-based (§III-A.1): at a trajectory crossing, place a circular
//     *collision area* of radius = the larger object's length; compute each
//     object's passing interval through the circle; then
//        R_ci  = |t1 ∩ t2| / |t1 ∪ t2|          (collision interval IoU)
//        ttc   = start of the overlap;  R_ttc = 1 - ttc / T  (0 if disjoint)
//        R     = (R_ci + R_ttc) / 2
//
//   - car-following-based (§III-A.2): a follower that violates the safety
//     criteria (Pipes' rule / Gipps time gap) inherits alpha x its leader's
//     relevance, because it would rear-end the leader if the leader brakes
//     after receiving a dissemination.

#include <optional>

#include "geom/segment.hpp"
#include "geom/vec2.hpp"
#include "sim/car_following.hpp"
#include "track/prediction.hpp"

namespace erpd::core {

struct CollisionEstimate {
  /// True if the passing intervals overlap (a collision is possible).
  bool collides{false};
  /// Collision interval |t1 ∩ t2| in seconds.
  double collision_interval{0.0};
  /// Earliest possible collision time (= T when no overlap).
  double ttc{0.0};
  double r_ci{0.0};
  double r_ttc{0.0};
  /// Combined relevance in [0, 1].
  double relevance{0.0};
  /// Where the trajectories cross and the collision-area radius.
  geom::Vec2 collision_point{};
  double radius{0.0};
};

/// Passing interval (seconds, clipped to [0, horizon]) of a trajectory
/// through the disk (center, radius), or nullopt if it never enters within
/// the horizon. Only the first entry interval is considered; re-entries are
/// beyond the interaction the caller derived the center from. Degenerate
/// grazing contacts (zero-length intervals, including ones clipped to the
/// horizon boundary) are returned as-is, so downstream estimates may report
/// a collision with a zero-length collision interval.
std::optional<geom::IntervalD> passing_interval(
    const track::PredictedTrajectory& traj, geom::Vec2 center, double radius);

/// Estimate the potential collision between two predicted trajectories.
/// `length_a`/`length_b` are the objects' footprint lengths (meters); the
/// collision-area radius is their maximum. Returns nullopt when the
/// trajectories never cross within their horizons.
std::optional<CollisionEstimate> estimate_collision(
    const track::PredictedTrajectory& a, const track::PredictedTrajectory& b,
    double length_a, double length_b);

/// Alternative estimator discussed in §III-A.1: weight the interval-based
/// relevance by the probability mass the two predicted-position Gaussians
/// put inside the collision area at the moment the collision interval
/// starts. This is the "joint probability at the trajectory intersection"
/// idea of refs [24]-[26] combined with the collision area; it is costlier
/// (numeric quadrature) and typically *lowers* relevance when prediction
/// uncertainty is large. The paper's default (estimate_collision) treats
/// presence in the area as certain; this variant exists for the ablation.
std::optional<CollisionEstimate> estimate_collision_probabilistic(
    const track::PredictedTrajectory& a, const track::PredictedTrajectory& b,
    double length_a, double length_b);

/// How a follower is judged unsafe behind its leader.
enum class FollowerCriterion {
  /// Relevant if it violates Pipes *or* the Gipps gap (conservative).
  kViolatesAny,
  /// Relevant only if it violates both.
  kViolatesBoth,
};

struct FollowerRelevanceConfig {
  /// Decay factor alpha in (0, 1]; paper uses 0.8.
  double alpha{0.8};
  sim::PipesModel pipes{};
  sim::GippsModel gipps{};
  FollowerCriterion criterion{FollowerCriterion::kViolatesAny};
};

/// True if the follower fails the configured safety criteria and therefore
/// inherits relevance from its leader.
bool follower_unsafe(double gap, double follower_speed,
                     const FollowerRelevanceConfig& cfg);

/// R_follower = alpha * R_leader if unsafe, else 0.
double follower_relevance(double leader_relevance, double gap,
                          double follower_speed,
                          const FollowerRelevanceConfig& cfg);

}  // namespace erpd::core
