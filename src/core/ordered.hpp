#pragma once
// Sorted-snapshot iteration over hash-ordered containers.
//
// Iterating std::unordered_map in an output-influencing path is a latent
// golden break: bucket layout (and thus visitation order) differs between
// standard libraries and shifts on rehash. detlint rule D1 flags every such
// loop in src/. Where the fold does not commute, the fix is to iterate a
// sorted snapshot of the keys — O(n log n), but these maps are small
// (per-frame fleets, per-agent tallies) — or to switch the container to
// std::map outright when lookups are not hot.

#include <algorithm>
#include <utility>
#include <vector>

namespace erpd::core {

/// Keys of any associative container, ascending. The returned vector is a
/// deterministic iteration schedule regardless of the container's internal
/// order.
template <typename Map>
std::vector<typename Map::key_type> sorted_keys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  // ERPD_ORDER_INSENSITIVE: collecting keys into a vector that is sorted
  // immediately after — the visit order cannot survive into the result.
  for (const auto& kv : m) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// (key, value) snapshot of any associative container, ascending by key.
/// Values are copied; intended for small maps on cold paths (exporters,
/// per-frame registries), not hot inner loops.
template <typename Map>
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
sorted_items(const Map& m) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      items;
  items.reserve(m.size());
  // ERPD_ORDER_INSENSITIVE: snapshot is fully sorted before anyone reads it.
  for (const auto& kv : m) items.emplace_back(kv.first, kv.second);
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

}  // namespace erpd::core
