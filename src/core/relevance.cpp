#include "core/relevance.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace erpd::core {

std::optional<geom::IntervalD> passing_interval(
    const track::PredictedTrajectory& traj, geom::Vec2 center, double radius) {
  const double horizon = traj.horizon;
  if (traj.speed < 1e-3) {
    // (Nearly) stationary object: inside the area for the whole horizon or
    // never.
    const geom::Vec2 pos = traj.path.point_at(0.0);
    if (distance(pos, center) <= radius) return geom::IntervalD{0.0, horizon};
    return std::nullopt;
  }
  const auto arcs = traj.path.circle_intervals(center, radius);
  // Use the first entry interval (the crossing the caller derived the center
  // from); later re-entries are beyond this interaction.
  for (const geom::IntervalD& arc : arcs) {
    // circle_intervals yields arc-length intervals with 0 <= lo <= hi, so
    // the time interval is already ordered before clipping and stays ordered
    // after (lo is only raised to 0, hi only lowered to the horizon).
    geom::IntervalD t{arc.lo / traj.speed, arc.hi / traj.speed};
    if (t.lo >= horizon) continue;  // entirely beyond the horizon
    t.hi = std::min(t.hi, horizon);
    t.lo = std::max(t.lo, 0.0);
    ERPD_DCHECK(t.lo <= t.hi,
                "passing_interval: clipped interval inverted [", t.lo, ", ",
                t.hi, "]");
    // A degenerate interval (t.lo == t.hi, e.g. a trajectory grazing the
    // collision-area boundary) is intentionally returned as-is: a grazing
    // contact is still a contact, so estimate_collision may report
    // collides=true with collision_interval 0 (and ttc 0 when the graze is
    // at the start of the horizon).
    return t;
  }
  return std::nullopt;
}

std::optional<CollisionEstimate> estimate_collision(
    const track::PredictedTrajectory& a, const track::PredictedTrajectory& b,
    double length_a, double length_b) {
  // Limit both paths to their horizon reach before intersecting.
  const geom::Polyline pa = a.path.slice(0.0, std::max(a.reach(), 0.5));
  const geom::Polyline pb = b.path.slice(0.0, std::max(b.reach(), 0.5));
  if (pa.empty() || pb.empty()) return std::nullopt;

  const auto crossing = pa.first_crossing(pb);
  if (!crossing) return std::nullopt;

  CollisionEstimate est;
  est.collision_point = crossing->point;
  est.radius = std::max(length_a, length_b);
  const double horizon = std::min(a.horizon, b.horizon);

  const auto t1 = passing_interval(a, est.collision_point, est.radius);
  const auto t2 = passing_interval(b, est.collision_point, est.radius);
  if (!t1 || !t2) {
    // One object never reaches the area within the horizon.
    est.ttc = horizon;
    return est;
  }

  const auto overlap = geom::interval_overlap(*t1, *t2);
  if (!overlap) {
    // Trajectories cross but passing times are disjoint (the paper's G vs p
    // example): both R_ci and R_ttc are 0.
    est.ttc = horizon;
    return est;
  }

  est.collides = true;
  est.collision_interval = overlap->length();
  const double union_len = geom::interval_union_length(*t1, *t2);
  est.r_ci = union_len > 0.0 ? est.collision_interval / union_len : 1.0;
  est.ttc = overlap->lo;
  est.r_ttc = std::clamp(1.0 - est.ttc / horizon, 0.0, 1.0);
  est.relevance = 0.5 * (est.r_ci + est.r_ttc);
  return est;
}

std::optional<CollisionEstimate> estimate_collision_probabilistic(
    const track::PredictedTrajectory& a, const track::PredictedTrajectory& b,
    double length_a, double length_b) {
  auto est = estimate_collision(a, b, length_a, length_b);
  if (!est || !est->collides) return est;
  // Probability that each object is actually inside the collision area at
  // the earliest joint time, under its predicted-position Gaussian.
  const double t = est->ttc;
  const double pa =
      a.uncertainty_at(t).mass_in_circle(est->collision_point, est->radius);
  const double pb =
      b.uncertainty_at(t).mass_in_circle(est->collision_point, est->radius);
  est->relevance *= pa * pb;
  return est;
}

bool follower_unsafe(double gap, double follower_speed,
                     const FollowerRelevanceConfig& cfg) {
  const bool pipes_ok = cfg.pipes.compliant(gap, follower_speed);
  const bool gipps_ok = cfg.gipps.compliant(gap, follower_speed);
  switch (cfg.criterion) {
    case FollowerCriterion::kViolatesAny: return !pipes_ok || !gipps_ok;
    case FollowerCriterion::kViolatesBoth: return !pipes_ok && !gipps_ok;
  }
  return false;
}

double follower_relevance(double leader_relevance, double gap,
                          double follower_speed,
                          const FollowerRelevanceConfig& cfg) {
  if (!follower_unsafe(gap, follower_speed, cfg)) return 0.0;
  return cfg.alpha * leader_relevance;
}

}  // namespace erpd::core
