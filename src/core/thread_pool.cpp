#include "core/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/check.hpp"

namespace erpd::core {

namespace {

// True while this thread is executing a chunk of some parallel region.
// A nested parallel loop (e.g. the per-azimuth scan inside the per-vehicle
// sensing loop) then degrades to the serial fast path instead of deadlocking
// on the shared pool — output is identical by the determinism contract.
thread_local bool tl_in_parallel = false;

// Lane index of this thread in the current pool: 0 for the caller lane (and
// any thread that never joined a pool), i+1 for spawned worker i. Chunk
// accounting attributes work to lanes through it, including nested serial
// regions that run on a worker thread.
thread_local std::size_t tl_lane = 0;

struct InParallelScope {
  InParallelScope() { tl_in_parallel = true; }
  ~InParallelScope() { tl_in_parallel = false; }
};

void atomic_max(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;  // workers: a new job or stop
  std::condition_variable done_cv;  // caller: all chunks completed
  std::vector<std::thread> threads;

  // Current job, valid while remaining > 0. Guarded by mu; the function is
  // invoked outside the lock and outlives the job (the caller owns it and
  // waits for remaining == 0 before returning).
  const std::function<void(std::size_t)>* job{nullptr};
  std::size_t job_chunks{0};
  std::size_t next_chunk{0};
  std::size_t remaining{0};
  std::uint64_t generation{0};
  std::exception_ptr error;
  bool stop{false};

  // Scheduling counters (PoolStats). Relaxed atomics, write-only on the hot
  // path: the serial/nested fast path bypasses `mu` and can run concurrently
  // on several workers, so even lane-local counts must be atomic.
  std::atomic<std::uint64_t> jobs{0};
  std::atomic<std::uint64_t> serial_jobs{0};
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> max_job_chunks{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> lane_chunks;

  void count_chunk() {
    chunks.fetch_add(1, std::memory_order_relaxed);
    lane_chunks[tl_lane].fetch_add(1, std::memory_order_relaxed);
  }

  /// Pull-and-run chunks of the current job until none are left. Requires
  /// `lk` held; returns with it held.
  void drain(std::unique_lock<std::mutex>& lk) {
    while (next_chunk < job_chunks) {
      const std::size_t c = next_chunk++;
      const auto* fn = job;
      lk.unlock();
      try {
        const InParallelScope scope;
        (*fn)(c);
        count_chunk();
        lk.lock();
      } catch (...) {
        count_chunk();
        lk.lock();
        if (!error) error = std::current_exception();
      }
      if (--remaining == 0) done_cv.notify_all();
    }
  }

  void worker_main(std::size_t lane) {
    tl_lane = lane;
    std::unique_lock<std::mutex> lk(mu);
    std::uint64_t seen = 0;
    for (;;) {
      work_cv.wait(lk, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      drain(lk);
    }
  }
};

ThreadPool::ThreadPool(std::size_t workers)
    : impl_(std::make_unique<Impl>()), workers_(std::max<std::size_t>(1, workers)) {
  impl_->lane_chunks =
      std::make_unique<std::atomic<std::uint64_t>[]>(workers_);
  impl_->threads.reserve(workers_ - 1);
  for (std::size_t i = 0; i + 1 < workers_; ++i) {
    impl_->threads.emplace_back(
        [impl = impl_.get(), lane = i + 1] { impl->worker_main(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->threads) t.join();
}

void ThreadPool::run_chunks(std::size_t n_chunks,
                            const std::function<void(std::size_t)>& fn) {
  if (n_chunks == 0) return;
  atomic_max(impl_->max_job_chunks, n_chunks);
  if (workers_ == 1 || n_chunks == 1 || tl_in_parallel) {
    // Serial fast path: same chunks, same order, zero scheduling overhead.
    // Also taken for nested regions (tl_in_parallel) — the outer loop owns
    // the pool.
    impl_->serial_jobs.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t c = 0; c < n_chunks; ++c) {
      fn(c);
      impl_->count_chunk();
    }
    return;
  }

  std::unique_lock<std::mutex> lk(impl_->mu);
  ERPD_REQUIRE(impl_->remaining == 0,
               "ThreadPool::run_chunks: nested/concurrent use of one pool");
  impl_->job = &fn;
  impl_->job_chunks = n_chunks;
  impl_->next_chunk = 0;
  impl_->remaining = n_chunks;
  impl_->error = nullptr;
  impl_->jobs.fetch_add(1, std::memory_order_relaxed);
  ++impl_->generation;
  impl_->work_cv.notify_all();

  impl_->drain(lk);  // the caller is a lane too
  impl_->done_cv.wait(lk, [&] { return impl_->remaining == 0; });

  impl_->job = nullptr;
  impl_->job_chunks = 0;
  if (impl_->error) {
    std::exception_ptr e = impl_->error;
    impl_->error = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.workers = workers_;
  s.jobs = impl_->jobs.load(std::memory_order_relaxed);
  s.serial_jobs = impl_->serial_jobs.load(std::memory_order_relaxed);
  s.chunks = impl_->chunks.load(std::memory_order_relaxed);
  s.max_job_chunks = impl_->max_job_chunks.load(std::memory_order_relaxed);
  s.lane_chunks.resize(workers_);
  for (std::size_t i = 0; i < workers_; ++i) {
    s.lane_chunks[i] = impl_->lane_chunks[i].load(std::memory_order_relaxed);
  }
  return s;
}

namespace {

std::size_t auto_thread_count() {
  if (const char* env = std::getenv("ERPD_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;  // NOLINT: joined at exit via destructor

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(auto_thread_count());
  return *g_pool;
}

std::size_t thread_count() { return global_pool().workers(); }

void set_thread_count(std::size_t n) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_pool = std::make_unique<ThreadPool>(n == 0 ? auto_thread_count() : n);
}

}  // namespace erpd::core
