#pragma once
// Fixed-size worker pool + deterministic parallel loops.
//
// The pipeline's hot loops (per-vehicle sensing, per-azimuth ray casting,
// per-blob segmentation) are data-parallel with no cross-iteration
// dependencies. parallel_for / parallel_chunks split the index range into
// contiguous chunks whose boundaries depend ONLY on (n, grain) — never on
// the worker count — so per-chunk results merged in chunk order are
// bit-identical for any ERPD_THREADS setting, including 1 (the serial
// fallback runs the same chunks in order on the calling thread).
//
// Scheduling is dynamic (workers pull the next chunk index), which is safe
// because callers write results into chunk- or element-indexed slots; only
// the decomposition, not the schedule, can influence the output.
//
// The process-wide pool is sized from the ERPD_THREADS environment variable
// (unset/0 = hardware concurrency) on first use and lives until exit.
// set_thread_count() rebuilds it; it exists for the perf harness and the
// determinism tests and must not race with concurrent parallel loops.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace erpd::core {

/// Cumulative scheduling counters of one pool. A plain snapshot struct —
/// erpd_threads stays observability-free; SystemRunner diffs two snapshots
/// and records the delta into its metrics registry. Counting uses relaxed
/// atomics only (scheduling order is already nondeterministic; the totals
/// are not), so recording cannot perturb simulated outputs.
struct PoolStats {
  /// Execution lanes (spawned workers + the calling thread).
  std::size_t workers{0};
  /// Parallel regions dispatched to the worker threads.
  std::uint64_t jobs{0};
  /// Regions run on the serial fast path (1 worker, 1 chunk, or nested).
  std::uint64_t serial_jobs{0};
  /// Chunks executed, all lanes, both paths.
  std::uint64_t chunks{0};
  /// Widest region seen (chunks per job): the peak queue depth a lane can
  /// pull from.
  std::uint64_t max_job_chunks{0};
  /// Chunks executed per lane; lane 0 is the calling thread. Uneven counts
  /// show pull-scheduling imbalance (the "steals" of a work-stealing pool).
  std::vector<std::uint64_t> lane_chunks;
};

class ThreadPool {
 public:
  /// A pool with `workers` execution lanes. `workers - 1` threads are
  /// spawned; the caller of run_chunks is the remaining lane.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const { return workers_; }

  /// Invoke fn(chunk) for every chunk in [0, n_chunks), distributed over the
  /// pool (the calling thread participates). Blocks until all chunks are
  /// done. The first exception thrown by fn is rethrown to the caller after
  /// the remaining chunks finish or are abandoned.
  void run_chunks(std::size_t n_chunks,
                  const std::function<void(std::size_t)>& fn);

  /// Snapshot of the cumulative scheduling counters (thread-safe).
  PoolStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t workers_{1};
};

/// Process-wide pool used by parallel_for / parallel_chunks.
ThreadPool& global_pool();

/// Worker count of the global pool (== what parallel loops will use).
std::size_t thread_count();

/// Rebuild the global pool with `n` workers (0 = auto: ERPD_THREADS env or
/// hardware concurrency). Harness/test setup only; not safe against
/// concurrent parallel loops.
void set_thread_count(std::size_t n);

/// Number of chunks parallel_chunks(n, grain, ...) will produce. Exposed so
/// callers can size per-chunk result slots up front.
inline std::size_t chunk_count(std::size_t n, std::size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

/// Deterministic chunked loop: fn(begin, end, chunk) over [0, n) split into
/// chunk_count(n, grain) contiguous chunks of `grain` elements (last chunk
/// may be short). Use when fn accumulates into per-chunk scratch merged in
/// chunk order afterwards.
template <typename Fn>
void parallel_chunks(std::size_t n, std::size_t grain, Fn&& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(n, grain);
  global_pool().run_chunks(chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    fn(begin, std::min(n, begin + grain), c);
  });
}

/// Element-wise parallel loop: fn(i) for i in [0, n). `grain` batches
/// elements per chunk to amortize scheduling for cheap bodies.
template <typename Fn>
void parallel_for(std::size_t n, std::size_t grain, Fn&& fn) {
  parallel_chunks(n, grain,
                  [&](std::size_t begin, std::size_t end, std::size_t) {
                    for (std::size_t i = begin; i < end; ++i) fn(i);
                  });
}

}  // namespace erpd::core
