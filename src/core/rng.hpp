#pragma once
// Deterministic seed derivation for parallel simulation stages.
//
// Stages that run concurrently (per-vehicle scans, per-azimuth noise) must
// not share one sequential RNG: the draw order would depend on scheduling.
// Instead each independent unit derives its own seed from a stable tuple
// (base seed, unit id, tick, ...) via a splitmix64-style mixer, making the
// stream a pure function of the unit — identical for any thread count.

#include <cstdint>
#include <random>

namespace erpd::core {

/// splitmix64 finalizer: bijective avalanche mix of a 64-bit value.
inline constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Fold any number of 64-bit components into one well-mixed seed.
template <typename... Rest>
constexpr std::uint64_t seed_mix(std::uint64_t first, Rest... rest) {
  std::uint64_t h = mix64(first);
  ((h = mix64(h ^ mix64(static_cast<std::uint64_t>(rest)))), ...);
  return h;
}

/// splitmix64 generator: O(1) construction (vs. mt19937_64's 312-word state
/// init, which dominates when a fresh stream is needed per azimuth/unit).
/// Satisfies UniformRandomBitGenerator, so it plugs into <random>
/// distributions.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  constexpr result_type operator()() { return mix64(state_++); }

 private:
  std::uint64_t state_;
};

/// The one sanctioned construction site for sequential generators (detlint
/// rule D2): every std::mt19937_64 in src/ must be built here, from a seed
/// that is a pure function of configuration (scenario seed, entity id, tick
/// — typically via seed_mix). Constructing generators ad hoc is how
/// wall-clock or address entropy sneaks into simulated outputs.
inline std::mt19937_64 seeded_rng(std::uint64_t seed) {
  return std::mt19937_64{seed};
}

}  // namespace erpd::core
