#pragma once
// Deterministic seed derivation for parallel simulation stages.
//
// Stages that run concurrently (per-vehicle scans, per-azimuth noise) must
// not share one sequential RNG: the draw order would depend on scheduling.
// Instead each independent unit derives its own seed from a stable tuple
// (base seed, unit id, tick, ...) via a splitmix64-style mixer, making the
// stream a pure function of the unit — identical for any thread count.

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>

namespace erpd::core {

/// splitmix64 finalizer: bijective avalanche mix of a 64-bit value.
inline constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Fold any number of 64-bit components into one well-mixed seed.
template <typename... Rest>
constexpr std::uint64_t seed_mix(std::uint64_t first, Rest... rest) {
  std::uint64_t h = mix64(first);
  ((h = mix64(h ^ mix64(static_cast<std::uint64_t>(rest)))), ...);
  return h;
}

/// splitmix64 generator: O(1) construction (vs. mt19937_64's 312-word state
/// init, which dominates when a fresh stream is needed per azimuth/unit).
/// Satisfies UniformRandomBitGenerator, so it plugs into <random>
/// distributions.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  constexpr result_type operator()() { return mix64(state_++); }

 private:
  std::uint64_t state_;
};

/// Gaussian sampler that is draw-for-draw bit-identical to libstdc++'s
/// std::normal_distribution<double> (Marsaglia polar method) but ~2x faster
/// per draw for full-width 64-bit generators.
///
/// Why it is identical: std::normal_distribution pulls uniforms through
/// std::generate_canonical<double, 53>. For a generator whose range is
/// exactly 2^64 (SplitMix64, mt19937_64) that routine reduces to one draw:
///   sum = double(g());  ret = sum / 2^64;  if (ret >= 1) ret = prev(1)
/// Both the uint64->double conversion and the division by a power of two
/// round once each, so computing `double(g()) * 0x1p-64` produces the same
/// bits. The polar rejection loop below then mirrors the libstdc++ source
/// operation-for-operation (including the saved-deviate cache and the final
/// `ret * sigma + mean` order), so the accept/reject decisions and every
/// emitted double match. What we skip is generate_canonical's per-draw
/// bookkeeping — notably an 80-bit `log(range)/log(2)` it recomputes on
/// every call — which dominates its cost.
///
/// Guarded by a static_assert on the generator's range; the exactness is
/// also locked down by tests/test_rng.cpp against std::normal_distribution.
class NormalSampler {
 public:
  explicit NormalSampler(double mean = 0.0, double sigma = 1.0)
      : mean_(mean), sigma_(sigma) {}

  template <typename Urbg>
  double operator()(Urbg& g) {
    static_assert(Urbg::min() == 0 &&
                      Urbg::max() == std::numeric_limits<std::uint64_t>::max(),
                  "NormalSampler requires a full-width 64-bit generator "
                  "(the canonical-draw reduction assumes range == 2^64)");
    double ret;
    if (saved_available_) {
      saved_available_ = false;
      ret = saved_;
    } else {
      double x, y, r2;
      do {
        x = 2.0 * canonical(g) - 1.0;
        y = 2.0 * canonical(g) - 1.0;
        r2 = x * x + y * y;
        // libstdc++'s exact rejection test, replicated verbatim:
      } while (r2 > 1.0 || r2 == 0.0);  // lint-ok: R6 polar-method reject
      const double mult = std::sqrt(-2 * std::log(r2) / r2);
      saved_ = x * mult;
      saved_available_ = true;
      ret = y * mult;
    }
    ret = ret * sigma_ + mean_;
    return ret;
  }

  /// Batched draw: writes to out[0..n) exactly the values n sequential
  /// operator() calls would produce, consuming the generator identically
  /// (including the saved-deviate cache on entry and exit). The point is
  /// instruction-level parallelism: operator()'s serial chain puts a
  /// log+sqrt between every other draw, while here the rejection loop runs
  /// with cheap generator arithmetic only and the transcendentals of up to
  /// kBatchPairs accepted pairs are evaluated back-to-back with no data
  /// dependence between them — ~2-3x faster per draw. Each individual
  /// value's arithmetic is unchanged (no reassociation, no fusing), so the
  /// output is bit-identical; tests/test_rng.cpp locks this down.
  template <typename Urbg>
  void fill(Urbg& g, double* out, std::size_t n) {
    std::size_t k = 0;
    if (saved_available_ && k < n) {
      saved_available_ = false;
      out[k++] = saved_ * sigma_ + mean_;
    }
    constexpr std::size_t kBatchPairs = 32;
    double xs[kBatchPairs];
    double ys[kBatchPairs];
    double r2s[kBatchPairs];
    while (k < n) {
      const std::size_t pairs = std::min(kBatchPairs, (n - k + 1) / 2);
      for (std::size_t i = 0; i < pairs; ++i) {
        double x, y, r2;
        do {
          x = 2.0 * canonical(g) - 1.0;
          y = 2.0 * canonical(g) - 1.0;
          r2 = x * x + y * y;
        } while (r2 > 1.0 || r2 == 0.0);  // lint-ok: R6 polar-method reject
        xs[i] = x;
        ys[i] = y;
        r2s[i] = r2;
      }
      for (std::size_t i = 0; i < pairs; ++i) {
        const double r2 = r2s[i];
        const double mult = std::sqrt(-2 * std::log(r2) / r2);
        // Unscaled products, exactly as operator() computes them; the
        // sigma/mean affine map is applied at write-out (and for a trailing
        // saved deviate, at its eventual return), matching the scalar path.
        xs[i] = xs[i] * mult;
        ys[i] = ys[i] * mult;
      }
      for (std::size_t i = 0; i < pairs; ++i) {
        out[k++] = ys[i] * sigma_ + mean_;
        if (k < n) {
          out[k++] = xs[i] * sigma_ + mean_;
        } else {
          saved_ = xs[i];
          saved_available_ = true;
        }
      }
    }
  }

 private:
  template <typename Urbg>
  static double canonical(Urbg& g) {
    const std::uint64_t u = g();
    // Same value as `double(u) * 0x1p-64` (what generate_canonical computes)
    // but branchless: baseline x86-64 has no uint64->double instruction, so
    // the direct conversion compiles to a sign-bit branch that mispredicts
    // half the time on random input. Splitting into 32-bit halves uses two
    // exact (branchless) conversions and two exact power-of-two scalings;
    // the single add then rounds the mathematically exact hi*2^-32 +
    // lo*2^-64 = u*2^-64 once — the same round-to-nearest result as
    // converting u first (rounding commutes with exact scaling).
    const double r =
        static_cast<double>(static_cast<std::uint32_t>(u >> 32)) * 0x1p-32 +
        static_cast<double>(static_cast<std::uint32_t>(u)) * 0x1p-64;
    // double(2^64 - k) for small k rounds up to 2^64, making r == 1.0;
    // generate_canonical clamps that open-interval violation the same way.
    if (r >= 1.0) [[unlikely]] {
      return std::nextafter(1.0, 0.0);
    }
    return r;
  }

  double mean_{0.0};
  double sigma_{1.0};
  double saved_{0.0};
  bool saved_available_{false};
};

/// The one sanctioned construction site for sequential generators (detlint
/// rule D2): every std::mt19937_64 in src/ must be built here, from a seed
/// that is a pure function of configuration (scenario seed, entity id, tick
/// — typically via seed_mix). Constructing generators ad hoc is how
/// wall-clock or address entropy sneaks into simulated outputs.
inline std::mt19937_64 seeded_rng(std::uint64_t seed) {
  return std::mt19937_64{seed};
}

}  // namespace erpd::core
