#pragma once
// Unified contract / invariant layer.
//
// Every precondition, postcondition, and internal invariant in the repo is
// expressed through these macros so violations produce one structured,
// greppable diagnostic (kind, expression, file:line, formatted message) and
// one typed exception, erpd::ContractViolation, that tests and callers can
// catch uniformly.
//
//   ERPD_REQUIRE(cond, ...)     precondition on inputs — always on
//   ERPD_ENSURE(cond, ...)      postcondition / invariant — always on
//   ERPD_DCHECK(cond, ...)      internal invariant — on in debug builds and
//                               whenever ERPD_ENABLE_DCHECKS is defined
//                               (sanitizer builds define it, see
//                               cmake/Sanitizers.cmake)
//   ERPD_UNREACHABLE(...)       marks a path the control flow must not reach
//
// Trailing arguments after the condition are streamed into the message:
//   ERPD_REQUIRE(eps > 0.0, "dbscan: eps must be > 0, got ", eps);
//
// This header is intentionally header-only and free of erpd dependencies so
// every library (geom, pointcloud, sim, net, track, core, edge) can include
// it without a link edge.

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace erpd {

/// Typed exception thrown by all contract macros. Derives from
/// std::logic_error: a violated contract is a programming error, not an
/// environmental condition.
class ContractViolation : public std::logic_error {
 public:
  enum class Kind { kRequire, kEnsure, kDcheck, kUnreachable };

  ContractViolation(Kind kind, const char* expression, const char* file,
                    int line, std::string message)
      : std::logic_error(format(kind, expression, file, line, message)),
        kind_(kind),
        expression_(expression),
        file_(file),
        line_(line),
        message_(std::move(message)) {}

  Kind kind() const noexcept { return kind_; }
  /// The stringized condition, e.g. "eps > 0.0".
  const char* expression() const noexcept { return expression_; }
  const char* file() const noexcept { return file_; }
  int line() const noexcept { return line_; }
  /// The formatted user message (may be empty).
  const std::string& message() const noexcept { return message_; }

  static const char* kind_name(Kind k) noexcept {
    switch (k) {
      case Kind::kRequire: return "REQUIRE";
      case Kind::kEnsure: return "ENSURE";
      case Kind::kDcheck: return "DCHECK";
      case Kind::kUnreachable: return "UNREACHABLE";
    }
    return "CONTRACT";
  }

 private:
  static std::string format(Kind kind, const char* expression,
                            const char* file, int line,
                            const std::string& message) {
    std::ostringstream oss;
    oss << "contract violation [" << kind_name(kind) << "] at " << file << ':'
        << line;
    if (expression != nullptr && expression[0] != '\0') {
      oss << ": (" << expression << ") failed";
    }
    if (!message.empty()) {
      oss << ": " << message;
    }
    return oss.str();
  }

  Kind kind_;
  const char* expression_;
  const char* file_;
  int line_;
  std::string message_;
};

namespace detail {

inline std::string format_message() { return {}; }

template <class... Parts>
std::string format_message(const Parts&... parts) {
  std::ostringstream oss;
  (oss << ... << parts);
  return oss.str();
}

[[noreturn]] inline void raise_contract_violation(ContractViolation::Kind kind,
                                                  const char* expression,
                                                  const char* file, int line,
                                                  std::string message) {
  throw ContractViolation(kind, expression, file, line, std::move(message));
}

}  // namespace detail
}  // namespace erpd

#define ERPD_CHECK_IMPL_(kind, cond, ...)                               \
  do {                                                                  \
    if (!(cond)) [[unlikely]] {                                         \
      ::erpd::detail::raise_contract_violation(                         \
          ::erpd::ContractViolation::Kind::kind, #cond, __FILE__,       \
          __LINE__, ::erpd::detail::format_message(__VA_ARGS__));       \
    }                                                                   \
  } while (false)

/// Precondition: validates caller-supplied inputs. Always enabled.
#define ERPD_REQUIRE(cond, ...) ERPD_CHECK_IMPL_(kRequire, cond, __VA_ARGS__)

/// Postcondition / invariant on computed state. Always enabled.
#define ERPD_ENSURE(cond, ...) ERPD_CHECK_IMPL_(kEnsure, cond, __VA_ARGS__)

/// Internal consistency check on hot paths. Compiled out in optimized
/// builds unless ERPD_ENABLE_DCHECKS is defined (sanitizer builds turn it
/// on); the condition still type-checks in all builds.
#if defined(ERPD_ENABLE_DCHECKS) || !defined(NDEBUG)
#define ERPD_DCHECK(cond, ...) ERPD_CHECK_IMPL_(kDcheck, cond, __VA_ARGS__)
#else
#define ERPD_DCHECK(cond, ...)            \
  do {                                    \
    if (false) {                          \
      static_cast<void>(cond);            \
    }                                     \
  } while (false)
#endif

/// Marks control-flow that must be impossible; always throws.
#define ERPD_UNREACHABLE(...)                                           \
  ::erpd::detail::raise_contract_violation(                             \
      ::erpd::ContractViolation::Kind::kUnreachable, "", __FILE__,      \
      __LINE__, ::erpd::detail::format_message(__VA_ARGS__))
