#pragma once
// Relevance-aware perception dissemination (paper §III-B, Definition 1).
//
// Given candidate (object, vehicle) pairs with relevance R_ij and object
// data size s_i, choose which data to disseminate to maximize total
// relevance subject to the downlink byte budget B. This is a 0/1 knapsack;
// the paper's Algorithm 1 is the classic greedy on the relevance/size award
// R_ij / s_i. An exact dynamic-programming solver and the EMP Round-Robin /
// Unlimited broadcast baselines are provided for the evaluation.

#include <cstddef>
#include <vector>

#include "sim/types.hpp"

namespace erpd::core {

/// One candidate dissemination (object o_i to vehicle j).
struct Candidate {
  int track_id{-1};
  sim::AgentId to{sim::kInvalidAgent};
  double relevance{0.0};
  std::size_t bytes{0};
  /// Ground-truth agent behind the track (harness feedback only).
  sim::AgentId about{sim::kInvalidAgent};
};

struct Selection {
  std::vector<Candidate> chosen;
  std::size_t total_bytes{0};
  double total_relevance{0.0};
};

/// Algorithm 1: greedily pick the candidate maximizing R_ij / s_i until the
/// budget is exhausted. Zero-relevance candidates are never sent; zero-byte
/// candidates with positive relevance cost nothing and are always admitted,
/// ahead of every sized candidate. (We only add items that still fit, the
/// standard fix to the greedy's last step.)
Selection greedy_dissemination(std::vector<Candidate> candidates,
                               std::size_t budget_bytes);

/// Exact 0/1 knapsack via dynamic programming over quantized byte budget.
/// `resolution_bytes` trades accuracy for speed (default 256 B buckets).
Selection optimal_dissemination(const std::vector<Candidate>& candidates,
                                std::size_t budget_bytes,
                                std::size_t resolution_bytes = 256);

/// EMP baseline: Round-Robin — send every object to every vehicle in a fixed
/// rotation, irrespective of relevance, as much as the budget allows each
/// frame. `cursor` persists across frames so the rotation continues where it
/// stopped. Items that could fit a later (emptier) frame block the rotation
/// at the cursor; items larger than the whole per-frame budget can never be
/// delivered and are skipped so they cannot starve the rotation.
Selection round_robin_dissemination(const std::vector<Candidate>& candidates,
                                    std::size_t budget_bytes,
                                    std::size_t& cursor);

/// Unlimited baseline: everything to everyone; reports the bytes that an
/// uncapped downlink would carry.
Selection broadcast_dissemination(const std::vector<Candidate>& candidates);

}  // namespace erpd::core
