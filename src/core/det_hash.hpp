#pragma once
// Seed-perturbable hasher for the determinism torture suite.
//
// Any unordered container that legitimately remains in an output-influencing
// path (its iteration annotated ERPD_ORDER_INSENSITIVE, see core/detlint.hpp)
// should key its hasher off DetHash instead of std::hash. In production the
// seed is 0 and DetHash is a fixed splitmix64 finalizer — stable across
// platforms, unlike std::hash, whose identity-hash-plus-prime-buckets layout
// differs between libstdc++ and libc++. Under test, ERPD_DETLINT_SHUFFLE=<n>
// (or core::set_det_hash_seed) perturbs the seed, scrambling bucket layout
// and therefore iteration order; the determinism suite then asserts that the
// seed-42 decision stream and metrics fingerprints are unchanged, pinning
// that no simulated output depends on hash order.
//
// The seed is read once per hasher construction (one relaxed atomic load per
// container, zero per hash call), so the hot-path cost over std::hash is a
// single mix64.

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "core/rng.hpp"

namespace erpd::core {

namespace detail {

inline constexpr std::uint64_t kDetHashSeedUnset = ~std::uint64_t{0};

inline std::atomic<std::uint64_t>& det_hash_seed_slot() {
  // detlint: D4 test-only hash-shuffle seed; it perturbs bucket layout only
  // and is never read by any code that produces simulated output.
  static std::atomic<std::uint64_t> slot{kDetHashSeedUnset};
  return slot;
}

}  // namespace detail

/// Current hash-shuffle seed: 0 in production, nonzero when the determinism
/// torture is active. Latches ERPD_DETLINT_SHUFFLE from the environment on
/// first use.
inline std::uint64_t det_hash_seed() {
  auto& slot = detail::det_hash_seed_slot();
  std::uint64_t s = slot.load(std::memory_order_relaxed);
  if (s == detail::kDetHashSeedUnset) {
    const char* env = std::getenv("ERPD_DETLINT_SHUFFLE");
    s = 0;
    if (env != nullptr && *env != '\0') {
      const std::uint64_t v = std::strtoull(env, nullptr, 10);
      if (v != 0) s = mix64(v);
    }
    slot.store(s, std::memory_order_relaxed);
  }
  return s;
}

/// Test hook: override the shuffle seed in-process (takes effect for
/// containers constructed after the call). 0 restores production hashing.
inline void set_det_hash_seed(std::uint64_t seed) {
  detail::det_hash_seed_slot().store(seed, std::memory_order_relaxed);
}

/// Deterministic, platform-stable hasher for integral keys. Containers using
/// DetHash get identical bucket layout on every standard library — and a
/// *scrambled* layout under the determinism torture (see file comment).
template <typename Key>
struct DetHash {
  DetHash() : seed_(det_hash_seed()) {}

  std::size_t operator()(const Key& k) const {
    return static_cast<std::size_t>(
        mix64(static_cast<std::uint64_t>(k) ^ seed_));
  }

 private:
  std::uint64_t seed_;
};

}  // namespace erpd::core
