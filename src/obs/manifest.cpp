#include "obs/manifest.hpp"

#include <bit>
#include <cstdio>

namespace erpd::obs {

#ifndef ERPD_GIT_SHA
#define ERPD_GIT_SHA "unknown"
#endif

std::string_view build_git_sha() { return ERPD_GIT_SHA; }

Fingerprint& Fingerprint::fold(double v) {
  // +0.0 and -0.0 compare equal but differ bitwise; canonicalize so equal
  // configs fingerprint equally. Detected at the bit level (lint rule R6:
  // no floating-point ==), which also leaves NaN payloads untouched.
  constexpr std::uint64_t kNegativeZeroBits = std::uint64_t{1} << 63;
  if (std::bit_cast<std::uint64_t>(v) == kNegativeZeroBits) v = 0.0;
  return fold(std::bit_cast<std::uint64_t>(v));
}

Fingerprint& Fingerprint::fold(std::string_view s) {
  fold(static_cast<std::uint64_t>(s.size()));
  for (const char c : s) {
    h_ = core::seed_mix(h_, static_cast<std::uint64_t>(
                                static_cast<unsigned char>(c)));
  }
  return *this;
}

std::string Fingerprint::hex() const {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(h_));
  return buf;
}

}  // namespace erpd::obs
