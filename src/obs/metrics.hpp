#pragma once
// Global-free observability registry (DESIGN.md §11).
//
// A MetricsRegistry is an owned, passed-by-pointer container of named
// counters, gauges and fixed-bucket log2 histograms. There is deliberately no
// process-global registry: every pipeline component records into the registry
// the harness attached (or into nothing when none is attached), so two
// concurrent runs never share observability state.
//
// Determinism contract: recording is write-only with respect to the simulated
// pipeline — no code path may read a metric back to make a decision. Counter
// and histogram recording uses relaxed atomic adds, whose sums are
// order-independent, so the registry contents for *simulated* quantities
// (byte counts, drop counts, selections) are identical for any worker count.
// Wall-clock histograms legitimately vary run to run; they are observability,
// never inputs.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace erpd::obs {

/// Monotonic event/byte counter. Relaxed atomic adds: the final sum is
/// independent of which worker recorded first.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar (thread counts, ratios, pool stats). Set from the
/// orchestrating thread; merge() prefers the operand's value when it was
/// ever set.
class Gauge {
 public:
  void set(double v) {
    v_.store(v, std::memory_order_relaxed);
    set_.store(true, std::memory_order_relaxed);
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  bool is_set() const { return set_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
  std::atomic<bool> set_{false};
};

/// Fixed-bucket log2 histogram over unsigned 64-bit samples. Bucket 0 holds
/// exact zeros; bucket i (i >= 1) holds values in [2^(i-1), 2^i). Durations
/// are recorded in integer nanoseconds via record_seconds(). Bucket counts
/// are relaxed atomics, so histograms from concurrent workers merge by
/// addition with an order-independent result.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Record a non-negative duration in seconds as integer nanoseconds.
  void record_seconds(double seconds) {
    if (seconds < 0.0) seconds = 0.0;
    record(static_cast<std::uint64_t>(seconds * 1e9));
  }

  /// Bucket index a value lands in: 0 for 0, else 1 + floor(log2 v),
  /// saturating at kBuckets - 1.
  static std::size_t bucket_index(std::uint64_t value) {
    if (value == 0) return 0;
    const std::size_t w = static_cast<std::size_t>(std::bit_width(value));
    return w < kBuckets ? w : kBuckets - 1;
  }

  /// Inclusive lower bound of bucket i (0, 1, 2, 4, 8, ...).
  static std::uint64_t bucket_lower(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// Approximate quantile (q in [0, 1]) by linear interpolation inside the
  /// bucket where the cumulative count crosses q. Exact for bucket 0.
  double quantile(double q) const;

  void merge(const Histogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      buckets_[i].fetch_add(other.bucket_count(i), std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Named-metric container. Lookup registers on first use and returns a
/// reference that stays valid for the registry's lifetime, so hot paths can
/// resolve once and record lock-free afterwards. Iteration is sorted by name
/// (deterministic export order).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Fold another registry in: counters and histograms add (order of merges
  /// is irrelevant to the result), gauges take the operand's value when it
  /// was set. Used to collapse per-worker shard registries.
  void merge(const MetricsRegistry& other);

  /// Sorted-by-name snapshots for the exporter.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace erpd::obs
