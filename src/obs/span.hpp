#pragma once
// RAII stage timer feeding the per-stage histograms (DESIGN.md §11).
//
// A StageSpan measures wall-clock time between construction and stop() (or
// destruction) and records it twice: into the registry's per-stage log2
// histogram (nanosecond samples) and into an optional double* slot, which is
// how the existing FrameTrace / ModuleTimings wall-clock fields are fed
// without a second clock read. A null registry disables histogram recording
// but still fills the slot, so instrumented code needs no branches.
//
// Span taxonomy (the paper's per-module latency decomposition, Fig. 14):
//   stage.fanout   whole sensing+extraction fan-out (all vehicles)
//   stage.sense    one vehicle's simulated LiDAR scan (sensor only)
//   stage.extract  one vehicle's local extraction
//   stage.upload   simulated uplink transfer delay
//   stage.merge    traffic-map merge + server-side detection
//   stage.track    tracking + representative selection + prediction
//   stage.relevance relevance estimation over candidate pairs
//   stage.disseminate dissemination knapsack decision
//   stage.downlink simulated downlink transfer delay
//   stage.e2e      whole simulated frame latency
// (stage.upload / stage.downlink / stage.e2e are simulated latencies, not
// host wall clock; they are recorded via Histogram::record_seconds directly.)

#include <chrono>
#include <string_view>

#include "obs/metrics.hpp"

namespace erpd::obs {

class StageSpan {
 public:
  /// Resolves (and lazily registers) `registry->histogram(stage)`; a null
  /// registry records nothing. `wall_out`, when non-null, receives the
  /// elapsed seconds on stop.
  StageSpan(MetricsRegistry* registry, std::string_view stage,
            double* wall_out = nullptr)
      : hist_(registry != nullptr ? &registry->histogram(stage) : nullptr),
        out_(wall_out),
        start_(std::chrono::steady_clock::now()) {}

  /// Record into an already-resolved histogram (hot paths that cache it).
  explicit StageSpan(Histogram* hist, double* wall_out = nullptr)
      : hist_(hist), out_(wall_out), start_(std::chrono::steady_clock::now()) {}

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

  ~StageSpan() { stop(); }

  /// Stop the span and record. Idempotent; returns the elapsed seconds of
  /// the first stop.
  double stop() {
    if (stopped_) return elapsed_;
    stopped_ = true;
    elapsed_ = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start_)
                   .count();
    if (out_ != nullptr) *out_ = elapsed_;
    if (hist_ != nullptr) hist_->record_seconds(elapsed_);
    return elapsed_;
  }

 private:
  Histogram* hist_{nullptr};
  double* out_{nullptr};
  std::chrono::steady_clock::time_point start_;
  double elapsed_{0.0};
  bool stopped_{false};
};

}  // namespace erpd::obs
