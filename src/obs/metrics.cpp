#include "obs/metrics.hpp"

namespace erpd::obs {

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the requested sample (1-based, ceil so q=1 hits the last one).
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = bucket_count(i);
    if (c == 0) continue;
    if (cum + c >= rank) {
      if (i == 0) return 0.0;
      const double lo = static_cast<double>(bucket_lower(i));
      const double hi = 2.0 * lo;
      const double frac =
          static_cast<double>(rank - cum) / static_cast<double>(c);
      return lo + frac * (hi - lo);
    }
    cum += c;
  }
  return static_cast<double>(bucket_lower(kBuckets - 1)) * 2.0;
}

namespace {

template <typename Map>
auto& find_or_insert(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  return find_or_insert(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  return find_or_insert(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  return find_or_insert(histograms_, name);
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Snapshot the operand's names first so we never hold both locks at once.
  for (const auto& [name, value] : other.counters()) {
    counter(name).add(value);
  }
  for (const auto& [name, h] : other.histograms()) {
    histogram(name).merge(*h);
  }
  std::vector<std::pair<std::string, double>> set_gauges;
  {
    std::lock_guard<std::mutex> lk(other.mu_);
    for (const auto& [name, g] : other.gauges_) {
      if (g->is_set()) set_gauges.emplace_back(name, g->value());
    }
  }
  for (const auto& [name, v] : set_gauges) gauge(name).set(v);
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

}  // namespace erpd::obs
