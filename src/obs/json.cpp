#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "core/check.hpp"

namespace erpd::obs {

void JsonWriter::separator() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_in_container_) out_ += ',';
  if (!stack_.empty()) {
    out_ += '\n';
    indent();
  }
  first_in_container_ = false;
}

void JsonWriter::indent() {
  out_.append(2 * stack_.size(), ' ');
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ += '{';
  stack_.push_back('o');
  first_in_container_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  ERPD_REQUIRE(!stack_.empty() && stack_.back() == 'o' && !after_key_,
               "JsonWriter: end_object without matching begin_object");
  stack_.pop_back();
  if (!first_in_container_) {
    out_ += '\n';
    indent();
  }
  out_ += '}';
  first_in_container_ = false;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ += '[';
  stack_.push_back('a');
  first_in_container_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  ERPD_REQUIRE(!stack_.empty() && stack_.back() == 'a' && !after_key_,
               "JsonWriter: end_array without matching begin_array");
  stack_.pop_back();
  if (!first_in_container_) {
    out_ += '\n';
    indent();
  }
  out_ += ']';
  first_in_container_ = false;
  return *this;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

JsonWriter& JsonWriter::key(std::string_view k) {
  ERPD_REQUIRE(!stack_.empty() && stack_.back() == 'o' && !after_key_,
               "JsonWriter: key() is only valid directly inside an object");
  separator();
  append_escaped(out_, k);
  out_ += ": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separator();
  append_escaped(out_, v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separator();
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; export as null rather than corrupt the doc.
    out_ += "null";
    return *this;
  }
  // Shortest round-trippable decimal: try 15 significant digits, fall back
  // to 17 when that loses bits.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out_ += buf;
  // Keep integral doubles distinguishable from JSON integers.
  if (out_.find_first_of(".eEn", out_.size() - std::strlen(buf)) ==
      std::string::npos) {
    out_ += ".0";
  }
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separator();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separator();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

const std::string& JsonWriter::str() const {
  ERPD_REQUIRE(stack_.empty() && !after_key_,
               "JsonWriter: document has unclosed containers");
  return out_;
}

void append_manifest(JsonWriter& w, const RunManifest& manifest) {
  w.key("manifest").begin_object();
  w.kv("scenario", manifest.scenario);
  w.kv("seed", manifest.seed);
  w.kv("method", manifest.method);
  w.kv("config_fingerprint", manifest.config_fingerprint);
  w.kv("threads", static_cast<std::uint64_t>(manifest.threads));
  w.kv("git_sha", manifest.git_sha);
  w.end_object();
}

void append_registry(JsonWriter& w, const MetricsRegistry& registry) {
  w.key("counters").begin_object();
  for (const auto& [name, v] : registry.counters()) w.kv(name, v);
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, v] : registry.gauges()) w.kv(name, v);
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, h] : registry.histograms()) {
    w.key(name).begin_object();
    w.kv("count", h->count());
    w.kv("sum", h->sum());
    w.kv("mean", h->mean());
    w.kv("p50", h->quantile(0.50));
    w.kv("p95", h->quantile(0.95));
    w.kv("p99", h->quantile(0.99));
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t c = h->bucket_count(i);
      if (c == 0) continue;
      w.begin_array().value(Histogram::bucket_lower(i)).value(c).end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

std::string to_csv(const MetricsRegistry& registry,
                   const RunManifest& manifest) {
  std::string out;
  char buf[256];
  const auto row = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
  };
  row("manifest,scenario,%s\n", manifest.scenario.c_str());
  row("manifest,seed,%llu\n", static_cast<unsigned long long>(manifest.seed));
  row("manifest,method,%s\n", manifest.method.c_str());
  row("manifest,config_fingerprint,%s\n",
      manifest.config_fingerprint.c_str());
  row("manifest,threads,%zu\n", manifest.threads);
  row("manifest,git_sha,%s\n", manifest.git_sha.c_str());
  for (const auto& [name, v] : registry.counters()) {
    row("counter,%s,%llu\n", name.c_str(),
        static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : registry.gauges()) {
    row("gauge,%s,%.17g\n", name.c_str(), v);
  }
  for (const auto& [name, h] : registry.histograms()) {
    row("histogram,%s,%llu,%llu,%.17g,%.17g,%.17g\n", name.c_str(),
        static_cast<unsigned long long>(h->count()),
        static_cast<unsigned long long>(h->sum()), h->mean(),
        h->quantile(0.50), h->quantile(0.95));
  }
  return out;
}

bool write_file(const std::string& path, std::string_view content) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << content;
  return static_cast<bool>(f);
}

}  // namespace erpd::obs
