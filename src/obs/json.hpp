#pragma once
// The single JSON/CSV exporter every metrics-bearing artifact goes through
// (DESIGN.md §11). Bench tools, the scenario harness and tools/metrics_dump
// all build their documents with JsonWriter and stamp them with a
// RunManifest; nothing outside src/obs/ hand-assembles JSON strings.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace erpd::obs {

/// Minimal streaming JSON writer: explicit begin/end for objects and arrays,
/// automatic comma placement, two-space indentation, escaped strings,
/// round-trippable doubles. Misuse (value without key inside an object,
/// unbalanced end) is a ContractViolation in checked builds.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }
#if defined(__APPLE__) || defined(_WIN32)
  JsonWriter& value(std::size_t v) {
    return value(static_cast<std::uint64_t>(v));
  }
#endif

  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// The finished document. Valid once every begin_* has been matched.
  const std::string& str() const;

 private:
  void separator();
  void indent();

  std::string out_;
  /// One entry per open container: 'o' for object, 'a' for array.
  std::vector<char> stack_;
  bool first_in_container_{true};
  bool after_key_{false};
};

/// "manifest": {...} — call with the writer positioned inside an object.
void append_manifest(JsonWriter& w, const RunManifest& manifest);

/// "counters": {...}, "gauges": {...}, "histograms": {...} — sorted by name;
/// histograms carry count/sum/mean/p50/p95 and the non-empty buckets as
/// [lower_bound, count] pairs.
void append_registry(JsonWriter& w, const MetricsRegistry& registry);

/// Flat CSV rendering of manifest + registry:
///   manifest,<key>,<value>
///   counter,<name>,<value>
///   gauge,<name>,<value>
///   histogram,<name>,<count>,<sum>,<mean>,<p50>,<p95>
std::string to_csv(const MetricsRegistry& registry,
                   const RunManifest& manifest);

/// Write `content` to `path`, truncating; false on I/O failure.
bool write_file(const std::string& path, std::string_view content);

}  // namespace erpd::obs
