#pragma once
// Run provenance attached to every metrics export (DESIGN.md §11).
//
// A RunManifest answers "what produced these numbers": scenario, seed,
// method, a fingerprint of the effective configuration, the worker count and
// the source revision. Exports without a manifest are not comparable across
// machines or commits, which is how bench trajectories silently rot.

#include <cstdint>
#include <string>
#include <string_view>

#include "core/rng.hpp"

namespace erpd::obs {

struct RunManifest {
  /// Scenario or workload name (e.g. "unprotected_left_turn").
  std::string scenario;
  /// Base scenario seed (first seed for multi-seed sweeps).
  std::uint64_t seed{0};
  /// Evaluated method, or a sweep label like "Ours+EMP" for multi-method
  /// exports.
  std::string method;
  /// Hex fingerprint of the effective run configuration (see Fingerprint).
  std::string config_fingerprint;
  /// Worker count of the global thread pool during the run.
  std::size_t threads{0};
  /// Source revision the binary was configured from ("unknown" outside git).
  std::string git_sha;
};

/// Configure-time git revision baked into the library ("unknown" when the
/// source tree was not a git checkout). Best-effort provenance: it goes
/// stale only until the next CMake configure.
std::string_view build_git_sha();

/// Order-sensitive 64-bit config hasher built on the splitmix64 mixer.
/// Callers fold every configuration value that could change behavior; equal
/// fingerprints then certify comparable runs.
class Fingerprint {
 public:
  Fingerprint& fold(std::uint64_t v) {
    h_ = core::seed_mix(h_, v);
    return *this;
  }
  Fingerprint& fold(std::int64_t v) {
    return fold(static_cast<std::uint64_t>(v));
  }
  Fingerprint& fold(int v) { return fold(static_cast<std::uint64_t>(v)); }
  Fingerprint& fold(bool v) { return fold(std::uint64_t{v ? 1u : 0u}); }
  Fingerprint& fold(double v);
  Fingerprint& fold(std::string_view s);

  std::uint64_t value() const { return h_; }
  /// "0x%016x" rendering for manifests.
  std::string hex() const;

 private:
  std::uint64_t h_{0x0b5e55ull};  // arbitrary non-zero start
};

}  // namespace erpd::obs
