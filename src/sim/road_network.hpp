#pragma once
// Road network: a signalized 4-way intersection with multi-lane arms,
// crosswalks and turn routes.
//
// This is the HD-map substrate the paper assumes at the edge server
// (refs [29], [30]): it exposes lane geometry (for Rule 1 leader election),
// the crosswalk boundary (Rule 2) and crosswalk polylines for pedestrians.
//
// Geometry convention: intersection center at the origin; arms extend along
// the compass axes (N = +y, E = +x, S = -y, W = -x); right-hand traffic.

#include <optional>
#include <vector>

#include "core/check.hpp"
#include "geom/aabb.hpp"
#include "geom/polyline.hpp"
#include "geom/vec2.hpp"
#include "sim/types.hpp"

namespace erpd::sim {

struct RoadConfig {
  double lane_width{3.5};
  int lanes_per_direction{2};
  double arm_length{120.0};
  /// Extra clearance between the intersection box edge and the stop line.
  double stopline_setback{4.0};
  /// Crosswalk center distance beyond the intersection box edge.
  double crosswalk_offset{1.8};
  /// Sampling step for turn curves (meters).
  double curve_step{1.0};
};

/// An approach lane: (arm, lane index). Lane 0 is the innermost (leftmost)
/// lane; lane lanes_per_direction-1 is the outermost (rightmost).
struct LaneRef {
  Arm arm{Arm::kNorth};
  int lane{0};
  bool operator==(const LaneRef&) const = default;
};

/// A complete path through the intersection.
struct Route {
  int id{0};
  Arm entry_arm{Arm::kNorth};
  int entry_lane{0};
  Maneuver maneuver{Maneuver::kStraight};
  Arm exit_arm{Arm::kSouth};
  geom::Polyline path;
  /// Arc length of the stop line along `path`.
  double stop_line_s{0.0};
  /// Arc length where the path enters / exits the intersection box.
  double box_entry_s{0.0};
  double box_exit_s{0.0};

  LaneRef entry_lane_ref() const { return {entry_arm, entry_lane}; }
};

struct Crosswalk {
  Arm arm{Arm::kNorth};
  /// Walking path across the road (sidewalk to sidewalk).
  geom::Polyline path;
};

/// Fixed-cycle two-phase signal: north-south green, then east-west green,
/// with yellow and all-red intervals.
class SignalController {
 public:
  struct Timing {
    double green{20.0};
    double yellow{3.0};
    double all_red{2.0};
  };

  enum class Light : std::uint8_t { kGreen, kYellow, kRed };

  SignalController() = default;
  explicit SignalController(Timing t) : t_(t) {}

  double cycle_length() const {
    return 2.0 * (t_.green + t_.yellow + t_.all_red);
  }

  Light state(Arm arm, double time) const;

  /// Seconds until `arm` next turns green (0 if already green).
  double time_to_green(Arm arm, double time) const;

 private:
  Timing t_{};
};

class RoadNetwork {
 public:
  explicit RoadNetwork(RoadConfig cfg = {});

  const RoadConfig& config() const { return cfg_; }

  /// Half-extent of the square intersection box (Rule 2 red boundary).
  double box_half() const { return box_half_; }
  geom::Aabb intersection_box() const;
  bool in_intersection(geom::Vec2 p) const;

  /// Distance from intersection center to the stop line along an arm.
  double stop_line_distance() const { return stop_line_dist_; }

  const std::vector<Route>& routes() const { return routes_; }
  const Route& route(int id) const {
    ERPD_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < routes_.size(),
                 "RoadNetwork::route: id ", id, " out of range [0, ",
                 routes_.size(), ")");
    return routes_[static_cast<std::size_t>(id)];
  }

  /// Routes entering from a given approach lane.
  std::vector<int> routes_from(LaneRef lane) const;

  /// The route for (arm, lane, maneuver), if the lane permits that maneuver.
  std::optional<int> find_route(Arm entry, int lane, Maneuver m) const;

  const std::vector<Crosswalk>& crosswalks() const { return crosswalks_; }
  const Crosswalk& crosswalk(Arm arm) const;

  /// Outward unit direction of an arm.
  static geom::Vec2 arm_direction(Arm a);
  static Arm opposite(Arm a);
  /// Exit arm for a maneuver entered from `entry`.
  static Arm exit_arm(Arm entry, Maneuver m);

 private:
  RoadConfig cfg_;
  double box_half_{0.0};
  double stop_line_dist_{0.0};
  std::vector<Route> routes_;
  std::vector<Crosswalk> crosswalks_;

  void build_routes();
  void build_crosswalks();
  geom::Polyline build_path(Arm entry, int lane, Maneuver m) const;
};

}  // namespace erpd::sim
