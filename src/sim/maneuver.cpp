#include "sim/maneuver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.hpp"
#include "sim/agent.hpp"

namespace erpd::sim {

const char* to_string(ManeuverState s) {
  switch (s) {
    case ManeuverState::kFollowLane: return "follow_lane";
    case ManeuverState::kStopAtLine: return "stop_at_line";
    case ManeuverState::kChangeLaneLeft: return "change_lane_left";
    case ManeuverState::kChangeLaneRight: return "change_lane_right";
  }
  return "?";
}

void ManeuverConfig::validate() const {
  ERPD_REQUIRE(lane_change_duration > 0.0,
               "ManeuverConfig: lane_change_duration must be > 0, got ",
               lane_change_duration);
  ERPD_REQUIRE(min_lead_gap >= 0.0,
               "ManeuverConfig: min_lead_gap must be >= 0, got ", min_lead_gap);
  ERPD_REQUIRE(min_lag_gap >= 0.0,
               "ManeuverConfig: min_lag_gap must be >= 0, got ", min_lag_gap);
  ERPD_REQUIRE(gap_time_headway >= 0.0,
               "ManeuverConfig: gap_time_headway must be >= 0, got ",
               gap_time_headway);
  ERPD_REQUIRE(abort_after > 0.0,
               "ManeuverConfig: abort_after must be > 0, got ", abort_after);
  ERPD_REQUIRE(stop_line_clearance >= 0.0,
               "ManeuverConfig: stop_line_clearance must be >= 0, got ",
               stop_line_clearance);
}

bool gap_acceptable(const ManeuverConfig& cfg, double my_speed,
                    const GapObservation& gap) {
  const double need_lead = cfg.min_lead_gap + cfg.gap_time_headway * my_speed;
  const double need_lag = cfg.min_lag_gap + cfg.gap_time_headway * gap.lag_speed;
  return gap.lead_gap >= need_lead && gap.lag_gap >= need_lag;
}

ManeuverPlanner::ManeuverPlanner(ManeuverConfig cfg) : cfg_(cfg) {
  cfg_.validate();
}

namespace {

/// The signal-stop decision control_vehicle applies: red always stops, yellow
/// stops when the vehicle can still comfortably brake to the line.
bool must_stop_at_signal(const Vehicle& v, const Route& route,
                         const SignalController& signals, double now) {
  if (v.params().runs_red_light || v.s() >= route.stop_line_s) return false;
  const auto light = signals.state(route.entry_arm, now);
  if (light == SignalController::Light::kRed) return true;
  if (light != SignalController::Light::kYellow) return false;
  const double dist = route.stop_line_s - v.s();
  const double comfort_stop =
      v.speed() * v.speed() / (2.0 * v.params().idm.comfort_decel);
  return dist > comfort_stop;
}

}  // namespace

std::optional<int> ManeuverPlanner::target_route(const Vehicle& v,
                                                 const RoadNetwork& net,
                                                 int direction) const {
  const Route& cur = net.route(v.route_id());
  const int lane = cur.entry_lane + direction;
  if (lane < 0 || lane >= net.config().lanes_per_direction) return std::nullopt;
  // Prefer keeping the planned intersection maneuver; fall back to whatever
  // the target lane permits, in a fixed (deterministic) preference order.
  for (const Maneuver m :
       {cur.maneuver, Maneuver::kStraight, Maneuver::kRight, Maneuver::kLeft}) {
    if (const auto id = net.find_route(cur.entry_arm, lane, m)) return *id;
  }
  return std::nullopt;
}

GapObservation ManeuverPlanner::observe_gaps(const Vehicle& v,
                                             const RoadNetwork& net,
                                             const std::vector<Vehicle>& fleet,
                                             const Route& target) const {
  GapObservation gap;
  gap.lead_gap = std::numeric_limits<double>::infinity();
  gap.lag_gap = std::numeric_limits<double>::infinity();
  const double my_s = target.path.project(v.position(net));
  const double half_len = 0.5 * v.params().dims.length;
  for (const Vehicle& other : fleet) {
    if (other.id() == v.id() || other.finished(net)) continue;
    double lateral = 0.0;
    const double s_other = target.path.project(other.position(net), &lateral);
    if (lateral > net.config().lane_width * 0.5) continue;
    const double center_gap = s_other - my_s;
    const double bumper_gap =
        std::abs(center_gap) - half_len - 0.5 * other.params().dims.length;
    if (center_gap >= 0.0) {
      if (bumper_gap < gap.lead_gap) gap.lead_gap = bumper_gap;
    } else if (bumper_gap < gap.lag_gap) {
      gap.lag_gap = bumper_gap;
      gap.lag_speed = other.speed();
    }
  }
  return gap;
}

void ManeuverPlanner::update(Vehicle& v, const RoadNetwork& net,
                             const std::vector<Vehicle>& fleet,
                             const SignalController& signals,
                             double now) const {
  ManeuverStatus& st = v.maneuver();
  const Route& route = net.route(v.route_id());

  switch (st.state) {
    case ManeuverState::kFollowLane: {
      if (must_stop_at_signal(v, route, signals, now)) {
        st.state = ManeuverState::kStopAtLine;
        break;
      }
      // Arm a pending lane change once the directive's trigger arc is
      // reached, provided there is still room before the stop line and the
      // target lane can host a route.
      if (st.desired_direction != 0 && v.s() >= st.trigger_s &&
          v.s() + cfg_.stop_line_clearance < route.stop_line_s) {
        if (target_route(v, net, st.desired_direction).has_value()) {
          st.state = st.desired_direction < 0 ? ManeuverState::kChangeLaneLeft
                                              : ManeuverState::kChangeLaneRight;
          st.waiting_since = now;
        } else {
          // Directive is unsatisfiable from this lane: drop it.
          st.desired_direction = 0;
          ++st.aborted_changes;
        }
      }
      break;
    }

    case ManeuverState::kStopAtLine: {
      if (!must_stop_at_signal(v, route, signals, now)) {
        st.state = ManeuverState::kFollowLane;
      }
      break;
    }

    case ManeuverState::kChangeLaneLeft:
    case ManeuverState::kChangeLaneRight: {
      // An executing change (offset still blending) just rides until done.
      if (st.desired_direction == 0) {
        if (v.lateral_offset() == 0.0) {  // lint-ok: R6 exact-inert gate
          st.state = ManeuverState::kFollowLane;
        }
        break;
      }
      const auto target_id = target_route(v, net, st.desired_direction);
      // Out of room before the stop line (or the target evaporated): abort
      // back to lane keeping.
      if (!target_id.has_value() ||
          v.s() + cfg_.stop_line_clearance >= route.stop_line_s ||
          now - st.waiting_since > cfg_.abort_after) {
        st.desired_direction = 0;
        st.waiting_since = -1.0;
        st.state = ManeuverState::kFollowLane;
        ++st.aborted_changes;
        break;
      }
      const Route& target = net.route(*target_id);
      const GapObservation gap = observe_gaps(v, net, fleet, target);
      if (gap_acceptable(cfg_, v.speed(), gap)) {
        const double new_s = target.path.project(v.position(net));
        v.begin_lane_change(net, *target_id, new_s,
                            cfg_.lane_change_duration);
        st.desired_direction = 0;
        st.waiting_since = -1.0;
        ++st.completed_changes;
        // Stay in the change state while the lateral blend runs; the
        // offset==0 check above returns the machine to kFollowLane.
      }
      break;
    }
  }
}

}  // namespace erpd::sim
