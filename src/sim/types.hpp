#pragma once
// Shared simulator types and unit helpers.

#include <cstdint>
#include <string>

namespace erpd::sim {

using AgentId = std::int32_t;
inline constexpr AgentId kInvalidAgent = -1;

enum class AgentKind : std::uint8_t { kCar, kTruck, kPedestrian };

inline const char* to_string(AgentKind k) {
  switch (k) {
    case AgentKind::kCar: return "car";
    case AgentKind::kTruck: return "truck";
    case AgentKind::kPedestrian: return "pedestrian";
  }
  return "?";
}

/// Compass arm of the intersection, used to name approaches.
enum class Arm : std::uint8_t { kNorth = 0, kEast = 1, kSouth = 2, kWest = 3 };
inline constexpr int kArmCount = 4;

inline const char* to_string(Arm a) {
  switch (a) {
    case Arm::kNorth: return "N";
    case Arm::kEast: return "E";
    case Arm::kSouth: return "S";
    case Arm::kWest: return "W";
  }
  return "?";
}

enum class Maneuver : std::uint8_t { kStraight, kLeft, kRight };

inline const char* to_string(Maneuver m) {
  switch (m) {
    case Maneuver::kStraight: return "straight";
    case Maneuver::kLeft: return "left";
    case Maneuver::kRight: return "right";
  }
  return "?";
}

constexpr double kmh_to_ms(double kmh) { return kmh / 3.6; }
constexpr double ms_to_kmh(double ms) { return ms * 3.6; }
constexpr double mph_to_ms(double mph) { return mph * 0.44704; }
constexpr double ms_to_mph(double ms) { return ms / 0.44704; }

/// Default footprints (meters): length x width x height.
struct BodyDims {
  double length{4.5};
  double width{1.9};
  double height{1.6};
};

inline BodyDims default_dims(AgentKind k) {
  switch (k) {
    case AgentKind::kCar: return {4.5, 1.9, 1.6};
    case AgentKind::kTruck: return {8.5, 2.5, 3.4};
    case AgentKind::kPedestrian: return {0.5, 0.5, 1.75};
  }
  return {};
}

}  // namespace erpd::sim
