#pragma once
// The simulated world: road network + signals + agents + static scenery.
//
// World::step advances all agents by one tick. Vehicle control mirrors the
// paper's evaluation setup: a default microscopic controller (IDM, standing
// in for CARLA's autopilot) plus a "simple logic to simulate human drivers'
// reactions" — a driver becomes aware of a hazard either by seeing it
// (line-of-sight) or by receiving disseminated perception data, and brakes
// hard one reaction time later if the hazard is on a conflicting course.
// Followers perceive their leader's *speed* with the same reaction delay,
// which is what makes sudden leader braking dangerous (paper §III-A.2).

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "sim/agent.hpp"
#include "sim/lidar.hpp"
#include "sim/maneuver.hpp"
#include "sim/road_network.hpp"
#include "sim/types.hpp"

namespace erpd::sim {

struct WorldConfig {
  double dt{0.1};
  /// LiDAR mount height above ground (roof).
  double sensor_height{1.9};
  /// Perception range for both LiDAR and driver line-of-sight (meters).
  double sensor_range{50.0};
  /// How far ahead (seconds) drivers project hazards.
  double hazard_horizon{6.0};
  /// Passing-time difference below which a crossing is a conflict (seconds).
  double conflict_margin{2.5};
  /// Leader search distance along the route (meters).
  double leader_lookahead{60.0};
  /// Force-override: when true, even inattentive vehicles react to hazards
  /// they can see. Per-vehicle behaviour is VehicleParams::attentive; the
  /// scripted conflict vehicles are inattentive so that (per the paper's
  /// setup, §IV-C.1) only disseminated perception data makes them brake.
  bool react_to_visible_hazards{false};
  SignalController::Timing signal{};
  LidarConfig lidar{};
  /// Maneuver layer above car_following (DESIGN.md §15). Disabled by
  /// default: the planner never runs and behavior is bit-identical to the
  /// pre-maneuver simulator.
  ManeuverConfig maneuver{};
  std::uint64_t seed{1};
};

struct CollisionEvent {
  AgentId a{kInvalidAgent};
  AgentId b{kInvalidAgent};
  double time{0.0};
  geom::Vec2 position{};
};

/// World-truth snapshot of one agent (consumed by metrics and by the edge
/// modules when they need ground truth for scoring).
struct AgentSnapshot {
  AgentId id{kInvalidAgent};
  AgentKind kind{AgentKind::kCar};
  geom::Vec2 position{};
  double heading{0.0};
  geom::Vec2 velocity{};
  BodyDims dims{};
  bool connected{false};
  bool parked{false};
};

class World {
 public:
  World(RoadNetwork network, WorldConfig cfg);

  const RoadNetwork& network() const { return net_; }
  const SignalController& signals() const { return signals_; }
  const WorldConfig& config() const { return cfg_; }
  double time() const { return time_; }
  std::mt19937_64& rng() { return rng_; }

  AgentId add_vehicle(const VehicleParams& params, int route_id,
                      double start_s, double start_speed);
  AgentId add_pedestrian(const PedestrianParams& params, geom::Polyline path,
                         double start_s = 0.0);

  /// Deferred spawn: the vehicle materializes at the first step() with
  /// time >= spawn_time whose spawn spot is clear (a blocked spawn retries
  /// next tick). The id is assigned now, so ids are a pure function of the
  /// add/schedule call sequence regardless of when spawns land. An optional
  /// lane-change directive arms the maneuver layer for this vehicle.
  AgentId schedule_vehicle(double spawn_time, const VehicleParams& params,
                           int route_id, double start_s, double start_speed,
                           int lane_change_direction = 0,
                           double lane_change_trigger_s = 0.0);
  /// Vehicles scheduled but not yet materialized.
  std::size_t pending_vehicles() const { return pending_.size(); }
  /// Static scenery (buildings, barriers): occludes LiDAR and sight.
  void add_static_obstacle(const geom::Obb& footprint, double height);

  const std::vector<Vehicle>& vehicles() const { return vehicles_; }
  std::vector<Vehicle>& vehicles() { return vehicles_; }
  const std::vector<Pedestrian>& pedestrians() const { return pedestrians_; }

  Vehicle* find_vehicle(AgentId id);
  const Vehicle* find_vehicle(AgentId id) const;
  const Pedestrian* find_pedestrian(AgentId id) const;

  /// Advance the world by one tick (cfg.dt).
  void step();

  // --- Perception support -------------------------------------------------

  /// All LiDAR-visible prisms except the viewer itself.
  std::vector<LidarTarget> lidar_targets(AgentId exclude = kInvalidAgent) const;

  /// Ray-cast LiDAR scan from a vehicle's roof sensor. Noise is seeded
  /// per (world seed, vehicle, tick), so concurrent scans from different
  /// vehicles are independent and deterministic.
  LidarScan scan_from(AgentId vehicle_id) const;

  /// Driver/sensor line-of-sight check (range + occlusion).
  bool agent_visible_from(AgentId viewer, AgentId target) const;

  /// Edge-server dissemination entry point: hand perception data about
  /// `hazard` to `vehicle`. The driver reacts one reaction time later.
  void notify_vehicle(AgentId vehicle, AgentId hazard);

  // --- Metrics -------------------------------------------------------------

  const std::vector<CollisionEvent>& collisions() const { return collisions_; }
  bool agent_crashed(AgentId id) const;

  /// Minimum distance ever observed between the two agents (inf if never
  /// both present). Tracks vehicle-vehicle and vehicle-pedestrian pairs.
  double min_pair_distance(AgentId a, AgentId b) const;
  /// Minimum over all vehicle pairs ever observed.
  double min_vehicle_distance() const { return global_min_distance_; }
  /// Minimum over all (vehicle, pedestrian) pairs ever observed (inf if no
  /// pedestrian ever shared a frame with a vehicle). Near-miss metric for
  /// the scenario-search harness.
  double min_vehicle_pedestrian_distance() const {
    return global_min_ped_distance_;
  }

  std::vector<AgentSnapshot> snapshot() const;

  /// True once a vehicle has traversed the intersection box.
  bool passed_intersection(AgentId vehicle_id) const;

 private:
  RoadNetwork net_;
  WorldConfig cfg_;
  SignalController signals_;
  LidarSensor lidar_;
  // detlint: D2 the world's single sequential stream (agent spawning and
  // other strictly-ordered draws); seeded once from WorldConfig::seed via
  // core::seeded_rng in the constructor. Concurrent stages never touch it —
  // they derive per-unit SplitMix64 streams instead.
  std::mt19937_64 rng_;
  double time_{0.0};
  AgentId next_id_{0};

  std::vector<Vehicle> vehicles_;
  std::vector<Pedestrian> pedestrians_;
  struct StaticObstacle {
    geom::Obb footprint;
    double height;
  };
  std::vector<StaticObstacle> statics_;

  /// Deferred spawns, processed in schedule order at the top of step().
  struct PendingVehicle {
    double spawn_time;
    VehicleParams params;
    int route_id;
    double start_s;
    double start_speed;
    AgentId id;
    int lane_change_direction;
    double lane_change_trigger_s;
  };
  std::vector<PendingVehicle> pending_;
  ManeuverPlanner maneuver_planner_;

  std::vector<CollisionEvent> collisions_;
  /// Ordered by pair key (detlint D1): metrics consumers may enumerate the
  /// observed pairs, and an ordered container keeps any such walk — and the
  /// safety numbers derived from it — independent of hash-bucket layout.
  /// The per-tick O(pairs) keyed lookups are cheap at fleet sizes where the
  /// O(n^2) pair update is itself affordable.
  std::map<std::uint64_t, double> pair_min_dist_;
  double global_min_distance_{std::numeric_limits<double>::infinity()};

  /// Recent speed history per vehicle for delayed-perception following.
  /// Ordered by AgentId (detlint D1), as above.
  std::map<AgentId, std::deque<std::pair<double, double>>> speed_hist_;
  /// Recent car-following acceleration commands per vehicle. Inattentive
  /// drivers apply the command computed one reaction time ago (classical
  /// human output delay), which is what makes them rear-end a hard-braking
  /// leader from a short gap (paper §III-A.2).
  std::map<AgentId, std::deque<std::pair<double, double>>>
      follow_accel_hist_;

  /// Geometric conflict between a vehicle's route and a hazard's projected
  /// path.
  struct ConflictInfo {
    /// Absolute arc length (on the vehicle's route) of the conflict point.
    double s_conflict{0.0};
    /// Nominal times for the vehicle / hazard to reach it (seconds).
    double t_me{0.0};
    double t_hazard{0.0};
  };

  double global_min_ped_distance_{std::numeric_limits<double>::infinity()};

  double control_vehicle(Vehicle& v);
  void materialize_pending_spawns();
  std::optional<std::size_t> find_leader(std::size_t vi) const;
  double delayed_speed(AgentId id, double delay) const;
  /// Crossing between the vehicle's path ahead and the hazard's projected
  /// path, if any. Purely geometric; activation/latching policy lives in
  /// control_vehicle.
  std::optional<ConflictInfo> hazard_conflict(const Vehicle& me,
                                              AgentId hazard_id) const;
  void sense_hazards();
  void detect_collisions();
  void update_pair_distances();
  static std::uint64_t pair_key(AgentId a, AgentId b);
};

}  // namespace erpd::sim
