#include "sim/scenario_gen.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <random>
#include <type_traits>
#include <utility>

#include "core/check.hpp"
#include "core/rng.hpp"

namespace erpd::sim {

using geom::Polyline;
using geom::Vec2;

namespace {

// Domain-separation constant folded into the scenario seed so the generator
// stream never collides with the world's own per-seed streams.
constexpr std::uint64_t kGenStream = 0x5ce7a810c0ffee01ull;

// Generated specs are defined over the default road geometry; the builder
// and the validator both pin this so a committed anchor can never silently
// re-interpret its lane indices against a different map.
RoadConfig spec_road_config() { return RoadConfig{}; }

VehicleParams spawn_params(const SpawnSpec& sp) {
  VehicleParams p;
  p.kind = sp.kind;
  p.dims = default_dims(sp.kind);
  p.idm.desired_speed = sp.desired_speed;
  p.connected = sp.connected;
  return p;
}

VehicleParams occluder_params(const OccluderSpec& oc) {
  VehicleParams p;
  p.kind = AgentKind::kTruck;
  p.dims = default_dims(AgentKind::kTruck);
  p.dims.length = oc.length;
  p.parked = true;
  return p;
}

/// Crossing pedestrians walk the arm's crosswalk, optionally reversed, with
/// the start extended back onto the sidewalk by 4 m plus the spec's lead-in
/// offset — that is what staggers when each one steps into the roadway.
Polyline crossing_path(const RoadNetwork& net, const PedSpec& pd) {
  const Polyline& cw = net.crosswalk(pd.arm).path;
  std::vector<Vec2> pts;
  pts.reserve(cw.points().size() + 1);
  if (pd.reverse) {
    const Vec2 end = cw.points().back();
    const Vec2 dir = (cw.points().front() - end).normalized();
    pts.push_back(end - dir * (4.0 + pd.start_offset));
    for (auto it = cw.points().rbegin(); it != cw.points().rend(); ++it) {
      pts.push_back(*it);
    }
  } else {
    const Vec2 start = cw.points().front();
    const Vec2 dir = (cw.points().back() - start).normalized();
    pts.push_back(start - dir * (4.0 + pd.start_offset));
    for (const Vec2& p : cw.points()) pts.push_back(p);
  }
  return Polyline{std::move(pts)};
}

/// Sidewalk pedestrians walk parallel to the arm between curb and facades
/// (pipeline load only; they never enter the roadway).
Polyline sidewalk_path(const RoadNetwork& net, const PedSpec& pd) {
  const double road_half =
      net.config().lanes_per_direction * net.config().lane_width;
  const double sidewalk = road_half + 3.8;
  const Vec2 u = RoadNetwork::arm_direction(pd.arm);
  const Vec2 perp = u.perp() * (pd.east_side ? 1.0 : -1.0);
  Vec2 a = u * (12.0 + pd.start_offset) + perp * sidewalk;
  Vec2 b = u * 70.0 + perp * sidewalk;
  if (pd.reverse) std::swap(a, b);
  return Polyline{{a, b}};
}

}  // namespace

void GenConfig::validate() const {
  ERPD_REQUIRE(min_vehicles >= 0 && max_vehicles >= min_vehicles &&
                   max_vehicles <= 500,
               "GenConfig: vehicle range [", min_vehicles, ", ", max_vehicles,
               "] must satisfy 0 <= min <= max <= 500");
  ERPD_REQUIRE(std::isfinite(min_speed_kmh) && std::isfinite(max_speed_kmh) &&
                   min_speed_kmh > 0.0 && max_speed_kmh >= min_speed_kmh &&
                   max_speed_kmh <= 120.0,
               "GenConfig: speed range [", min_speed_kmh, ", ", max_speed_kmh,
               "] km/h must satisfy 0 < min <= max <= 120");
  ERPD_REQUIRE(std::isfinite(min_connected) && std::isfinite(max_connected) &&
                   min_connected >= 0.0 && max_connected >= min_connected &&
                   max_connected <= 1.0,
               "GenConfig: connected range [", min_connected, ", ",
               max_connected, "] must satisfy 0 <= min <= max <= 1");
  ERPD_REQUIRE(max_pedestrians >= 0 && max_pedestrians <= 200,
               "GenConfig: max_pedestrians must be in [0, 200], got ",
               max_pedestrians);
  ERPD_REQUIRE(max_occluders >= 0 && max_occluders <= 50,
               "GenConfig: max_occluders must be in [0, 50], got ",
               max_occluders);
  ERPD_REQUIRE(std::isfinite(max_spawn_time) && max_spawn_time > 0.0 &&
                   max_spawn_time <= 60.0,
               "GenConfig: max_spawn_time must be in (0, 60], got ",
               max_spawn_time);
  ERPD_REQUIRE(std::isfinite(lane_change_fraction) &&
                   lane_change_fraction >= 0.0 && lane_change_fraction <= 1.0,
               "GenConfig: lane_change_fraction must be in [0, 1], got ",
               lane_change_fraction);
  ERPD_REQUIRE(std::isfinite(duration) && duration > 0.0 && duration <= 600.0,
               "GenConfig: duration must be in (0, 600], got ", duration);
  ERPD_REQUIRE(std::isfinite(min_green) && std::isfinite(max_green) &&
                   min_green >= 4.0 && max_green >= min_green &&
                   max_green <= 120.0,
               "GenConfig: green range [", min_green, ", ", max_green,
               "] must satisfy 4 <= min <= max <= 120");
}

void ScenarioSpec::validate(const RoadNetwork& net) const {
  ERPD_REQUIRE(std::isfinite(duration) && duration > 0.0 && duration <= 600.0,
               "ScenarioSpec: duration must be in (0, 600], got ", duration);
  ERPD_REQUIRE(std::isfinite(signal.green) && signal.green >= 4.0 &&
                   std::isfinite(signal.yellow) && signal.yellow >= 0.0 &&
                   std::isfinite(signal.all_red) && signal.all_red >= 0.0,
               "ScenarioSpec: bad signal timing g=", signal.green,
               " y=", signal.yellow, " r=", signal.all_red);
  maneuver.validate();
  const int lanes = net.config().lanes_per_direction;
  for (const SpawnSpec& sp : spawns) {
    ERPD_REQUIRE(std::isfinite(sp.time) && sp.time >= 0.0 && sp.time <= 3600.0,
                 "ScenarioSpec: spawn time must be in [0, 3600], got ",
                 sp.time);
    ERPD_REQUIRE(sp.lane >= 0 && sp.lane < lanes,
                 "ScenarioSpec: spawn lane ", sp.lane, " out of [0, ", lanes,
                 ")");
    const std::optional<int> route = net.find_route(sp.arm, sp.lane,
                                                    sp.maneuver);
    ERPD_REQUIRE(route.has_value(), "ScenarioSpec: no route from arm ",
                 to_string(sp.arm), " lane ", sp.lane, " maneuver ",
                 to_string(sp.maneuver));
    const double len = net.route(*route).path.length();
    ERPD_REQUIRE(std::isfinite(sp.start_s) && sp.start_s >= 4.0 &&
                     sp.start_s <= len,
                 "ScenarioSpec: spawn s=", sp.start_s, " outside [4, ", len,
                 "] on route ", *route);
    ERPD_REQUIRE(std::isfinite(sp.desired_speed) && sp.desired_speed > 0.0 &&
                     sp.desired_speed <= 70.0,
                 "ScenarioSpec: desired_speed must be in (0, 70] m/s, got ",
                 sp.desired_speed);
    ERPD_REQUIRE(std::isfinite(sp.start_speed) && sp.start_speed >= 0.0 &&
                     sp.start_speed <= 70.0,
                 "ScenarioSpec: start_speed must be in [0, 70] m/s, got ",
                 sp.start_speed);
    ERPD_REQUIRE(sp.lane_change >= -1 && sp.lane_change <= 1,
                 "ScenarioSpec: lane_change must be -1/0/1, got ",
                 sp.lane_change);
    ERPD_REQUIRE(std::isfinite(sp.lane_change_trigger_s) &&
                     sp.lane_change_trigger_s >= 0.0,
                 "ScenarioSpec: lane_change_trigger_s must be >= 0, got ",
                 sp.lane_change_trigger_s);
  }
  for (const OccluderSpec& oc : occluders) {
    ERPD_REQUIRE(oc.lane >= 0 && oc.lane < lanes,
                 "ScenarioSpec: occluder lane ", oc.lane, " out of [0, ",
                 lanes, ")");
    const std::optional<int> route = net.find_route(oc.arm, oc.lane,
                                                    oc.maneuver);
    ERPD_REQUIRE(route.has_value(), "ScenarioSpec: no occluder route from arm ",
                 to_string(oc.arm), " lane ", oc.lane, " maneuver ",
                 to_string(oc.maneuver));
    const double len = net.route(*route).path.length();
    ERPD_REQUIRE(std::isfinite(oc.s) && oc.s >= 4.0 && oc.s <= len,
                 "ScenarioSpec: occluder s=", oc.s, " outside [4, ", len, "]");
    ERPD_REQUIRE(std::isfinite(oc.length) && oc.length > 0.0 &&
                     oc.length <= 20.0,
                 "ScenarioSpec: occluder length must be in (0, 20], got ",
                 oc.length);
  }
  for (const PedSpec& pd : pedestrians) {
    ERPD_REQUIRE(std::isfinite(pd.start_offset) && pd.start_offset >= 0.0 &&
                     pd.start_offset <= 50.0,
                 "ScenarioSpec: ped start_offset must be in [0, 50], got ",
                 pd.start_offset);
    ERPD_REQUIRE(std::isfinite(pd.walk_speed) && pd.walk_speed > 0.0 &&
                     pd.walk_speed <= 5.0,
                 "ScenarioSpec: ped walk_speed must be in (0, 5], got ",
                 pd.walk_speed);
  }
  if (expect.present) {
    ERPD_REQUIRE(expect.collisions >= 0,
                 "ScenarioSpec: expected collisions must be >= 0, got ",
                 expect.collisions);
    ERPD_REQUIRE(!std::isnan(expect.min_vehicle_gap) &&
                     !std::isnan(expect.min_ped_gap) &&
                     expect.min_vehicle_gap >= 0.0 && expect.min_ped_gap >= 0.0,
                 "ScenarioSpec: expected gaps must be >= 0 (inf allowed)");
  }
}

ScenarioSpec generate_scenario(const GenConfig& cfg, std::uint64_t seed) {
  cfg.validate();
  const RoadNetwork net{spec_road_config()};
  const int lanes = net.config().lanes_per_direction;

  std::mt19937_64 rng = core::seeded_rng(core::seed_mix(seed, kGenStream));

  ScenarioSpec spec;
  spec.seed = seed;
  spec.duration = cfg.duration;
  spec.maneuver.enabled = true;

  // Scenario-level scalars first, in a fixed draw order: the whole spec is a
  // pure function of (cfg, seed).
  spec.signal.green =
      std::uniform_real_distribution<double>(cfg.min_green, cfg.max_green)(rng);
  spec.signal.yellow = std::uniform_real_distribution<double>(2.5, 3.5)(rng);
  spec.signal.all_red = std::uniform_real_distribution<double>(1.0, 2.5)(rng);
  const double speed = kmh_to_ms(std::uniform_real_distribution<double>(
      cfg.min_speed_kmh, cfg.max_speed_kmh)(rng));
  const double connected_fraction = std::uniform_real_distribution<double>(
      cfg.min_connected, cfg.max_connected)(rng);
  const int n_vehicles = std::uniform_int_distribution<int>(
      cfg.min_vehicles, cfg.max_vehicles)(rng);
  const int n_peds =
      std::uniform_int_distribution<int>(0, cfg.max_pedestrians)(rng);
  const int n_occluders =
      std::uniform_int_distribution<int>(0, cfg.max_occluders)(rng);

  const SignalController signals{spec.signal};

  // Per-(arm, lane) queue front: rear-bumper arc of the last entity placed
  // in the lane, and whether that leader is moving. A vehicle spawned behind
  // a standing leader (red-light queue, parked occluder) starts standing;
  // only a clear or flowing lane spawns flowing traffic — so no initial
  // state ever bakes in an unavoidable rear-end. Ordered map (detlint D1).
  struct LaneFront {
    double rear_s;
    bool moving;
  };
  std::map<int, LaneFront> front;
  auto lane_key = [](Arm arm, int lane) {
    return static_cast<int>(arm) * 8 + lane;
  };

  // Occluders first: a parked truck near a stop line caps its lane's queue
  // front so t=0 traffic spawns behind it, not inside it.
  std::uniform_int_distribution<int> arm_pick(0, kArmCount - 1);
  std::uniform_real_distribution<double> occ_back(3.0, 15.0);
  for (int i = 0; i < n_occluders; ++i) {
    OccluderSpec oc;
    oc.arm = static_cast<Arm>(arm_pick(rng));
    oc.lane = lanes - 1;  // curbside lane, like the Fig. 9b queued trucks
    oc.maneuver = net.find_route(oc.arm, oc.lane, Maneuver::kRight).has_value()
                      ? Maneuver::kRight
                      : Maneuver::kStraight;
    const std::optional<int> route = net.find_route(oc.arm, oc.lane,
                                                    oc.maneuver);
    const double back = occ_back(rng);
    if (!route.has_value()) continue;
    oc.s = net.route(*route).stop_line_s - back;
    // A second truck in the same lane queues behind the first (the Fig. 9b
    // stack) instead of overlapping it.
    if (const auto it = front.find(lane_key(oc.arm, oc.lane));
        it != front.end()) {
      oc.s = std::min(oc.s, it->second.rear_s - 2.0 - oc.length * 0.5);
    }
    if (oc.s < 6.0) continue;
    // A parked truck is a standing leader for everything behind it.
    const double rear = oc.s - oc.length * 0.5;
    const int key = lane_key(oc.arm, oc.lane);
    const auto [it, inserted] = front.try_emplace(key, LaneFront{rear, false});
    if (!inserted && rear < it->second.rear_s) {
      it->second = LaneFront{rear, false};
    }
    spec.occluders.push_back(oc);
  }

  std::uniform_int_distribution<int> lane_pick(0, lanes - 1);
  std::uniform_int_distribution<int> maneuver_pick(0, 2);
  std::bernoulli_distribution deferred(0.4);
  std::bernoulli_distribution connected(connected_fraction);
  std::bernoulli_distribution truck(0.12);
  std::bernoulli_distribution wants_change(cfg.lane_change_fraction);
  std::bernoulli_distribution coin(0.5);
  std::uniform_real_distribution<double> spawn_jitter(0.0, 4.0);
  std::uniform_real_distribution<double> queue_gap(2.0, 5.0);
  std::uniform_real_distribution<double> speed_factor(0.85, 1.15);
  std::uniform_real_distribution<double> spawn_time(0.5, cfg.max_spawn_time);
  std::uniform_real_distribution<double> edge_s(4.0, 10.0);
  std::uniform_real_distribution<double> trigger_ahead(5.0, 25.0);

  for (int i = 0; i < n_vehicles; ++i) {
    SpawnSpec sp;
    sp.arm = static_cast<Arm>(arm_pick(rng));
    sp.lane = lane_pick(rng);
    sp.maneuver = static_cast<Maneuver>(maneuver_pick(rng));
    if (!net.find_route(sp.arm, sp.lane, sp.maneuver).has_value()) {
      sp.maneuver = Maneuver::kStraight;
    }
    const std::optional<int> route_id =
        net.find_route(sp.arm, sp.lane, sp.maneuver);
    if (!route_id.has_value()) continue;
    const Route& route = net.route(*route_id);

    sp.kind = truck(rng) ? AgentKind::kTruck : AgentKind::kCar;
    sp.connected = connected(rng);
    sp.desired_speed = speed * speed_factor(rng);

    const bool later = deferred(rng);
    const double jitter = spawn_jitter(rng);
    const double standing_gap = queue_gap(rng);
    const double t_deferred = spawn_time(rng);
    const double s_edge = edge_s(rng);
    if (later) {
      // Enters at the upstream map edge mid-run; the world holds the spawn
      // while the spot is blocked.
      sp.time = t_deferred;
      sp.start_s = s_edge;
      sp.start_speed = sp.desired_speed;
    } else {
      const double half_len = default_dims(sp.kind).length * 0.5;
      const bool green =
          signals.state(sp.arm, 0.0) == SignalController::Light::kGreen;
      const int key = lane_key(sp.arm, sp.lane);
      // First vehicle in a lane queues against the stop line itself — a
      // leader that "moves" exactly when the light is green.
      const auto [it, inserted] = front.try_emplace(
          key, LaneFront{route.stop_line_s - 1.0, green});
      // Flowing only behind a flowing (or absent) leader; behind a red-light
      // queue or a parked occluder the spawn stands. Moving spawns keep a
      // speed-proportional headway on top of the standstill gap.
      const bool moving = green && it->second.moving;
      sp.start_speed = moving ? sp.desired_speed : 0.0;
      const double clearance =
          standing_gap + (moving ? sp.start_speed * 1.1 : 0.0);
      const double s = it->second.rear_s - clearance - jitter - half_len;
      if (s < 6.0) continue;  // lane already full
      it->second = LaneFront{s - half_len, moving};
      sp.time = 0.0;
      sp.start_s = s;
    }

    // Lane-change directive (only meaningful with >1 lane per direction).
    const bool change = wants_change(rng);
    const bool to_right = coin(rng);
    const double ahead = trigger_ahead(rng);
    if (change && lanes > 1) {
      sp.lane_change = sp.lane == 0 ? 1 : (sp.lane == lanes - 1 ? -1
                                           : (to_right ? 1 : -1));
      sp.lane_change_trigger_s = sp.start_s + ahead;
    }
    spec.spawns.push_back(sp);
  }

  std::bernoulli_distribution crossing(0.5);
  std::uniform_real_distribution<double> ped_offset(0.0, 6.0);
  std::uniform_real_distribution<double> ped_speed(1.1, 1.7);
  for (int i = 0; i < n_peds; ++i) {
    PedSpec pd;
    pd.arm = static_cast<Arm>(arm_pick(rng));
    pd.east_side = coin(rng);
    pd.reverse = coin(rng);
    pd.start_offset = ped_offset(rng);
    pd.walk_speed = ped_speed(rng);
    pd.crossing = crossing(rng);
    spec.pedestrians.push_back(pd);
  }

  return spec;
}

Scenario build_scenario(const ScenarioSpec& spec,
                        const WorldConfig& base_world) {
  WorldConfig wc = base_world;
  wc.seed = spec.seed;
  wc.signal = spec.signal;
  wc.maneuver = spec.maneuver;

  Scenario sc{World{RoadNetwork{spec_road_config()}, wc}, kInvalidAgent,
              kInvalidAgent, {}, kInvalidAgent};
  World& world = sc.world;
  const RoadNetwork& net = world.network();
  spec.validate(net);

  add_intersection_scenery(world);

  for (const OccluderSpec& oc : spec.occluders) {
    const int route = *net.find_route(oc.arm, oc.lane, oc.maneuver);
    sc.occluders.push_back(
        world.add_vehicle(occluder_params(oc), route, oc.s, 0.0));
  }

  for (const SpawnSpec& sp : spec.spawns) {
    const int route = *net.find_route(sp.arm, sp.lane, sp.maneuver);
    if (sp.time == 0.0) {  // lint-ok: R6 spec distinguishes t=0 exactly
      const AgentId id =
          world.add_vehicle(spawn_params(sp), route, sp.start_s,
                            sp.start_speed);
      if (sp.lane_change != 0) {
        world.find_vehicle(id)->set_lane_change_directive(
            sp.lane_change, sp.lane_change_trigger_s);
      }
    } else {
      world.schedule_vehicle(sp.time, spawn_params(sp), route, sp.start_s,
                             sp.start_speed, sp.lane_change,
                             sp.lane_change_trigger_s);
    }
  }

  for (const PedSpec& pd : spec.pedestrians) {
    PedestrianParams pp;
    pp.walk_speed = pd.walk_speed;
    world.add_pedestrian(pp, pd.crossing ? crossing_path(net, pd)
                                         : sidewalk_path(net, pd));
  }

  return sc;
}

WorldConfig search_world_config() {
  WorldConfig wc;
  // Coarse sensor (matches the scenario harness's CI profile): geometry and
  // behavior are unchanged, only the point-cloud density drops.
  wc.lidar.channels = 16;
  wc.lidar.azimuth_step_deg = 1.0;
  return wc;
}

// --- Serialization ---------------------------------------------------------

namespace {

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  out += buf;
}

void append_fields(std::string& out) { out += '\n'; }

template <typename First, typename... Rest>
void append_fields(std::string& out, First&& first, Rest&&... rest) {
  out += ' ';
  using Decayed = std::decay_t<First>;
  if constexpr (std::is_same_v<Decayed, double>) {
    append_double(out, first);
  } else if constexpr (std::is_same_v<Decayed, bool>) {
    out += first ? '1' : '0';
  } else if constexpr (std::is_same_v<Decayed, const char*>) {
    out += first;
  } else {
    out += std::to_string(first);
  }
  append_fields(out, std::forward<Rest>(rest)...);
}

/// Consume exactly one token as a double; rejects trailing garbage and
/// (unless allow_inf) non-finite values. NaN is never accepted: a committed
/// anchor pinning NaN could not be compared exactly anyway.
bool parse_double_token(std::string_view tok, double& out,
                        bool allow_inf = false) {
  std::string buf(tok);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty()) return false;
  if (std::isnan(v)) return false;
  if (!allow_inf && !std::isfinite(v)) return false;
  out = v;
  return true;
}

bool parse_u64_token(std::string_view tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  std::string buf(tok);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
  if (buf[0] == '-') return false;
  out = v;
  return true;
}

bool parse_int_token(std::string_view tok, int& out, int lo, int hi) {
  if (tok.empty()) return false;
  std::string buf(tok);
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
  if (v < lo || v > hi) return false;
  out = static_cast<int>(v);
  return true;
}

bool parse_bool_token(std::string_view tok, bool& out) {
  if (tok == "0") {
    out = false;
    return true;
  }
  if (tok == "1") {
    out = true;
    return true;
  }
  return false;
}

bool parse_arm_token(std::string_view tok, Arm& out) {
  if (tok == "N") out = Arm::kNorth;
  else if (tok == "E") out = Arm::kEast;
  else if (tok == "S") out = Arm::kSouth;
  else if (tok == "W") out = Arm::kWest;
  else return false;
  return true;
}

bool parse_maneuver_token(std::string_view tok, Maneuver& out) {
  if (tok == "straight") out = Maneuver::kStraight;
  else if (tok == "left") out = Maneuver::kLeft;
  else if (tok == "right") out = Maneuver::kRight;
  else return false;
  return true;
}

bool parse_kind_token(std::string_view tok, AgentKind& out) {
  if (tok == "car") out = AgentKind::kCar;
  else if (tok == "truck") out = AgentKind::kTruck;
  else return false;
  return true;
}

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) toks.push_back(line.substr(i, j - i));
    i = j;
  }
  return toks;
}

}  // namespace

std::string emit_spec(const ScenarioSpec& spec) {
  std::string out;
  out.reserve(256 + 96 * spec.spawns.size());
  out += "erpd-scenario v1\n";
  out += "seed";
  append_fields(out, spec.seed);
  out += "duration";
  append_fields(out, spec.duration);
  out += "signal";
  append_fields(out, spec.signal.green, spec.signal.yellow,
                spec.signal.all_red);
  out += "maneuver";
  append_fields(out, spec.maneuver.enabled, spec.maneuver.lane_change_duration,
                spec.maneuver.min_lead_gap, spec.maneuver.min_lag_gap,
                spec.maneuver.gap_time_headway, spec.maneuver.abort_after,
                spec.maneuver.stop_line_clearance);
  for (const SpawnSpec& sp : spec.spawns) {
    out += "spawn";
    append_fields(out, sp.time, to_string(sp.arm), sp.lane,
                  to_string(sp.maneuver), sp.start_s, sp.desired_speed,
                  sp.start_speed, sp.connected, to_string(sp.kind),
                  sp.lane_change, sp.lane_change_trigger_s);
  }
  for (const OccluderSpec& oc : spec.occluders) {
    out += "occluder";
    append_fields(out, to_string(oc.arm), oc.lane, to_string(oc.maneuver),
                  oc.s, oc.length);
  }
  for (const PedSpec& pd : spec.pedestrians) {
    out += "ped";
    append_fields(out, to_string(pd.arm), pd.east_side, pd.reverse,
                  pd.start_offset, pd.walk_speed, pd.crossing);
  }
  if (spec.expect.present) {
    out += "expect";
    append_fields(out, spec.expect.collisions, spec.expect.min_vehicle_gap,
                  spec.expect.min_ped_gap);
  }
  return out;
}

const char* to_string(SpecParseStatus s) {
  switch (s) {
    case SpecParseStatus::kOk: return "ok";
    case SpecParseStatus::kBadHeader: return "bad-header";
    case SpecParseStatus::kBadSyntax: return "bad-syntax";
    case SpecParseStatus::kBadValue: return "bad-value";
    case SpecParseStatus::kUnknownKey: return "unknown-key";
  }
  return "?";
}

SpecParseResult try_parse_spec(std::string_view text) {
  SpecParseResult res;
  auto fail = [&res](SpecParseStatus st, std::size_t line, std::string msg) {
    res.status = st;
    res.line = line;
    res.message = std::move(msg);
    return res;
  };

  std::size_t line_no = 0;
  bool saw_header = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view raw = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    std::string_view line = raw;
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const std::vector<std::string_view> toks = tokenize(line);
    if (toks.empty()) continue;

    if (!saw_header) {
      if (toks.size() != 2 || toks[0] != "erpd-scenario" || toks[1] != "v1") {
        return fail(SpecParseStatus::kBadHeader, line_no,
                    "expected 'erpd-scenario v1' header");
      }
      saw_header = true;
      continue;
    }

    const std::string_view key = toks[0];
    if (key == "seed") {
      if (toks.size() != 2) {
        return fail(SpecParseStatus::kBadSyntax, line_no, "seed <u64>");
      }
      if (!parse_u64_token(toks[1], res.spec.seed)) {
        return fail(SpecParseStatus::kBadValue, line_no, "bad seed");
      }
    } else if (key == "duration") {
      if (toks.size() != 2) {
        return fail(SpecParseStatus::kBadSyntax, line_no, "duration <sec>");
      }
      if (!parse_double_token(toks[1], res.spec.duration)) {
        return fail(SpecParseStatus::kBadValue, line_no, "bad duration");
      }
    } else if (key == "signal") {
      if (toks.size() != 4) {
        return fail(SpecParseStatus::kBadSyntax, line_no,
                    "signal <green> <yellow> <all_red>");
      }
      if (!parse_double_token(toks[1], res.spec.signal.green) ||
          !parse_double_token(toks[2], res.spec.signal.yellow) ||
          !parse_double_token(toks[3], res.spec.signal.all_red)) {
        return fail(SpecParseStatus::kBadValue, line_no, "bad signal timing");
      }
    } else if (key == "maneuver") {
      if (toks.size() != 8) {
        return fail(SpecParseStatus::kBadSyntax, line_no,
                    "maneuver <on> <dur> <lead> <lag> <headway> <abort> "
                    "<clearance>");
      }
      ManeuverConfig& m = res.spec.maneuver;
      if (!parse_bool_token(toks[1], m.enabled) ||
          !parse_double_token(toks[2], m.lane_change_duration) ||
          !parse_double_token(toks[3], m.min_lead_gap) ||
          !parse_double_token(toks[4], m.min_lag_gap) ||
          !parse_double_token(toks[5], m.gap_time_headway) ||
          !parse_double_token(toks[6], m.abort_after) ||
          !parse_double_token(toks[7], m.stop_line_clearance)) {
        return fail(SpecParseStatus::kBadValue, line_no, "bad maneuver config");
      }
    } else if (key == "spawn") {
      if (toks.size() != 12) {
        return fail(SpecParseStatus::kBadSyntax, line_no,
                    "spawn <t> <arm> <lane> <maneuver> <s> <desired> <v0> "
                    "<connected> <kind> <lc> <lc_s>");
      }
      SpawnSpec sp;
      if (!parse_double_token(toks[1], sp.time) ||
          !parse_arm_token(toks[2], sp.arm) ||
          !parse_int_token(toks[3], sp.lane, 0, 7) ||
          !parse_maneuver_token(toks[4], sp.maneuver) ||
          !parse_double_token(toks[5], sp.start_s) ||
          !parse_double_token(toks[6], sp.desired_speed) ||
          !parse_double_token(toks[7], sp.start_speed) ||
          !parse_bool_token(toks[8], sp.connected) ||
          !parse_kind_token(toks[9], sp.kind) ||
          !parse_int_token(toks[10], sp.lane_change, -1, 1) ||
          !parse_double_token(toks[11], sp.lane_change_trigger_s)) {
        return fail(SpecParseStatus::kBadValue, line_no, "bad spawn");
      }
      res.spec.spawns.push_back(sp);
    } else if (key == "occluder") {
      if (toks.size() != 6) {
        return fail(SpecParseStatus::kBadSyntax, line_no,
                    "occluder <arm> <lane> <maneuver> <s> <length>");
      }
      OccluderSpec oc;
      if (!parse_arm_token(toks[1], oc.arm) ||
          !parse_int_token(toks[2], oc.lane, 0, 7) ||
          !parse_maneuver_token(toks[3], oc.maneuver) ||
          !parse_double_token(toks[4], oc.s) ||
          !parse_double_token(toks[5], oc.length)) {
        return fail(SpecParseStatus::kBadValue, line_no, "bad occluder");
      }
      res.spec.occluders.push_back(oc);
    } else if (key == "ped") {
      if (toks.size() != 7) {
        return fail(SpecParseStatus::kBadSyntax, line_no,
                    "ped <arm> <east> <reverse> <offset> <speed> <crossing>");
      }
      PedSpec pd;
      if (!parse_arm_token(toks[1], pd.arm) ||
          !parse_bool_token(toks[2], pd.east_side) ||
          !parse_bool_token(toks[3], pd.reverse) ||
          !parse_double_token(toks[4], pd.start_offset) ||
          !parse_double_token(toks[5], pd.walk_speed) ||
          !parse_bool_token(toks[6], pd.crossing)) {
        return fail(SpecParseStatus::kBadValue, line_no, "bad pedestrian");
      }
      res.spec.pedestrians.push_back(pd);
    } else if (key == "expect") {
      if (toks.size() != 4) {
        return fail(SpecParseStatus::kBadSyntax, line_no,
                    "expect <collisions> <min_vehicle_gap> <min_ped_gap>");
      }
      SpecExpectations& e = res.spec.expect;
      if (!parse_int_token(toks[1], e.collisions, 0,
                           std::numeric_limits<int>::max()) ||
          !parse_double_token(toks[2], e.min_vehicle_gap,
                              /*allow_inf=*/true) ||
          !parse_double_token(toks[3], e.min_ped_gap, /*allow_inf=*/true)) {
        return fail(SpecParseStatus::kBadValue, line_no, "bad expectations");
      }
      e.present = true;
    } else {
      return fail(SpecParseStatus::kUnknownKey, line_no,
                  "unknown key '" + std::string(key) + "'");
    }
  }

  if (!saw_header) {
    return fail(SpecParseStatus::kBadHeader, line_no,
                "empty input: missing 'erpd-scenario v1' header");
  }
  return res;
}

}  // namespace erpd::sim
